# Empty dependencies file for remo_core.
# This may be replaced when dependencies are built.
