file(REMOVE_RECURSE
  "CMakeFiles/remo_core.dir/monitoring_system.cpp.o"
  "CMakeFiles/remo_core.dir/monitoring_system.cpp.o.d"
  "CMakeFiles/remo_core.dir/scenario_parser.cpp.o"
  "CMakeFiles/remo_core.dir/scenario_parser.cpp.o.d"
  "libremo_core.a"
  "libremo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
