file(REMOVE_RECURSE
  "libremo_core.a"
)
