file(REMOVE_RECURSE
  "CMakeFiles/remo_streamapp.dir/stream_app.cpp.o"
  "CMakeFiles/remo_streamapp.dir/stream_app.cpp.o.d"
  "libremo_streamapp.a"
  "libremo_streamapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remo_streamapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
