file(REMOVE_RECURSE
  "libremo_streamapp.a"
)
