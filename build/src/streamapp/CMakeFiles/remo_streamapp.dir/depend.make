# Empty dependencies file for remo_streamapp.
# This may be replaced when dependencies are built.
