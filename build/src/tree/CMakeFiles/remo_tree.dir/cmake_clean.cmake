file(REMOVE_RECURSE
  "CMakeFiles/remo_tree.dir/builder.cpp.o"
  "CMakeFiles/remo_tree.dir/builder.cpp.o.d"
  "CMakeFiles/remo_tree.dir/monitoring_tree.cpp.o"
  "CMakeFiles/remo_tree.dir/monitoring_tree.cpp.o.d"
  "libremo_tree.a"
  "libremo_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remo_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
