file(REMOVE_RECURSE
  "libremo_tree.a"
)
