# Empty compiler generated dependencies file for remo_tree.
# This may be replaced when dependencies are built.
