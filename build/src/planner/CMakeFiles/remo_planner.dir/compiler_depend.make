# Empty compiler generated dependencies file for remo_planner.
# This may be replaced when dependencies are built.
