file(REMOVE_RECURSE
  "CMakeFiles/remo_planner.dir/export.cpp.o"
  "CMakeFiles/remo_planner.dir/export.cpp.o.d"
  "CMakeFiles/remo_planner.dir/planner.cpp.o"
  "CMakeFiles/remo_planner.dir/planner.cpp.o.d"
  "CMakeFiles/remo_planner.dir/topology.cpp.o"
  "CMakeFiles/remo_planner.dir/topology.cpp.o.d"
  "libremo_planner.a"
  "libremo_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remo_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
