file(REMOVE_RECURSE
  "libremo_planner.a"
)
