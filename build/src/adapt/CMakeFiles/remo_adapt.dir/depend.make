# Empty dependencies file for remo_adapt.
# This may be replaced when dependencies are built.
