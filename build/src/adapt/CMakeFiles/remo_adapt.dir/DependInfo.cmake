
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adapt/adaptive_planner.cpp" "src/adapt/CMakeFiles/remo_adapt.dir/adaptive_planner.cpp.o" "gcc" "src/adapt/CMakeFiles/remo_adapt.dir/adaptive_planner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/planner/CMakeFiles/remo_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/remo_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/remo_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/task/CMakeFiles/remo_task.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/remo_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/remo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
