file(REMOVE_RECURSE
  "CMakeFiles/remo_adapt.dir/adaptive_planner.cpp.o"
  "CMakeFiles/remo_adapt.dir/adaptive_planner.cpp.o.d"
  "libremo_adapt.a"
  "libremo_adapt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remo_adapt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
