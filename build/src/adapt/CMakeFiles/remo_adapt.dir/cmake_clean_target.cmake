file(REMOVE_RECURSE
  "libremo_adapt.a"
)
