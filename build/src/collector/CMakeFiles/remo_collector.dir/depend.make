# Empty dependencies file for remo_collector.
# This may be replaced when dependencies are built.
