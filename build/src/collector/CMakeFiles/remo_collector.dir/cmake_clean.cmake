file(REMOVE_RECURSE
  "CMakeFiles/remo_collector.dir/alerts.cpp.o"
  "CMakeFiles/remo_collector.dir/alerts.cpp.o.d"
  "CMakeFiles/remo_collector.dir/time_series.cpp.o"
  "CMakeFiles/remo_collector.dir/time_series.cpp.o.d"
  "libremo_collector.a"
  "libremo_collector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remo_collector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
