file(REMOVE_RECURSE
  "libremo_collector.a"
)
