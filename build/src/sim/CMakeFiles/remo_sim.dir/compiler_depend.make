# Empty compiler generated dependencies file for remo_sim.
# This may be replaced when dependencies are built.
