file(REMOVE_RECURSE
  "libremo_sim.a"
)
