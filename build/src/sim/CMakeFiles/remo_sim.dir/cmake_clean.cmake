file(REMOVE_RECURSE
  "CMakeFiles/remo_sim.dir/simulator.cpp.o"
  "CMakeFiles/remo_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/remo_sim.dir/trace.cpp.o"
  "CMakeFiles/remo_sim.dir/trace.cpp.o.d"
  "CMakeFiles/remo_sim.dir/value_source.cpp.o"
  "CMakeFiles/remo_sim.dir/value_source.cpp.o.d"
  "libremo_sim.a"
  "libremo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
