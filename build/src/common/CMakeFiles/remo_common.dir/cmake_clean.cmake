file(REMOVE_RECURSE
  "CMakeFiles/remo_common.dir/logging.cpp.o"
  "CMakeFiles/remo_common.dir/logging.cpp.o.d"
  "CMakeFiles/remo_common.dir/rng.cpp.o"
  "CMakeFiles/remo_common.dir/rng.cpp.o.d"
  "CMakeFiles/remo_common.dir/stats.cpp.o"
  "CMakeFiles/remo_common.dir/stats.cpp.o.d"
  "CMakeFiles/remo_common.dir/table.cpp.o"
  "CMakeFiles/remo_common.dir/table.cpp.o.d"
  "libremo_common.a"
  "libremo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
