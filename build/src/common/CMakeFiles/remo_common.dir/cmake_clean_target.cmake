file(REMOVE_RECURSE
  "libremo_common.a"
)
