# Empty compiler generated dependencies file for remo_common.
# This may be replaced when dependencies are built.
