# Empty dependencies file for remo_partition.
# This may be replaced when dependencies are built.
