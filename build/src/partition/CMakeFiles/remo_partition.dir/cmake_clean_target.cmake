file(REMOVE_RECURSE
  "libremo_partition.a"
)
