file(REMOVE_RECURSE
  "CMakeFiles/remo_partition.dir/augmentation.cpp.o"
  "CMakeFiles/remo_partition.dir/augmentation.cpp.o.d"
  "CMakeFiles/remo_partition.dir/partition.cpp.o"
  "CMakeFiles/remo_partition.dir/partition.cpp.o.d"
  "libremo_partition.a"
  "libremo_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remo_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
