# Empty dependencies file for remo_cost.
# This may be replaced when dependencies are built.
