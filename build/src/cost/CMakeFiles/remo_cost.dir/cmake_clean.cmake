file(REMOVE_RECURSE
  "CMakeFiles/remo_cost.dir/system_model.cpp.o"
  "CMakeFiles/remo_cost.dir/system_model.cpp.o.d"
  "libremo_cost.a"
  "libremo_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remo_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
