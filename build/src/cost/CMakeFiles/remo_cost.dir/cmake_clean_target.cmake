file(REMOVE_RECURSE
  "libremo_cost.a"
)
