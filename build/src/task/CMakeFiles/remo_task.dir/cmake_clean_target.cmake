file(REMOVE_RECURSE
  "libremo_task.a"
)
