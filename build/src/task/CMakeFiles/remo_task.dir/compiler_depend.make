# Empty compiler generated dependencies file for remo_task.
# This may be replaced when dependencies are built.
