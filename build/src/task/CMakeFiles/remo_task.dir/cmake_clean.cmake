file(REMOVE_RECURSE
  "CMakeFiles/remo_task.dir/pair_set.cpp.o"
  "CMakeFiles/remo_task.dir/pair_set.cpp.o.d"
  "CMakeFiles/remo_task.dir/task_manager.cpp.o"
  "CMakeFiles/remo_task.dir/task_manager.cpp.o.d"
  "CMakeFiles/remo_task.dir/workload.cpp.o"
  "CMakeFiles/remo_task.dir/workload.cpp.o.d"
  "libremo_task.a"
  "libremo_task.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remo_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
