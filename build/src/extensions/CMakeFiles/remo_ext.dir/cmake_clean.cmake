file(REMOVE_RECURSE
  "CMakeFiles/remo_ext.dir/attr_spec_derivation.cpp.o"
  "CMakeFiles/remo_ext.dir/attr_spec_derivation.cpp.o.d"
  "CMakeFiles/remo_ext.dir/reliability.cpp.o"
  "CMakeFiles/remo_ext.dir/reliability.cpp.o.d"
  "libremo_ext.a"
  "libremo_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remo_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
