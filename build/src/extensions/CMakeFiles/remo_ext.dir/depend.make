# Empty dependencies file for remo_ext.
# This may be replaced when dependencies are built.
