file(REMOVE_RECURSE
  "libremo_ext.a"
)
