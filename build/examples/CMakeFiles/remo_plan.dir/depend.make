# Empty dependencies file for remo_plan.
# This may be replaced when dependencies are built.
