file(REMOVE_RECURSE
  "CMakeFiles/remo_plan.dir/remo_plan.cpp.o"
  "CMakeFiles/remo_plan.dir/remo_plan.cpp.o.d"
  "remo_plan"
  "remo_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remo_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
