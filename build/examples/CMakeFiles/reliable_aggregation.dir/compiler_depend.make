# Empty compiler generated dependencies file for reliable_aggregation.
# This may be replaced when dependencies are built.
