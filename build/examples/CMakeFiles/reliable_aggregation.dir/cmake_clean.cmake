file(REMOVE_RECURSE
  "CMakeFiles/reliable_aggregation.dir/reliable_aggregation.cpp.o"
  "CMakeFiles/reliable_aggregation.dir/reliable_aggregation.cpp.o.d"
  "reliable_aggregation"
  "reliable_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliable_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
