# Empty dependencies file for monitoring_service.
# This may be replaced when dependencies are built.
