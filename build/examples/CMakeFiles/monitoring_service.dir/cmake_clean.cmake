file(REMOVE_RECURSE
  "CMakeFiles/monitoring_service.dir/monitoring_service.cpp.o"
  "CMakeFiles/monitoring_service.dir/monitoring_service.cpp.o.d"
  "monitoring_service"
  "monitoring_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitoring_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
