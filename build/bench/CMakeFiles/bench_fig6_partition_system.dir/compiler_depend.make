# Empty compiler generated dependencies file for bench_fig6_partition_system.
# This may be replaced when dependencies are built.
