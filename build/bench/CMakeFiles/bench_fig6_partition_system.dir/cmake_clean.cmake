file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_partition_system.dir/bench_fig6_partition_system.cpp.o"
  "CMakeFiles/bench_fig6_partition_system.dir/bench_fig6_partition_system.cpp.o.d"
  "bench_fig6_partition_system"
  "bench_fig6_partition_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_partition_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
