file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_optimization.dir/bench_fig10_optimization.cpp.o"
  "CMakeFiles/bench_fig10_optimization.dir/bench_fig10_optimization.cpp.o.d"
  "bench_fig10_optimization"
  "bench_fig10_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
