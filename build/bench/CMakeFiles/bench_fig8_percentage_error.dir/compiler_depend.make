# Empty compiler generated dependencies file for bench_fig8_percentage_error.
# This may be replaced when dependencies are built.
