# Empty compiler generated dependencies file for bench_fig9_adaptation.
# This may be replaced when dependencies are built.
