file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_tree_schemes.dir/bench_fig7_tree_schemes.cpp.o"
  "CMakeFiles/bench_fig7_tree_schemes.dir/bench_fig7_tree_schemes.cpp.o.d"
  "bench_fig7_tree_schemes"
  "bench_fig7_tree_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_tree_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
