# Empty dependencies file for bench_fig7_tree_schemes.
# This may be replaced when dependencies are built.
