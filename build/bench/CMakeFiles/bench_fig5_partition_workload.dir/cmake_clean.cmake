file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_partition_workload.dir/bench_fig5_partition_workload.cpp.o"
  "CMakeFiles/bench_fig5_partition_workload.dir/bench_fig5_partition_workload.cpp.o.d"
  "bench_fig5_partition_workload"
  "bench_fig5_partition_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_partition_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
