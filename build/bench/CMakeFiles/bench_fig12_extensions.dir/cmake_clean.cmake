file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_extensions.dir/bench_fig12_extensions.cpp.o"
  "CMakeFiles/bench_fig12_extensions.dir/bench_fig12_extensions.cpp.o.d"
  "bench_fig12_extensions"
  "bench_fig12_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
