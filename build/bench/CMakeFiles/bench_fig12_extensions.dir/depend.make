# Empty dependencies file for bench_fig12_extensions.
# This may be replaced when dependencies are built.
