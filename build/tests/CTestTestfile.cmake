# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_cost[1]_include.cmake")
include("/root/repo/build/tests/test_task[1]_include.cmake")
include("/root/repo/build/tests/test_tree[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_planner[1]_include.cmake")
include("/root/repo/build/tests/test_adapt[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_streamapp[1]_include.cmake")
include("/root/repo/build/tests/test_collector[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
