file(REMOVE_RECURSE
  "CMakeFiles/test_planner.dir/planner/test_allocation.cpp.o"
  "CMakeFiles/test_planner.dir/planner/test_allocation.cpp.o.d"
  "CMakeFiles/test_planner.dir/planner/test_export.cpp.o"
  "CMakeFiles/test_planner.dir/planner/test_export.cpp.o.d"
  "CMakeFiles/test_planner.dir/planner/test_planner.cpp.o"
  "CMakeFiles/test_planner.dir/planner/test_planner.cpp.o.d"
  "CMakeFiles/test_planner.dir/planner/test_ranking.cpp.o"
  "CMakeFiles/test_planner.dir/planner/test_ranking.cpp.o.d"
  "CMakeFiles/test_planner.dir/planner/test_search_flags.cpp.o"
  "CMakeFiles/test_planner.dir/planner/test_search_flags.cpp.o.d"
  "CMakeFiles/test_planner.dir/planner/test_topology.cpp.o"
  "CMakeFiles/test_planner.dir/planner/test_topology.cpp.o.d"
  "test_planner"
  "test_planner.pdb"
  "test_planner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
