file(REMOVE_RECURSE
  "CMakeFiles/test_streamapp.dir/streamapp/test_stream_app.cpp.o"
  "CMakeFiles/test_streamapp.dir/streamapp/test_stream_app.cpp.o.d"
  "test_streamapp"
  "test_streamapp.pdb"
  "test_streamapp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_streamapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
