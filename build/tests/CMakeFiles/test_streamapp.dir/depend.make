# Empty dependencies file for test_streamapp.
# This may be replaced when dependencies are built.
