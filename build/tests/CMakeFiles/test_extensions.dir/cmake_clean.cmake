file(REMOVE_RECURSE
  "CMakeFiles/test_extensions.dir/extensions/test_attr_specs.cpp.o"
  "CMakeFiles/test_extensions.dir/extensions/test_attr_specs.cpp.o.d"
  "CMakeFiles/test_extensions.dir/extensions/test_dsdp_end_to_end.cpp.o"
  "CMakeFiles/test_extensions.dir/extensions/test_dsdp_end_to_end.cpp.o.d"
  "CMakeFiles/test_extensions.dir/extensions/test_reliability.cpp.o"
  "CMakeFiles/test_extensions.dir/extensions/test_reliability.cpp.o.d"
  "test_extensions"
  "test_extensions.pdb"
  "test_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
