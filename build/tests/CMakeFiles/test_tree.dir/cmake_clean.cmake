file(REMOVE_RECURSE
  "CMakeFiles/test_tree.dir/tree/test_adjust.cpp.o"
  "CMakeFiles/test_tree.dir/tree/test_adjust.cpp.o.d"
  "CMakeFiles/test_tree.dir/tree/test_builder.cpp.o"
  "CMakeFiles/test_tree.dir/tree/test_builder.cpp.o.d"
  "CMakeFiles/test_tree.dir/tree/test_funnel.cpp.o"
  "CMakeFiles/test_tree.dir/tree/test_funnel.cpp.o.d"
  "CMakeFiles/test_tree.dir/tree/test_monitoring_tree.cpp.o"
  "CMakeFiles/test_tree.dir/tree/test_monitoring_tree.cpp.o.d"
  "CMakeFiles/test_tree.dir/tree/test_optimality_gap.cpp.o"
  "CMakeFiles/test_tree.dir/tree/test_optimality_gap.cpp.o.d"
  "CMakeFiles/test_tree.dir/tree/test_tree_fuzz.cpp.o"
  "CMakeFiles/test_tree.dir/tree/test_tree_fuzz.cpp.o.d"
  "CMakeFiles/test_tree.dir/tree/test_update_local.cpp.o"
  "CMakeFiles/test_tree.dir/tree/test_update_local.cpp.o.d"
  "test_tree"
  "test_tree.pdb"
  "test_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
