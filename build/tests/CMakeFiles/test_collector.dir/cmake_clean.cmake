file(REMOVE_RECURSE
  "CMakeFiles/test_collector.dir/collector/test_alerts.cpp.o"
  "CMakeFiles/test_collector.dir/collector/test_alerts.cpp.o.d"
  "CMakeFiles/test_collector.dir/collector/test_collector_integration.cpp.o"
  "CMakeFiles/test_collector.dir/collector/test_collector_integration.cpp.o.d"
  "CMakeFiles/test_collector.dir/collector/test_time_series.cpp.o"
  "CMakeFiles/test_collector.dir/collector/test_time_series.cpp.o.d"
  "test_collector"
  "test_collector.pdb"
  "test_collector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
