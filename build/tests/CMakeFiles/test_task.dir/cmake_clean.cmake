file(REMOVE_RECURSE
  "CMakeFiles/test_task.dir/task/test_pair_set.cpp.o"
  "CMakeFiles/test_task.dir/task/test_pair_set.cpp.o.d"
  "CMakeFiles/test_task.dir/task/test_task_manager.cpp.o"
  "CMakeFiles/test_task.dir/task/test_task_manager.cpp.o.d"
  "CMakeFiles/test_task.dir/task/test_workload.cpp.o"
  "CMakeFiles/test_task.dir/task/test_workload.cpp.o.d"
  "test_task"
  "test_task.pdb"
  "test_task[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
