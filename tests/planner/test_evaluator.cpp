#include "planner/evaluator.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "planner/planner.h"
#include "planner/tree_build_cache.h"
#include "task/pair_set.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

TreeBuildOptions adaptive() {
  TreeBuildOptions o;
  o.scheme = TreeScheme::kAdaptive;
  return o;
}

/// A random workload in the style the planner benches use: every node
/// monitors everything it observes.
struct RandomWorkload {
  SystemModel system;
  PairSet pairs;

  RandomWorkload(std::uint64_t seed, std::size_t n, Capacity node_cap,
                 Capacity collector_cap, std::size_t universe, std::size_t per_node)
      : system(n, node_cap, kCost), pairs(n + 1) {
    system.set_collector_capacity(collector_cap);
    Rng rng{seed};
    system.assign_random_attributes(universe, per_node, rng);
    for (NodeId id = 1; id <= n; ++id)
      for (AttrId a : system.observable(id)) pairs.add(id, a);
  }
};

PlannerOptions engine_options(std::size_t threads, bool memoize) {
  PlannerOptions o;
  o.num_threads = threads;
  o.memoize_builds = memoize;
  return o;
}

// ---------------------------------------------------------------------------
// Determinism property: plan() must be byte-identical regardless of the
// evaluation concurrency and of whether the memo cache is on.

TEST(PlanEvaluator, PlanIdenticalAcrossThreadCountsAndCache) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    // Vary the shape with the seed: node count, capacity tightness, and
    // attribute density all move so the search takes different paths.
    const std::size_t n = 16 + static_cast<std::size_t>(seed % 7) * 4;
    const Capacity cap = 40.0 + 15.0 * static_cast<double>(seed % 5);
    const Capacity coll = 120.0 + 40.0 * static_cast<double>(seed % 3);
    RandomWorkload w(seed, n, cap, coll, 10 + seed % 6, 4);

    const auto reference =
        Planner(w.system, engine_options(1, false)).plan(w.pairs);
    const PlanScore ref_score = score_of(reference);

    for (const auto& [threads, memoize] :
         std::vector<std::pair<std::size_t, bool>>{{1, true}, {8, false}, {8, true}}) {
      Planner planner(w.system, engine_options(threads, memoize));
      const auto topo = planner.plan(w.pairs);
      const PlanScore s = score_of(topo);
      EXPECT_EQ(topo.edges(), reference.edges())
          << "seed=" << seed << " threads=" << threads << " memoize=" << memoize;
      EXPECT_EQ(s.collected, ref_score.collected) << "seed=" << seed;
      EXPECT_DOUBLE_EQ(s.cost, ref_score.cost) << "seed=" << seed;
    }
  }
}

TEST(PlanEvaluator, StatsReportEvaluationsAndTimings) {
  RandomWorkload w(3, 24, 60.0, 200.0, 12, 4);
  Planner planner(w.system, engine_options(2, true));
  planner.plan(w.pairs);
  const EvalStats stats = planner.last_stats();
  EXPECT_GT(stats.evaluations, 0u);
  EXPECT_EQ(stats.evaluations, planner.last_evaluations());
  EXPECT_GE(stats.evaluate_seconds, 0.0);
  EXPECT_GE(stats.build_seconds, 0.0);
}

TEST(PlanEvaluator, RepeatedPlanWarmsTheCache) {
  RandomWorkload w(5, 24, 60.0, 200.0, 12, 4);
  Planner planner(w.system, engine_options(1, true));
  const auto first = planner.plan(w.pairs);
  const auto second = planner.plan(w.pairs);
  // Same pair set: the cache survives the second call and serves repeats.
  EXPECT_GT(planner.last_stats().cache_hits, 0u);
  EXPECT_EQ(first.edges(), second.edges());
}

TEST(PlanEvaluator, ChangedPairSetEvictsOnlyIntersectingEntries) {
  RandomWorkload w(6, 24, 60.0, 200.0, 12, 4);
  Planner planner(w.system, engine_options(1, true));
  planner.plan(w.pairs);
  const std::size_t before = planner.evaluator().cache().size();
  ASSERT_GT(before, 0u);

  PairSet fewer = w.pairs;
  NodeId node = kNoNode;
  AttrId attr = 0;
  for (NodeId id = 1; id <= 24 && node == kNoNode; ++id)
    for (AttrId a : w.system.observable(id)) {
      fewer.remove(id, a);
      node = id;
      attr = a;
      break;
    }
  ASSERT_NE(node, kNoNode);
  // Scoped invalidation (DESIGN.md §13): only entries whose attribute set
  // contains the changed attr may go; the rest stay bit-exact. A wholesale
  // clear here would throw away every memoized build on any churn.
  planner.evaluator().sync_pairs(fewer);
  const std::size_t after = planner.evaluator().cache().size();
  EXPECT_LE(after, before);
}

TEST(PlanEvaluator, DisjointDeltaKeepsCachedBuildsServable) {
  // Deterministic surgical variant: warm the cache with a two-group
  // partition, then change the pair set only over the first group's
  // attribute. The second group's entry must survive and keep serving.
  SystemModel system(4, 1e6, kCost);
  PairSet pairs(5);
  for (NodeId id = 1; id <= 4; ++id) {
    system.set_observable(id, {0, 1});
    pairs.add(id, 0);
    pairs.add(id, 1);
  }
  Planner planner(system, engine_options(1, true));
  PlanEvaluator& ev = planner.evaluator();
  const Partition two({{0}, {1}});
  ev.sync_pairs(pairs);
  ev.build_full(pairs, two);
  ASSERT_GE(ev.cache().size(), 2u);
  const std::size_t warm = ev.cache().size();

  PairSet fewer = pairs;
  fewer.remove(4, 0);  // touches attr 0 only
  ev.sync_pairs(fewer);
  // Attr 1's entry survived; attr 0's is gone.
  EXPECT_LT(ev.cache().size(), warm);
  EXPECT_GT(ev.cache().size(), 0u);

  // Rebuilding the same partition over the new pair set re-serves the
  // surviving attr-1 build from cache.
  const std::size_t hits_before = ev.cache().hits();
  ev.build_full(fewer, two);
  EXPECT_GT(ev.cache().hits(), hits_before);
}

// ---------------------------------------------------------------------------
// Memo-cache key semantics: the capacity fingerprint must invalidate when
// any remaining capacity in the key changes.

TreeBuildKey sample_key() {
  TreeBuildKey k;
  k.attrs = {1, 4};
  k.nodes = {3, 1, 7};
  k.avails = {50.0, 42.0, 13.0};
  k.collector_avail = 90.0;
  return k;
}

TreeEntry sample_entry() {
  // Any real entry will do; build a tiny one-tree topology and take it.
  SystemModel system(3, 1e6, kCost);
  PairSet pairs(4);
  for (NodeId id = 1; id <= 3; ++id) {
    system.set_observable(id, {0});
    pairs.add(id, 0);
  }
  auto topo = build_topology(system, pairs, Partition::singleton({0}),
                             AttrSpecTable{}, AllocationScheme::kOrdered, adaptive());
  return topo.entries().front();
}

TEST(TreeBuildCache, MissThenHitOnIdenticalKey) {
  TreeBuildCache cache;
  const TreeBuildKey key = sample_key();
  EXPECT_FALSE(cache.find(key).has_value());
  EXPECT_EQ(cache.misses(), 1u);

  cache.insert(key, sample_entry());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.find(key).has_value());
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(TreeBuildCache, MemberCapacityChangeInvalidates) {
  TreeBuildCache cache;
  cache.insert(sample_key(), sample_entry());

  TreeBuildKey changed = sample_key();
  changed.avails[1] = 41.0;  // one member's remaining budget moved
  EXPECT_FALSE(cache.find(changed).has_value());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(TreeBuildCache, CollectorCapacityChangeInvalidates) {
  TreeBuildCache cache;
  cache.insert(sample_key(), sample_entry());

  TreeBuildKey changed = sample_key();
  changed.collector_avail = 89.0;
  EXPECT_FALSE(cache.find(changed).has_value());
}

TEST(TreeBuildCache, AttrOrNodeChangeInvalidates) {
  TreeBuildCache cache;
  cache.insert(sample_key(), sample_entry());

  TreeBuildKey other_attrs = sample_key();
  other_attrs.attrs = {1, 5};
  EXPECT_FALSE(cache.find(other_attrs).has_value());

  TreeBuildKey other_nodes = sample_key();
  other_nodes.nodes = {3, 1, 8};
  EXPECT_FALSE(cache.find(other_nodes).has_value());
}

TEST(TreeBuildCache, InvalidateAttrsEvictsOnlyIntersectingEntries) {
  TreeBuildCache cache;
  const TreeBuildKey a = sample_key();  // attrs {1, 4}
  TreeBuildKey b = sample_key();
  b.attrs = {2, 3};
  cache.insert(a, sample_entry());
  cache.insert(b, sample_entry());

  EXPECT_EQ(cache.invalidate_attrs({}), 0u);
  EXPECT_EQ(cache.invalidate_attrs({4}), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.find(a).has_value());
  EXPECT_TRUE(cache.find(b).has_value());  // disjoint attrs: still served
}

TEST(TreeBuildCacheDeathTest, StaleEntryIsNeverServedUnderValidation) {
  set_validation_enabled(true);
  // Reference pair set matching sample_key()'s slice: node 3 monitors
  // attr 1, node 1 monitors attr 4, node 7 nothing.
  PairSet pairs(8);
  pairs.add(3, 1);
  pairs.add(1, 4);
  TreeBuildCache cache;
  cache.set_reference_pairs(&pairs);
  const TreeBuildKey key = sample_key();
  cache.insert(key, sample_entry());
  EXPECT_TRUE(cache.find(key).has_value());  // fingerprint still matches

  // Mutate the slice the entry was built against without invalidating:
  // serving it now would hand the planner a tree for the wrong pair set.
  pairs.add(3, 4);
  EXPECT_DEATH((void)cache.find(key), "stale entry");
  set_validation_enabled(false);
}

TEST(TreeBuildCache, ClearEmptiesEntries) {
  TreeBuildCache cache;
  cache.insert(sample_key(), sample_entry());
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.find(sample_key()).has_value());
}

// ---------------------------------------------------------------------------
// Behavioral: the fingerprint is taken from live remaining capacities, so
// rebuilding the same attribute set over bases with different residual
// budgets must not share an entry, while repeating the same build must.

TEST(TreeBuildCache, RebuildTreesHitsOnRepeatMissesOnChangedRemaining) {
  // Tight capacities: remaining budgets stay below the unconstrained-bound
  // clamp, so they enter the key raw.
  SystemModel system(10, 60.0, kCost);
  system.set_collector_capacity(120.0);
  PairSet pairs(11);
  for (NodeId id = 1; id <= 10; ++id) {
    system.set_observable(id, {0, 1, 2});
    for (AttrId a : {0, 1, 2}) pairs.add(id, a);
  }

  const auto base_split =
      build_topology(system, pairs, Partition::singleton({0, 1, 2}),
                     AttrSpecTable{}, AllocationScheme::kOrdered, adaptive());
  const auto base_merged =
      build_topology(system, pairs, Partition({{0, 1}, {2}}), AttrSpecTable{},
                     AllocationScheme::kOrdered, adaptive());

  auto victim_of = [](const Topology& t, const std::vector<AttrId>& attrs) {
    for (std::size_t i = 0; i < t.entries().size(); ++i)
      if (t.entries()[i].attrs == attrs) return i;
    ADD_FAILURE() << "victim not found";
    return std::size_t{0};
  };

  // Rebuilding {2} sees different residual budgets under the two bases
  // (remaining capacity plus whatever the removed victim frees); skip the
  // miss assertion if this workload happens to equalize them.
  auto residual = [&](const Topology& t, std::size_t victim, NodeId id) {
    const auto& tree = t.entries()[victim].tree;
    return t.remaining(id, system) + (tree.contains(id) ? tree.usage(id) : 0.0);
  };
  bool residuals_differ = false;
  for (NodeId id = 1; id <= 10; ++id)
    if (residual(base_split, victim_of(base_split, {2}), id) !=
        residual(base_merged, victim_of(base_merged, {2}), id))
      residuals_differ = true;

  TreeBuildCache cache;
  const std::size_t v = victim_of(base_split, {2});
  const auto first = rebuild_trees(base_split, system, pairs, {v}, {{2}},
                                   AttrSpecTable{}, AllocationScheme::kOrdered,
                                   adaptive(), &cache);
  EXPECT_EQ(cache.hits(), 0u);

  // Identical rebuild: served from the cache, bit-identical result.
  const auto again = rebuild_trees(base_split, system, pairs, {v}, {{2}},
                                   AttrSpecTable{}, AllocationScheme::kOrdered,
                                   adaptive(), &cache);
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_EQ(first.edges(), again.edges());
  EXPECT_EQ(first.collected_pairs(), again.collected_pairs());

  if (residuals_differ) {
    // Same attribute set, different residual capacities: must be a miss.
    const std::size_t hits_before = cache.hits();
    rebuild_trees(base_merged, system, pairs, {victim_of(base_merged, {2})}, {{2}},
                  AttrSpecTable{}, AllocationScheme::kOrdered, adaptive(), &cache);
    EXPECT_EQ(cache.hits(), hits_before);
  }
}

}  // namespace
}  // namespace remo
