// Allocation-scheme behaviors (Sec. 5.2) isolated from the search.
#include <gtest/gtest.h>

#include "planner/planner.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

/// Every node monitors both attrs; the partition {0},{1} makes every node
/// a candidate of both trees.
struct TwoTreeFixture {
  SystemModel system;
  PairSet pairs;

  TwoTreeFixture(Capacity node_cap, Capacity coll_cap)
      : system(10, node_cap, kCost), pairs(11) {
    system.set_collector_capacity(coll_cap);
    for (NodeId n = 1; n <= 10; ++n) {
      system.set_observable(n, {0, 1});
      pairs.add(n, 0);
      pairs.add(n, 1);
    }
  }

  Topology build(AllocationScheme alloc, Partition p = Partition({{0}, {1}})) {
    PlannerOptions o;
    o.allocation = alloc;
    return Planner(system, o).build_for_partition(pairs, p);
  }
};

TEST(Allocation, UniformSplitsNodeBudgetEvenly) {
  // Node budget 24 over two trees: share 12 affords u = 11 (leaf) in each,
  // nothing more. Per-tree usage must stay within the 12-share.
  TwoTreeFixture f(24.0, 1e6);
  const auto topo = f.build(AllocationScheme::kUniform);
  for (const auto& e : topo.entries())
    for (NodeId n : e.tree.members()) EXPECT_LE(e.tree.usage(n), 12.0 + 1e-9);
  EXPECT_TRUE(topo.validate(f.system));
}

TEST(Allocation, OnDemandLetsFirstTreeRelay) {
  // Same budget, on-demand: the first tree may consume beyond 12 on some
  // nodes (e.g. by relaying) as long as the global budget holds.
  TwoTreeFixture f(24.0, 60.0);  // tight collector forces relaying
  const auto topo = f.build(AllocationScheme::kOnDemand);
  EXPECT_TRUE(topo.validate(f.system));
  bool someone_exceeds_half = false;
  for (const auto& e : topo.entries())
    for (NodeId n : e.tree.members())
      if (e.tree.usage(n) > 12.0 + 1e-9) someone_exceeds_half = true;
  EXPECT_TRUE(someone_exceeds_half);
}

TEST(Allocation, ProportionalWeightsByTreeSize) {
  // Tree {0} has 10 candidates, tree {1} only 2: proportional grants the
  // big tree 10/12 of a shared node's budget.
  SystemModel system(10, 36.0, kCost);
  system.set_collector_capacity(1e6);
  PairSet pairs(11);
  for (NodeId n = 1; n <= 10; ++n) pairs.add(n, 0);
  pairs.add(1, 1);
  pairs.add(2, 1);
  PlannerOptions o;
  o.allocation = AllocationScheme::kProportional;
  const auto topo =
      Planner(system, o).build_for_partition(pairs, Partition({{0}, {1}}));
  EXPECT_TRUE(topo.validate(system));
  for (const auto& e : topo.entries()) {
    const bool big = e.attrs == std::vector<AttrId>{0};
    for (NodeId n : e.tree.members()) {
      // Advisory caps: 30 for the big tree, max(6, C+a)=11 (floored) for
      // the small one, on shared nodes 1 and 2.
      if (n <= 2) {
        EXPECT_LE(e.tree.usage(n), (big ? 30.0 : 11.0) + 1e-9);
      }
    }
  }
}

TEST(Allocation, SharesFlooredAtOneMessage) {
  // 24 singleton trees, uniform: raw share b/24 < C+a would zero every
  // tree; the floor lets early-built trees still send one message each.
  SystemModel system(6, 60.0, kCost);
  system.set_collector_capacity(1e6);
  PairSet pairs(7);
  std::vector<std::vector<AttrId>> sets;
  for (AttrId a = 0; a < 24; ++a) {
    for (NodeId n = 1; n <= 6; ++n) pairs.add(n, a);
    sets.push_back({a});
  }
  PlannerOptions o;
  o.allocation = AllocationScheme::kUniform;
  const auto topo =
      Planner(system, o).build_for_partition(pairs, Partition(sets));
  EXPECT_GT(topo.collected_pairs(), 0u);
  EXPECT_TRUE(topo.validate(system));
}

TEST(Allocation, OrderedBuildsLargestCandidateSetFirst) {
  // One big set and one small set; with ORDERED the big tree is built
  // first and may take shared capacity; verify via the documented
  // deviation (largest-first) by checking the big tree got fully built.
  SystemModel system(8, 24.0, kCost);  // fits the 5-value message (15) but
                                       // not 15 + a second 11-cost message
  system.set_collector_capacity(1e6);
  PairSet pairs(9);
  for (NodeId n = 1; n <= 8; ++n)
    for (AttrId a = 0; a < 5; ++a) pairs.add(n, a);
  for (NodeId n = 1; n <= 8; ++n) pairs.add(n, 9);  // small singleton set
  Partition p({{0, 1, 2, 3, 4}, {9}});

  PlannerOptions o;
  o.allocation = AllocationScheme::kOrdered;
  const auto topo = Planner(system, o).build_for_partition(pairs, p);
  std::size_t big_collected = 0, small_collected = 0;
  for (const auto& e : topo.entries())
    (e.attrs.size() > 1 ? big_collected : small_collected) = e.collected_pairs;
  // Largest-first: the 5-attr tree gets the nodes (message 15 <= 24); the
  // singleton tree then cannot fit (15 used + 11 > 24).
  EXPECT_EQ(big_collected, 40u);
  EXPECT_EQ(small_collected, 0u);
}

TEST(Allocation, SchemeNames) {
  EXPECT_STREQ(to_string(AllocationScheme::kUniform), "UNIFORM");
  EXPECT_STREQ(to_string(AllocationScheme::kProportional), "PROPORTIONAL");
  EXPECT_STREQ(to_string(AllocationScheme::kOnDemand), "ON-DEMAND");
  EXPECT_STREQ(to_string(AllocationScheme::kOrdered), "ORDERED");
}

}  // namespace
}  // namespace remo
