#include "planner/planner.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "task/task_manager.h"
#include "task/workload.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

PlannerOptions options(PartitionScheme scheme) {
  PlannerOptions o;
  o.partition_scheme = scheme;
  return o;
}

/// Two node groups with disjoint attribute interests plus one shared
/// attribute — classic cost-sharing structure.
struct GroupFixture {
  SystemModel system{20, 200.0, kCost};
  PairSet pairs{21};

  GroupFixture() {
    system.set_collector_capacity(400.0);
    for (NodeId id = 1; id <= 20; ++id) {
      std::vector<AttrId> attrs;
      if (id <= 10) attrs = {0, 1};  // group A monitors attrs 0,1
      else
        attrs = {2, 3};  // group B monitors attrs 2,3
      attrs.push_back(4);  // everyone monitors attr 4
      system.set_observable(id, attrs);
      for (AttrId a : attrs) pairs.add(id, a);
    }
  }
};

TEST(Planner, SchemesProduceValidTopologies) {
  GroupFixture f;
  for (auto scheme : {PartitionScheme::kSingletonSet, PartitionScheme::kOneSet,
                      PartitionScheme::kRemo}) {
    Planner planner(f.system, options(scheme));
    auto topo = planner.plan(f.pairs);
    EXPECT_TRUE(topo.validate(f.system)) << to_string(scheme);
    EXPECT_EQ(topo.total_pairs(), f.pairs.total_pairs());
  }
}

TEST(Planner, SingletonSchemeUsesOneTreePerAttribute) {
  GroupFixture f;
  Planner planner(f.system, options(PartitionScheme::kSingletonSet));
  auto topo = planner.plan(f.pairs);
  EXPECT_EQ(topo.num_trees(), 5u);
}

TEST(Planner, OneSetSchemeUsesSingleTree) {
  GroupFixture f;
  Planner planner(f.system, options(PartitionScheme::kOneSet));
  auto topo = planner.plan(f.pairs);
  EXPECT_EQ(topo.num_trees(), 1u);
}

TEST(Planner, RemoNeverCollectsFewerThanBothBaselines) {
  // The local search starts from SINGLETON-SET and only accepts strict
  // improvements, so it dominates it by construction; it should also beat
  // or match ONE-SET on this workload.
  GroupFixture f;
  const auto singleton =
      Planner(f.system, options(PartitionScheme::kSingletonSet)).plan(f.pairs);
  const auto one_set =
      Planner(f.system, options(PartitionScheme::kOneSet)).plan(f.pairs);
  const auto remo = Planner(f.system, options(PartitionScheme::kRemo)).plan(f.pairs);
  EXPECT_GE(remo.collected_pairs(), singleton.collected_pairs());
  EXPECT_GE(remo.collected_pairs(), one_set.collected_pairs());
}

TEST(Planner, RemoMergesCostSharingGroups) {
  // With ample capacity, merging co-located attributes strictly reduces
  // message cost, so REMO should end with fewer trees than SINGLETON-SET.
  GroupFixture f;
  Planner planner(f.system, options(PartitionScheme::kRemo));
  auto topo = planner.plan(f.pairs);
  EXPECT_LT(topo.num_trees(), 5u);
  EXPECT_GE(topo.num_trees(), 1u);
  // And never at the price of coverage or cost vs the singleton start.
  auto singleton =
      Planner(f.system, options(PartitionScheme::kSingletonSet)).plan(f.pairs);
  EXPECT_GE(topo.collected_pairs(), singleton.collected_pairs());
  if (topo.collected_pairs() == singleton.collected_pairs()) {
    EXPECT_LE(topo.total_cost(), singleton.total_cost());
  }
}

TEST(Planner, ImproveOnceReturnsFalseAtConvergence) {
  GroupFixture f;
  Planner planner(f.system, options(PartitionScheme::kRemo));
  auto topo = planner.plan(f.pairs);
  EXPECT_FALSE(planner.improve_once(topo, f.pairs));  // already converged
}

TEST(Planner, ConflictsKeepAttributesInDifferentTrees) {
  GroupFixture f;
  PlannerOptions o = options(PartitionScheme::kRemo);
  o.conflicts.forbid(0, 1);  // attrs 0 and 1 must ride different trees
  Planner planner(f.system, o);
  auto topo = planner.plan(f.pairs);
  const Partition p = topo.partition();
  EXPECT_NE(p.set_of(0), p.set_of(1));
  EXPECT_TRUE(o.conflicts.satisfied_by(p));
}

TEST(Planner, ScoreOrdering) {
  PlanScore more{10, 100.0}, less{5, 50.0}, same_cheaper{10, 80.0};
  EXPECT_TRUE(improves(more, less));
  EXPECT_FALSE(improves(less, more));
  EXPECT_TRUE(improves(same_cheaper, more));
  EXPECT_FALSE(improves(more, more));
}

TEST(Planner, EmptyPairSetYieldsEmptyPlan) {
  SystemModel system(4, 100.0, kCost);
  Planner planner(system, options(PartitionScheme::kRemo));
  auto topo = planner.plan(PairSet(5));
  EXPECT_EQ(topo.num_trees(), 0u);
  EXPECT_EQ(topo.collected_pairs(), 0u);
}

TEST(Planner, HeavyWorkloadPartialCoverageStaysFeasible) {
  SystemModel system(40, 50.0, kCost);
  system.set_collector_capacity(100.0);
  Rng rng{7};
  system.assign_random_attributes(30, 10, rng);
  PairSet pairs(41);
  for (NodeId id = 1; id <= 40; ++id)
    for (AttrId a : system.observable(id)) pairs.add(id, a);
  Planner planner(system, options(PartitionScheme::kRemo));
  auto topo = planner.plan(pairs);
  EXPECT_TRUE(topo.validate(system));
  EXPECT_LT(topo.coverage(), 1.0);  // workload deliberately too heavy
  EXPECT_GT(topo.coverage(), 0.0);
}

TEST(Planner, RemoBeatsBaselinesOnRandomWorkload) {
  // The headline claim on a random synthetic workload: REMO >= max of the
  // two standard schemes in collected pairs.
  SystemModel system(60, 80.0, kCost);
  system.set_collector_capacity(300.0);
  Rng rng{11};
  system.assign_random_attributes(20, 6, rng);
  WorkloadGenerator gen(system, WorkloadConfig{}, 13);
  TaskManager manager(&system);
  for (auto& t : gen.small_tasks(30)) manager.add_task(std::move(t));
  const PairSet pairs = manager.dedup(system.num_vertices());

  const auto singleton =
      Planner(system, options(PartitionScheme::kSingletonSet)).plan(pairs);
  const auto one_set =
      Planner(system, options(PartitionScheme::kOneSet)).plan(pairs);
  const auto remo = Planner(system, options(PartitionScheme::kRemo)).plan(pairs);
  EXPECT_GE(remo.collected_pairs(),
            std::max(singleton.collected_pairs(), one_set.collected_pairs()));
}

}  // namespace
}  // namespace remo
