#include "planner/topology.h"

#include <gtest/gtest.h>

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

/// n nodes, every node observes+monitors attrs [0, attrs).
struct Fixture {
  SystemModel system;
  PairSet pairs;

  Fixture(std::size_t n, std::size_t attrs, Capacity node_cap,
          Capacity collector_cap)
      : system(n, node_cap, kCost), pairs(n + 1) {
    system.set_collector_capacity(collector_cap);
    for (NodeId id = 1; id <= n; ++id) {
      std::vector<AttrId> a;
      for (AttrId x = 0; x < attrs; ++x) {
        a.push_back(x);
        pairs.add(id, x);
      }
      system.set_observable(id, a);
    }
  }
};

TreeBuildOptions adaptive() {
  TreeBuildOptions o;
  o.scheme = TreeScheme::kAdaptive;
  return o;
}

TEST(Topology, SingletonPartitionBuildsOneTreePerAttr) {
  Fixture f(10, 3, 1e6, 1e6);
  auto topo = build_topology(f.system, f.pairs, Partition::singleton({0, 1, 2}),
                             AttrSpecTable{}, AllocationScheme::kOrdered, adaptive());
  EXPECT_EQ(topo.num_trees(), 3u);
  EXPECT_EQ(topo.total_pairs(), 30u);
  EXPECT_EQ(topo.collected_pairs(), 30u);
  EXPECT_DOUBLE_EQ(topo.coverage(), 1.0);
  EXPECT_TRUE(topo.validate(f.system));
}

TEST(Topology, OneSetPartitionBuildsOneTree) {
  Fixture f(10, 3, 1e6, 1e6);
  auto topo = build_topology(f.system, f.pairs, Partition::one_set({0, 1, 2}),
                             AttrSpecTable{}, AllocationScheme::kOrdered, adaptive());
  EXPECT_EQ(topo.num_trees(), 1u);
  EXPECT_EQ(topo.collected_pairs(), 30u);
}

TEST(Topology, GlobalCapacityNeverExceeded) {
  // Tight capacities force partial coverage; the invariant must hold.
  Fixture f(30, 4, 60.0, 120.0);
  for (auto alloc : {AllocationScheme::kUniform, AllocationScheme::kProportional,
                     AllocationScheme::kOnDemand, AllocationScheme::kOrdered}) {
    auto topo = build_topology(f.system, f.pairs, Partition::singleton({0, 1, 2, 3}),
                               AttrSpecTable{}, alloc, adaptive());
    EXPECT_TRUE(topo.validate(f.system)) << to_string(alloc);
    EXPECT_LE(topo.collected_pairs(), topo.total_pairs());
  }
}

TEST(Topology, NodeUsageAggregatesAcrossTrees) {
  Fixture f(5, 2, 1e6, 1e6);
  auto topo = build_topology(f.system, f.pairs, Partition::singleton({0, 1}),
                             AttrSpecTable{}, AllocationScheme::kOrdered, adaptive());
  for (NodeId n = 1; n <= 5; ++n) {
    Capacity sum = 0;
    for (const auto& e : topo.entries())
      if (e.tree.contains(n)) sum += e.tree.usage(n);
    EXPECT_DOUBLE_EQ(topo.node_usage(n), sum);
  }
}

TEST(Topology, PartitionRoundTripsThroughEntries) {
  Fixture f(6, 4, 1e6, 1e6);
  Partition p({{0, 2}, {1}, {3}});
  auto topo = build_topology(f.system, f.pairs, p, AttrSpecTable{},
                             AllocationScheme::kOrdered, adaptive());
  EXPECT_EQ(topo.partition(), p);
}

TEST(Topology, EdgeDiffZeroForIdenticalTopologies) {
  Fixture f(8, 2, 1e6, 1e6);
  auto a = build_topology(f.system, f.pairs, Partition::singleton({0, 1}),
                          AttrSpecTable{}, AllocationScheme::kOrdered, adaptive());
  EXPECT_EQ(edge_diff(a, a), 0u);
}

TEST(Topology, EdgeDiffCountsChangedLinks) {
  Fixture f(8, 2, 1e6, 1e6);
  auto a = build_topology(f.system, f.pairs, Partition::singleton({0, 1}),
                          AttrSpecTable{}, AllocationScheme::kOrdered, adaptive());
  auto b = build_topology(f.system, f.pairs, Partition::one_set({0, 1}),
                          AttrSpecTable{}, AllocationScheme::kOrdered, adaptive());
  // a has 16 member-links (8 nodes x 2 trees), b has 8.
  const std::size_t diff = edge_diff(a, b);
  EXPECT_GT(diff, 0u);
  EXPECT_LE(diff, a.edges().size() + b.edges().size());
}

TEST(Topology, RebuildTreesReplacesVictimsOnly) {
  Fixture f(10, 3, 1e6, 1e6);
  auto topo = build_topology(f.system, f.pairs, Partition::singleton({0, 1, 2}),
                             AttrSpecTable{}, AllocationScheme::kOrdered, adaptive());
  // Merge trees for attrs {0} and {1} into one tree for {0,1}.
  std::size_t v0 = 0, v1 = 0;
  for (std::size_t i = 0; i < topo.entries().size(); ++i) {
    if (topo.entries()[i].attrs == std::vector<AttrId>{0}) v0 = i;
    if (topo.entries()[i].attrs == std::vector<AttrId>{1}) v1 = i;
  }
  auto merged = rebuild_trees(topo, f.system, f.pairs, {v0, v1}, {{0, 1}},
                              AttrSpecTable{}, AllocationScheme::kOrdered, adaptive());
  EXPECT_EQ(merged.num_trees(), 2u);
  EXPECT_EQ(merged.collected_pairs(), 30u);
  EXPECT_TRUE(merged.validate(f.system));
  // The untouched {2} tree is carried over verbatim.
  bool found = false;
  for (const auto& e : merged.entries())
    if (e.attrs == std::vector<AttrId>{2}) found = true;
  EXPECT_TRUE(found);
}

TEST(Topology, MergedTreeSavesMessages) {
  Fixture f(12, 2, 1e6, 1e6);
  auto split = build_topology(f.system, f.pairs, Partition::singleton({0, 1}),
                              AttrSpecTable{}, AllocationScheme::kOrdered, adaptive());
  auto merged = build_topology(f.system, f.pairs, Partition::one_set({0, 1}),
                               AttrSpecTable{}, AllocationScheme::kOrdered, adaptive());
  // Same coverage here, but ONE-SET sends half the messages and therefore
  // pays less per-message overhead in total.
  EXPECT_EQ(split.collected_pairs(), merged.collected_pairs());
  EXPECT_GT(split.total_messages(), merged.total_messages());
  EXPECT_GT(split.total_cost(), merged.total_cost());
}

TEST(Topology, UniformAllocationCapsPerTreeShare) {
  // Two singleton trees; uniform split halves each node's budget per tree.
  // With node capacity 24 and C=10,a=1: half-share 12 affords u=11 (leaf
  // only) — no relaying capacity, so trees stay star-shaped under the
  // collector until it fills. With on-demand, the first tree could use the
  // full 24 for relaying.
  Fixture f(20, 2, 24.0, 80.0);
  auto uniform =
      build_topology(f.system, f.pairs, Partition::singleton({0, 1}),
                     AttrSpecTable{}, AllocationScheme::kUniform, adaptive());
  auto on_demand =
      build_topology(f.system, f.pairs, Partition::singleton({0, 1}),
                     AttrSpecTable{}, AllocationScheme::kOnDemand, adaptive());
  EXPECT_TRUE(uniform.validate(f.system));
  EXPECT_TRUE(on_demand.validate(f.system));
  EXPECT_GE(on_demand.collected_pairs(), uniform.collected_pairs());
}

TEST(Topology, CoverageIsOneForEmptyPairSet) {
  SystemModel system(3, 100.0, kCost);
  PairSet pairs(4);
  auto topo = build_topology(system, pairs, Partition{}, AttrSpecTable{},
                             AllocationScheme::kOrdered, adaptive());
  EXPECT_EQ(topo.num_trees(), 0u);
  EXPECT_DOUBLE_EQ(topo.coverage(), 1.0);
}

}  // namespace
}  // namespace remo
