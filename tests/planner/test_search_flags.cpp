// The PlannerOptions search-quality switches (ablation knobs): their
// observable contracts, independent of absolute plan quality.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "planner/planner.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

struct Fixture {
  SystemModel system;
  PairSet pairs;

  Fixture() : system(40, 60.0, kCost), pairs(41) {
    system.set_collector_capacity(800.0);
    Rng rng{5};
    system.assign_random_attributes(16, 6, rng);
    for (NodeId n = 1; n <= 40; ++n)
      for (AttrId a : system.observable(n)) pairs.add(n, a);
  }
};

PlannerOptions base_options() {
  PlannerOptions o;
  o.max_candidates = 8;
  o.max_iterations = 64;
  // Serial evaluation: first-improvement evaluates candidates in chunks of
  // num_threads, so evaluation-count comparisons are only exact at 1.
  o.num_threads = 1;
  return o;
}

TEST(SearchFlags, FirstImprovementEvaluatesFewerCandidates) {
  Fixture f;
  PlannerOptions best = base_options();
  PlannerOptions first = base_options();
  first.best_of_candidates = false;
  Planner pb(f.system, best), pf(f.system, first);
  (void)pb.plan(f.pairs);
  (void)pf.plan(f.pairs);
  EXPECT_LT(pf.last_evaluations(), pb.last_evaluations());
}

TEST(SearchFlags, EveryVariantProducesValidDominantPlans) {
  // Whatever the switches, the plan must stay valid and non-trivial.
  Fixture f;
  for (int mask = 0; mask < 16; ++mask) {
    PlannerOptions o = base_options();
    o.best_of_candidates = mask & 1;
    o.relayout_escape = mask & 2;
    o.endpoint_guard = mask & 4;
    o.starvation_ranking = mask & 8;
    const Topology topo = Planner(f.system, o).plan(f.pairs);
    ASSERT_TRUE(topo.validate(f.system)) << "mask " << mask;
    EXPECT_GT(topo.collected_pairs(), 0u) << "mask " << mask;
  }
}

TEST(SearchFlags, EndpointGuardNeverHurtsTheObjective) {
  Fixture f;
  PlannerOptions with = base_options();
  PlannerOptions without = base_options();
  without.endpoint_guard = false;
  const auto guarded = Planner(f.system, with).plan(f.pairs);
  const auto bare = Planner(f.system, without).plan(f.pairs);
  const auto gs = score_of(guarded);
  const auto bs = score_of(bare);
  EXPECT_TRUE(gs.collected > bs.collected ||
              (gs.collected == bs.collected && gs.cost <= bs.cost + 1e-6));
}

TEST(SearchFlags, PaperOnlyConfigurationStillDominatesSingleton) {
  // Even with every guard off, the climb starts at SINGLETON-SET and only
  // accepts improvements: it can never end below it.
  Fixture f;
  PlannerOptions paper = base_options();
  paper.best_of_candidates = false;
  paper.relayout_escape = false;
  paper.endpoint_guard = false;
  paper.starvation_ranking = false;
  PlannerOptions singleton = base_options();
  singleton.partition_scheme = PartitionScheme::kSingletonSet;
  const auto climbed = Planner(f.system, paper).plan(f.pairs);
  const auto start = Planner(f.system, singleton).plan(f.pairs);
  EXPECT_GE(climbed.collected_pairs(), start.collected_pairs());
}

}  // namespace
}  // namespace remo
