#include "planner/export.h"

#include <gtest/gtest.h>

#include "planner/planner.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

Topology small_topology() {
  SystemModel system(4, 1e6, kCost);
  system.set_collector_capacity(1e9);
  PairSet pairs(5);
  for (NodeId n = 1; n <= 4; ++n) {
    system.set_observable(n, {0, 1});
    pairs.add(n, 0);
    pairs.add(n, 1);
  }
  PlannerOptions o;
  o.partition_scheme = PartitionScheme::kSingletonSet;
  return Planner(system, o).plan(pairs);
}

TEST(Export, DotContainsEveryMemberAndTheCollector) {
  const auto topo = small_topology();
  const std::string dot = to_dot(topo);
  EXPECT_NE(dot.find("digraph remo_topology"), std::string::npos);
  EXPECT_NE(dot.find("collector"), std::string::npos);
  for (std::size_t k = 0; k < topo.num_trees(); ++k) {
    EXPECT_NE(dot.find("cluster_" + std::to_string(k)), std::string::npos);
    for (NodeId n : topo.entries()[k].tree.members()) {
      const std::string id = "t" + std::to_string(k) + "_n" + std::to_string(n);
      EXPECT_NE(dot.find(id), std::string::npos) << id;
    }
  }
  // Balanced braces (cheap well-formedness check).
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(Export, DotEdgesPointToParents) {
  const auto topo = small_topology();
  const std::string dot = to_dot(topo);
  // Every member of every tree produces exactly one edge line ("->").
  std::size_t edges = 0;
  for (std::size_t pos = dot.find("->"); pos != std::string::npos;
       pos = dot.find("->", pos + 2))
    ++edges;
  std::size_t members = 0;
  for (const auto& e : topo.entries()) members += e.tree.size();
  EXPECT_EQ(edges, members);
}

TEST(Export, JsonContainsSummaryFields) {
  const auto topo = small_topology();
  const std::string json = to_json(topo);
  EXPECT_NE(json.find("\"trees\": " + std::to_string(topo.num_trees())),
            std::string::npos);
  EXPECT_NE(json.find("\"total_pairs\": " + std::to_string(topo.total_pairs())),
            std::string::npos);
  EXPECT_NE(json.find("\"collected_pairs\": " +
                      std::to_string(topo.collected_pairs())),
            std::string::npos);
  EXPECT_NE(json.find("\"forest\""), std::string::npos);
  // Balanced brackets and braces.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Export, EmptyTopology) {
  Topology empty;
  EXPECT_NE(to_dot(empty).find("digraph"), std::string::npos);
  EXPECT_NE(to_json(empty).find("\"trees\": 0"), std::string::npos);
}

}  // namespace
}  // namespace remo
