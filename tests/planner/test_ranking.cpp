// rank_topology_augmentations: the search's candidate generator.
#include <gtest/gtest.h>

#include "common/sorted_vector.h"
#include "planner/planner.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

/// Builds a topology over a partition with controllable starvation: nodes
/// 1..n monitor both attrs 0 and 1; attr 2 lives on starved nodes whose
/// capacity cannot fit anything.
struct RankFixture {
  SystemModel system;
  PairSet pairs;
  Topology topo;

  RankFixture() : system(12, 40.0, kCost), pairs(13) {
    system.set_collector_capacity(1e6);
    for (NodeId n = 1; n <= 8; ++n) {
      system.set_observable(n, {0, 1});
      pairs.add(n, 0);
      pairs.add(n, 1);
    }
    for (NodeId n = 9; n <= 12; ++n) {
      system.set_observable(n, {2});
      system.set_capacity(n, 5.0);  // cannot even send one message
      pairs.add(n, 2);
    }
    PlannerOptions o;
    topo = Planner(system, o).build_for_partition(pairs,
                                                  Partition({{0}, {1}, {2}}));
  }
};

TEST(Ranking, StarvedLoadedMergeOutranksStarvedStarved) {
  RankFixture f;
  // Tree {2} is fully starved; {0} and {1} are loaded and overlap fully.
  const auto ranked = rank_topology_augmentations(
      f.topo, f.pairs, kCost, ConflictConstraints{}, 0, nullptr, true);
  ASSERT_FALSE(ranked.empty());
  // The top candidate must be the {0}+{1} merge: huge overlap AND nothing
  // recoverable from the dead tree {2} (its nodes have no capacity).
  EXPECT_EQ(ranked[0].kind, AugmentKind::kMerge);
  const Partition p = f.topo.partition();
  const auto top_union =
      remo::set_union(p.set(ranked[0].set_a), p.set(ranked[0].set_b));
  EXPECT_EQ(top_union, (std::vector<AttrId>{0, 1}));
}

TEST(Ranking, MustInvolveMaskFiltersCandidates) {
  RankFixture f;
  std::vector<bool> mask(f.topo.entries().size(), false);
  // Allow only operations touching the tree that carries attr 2.
  const Partition p = f.topo.partition();
  for (std::size_t i = 0; i < p.num_sets(); ++i)
    if (set_contains(p.set(i), AttrId{2})) mask[i] = true;
  const auto ranked = rank_topology_augmentations(
      f.topo, f.pairs, kCost, ConflictConstraints{}, 0, &mask, true);
  for (const auto& aug : ranked) {
    const bool touches_2 =
        set_contains(p.set(aug.set_a), AttrId{2}) ||
        (aug.kind == AugmentKind::kMerge &&
         set_contains(p.set(aug.set_b), AttrId{2}));
    EXPECT_TRUE(touches_2);
  }
  EXPECT_LT(ranked.size(),
            rank_topology_augmentations(f.topo, f.pairs, kCost,
                                        ConflictConstraints{}, 0)
                .size());
}

TEST(Ranking, ConflictsExcludeMerges) {
  RankFixture f;
  ConflictConstraints c;
  c.forbid(0, 1);
  const Partition p = f.topo.partition();
  const auto ranked =
      rank_topology_augmentations(f.topo, f.pairs, kCost, c, 0, nullptr, true);
  for (const auto& aug : ranked) {
    if (aug.kind != AugmentKind::kMerge) continue;
    const bool zero_one = set_contains(p.set(aug.set_a), AttrId{0})
                              ? set_contains(p.set(aug.set_b), AttrId{1})
                              : set_contains(p.set(aug.set_a), AttrId{1}) &&
                                    set_contains(p.set(aug.set_b), AttrId{0});
    EXPECT_FALSE(zero_one);
  }
}

TEST(Ranking, TruncationKeepsTopRanked) {
  RankFixture f;
  const auto full = rank_topology_augmentations(f.topo, f.pairs, kCost,
                                                ConflictConstraints{}, 0);
  const auto top2 = rank_topology_augmentations(f.topo, f.pairs, kCost,
                                                ConflictConstraints{}, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].estimated_gain, full[0].estimated_gain);
  EXPECT_EQ(top2[1].estimated_gain, full[1].estimated_gain);
  // Monotone non-increasing gains.
  for (std::size_t i = 1; i < full.size(); ++i)
    EXPECT_LE(full[i].estimated_gain, full[i - 1].estimated_gain);
}

TEST(Ranking, StarvationBonusToggle) {
  // With the bonus off, the starved/loaded distinction vanishes: the
  // estimates reduce to the plain overlap formula.
  RankFixture f;
  const auto plain = rank_topology_augmentations(
      f.topo, f.pairs, kCost, ConflictConstraints{}, 0, nullptr, false);
  const Partition p = f.topo.partition();
  for (const auto& aug : plain) {
    if (aug.kind != AugmentKind::kMerge) continue;
    EXPECT_DOUBLE_EQ(
        aug.estimated_gain,
        estimate_merge_gain(p, aug.set_a, aug.set_b, f.pairs, kCost));
  }
}

}  // namespace
}  // namespace remo
