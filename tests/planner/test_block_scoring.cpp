// Block-dispatch and SIMD determinism properties (DESIGN.md §15): the
// committed plan and collected pairs are bit-identical across every
// candidate_block_size, thread count, and SIMD toggle — dispatch shape and
// kernel selection are pure throughput knobs, never tie-breakers.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "planner/planner.h"
#include "task/pair_set.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

/// Restores the process-global SIMD toggle on scope exit; the toggle only
/// selects between bit-identical kernels, but tests must not leak state.
struct SimdGuard {
  bool saved = simd::enabled();
  ~SimdGuard() { simd::set_enabled(saved); }
};

struct RandomWorkload {
  SystemModel system;
  PairSet pairs;

  RandomWorkload(std::uint64_t seed, std::size_t n, Capacity node_cap,
                 Capacity collector_cap, std::size_t universe, std::size_t per_node)
      : system(n, node_cap, kCost), pairs(n + 1) {
    system.set_collector_capacity(collector_cap);
    Rng rng{seed};
    system.assign_random_attributes(universe, per_node, rng);
    for (NodeId id = 1; id <= n; ++id)
      for (AttrId a : system.observable(id)) pairs.add(id, a);
  }
};

PlannerOptions engine_options(std::size_t threads, std::size_t block) {
  PlannerOptions o;
  o.num_threads = threads;
  o.candidate_block_size = block;
  return o;
}

void expect_plan_invariant(const RandomWorkload& w, PlannerOptions base,
                           std::uint64_t seed) {
  SimdGuard guard;
  // Reference: serial, one candidate per task, scalar kernels.
  simd::set_enabled(false);
  PlannerOptions ref_opts = base;
  ref_opts.num_threads = 1;
  ref_opts.candidate_block_size = 1;
  const auto reference = Planner(w.system, ref_opts).plan(w.pairs);
  const PlanScore ref_score = score_of(reference);

  for (const bool simd_on : {false, true}) {
    simd::set_enabled(simd_on);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      for (const std::size_t block :
           {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
        PlannerOptions opts = base;
        opts.num_threads = threads;
        opts.candidate_block_size = block;
        const auto topo = Planner(w.system, opts).plan(w.pairs);
        const PlanScore s = score_of(topo);
        EXPECT_EQ(topo.edges(), reference.edges())
            << "seed=" << seed << " simd=" << simd_on << " threads=" << threads
            << " block=" << block;
        EXPECT_EQ(s.collected, ref_score.collected) << "seed=" << seed;
        EXPECT_DOUBLE_EQ(s.cost, ref_score.cost) << "seed=" << seed;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 20-seed property over the identity-funnel fast path (the dominant
// workload shape): block size x thread count x SIMD on/off.

TEST(BlockScoring, PlanIdenticalAcrossBlockSizesThreadsAndSimd) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::size_t n = 16 + static_cast<std::size_t>(seed % 7) * 4;
    const Capacity cap = 40.0 + 15.0 * static_cast<double>(seed % 5);
    const Capacity coll = 120.0 + 40.0 * static_cast<double>(seed % 3);
    RandomWorkload w(seed, n, cap, coll, 10 + seed % 6, 4);
    expect_plan_invariant(w, PlannerOptions{}, seed);
  }
}

// Non-identity funnels and fractional weights force the general scalar
// walk (sequential float reduction): the block/SIMD invariance must hold
// there too — the SIMD toggle only reroutes the integer kernels.
TEST(BlockScoring, PlanIdenticalOnNonIdentityFunnelWorkloads) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::size_t n = 18 + static_cast<std::size_t>(seed % 4) * 6;
    RandomWorkload w(seed, n, 55.0, 180.0, 12, 4);
    PlannerOptions base;
    for (AttrId a = 0; a < 12; ++a) {
      if (a % 3 == 0) base.attr_specs.set_funnel(a, FunnelSpec{AggType::kSum});
      if (a % 3 == 1) base.attr_specs.set_funnel(a, FunnelSpec{AggType::kTopK, 2});
      if (a % 2 == 0) base.attr_specs.set_weight(a, 0.5);
    }
    expect_plan_invariant(w, base, seed);
  }
}

// First-improvement search commits the lowest-ranked improving candidate;
// the chunked scan must find the same winner no matter how block size and
// thread count cut the chunks.
TEST(BlockScoring, FirstImprovementWinnerInvariantToChunking) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::size_t n = 20 + static_cast<std::size_t>(seed % 5) * 4;
    RandomWorkload w(seed, n, 50.0, 160.0, 11, 4);
    PlannerOptions base;
    base.best_of_candidates = false;
    expect_plan_invariant(w, base, seed);
  }
}

// candidate_block_size = 0 is documented as "treated as 1".
TEST(BlockScoring, ZeroBlockSizeBehavesAsOne) {
  RandomWorkload w(7, 24, 60.0, 200.0, 12, 4);
  const auto one = Planner(w.system, engine_options(4, 1)).plan(w.pairs);
  const auto zero = Planner(w.system, engine_options(4, 0)).plan(w.pairs);
  EXPECT_EQ(one.edges(), zero.edges());
  EXPECT_EQ(score_of(one).collected, score_of(zero).collected);
}

// A block far larger than the candidate list degenerates to the serial
// scan and must still agree.
TEST(BlockScoring, OversizedBlockMatchesSerial) {
  RandomWorkload w(9, 28, 55.0, 200.0, 13, 4);
  const auto serial = Planner(w.system, engine_options(1, 1)).plan(w.pairs);
  const auto big = Planner(w.system, engine_options(4, 4096)).plan(w.pairs);
  EXPECT_EQ(serial.edges(), big.edges());
  EXPECT_DOUBLE_EQ(score_of(serial).cost, score_of(big).cost);
}

}  // namespace
}  // namespace remo
