#include "task/workload.h"

#include <gtest/gtest.h>

#include "common/sorted_vector.h"

namespace remo {
namespace {

SystemModel make_system(std::size_t n = 50, std::size_t universe = 40,
                        std::size_t per_node = 10, std::uint64_t seed = 5) {
  SystemModel s(n, 100.0);
  Rng rng{seed};
  s.assign_random_attributes(universe, per_node, rng);
  return s;
}

TEST(Workload, MakeTaskRespectsSizes) {
  auto system = make_system();
  WorkloadGenerator gen(system, WorkloadConfig{}, 1);
  const auto t = gen.make_task(4, 10);
  EXPECT_EQ(t.nodes.size(), 10u);
  EXPECT_LE(t.attrs.size(), 4u);
  EXPECT_GE(t.attrs.size(), 1u);
  EXPECT_TRUE(is_sorted_unique(t.attrs));
  EXPECT_TRUE(is_sorted_unique(t.nodes));
  for (NodeId n : t.nodes) {
    EXPECT_GE(n, 1u);
    EXPECT_LE(n, system.num_nodes());
  }
}

TEST(Workload, ObservableDrawYieldsPairs) {
  auto system = make_system();
  WorkloadGenerator gen(system, WorkloadConfig{}, 2);
  TaskManager manager(&system);
  manager.add_task(gen.make_task(5, 15));
  EXPECT_GT(manager.dedup(system.num_vertices()).total_pairs(), 0u);
}

TEST(Workload, SmallTasksWithinConfiguredBounds) {
  auto system = make_system(200);
  WorkloadConfig cfg;
  WorkloadGenerator gen(system, cfg, 3);
  for (const auto& t : gen.small_tasks(20)) {
    EXPECT_LE(t.attrs.size(), cfg.small_attrs_max);
    EXPECT_GE(t.nodes.size(), cfg.small_nodes_min);
    EXPECT_LE(t.nodes.size(), cfg.small_nodes_max);
  }
}

TEST(Workload, LargeTasksStressSomeDimension) {
  auto system = make_system(300, 100, 40);
  WorkloadConfig cfg;
  WorkloadGenerator gen(system, cfg, 4);
  for (const auto& t : gen.large_tasks(20)) {
    const bool many_nodes = t.nodes.size() >= cfg.large_nodes_min;
    const bool many_attrs = t.attrs.size() >= cfg.small_attrs_max;
    EXPECT_TRUE(many_nodes || many_attrs)
        << "nodes=" << t.nodes.size() << " attrs=" << t.attrs.size();
  }
}

TEST(Workload, NodeCountClampedToSystem) {
  auto system = make_system(10);
  WorkloadGenerator gen(system, WorkloadConfig{}, 5);
  EXPECT_EQ(gen.make_task(2, 500).nodes.size(), 10u);
}

TEST(Workload, DeterministicForSeed) {
  auto system = make_system();
  WorkloadGenerator a(system, WorkloadConfig{}, 42);
  WorkloadGenerator b(system, WorkloadConfig{}, 42);
  const auto ta = a.small_tasks(5);
  const auto tb = b.small_tasks(5);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].attrs, tb[i].attrs);
    EXPECT_EQ(ta[i].nodes, tb[i].nodes);
  }
}

TEST(Workload, UpdateBatchModifiesTouchedTasks) {
  auto system = make_system(100, 50, 15);
  WorkloadGenerator gen(system, WorkloadConfig{}, 6);
  TaskManager manager(&system);
  for (auto& t : gen.small_tasks(40)) manager.add_task(std::move(t));
  const PairSet before = manager.dedup(system.num_vertices());
  Rng rng{7};
  const auto stats = apply_update_batch(manager, system, 50, rng, 0.05, 0.5);
  EXPECT_GT(stats.tasks_modified, 0u);
  EXPECT_GT(stats.attrs_replaced, 0u);
  const PairSet after = manager.dedup(system.num_vertices());
  EXPECT_FALSE(diff(before, after).empty());
  EXPECT_EQ(manager.num_tasks(), 40u);  // modification, not add/remove
}

TEST(Workload, UpdateBatchStatsMatchRealTaskChanges) {
  // Regression: stats must count only genuine changes — a redraw that
  // lands back on the original attribute set is a no-op, and
  // attrs_replaced counts old attrs actually gone (old \ new), not the
  // redraw quota. The returned delta must equal the dedup diff exactly.
  auto system = make_system(60, 24, 8, 11);
  WorkloadGenerator gen(system, WorkloadConfig{.attr_universe = 24}, 12);
  TaskManager manager(&system);
  for (auto& t : gen.small_tasks(30)) manager.add_task(std::move(t));

  Rng rng{13};
  for (int round = 0; round < 10; ++round) {
    const std::map<TaskId, MonitoringTask> before_tasks = manager.tasks();
    const PairSet before = manager.dedup(system.num_vertices());
    const auto stats = apply_update_batch(manager, system, 24, rng, 0.1, 0.5);

    std::size_t modified = 0, replaced = 0;
    for (const auto& [id, t] : manager.tasks()) {
      const auto& old = before_tasks.at(id);
      if (old.attrs == t.attrs) continue;
      ++modified;
      replaced += set_difference(old.attrs, t.attrs).size();
    }
    EXPECT_EQ(stats.tasks_modified, modified) << "round=" << round;
    EXPECT_EQ(stats.attrs_replaced, replaced) << "round=" << round;

    const PairSetDelta expected = diff(before, manager.dedup(system.num_vertices()));
    EXPECT_EQ(stats.delta.pairs.added, expected.added) << "round=" << round;
    EXPECT_EQ(stats.delta.pairs.removed, expected.removed) << "round=" << round;
    EXPECT_EQ(stats.delta.tasks_touched.size(), modified) << "round=" << round;
  }
}

TEST(Workload, UpdateBatchPicksAtLeastOneNodeOnTinySystems) {
  // node_fraction × nodes rounds to zero here; the clamp must still pick
  // one node per batch so small systems churn at all.
  auto system = make_system(4, 12, 6, 14);
  WorkloadGenerator gen(system, WorkloadConfig{.attr_universe = 12}, 15);
  TaskManager manager(&system);
  for (auto& t : gen.small_tasks(6)) manager.add_task(std::move(t));
  Rng rng{16};
  std::size_t modified = 0;
  for (int round = 0; round < 20; ++round)
    modified += apply_update_batch(manager, system, 12, rng, 0.0, 0.5).tasks_modified;
  EXPECT_GT(modified, 0u);
}

TEST(Workload, UpdateBatchAttrsStayInUniverse) {
  auto system = make_system(50, 30, 10);
  WorkloadGenerator gen(system, WorkloadConfig{}, 8);
  TaskManager manager(&system, /*filter_observable=*/false);
  for (auto& t : gen.small_tasks(20)) manager.add_task(std::move(t));
  Rng rng{9};
  apply_update_batch(manager, system, 30, rng, 0.2, 0.5);
  for (const auto& [id, t] : manager.tasks())
    for (AttrId a : t.attrs) EXPECT_LT(a, 30u);
}

}  // namespace
}  // namespace remo
