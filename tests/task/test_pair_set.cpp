#include "task/pair_set.h"

#include <gtest/gtest.h>

namespace remo {
namespace {

TEST(PairSet, AddDeduplicates) {
  PairSet p(5);
  EXPECT_TRUE(p.add(1, 7));
  EXPECT_FALSE(p.add(1, 7));  // duplicate ignored (task-manager semantics)
  EXPECT_EQ(p.total_pairs(), 1u);
  EXPECT_TRUE(p.contains(1, 7));
}

TEST(PairSet, RemoveTracksCount) {
  PairSet p(5);
  p.add(1, 7);
  p.add(2, 7);
  EXPECT_TRUE(p.remove(1, 7));
  EXPECT_FALSE(p.remove(1, 7));
  EXPECT_EQ(p.total_pairs(), 1u);
  EXPECT_FALSE(p.contains(1, 7));
  EXPECT_TRUE(p.contains(2, 7));
}

TEST(PairSet, AttrsOfSortedUnique) {
  PairSet p(5);
  p.add(3, 9);
  p.add(3, 2);
  p.add(3, 5);
  EXPECT_EQ(p.attrs_of(3), (std::vector<AttrId>{2, 5, 9}));
}

TEST(PairSet, AttributeUniverse) {
  PairSet p(5);
  p.add(1, 2);
  p.add(2, 2);
  p.add(3, 0);
  EXPECT_EQ(p.attribute_universe(), (std::vector<AttrId>{0, 2}));
}

TEST(PairSet, NodesWithQueries) {
  PairSet p(6);
  p.add(1, 0);
  p.add(3, 0);
  p.add(3, 1);
  p.add(5, 2);
  EXPECT_EQ(p.nodes_with(0), (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(p.nodes_with_any({0, 2}), (std::vector<NodeId>{1, 3, 5}));
  EXPECT_EQ(p.nodes_with_any({7}), (std::vector<NodeId>{}));
  EXPECT_EQ(p.count_at(3, {0, 1, 2}), 2u);
  EXPECT_EQ(p.count_at(5, {0, 1}), 0u);
}

TEST(PairSet, AllPairsOrdered) {
  PairSet p(4);
  p.add(2, 1);
  p.add(1, 9);
  p.add(1, 3);
  const auto all = p.all_pairs();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], (NodeAttrPair{1, 3}));
  EXPECT_EQ(all[1], (NodeAttrPair{1, 9}));
  EXPECT_EQ(all[2], (NodeAttrPair{2, 1}));
}

TEST(PairSet, OutOfRangeNodeThrows) {
  PairSet p(3);
  EXPECT_THROW(p.add(5, 0), std::out_of_range);
  EXPECT_THROW((void)p.attrs_of(9), std::out_of_range);
}

TEST(PairSetDelta, DiffFindsAddsAndRemoves) {
  PairSet before(4), after(4);
  before.add(1, 0);
  before.add(2, 1);
  after.add(2, 1);
  after.add(3, 5);
  const auto d = diff(before, after);
  ASSERT_EQ(d.added.size(), 1u);
  ASSERT_EQ(d.removed.size(), 1u);
  EXPECT_EQ(d.added[0], (NodeAttrPair{3, 5}));
  EXPECT_EQ(d.removed[0], (NodeAttrPair{1, 0}));
  EXPECT_EQ(d.affected_attrs(), (std::vector<AttrId>{0, 5}));
  EXPECT_FALSE(d.empty());
}

TEST(PairSetDelta, IdenticalSetsEmptyDelta) {
  PairSet a(3);
  a.add(1, 1);
  EXPECT_TRUE(diff(a, a).empty());
}

TEST(PairSetDelta, DifferentSizedSets) {
  PairSet small(2), big(5);
  small.add(1, 0);
  big.add(1, 0);
  big.add(4, 2);
  const auto d = diff(small, big);
  ASSERT_EQ(d.added.size(), 1u);
  EXPECT_EQ(d.added[0], (NodeAttrPair{4, 2}));
  EXPECT_TRUE(d.removed.empty());
}

}  // namespace
}  // namespace remo
