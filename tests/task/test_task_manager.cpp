#include "task/task_manager.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/sorted_vector.h"

namespace remo {
namespace {

MonitoringTask task(std::vector<AttrId> attrs, std::vector<NodeId> nodes,
                    double freq = 1.0) {
  MonitoringTask t;
  t.attrs = std::move(attrs);
  t.nodes = std::move(nodes);
  t.frequency = freq;
  return t;
}

TEST(TaskManager, PaperDedupExample) {
  // t1 = ({cpu}, {a,b}), t2 = ({cpu}, {b,c}): pair (b, cpu) is duplicated
  // and must appear once (Sec. 2.2).
  TaskManager m;
  m.add_task(task({0}, {1, 2}));
  m.add_task(task({0}, {2, 3}));
  const PairSet p = m.dedup(5);
  EXPECT_EQ(p.total_pairs(), 3u);
  EXPECT_TRUE(p.contains(1, 0));
  EXPECT_TRUE(p.contains(2, 0));
  EXPECT_TRUE(p.contains(3, 0));
  EXPECT_EQ(m.raw_pair_count(), 4u);  // 2 + 2 before dedup
}

TEST(TaskManager, AssignsIdsAndFinds) {
  TaskManager m;
  const TaskId a = m.add_task(task({0}, {1}));
  const TaskId b = m.add_task(task({1}, {2}));
  EXPECT_NE(a, b);
  ASSERT_NE(m.find(a), nullptr);
  EXPECT_EQ(m.find(a)->attrs, (std::vector<AttrId>{0}));
  EXPECT_EQ(m.find(999), nullptr);
  EXPECT_EQ(m.num_tasks(), 2u);
}

TEST(TaskManager, RemoveTask) {
  TaskManager m;
  const TaskId a = m.add_task(task({0}, {1}));
  EXPECT_TRUE(m.remove_task(a));
  EXPECT_FALSE(m.remove_task(a));
  EXPECT_EQ(m.dedup(3).total_pairs(), 0u);
}

TEST(TaskManager, ModifyTaskReplacesDefinition) {
  TaskManager m;
  const TaskId a = m.add_task(task({0}, {1}));
  auto t = *m.find(a);
  t.attrs = {4, 2};
  EXPECT_TRUE(m.modify_task(t));
  EXPECT_EQ(m.find(a)->attrs, (std::vector<AttrId>{2, 4}));  // sorted
  MonitoringTask unknown = task({0}, {1});
  unknown.id = 12345;
  EXPECT_FALSE(m.modify_task(unknown));
}

TEST(TaskManager, TaskSetsSortedOnAdd) {
  TaskManager m;
  const TaskId a = m.add_task(task({9, 1, 9}, {3, 1, 3}));
  EXPECT_EQ(m.find(a)->attrs, (std::vector<AttrId>{1, 9}));
  EXPECT_EQ(m.find(a)->nodes, (std::vector<NodeId>{1, 3}));
}

TEST(TaskManager, ObservabilityFilter) {
  SystemModel system(3, 10.0);
  system.set_observable(1, {0, 1});
  system.set_observable(2, {1});
  TaskManager m(&system);
  m.add_task(task({0, 1}, {1, 2}));
  const PairSet p = m.dedup(system.num_vertices());
  EXPECT_TRUE(p.contains(1, 0));
  EXPECT_TRUE(p.contains(1, 1));
  EXPECT_FALSE(p.contains(2, 0));  // node 2 cannot observe attr 0
  EXPECT_TRUE(p.contains(2, 1));
}

TEST(TaskManager, FilterDisabledKeepsAllPairs) {
  SystemModel system(3, 10.0);  // no observables registered
  TaskManager m(&system, /*filter_observable=*/false);
  m.add_task(task({0}, {1, 2}));
  EXPECT_EQ(m.dedup(system.num_vertices()).total_pairs(), 2u);
}

TEST(TaskManager, CollectorAndOutOfRangeNodesSkipped) {
  TaskManager m;
  m.add_task(task({0}, {kCollectorId, 1, 200}));
  const PairSet p = m.dedup(3);
  EXPECT_EQ(p.total_pairs(), 1u);
  EXPECT_TRUE(p.contains(1, 0));
}

TEST(TaskManager, PairFrequenciesTakeMaxAcrossTasks) {
  TaskManager m;
  m.add_task(task({0}, {1}, 0.25));
  m.add_task(task({0}, {1, 2}, 1.0));
  const PairSet p = m.dedup(4);
  const auto freq = m.pair_frequencies(p);
  EXPECT_DOUBLE_EQ(freq.at({1, 0}), 1.0);  // fastest requester wins
  EXPECT_DOUBLE_EQ(freq.at({2, 0}), 1.0);
}

TEST(TaskManager, MutationDeltasEqualFullDiffAcrossRandomChurn) {
  // Property: for any add/remove/modify sequence, the delta the mutator
  // emits equals diff(dedup before, dedup after), and replaying deltas
  // onto a PairSet tracks dedup() exactly — the contract the delta
  // replanning path (DESIGN.md §13) stands on.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SystemModel system(20, 100.0);
    Rng attr_rng{seed};
    system.assign_random_attributes(12, 5, attr_rng);
    TaskManager m(&system);
    Rng rng{seed * 977};
    std::vector<TaskId> live;
    PairSet tracked(system.num_vertices());

    for (int step = 0; step < 60; ++step) {
      const PairSet before = m.dedup(system.num_vertices());
      TaskDelta delta;
      const int op = static_cast<int>(rng.below(3));
      if (op == 0 || live.empty()) {
        MonitoringTask t;
        const std::size_t n = 1 + rng.below(4);
        for (std::size_t i = 0; i < n; ++i)
          t.nodes.push_back(1 + static_cast<NodeId>(rng.below(20)));
        t.attrs.push_back(static_cast<AttrId>(rng.below(12)));
        t.attrs.push_back(static_cast<AttrId>(rng.below(12)));
        sort_unique(t.nodes);
        sort_unique(t.attrs);
        live.push_back(m.add_task(std::move(t), &delta));
      } else if (op == 1) {
        const std::size_t i = rng.below(live.size());
        EXPECT_TRUE(m.remove_task(live[i], &delta));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        const TaskId id = live[rng.below(live.size())];
        MonitoringTask t = *m.find(id);
        t.attrs.clear();
        t.attrs.push_back(static_cast<AttrId>(rng.below(12)));
        sort_unique(t.attrs);
        EXPECT_TRUE(m.modify_task(std::move(t), &delta));
      }

      const PairSet after = m.dedup(system.num_vertices());
      const PairSetDelta expected = diff(before, after);
      EXPECT_EQ(delta.pairs.added, expected.added) << "seed=" << seed << " step=" << step;
      EXPECT_EQ(delta.pairs.removed, expected.removed)
          << "seed=" << seed << " step=" << step;

      apply_delta(tracked, delta.pairs);
      EXPECT_EQ(tracked, after) << "seed=" << seed << " step=" << step;
      EXPECT_EQ(m.live_pair_count(), after.total_pairs());
    }
  }
}

TEST(TaskManager, EnumNames) {
  EXPECT_STREQ(to_string(AggType::kHolistic), "HOLISTIC");
  EXPECT_STREQ(to_string(AggType::kTopK), "TOPK");
  EXPECT_STREQ(to_string(ReliabilityMode::kSSDP), "SSDP");
}

}  // namespace
}  // namespace remo
