#include "task/task_manager.h"

#include <gtest/gtest.h>

namespace remo {
namespace {

MonitoringTask task(std::vector<AttrId> attrs, std::vector<NodeId> nodes,
                    double freq = 1.0) {
  MonitoringTask t;
  t.attrs = std::move(attrs);
  t.nodes = std::move(nodes);
  t.frequency = freq;
  return t;
}

TEST(TaskManager, PaperDedupExample) {
  // t1 = ({cpu}, {a,b}), t2 = ({cpu}, {b,c}): pair (b, cpu) is duplicated
  // and must appear once (Sec. 2.2).
  TaskManager m;
  m.add_task(task({0}, {1, 2}));
  m.add_task(task({0}, {2, 3}));
  const PairSet p = m.dedup(5);
  EXPECT_EQ(p.total_pairs(), 3u);
  EXPECT_TRUE(p.contains(1, 0));
  EXPECT_TRUE(p.contains(2, 0));
  EXPECT_TRUE(p.contains(3, 0));
  EXPECT_EQ(m.raw_pair_count(), 4u);  // 2 + 2 before dedup
}

TEST(TaskManager, AssignsIdsAndFinds) {
  TaskManager m;
  const TaskId a = m.add_task(task({0}, {1}));
  const TaskId b = m.add_task(task({1}, {2}));
  EXPECT_NE(a, b);
  ASSERT_NE(m.find(a), nullptr);
  EXPECT_EQ(m.find(a)->attrs, (std::vector<AttrId>{0}));
  EXPECT_EQ(m.find(999), nullptr);
  EXPECT_EQ(m.num_tasks(), 2u);
}

TEST(TaskManager, RemoveTask) {
  TaskManager m;
  const TaskId a = m.add_task(task({0}, {1}));
  EXPECT_TRUE(m.remove_task(a));
  EXPECT_FALSE(m.remove_task(a));
  EXPECT_EQ(m.dedup(3).total_pairs(), 0u);
}

TEST(TaskManager, ModifyTaskReplacesDefinition) {
  TaskManager m;
  const TaskId a = m.add_task(task({0}, {1}));
  auto t = *m.find(a);
  t.attrs = {4, 2};
  EXPECT_TRUE(m.modify_task(t));
  EXPECT_EQ(m.find(a)->attrs, (std::vector<AttrId>{2, 4}));  // sorted
  MonitoringTask unknown = task({0}, {1});
  unknown.id = 12345;
  EXPECT_FALSE(m.modify_task(unknown));
}

TEST(TaskManager, TaskSetsSortedOnAdd) {
  TaskManager m;
  const TaskId a = m.add_task(task({9, 1, 9}, {3, 1, 3}));
  EXPECT_EQ(m.find(a)->attrs, (std::vector<AttrId>{1, 9}));
  EXPECT_EQ(m.find(a)->nodes, (std::vector<NodeId>{1, 3}));
}

TEST(TaskManager, ObservabilityFilter) {
  SystemModel system(3, 10.0);
  system.set_observable(1, {0, 1});
  system.set_observable(2, {1});
  TaskManager m(&system);
  m.add_task(task({0, 1}, {1, 2}));
  const PairSet p = m.dedup(system.num_vertices());
  EXPECT_TRUE(p.contains(1, 0));
  EXPECT_TRUE(p.contains(1, 1));
  EXPECT_FALSE(p.contains(2, 0));  // node 2 cannot observe attr 0
  EXPECT_TRUE(p.contains(2, 1));
}

TEST(TaskManager, FilterDisabledKeepsAllPairs) {
  SystemModel system(3, 10.0);  // no observables registered
  TaskManager m(&system, /*filter_observable=*/false);
  m.add_task(task({0}, {1, 2}));
  EXPECT_EQ(m.dedup(system.num_vertices()).total_pairs(), 2u);
}

TEST(TaskManager, CollectorAndOutOfRangeNodesSkipped) {
  TaskManager m;
  m.add_task(task({0}, {kCollectorId, 1, 200}));
  const PairSet p = m.dedup(3);
  EXPECT_EQ(p.total_pairs(), 1u);
  EXPECT_TRUE(p.contains(1, 0));
}

TEST(TaskManager, PairFrequenciesTakeMaxAcrossTasks) {
  TaskManager m;
  m.add_task(task({0}, {1}, 0.25));
  m.add_task(task({0}, {1, 2}, 1.0));
  const PairSet p = m.dedup(4);
  const auto freq = m.pair_frequencies(p);
  EXPECT_DOUBLE_EQ(freq.at({1, 0}), 1.0);  // fastest requester wins
  EXPECT_DOUBLE_EQ(freq.at({2, 0}), 1.0);
}

TEST(TaskManager, EnumNames) {
  EXPECT_STREQ(to_string(AggType::kHolistic), "HOLISTIC");
  EXPECT_STREQ(to_string(AggType::kTopK), "TOPK");
  EXPECT_STREQ(to_string(ReliabilityMode::kSSDP), "SSDP");
}

}  // namespace
}  // namespace remo
