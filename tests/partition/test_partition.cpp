#include "partition/partition.h"

#include <gtest/gtest.h>

namespace remo {
namespace {

TEST(Partition, SingletonScheme) {
  auto p = Partition::singleton({3, 1, 2});
  EXPECT_EQ(p.num_sets(), 3u);
  EXPECT_TRUE(p.valid_over({1, 2, 3}));
  for (AttrId a : {1u, 2u, 3u}) EXPECT_EQ(p.set(p.set_of(a)).size(), 1u);
}

TEST(Partition, OneSetScheme) {
  auto p = Partition::one_set({3, 1, 2});
  EXPECT_EQ(p.num_sets(), 1u);
  EXPECT_EQ(p.set(0), (std::vector<AttrId>{1, 2, 3}));
}

TEST(Partition, EmptyUniverse) {
  EXPECT_EQ(Partition::singleton({}).num_sets(), 0u);
  EXPECT_EQ(Partition::one_set({}).num_sets(), 0u);
  EXPECT_TRUE(Partition{}.valid());
}

TEST(Partition, ConstructorSortsAndDropsEmpties) {
  Partition p({{2, 1}, {}, {3}});
  EXPECT_EQ(p.num_sets(), 2u);
  EXPECT_EQ(p.set(0), (std::vector<AttrId>{1, 2}));
}

TEST(Partition, ConstructorRejectsOverlap) {
  EXPECT_THROW(Partition({{1, 2}, {2, 3}}), std::invalid_argument);
}

TEST(Partition, MergeUnionsSets) {
  Partition p({{1}, {2}, {3}});
  p.merge(0, 2);
  EXPECT_EQ(p.num_sets(), 2u);
  EXPECT_EQ(p.set(0), (std::vector<AttrId>{1, 3}));
  EXPECT_EQ(p.set(1), (std::vector<AttrId>{2}));
  EXPECT_TRUE(p.valid_over({1, 2, 3}));
}

TEST(Partition, MergeOrderIndependent) {
  Partition a({{1}, {2}}), b({{1}, {2}});
  a.merge(0, 1);
  b.merge(1, 0);
  EXPECT_EQ(a, b);
}

TEST(Partition, MergeBadIndicesThrow) {
  Partition p({{1}, {2}});
  EXPECT_THROW(p.merge(0, 0), std::out_of_range);
  EXPECT_THROW(p.merge(0, 5), std::out_of_range);
}

TEST(Partition, SplitMovesAttrToNewSet) {
  Partition p({{1, 2, 3}});
  p.split(0, 2);
  EXPECT_EQ(p.num_sets(), 2u);
  EXPECT_EQ(p.set(0), (std::vector<AttrId>{1, 3}));
  EXPECT_EQ(p.set(1), (std::vector<AttrId>{2}));
  EXPECT_TRUE(p.valid_over({1, 2, 3}));
}

TEST(Partition, SplitErrors) {
  Partition p({{1}, {2, 3}});
  EXPECT_THROW(p.split(0, 1), std::invalid_argument);  // singleton
  EXPECT_THROW(p.split(1, 9), std::invalid_argument);  // attr absent
  EXPECT_THROW(p.split(7, 1), std::out_of_range);
}

TEST(Partition, MergeThenSplitRoundTrip) {
  Partition p({{1}, {2}});
  p.merge(0, 1);
  p.split(0, 2);
  EXPECT_EQ(p, Partition({{1}, {2}}));
}

TEST(Partition, SetOfAndContains) {
  Partition p({{1, 5}, {2}});
  EXPECT_EQ(p.set_of(5), 0u);
  EXPECT_EQ(p.set_of(2), 1u);
  EXPECT_EQ(p.set_of(9), p.num_sets());
  EXPECT_TRUE(p.contains(1));
  EXPECT_FALSE(p.contains(9));
}

TEST(Partition, ValidOverWrongUniverse) {
  Partition p({{1, 2}});
  EXPECT_FALSE(p.valid_over({1, 2, 3}));
  EXPECT_TRUE(p.valid_over({2, 1}));
}

TEST(Partition, ToStringCanonical) {
  Partition p({{2}, {1, 3}});
  EXPECT_EQ(p.to_string(), "{1,3}{2}");
}

TEST(ConflictConstraints, ForbidAndQuery) {
  ConflictConstraints c;
  c.forbid(3, 1);
  EXPECT_TRUE(c.conflicts(1, 3));
  EXPECT_TRUE(c.conflicts(3, 1));  // symmetric
  EXPECT_FALSE(c.conflicts(1, 2));
  EXPECT_EQ(c.size(), 1u);
  c.forbid(1, 3);  // idempotent
  EXPECT_EQ(c.size(), 1u);
  EXPECT_THROW(c.forbid(2, 2), std::invalid_argument);
}

TEST(ConflictConstraints, BlocksMerge) {
  ConflictConstraints c;
  c.forbid(1, 2);
  EXPECT_TRUE(c.blocks_merge({1}, {2}));
  EXPECT_FALSE(c.blocks_merge({1}, {3}));
  // Conflict pair already inside one operand also blocks (defensive).
  EXPECT_TRUE(c.blocks_merge({1, 2}, {3}));
  EXPECT_FALSE(ConflictConstraints{}.blocks_merge({1}, {2}));
}

TEST(ConflictConstraints, SatisfiedBy) {
  ConflictConstraints c;
  c.forbid(1, 2);
  EXPECT_TRUE(c.satisfied_by(Partition({{1}, {2}})));
  EXPECT_FALSE(c.satisfied_by(Partition({{1, 2}})));
  EXPECT_TRUE(c.satisfied_by(Partition({{3, 4}})));  // pair absent entirely
}

}  // namespace
}  // namespace remo
