// Property sweeps over partitions: random operation sequences preserve
// partition validity, and the neighboring-solution count matches the
// closed form of Definition 3.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "partition/augmentation.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

class PartitionFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionFuzz, RandomMergeSplitSequencesStayValid) {
  Rng rng{GetParam()};
  std::vector<AttrId> universe;
  for (AttrId a = 0; a < 20; ++a) universe.push_back(a);
  Partition p = Partition::singleton(universe);

  for (int step = 0; step < 200; ++step) {
    const bool can_merge = p.num_sets() >= 2;
    bool can_split = false;
    for (std::size_t i = 0; i < p.num_sets(); ++i)
      if (p.set(i).size() >= 2) can_split = true;

    if ((rng.bernoulli(0.5) && can_merge) || !can_split) {
      if (!can_merge) continue;
      auto i = rng.below(p.num_sets());
      auto j = rng.below(p.num_sets());
      if (i == j) continue;
      p.merge(i, j);
    } else {
      // Pick a splittable set.
      std::size_t i = rng.below(p.num_sets());
      while (p.set(i).size() < 2) i = rng.below(p.num_sets());
      const auto& set = p.set(i);
      p.split(i, set[rng.below(set.size())]);
    }
    ASSERT_TRUE(p.valid_over(universe)) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionFuzz,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(PartitionProperty, NeighborCountMatchesClosedForm) {
  // |neighbors(P)| = C(k,2) merges + Σ_{|A_i| >= 2} |A_i| splits.
  Rng rng{77};
  PairSet pairs(30);
  for (NodeId n = 1; n < 30; ++n)
    for (AttrId a = 0; a < 12; ++a)
      if (rng.bernoulli(0.4)) pairs.add(n, a);
  std::vector<AttrId> universe;
  for (AttrId a = 0; a < 12; ++a) universe.push_back(a);

  for (int trial = 0; trial < 20; ++trial) {
    // Random partition: assign each attr to one of g groups.
    const std::size_t g = 1 + rng.below(5);
    std::vector<std::vector<AttrId>> groups(g);
    for (AttrId a : universe) groups[rng.below(g)].push_back(a);
    Partition p(groups);

    const std::size_t k = p.num_sets();
    std::size_t expected = k * (k - 1) / 2;
    for (std::size_t i = 0; i < k; ++i)
      if (p.set(i).size() >= 2) expected += p.set(i).size();

    const auto all =
        ranked_augmentations(p, pairs, kCost, ConflictConstraints{}, 0);
    EXPECT_EQ(all.size(), expected) << p.to_string();
  }
}

TEST(PartitionProperty, ApplyingAnyNeighborPreservesUniverse) {
  Rng rng{99};
  PairSet pairs(10);
  for (NodeId n = 1; n < 10; ++n)
    for (AttrId a = 0; a < 8; ++a) pairs.add(n, a);
  std::vector<AttrId> universe;
  for (AttrId a = 0; a < 8; ++a) universe.push_back(a);
  Partition p({{0, 1, 2}, {3}, {4, 5, 6, 7}});

  for (const auto& aug :
       ranked_augmentations(p, pairs, kCost, ConflictConstraints{}, 0)) {
    const Partition q = apply(p, aug);
    EXPECT_TRUE(q.valid_over(universe));
    // A merge shrinks the set count by one; a split grows it by one.
    if (aug.kind == AugmentKind::kMerge)
      EXPECT_EQ(q.num_sets(), p.num_sets() - 1);
    else
      EXPECT_EQ(q.num_sets(), p.num_sets() + 1);
  }
}

}  // namespace
}  // namespace remo
