#include "partition/augmentation.h"

#include <gtest/gtest.h>

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

PairSet overlap_pairs() {
  // Nodes 1-4 monitor attr 0; nodes 3-6 monitor attr 1; node 7 monitors 2.
  PairSet p(8);
  for (NodeId n = 1; n <= 4; ++n) p.add(n, 0);
  for (NodeId n = 3; n <= 6; ++n) p.add(n, 1);
  p.add(7, 2);
  return p;
}

TEST(Augmentation, MergeGainScalesWithSharedNodes) {
  const auto pairs = overlap_pairs();
  Partition p({{0}, {1}, {2}});
  // attrs 0 and 1 share nodes {3,4}: gain 2*C*2 = 40.
  EXPECT_DOUBLE_EQ(estimate_merge_gain(p, 0, 1, pairs, kCost), 40.0);
  // attrs 0 and 2 share nothing.
  EXPECT_DOUBLE_EQ(estimate_merge_gain(p, 0, 2, pairs, kCost), 0.0);
}

TEST(Augmentation, SplitGainBalancesReliefAndOverhead) {
  const auto pairs = overlap_pairs();
  Partition p({{0, 1}, {2}});
  // Splitting attr 1 out of {0,1}: relieved a*|N_1| = 4; shared nodes with
  // the rest ({3,4}) pay 2*C each = 40 overhead. Net -36.
  EXPECT_DOUBLE_EQ(estimate_split_gain(p, 0, 1, pairs, kCost), 4.0 - 40.0);
}

TEST(Augmentation, ApplyMergeAndSplit) {
  Partition p({{0}, {1}, {2}});
  Augmentation m{AugmentKind::kMerge, 0, 1, 0, 0.0};
  const auto merged = apply(p, m);
  EXPECT_EQ(merged, Partition({{0, 1}, {2}}));
  Augmentation s{AugmentKind::kSplit, 0, 0, 1, 0.0};
  EXPECT_EQ(apply(merged, s), Partition({{0}, {1}, {2}}));
}

TEST(Augmentation, RankedListSortedByGain) {
  const auto pairs = overlap_pairs();
  Partition p({{0}, {1}, {2}});
  const auto ranked =
      ranked_augmentations(p, pairs, kCost, ConflictConstraints{}, 0);
  // 3 merges possible, no splits (all singleton sets).
  ASSERT_EQ(ranked.size(), 3u);
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_GE(ranked[i - 1].estimated_gain, ranked[i].estimated_gain);
  EXPECT_EQ(ranked[0].kind, AugmentKind::kMerge);
  // The top candidate must be the 0-1 merge (the only one with overlap).
  EXPECT_EQ(ranked[0].set_a, 0u);
  EXPECT_EQ(ranked[0].set_b, 1u);
}

TEST(Augmentation, IncludesSplitsForMultiAttrSets) {
  const auto pairs = overlap_pairs();
  Partition p({{0, 1}, {2}});
  const auto ranked =
      ranked_augmentations(p, pairs, kCost, ConflictConstraints{}, 0);
  // 1 merge + 2 splits.
  ASSERT_EQ(ranked.size(), 3u);
  std::size_t splits = 0;
  for (const auto& a : ranked) splits += a.kind == AugmentKind::kSplit;
  EXPECT_EQ(splits, 2u);
}

TEST(Augmentation, ConflictsFilterMerges) {
  const auto pairs = overlap_pairs();
  Partition p({{0}, {1}, {2}});
  ConflictConstraints c;
  c.forbid(0, 1);
  const auto ranked = ranked_augmentations(p, pairs, kCost, c, 0);
  for (const auto& a : ranked) {
    if (a.kind != AugmentKind::kMerge) continue;
    EXPECT_FALSE(a.set_a == 0 && a.set_b == 1);
  }
  EXPECT_EQ(ranked.size(), 2u);
}

TEST(Augmentation, MaxCandidatesTruncates) {
  const auto pairs = overlap_pairs();
  Partition p({{0}, {1}, {2}});
  EXPECT_EQ(ranked_augmentations(p, pairs, kCost, ConflictConstraints{}, 1).size(),
            1u);
}

TEST(Augmentation, NeighborCountMatchesDefinition3) {
  // For k sets with sizes s_i, neighbors = C(k,2) merges + Σ_{s_i>=2} s_i
  // splits.
  const auto pairs = overlap_pairs();
  Partition p({{0, 1}, {2}});
  const auto ranked =
      ranked_augmentations(p, pairs, kCost, ConflictConstraints{}, 0);
  EXPECT_EQ(ranked.size(), 1u /*merge*/ + 2u /*splits of {0,1}*/);
}

TEST(Augmentation, EmptyPartitionYieldsNothing) {
  EXPECT_TRUE(ranked_augmentations(Partition{}, PairSet(3), kCost,
                                   ConflictConstraints{}, 0)
                  .empty());
}

}  // namespace
}  // namespace remo
