#include "common/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace remo {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override {
    set_log_level(LogLevel::kWarn);  // default
    set_log_sink({});                // restore stderr
  }
};

TEST_F(LoggingTest, LevelRoundTrip) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST_F(LoggingTest, MacrosRunAtEveryLevel) {
  // The macros must be safe to execute whatever the level (suppressed
  // levels short-circuit without evaluating the stream).
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kOff}) {
    set_log_level(level);
    REMO_DEBUG() << "debug " << 1;
    REMO_INFO() << "info " << 2.5;
    REMO_WARN() << "warn " << "text";
    REMO_ERROR() << "error";
  }
  SUCCEED();
}

TEST_F(LoggingTest, SuppressedLevelSkipsEvaluation) {
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return 42;
  };
  REMO_DEBUG() << count();
  EXPECT_EQ(evaluations, 0);  // stream expression never ran
  set_log_level(LogLevel::kDebug);
  REMO_ERROR() << count();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, SinkReceivesLevelPassingMessages) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&captured](LogLevel level, const std::string& message) {
    captured.emplace_back(level, message);
  });
  set_log_level(LogLevel::kInfo);
  REMO_DEBUG() << "suppressed";  // below the level: never reaches the sink
  REMO_INFO() << "info " << 7;
  REMO_ERROR() << "boom";
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0], (std::pair{LogLevel::kInfo, std::string("info 7")}));
  EXPECT_EQ(captured[1], (std::pair{LogLevel::kError, std::string("boom")}));
}

TEST_F(LoggingTest, EmptySinkRestoresStderrDefault) {
  int calls = 0;
  set_log_sink([&calls](LogLevel, const std::string&) { ++calls; });
  set_log_level(LogLevel::kWarn);
  REMO_WARN() << "to sink";
  EXPECT_EQ(calls, 1);
  set_log_sink({});  // back to stderr: the counter must stop moving
  REMO_WARN() << "to stderr";
  EXPECT_EQ(calls, 1);
}

TEST_F(LoggingTest, MacroIsStatementSafe) {
  // Must behave as a single statement in unbraced control flow.
  set_log_level(LogLevel::kOff);
  if (false)
    REMO_WARN() << "never";
  else
    REMO_WARN() << "taken";
  SUCCEED();
}

}  // namespace
}  // namespace remo
