#include "common/logging.h"

#include <gtest/gtest.h>

namespace remo {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kWarn); }  // default
};

TEST_F(LoggingTest, LevelRoundTrip) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST_F(LoggingTest, MacrosRunAtEveryLevel) {
  // The macros must be safe to execute whatever the level (suppressed
  // levels short-circuit without evaluating the stream).
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kOff}) {
    set_log_level(level);
    REMO_DEBUG() << "debug " << 1;
    REMO_INFO() << "info " << 2.5;
    REMO_WARN() << "warn " << "text";
    REMO_ERROR() << "error";
  }
  SUCCEED();
}

TEST_F(LoggingTest, SuppressedLevelSkipsEvaluation) {
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return 42;
  };
  REMO_DEBUG() << count();
  EXPECT_EQ(evaluations, 0);  // stream expression never ran
  set_log_level(LogLevel::kDebug);
  REMO_ERROR() << count();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, MacroIsStatementSafe) {
  // Must behave as a single statement in unbraced control flow.
  set_log_level(LogLevel::kOff);
  if (false)
    REMO_WARN() << "never";
  else
    REMO_WARN() << "taken";
  SUCCEED();
}

}  // namespace
}  // namespace remo
