// Contract-macro semantics (common/check.h, DESIGN.md §11): REMO_ASSERT is
// always on and reports expression + context, REMO_DCHECK compiles away in
// plain release builds, REMO_VALIDATE is gated at runtime.
#include "common/check.h"

#include <gtest/gtest.h>

namespace remo {
namespace {

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, AssertFiresAndReportsExpression) {
  const int got = 7;
  EXPECT_DEATH(REMO_ASSERT(got == 3, "expected 3, got=", got),
               "REMO_ASSERT failed: got == 3");
}

TEST(CheckDeathTest, AssertFormatsContextWithValues) {
  const int got = 7;
  EXPECT_DEATH(REMO_ASSERT(got == 3, "expected 3, got=", got),
               "context: expected 3, got=7");
}

TEST(CheckDeathTest, AssertWithoutContextStillReportsExpression) {
  EXPECT_DEATH(REMO_ASSERT(1 + 1 == 3), "REMO_ASSERT failed: 1 \\+ 1 == 3");
}

TEST(CheckTest, AssertPassesSilently) {
  REMO_ASSERT(2 + 2 == 4, "arithmetic broke");  // must not abort
}

TEST(CheckTest, AssertConditionEvaluatedExactlyOnce) {
  int calls = 0;
  REMO_ASSERT(++calls > 0, "calls=", calls);
  EXPECT_EQ(calls, 1);
}

TEST(CheckTest, AssertIsConstexprSafe) {
  // A violating constant expression would fail to compile; a satisfied one
  // must be usable in constant evaluation.
  constexpr auto checked = [] {
    REMO_ASSERT(3 > 2, "ordering");
    return 1;
  }();
  static_assert(checked == 1);
}

#if REMO_DCHECK_ENABLED
TEST(CheckDeathTest, DcheckFiresInDebugBuilds) {
  const int slot = 5;
  EXPECT_DEATH(REMO_DCHECK(slot < 4, "slot=", slot, " size=4"),
               "REMO_DCHECK failed: slot < 4");
}
#else
TEST(CheckTest, DcheckCompilesAwayInReleaseBuilds) {
  int calls = 0;
  REMO_DCHECK(++calls > 100, "side effect must not run");
  EXPECT_EQ(calls, 0);  // the condition itself is not evaluated
}
#endif

class ValidateGateTest : public ::testing::Test {
 protected:
  void TearDown() override { set_validation_enabled(false); }
};

TEST_F(ValidateGateTest, DisabledGateSkipsConditionEntirely) {
  set_validation_enabled(false);
  EXPECT_FALSE(validation_enabled());
  int calls = 0;
  REMO_VALIDATE(++calls > 0, "never evaluated");
  EXPECT_EQ(calls, 0);
}

TEST_F(ValidateGateTest, EnabledGatePassesOnTrue) {
  set_validation_enabled(true);
  EXPECT_TRUE(validation_enabled());
  int calls = 0;
  REMO_VALIDATE(++calls == 1, "calls=", calls);
  EXPECT_EQ(calls, 1);
}

using ValidateGateDeathTest = ValidateGateTest;

TEST_F(ValidateGateDeathTest, EnabledGateAbortsOnFalse) {
  set_validation_enabled(true);
  EXPECT_DEATH(REMO_VALIDATE(false, "deep invariant broken"),
               "REMO_VALIDATE failed: false");
}

}  // namespace
}  // namespace remo
