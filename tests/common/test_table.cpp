#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace remo {
namespace {

TEST(Table, AlignsColumnsAndUnderlinesHeader) {
  Table t({"name", "value"});
  t.row().add("x").add(1.5, 1);
  t.row().add("longer").add(22.25, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("22.25"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);
  // Every line should be terminated.
  EXPECT_EQ(out.back(), '\n');
}

TEST(Table, NumericFormatting) {
  Table t({"v"});
  t.row().add(3.14159, 3);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("3.142"), std::string::npos);
}

TEST(Table, IntegerOverloads) {
  Table t({"a", "b", "c"});
  t.row().add(42).add(std::size_t{7}).add(-3);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("42"), std::string::npos);
  EXPECT_NE(os.str().find("-3"), std::string::npos);
}

TEST(Table, AddWithoutRowStartsOne) {
  Table t({"a"});
  t.add("first");
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, ShortRowsPrintSafely) {
  Table t({"a", "b"});
  t.row().add("only-a");
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only-a"), std::string::npos);
}

}  // namespace
}  // namespace remo
