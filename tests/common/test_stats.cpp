#include "common/stats.h"

#include <gtest/gtest.h>

namespace remo {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeEqualsPooled) {
  RunningStats a, b, pooled;
  for (int i = 0; i < 10; ++i) {
    a.add(i);
    pooled.add(i);
  }
  for (int i = 100; i < 120; ++i) {
    b.add(i);
    pooled.add(i);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_NEAR(a.mean(), pooled.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), pooled.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), pooled.min());
  EXPECT_DOUBLE_EQ(a.max(), pooled.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(Percentile, Basics) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({5.0}, 0), 5.0);
  EXPECT_DOUBLE_EQ(percentile({5.0}, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 50), 2.5);  // interpolation
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({9, 1, 5}, 50), 5.0);
}

TEST(Percentile, ClampsOutOfRangeP) {
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3}, -10), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3}, 200), 3.0);
}

TEST(MeanOf, Basics) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({2, 4, 6}), 4.0);
}

TEST(JainFairness, PerfectBalance) {
  EXPECT_DOUBLE_EQ(jain_fairness({5, 5, 5, 5}), 1.0);
}

TEST(JainFairness, WorstCase) {
  // All load on one of n nodes -> 1/n.
  EXPECT_NEAR(jain_fairness({10, 0, 0, 0}), 0.25, 1e-12);
}

TEST(JainFairness, EdgeCases) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0, 0}), 1.0);
}

}  // namespace
}  // namespace remo
