#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace remo {
namespace {

TEST(ThreadPool, RunsEachIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  pool.parallel_for(kN, [&](std::size_t i) { counts[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  std::size_t sum = 0;
  // No synchronization needed: with no workers the loop runs on the caller.
  pool.parallel_for(100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, ReusableAcrossInvocations) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(64, [&](std::size_t i) { sum.fetch_add(i); });
    ASSERT_EQ(sum.load(), 64u * 63u / 2);
  }
}

TEST(ThreadPool, EmptyLoopIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ExceptionInBodyPropagatesToCaller) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  auto loop = [&] {
    pool.parallel_for(100, [&](std::size_t i) {
      executed.fetch_add(1);
      if (i == 37) throw std::runtime_error("boom");
    });
  };
  EXPECT_THROW(loop(), std::runtime_error);
  // The loop drains before rethrowing; the pool stays usable.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPool, DefaultConcurrencyIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_concurrency(), 1u);
}

}  // namespace
}  // namespace remo
