// Tests for the annotated mutex wrappers (common/mutex.h, DESIGN.md §16).
// These are behavioral tests — the annotations themselves are checked at
// compile time by the CI tsa job — but they run under TSan in CI, so the
// wrappers' unlock()/lock() cycle and CondVar hand-off are race-checked too.
#include "common/mutex.h"

#include <gtest/gtest.h>

#include <deque>
#include <thread>
#include <vector>

namespace remo {
namespace {

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mutex;
  long counter = 0;  // plain long: any lost update means the lock leaks
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mutex;
  ASSERT_TRUE(mutex.try_lock());
  // Held here: another thread must see the lock as taken.
  bool acquired = true;
  std::thread prober([&] { acquired = mutex.try_lock(); });
  prober.join();
  EXPECT_FALSE(acquired);
  mutex.unlock();
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(MutexLockTest, ManualUnlockRelockBalances) {
  Mutex mutex;
  int guarded = 0;
  {
    MutexLock lock(mutex);
    guarded = 1;
    lock.unlock();  // drop-the-lock-around-work pattern (ThreadPool)
    EXPECT_TRUE(mutex.try_lock());
    mutex.unlock();
    lock.lock();
    guarded = 2;
  }  // destructor releases the re-taken lock
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
  EXPECT_EQ(guarded, 2);
}

TEST(MutexLockTest, DestructorSkipsReleaseWhenLeftUnlocked) {
  Mutex mutex;
  {
    MutexLock lock(mutex);
    lock.unlock();
  }  // destructor must not double-unlock
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(CondVarTest, ProducerConsumerHandoff) {
  Mutex mutex;
  CondVar ready;
  std::deque<int> queue;
  bool done = false;
  constexpr int kItems = 1000;

  std::thread consumer([&] {
    int expected = 0;
    for (;;) {
      MutexLock lock(mutex);
      while (queue.empty() && !done) ready.wait(mutex);
      if (queue.empty()) return;  // done && drained
      EXPECT_EQ(queue.front(), expected++);
      queue.pop_front();
    }
  });

  for (int i = 0; i < kItems; ++i) {
    MutexLock lock(mutex);
    queue.push_back(i);
    ready.notify_one();
  }
  {
    MutexLock lock(mutex);
    done = true;
    ready.notify_all();
  }
  consumer.join();
  MutexLock lock(mutex);
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace remo
