#include "common/sorted_vector.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace remo {
namespace {

using V = std::vector<int>;

TEST(SortedVector, SortUnique) {
  V v{3, 1, 2, 3, 1};
  sort_unique(v);
  EXPECT_EQ(v, (V{1, 2, 3}));
}

TEST(SortedVector, SortUniqueEmpty) {
  V v;
  sort_unique(v);
  EXPECT_TRUE(v.empty());
}

TEST(SortedVector, IsSortedUnique) {
  EXPECT_TRUE(is_sorted_unique(V{}));
  EXPECT_TRUE(is_sorted_unique(V{5}));
  EXPECT_TRUE(is_sorted_unique(V{1, 2, 9}));
  EXPECT_FALSE(is_sorted_unique(V{1, 1}));
  EXPECT_FALSE(is_sorted_unique(V{2, 1}));
}

TEST(SortedVector, InsertEraseContains) {
  V v;
  EXPECT_TRUE(set_insert(v, 5));
  EXPECT_TRUE(set_insert(v, 1));
  EXPECT_FALSE(set_insert(v, 5));  // duplicate
  EXPECT_EQ(v, (V{1, 5}));
  EXPECT_TRUE(set_contains(v, 1));
  EXPECT_FALSE(set_contains(v, 2));
  EXPECT_TRUE(set_erase(v, 1));
  EXPECT_FALSE(set_erase(v, 1));
  EXPECT_EQ(v, (V{5}));
}

TEST(SortedVector, UnionIntersectionDifference) {
  const V a{1, 3, 5, 7};
  const V b{3, 4, 5};
  EXPECT_EQ(set_union(a, b), (V{1, 3, 4, 5, 7}));
  EXPECT_EQ(set_intersection(a, b), (V{3, 5}));
  EXPECT_EQ(set_difference(a, b), (V{1, 7}));
  EXPECT_EQ(set_difference(b, a), (V{4}));
}

TEST(SortedVector, EmptyOperands) {
  const V a{1, 2};
  const V e;
  EXPECT_EQ(set_union(a, e), a);
  EXPECT_EQ(set_intersection(a, e), e);
  EXPECT_EQ(set_difference(a, e), a);
  EXPECT_EQ(set_difference(e, a), e);
}

TEST(SortedVector, IntersectionSizeAndIntersect) {
  const V a{1, 3, 5};
  const V b{2, 3, 4, 5};
  EXPECT_EQ(intersection_size(a, b), 2u);
  EXPECT_TRUE(sets_intersect(a, b));
  EXPECT_FALSE(sets_intersect(V{1, 2}, V{3, 4}));
  EXPECT_EQ(intersection_size(V{1, 2}, V{3, 4}), 0u);
}

TEST(SortedVector, Subset) {
  EXPECT_TRUE(is_subset(V{}, V{1}));
  EXPECT_TRUE(is_subset(V{1, 3}, V{1, 2, 3}));
  EXPECT_FALSE(is_subset(V{1, 4}, V{1, 2, 3}));
}

TEST(SortedVector, AlgebraIdentitiesRandomized) {
  // |A| + |B| = |A ∪ B| + |A ∩ B|, and A = (A∖B) ∪ (A∩B).
  Rng rng{99};
  for (int trial = 0; trial < 50; ++trial) {
    V a, b;
    for (int i = 0; i < 30; ++i) {
      if (rng.bernoulli(0.4)) a.push_back(i);
      if (rng.bernoulli(0.4)) b.push_back(i);
    }
    const auto u = set_union(a, b);
    const auto x = set_intersection(a, b);
    EXPECT_EQ(a.size() + b.size(), u.size() + x.size());
    EXPECT_EQ(set_union(set_difference(a, b), x), a);
    EXPECT_EQ(intersection_size(a, b), x.size());
    EXPECT_EQ(sets_intersect(a, b), !x.empty());
  }
}

}  // namespace
}  // namespace remo
