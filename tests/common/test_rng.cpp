#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace remo {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng{7};
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng{7};
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo_seen |= v == -2;
    hi_seen |= v == 2;
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{3};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng{5};
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliRate) {
  Rng rng{9};
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, SampleDistinctAndInRange) {
  Rng rng{11};
  for (std::uint32_t n : {10u, 100u, 1000u}) {
    for (std::uint32_t k : {1u, 5u, n / 2, n}) {
      auto s = rng.sample(n, k);
      EXPECT_EQ(s.size(), k);
      std::set<std::uint32_t> uniq(s.begin(), s.end());
      EXPECT_EQ(uniq.size(), k);
      for (auto v : s) EXPECT_LT(v, n);
    }
  }
}

TEST(Rng, SampleKLargerThanNClamps) {
  Rng rng{11};
  EXPECT_EQ(rng.sample(5, 50).size(), 5u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng{13};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a{17};
  Rng child = a.fork();
  EXPECT_NE(a(), child());
}

}  // namespace
}  // namespace remo
