// Deep-validation pass (`ctest -L validate`, DESIGN.md §11): re-runs the
// mutation-heavy paths — the PR 2 failure-recovery loop, the PR 4 builder
// reattach/rollback machinery, and a full guided-search plan — with
// REMO_VALIDATE=1, so every REMO_VALIDATE hook (MonitoringTree::validate
// after each tree mutation, Planner/TaskManager/repair invariants after
// each commit) is armed. Any silently-corrupting bug aborts mid-run here
// long before its symptom would surface as a wrong plan.
#include <gtest/gtest.h>

#include <limits>

#include "common/check.h"
#include "core/monitoring_system.h"
#include "federation/federated_system.h"
#include "sim/simulator.h"
#include "tree/builder.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

class ValidateDeep : public ::testing::Test {
 protected:
  // Belt and braces: the ctest entry also exports REMO_VALIDATE=1, but the
  // explicit override keeps the suite meaningful under a bare runner.
  void SetUp() override { set_validation_enabled(true); }
  void TearDown() override { set_validation_enabled(false); }
};

TEST_F(ValidateDeep, GateIsArmed) { ASSERT_TRUE(validation_enabled()); }

// --- PR 2: detect → repair → replan loop under deep validation ----------

TEST_F(ValidateDeep, RecoveryLoopValidatesAfterEveryRepairAndReplan) {
  constexpr std::uint64_t kForever = std::numeric_limits<std::uint64_t>::max();
  const std::size_t n = 14;
  SystemModel system(n, 1e6, kCost);
  system.set_collector_capacity(1e9);
  for (NodeId id = 1; id <= n; ++id) system.set_observable(id, {0});

  MonitoringSystemOptions opts;
  opts.planner.partition_scheme = PartitionScheme::kOneSet;
  opts.planner.tree.scheme = TreeScheme::kChain;
  opts.recovery.enabled = true;
  opts.recovery.liveness.missed_deadlines = 3;
  opts.recovery.stabilize_epochs = 8;

  MonitoringSystem service(std::move(system), opts);
  MonitoringTask task;
  task.attrs = {0};
  for (NodeId id = 1; id <= n; ++id) task.nodes.push_back(id);
  service.add_task(task);

  const Topology initial = service.topology(0.0);
  NodeId victim = kNoNode;
  const auto& tree = initial.entries()[0].tree;
  for (NodeId m : tree.members())
    if (tree.depth(m) == 3) victim = m;
  ASSERT_NE(victim, kNoNode);

  const PairSet pairs = service.tasks().dedup(service.system().num_vertices());
  bool changed = false;
  SimConfig cfg;
  cfg.epochs = 120;
  cfg.failures = {{victim, 30, kForever}};
  cfg.on_delivery = [&](NodeAttrPair p, std::uint64_t e, double) {
    service.on_delivery(p, e);
  };
  cfg.on_epoch_end = [&](std::uint64_t e) {
    changed = service.end_epoch(e);
    // The loop's own hooks validated the adopted topology; double-check
    // from the outside every epoch where the deployment changed.
    if (changed) {
      ASSERT_TRUE(service.topology(static_cast<double>(e)).validate(service.system()))
          << "epoch " << e;
    }
  };
  cfg.on_reconfigure = [&](std::uint64_t e) -> const Topology* {
    return changed ? &service.topology(static_cast<double>(e)) : nullptr;
  };
  RandomWalkSource src(pairs, 11, 100.0, 3.0);
  (void)simulate(service.system(), initial, pairs, src, cfg);

  const auto& rep = service.repair_report();
  EXPECT_GE(rep.repair_passes, 1u);
  EXPECT_GE(rep.replans_after_outage, 1u);
  EXPECT_TRUE(service.topology(120.0).validate(service.system()));
}

// --- PR 4: builder adjust (reattach + rollback) under deep validation ---

std::vector<TreeAttrSpec> one_attr() {
  return {TreeAttrSpec{0, FunnelSpec{}, 1.0}};
}

/// Hub under the collector with `branches` single-node branches; the hub's
/// capacity is exactly exhausted, so it is congested.
MonitoringTree congested_hub(std::size_t branches, Capacity leaf_avail) {
  const double hub_need = static_cast<double>(branches) * kCost.message_cost(1) +
                          kCost.message_cost(branches + 1);
  MonitoringTree t(one_attr(), 1e9, kCost);
  t.attach(BuildItem{1, {1}, hub_need}, kCollectorId);
  for (NodeId id = 2; id < 2 + branches; ++id)
    t.attach(BuildItem{id, {1}, leaf_avail}, 1);
  return t;
}

TEST_F(ValidateDeep, AdjustReattachValidatesAfterEveryJournaledMutation) {
  // branch_reattach=false walks the journal-based node-by-node path: each
  // detach/attach pair runs the deep_validate hook; a commit that left the
  // arena inconsistent aborts inside adjust_tree_once.
  for (bool branch : {false, true}) {
    auto t = congested_hub(4, 100.0);
    TreeBuildOptions opts;
    opts.scheme = TreeScheme::kAdaptive;
    opts.branch_reattach = branch;
    ASSERT_TRUE(adjust_tree_once(t, {1}, kCost.message_cost(1), opts))
        << "branch_reattach=" << branch;
    EXPECT_TRUE(t.validate()) << "branch_reattach=" << branch;
    EXPECT_EQ(t.size(), 5u);
  }
}

TEST_F(ValidateDeep, AdjustRollbackRestoresAValidatedTree) {
  // No target can absorb anything: every attempted move rolls back through
  // the undo journal, and rollback_journal's own hook re-validates.
  for (bool branch : {false, true}) {
    auto t = congested_hub(4, /*leaf_avail=*/kCost.message_cost(1));
    TreeBuildOptions opts;
    opts.scheme = TreeScheme::kAdaptive;
    opts.branch_reattach = branch;
    EXPECT_FALSE(adjust_tree_once(t, {1}, kCost.message_cost(1), opts));
    EXPECT_TRUE(t.validate()) << "branch_reattach=" << branch;
    EXPECT_EQ(t.size(), 5u);  // rollback restored every member
  }
}

// --- PR 6: federated task churn under deep validation --------------------

TEST_F(ValidateDeep, FederationChurnValidatesShardScopedInvariants) {
  // Every add/remove/modify runs the facade's pair-count conservation
  // check plus each scoped core's planner/task-manager hooks (which now
  // assert all routed nodes lie inside the shard's own subset).
  SystemModel system(16, 500.0, kCost);
  system.set_collector_capacity(1e6);
  for (NodeId id = 1; id <= 16; ++id) system.set_observable(id, {0, 1, 2});

  federation::FederationOptions opts;
  opts.num_shards = 4;
  federation::FederatedMonitoringSystem fed(std::move(system),
                                            std::move(opts));
  std::vector<TaskId> ids;
  for (std::uint32_t i = 0; i < 6; ++i) {
    MonitoringTask t;
    t.attrs = {static_cast<AttrId>(i % 3)};
    for (NodeId n = 1 + i; n <= 16; n += 2) t.nodes.push_back(n);
    ids.push_back(fed.add_task(t));
  }
  (void)fed.status();
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    MonitoringTask t;
    t.id = ids[i];
    t.attrs = {2};
    t.nodes = {1, 6, 11, 16};  // respans the shards
    ASSERT_TRUE(fed.modify_task(t));
  }
  ASSERT_TRUE(fed.remove_task(ids[1]));
  const auto status = fed.status(1.0);
  EXPECT_EQ(status.tasks, 5u);
  EXPECT_EQ(status.collected, status.pairs);  // ample capacity everywhere
  for (std::size_t s = 0; s < fed.num_shards(); ++s)
    EXPECT_TRUE(fed.shard(s).topology(1.0).validate(fed.shard(s).system()));
  fed.check_invariants();
}

// --- full guided search under deep validation ---------------------------

TEST_F(ValidateDeep, GuidedSearchPlanPassesInvariantHooksEachCommit) {
  SystemModel system(20, 200.0, kCost);
  system.set_collector_capacity(400.0);
  PairSet pairs(21);
  for (NodeId id = 1; id <= 20; ++id) {
    std::vector<AttrId> attrs = id <= 10 ? std::vector<AttrId>{0, 1}
                                         : std::vector<AttrId>{2, 3};
    attrs.push_back(4);
    system.set_observable(id, attrs);
    for (AttrId a : attrs) pairs.add(id, a);
  }
  PlannerOptions opts;
  opts.partition_scheme = PartitionScheme::kRemo;
  Planner planner(system, opts);
  // Planner::check_invariants runs after the initial build, every accepted
  // improve_once, and the final plan; tree-level deep_validate runs inside
  // every candidate build.
  const Topology topo = planner.plan(pairs);
  EXPECT_TRUE(topo.validate(system));
  EXPECT_GT(topo.collected_pairs(), 0u);
}

}  // namespace
}  // namespace remo
