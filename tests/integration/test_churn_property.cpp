// Churn-path equivalence properties (DESIGN.md §13, `ctest -L churn`):
// the delta replanning pipeline — exact TaskDeltas → DeltaTracker
// coalescing → AdaptivePlanner::flush — must be bit-identical to the
// non-incremental ADAPTIVE scheme fed full pair sets at the same epochs,
// at every layer it is plumbed through: the planner itself, the
// MonitoringSystem facade's fast path, and the federation's shard-local
// routing (untouched shards must not replan at all).
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "adapt/adaptive_planner.h"
#include "common/sorted_vector.h"
#include "core/monitoring_system.h"
#include "extensions/attr_spec_derivation.h"
#include "federation/federated_system.h"
#include "obs/metrics.h"
#include "planner/topology.h"
#include "task/workload.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

PlannerOptions quick_options() {
  PlannerOptions o;
  o.partition_scheme = PartitionScheme::kRemo;
  o.max_candidates = 4;
  o.max_iterations = 8;
  return o;
}

// ---------------------------------------------------------------------------
// Planner layer: 20 seeded churn sequences, delta path vs non-incremental
// ADAPTIVE replanning at the exact same epochs → identical forests.

TEST(ChurnProperty, DeltaPathMatchesNonIncrementalAdaptiveAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    // Sparse pair coverage matters here: with few nodes and a tiny attr
    // universe, every (node, attr) pair is covered by several overlapping
    // tasks, refcounts never cross zero, and dedup-level deltas are empty
    // — the tracker would (correctly) never flush. Size the system so
    // churn actually moves the deduplicated pair set.
    const std::size_t n = 24 + (seed % 5) * 8;
    const std::size_t universe = 16 + (seed % 3) * 4;
    SystemModel system(n, 300.0, kCost);
    system.set_collector_capacity(16.0 * static_cast<double>(n));
    Rng attr_rng{seed};
    system.assign_random_attributes(universe, 6, attr_rng);

    TaskManager manager(&system);
    WorkloadGenerator gen(system, WorkloadConfig{.attr_universe = universe},
                          seed * 31);
    for (auto& t : gen.small_tasks(n / 2)) manager.add_task(std::move(t));

    obs::Registry incr_registry, ref_registry;
    PlannerOptions incr_options = quick_options();
    incr_options.metrics = &incr_registry;
    DeltaTrackerOptions tracker;
    tracker.max_defer_seconds = 4.0;
    tracker.max_pending_pairs = std::numeric_limits<std::size_t>::max();
    tracker.staleness_cost_per_pair_second = 0.0;
    AdaptivePlanner incr(system, incr_options, AdaptScheme::kAdaptive, tracker);
    PlannerOptions ref_options = quick_options();
    ref_options.metrics = &ref_registry;
    AdaptivePlanner ref(system, ref_options, AdaptScheme::kAdaptive);

    const PairSet initial = manager.dedup(system.num_vertices());
    incr.initialize(initial, 0.0);
    ref.initialize(initial, 0.0);

    Rng churn{seed * 977};
    std::size_t replans = 0;
    const auto replan_both = [&](double now) {
      incr.flush(now);
      ref.apply_update(manager.dedup(system.num_vertices()), now);
      ++replans;
      EXPECT_EQ(incr.topology().edges(), ref.topology().edges())
          << "seed=" << seed << " now=" << now;
      EXPECT_EQ(collected_pairs_of(incr.topology()),
                collected_pairs_of(ref.topology()))
          << "seed=" << seed << " now=" << now;
      EXPECT_TRUE(incr.pairs() == ref.pairs()) << "seed=" << seed;
    };

    for (std::size_t b = 1; b <= 16; ++b) {
      const double now = static_cast<double>(b);
      const auto stats = apply_update_batch(manager, system, universe, churn, 0.2);
      incr.enqueue_delta(stats.delta, now);
      if (incr.should_flush(now)) replan_both(now);
    }
    if (incr.has_pending()) replan_both(17.0);
    EXPECT_GE(replans, 2u) << "seed=" << seed;
  }
}

// ---------------------------------------------------------------------------
// Facade layer: kNone churn rides the delta fast path (delta_applies
// counts it) and stays bit-identical to a hand-driven non-incremental
// ADAPTIVE planner replanning at the same read epochs.

TEST(ChurnFacade, DeltaFastPathMatchesNonIncrementalPlanner) {
  SystemModel proto(24, 300.0, kCost);
  proto.set_collector_capacity(16.0 * 24.0);
  Rng attr_rng{3};
  proto.assign_random_attributes(10, 4, attr_rng);

  MonitoringSystemOptions options;
  options.planner = quick_options();
  // Extension-oblivious: specs stay trivial, so every mutation is
  // signature-stable and must ride the delta path.
  options.aggregation_aware = false;
  options.frequency_aware = false;
  MonitoringSystem sys(proto, options);

  SystemModel mirror_system = proto;
  TaskManager mirror(&mirror_system);

  WorkloadGenerator gen(proto, WorkloadConfig{.attr_universe = 10}, 5);
  std::vector<MonitoringTask> tasks = gen.small_tasks(12);
  std::vector<TaskId> facade_ids, mirror_ids;
  for (const auto& t : tasks) {
    facade_ids.push_back(sys.add_task(t));
    mirror_ids.push_back(mirror.add_task(t));
  }

  PlannerOptions mirror_options = quick_options();
  mirror_options.attr_specs = derive_attr_specs(mirror, false, false);
  AdaptivePlanner ref(mirror_system, mirror_options, AdaptScheme::kAdaptive);
  ref.initialize(mirror.dedup(mirror_system.num_vertices()), 0.0);
  EXPECT_EQ(sys.collected_pairs(0.0), collected_pairs_of(ref.topology()));
  EXPECT_EQ(sys.topology(0.0).edges(), ref.topology().edges());

  Rng churn{7};
  for (std::size_t b = 1; b <= 8; ++b) {
    const double now = static_cast<double>(b);
    // Redraw one task's attribute set; apply identically to both sides.
    const std::size_t i = churn.below(tasks.size());
    MonitoringTask next = tasks[i];
    next.attrs.clear();
    next.attrs.push_back(static_cast<AttrId>(churn.below(10)));
    next.attrs.push_back(static_cast<AttrId>(churn.below(10)));
    sort_unique(next.attrs);
    tasks[i] = next;

    next.id = facade_ids[i];
    ASSERT_TRUE(sys.modify_task(next));
    next.id = mirror_ids[i];
    ASSERT_TRUE(mirror.modify_task(std::move(next)));

    ref.apply_update(mirror.dedup(mirror_system.num_vertices()), now);
    EXPECT_EQ(sys.collected_pairs(now), collected_pairs_of(ref.topology()))
        << "batch=" << b;
    EXPECT_EQ(sys.topology(now).edges(), ref.topology().edges()) << "batch=" << b;
  }
  // Every read after a mutation was served by the incremental path.
  EXPECT_EQ(sys.status(9.0).delta_applies, 8u);
}

// ---------------------------------------------------------------------------
// Federation layer: churn routed to one shard leaves every other shard's
// planner untouched — flat `planner.shard<k>.delta.replans` counters.

TEST(ChurnFederation, UntouchedShardsNeverReplanAcrossK) {
  for (std::size_t shards : {1u, 2u, 4u}) {
    SystemModel global(32, 300.0, kCost);
    global.set_collector_capacity(16.0 * 32.0);
    Rng attr_rng{7};
    global.assign_random_attributes(12, 5, attr_rng);

    obs::Registry registry;
    federation::FederationOptions options;
    options.num_shards = shards;
    options.metrics = &registry;
    options.shard.planner = quick_options();
    options.shard.aggregation_aware = false;
    options.shard.frequency_aware = false;
    federation::FederatedMonitoringSystem fed(global, options);

    // One task per shard, nodes wholly inside that shard's subset.
    std::vector<TaskId> task_of_shard(shards, 0);
    std::vector<MonitoringTask> task_defs(shards);
    for (std::uint32_t k = 0; k < shards; ++k) {
      MonitoringTask t;
      for (NodeId n = 1; n < global.num_vertices() && t.nodes.size() < 3; ++n)
        if (fed.router().shard_of(n) == k) t.nodes.push_back(n);
      ASSERT_FALSE(t.nodes.empty());
      t.attrs = global.observable(t.nodes.front());
      task_defs[k] = t;
      task_of_shard[k] = fed.add_task(t);
    }
    fed.status(0.0);  // plan every shard once

    // Churn only shard 0's task: redraw its attribute set repeatedly.
    Rng churn{11};
    for (std::size_t b = 1; b <= 6; ++b) {
      MonitoringTask next = task_defs[0];
      next.id = task_of_shard[0];
      next.attrs.clear();
      next.attrs.push_back(static_cast<AttrId>(churn.below(12)));
      sort_unique(next.attrs);
      ASSERT_TRUE(fed.modify_task(next));
      fed.status(static_cast<double>(b));
    }

    EXPECT_GT(fed.status(7.0).delta_applies, 0u) << "K=" << shards;
    fed.publish_metrics();
    const auto snap = registry.snapshot();
    for (std::uint32_t k = 0; k < shards; ++k) {
      const std::string name =
          "planner.shard" + std::to_string(k) + ".delta.replans";
      ASSERT_TRUE(snap.counters.contains(name)) << "K=" << shards;
      if (k == 0) {
        EXPECT_GT(snap.counters.at(name), 0u) << "K=" << shards;
      } else {
        EXPECT_EQ(snap.counters.at(name), 0u)
            << "K=" << shards << " shard=" << k;
      }
    }
  }
}

}  // namespace
}  // namespace remo
