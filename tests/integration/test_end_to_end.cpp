// Integration tests: the full REMO pipeline — tasks -> task manager ->
// planner -> topology -> simulator — plus cross-module invariants on
// realistic (small) instances of the paper's scenarios.
#include <gtest/gtest.h>

#include <cmath>

#include "adapt/adaptive_planner.h"
#include "extensions/attr_spec_derivation.h"
#include "planner/planner.h"
#include "sim/simulator.h"
#include "streamapp/stream_app.h"
#include "task/workload.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

TEST(EndToEnd, TasksToSimulatedCollection) {
  SystemModel system(50, 150.0, kCost);
  system.set_collector_capacity(500.0);
  Rng rng{1};
  system.assign_random_attributes(30, 10, rng);

  WorkloadGenerator gen(system, WorkloadConfig{.attr_universe = 30}, 2);
  TaskManager manager(&system);
  for (auto& t : gen.small_tasks(25)) manager.add_task(std::move(t));
  const PairSet pairs = manager.dedup(system.num_vertices());
  ASSERT_GT(pairs.total_pairs(), 0u);

  Planner planner(system, PlannerOptions{});
  const Topology topo = planner.plan(pairs);
  ASSERT_TRUE(topo.validate(system));

  RandomWalkSource src(pairs, 3);
  SimConfig cfg;
  cfg.epochs = 80;
  const auto report = simulate(system, topo, pairs, src, cfg);
  // Whatever the planner says it covers must actually be deliverable.
  EXPECT_EQ(report.planned_pairs, topo.collected_pairs());
  EXPECT_GT(report.delivered_ratio, 0.95);
}

TEST(EndToEnd, StreamAppPipeline) {
  SystemModel system(40, 200.0, kCost);
  system.set_collector_capacity(800.0);
  StreamApplication app(system, StreamAppConfig{.num_operators = 80}, 4);

  WorkloadGenerator gen(
      system, WorkloadConfig{.attr_universe = app.attr_universe()}, 5);
  TaskManager manager(&system);
  for (auto& t : gen.small_tasks(20)) manager.add_task(std::move(t));
  const PairSet pairs = manager.dedup(system.num_vertices());
  ASSERT_GT(pairs.total_pairs(), 0u);

  const Topology topo = Planner(system, PlannerOptions{}).plan(pairs);
  SimConfig cfg;
  cfg.epochs = 100;
  const auto report = simulate(system, topo, pairs, app, cfg);
  EXPECT_TRUE(std::isfinite(report.avg_percent_error));
  EXPECT_GT(report.messages_sent, 0u);
}

TEST(EndToEnd, AdaptationThenSimulation) {
  SystemModel system(40, 120.0, kCost);
  system.set_collector_capacity(400.0);
  Rng rng{6};
  system.assign_random_attributes(20, 8, rng);

  WorkloadGenerator gen(system, WorkloadConfig{.attr_universe = 20}, 7);
  TaskManager manager(&system);
  for (auto& t : gen.small_tasks(20)) manager.add_task(std::move(t));

  AdaptivePlanner ap(system, PlannerOptions{}, AdaptScheme::kAdaptive);
  ap.initialize(manager.dedup(system.num_vertices()), 0.0);
  Rng churn{8};
  for (int batch = 1; batch <= 3; ++batch) {
    apply_update_batch(manager, system, 20, churn);
    ap.apply_update(manager.dedup(system.num_vertices()), batch * 50.0);
  }
  const PairSet pairs = manager.dedup(system.num_vertices());
  ASSERT_TRUE(ap.topology().validate(system));

  RandomWalkSource src(pairs, 9);
  SimConfig cfg;
  cfg.epochs = 60;
  const auto report = simulate(system, ap.topology(), pairs, src, cfg);
  EXPECT_GT(report.delivered_ratio, 0.9);
}

TEST(EndToEnd, DedupSavesTraffic) {
  // Overlapping tasks: deduplication must shrink the pair set, and the
  // planner's topology must deliver each pair exactly once per epoch.
  SystemModel system(20, 1e6, kCost);
  for (NodeId n = 1; n <= 20; ++n) system.set_observable(n, {0, 1});
  TaskManager manager(&system);
  std::vector<NodeId> first_half, all;
  for (NodeId n = 1; n <= 20; ++n) {
    all.push_back(n);
    if (n <= 10) first_half.push_back(n);
  }
  MonitoringTask t1;
  t1.attrs = {0, 1};
  t1.nodes = all;
  MonitoringTask t2;
  t2.attrs = {0};
  t2.nodes = first_half;
  manager.add_task(t1);
  manager.add_task(t2);
  EXPECT_EQ(manager.raw_pair_count(), 50u);
  const PairSet pairs = manager.dedup(system.num_vertices());
  EXPECT_EQ(pairs.total_pairs(), 40u);

  const Topology topo = Planner(system, PlannerOptions{}).plan(pairs);
  RandomWalkSource src(pairs, 10);
  SimConfig cfg;
  cfg.epochs = 50;
  cfg.warmup = 10;
  const auto report = simulate(system, topo, pairs, src, cfg);
  EXPECT_NEAR(report.delivered_ratio, 1.0, 1e-9);
}

TEST(EndToEnd, FullExtensionStack) {
  // Aggregation + frequency + reliability all at once, through the
  // derivation helpers, planner, and validation.
  SystemModel system(30, 200.0, kCost);
  system.set_collector_capacity(600.0);
  for (NodeId n = 1; n <= 30; ++n) system.set_observable(n, {0, 1, 2});

  TaskManager manager(&system);
  std::vector<NodeId> all;
  for (NodeId n = 1; n <= 30; ++n) all.push_back(n);
  MonitoringTask agg;
  agg.attrs = {0};
  agg.nodes = all;
  agg.aggregation = AggType::kMax;
  MonitoringTask slow;
  slow.attrs = {1};
  slow.nodes = all;
  slow.frequency = 0.25;
  MonitoringTask plain;
  plain.attrs = {2};
  plain.nodes = all;
  manager.add_task(agg);
  manager.add_task(slow);
  manager.add_task(plain);

  PlannerOptions o;
  o.attr_specs = derive_attr_specs(manager, true, true);
  const PairSet pairs = manager.dedup(system.num_vertices());
  const Topology topo = Planner(system, o).plan(pairs);
  EXPECT_TRUE(topo.validate(system));
  EXPECT_EQ(topo.collected_pairs(), pairs.total_pairs());
}

}  // namespace
}  // namespace remo
