// End-to-end failure recovery: the MonitoringSystem's detect → repair →
// replan loop closed against the simulator. A mid-chain outage orphans a
// deep subtree; the loop must notice from delivery gaps alone, re-home the
// orphans, and bring the alive pairs' error back to the no-failure level —
// while the same outage without the loop never recovers.
#include <gtest/gtest.h>

#include <limits>

#include "core/monitoring_system.h"
#include "sim/simulator.h"

namespace remo {
namespace {

constexpr std::uint64_t kForever = std::numeric_limits<std::uint64_t>::max();
const CostModel kCost{10.0, 1.0};

SystemModel make_system(std::size_t n) {
  SystemModel s(n, 1e6, kCost);
  s.set_collector_capacity(1e9);
  for (NodeId id = 1; id <= n; ++id) s.set_observable(id, {0});
  return s;
}

MonitoringSystemOptions loop_options() {
  MonitoringSystemOptions o;
  // Deep chain: a mid-chain failure orphans a large subtree.
  o.planner.partition_scheme = PartitionScheme::kOneSet;
  o.planner.tree.scheme = TreeScheme::kChain;
  o.recovery.enabled = true;
  o.recovery.liveness.missed_deadlines = 3;
  o.recovery.stabilize_epochs = 8;
  return o;
}

MonitoringTask all_nodes_task(std::size_t n) {
  MonitoringTask t;
  t.attrs = {0};
  for (NodeId id = 1; id <= n; ++id) t.nodes.push_back(id);
  return t;
}

/// Mean of pair_mean_error over pairs whose node is not `skip`.
double alive_mean(const SimReport& report, const PairSet& pairs, NodeId skip) {
  const auto all = pairs.all_pairs();
  double sum = 0.0;
  std::size_t cnt = 0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i].node == skip) continue;
    sum += report.pair_mean_error[i];
    ++cnt;
  }
  return sum / static_cast<double>(cnt);
}

TEST(FailureRecovery, ClosedLoopHealsAPermanentMidChainOutage) {
  const std::size_t n = 16;
  SystemModel system = make_system(n);
  MonitoringSystem service(std::move(system), loop_options());
  service.add_task(all_nodes_task(n));
  const Topology initial = service.topology(0.0);
  ASSERT_GE(initial.entries()[0].tree.height(), 12u);

  const auto& tree = initial.entries()[0].tree;
  NodeId victim = kNoNode;
  for (NodeId m : tree.members())
    if (tree.depth(m) == 3) victim = m;
  ASSERT_NE(victim, kNoNode);
  const std::size_t orphan_count = tree.branch_nodes(victim).size() - 1;
  ASSERT_GE(orphan_count, 10u);  // most of the chain hangs below the victim

  const PairSet pairs = service.tasks().dedup(service.system().num_vertices());
  SimConfig cfg;
  cfg.epochs = 240;
  cfg.warmup = 120;  // sample well after the repair + replan settled
  cfg.collect_pair_errors = true;
  cfg.failures = {{victim, 40, kForever}};

  // --- healing run: the loop closed through the facade -------------------
  std::vector<LivenessEvent> detects;
  {
    // Rebuild the service with observability hooks installed.
    MonitoringSystemOptions opts = loop_options();
    opts.recovery.on_detect = [&](const LivenessEvent& ev) {
      if (ev.down) detects.push_back(ev);
    };
    MonitoringSystem healing(make_system(n), std::move(opts));
    healing.add_task(all_nodes_task(n));
    ASSERT_EQ(edge_diff(healing.topology(0.0), initial), 0u);

    bool changed = false;
    SimConfig loop = cfg;
    loop.on_delivery = [&](NodeAttrPair p, std::uint64_t e, double) {
      healing.on_delivery(p, e);
    };
    loop.on_epoch_end = [&](std::uint64_t e) { changed = healing.end_epoch(e); };
    loop.on_reconfigure = [&](std::uint64_t e) -> const Topology* {
      return changed ? &healing.topology(static_cast<double>(e)) : nullptr;
    };
    RandomWalkSource src(pairs, 42, 100.0, 3.0);
    const auto healed = simulate(healing.system(), healing.topology(0.0),
                                 pairs, src, loop);

    // Detection: the victim's last value arrives at epoch 41 (depth 3);
    // deadline = 41 + grace 3 + 3 deadlines = 47, detection at 48.
    ASSERT_FALSE(detects.empty());
    EXPECT_EQ(detects.front().node, victim);
    EXPECT_GE(detects.front().epoch, 41u);
    EXPECT_LE(detects.front().epoch, 52u);

    const auto& rep = healing.repair_report();
    EXPECT_GE(rep.outages_detected, 1u);
    EXPECT_GE(rep.repair_passes, 1u);
    EXPECT_EQ(rep.orphans_reattached, orphan_count);
    EXPECT_GE(rep.suspects_parked, 1u);
    EXPECT_GE(rep.replans_after_outage, 1u);
    EXPECT_GT(rep.repair_messages, 0u);
    EXPECT_EQ(rep.pairs_dropped, 0u);  // ample capacity: nobody is lost
    EXPECT_GT(rep.mean_detect_epochs(), 0.0);
    EXPECT_TRUE(healing.liveness().is_down(victim));
    EXPECT_TRUE(
        healing.topology(240.0).validate(healing.system()));

    // --- reference runs: same workload, loop open ----------------------
    RandomWalkSource s_base(pairs, 42, 100.0, 3.0);
    SimConfig base = cfg;
    base.failures.clear();
    const auto baseline = simulate(service.system(), initial, pairs, s_base, base);

    RandomWalkSource s_broken(pairs, 42, 100.0, 3.0);
    const auto broken = simulate(service.system(), initial, pairs, s_broken, cfg);

    const double healed_alive = alive_mean(healed, pairs, victim);
    const double base_alive = alive_mean(baseline, pairs, victim);
    const double broken_alive = alive_mean(broken, pairs, victim);
    // Post-repair the alive pairs track truth as well as the no-failure
    // run (the repaired forest is shallower, so usually better).
    EXPECT_LE(healed_alive, base_alive * 1.1 + 0.5);
    // Without the loop the orphaned subtree stays stale forever.
    EXPECT_GT(broken_alive, 2.0 * healed_alive + 1.0);
    EXPECT_GT(broken_alive, 2.0 * base_alive + 1.0);
  }
}

TEST(FailureRecovery, TransientOutageRecoversAndReintegrates) {
  const std::size_t n = 12;
  MonitoringSystem service(make_system(n), loop_options());
  service.add_task(all_nodes_task(n));
  const Topology initial = service.topology(0.0);
  const auto& tree = initial.entries()[0].tree;
  NodeId victim = kNoNode;
  for (NodeId m : tree.members())
    if (tree.depth(m) == 2) victim = m;
  ASSERT_NE(victim, kNoNode);

  const PairSet pairs = service.tasks().dedup(service.system().num_vertices());
  bool changed = false;
  SimConfig cfg;
  cfg.epochs = 200;
  cfg.warmup = 120;
  cfg.collect_pair_errors = true;
  cfg.failures = {{victim, 40, 70}};
  cfg.on_delivery = [&](NodeAttrPair p, std::uint64_t e, double) {
    service.on_delivery(p, e);
  };
  cfg.on_epoch_end = [&](std::uint64_t e) { changed = service.end_epoch(e); };
  cfg.on_reconfigure = [&](std::uint64_t e) -> const Topology* {
    return changed ? &service.topology(static_cast<double>(e)) : nullptr;
  };
  RandomWalkSource src(pairs, 7, 100.0, 3.0);
  const auto report = simulate(service.system(), initial, pairs, src, cfg);

  const auto& rep = service.repair_report();
  EXPECT_GE(rep.outages_detected, 1u);
  // The suspect is parked on a probe link, so its first post-outage send
  // reaches the collector directly and the recovery is observed.
  EXPECT_GE(rep.recoveries_detected, 1u);
  EXPECT_FALSE(service.liveness().is_down(victim));
  EXPECT_TRUE(service.liveness().suspected().empty());
  EXPECT_TRUE(service.topology(200.0).validate(service.system()));

  // After reintegration every pair — including the victim's — is fresh.
  const auto all = pairs.all_pairs();
  for (std::size_t i = 0; i < all.size(); ++i)
    EXPECT_LT(report.pair_mean_error[i], 25.0)
        << "pair node " << all[i].node;
  const auto status = service.status(200.0);
  EXPECT_EQ(status.repair.recoveries_detected, rep.recoveries_detected);
}

}  // namespace
}  // namespace remo
