// Scaled-down versions of the paper's evaluation claims (Sec. 7), asserted
// as tests so regressions in the heuristics are caught before the full
// benches run. Each test mirrors one figure's qualitative shape.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "planner/planner.h"
#include "task/task_manager.h"
#include "task/workload.h"

namespace remo {
namespace {

const CostModel kCost{20.0, 1.0};  // C/a = 20 default regime

struct Bench {
  SystemModel system;
  PairSet pairs;

  Bench(std::size_t nodes, std::size_t universe, std::size_t per_node,
        Capacity node_cap, Capacity coll_cap, std::uint64_t seed,
        std::size_t small_tasks, std::size_t large_tasks)
      : system(nodes, node_cap, kCost), pairs(0) {
    system.set_collector_capacity(coll_cap);
    Rng rng{seed};
    system.assign_random_attributes(universe, per_node, rng);
    WorkloadGenerator gen(system, WorkloadConfig{.attr_universe = universe},
                          seed + 1);
    TaskManager manager(&system);
    for (auto& t : gen.small_tasks(small_tasks)) manager.add_task(std::move(t));
    for (auto& t : gen.large_tasks(large_tasks)) manager.add_task(std::move(t));
    pairs = manager.dedup(system.num_vertices());
  }

  double coverage(PartitionScheme scheme) const {
    PlannerOptions o;
    o.partition_scheme = scheme;
    return Planner(system, o).plan(pairs).coverage();
  }

  double coverage_tree(TreeScheme scheme) const {
    PlannerOptions o;
    o.partition_scheme = PartitionScheme::kRemo;
    o.tree.scheme = scheme;
    return Planner(system, o).plan(pairs).coverage();
  }
};

TEST(PaperShapes, Fig5RemoDominatesBaselines) {
  // Moderate pressure so coverage < 100% and schemes separate.
  Bench b(60, 30, 10, 90.0, 250.0, 42, 20, 6);
  const double remo = b.coverage(PartitionScheme::kRemo);
  const double singleton = b.coverage(PartitionScheme::kSingletonSet);
  const double one_set = b.coverage(PartitionScheme::kOneSet);
  EXPECT_GE(remo, singleton - 1e-9);
  EXPECT_GE(remo, one_set - 1e-9);
  EXPECT_LT(std::max({remo, singleton, one_set}), 1.0);  // heavy workload
}

TEST(PaperShapes, Fig5bSingletonCatchesUpUnderExtremeLoad) {
  // Under extremely heavy per-node payloads (a node's full attribute
  // vector no longer fits in one message: C + a·x > b) ONE-SET's
  // all-or-nothing trees collapse while SINGLETON-SET still delivers a
  // trickle per tree; REMO must dominate both (Fig. 5b's right edge).
  SystemModel system(60, 40.0, kCost);
  system.set_collector_capacity(3000.0);
  Rng rng{7};
  system.assign_random_attributes(48, 30, rng);  // payload 30 > (b - C)/a
  PairSet pairs(61);
  for (NodeId id = 1; id <= 60; ++id)
    for (AttrId a : system.observable(id)) pairs.add(id, a);
  auto coverage = [&](PartitionScheme s) {
    PlannerOptions o;
    o.partition_scheme = s;
    return Planner(system, o).plan(pairs).coverage();
  };
  const double singleton = coverage(PartitionScheme::kSingletonSet);
  const double one_set = coverage(PartitionScheme::kOneSet);
  const double remo = coverage(PartitionScheme::kRemo);
  EXPECT_NEAR(one_set, 0.0, 1e-9);  // 20 + 30 > 40: nothing fits
  EXPECT_GT(singleton, one_set);
  EXPECT_GE(remo, singleton - 1e-9);
  // REMO should find mid-granularity sets and clearly beat both endpoints.
  EXPECT_GT(remo, 2.0 * singleton);
}

TEST(PaperShapes, Fig6OneSetBetterForSmallTasksSingletonForLarge) {
  // Small per-node payloads: one message carries everything cheaply, so
  // ONE-SET >= SINGLETON-SET (which pays C per attribute per node).
  Bench small(50, 30, 8, 70.0, 800.0, 11, 24, 0);
  EXPECT_GE(small.coverage(PartitionScheme::kOneSet),
            small.coverage(PartitionScheme::kSingletonSet) - 0.02);
  // Huge per-node payloads (C + a·x > b): ONE-SET cannot even send, while
  // SINGLETON-SET delivers pair by pair.
  SystemModel system(50, 45.0, kCost);
  system.set_collector_capacity(2500.0);
  Rng rng{12};
  system.assign_random_attributes(40, 30, rng);
  PairSet pairs(51);
  for (NodeId id = 1; id <= 50; ++id)
    for (AttrId a : system.observable(id)) pairs.add(id, a);
  auto coverage = [&](PartitionScheme s) {
    PlannerOptions o;
    o.partition_scheme = s;
    return Planner(system, o).plan(pairs).coverage();
  };
  EXPECT_GE(coverage(PartitionScheme::kSingletonSet),
            coverage(PartitionScheme::kOneSet) - 0.02);
}

TEST(PaperShapes, Fig6cSingletonSuffersMostFromPerMessageOverhead) {
  // Increase C/a: SINGLETON-SET (most trees, most messages) must lose more
  // coverage than ONE-SET.
  auto coverage_at = [](double c_over_a, PartitionScheme scheme) {
    SystemModel system(40, 80.0, CostModel{c_over_a, 1.0});
    system.set_collector_capacity(240.0);
    Rng rng{13};
    system.assign_random_attributes(24, 8, rng);
    WorkloadGenerator gen(system, WorkloadConfig{.attr_universe = 24}, 14);
    TaskManager manager(&system);
    for (auto& t : gen.small_tasks(16)) manager.add_task(std::move(t));
    const PairSet pairs = manager.dedup(system.num_vertices());
    PlannerOptions o;
    o.partition_scheme = scheme;
    return Planner(system, o).plan(pairs).coverage();
  };
  const double s_lo = coverage_at(2.0, PartitionScheme::kSingletonSet);
  const double s_hi = coverage_at(40.0, PartitionScheme::kSingletonSet);
  const double o_lo = coverage_at(2.0, PartitionScheme::kOneSet);
  const double o_hi = coverage_at(40.0, PartitionScheme::kOneSet);
  const double singleton_drop = s_lo - s_hi;
  const double one_set_drop = o_lo - o_hi;
  EXPECT_GT(singleton_drop, 0.0);
  EXPECT_GE(singleton_drop, one_set_drop - 0.02);
}

// Fig. 7 regime: many trees per node (singleton partition isolates the
// tree-construction scheme), a comfortable collector, and node budgets
// with only modest slack beyond their own sends — so CHAIN's relaying
// wastes exactly the capacity later trees need (Sec. 7.1: "nodes have to
// pay high cost for relaying, which seriously degrades the performance of
// CHAIN when workloads are heavy").
struct TreeSchemeBench {
  SystemModel system;
  PairSet pairs;

  TreeSchemeBench(std::size_t per_node, double slack)
      : system(60, per_node * kCost.message_cost(1) + slack, kCost), pairs(61) {
    system.set_collector_capacity(4000.0);
    Rng rng{3};
    system.assign_random_attributes(24, per_node, rng);
    for (NodeId id = 1; id <= 60; ++id)
      for (AttrId a : system.observable(id)) pairs.add(id, a);
  }

  double coverage(TreeScheme scheme) const {
    PlannerOptions o;
    o.partition_scheme = PartitionScheme::kSingletonSet;
    o.tree.scheme = scheme;
    return Planner(system, o).plan(pairs).coverage();
  }
};

TEST(PaperShapes, Fig7AdaptiveTreeDominates) {
  // ADAPTIVE is a heuristic: allow a 1-point tolerance against any single
  // competitor at a single operating point; the Fig. 7 bench shows the
  // full sweep.
  TreeSchemeBench b(8, 10.0);
  const double adaptive = b.coverage(TreeScheme::kAdaptive);
  EXPECT_GE(adaptive, b.coverage(TreeScheme::kStar) - 0.01);
  EXPECT_GE(adaptive, b.coverage(TreeScheme::kChain) - 0.01);
  EXPECT_GE(adaptive, b.coverage(TreeScheme::kMaxAvb) - 0.01);
  EXPECT_GT(adaptive, b.coverage(TreeScheme::kChain));  // chain clearly worst
}

TEST(PaperShapes, Fig7StarBeatsChainUnderHeavyLoad) {
  // Heavy workload: relay cost kills CHAIN (Sec. 7.1 discussion).
  TreeSchemeBench b(12, 20.0);
  EXPECT_GT(b.coverage(TreeScheme::kStar), b.coverage(TreeScheme::kChain));
}

TEST(PaperShapes, Fig11OrderedAtLeastOnDemandAtLeastOthers) {
  Bench b(50, 24, 10, 65.0, 180.0, 31, 16, 4);
  auto coverage_alloc = [&](AllocationScheme a) {
    PlannerOptions o;
    o.allocation = a;
    return Planner(b.system, o).plan(b.pairs).coverage();
  };
  const double ordered = coverage_alloc(AllocationScheme::kOrdered);
  const double on_demand = coverage_alloc(AllocationScheme::kOnDemand);
  const double uniform = coverage_alloc(AllocationScheme::kUniform);
  const double proportional = coverage_alloc(AllocationScheme::kProportional);
  EXPECT_GE(ordered, uniform - 0.03);
  EXPECT_GE(ordered, proportional - 0.03);
  EXPECT_GE(on_demand, uniform - 0.03);
  EXPECT_GE(std::max(ordered, on_demand), std::max(uniform, proportional) - 1e-9);
}

}  // namespace
}  // namespace remo
