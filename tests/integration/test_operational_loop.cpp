// The full operational loop a deployment would run: the MonitoringSystem
// facade plans, the simulator delivers against the live topology, the
// collector stores, alerts fire, tasks churn, the topology adapts — and
// every cross-component invariant holds across rounds.
#include <gtest/gtest.h>

#include "collector/alerts.h"
#include "collector/time_series.h"
#include "core/monitoring_system.h"
#include "sim/simulator.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

SystemModel make_system() {
  SystemModel s(24, 150.0, kCost);
  s.set_collector_capacity(900.0);
  for (NodeId n = 1; n <= 24; ++n) s.set_observable(n, {0, 1, 2, 3});
  return s;
}

MonitoringTask task(std::vector<AttrId> attrs, std::vector<NodeId> nodes) {
  MonitoringTask t;
  t.attrs = std::move(attrs);
  t.nodes = std::move(nodes);
  return t;
}

TEST(OperationalLoop, PlanDeliverAlertAdaptRounds) {
  MonitoringSystem service(make_system());
  std::vector<NodeId> all;
  for (NodeId n = 1; n <= 24; ++n) all.push_back(n);
  const TaskId base_task = service.add_task(task({0, 1}, all));

  TimeSeriesStore store(128);
  AlertEngine alerts(&store);
  std::size_t fleet_alerts = 0;
  alerts.add_rule({.attr = 0,
                   .op = AlertOp::kGreater,
                   .threshold = 1e9,  // never trips: exercises the path only
                   .scope = AlertScope::kFleetMax},
                  [&fleet_alerts](const Alert&) { ++fleet_alerts; });

  double now = 0.0;
  for (int round = 0; round < 4; ++round) {
    // 1. Current topology (adaptively replanned if tasks changed).
    const Topology& topo = service.topology(now);
    ASSERT_TRUE(topo.validate(service.system())) << "round " << round;

    // 2. Deliver 30 epochs against it, feeding the collector stack.
    const PairSet pairs =
        service.tasks().dedup(service.system().num_vertices());
    RandomWalkSource source(pairs, 100 + round);
    SimConfig sim;
    sim.epochs = 30;
    sim.warmup = 5;
    sim.on_delivery = [&](NodeAttrPair p, std::uint64_t e, double v) {
      store.record(p, static_cast<std::uint64_t>(now) + e, v);
      alerts.on_value(p, e, v);
    };
    sim.on_epoch_end = [&](std::uint64_t e) { alerts.end_epoch(e); };
    const auto report = simulate(service.system(), topo, pairs, source, sim);
    EXPECT_GT(report.delivered_ratio, 0.95) << "round " << round;

    // 3. Everything the plan covers is queryable and fresh.
    const auto status = service.status(now);
    EXPECT_EQ(status.collected, topo.collected_pairs());
    for (const auto& entry : topo.entries()) {
      for (NodeId n : entry.tree.members()) {
        const auto& local = entry.tree.local_counts(n);
        for (std::size_t m = 0; m < entry.attrs.size(); ++m) {
          if (local[m] == 0) continue;
          EXPECT_TRUE(store.latest({n, entry.attrs[m]}).has_value())
              << "round " << round;
        }
      }
    }

    // 4. Churn: add a new per-round task, and on round 2 widen the base.
    now += 40.0;
    service.add_task(task({static_cast<AttrId>(2 + round % 2)},
                          {static_cast<NodeId>(1 + round * 5),
                           static_cast<NodeId>(2 + round * 5)}));
    if (round == 2) {
      MonitoringTask widened = task({0, 1, 3}, all);
      widened.id = base_task;
      ASSERT_TRUE(service.modify_task(widened));
    }
  }

  // Note: the rounds above may legitimately count ZERO adaptation messages
  // — new attributes merged into existing trees ride the links that are
  // already up (the multiset of (child, parent) connections is unchanged).
  // Force a genuine rewire: a replicated task must open disjoint trees.
  MonitoringTask critical = task({0}, all);
  critical.reliability = ReliabilityMode::kSSDP;
  critical.replicas = 2;
  service.add_task(critical);
  now += 40.0;
  const auto final_status = service.status(now);
  EXPECT_GE(final_status.adaptations, 1u);
  EXPECT_GT(final_status.adaptation_messages, 0u);
  EXPECT_TRUE(service.topology(now).validate(service.system()));
  EXPECT_EQ(final_status.tasks, 6u);  // 1 base + 4 per-round + critical
  const PairSet final_pairs =
      service.tasks().dedup(service.system().num_vertices());
  EXPECT_EQ(final_status.pairs, final_pairs.total_pairs());
  EXPECT_EQ(fleet_alerts, 0u);  // the sentinel rule never tripped
  EXPECT_GT(store.total_samples(), 1000u);
}

}  // namespace
}  // namespace remo
