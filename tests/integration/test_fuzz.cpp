// Randomized end-to-end invariant sweeps: many seeds × several regimes,
// asserting the properties that must hold for *every* input — topology
// validity, conservation of pairs, planner dominance over its own
// baselines, and simulator delivery consistency.
#include <gtest/gtest.h>

#include "adapt/adaptive_planner.h"
#include "planner/planner.h"
#include "sim/simulator.h"
#include "task/workload.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

struct FuzzCase {
  std::uint64_t seed;
  std::size_t nodes;
  Capacity node_cap;
  Capacity coll_cap;
};

class PlannerFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(PlannerFuzz, InvariantsHold) {
  const auto c = GetParam();
  SystemModel system(c.nodes, c.node_cap, kCost);
  system.set_collector_capacity(c.coll_cap);
  Rng rng{c.seed};
  system.assign_random_attributes(24, 8, rng);
  system.perturb_capacities(0.6, 1.4, rng);

  WorkloadGenerator gen(system, WorkloadConfig{.attr_universe = 24}, c.seed + 1);
  TaskManager manager(&system);
  for (auto& t : gen.small_tasks(15)) manager.add_task(std::move(t));
  for (auto& t : gen.large_tasks(5)) manager.add_task(std::move(t));
  const PairSet pairs = manager.dedup(system.num_vertices());
  if (pairs.empty()) GTEST_SKIP();

  PlannerOptions o;
  o.max_candidates = 8;
  o.max_iterations = 64;
  const Topology remo = Planner(system, o).plan(pairs);

  // 1. Structural and capacity invariants.
  ASSERT_TRUE(remo.validate(system));
  EXPECT_EQ(remo.total_pairs(), pairs.total_pairs());
  EXPECT_LE(remo.collected_pairs(), remo.total_pairs());

  // 2. Partition exactness: the forest's attribute sets partition the
  //    requested universe.
  EXPECT_TRUE(remo.partition().valid_over(pairs.attribute_universe()));

  // 3. Every collected pair is requested, every member contributes only
  //    attrs it monitors.
  for (const auto& e : remo.entries())
    for (NodeId n : e.tree.members()) {
      const auto& local = e.tree.local_counts(n);
      for (std::size_t m = 0; m < e.attrs.size(); ++m) {
        if (local[m] > 0) {
          EXPECT_TRUE(pairs.contains(n, e.attrs[m]));
        }
      }
    }

  // 4. Dominance over both baselines on the plan objective.
  PlannerOptions so = o;
  so.partition_scheme = PartitionScheme::kSingletonSet;
  PlannerOptions oo = o;
  oo.partition_scheme = PartitionScheme::kOneSet;
  const auto singleton = Planner(system, so).plan(pairs);
  const auto one_set = Planner(system, oo).plan(pairs);
  EXPECT_GE(remo.collected_pairs(),
            std::max(singleton.collected_pairs(), one_set.collected_pairs()));

  // 5. What the planner promises, the simulator delivers.
  RandomWalkSource src(pairs, c.seed + 2);
  SimConfig sim;
  sim.epochs = 60;
  sim.warmup = 20;
  const auto report = simulate(system, remo, pairs, src, sim);
  EXPECT_EQ(report.planned_pairs, remo.collected_pairs());
  EXPECT_GT(report.delivered_ratio, 0.99);
  EXPECT_LE(report.max_node_utilization, 1.0 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PlannerFuzz,
    ::testing::Values(FuzzCase{101, 30, 80.0, 400.0},
                      FuzzCase{102, 30, 80.0, 400.0},
                      FuzzCase{103, 50, 50.0, 300.0},
                      FuzzCase{104, 50, 50.0, 1200.0},
                      FuzzCase{105, 80, 40.0, 2000.0},
                      FuzzCase{106, 80, 120.0, 600.0},
                      FuzzCase{107, 40, 35.0, 5000.0},
                      FuzzCase{108, 40, 200.0, 250.0}));

class AdaptFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdaptFuzz, AdaptationPreservesInvariants) {
  const std::uint64_t seed = GetParam();
  SystemModel system(40, 100.0, kCost);
  system.set_collector_capacity(500.0);
  Rng rng{seed};
  system.assign_random_attributes(20, 7, rng);

  TaskManager manager(&system);
  WorkloadGenerator gen(system, WorkloadConfig{.attr_universe = 20}, seed + 1);
  for (auto& t : gen.small_tasks(18)) manager.add_task(std::move(t));

  PlannerOptions o;
  o.max_candidates = 8;
  o.max_iterations = 32;
  for (auto scheme : {AdaptScheme::kDirectApply, AdaptScheme::kAdaptive}) {
    TaskManager churn_manager = manager;  // same starting tasks per scheme
    AdaptivePlanner planner(system, o, scheme);
    planner.initialize(churn_manager.dedup(system.num_vertices()), 0.0);
    Rng churn{seed + 2};
    for (int batch = 1; batch <= 6; ++batch) {
      apply_update_batch(churn_manager, system, 20, churn, 0.1, 0.5);
      const PairSet now = churn_manager.dedup(system.num_vertices());
      planner.apply_update(now, batch * 20.0);
      ASSERT_TRUE(planner.topology().validate(system))
          << to_string(scheme) << " seed " << seed << " batch " << batch;
      EXPECT_EQ(planner.topology().total_pairs(), now.total_pairs());
      // The deployed partition must exactly cover the requested universe.
      EXPECT_TRUE(
          planner.topology().partition().valid_over(now.attribute_universe()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdaptFuzz,
                         ::testing::Values(201, 202, 203, 204, 205, 206));

}  // namespace
}  // namespace remo
