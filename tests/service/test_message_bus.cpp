// MessageBus admission control (DESIGN.md §14, `ctest -L service`): every
// Admission verdict with its BusStats accounting, token-bucket determinism
// on the virtual clock, FIFO drain under a value budget, and the
// export/restore hooks the daemon snapshot rides on. The threaded test at
// the bottom is the TSan target for the producer/consumer interleaving.
#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "service/message_bus.h"

namespace remo::service {
namespace {

Command values_cmd(std::uint32_t producer, std::size_t n, double stamp = 0.0) {
  Command cmd;
  cmd.kind = CommandKind::kValues;
  cmd.producer = producer;
  cmd.enqueued_at = stamp;
  for (std::size_t i = 0; i < n; ++i)
    cmd.values.push_back(ValueUpdate{static_cast<NodeId>(i + 1),
                                     static_cast<AttrId>(i), 1.0});
  return cmd;
}

Command control_cmd(ControlKind control = ControlKind::kReplan) {
  Command cmd;
  cmd.kind = CommandKind::kControl;
  cmd.control = control;
  return cmd;
}

TEST(MessageBus, AcceptsAndAccountsValueBatches) {
  MessageBus bus;
  EXPECT_EQ(bus.push(values_cmd(1, 3), 0.0), Admission::kAccepted);
  EXPECT_EQ(bus.push(values_cmd(1, 2), 0.0), Admission::kAccepted);
  EXPECT_EQ(bus.depth(), 2u);
  EXPECT_EQ(bus.queued_values(), 5u);

  const BusStats s = bus.stats();
  EXPECT_EQ(s.pushed, 2u);
  EXPECT_EQ(s.accepted, 2u);
  EXPECT_EQ(s.values_accepted, 5u);
  EXPECT_EQ(s.values_shed, 0u);
  EXPECT_EQ(s.depth_peak, 2u);
}

TEST(MessageBus, WatermarkShedsOnlyLowPriority) {
  MessageBus bus(BusOptions{.capacity = 8, .shed_watermark = 2});
  EXPECT_EQ(bus.push(values_cmd(1, 1), 0.0), Admission::kAccepted);
  EXPECT_EQ(bus.push(values_cmd(1, 1), 0.0), Admission::kAccepted);
  // Depth is at the watermark: value traffic sheds, churn still flows.
  EXPECT_EQ(bus.push(values_cmd(1, 4), 0.0), Admission::kShedBackpressure);
  EXPECT_EQ(bus.push(control_cmd(), 0.0), Admission::kAccepted);
  Command add;
  add.kind = CommandKind::kAddTask;
  EXPECT_EQ(bus.push(std::move(add), 0.0), Admission::kAccepted);

  const BusStats s = bus.stats();
  EXPECT_EQ(s.shed_backpressure, 1u);
  EXPECT_EQ(s.values_shed, 4u);
  EXPECT_EQ(bus.depth(), 4u);
  EXPECT_EQ(bus.queued_values(), 2u);
}

TEST(MessageBus, CapacityRejectsAnyPriority) {
  MessageBus bus(BusOptions{.capacity = 2, .shed_watermark = 2});
  EXPECT_EQ(bus.push(control_cmd(), 0.0), Admission::kAccepted);
  EXPECT_EQ(bus.push(control_cmd(), 0.0), Admission::kAccepted);
  EXPECT_EQ(bus.push(control_cmd(), 0.0), Admission::kRejectedFull);
  EXPECT_EQ(bus.push(values_cmd(1, 2), 0.0), Admission::kRejectedFull);

  const BusStats s = bus.stats();
  EXPECT_EQ(s.rejected_full, 2u);
  EXPECT_EQ(s.values_shed, 2u);
}

TEST(MessageBus, WatermarkClampsToCapacity) {
  MessageBus bus(BusOptions{.capacity = 2, .shed_watermark = 100});
  EXPECT_EQ(bus.options().shed_watermark, 2u);
}

TEST(MessageBus, TokenBucketIsDeterministicOnTheCallerClock) {
  MessageBus bus;
  bus.set_producer_limits(7, ProducerLimits{.rate = 2.0, .burst = 4.0});

  // First push anchors the bucket at now=10 with a full burst of 4.
  EXPECT_EQ(bus.push(values_cmd(7, 3, 10.0), 10.0), Admission::kAccepted);
  // 1 token left: a batch of 2 is over budget at the same instant.
  EXPECT_EQ(bus.push(values_cmd(7, 2, 10.0), 10.0), Admission::kShedRateLimit);
  // One virtual second refills 2 tokens (1 + 2 = 3 >= 2).
  EXPECT_EQ(bus.push(values_cmd(7, 2, 11.0), 11.0), Admission::kAccepted);
  // Refill saturates at burst: after a long idle stretch only 4 fit.
  EXPECT_EQ(bus.push(values_cmd(7, 5, 100.0), 100.0),
            Admission::kShedRateLimit);
  EXPECT_EQ(bus.push(values_cmd(7, 4, 100.0), 100.0), Admission::kAccepted);

  const BusStats s = bus.stats();
  EXPECT_EQ(s.shed_rate_limit, 2u);
  EXPECT_EQ(s.values_shed, 7u);

  // Other producers are unlimited, and churn never draws tokens.
  EXPECT_EQ(bus.push(values_cmd(8, 100, 100.0), 100.0), Admission::kAccepted);
  EXPECT_EQ(bus.push(control_cmd(), 100.0), Admission::kAccepted);
}

TEST(MessageBus, SetProducerLimitsResetsTheBucket) {
  MessageBus bus;
  bus.set_producer_limits(1, ProducerLimits{.rate = 1.0, .burst = 1.0});
  EXPECT_EQ(bus.push(values_cmd(1, 1, 0.0), 0.0), Admission::kAccepted);
  EXPECT_EQ(bus.push(values_cmd(1, 1, 0.0), 0.0), Admission::kShedRateLimit);
  // Re-registering grants a fresh burst, re-anchored at the next push.
  bus.set_producer_limits(1, ProducerLimits{.rate = 1.0, .burst = 2.0});
  EXPECT_EQ(bus.push(values_cmd(1, 2, 0.0), 0.0), Admission::kAccepted);
  // rate <= 0 disables limiting entirely.
  bus.set_producer_limits(1, ProducerLimits{});
  EXPECT_EQ(bus.push(values_cmd(1, 50, 0.0), 0.0), Admission::kAccepted);
}

TEST(MessageBus, DrainIsFifoAndHonorsTheValueBudget) {
  MessageBus bus;
  ASSERT_EQ(bus.push(values_cmd(1, 2, 1.0), 0.0), Admission::kAccepted);
  ASSERT_EQ(bus.push(values_cmd(1, 3, 2.0), 0.0), Admission::kAccepted);
  ASSERT_EQ(bus.push(control_cmd(), 0.0), Admission::kAccepted);
  ASSERT_EQ(bus.push(values_cmd(1, 1, 3.0), 0.0), Admission::kAccepted);

  // Budget 5: the first two batches fill it exactly (2 + 3), the control
  // command carries zero values and still flows, and the final batch
  // would exceed the budget, so it stays queued.
  std::vector<Command> out;
  EXPECT_EQ(bus.drain(out, 5), 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].enqueued_at, 1.0);
  EXPECT_EQ(out[1].enqueued_at, 2.0);
  EXPECT_EQ(out[2].kind, CommandKind::kControl);
  EXPECT_EQ(bus.depth(), 1u);
  EXPECT_EQ(bus.queued_values(), 1u);

  // The rest drains unlimited, appending.
  EXPECT_EQ(bus.drain(out), 1u);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(bus.depth(), 0u);
  EXPECT_EQ(bus.queued_values(), 0u);
}

TEST(MessageBus, OversizedFirstBatchStillMakesProgress) {
  MessageBus bus;
  ASSERT_EQ(bus.push(values_cmd(1, 10), 0.0), Admission::kAccepted);
  ASSERT_EQ(bus.push(values_cmd(1, 1), 0.0), Admission::kAccepted);
  std::vector<Command> out;
  // Budget 4 < the head batch of 10: it drains anyway (no livelock), and
  // the next batch waits.
  EXPECT_EQ(bus.drain(out, 4), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].values.size(), 10u);
  EXPECT_EQ(bus.queued_values(), 1u);
}

TEST(MessageBus, ExportRestoreRoundTripsQueueBucketsAndStats) {
  MessageBus a;
  a.set_producer_limits(3, ProducerLimits{.rate = 5.0, .burst = 10.0});
  ASSERT_EQ(a.push(values_cmd(3, 4, 2.5), 2.5), Admission::kAccepted);
  ASSERT_EQ(a.push(control_cmd(ControlKind::kSnapshot), 2.5),
            Admission::kAccepted);

  MessageBus b;
  b.restore(a.export_queue(), a.export_buckets(), a.stats());
  EXPECT_EQ(b.depth(), a.depth());
  EXPECT_EQ(b.queued_values(), a.queued_values());
  const BusStats sa = a.stats(), sb = b.stats();
  EXPECT_EQ(sb.pushed, sa.pushed);
  EXPECT_EQ(sb.values_accepted, sa.values_accepted);

  // The restored bucket continues where the original's left off: both
  // have 6 tokens at now=2.5, so a batch of 7 sheds on both.
  EXPECT_EQ(a.push(values_cmd(3, 7, 2.5), 2.5), Admission::kShedRateLimit);
  EXPECT_EQ(b.push(values_cmd(3, 7, 2.5), 2.5), Admission::kShedRateLimit);
  EXPECT_EQ(a.push(values_cmd(3, 6, 2.5), 2.5), Admission::kAccepted);
  EXPECT_EQ(b.push(values_cmd(3, 6, 2.5), 2.5), Admission::kAccepted);

  std::vector<Command> da, db;
  EXPECT_EQ(a.drain(da), b.drain(db));
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].kind, db[i].kind);
    EXPECT_TRUE(da[i].values == db[i].values);
    EXPECT_EQ(da[i].enqueued_at, db[i].enqueued_at);
  }
}

// TSan target: concurrent producers against a draining consumer. The
// assertion is conservation — every pushed value is either shed (counted)
// or drained — not any particular interleaving.
TEST(MessageBus, ConcurrentProducersConserveValues) {
  MessageBus bus(BusOptions{.capacity = 64, .shed_watermark = 48});
  constexpr int kProducers = 4;
  constexpr int kPushes = 50;

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t)
    producers.emplace_back([&bus, t] {
      for (int i = 0; i < kPushes; ++i)
        bus.push(values_cmd(static_cast<std::uint32_t>(t), 2), 0.0);
    });

  std::uint64_t drained_values = 0;
  std::vector<Command> out;
  std::thread consumer([&] {
    for (int i = 0; i < 200; ++i) {
      out.clear();
      bus.drain(out);
      for (const Command& c : out) drained_values += c.values.size();
      std::this_thread::yield();
    }
  });
  for (auto& p : producers) p.join();
  consumer.join();

  out.clear();
  bus.drain(out);
  for (const Command& c : out) drained_values += c.values.size();

  const BusStats s = bus.stats();
  EXPECT_EQ(s.pushed, static_cast<std::uint64_t>(kProducers) * kPushes);
  EXPECT_EQ(s.values_accepted, drained_values);
  EXPECT_EQ(s.values_accepted + s.values_shed,
            static_cast<std::uint64_t>(kProducers) * kPushes * 2);
  EXPECT_EQ(bus.depth(), 0u);
  EXPECT_EQ(bus.queued_values(), 0u);
}

}  // namespace
}  // namespace remo::service
