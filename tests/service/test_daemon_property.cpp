// MonitoringDaemon properties (DESIGN.md §14, `ctest -L service`):
//   - 20 seeded command sequences × K ∈ {1, 4} shards: daemon mode is
//     bit-identical to batch mode — the same commands applied directly to
//     a FederatedMonitoringSystem at the same virtual clock values yield
//     the same collected pairs, status roll-up, and forest digraphs;
//   - a daemon killed (snapshotted) and restored mid-run continues
//     bit-identically (collected pairs, forests, counters), and
//     snapshot ∘ restore is the identity on images;
//   - backpressure is accounted, never silent: deferral under the
//     per-epoch value budget, shedding at the watermark, token-bucket
//     rate limits, all mirrored in DaemonStats / BusStats / `service.*`
//     metrics;
//   - the wire stream round-trips the per-epoch collected values.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sorted_vector.h"
#include "federation/federated_system.h"
#include "obs/metrics.h"
#include "service/daemon.h"
#include "service/wire.h"
#include "task/workload.h"

namespace remo::service {
namespace {

const CostModel kCost{10.0, 1.0};

PlannerOptions quick_options() {
  PlannerOptions o;
  o.partition_scheme = PartitionScheme::kRemo;
  o.max_candidates = 4;
  o.max_iterations = 8;
  return o;
}

SystemModel make_model(std::size_t n, std::size_t universe,
                       std::uint64_t seed) {
  SystemModel model(n, 300.0, kCost);
  model.set_collector_capacity(16.0 * static_cast<double>(n));
  Rng attr_rng{seed};
  model.assign_random_attributes(universe, 6, attr_rng);
  return model;
}

federation::FederationOptions fed_options(std::size_t shards,
                                          obs::Registry* registry) {
  federation::FederationOptions o;
  o.num_shards = shards;
  o.metrics = registry;
  o.shard.planner = quick_options();
  return o;
}

/// One epoch's scripted traffic, applied identically to the daemon (via
/// the bus) and to the batch mirror (directly).
struct EpochScript {
  std::vector<ValueUpdate> values;
  std::vector<MonitoringTask> modifies;  ///< id = live task id
  std::vector<TaskId> removes;
  std::vector<MonitoringTask> adds;  ///< id = 0 (assigned at apply)
};

EpochScript make_script(Rng& churn, std::vector<MonitoringTask>& tasks,
                        std::vector<TaskId>& ids, TaskId& next_id,
                        std::size_t num_nodes, std::size_t universe,
                        std::uint64_t epoch, WorkloadGenerator& gen) {
  EpochScript script;
  for (int i = 0; i < 4; ++i)
    script.values.push_back(ValueUpdate{
        static_cast<NodeId>(1 + churn.below(num_nodes)),
        static_cast<AttrId>(churn.below(universe)), churn.uniform(0.0, 100.0)});

  if (churn.bernoulli(0.6) && !tasks.empty()) {
    const std::size_t i = churn.below(tasks.size());
    MonitoringTask next = tasks[i];
    next.attrs.clear();
    next.attrs.push_back(static_cast<AttrId>(churn.below(universe)));
    next.attrs.push_back(static_cast<AttrId>(churn.below(universe)));
    sort_unique(next.attrs);
    tasks[i] = next;
    next.id = ids[i];
    script.modifies.push_back(std::move(next));
  }
  if (epoch % 4 == 0 && tasks.size() > 2) {
    const std::size_t i = churn.below(tasks.size());
    script.removes.push_back(ids[i]);
    tasks.erase(tasks.begin() + static_cast<std::ptrdiff_t>(i));
    ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(i));

    MonitoringTask fresh = gen.small_tasks(1).front();
    fresh.id = 0;
    script.adds.push_back(fresh);
    tasks.push_back(std::move(fresh));
    ids.push_back(next_id++);
  }
  return script;
}

TEST(DaemonProperty, BitIdenticalToBatchModeAcrossSeedsAndShards) {
  for (std::size_t shards : {1u, 4u}) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      const std::size_t n = 24 + (seed % 5) * 8;
      const std::size_t universe = 16 + (seed % 3) * 4;
      const SystemModel model = make_model(n, universe, seed);

      obs::Registry reg_daemon, reg_batch;
      DaemonOptions options;
      options.federation = fed_options(shards, nullptr);
      options.metrics = &reg_daemon;
      MonitoringDaemon daemon(model, options);
      federation::FederatedMonitoringSystem batch(
          model, fed_options(shards, &reg_batch));

      WorkloadGenerator gen(model, WorkloadConfig{.attr_universe = universe},
                            seed * 31);
      std::vector<MonitoringTask> tasks = gen.small_tasks(n / 4);
      std::vector<TaskId> ids;
      TaskId next_id = 1;
      for (const auto& t : tasks) {
        ASSERT_TRUE(admitted(daemon.submit_add_task(t)));
        MonitoringTask copy = t;
        copy.id = 0;
        const TaskId id = batch.add_task(std::move(copy));
        EXPECT_EQ(id, next_id);  // FIFO apply order ⇒ deterministic ids
        ids.push_back(id);
        ++next_id;
      }

      Rng churn{seed * 977};
      for (std::uint64_t e = 1; e <= 8; ++e) {
        const EpochScript script = make_script(churn, tasks, ids, next_id, n,
                                               universe, e, gen);
        // Daemon side: everything rides the bus, applied at the next tick.
        ASSERT_TRUE(admitted(daemon.submit_values(0, script.values)));
        for (const auto& m : script.modifies)
          ASSERT_TRUE(admitted(daemon.submit_modify_task(m)));
        for (TaskId id : script.removes)
          ASSERT_TRUE(admitted(daemon.submit_remove_task(id)));
        for (const auto& a : script.adds)
          ASSERT_TRUE(admitted(daemon.submit_add_task(a)));
        daemon.run_epoch();

        // Batch mirror: same commands, same order, same clock.
        for (const ValueUpdate& v : script.values)
          batch.on_delivery(NodeAttrPair{v.node, v.attr}, e);
        for (const auto& m : script.modifies)
          ASSERT_TRUE(batch.modify_task(m));
        for (TaskId id : script.removes) ASSERT_TRUE(batch.remove_task(id));
        for (const auto& a : script.adds)
          EXPECT_EQ(batch.add_task(a), ids.back());
        batch.end_epoch(e);

        const double now = static_cast<double>(e);
        EXPECT_EQ(daemon.last_collected(), batch.collected_pairs(now))
            << "K=" << shards << " seed=" << seed << " epoch=" << e;
        const auto ds = daemon.last_status();
        const auto bs = batch.status(now);
        EXPECT_EQ(ds.tasks, bs.tasks) << "K=" << shards << " seed=" << seed;
        EXPECT_EQ(ds.pairs, bs.pairs) << "K=" << shards << " seed=" << seed;
        EXPECT_EQ(ds.collected, bs.collected)
            << "K=" << shards << " seed=" << seed;
        EXPECT_EQ(ds.coverage, bs.coverage)
            << "K=" << shards << " seed=" << seed;
        EXPECT_EQ(ds.message_volume, bs.message_volume)
            << "K=" << shards << " seed=" << seed;
      }
      // The deployed forests themselves are byte-equal.
      EXPECT_EQ(daemon.system().export_dot(8.0), batch.export_dot(8.0))
          << "K=" << shards << " seed=" << seed;
      EXPECT_EQ(daemon.stats().values_applied, 8u * 4u);
    }
  }
}

TEST(DaemonSnapshot, RestoredDaemonContinuesBitIdentically) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::size_t n = 24;
    const std::size_t universe = 12;
    const SystemModel model = make_model(n, universe, seed);

    DaemonOptions options;
    options.federation = fed_options(2, nullptr);
    obs::Registry reg_a, reg_b;
    options.metrics = &reg_a;
    MonitoringDaemon a(model, options);
    a.bus().set_producer_limits(1, ProducerLimits{.rate = 100.0, .burst = 200.0});

    WorkloadGenerator gen_a(model, WorkloadConfig{.attr_universe = universe},
                            seed * 7);
    std::vector<MonitoringTask> tasks = gen_a.small_tasks(6);
    std::vector<TaskId> ids;
    TaskId next_id = 1;
    for (const auto& t : tasks) {
      ASSERT_TRUE(admitted(a.submit_add_task(t)));
      ids.push_back(next_id++);
    }

    Rng churn{seed * 977};
    WorkloadGenerator gen_fresh(model,
                                WorkloadConfig{.attr_universe = universe},
                                seed * 13);
    for (std::uint64_t e = 1; e <= 5; ++e) {
      const EpochScript s = make_script(churn, tasks, ids, next_id, n,
                                        universe, e, gen_fresh);
      ASSERT_TRUE(admitted(a.submit_values(1, s.values)));
      for (const auto& m : s.modifies)
        ASSERT_TRUE(admitted(a.submit_modify_task(m)));
      for (TaskId id : s.removes)
        ASSERT_TRUE(admitted(a.submit_remove_task(id)));
      for (const auto& t : s.adds) ASSERT_TRUE(admitted(a.submit_add_task(t)));
      a.run_epoch();
    }

    // The kSnapshot control path: handled after the epoch's drain + emit,
    // so the image is a clean epoch boundary.
    ASSERT_TRUE(admitted(a.submit_control(ControlKind::kSnapshot)));
    a.run_epoch();
    ASSERT_FALSE(a.last_snapshot().empty());
    EXPECT_EQ(a.stats().snapshots_taken, 1u);

    // Leave traffic *in flight* on the bus before capturing: the image
    // must carry the queued commands and the producer's token bucket, or
    // the restored daemon would diverge at its very next tick.
    ASSERT_TRUE(admitted(a.submit_values(
        1, {ValueUpdate{1, 0, 42.0}, ValueUpdate{2, 1, 7.0}})));
    const std::vector<std::uint8_t> image = a.snapshot();

    options.metrics = &reg_b;
    MonitoringDaemon b(model, options);
    b.restore(image);

    EXPECT_EQ(b.epoch(), a.epoch());
    EXPECT_EQ(b.now(), a.now());
    EXPECT_EQ(b.stats().values_applied, a.stats().values_applied);
    EXPECT_EQ(b.stats().tasks_added, a.stats().tasks_added);
    EXPECT_EQ(b.bus().queued_values(), 2u);  // the in-flight batch survived

    // Continue both with identical traffic; every observable stays equal.
    const std::uint64_t resume = a.epoch();
    for (std::uint64_t e = resume + 1; e <= resume + 6; ++e) {
      const EpochScript s = make_script(churn, tasks, ids, next_id, n,
                                        universe, e, gen_fresh);
      for (MonitoringDaemon* d : {&a, &b}) {
        ASSERT_TRUE(admitted(d->submit_values(1, s.values)));
        for (const auto& m : s.modifies)
          ASSERT_TRUE(admitted(d->submit_modify_task(m)));
        for (TaskId id : s.removes)
          ASSERT_TRUE(admitted(d->submit_remove_task(id)));
        for (const auto& t : s.adds)
          ASSERT_TRUE(admitted(d->submit_add_task(t)));
      }
      a.run_epoch();
      b.run_epoch();
      EXPECT_EQ(a.last_collected(), b.last_collected())
          << "seed=" << seed << " epoch=" << e;
      EXPECT_EQ(a.last_status().message_volume, b.last_status().message_volume)
          << "seed=" << seed << " epoch=" << e;
      EXPECT_EQ(a.stats().values_applied, b.stats().values_applied);
      EXPECT_EQ(a.stats().tasks_modified, b.stats().tasks_modified);
    }
    EXPECT_EQ(a.system().export_dot(a.now()), b.system().export_dot(b.now()))
        << "seed=" << seed;
    // The strongest equivalence: both daemons produce byte-identical
    // snapshot images after the shared continuation.
    // Every deterministic piece of planner state converged. (The one
    // field left out is the replan-cost EWMA: it averages *measured wall
    // time* of past replans — the deliberate nondeterminism of the Sec
    // 4.2 cost model — so two processes never agree on it byte-for-byte.)
    for (std::size_t k = 0; k < a.system().num_shards(); ++k) {
      auto pa = a.system().shard(k).planner_state(a.now());
      auto pb = b.system().shard(k).planner_state(b.now());
      EXPECT_TRUE(pa.adjustment_stamps == pb.adjustment_stamps)
          << "seed=" << seed << " shard " << k;
      EXPECT_EQ(pa.init_time, pb.init_time) << "shard " << k;
      EXPECT_EQ(pa.constraint_signature, pb.constraint_signature)
          << "shard " << k;
      const auto ca = a.system().shard(k).adaptation_counters();
      const auto cb = b.system().shard(k).adaptation_counters();
      EXPECT_EQ(ca.adaptations, cb.adaptations) << "shard " << k;
      EXPECT_EQ(ca.adaptation_messages, cb.adaptation_messages)
          << "shard " << k;
      EXPECT_EQ(ca.delta_applies, cb.delta_applies) << "shard " << k;
    }
    // snapshot ∘ restore is the identity on images: re-capturing right
    // after a restore reproduces the image byte-for-byte.
    const std::vector<std::uint8_t> final_image = a.snapshot();
    b.restore(final_image);
    EXPECT_EQ(b.snapshot(), final_image) << "seed=" << seed;
  }
}

TEST(DaemonBackpressure, DeferralUnderTheValueBudgetIsAccounted) {
  const SystemModel model = make_model(16, 8, 3);
  DaemonOptions options;
  options.federation = fed_options(1, nullptr);
  options.max_values_per_epoch = 2;
  obs::Registry registry;
  options.metrics = &registry;
  MonitoringDaemon daemon(model, options);

  MonitoringTask task;
  task.nodes = {1, 2, 3};
  task.attrs = model.observable(1);
  ASSERT_TRUE(admitted(daemon.submit_add_task(task)));
  daemon.run_epoch();

  // Five single-value commands: the budget admits 2 per epoch, the rest
  // wait on the bus — deferral, not shedding.
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(admitted(daemon.submit_values(
        0, {ValueUpdate{static_cast<NodeId>(1 + i % 3), 0,
                        static_cast<double>(i)}})));
  daemon.run_epoch();
  EXPECT_EQ(daemon.stats().values_applied, 2u);
  EXPECT_EQ(daemon.bus().queued_values(), 3u);
  daemon.run_epoch();
  EXPECT_EQ(daemon.stats().values_applied, 4u);
  daemon.run_epoch();
  EXPECT_EQ(daemon.stats().values_applied, 5u);
  EXPECT_EQ(daemon.bus().queued_values(), 0u);
  // Σ queued-at-epoch-end: 3 after the first tick, 1 after the second.
  EXPECT_EQ(daemon.stats().value_epochs_deferred, 4u);
  EXPECT_EQ(daemon.bus().stats().values_shed, 0u);

  // The `service.*` mirrors saw the same story.
  if (obs::enabled()) {
    const auto snap = registry.snapshot();
    ASSERT_TRUE(snap.counters.contains("service.values_applied"));
    EXPECT_EQ(snap.counters.at("service.values_applied"), 5u);
    ASSERT_TRUE(
        snap.histograms.contains("service.ingest_to_collected_seconds"));
  }
}

TEST(DaemonBackpressure, SheddingAndRateLimitsSurfaceToProducers) {
  const SystemModel model = make_model(16, 8, 3);
  DaemonOptions options;
  options.federation = fed_options(1, nullptr);
  options.bus = BusOptions{.capacity = 4, .shed_watermark = 2};
  obs::Registry registry;
  options.metrics = &registry;
  MonitoringDaemon daemon(model, options);

  // Two batches fill the watermark; the third is shed, visible to the
  // producer and in the stats, and never applied.
  EXPECT_TRUE(admitted(daemon.submit_values(0, {ValueUpdate{1, 0, 1.0}})));
  EXPECT_TRUE(admitted(daemon.submit_values(0, {ValueUpdate{2, 0, 2.0}})));
  EXPECT_EQ(daemon.submit_values(0, {ValueUpdate{3, 0, 3.0}}),
            Admission::kShedBackpressure);
  // Churn still flows above the watermark.
  MonitoringTask task;
  task.nodes = {1, 2};
  task.attrs = model.observable(1);
  EXPECT_TRUE(admitted(daemon.submit_add_task(task)));

  daemon.run_epoch();
  EXPECT_EQ(daemon.stats().values_applied, 2u);
  EXPECT_EQ(daemon.value_of(NodeAttrPair{3, 0}), 0.0);
  EXPECT_EQ(daemon.bus().stats().shed_backpressure, 1u);
  EXPECT_EQ(daemon.bus().stats().values_shed, 1u);

  // Per-producer token bucket, on the daemon's virtual clock.
  daemon.bus().set_producer_limits(9, ProducerLimits{.rate = 1.0, .burst = 1.0});
  EXPECT_TRUE(admitted(daemon.submit_values(9, {ValueUpdate{1, 1, 1.0}})));
  EXPECT_EQ(daemon.submit_values(9, {ValueUpdate{1, 2, 2.0}}),
            Admission::kShedRateLimit);
  daemon.run_epoch();  // advances the virtual clock by one epoch
  EXPECT_TRUE(admitted(daemon.submit_values(9, {ValueUpdate{1, 2, 2.0}})));

  // The `service.values_shed` mirror tracks the bus total with set
  // semantics: 1 backpressure-shed value + 1 rate-limited value by the
  // time the second epoch emitted.
  if (obs::enabled()) {
    const auto snap = registry.snapshot();
    ASSERT_TRUE(snap.counters.contains("service.values_shed"));
    EXPECT_EQ(snap.counters.at("service.values_shed"), 2u);
  }

  // Both exporters carry the admission story.
  const std::string json = daemon.summary_json();
  EXPECT_NE(json.find("\"shed_backpressure\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shed_rate_limit\":1"), std::string::npos) << json;
  const std::string series = daemon.time_series_text();
  EXPECT_EQ(series.compare(0, 6, "#epoch"), 0);
}

TEST(DaemonWire, StreamRoundTripsCollectedValues) {
  const SystemModel model = make_model(16, 8, 5);
  DaemonOptions options;
  options.federation = fed_options(1, nullptr);
  std::vector<std::uint8_t> stream;
  options.sink = [&stream](const std::uint8_t* data, std::size_t size) {
    stream.insert(stream.end(), data, data + size);
  };
  obs::Registry registry;
  options.metrics = &registry;
  MonitoringDaemon daemon(model, options);

  MonitoringTask task;
  task.nodes = model.monitoring_nodes();
  task.attrs = model.observable(1);
  ASSERT_TRUE(admitted(daemon.submit_add_task(task)));
  for (std::uint64_t e = 1; e <= 3; ++e) {
    ASSERT_TRUE(admitted(daemon.submit_values(
        0, {ValueUpdate{1, task.attrs.front(), static_cast<double>(e)}})));
    daemon.run_epoch();
  }

  wire::Reader r(stream);
  ASSERT_TRUE(wire::read_stream_header(r));
  wire::Record rec;
  std::uint64_t records = 0;
  wire::EpochPairsRecord last;
  while (wire::next_record(r, rec)) {
    ASSERT_EQ(rec.type, wire::RecordType::kEpochPairs);
    ASSERT_TRUE(wire::decode_epoch_pairs(rec.payload, rec.size, last));
    ++records;
    EXPECT_EQ(last.epoch, records);
  }
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(records, 3u);
  EXPECT_EQ(last.values_applied, 1u);
  ASSERT_EQ(last.pairs.size(), daemon.last_collected().size());
  for (std::size_t i = 0; i < last.pairs.size(); ++i) {
    const NodeAttrPair p{last.pairs[i].node, last.pairs[i].attr};
    EXPECT_EQ(p, daemon.last_collected()[i]);
    EXPECT_EQ(last.pairs[i].value, daemon.value_of(p));
  }
  // The freshest ingested value for (1, attr) made it to the wire.
  EXPECT_EQ(daemon.value_of(NodeAttrPair{1, task.attrs.front()}), 3.0);
  EXPECT_EQ(daemon.stats().pairs_emitted,
            static_cast<std::uint64_t>(daemon.last_collected().size()) * 3u);
}

}  // namespace
}  // namespace remo::service
