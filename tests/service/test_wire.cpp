// Wire-format unit tests (DESIGN.md §14, `ctest -L service`): primitive
// round trips, the pinned little-endian byte layout, the sticky-failure
// reader model on truncated/corrupt input, record framing, the epoch-pairs
// record, and the resource_monitor-style text exporters.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "service/wire.h"

namespace remo::service::wire {
namespace {

TEST(Wire, PrimitiveRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-2.5);
  w.str("remo");
  const std::uint8_t raw[3] = {1, 2, 3};
  w.bytes(raw, sizeof raw);

  Reader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f64(), -2.5);
  EXPECT_EQ(r.str(), "remo");
  std::uint8_t out[3] = {};
  r.bytes(out, sizeof out);
  EXPECT_EQ(out[2], 3);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(Wire, LayoutIsLittleEndianByteByByte) {
  Writer w;
  w.u32(0x11223344u);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.buffer()[0], 0x44);
  EXPECT_EQ(w.buffer()[1], 0x33);
  EXPECT_EQ(w.buffer()[2], 0x22);
  EXPECT_EQ(w.buffer()[3], 0x11);

  // The magic spells "REMO" in stream order.
  Writer h;
  begin_stream(h);
  ASSERT_GE(h.size(), 4u);
  EXPECT_EQ(h.buffer()[0], 'R');
  EXPECT_EQ(h.buffer()[1], 'E');
  EXPECT_EQ(h.buffer()[2], 'M');
  EXPECT_EQ(h.buffer()[3], 'O');
}

TEST(Wire, TruncationFlipsTheStickyFailureFlag) {
  Writer w;
  w.u16(7);
  Reader r(w.buffer());
  EXPECT_EQ(r.u32(), 0u);  // needs 4 bytes, only 2 exist
  EXPECT_FALSE(r.ok());
  // Every later read stays zero — no need to guard each field.
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_EQ(r.f64(), 0.0);
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.skip(1), nullptr);
}

TEST(Wire, StreamHeaderVerifiesMagicAndVersion) {
  Writer w;
  begin_stream(w);
  Reader ok(w.buffer());
  EXPECT_TRUE(read_stream_header(ok));
  EXPECT_TRUE(ok.ok());

  std::vector<std::uint8_t> corrupt = w.buffer();
  corrupt[0] = 'X';
  Reader bad(corrupt);
  EXPECT_FALSE(read_stream_header(bad));

  // A future version is rejected, not misparsed.
  Writer w2;
  w2.u32(kMagic);
  w2.u16(kVersion + 1);
  Reader future(w2.buffer());
  EXPECT_FALSE(read_stream_header(future));
}

TEST(Wire, RecordFramingIteratesAndStopsCleanly) {
  Writer w;
  begin_stream(w);
  append_record(w, RecordType::kEpochPairs, {1, 2, 3});
  append_record(w, RecordType::kStatus, {});

  Reader r(w.buffer());
  ASSERT_TRUE(read_stream_header(r));
  Record rec;
  ASSERT_TRUE(next_record(r, rec));
  EXPECT_EQ(rec.type, RecordType::kEpochPairs);
  ASSERT_EQ(rec.size, 3u);
  EXPECT_EQ(rec.payload[2], 3);
  ASSERT_TRUE(next_record(r, rec));
  EXPECT_EQ(rec.type, RecordType::kStatus);
  EXPECT_EQ(rec.size, 0u);
  // Clean end of stream: false with the reader still ok.
  EXPECT_FALSE(next_record(r, rec));
  EXPECT_TRUE(r.ok());

  // A frame whose declared length overruns the buffer is malformed:
  // false with the reader failed.
  Writer t;
  t.u8(static_cast<std::uint8_t>(RecordType::kEpochPairs));
  t.u32(100);
  Reader bad(t.buffer());
  EXPECT_FALSE(next_record(bad, rec));
  EXPECT_FALSE(bad.ok());
}

TEST(Wire, EpochPairsRecordRoundTrips) {
  EpochPairsRecord rec;
  rec.epoch = 42;
  rec.values_applied = 7;
  rec.pairs = {WirePair{1, 0, 3.5}, WirePair{2, 4, -1.0}};

  const std::vector<std::uint8_t> payload = encode_epoch_pairs(rec);
  EpochPairsRecord out;
  ASSERT_TRUE(decode_epoch_pairs(payload.data(), payload.size(), out));
  EXPECT_TRUE(out == rec);

  // Truncated and oversized payloads are both rejected.
  EXPECT_FALSE(decode_epoch_pairs(payload.data(), payload.size() - 1, out));
  std::vector<std::uint8_t> padded = payload;
  padded.push_back(0);
  EXPECT_FALSE(decode_epoch_pairs(padded.data(), padded.size(), out));
}

TEST(Wire, SeriesTextMatchesTheHeaderColumns) {
  const std::string header = series_header();
  EXPECT_EQ(header.front(), '#');
  EXPECT_EQ(header.back(), '\n');

  SeriesSample s;
  s.epoch = 3;
  s.values_applied = 10;
  s.pairs_collected = 8;
  s.coverage = 0.5;
  s.message_volume = 123.0;
  s.queue_depth = 2;
  s.values_shed = 1;
  const std::string line = series_line(s);
  EXPECT_EQ(line.back(), '\n');

  // Column count in the header matches the sample line.
  const auto columns = [](const std::string& text) {
    std::size_t n = 0;
    bool in_word = false;
    for (char c : text) {
      const bool space = c == ' ' || c == '\t' || c == '\n';
      if (!space && !in_word) ++n;
      in_word = !space;
    }
    return n;
  };
  EXPECT_EQ(columns(header.substr(1)), columns(line));
  EXPECT_NE(line.find("3 "), std::string::npos);
}

TEST(Wire, JsonEscapeHandlesQuotesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
}

}  // namespace
}  // namespace remo::service::wire
