// Snapshot/restore of the federated monitoring system (DESIGN.md §14,
// `ctest -L service`): a restored system is bit-identical to the captured
// one — same collected pairs, same status roll-up, byte-equal forest
// digraphs — and *continues* bit-identically under further churn. Plus the
// generation-counter memoization contract both status() paths ride on.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sorted_vector.h"
#include "core/monitoring_system.h"
#include "federation/federated_system.h"
#include "obs/metrics.h"
#include "service/snapshot.h"
#include "task/workload.h"

namespace remo::service {
namespace {

const CostModel kCost{10.0, 1.0};

PlannerOptions quick_options() {
  PlannerOptions o;
  o.partition_scheme = PartitionScheme::kRemo;
  o.max_candidates = 4;
  o.max_iterations = 8;
  return o;
}

SystemModel make_model(std::size_t n, std::size_t universe,
                       std::uint64_t seed) {
  SystemModel model(n, 300.0, kCost);
  model.set_collector_capacity(16.0 * static_cast<double>(n));
  Rng attr_rng{seed};
  model.assign_random_attributes(universe, 6, attr_rng);
  return model;
}

federation::FederationOptions fed_options(std::size_t shards,
                                          obs::Registry* registry) {
  federation::FederationOptions o;
  o.num_shards = shards;
  o.metrics = registry;
  o.shard.planner = quick_options();
  return o;
}

void expect_same_state(federation::FederatedMonitoringSystem& a,
                       federation::FederatedMonitoringSystem& b, double now,
                       const std::string& context) {
  EXPECT_EQ(a.collected_pairs(now), b.collected_pairs(now)) << context;
  EXPECT_EQ(a.export_dot(now), b.export_dot(now)) << context;
  const auto sa = a.status(now), sb = b.status(now);
  EXPECT_EQ(sa.tasks, sb.tasks) << context;
  EXPECT_EQ(sa.pairs, sb.pairs) << context;
  EXPECT_EQ(sa.collected, sb.collected) << context;
  EXPECT_EQ(sa.coverage, sb.coverage) << context;
  EXPECT_EQ(sa.trees, sb.trees) << context;
  EXPECT_EQ(sa.message_volume, sb.message_volume) << context;
}

TEST(Snapshot, RestoredFederationContinuesBitIdentically) {
  for (std::size_t shards : {1u, 2u}) {
    const std::size_t universe = 12;
    const SystemModel model = make_model(24, universe, 11);

    obs::Registry reg_a;
    federation::FederatedMonitoringSystem a(model, fed_options(shards, &reg_a));

    WorkloadGenerator gen(model, WorkloadConfig{.attr_universe = universe}, 17);
    std::vector<MonitoringTask> tasks = gen.small_tasks(8);
    std::vector<TaskId> ids;
    for (const auto& t : tasks) ids.push_back(a.add_task(t));

    // Warm the planner and churn a little so the throttle bookkeeping
    // (adjustment stamps, replan-cost EWMA) is non-trivial at capture.
    Rng churn{23};
    for (std::uint64_t e = 1; e <= 4; ++e) {
      const std::size_t i = churn.below(tasks.size());
      MonitoringTask next = tasks[i];
      next.attrs.clear();
      next.attrs.push_back(static_cast<AttrId>(churn.below(universe)));
      next.attrs.push_back(static_cast<AttrId>(churn.below(universe)));
      sort_unique(next.attrs);
      tasks[i] = next;
      next.id = ids[i];
      ASSERT_TRUE(a.modify_task(next));
      a.status(static_cast<double>(e));
    }

    const double capture_time = 5.0;
    const std::vector<std::uint8_t> image = capture(a, capture_time);

    obs::Registry reg_b;
    federation::FederatedMonitoringSystem b(model, fed_options(shards, &reg_b));
    ASSERT_TRUE(restore(image, b)) << "K=" << shards;

    EXPECT_EQ(a.next_task_id(), b.next_task_id());
    EXPECT_EQ(a.num_tasks(), b.num_tasks());
    expect_same_state(a, b, capture_time,
                      "after restore, K=" + std::to_string(shards));

    // Continuation: identical churn on both sides stays byte-equal —
    // including the adaptive throttle's apply-vs-rebuild decisions, which
    // depend on the restored stamps and cost EWMA.
    for (std::uint64_t e = 6; e <= 12; ++e) {
      const double now = static_cast<double>(e);
      const std::size_t i = churn.below(tasks.size());
      MonitoringTask next = tasks[i];
      next.attrs.clear();
      next.attrs.push_back(static_cast<AttrId>(churn.below(universe)));
      sort_unique(next.attrs);
      tasks[i] = next;
      next.id = ids[i];
      ASSERT_TRUE(a.modify_task(next));
      ASSERT_TRUE(b.modify_task(next));
      expect_same_state(a, b, now,
                        "continuation epoch " + std::to_string(e) +
                            ", K=" + std::to_string(shards));
    }

    // New tasks keep getting the same ids on both sides.
    MonitoringTask fresh = gen.small_tasks(1).front();
    EXPECT_EQ(a.add_task(fresh), b.add_task(fresh));
    expect_same_state(a, b, 13.0, "after post-restore add");
  }
}

TEST(Snapshot, MalformedImagesAreRejectedNotMisparsed) {
  const SystemModel model = make_model(16, 10, 3);
  obs::Registry reg_a, reg_b;
  federation::FederatedMonitoringSystem a(model, fed_options(1, &reg_a));
  WorkloadGenerator gen(model, WorkloadConfig{.attr_universe = 10}, 5);
  for (auto& t : gen.small_tasks(4)) a.add_task(std::move(t));
  a.status(1.0);
  const std::vector<std::uint8_t> image = capture(a, 1.0);

  federation::FederatedMonitoringSystem b(model, fed_options(1, &reg_b));
  // Wrong magic.
  std::vector<std::uint8_t> bad = image;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(restore(bad, b));
  // Record frame truncated before its declared payload length.
  std::vector<std::uint8_t> truncated(image.begin(), image.begin() + 8);
  EXPECT_FALSE(restore(truncated, b));
  // Not a snapshot record.
  wire::Writer w;
  wire::begin_stream(w);
  wire::append_record(w, wire::RecordType::kStatus, {});
  EXPECT_FALSE(restore(w.buffer(), b));
  // The intact image still restores (b was left untouched by the failures).
  EXPECT_TRUE(restore(image, b));
}

// ---------------------------------------------------------------------------
// Generation-counter memoization (the status() recompute fix): readers see
// a stable counter across pure reads and a strictly advancing one across
// mutations — the invariant both status() caches and the daemon's
// collected-pairs cache rely on.

TEST(Generation, CoreCounterAdvancesOnlyOnMutation) {
  const SystemModel model = make_model(16, 10, 7);
  MonitoringSystemOptions options;
  options.planner = quick_options();
  MonitoringSystem sys(model, options);

  WorkloadGenerator gen(model, WorkloadConfig{.attr_universe = 10}, 9);
  std::vector<MonitoringTask> tasks = gen.small_tasks(4);
  std::vector<TaskId> ids;
  for (const auto& t : tasks) ids.push_back(sys.add_task(t));

  const auto s1 = sys.status(1.0);
  const std::uint64_t gen1 = sys.generation();
  // Pure reads: same answer, same generation — the memo is serving them.
  const auto s2 = sys.status(1.0);
  EXPECT_EQ(sys.generation(), gen1);
  EXPECT_EQ(s1.pairs, s2.pairs);
  EXPECT_EQ(s1.coverage, s2.coverage);
  EXPECT_EQ(s1.message_volume, s2.message_volume);

  MonitoringTask next = tasks[0];
  next.id = ids[0];
  next.attrs.assign(1, static_cast<AttrId>(3));
  ASSERT_TRUE(sys.modify_task(next));
  sys.status(2.0);
  EXPECT_GT(sys.generation(), gen1);
}

TEST(Generation, FederationCounterSpansRoutesAndShards) {
  const SystemModel model = make_model(24, 10, 7);
  obs::Registry registry;
  federation::FederatedMonitoringSystem fed(model, fed_options(2, &registry));

  WorkloadGenerator gen(model, WorkloadConfig{.attr_universe = 10}, 9);
  std::vector<MonitoringTask> tasks = gen.small_tasks(6);
  std::vector<TaskId> ids;
  for (const auto& t : tasks) ids.push_back(fed.add_task(t));

  fed.status(1.0);
  const std::uint64_t gen1 = fed.generation();
  fed.status(1.0);
  fed.collected_pairs(1.0);
  EXPECT_EQ(fed.generation(), gen1) << "reads must not advance the counter";

  ASSERT_TRUE(fed.remove_task(ids.back()));
  fed.status(2.0);
  EXPECT_GT(fed.generation(), gen1);
}

}  // namespace
}  // namespace remo::service
