#include "adapt/adaptive_planner.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "task/task_manager.h"
#include "task/workload.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

struct Fixture {
  SystemModel system;
  TaskManager manager;
  WorkloadGenerator gen;
  Rng rng{17};

  explicit Fixture(std::size_t nodes = 60, std::size_t universe = 24,
                   std::size_t per_node = 8, Capacity cap = 120.0)
      : system(make_system(nodes, universe, per_node, cap)),
        manager(&system),
        gen(system, WorkloadConfig{.attr_universe = universe}, 23) {
    for (auto& t : gen.small_tasks(25)) manager.add_task(std::move(t));
  }

  static SystemModel make_system(std::size_t nodes, std::size_t universe,
                                 std::size_t per_node, Capacity cap) {
    SystemModel s(nodes, cap, kCost);
    s.set_collector_capacity(cap * 4);
    Rng rng{3};
    s.assign_random_attributes(universe, per_node, rng);
    return s;
  }

  PairSet pairs() { return manager.dedup(system.num_vertices()); }

  PairSet mutate(std::size_t universe = 24) {
    apply_update_batch(manager, system, universe, rng, 0.05, 0.5);
    return pairs();
  }
};

PlannerOptions quick_options() {
  PlannerOptions o;
  o.max_candidates = 16;
  o.max_iterations = 64;
  return o;
}

TEST(AdaptivePlanner, InitializeProducesValidTopology) {
  Fixture f;
  for (auto scheme : {AdaptScheme::kDirectApply, AdaptScheme::kRebuild,
                      AdaptScheme::kNoThrottle, AdaptScheme::kAdaptive}) {
    AdaptivePlanner ap(f.system, quick_options(), scheme);
    const auto report = ap.initialize(f.pairs(), 0.0);
    EXPECT_TRUE(ap.topology().validate(f.system)) << to_string(scheme);
    EXPECT_EQ(report.adaptation_messages, ap.topology().edges().size());
    EXPECT_GT(report.score.collected, 0u);
  }
}

TEST(AdaptivePlanner, UpdateKeepsTopologyValidAcrossBatches) {
  Fixture f;
  for (auto scheme : {AdaptScheme::kDirectApply, AdaptScheme::kRebuild,
                      AdaptScheme::kNoThrottle, AdaptScheme::kAdaptive}) {
    Fixture g;  // fresh tasks per scheme so batches are comparable
    AdaptivePlanner ap(g.system, quick_options(), scheme);
    ap.initialize(g.pairs(), 0.0);
    for (int batch = 1; batch <= 5; ++batch) {
      const auto report = ap.apply_update(g.mutate(), batch * 10.0);
      EXPECT_TRUE(ap.topology().validate(g.system))
          << to_string(scheme) << " batch " << batch;
      EXPECT_LE(report.score.collected, ap.topology().total_pairs());
    }
  }
}

TEST(AdaptivePlanner, NoChangeUpdateIsFree) {
  Fixture f;
  AdaptivePlanner ap(f.system, quick_options(), AdaptScheme::kDirectApply);
  ap.initialize(f.pairs(), 0.0);
  const auto report = ap.apply_update(f.pairs(), 1.0);  // identical pair set
  EXPECT_EQ(report.adaptation_messages, 0u);
}

TEST(AdaptivePlanner, DirectApplyTracksNewAttribute) {
  Fixture f;
  AdaptivePlanner ap(f.system, quick_options(), AdaptScheme::kDirectApply);
  ap.initialize(f.pairs(), 0.0);
  // Add a brand-new attribute on a few nodes.
  PairSet p = f.pairs();
  SystemModel& sys = f.system;
  for (NodeId n = 1; n <= 3; ++n) {
    auto attrs = sys.observable(n);
    attrs.push_back(99);
    sys.set_observable(n, attrs);
    p.add(n, 99);
  }
  ap.apply_update(p, 5.0);
  const Partition part = ap.topology().partition();
  EXPECT_TRUE(part.contains(99));
  // D-A gives new attributes their own singleton tree.
  EXPECT_EQ(part.set(part.set_of(99)), (std::vector<AttrId>{99}));
  EXPECT_TRUE(ap.topology().validate(f.system));
}

TEST(AdaptivePlanner, RemovedAttributeDisappears) {
  Fixture f;
  AdaptivePlanner ap(f.system, quick_options(), AdaptScheme::kDirectApply);
  ap.initialize(f.pairs(), 0.0);
  PairSet p = f.pairs();
  const AttrId victim = p.attribute_universe().front();
  for (NodeId n : p.nodes_with(victim)) p.remove(n, victim);
  ap.apply_update(p, 5.0);
  EXPECT_FALSE(ap.topology().partition().contains(victim));
  EXPECT_TRUE(ap.topology().validate(f.system));
}

TEST(AdaptivePlanner, NoThrottleOptimizesAtLeastAsWellAsDirectApply) {
  Fixture fa, fb;
  AdaptivePlanner da(fa.system, quick_options(), AdaptScheme::kDirectApply);
  AdaptivePlanner nt(fb.system, quick_options(), AdaptScheme::kNoThrottle);
  da.initialize(fa.pairs(), 0.0);
  nt.initialize(fb.pairs(), 0.0);
  std::size_t nt_wins = 0, da_wins = 0;
  for (int batch = 1; batch <= 6; ++batch) {
    const auto ra = da.apply_update(fa.mutate(), batch * 10.0);
    const auto rb = nt.apply_update(fb.mutate(), batch * 10.0);
    // Same seeds => same task streams; NO-THROTTLE may only do better or
    // equal on the lexicographic objective.
    if (rb.score.collected > ra.score.collected ||
        (rb.score.collected == ra.score.collected && rb.score.cost < ra.score.cost))
      ++nt_wins;
    if (ra.score.collected > rb.score.collected) ++da_wins;
  }
  EXPECT_EQ(da_wins, 0u);
  (void)nt_wins;  // informational: NO-THROTTLE usually wins at least once
}

TEST(AdaptivePlanner, ThrottleSuppressesOperationsUnderFastChurn) {
  // With updates arriving at the same timestamp (zero window), every
  // operation's threshold is ~0 and ADAPTIVE must throttle instead of
  // optimizing.
  Fixture f;
  AdaptivePlanner ap(f.system, quick_options(), AdaptScheme::kAdaptive);
  ap.initialize(f.pairs(), 0.0);
  std::size_t applied = 0;
  for (int batch = 1; batch <= 4; ++batch) {
    const auto r = ap.apply_update(f.mutate(), 0.0);  // time never advances
    applied += r.operations_applied;
  }
  EXPECT_EQ(applied, 0u);
}

TEST(AdaptivePlanner, ThrottleAllowsOperationsWithWideWindows) {
  Fixture f;
  AdaptivePlanner ap(f.system, quick_options(), AdaptScheme::kAdaptive);
  ap.initialize(f.pairs(), 0.0);
  std::size_t applied = 0;
  for (int batch = 1; batch <= 6; ++batch)
    applied += ap.apply_update(f.mutate(), batch * 1000.0).operations_applied;
  EXPECT_GT(applied, 0u);
}

TEST(AdaptivePlanner, RebuildReportsHighestAdaptationCost) {
  // REBUILD re-plans from scratch, so its topology diverges most from the
  // deployed one; DIRECT-APPLY touches only affected trees.
  Fixture fa, fb;
  AdaptivePlanner da(fa.system, quick_options(), AdaptScheme::kDirectApply);
  AdaptivePlanner rb(fb.system, quick_options(), AdaptScheme::kRebuild);
  da.initialize(fa.pairs(), 0.0);
  rb.initialize(fb.pairs(), 0.0);
  std::size_t da_msgs = 0, rb_msgs = 0;
  for (int batch = 1; batch <= 4; ++batch) {
    da_msgs += da.apply_update(fa.mutate(), batch * 10.0).adaptation_messages;
    rb_msgs += rb.apply_update(fb.mutate(), batch * 10.0).adaptation_messages;
  }
  EXPECT_GE(rb_msgs, da_msgs);
}

TEST(AdaptivePlanner, SchemeNames) {
  EXPECT_STREQ(to_string(AdaptScheme::kDirectApply), "DIRECT-APPLY");
  EXPECT_STREQ(to_string(AdaptScheme::kRebuild), "REBUILD");
  EXPECT_STREQ(to_string(AdaptScheme::kNoThrottle), "NO-THROTTLE");
  EXPECT_STREQ(to_string(AdaptScheme::kAdaptive), "ADAPTIVE");
}

}  // namespace
}  // namespace remo
