// Tree repair around suspected-down nodes: orphaned subtrees re-home at
// the shallowest feasible healthy vertex, suspects are parked on probe
// links, and infeasible members are dropped (pairs lost until replan).
#include "adapt/repair.h"

#include <gtest/gtest.h>

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

struct Fixture {
  SystemModel system;

  explicit Fixture(std::size_t n, Capacity cap = 1e6)
      : system(n, cap, kCost) {
    system.set_collector_capacity(1e9);
    for (NodeId id = 1; id <= n; ++id) system.set_observable(id, {0});
  }

  /// Chain 0 <- 1 <- 2 <- ... <- n, one local value (attr 0) per member.
  Topology chain(std::size_t n) {
    MonitoringTree tree({{0, FunnelSpec{AggType::kHolistic}, 1.0}},
                        /*collector_avail=*/1e9, kCost);
    for (NodeId id = 1; id <= n; ++id)
      tree.attach(BuildItem{id, {1}, 1e9}, id == 1 ? kCollectorId : id - 1);
    Topology topo;
    const std::size_t pairs = tree.collected_pairs();
    topo.mutable_entries().push_back(
        TreeEntry{{0}, std::move(tree), pairs, pairs});
    topo.set_total_pairs(pairs);
    return topo;
  }
};

TEST(Repair, ReattachesOrphansAndParksSuspect) {
  Fixture f(4);
  auto topo = f.chain(4);  // 0 <- 1 <- 2 <- 3 <- 4
  const auto res = repair_topology(topo, f.system, {2});
  const auto& tree = res.topo.entries()[0].tree;
  EXPECT_TRUE(tree.validate());
  // Everyone survives: 3 and 4 are healthy orphans, 2 is parked.
  EXPECT_EQ(tree.size(), 4u);
  // Ample capacity: the shallowest feasible target is the collector.
  EXPECT_EQ(tree.parent(3), kCollectorId);
  EXPECT_EQ(tree.parent(2), kCollectorId);
  EXPECT_EQ(tree.parent(1), kCollectorId);  // untouched
  EXPECT_EQ(res.outcome.trees_touched, 1u);
  EXPECT_EQ(res.outcome.orphans_reattached, 2u);
  EXPECT_EQ(res.outcome.suspects_parked, 1u);
  EXPECT_EQ(res.outcome.members_dropped, 0u);
  EXPECT_EQ(res.outcome.pairs_dropped, 0u);
  // Links changed for 2, 3 and 4; the repair "paid" one message per end
  // of each rewired link.
  EXPECT_GT(res.outcome.repair_messages, 0u);
  EXPECT_EQ(res.outcome.repair_messages, edge_diff(topo, res.topo));
  // Input is untouched.
  EXPECT_EQ(topo.entries()[0].tree.parent(3), 2u);
  // collected_pairs stays consistent with the rebuilt tree.
  EXPECT_EQ(res.topo.entries()[0].collected_pairs, 4u);
}

TEST(Repair, SuspectsNeverBecomeAttachTargets) {
  Fixture f(5);
  auto topo = f.chain(5);
  // 2 and 3 both suspected: orphans 4, 5 must not land under either.
  const auto res = repair_topology(topo, f.system, {2, 3});
  const auto& tree = res.topo.entries()[0].tree;
  EXPECT_TRUE(tree.validate());
  EXPECT_EQ(tree.size(), 5u);
  for (NodeId orphan : {NodeId{4}, NodeId{5}}) {
    EXPECT_NE(tree.parent(orphan), 2u);
    EXPECT_NE(tree.parent(orphan), 3u);
  }
  EXPECT_EQ(res.outcome.orphans_reattached, 2u);
  EXPECT_EQ(res.outcome.suspects_parked, 2u);
}

TEST(Repair, DropsMembersWithNoFeasibleHome) {
  // Node 2's own capacity cannot even cover its send cost (C + a·1 = 11):
  // no attach point is feasible anywhere, so it is dropped and its pair
  // is counted lost.
  Fixture f(2);
  f.system.set_capacity(2, 10.0);
  auto topo = f.chain(2);
  const auto res = repair_topology(topo, f.system, {2});
  const auto& tree = res.topo.entries()[0].tree;
  EXPECT_TRUE(tree.validate());
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_FALSE(tree.contains(2));
  EXPECT_EQ(res.outcome.members_dropped, 1u);
  EXPECT_EQ(res.outcome.pairs_dropped, 1u);
  EXPECT_EQ(res.topo.entries()[0].collected_pairs, 1u);
}

TEST(Repair, NoSuspectsIsANoOp) {
  Fixture f(3);
  auto topo = f.chain(3);
  const auto res = repair_topology(topo, f.system, {});
  EXPECT_EQ(res.outcome.trees_touched, 0u);
  EXPECT_EQ(res.outcome.repair_messages, 0u);
  EXPECT_EQ(edge_diff(topo, res.topo), 0u);
}

TEST(Repair, UntouchedTreesStayIdentical) {
  // Two disjoint trees; the suspect lives only in the first. The second
  // tree's links must not move.
  Fixture f(6);
  MonitoringTree t0({{0, FunnelSpec{AggType::kHolistic}, 1.0}}, 1e9, kCost);
  t0.attach(BuildItem{1, {1}, 1e9}, kCollectorId);
  t0.attach(BuildItem{2, {1}, 1e9}, 1);
  MonitoringTree t1({{1, FunnelSpec{AggType::kHolistic}, 1.0}}, 1e9, kCost);
  t1.attach(BuildItem{4, {1}, 1e9}, kCollectorId);
  t1.attach(BuildItem{5, {1}, 1e9}, 4);
  Topology topo;
  topo.mutable_entries().push_back(TreeEntry{{0}, std::move(t0), 2, 2});
  topo.mutable_entries().push_back(TreeEntry{{1}, std::move(t1), 2, 2});
  topo.set_total_pairs(4);

  const auto res = repair_topology(topo, f.system, {1});
  EXPECT_EQ(res.outcome.trees_touched, 1u);
  const auto& repaired = res.topo.entries()[1].tree;
  EXPECT_EQ(repaired.parent(5), 4u);
  EXPECT_EQ(repaired.parent(4), kCollectorId);
  EXPECT_EQ(res.topo.entries()[0].tree.parent(2), kCollectorId);
  EXPECT_EQ(res.topo.entries()[0].tree.parent(1), kCollectorId);  // parked
}

TEST(Repair, TightCollectorFallsBackToDeeperTargets) {
  // The collector has room for exactly the one message it already
  // receives: orphans must re-home under a surviving member instead.
  Fixture f(3);
  MonitoringTree tree({{0, FunnelSpec{AggType::kHolistic}, 1.0}},
                      /*collector_avail=*/13.5, kCost);
  // Chain 0 <- 1 <- 2 <- 3: node 1 sends C + a*3 = 13 to the collector.
  tree.attach(BuildItem{1, {1}, 1e9}, kCollectorId);
  tree.attach(BuildItem{2, {1}, 1e9}, 1);
  tree.attach(BuildItem{3, {1}, 1e9}, 2);
  Topology topo;
  topo.mutable_entries().push_back(TreeEntry{{0}, std::move(tree), 3, 3});
  topo.set_total_pairs(3);
  f.system.set_collector_capacity(13.5);

  const auto res = repair_topology(topo, f.system, {2});
  const auto& repaired = res.topo.entries()[0].tree;
  EXPECT_TRUE(repaired.validate());
  // Orphan 3 and parked suspect 2 both end up under node 1 — the only
  // feasible healthy vertex. Collector receives one message again.
  EXPECT_EQ(repaired.size(), 3u);
  EXPECT_EQ(repaired.parent(3), 1u);
  EXPECT_EQ(repaired.parent(2), 1u);
  EXPECT_EQ(repaired.children(kCollectorId).size(), 1u);
}

}  // namespace
}  // namespace remo
