#include "adapt/delta_tracker.h"

#include <gtest/gtest.h>

#include "common/sorted_vector.h"

namespace remo {
namespace {

TaskDelta delta_of(std::vector<NodeAttrPair> added,
                   std::vector<NodeAttrPair> removed,
                   std::vector<TaskId> tasks = {}) {
  TaskDelta d;
  d.pairs.added = std::move(added);
  d.pairs.removed = std::move(removed);
  d.tasks_touched = std::move(tasks);
  return d;
}

TEST(DeltaTracker, EnqueueCoalescesAndCountsUpdates) {
  DeltaTracker tracker;
  tracker.enqueue(delta_of({{1, 0}}, {}, {7}), 0.0);
  tracker.enqueue(delta_of({{2, 1}}, {}, {9}), 0.5);
  EXPECT_FALSE(tracker.empty());
  EXPECT_EQ(tracker.coalesced_updates(), 2u);
  EXPECT_EQ(tracker.pending().pairs.added.size(), 2u);
  EXPECT_EQ(tracker.pending().tasks_touched, (std::vector<TaskId>{7, 9}));
}

TEST(DeltaTracker, ChurnThatUndoesItselfMeltsAway) {
  DeltaTracker tracker;
  tracker.enqueue(delta_of({{1, 0}}, {}, {7}), 0.0);
  tracker.enqueue(delta_of({}, {{1, 0}}, {7}), 0.1);
  // The pair cancelled; only the touched-task record remains, and an
  // empty pair delta never demands a flush.
  EXPECT_TRUE(tracker.pending().pairs.empty());
  EXPECT_FALSE(tracker.should_flush(1e9));
}

TEST(DeltaTracker, HardAgeBoundForcesFlush) {
  DeltaTrackerOptions opts;
  opts.max_defer_seconds = 2.0;
  opts.staleness_cost_per_pair_second = 0.0;  // hard bounds only
  DeltaTracker tracker(opts);
  tracker.enqueue(delta_of({{1, 0}}, {}), 10.0);
  EXPECT_FALSE(tracker.should_flush(11.0));
  EXPECT_TRUE(tracker.should_flush(12.0));
}

TEST(DeltaTracker, HardSizeBoundForcesFlush) {
  DeltaTrackerOptions opts;
  opts.max_defer_seconds = 1e9;
  opts.max_pending_pairs = 3;
  opts.staleness_cost_per_pair_second = 0.0;
  DeltaTracker tracker(opts);
  tracker.enqueue(delta_of({{1, 0}, {2, 0}}, {}), 0.0);
  EXPECT_FALSE(tracker.should_flush(0.0));
  tracker.enqueue(delta_of({{3, 0}}, {}), 0.0);
  EXPECT_TRUE(tracker.should_flush(0.0));
}

TEST(DeltaTracker, AmortizedBoundWeighsCostAgainstStalenessDebt) {
  DeltaTrackerOptions opts;
  opts.max_defer_seconds = 1e9;
  opts.max_pending_pairs = 1u << 30;
  opts.initial_cost_seconds = 4.0;
  opts.staleness_cost_per_pair_second = 1.0;
  DeltaTracker tracker(opts);
  tracker.enqueue(delta_of({{1, 0}, {2, 0}}, {}), 0.0);
  // Debt = age × pairs × rate: 1.0 × 2 × 1.0 = 2 < 4 → defer,
  // then 3.0 × 2 × 1.0 = 6 > 4 → flush pays for itself.
  EXPECT_FALSE(tracker.should_flush(1.0));
  EXPECT_TRUE(tracker.should_flush(3.0));
}

TEST(DeltaTracker, ZeroExchangeRateLeavesOnlyHardBounds) {
  DeltaTrackerOptions opts;
  opts.max_defer_seconds = 100.0;
  opts.max_pending_pairs = 1u << 30;
  opts.initial_cost_seconds = 1e-9;  // replans look free
  opts.staleness_cost_per_pair_second = 0.0;
  DeltaTracker tracker(opts);
  tracker.enqueue(delta_of({{1, 0}}, {}), 0.0);
  // Even "free" replans do not fire before the deterministic age bound.
  EXPECT_FALSE(tracker.should_flush(99.0));
  EXPECT_TRUE(tracker.should_flush(100.0));
}

TEST(DeltaTracker, TakeDrainsAndResetsTheBurstWindow) {
  DeltaTrackerOptions opts;
  opts.max_defer_seconds = 2.0;
  opts.staleness_cost_per_pair_second = 0.0;
  DeltaTracker tracker(opts);
  tracker.enqueue(delta_of({{1, 0}}, {}, {3}), 0.0);
  const TaskDelta taken = tracker.take(5.0);
  EXPECT_EQ(taken.pairs.added.size(), 1u);
  EXPECT_EQ(taken.tasks_touched, (std::vector<TaskId>{3}));
  EXPECT_TRUE(tracker.empty());
  EXPECT_EQ(tracker.coalesced_updates(), 0u);
  // The next burst ages from its own first enqueue, not the old window.
  tracker.enqueue(delta_of({{2, 0}}, {}), 6.0);
  EXPECT_FALSE(tracker.should_flush(7.0));
  EXPECT_TRUE(tracker.should_flush(8.0));
}

TEST(DeltaTracker, ObserveReplanCostUpdatesTheEwma) {
  DeltaTrackerOptions opts;
  opts.initial_cost_seconds = 1.0;
  opts.cost_smoothing = 0.25;
  DeltaTracker tracker(opts);
  tracker.observe_replan_cost(5.0);
  EXPECT_DOUBLE_EQ(tracker.replan_cost_estimate(), 0.75 * 1.0 + 0.25 * 5.0);
  tracker.observe_replan_cost(5.0);
  EXPECT_DOUBLE_EQ(tracker.replan_cost_estimate(), 0.75 * 2.0 + 0.25 * 5.0);
}

TEST(DeltaTracker, DirtyAttrsAreTheAffectedAttributeSet) {
  DeltaTracker tracker;
  tracker.enqueue(delta_of({{1, 5}, {2, 3}}, {{4, 5}}), 0.0);
  EXPECT_EQ(tracker.dirty_attrs(), (std::vector<AttrId>{3, 5}));
  EXPECT_TRUE(is_sorted_unique(tracker.dirty_attrs()));
}

}  // namespace
}  // namespace remo
