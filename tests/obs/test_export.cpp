#include "obs/export.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace remo::obs {
namespace {

Registry& sample_registry(Registry& reg) {
  reg.counter("planner.candidates_evaluated").add(120);
  reg.counter("planner.cache_hits").add(45);
  reg.gauge("planner.build_seconds").add(0.25);
  Histogram& h = reg.histogram("sim.deliveries_per_epoch", {1.0, 10.0});
  h.observe(0.0);
  h.observe(4.0);
  h.observe(4.0);
  h.observe(250.0);
  return reg;
}

// The exporter contract is byte-exact determinism (name-sorted maps,
// %.10g numbers): these golden strings are what BENCH_*.json embeds.
TEST(ExportJson, GoldenRegistrySnapshot) {
  Registry reg;
  const std::string json = to_json(sample_registry(reg).snapshot());
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"planner.cache_hits\": 45,\n"
      "    \"planner.candidates_evaluated\": 120\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"planner.build_seconds\": 0.25\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"sim.deliveries_per_epoch\": {\n"
      "      \"count\": 4,\n"
      "      \"sum\": 258,\n"
      "      \"buckets\": [\n"
      "        {\"le\": 1, \"count\": 1},\n"
      "        {\"le\": 10, \"count\": 2},\n"
      "        {\"le\": \"inf\", \"count\": 1}\n"
      "      ]\n"
      "    }\n"
      "  }\n"
      "}";
  EXPECT_EQ(json, expected);
}

TEST(ExportJson, EmptySnapshotAndIndent) {
  const std::string json = to_json(RegistrySnapshot{}, 2);
  const std::string expected =
      "  {\n"
      "    \"counters\": {},\n"
      "    \"gauges\": {},\n"
      "    \"histograms\": {}\n"
      "  }";
  EXPECT_EQ(json, expected);
}

TEST(ExportCsv, GoldenRegistrySnapshot) {
  Registry reg;
  const std::string csv = to_csv(sample_registry(reg).snapshot());
  const std::string expected =
      "kind,name,field,value\n"
      "counter,planner.cache_hits,value,45\n"
      "counter,planner.candidates_evaluated,value,120\n"
      "gauge,planner.build_seconds,value,0.25\n"
      "histogram,sim.deliveries_per_epoch,count,4\n"
      "histogram,sim.deliveries_per_epoch,sum,258\n"
      "histogram,sim.deliveries_per_epoch,le_1,1\n"
      "histogram,sim.deliveries_per_epoch,le_10,2\n"
      "histogram,sim.deliveries_per_epoch,le_inf,1\n";
  EXPECT_EQ(csv, expected);
}

TEST(ExportTable, RendersOneRowPerMetric) {
  Registry reg;
  const Table t = to_table(sample_registry(reg).snapshot());
  ASSERT_EQ(t.headers(), (std::vector<std::string>{"metric", "kind", "value"}));
  ASSERT_EQ(t.rows().size(), 4u);
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("planner.cache_hits"), std::string::npos);
  EXPECT_NE(text.find("count=4 sum=258 mean=64.5"), std::string::npos);
}

TEST(ExportJson, SpanListGolden) {
  std::vector<SpanRecord> spans;
  spans.push_back({2, 1, "planner.build_full", 0.001, 0.5});
  spans.push_back({1, 0, "planner.plan", 0.0, 1.25});
  const std::string json = to_json(spans);
  const std::string expected =
      "[\n"
      "  {\"id\": 2, \"parent\": 1, \"name\": \"planner.build_full\", "
      "\"start_s\": 0.001, \"duration_s\": 0.5},\n"
      "  {\"id\": 1, \"parent\": 0, \"name\": \"planner.plan\", "
      "\"start_s\": 0, \"duration_s\": 1.25}\n"
      "]";
  EXPECT_EQ(json, expected);
  EXPECT_EQ(to_json(std::vector<SpanRecord>{}, 4), "    []");
}

}  // namespace
}  // namespace remo::obs
