#include "obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace remo::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { set_enabled(true); }
  void TearDown() override { set_enabled(true); }
};

TEST_F(TraceTest, NestedSpansRecordParentLinks) {
  TraceRecorder recorder(16);
  {
    const Span plan("planner.plan", &recorder);
    {
      const Span build("planner.build", &recorder);
      { const Span commit("planner.commit", &recorder); }
    }
  }
  const auto records = recorder.records();
  ASSERT_EQ(records.size(), 3u);

  // Completion order: innermost first, root last.
  EXPECT_EQ(records[0].name, "planner.commit");
  EXPECT_EQ(records[1].name, "planner.build");
  EXPECT_EQ(records[2].name, "planner.plan");

  // plan → build → commit parent chain; the root has parent 0.
  std::map<std::string, SpanRecord> by_name;
  for (const auto& r : records) by_name[r.name] = r;
  EXPECT_EQ(by_name["planner.plan"].parent, 0u);
  EXPECT_EQ(by_name["planner.build"].parent, by_name["planner.plan"].id);
  EXPECT_EQ(by_name["planner.commit"].parent, by_name["planner.build"].id);

  // A child starts no earlier and ends no later than its parent.
  const auto& plan = by_name["planner.plan"];
  const auto& build = by_name["planner.build"];
  EXPECT_GE(build.start_s, plan.start_s);
  EXPECT_LE(build.start_s + build.duration_s,
            plan.start_s + plan.duration_s + 1e-9);
}

TEST_F(TraceTest, SiblingsShareTheSameParent) {
  TraceRecorder recorder(16);
  {
    const Span plan("plan", &recorder);
    { const Span a("iter", &recorder); }
    { const Span b("iter", &recorder); }
  }
  const auto records = recorder.records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].parent, records[2].id);
  EXPECT_EQ(records[1].parent, records[2].id);
  EXPECT_NE(records[0].id, records[1].id);
}

TEST_F(TraceTest, RingOverflowDropsOldestAndCounts) {
  TraceRecorder recorder(4);
  for (int i = 0; i < 10; ++i) {
    const Span s(i % 2 == 0 ? "even" : "odd", &recorder);
  }
  const auto records = recorder.records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);
  // Oldest-first: the survivors are spans 7..10 (ids are 1-based).
  EXPECT_EQ(records.front().id, 7u);
  EXPECT_EQ(records.back().id, 10u);
}

TEST_F(TraceTest, ClearRestartsEpochAndKeepsCapacity) {
  TraceRecorder recorder(8);
  { const Span s("before", &recorder); }
  recorder.clear();
  EXPECT_TRUE(recorder.records().empty());
  EXPECT_EQ(recorder.dropped(), 0u);
  { const Span s("after", &recorder); }
  const auto records = recorder.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "after");
  EXPECT_EQ(recorder.capacity(), 8u);
}

TEST_F(TraceTest, DisabledSpansAreInertAndRecordNothing) {
  TraceRecorder recorder(8);
  set_enabled(false);
  {
    const Span s("hidden", &recorder);
    EXPECT_FALSE(s.active());
    EXPECT_EQ(s.id(), 0u);
  }
  EXPECT_TRUE(recorder.records().empty());

  // A span opened while disabled must not become the parent of one opened
  // after re-enabling.
  {
    const Span outer("hidden-outer", &recorder);
    set_enabled(true);
    { const Span inner("visible", &recorder); }
  }
  const auto records = recorder.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "visible");
  EXPECT_EQ(records[0].parent, 0u);
}

TEST_F(TraceTest, ConcurrentClearDoesNotRaceSpanCommit) {
  // Regression (PR 10, found by TSA annotation): commit() used to stamp
  // start_s from epoch_ *before* taking the lock, racing clear()'s epoch
  // rewrite — a span ending across a clear() could read a torn/stale
  // epoch. start_s is now derived under the lock; this test runs span
  // commits against concurrent clear() calls (TSan-checked in CI) and
  // asserts every surviving record is internally consistent.
  TraceRecorder recorder(64);
  constexpr int kSpanThreads = 4;
  constexpr int kSpansPerThread = 500;
  std::atomic<bool> stop{false};

  std::vector<std::thread> spanners;
  spanners.reserve(kSpanThreads);
  for (int t = 0; t < kSpanThreads; ++t) {
    spanners.emplace_back([&recorder] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        const Span s("work", &recorder);
      }
    });
  }
  std::thread clearer([&] {
    while (!stop.load(std::memory_order_acquire)) recorder.clear();
  });
  for (auto& t : spanners) t.join();
  stop.store(true, std::memory_order_release);
  clearer.join();

  // Post-clear epoch restarts at zero, so every record committed after the
  // last clear() must carry a small non-negative start offset.
  for (const auto& r : recorder.records()) {
    EXPECT_GE(r.start_s, 0.0);
    EXPECT_GE(r.duration_s, 0.0);
    EXPECT_LT(r.start_s, 60.0);
  }
}

TEST_F(TraceTest, NullRecorderIsInert) {
  const Span s("nowhere", nullptr);
  EXPECT_FALSE(s.active());
}

TEST_F(TraceTest, ParentLinksAreScopedPerRecorder) {
  // A span on a different recorder must not become the parent of spans
  // recorded elsewhere (the live-span stack filters by recorder).
  TraceRecorder a(8), b(8);
  {
    const Span outer("a.outer", &a);
    { const Span inner("b.inner", &b); }
  }
  const auto in_b = b.records();
  ASSERT_EQ(in_b.size(), 1u);
  EXPECT_EQ(in_b[0].parent, 0u);
  ASSERT_EQ(a.records().size(), 1u);
}

}  // namespace
}  // namespace remo::obs
