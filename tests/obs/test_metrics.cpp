#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"

namespace remo::obs {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketsValuesByUpperBound) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // ≤ 1
  h.observe(1.0);    // ≤ 1 (inclusive upper bound)
  h.observe(5.0);    // ≤ 10
  h.observe(1000.0); // overflow
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 0u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 1006.5);
  EXPECT_DOUBLE_EQ(snap.mean(), 1006.5 / 4.0);
}

TEST(Histogram, UnsortedBoundsAreSortedAndDeduped) {
  Histogram h({10.0, 1.0, 10.0});
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.bounds, (std::vector<double>{1.0, 10.0}));
  EXPECT_EQ(snap.counts.size(), 3u);
}

TEST(Registry, RegistrationIsIdempotentWithStableAddresses) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = reg.histogram("h", {1.0});
  Histogram& h2 = reg.histogram("h", {99.0});  // bounds ignored on re-open
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h1.snapshot().bounds, (std::vector<double>{1.0}));
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Registry, SnapshotIsNameSortedAndResetZeroes) {
  Registry reg;
  reg.counter("z.last").add(3);
  reg.counter("a.first").add(1);
  reg.gauge("mid").set(0.5);
  const RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters.begin()->first, "a.first");
  EXPECT_EQ(snap.counters.at("z.last"), 3u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("mid"), 0.5);

  reg.reset();
  EXPECT_EQ(reg.counter("z.last").value(), 0u);  // same object, zeroed
  EXPECT_FALSE(reg.snapshot().empty());          // registrations survive
}

TEST(Registry, InjectableOrGlobalConvention) {
  Registry mine;
  EXPECT_EQ(&registry_or_global(&mine), &mine);
  EXPECT_EQ(&registry_or_global(nullptr), &Registry::global());
}

TEST(EnabledSwitch, RuntimeToggleRoundTrips) {
  const bool before = enabled();
  set_enabled(false);
  EXPECT_FALSE(enabled());
  set_enabled(true);
  EXPECT_TRUE(enabled());
  set_enabled(before);
}

// The TSan-facing test (CI runs test_obs under -fsanitize=thread): many
// threads hammer the same counter, gauge, and histogram through the
// registry while a reader thread takes snapshots. Totals must be exact —
// counts are atomic, not sampled.
TEST(Registry, ConcurrentIncrementsAreExactAndRaceFree) {
  Registry reg;
  Counter& hits = reg.counter("hammer.hits");
  Gauge& seconds = reg.gauge("hammer.seconds");
  Histogram& sizes = reg.histogram("hammer.sizes", {8.0, 64.0, 512.0});

  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kPerTask = 1000;
  ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t task) {
    // Interleave registry lookups with handle reuse: both paths must be
    // safe concurrently.
    Counter& also_hits = reg.counter("hammer.hits");
    for (std::size_t i = 0; i < kPerTask; ++i) {
      (i % 2 == 0 ? hits : also_hits).add(1);
      seconds.add(0.001);
      sizes.observe(static_cast<double>((task * kPerTask + i) % 600));
      if (i % 257 == 0) (void)reg.snapshot();  // concurrent reader
    }
  });

  EXPECT_EQ(hits.value(), kTasks * kPerTask);
  const auto snap = sizes.snapshot();
  EXPECT_EQ(snap.count, kTasks * kPerTask);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_NEAR(seconds.value(), static_cast<double>(kTasks * kPerTask) * 0.001,
              1e-6);
}

}  // namespace
}  // namespace remo::obs
