#include "collector/time_series.h"

#include <gtest/gtest.h>

namespace remo {
namespace {

constexpr NodeAttrPair kP{1, 0};

TEST(TimeSeries, EmptyStore) {
  TimeSeriesStore store(4);
  EXPECT_EQ(store.num_pairs(), 0u);
  EXPECT_FALSE(store.latest(kP).has_value());
  EXPECT_TRUE(store.range(kP, 0, 100).empty());
  EXPECT_EQ(store.window(kP, 0, 100).count, 0u);
  EXPECT_FALSE(store.staleness(kP, 5).has_value());
}

TEST(TimeSeries, ZeroCapacityRejected) {
  EXPECT_THROW(TimeSeriesStore{0}, std::invalid_argument);
}

TEST(TimeSeries, RecordAndLatest) {
  TimeSeriesStore store(4);
  store.record(kP, 1, 10.0);
  store.record(kP, 3, 30.0);
  const auto head = store.latest(kP);
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->epoch, 3u);
  EXPECT_DOUBLE_EQ(head->value, 30.0);
  EXPECT_EQ(store.num_pairs(), 1u);
  EXPECT_EQ(store.total_samples(), 2u);
}

TEST(TimeSeries, SameEpochOverwrites) {
  TimeSeriesStore store(4);
  store.record(kP, 2, 10.0);
  store.record(kP, 2, 12.0);  // replica path delivers again
  EXPECT_DOUBLE_EQ(store.latest(kP)->value, 12.0);
  EXPECT_EQ(store.total_samples(), 1u);
  EXPECT_EQ(store.range(kP, 0, 10).size(), 1u);
}

TEST(TimeSeries, RingEvictsOldest) {
  TimeSeriesStore store(3);
  for (std::uint64_t e = 1; e <= 5; ++e)
    store.record(kP, e, static_cast<double>(e) * 10.0);
  const auto all = store.range(kP, 0, 100);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].epoch, 3u);  // oldest retained
  EXPECT_EQ(all[1].epoch, 4u);
  EXPECT_EQ(all[2].epoch, 5u);
  EXPECT_EQ(store.latest(kP)->epoch, 5u);
  EXPECT_EQ(store.total_samples(), 5u);  // lifetime count
}

TEST(TimeSeries, RangeFilters) {
  TimeSeriesStore store(8);
  for (std::uint64_t e = 1; e <= 6; ++e)
    store.record(kP, e, static_cast<double>(e));
  const auto mid = store.range(kP, 2, 4);
  ASSERT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid.front().epoch, 2u);
  EXPECT_EQ(mid.back().epoch, 4u);
  EXPECT_TRUE(store.range(kP, 7, 9).empty());
}

TEST(TimeSeries, WindowAggregates) {
  TimeSeriesStore store(8);
  store.record(kP, 1, 5.0);
  store.record(kP, 2, 1.0);
  store.record(kP, 3, 3.0);
  const auto agg = store.window(kP, 1, 3);
  EXPECT_EQ(agg.count, 3u);
  EXPECT_DOUBLE_EQ(agg.min, 1.0);
  EXPECT_DOUBLE_EQ(agg.max, 5.0);
  EXPECT_DOUBLE_EQ(agg.sum, 9.0);
  EXPECT_DOUBLE_EQ(agg.avg(), 3.0);
}

TEST(TimeSeries, SnapshotAcrossNodes) {
  TimeSeriesStore store(4);
  store.record({1, 7}, 10, 4.0);
  store.record({2, 7}, 10, 8.0);
  store.record({3, 7}, 2, 100.0);  // stale node
  store.record({4, 9}, 10, 50.0);  // different attribute
  const auto fresh = store.snapshot(7, /*min_epoch=*/5);
  EXPECT_EQ(fresh.count, 2u);
  EXPECT_DOUBLE_EQ(fresh.min, 4.0);
  EXPECT_DOUBLE_EQ(fresh.max, 8.0);
  EXPECT_DOUBLE_EQ(fresh.avg(), 6.0);
  const auto all = store.snapshot(7, 0);
  EXPECT_EQ(all.count, 3u);
  EXPECT_DOUBLE_EQ(all.max, 100.0);
}

TEST(TimeSeries, Staleness) {
  TimeSeriesStore store(4);
  store.record(kP, 10, 1.0);
  EXPECT_EQ(store.staleness(kP, 10).value(), 0u);
  EXPECT_EQ(store.staleness(kP, 17).value(), 7u);
}

TEST(TimeSeries, Clear) {
  TimeSeriesStore store(4);
  store.record(kP, 1, 1.0);
  store.clear();
  EXPECT_EQ(store.num_pairs(), 0u);
  EXPECT_EQ(store.total_samples(), 0u);
  EXPECT_FALSE(store.latest(kP).has_value());
}

TEST(TimeSeries, ManyPairsIndependentRings) {
  TimeSeriesStore store(2);
  for (NodeId n = 1; n <= 50; ++n)
    for (std::uint64_t e = 1; e <= 4; ++e)
      store.record({n, 0}, e, static_cast<double>(n));
  EXPECT_EQ(store.num_pairs(), 50u);
  for (NodeId n = 1; n <= 50; ++n) {
    const auto r = store.range({n, 0}, 0, 10);
    ASSERT_EQ(r.size(), 2u) << n;
    EXPECT_DOUBLE_EQ(r[0].value, static_cast<double>(n));
  }
}

}  // namespace
}  // namespace remo
