// Collector-side liveness tracking: delivery gaps turn into suspect/recover
// events with period-aware deadlines (the detection half of the detect →
// repair → replan loop).
#include "collector/liveness.h"

#include <gtest/gtest.h>

#include "tree/monitoring_tree.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

/// A hand-built star/chain over nodes 1..n, attr 0, weight `w`, wrapped
/// into a one-entry topology. `chain` strings node i under node i-1.
Topology make_topology(std::size_t n, double w = 1.0, bool chain = false) {
  MonitoringTree tree({{0, FunnelSpec{AggType::kHolistic}, w}},
                      /*collector_avail=*/1e9, kCost);
  for (NodeId id = 1; id <= n; ++id)
    tree.attach(BuildItem{id, {1}, 1e9},
                chain && id > 1 ? id - 1 : kCollectorId);
  Topology topo;
  const std::size_t pairs = tree.collected_pairs();
  topo.mutable_entries().push_back(TreeEntry{{0}, std::move(tree), pairs, pairs});
  topo.set_total_pairs(pairs);
  return topo;
}

void deliver_all(LivenessTracker& t, std::size_t n, std::uint64_t epoch) {
  for (NodeId id = 1; id <= n; ++id) t.on_delivery({id, 0}, epoch);
}

TEST(Liveness, DetectsAfterMissedDeadlines) {
  LivenessTracker t(LivenessConfig{/*missed_deadlines=*/3});
  auto topo = make_topology(5);
  t.sync(topo, 0);
  EXPECT_EQ(t.tracked(), 5u);

  // All nodes deliver through epoch 10; node 3 then goes silent.
  for (std::uint64_t e = 0; e <= 10; ++e) {
    deliver_all(t, 5, e);
    EXPECT_TRUE(t.end_epoch(e).empty());
  }
  // Star: interval 1, grace 1 => deadline = 10 + 1 + 3 = 14; the first
  // boundary past it (epoch 15) fires the detection.
  for (std::uint64_t e = 11; e <= 14; ++e) {
    for (NodeId id = 1; id <= 5; ++id)
      if (id != 3) t.on_delivery({id, 0}, e);
    EXPECT_TRUE(t.end_epoch(e).empty()) << "epoch " << e;
  }
  for (NodeId id = 1; id <= 5; ++id)
    if (id != 3) t.on_delivery({id, 0}, 15);
  const auto events = t.end_epoch(15);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].node, 3u);
  EXPECT_TRUE(events[0].down);
  EXPECT_EQ(events[0].epoch, 15u);
  // Silence became observable at last_seen + interval = 11: lag = 4.
  EXPECT_EQ(events[0].lag, 4u);
  EXPECT_TRUE(t.is_down(3));
  EXPECT_EQ(t.suspected(), std::vector<NodeId>{3});
}

TEST(Liveness, RecoveryEmitsEventOnNextBoundary) {
  LivenessTracker t(LivenessConfig{2});
  auto topo = make_topology(3);
  t.sync(topo, 0);
  deliver_all(t, 3, 0);
  t.end_epoch(0);
  // Node 2 silent until well past its deadline (0 + 1 + 2 = 3).
  std::uint64_t e = 1;
  for (; t.suspected().empty(); ++e) {
    t.on_delivery({1, 0}, e);
    t.on_delivery({3, 0}, e);
    t.end_epoch(e);
    ASSERT_LT(e, 20u);
  }
  EXPECT_TRUE(t.is_down(2));
  // A delivery from the suspect recovers it; the event surfaces at the
  // next boundary, before any new detections.
  t.on_delivery({2, 0}, e);
  const auto events = t.end_epoch(e);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].node, 2u);
  EXPECT_FALSE(events[0].down);
  EXPECT_FALSE(t.is_down(2));
  EXPECT_TRUE(t.suspected().empty());
}

TEST(Liveness, DeadlinesScaleWithSendPeriod) {
  // Weight 0.25 => period 4: a node delivering every 4 epochs must never
  // be suspected at threshold 3, while an equally-silent period-1 node is.
  LivenessTracker t(LivenessConfig{3});
  auto topo = make_topology(2, 0.25);
  t.sync(topo, 0);
  for (std::uint64_t e = 0; e <= 40; ++e) {
    if (e % 4 == 0) {
      t.on_delivery({1, 0}, e);
      t.on_delivery({2, 0}, e);
    }
    EXPECT_TRUE(t.end_epoch(e).empty()) << "epoch " << e;
  }
  // Now node 2 stops: deadline = 40 + 1 + 4*3 = 53, detection at 54.
  std::uint64_t detect = 0;
  for (std::uint64_t e = 41; e <= 60 && detect == 0; ++e) {
    if (e % 4 == 0) t.on_delivery({1, 0}, e);
    const auto events = t.end_epoch(e);
    if (!events.empty()) {
      ASSERT_EQ(events.size(), 1u);
      EXPECT_EQ(events[0].node, 2u);
      detect = e;
    }
  }
  EXPECT_EQ(detect, 54u);
}

TEST(Liveness, DeeperMembersGetPipelineGrace) {
  // Chain 0 <- 1 <- 2 <- 3: node 3's values need 3 hops, so its deadline
  // is 3 epochs later than node 1's for the same last_seen.
  LivenessTracker t(LivenessConfig{2});
  auto topo = make_topology(3, 1.0, /*chain=*/true);
  t.sync(topo, 0);
  deliver_all(t, 3, 5);
  t.end_epoch(5);
  // All silent from epoch 6 on. Node 1 (grace 1): deadline 5+1+2=8.
  // Node 2 (grace 2): 9. Node 3 (grace 3): 10.
  std::vector<std::pair<NodeId, std::uint64_t>> detections;
  for (std::uint64_t e = 6; e <= 12; ++e)
    for (const auto& ev : t.end_epoch(e))
      detections.emplace_back(ev.node, ev.epoch);
  ASSERT_EQ(detections.size(), 3u);
  EXPECT_EQ(detections[0], (std::pair<NodeId, std::uint64_t>{1, 9}));
  EXPECT_EQ(detections[1], (std::pair<NodeId, std::uint64_t>{2, 10}));
  EXPECT_EQ(detections[2], (std::pair<NodeId, std::uint64_t>{3, 11}));
}

TEST(Liveness, SyncCarriesHistoryAndForgetsDepartures) {
  LivenessTracker t(LivenessConfig{3});
  auto topo = make_topology(4);
  t.sync(topo, 0);
  deliver_all(t, 4, 6);
  t.end_epoch(6);

  // Re-sync mid-silence (e.g. after a repair redeploy): last_seen must
  // survive, so node 4's detection still happens on the original clock.
  auto smaller = make_topology(3);  // node 4 left the deployment
  t.sync(smaller, 8);
  EXPECT_EQ(t.tracked(), 3u);
  EXPECT_FALSE(t.is_down(4));  // forgotten, not suspected

  auto same = make_topology(3);
  t.sync(same, 9);
  // Node 3 keeps delivering; 1 and 2 went silent after epoch 6: deadline
  // 6 + 1 + 3 = 10, detection at 11 despite the re-syncs.
  std::vector<std::uint64_t> detect_epochs;
  for (std::uint64_t e = 9; e <= 12; ++e) {
    t.on_delivery({3, 0}, e);
    for (const auto& ev : t.end_epoch(e)) {
      EXPECT_TRUE(ev.down);
      detect_epochs.push_back(ev.epoch);
    }
  }
  ASSERT_EQ(detect_epochs.size(), 2u);  // nodes 1 and 2
  EXPECT_EQ(detect_epochs[0], 11u);
  EXPECT_EQ(detect_epochs[1], 11u);
}

TEST(Liveness, SuspectedNodesSurviveLeavingTheDeployment) {
  // Repair may drop a suspect's branch from the topology entirely. The
  // tracker must keep remembering it as down: forgetting would let the
  // next replan re-admit the dead node as healthy (fresh deadline clock),
  // causing an endless detect/replan flap. Only a delivery clears it.
  LivenessTracker t(LivenessConfig{2});
  auto topo = make_topology(3);
  t.sync(topo, 0);
  deliver_all(t, 3, 0);
  t.end_epoch(0);
  // Node 3 silent: deadline 0 + 1 + 2 = 3, detection at 4.
  for (std::uint64_t e = 1; e <= 4; ++e) {
    t.on_delivery({1, 0}, e);
    t.on_delivery({2, 0}, e);
    t.end_epoch(e);
  }
  ASSERT_TRUE(t.is_down(3));

  // Node 3 dropped from the deployment; it must stay suspected through
  // re-syncs, and never re-fire a detection.
  auto smaller = make_topology(2);
  t.sync(smaller, 5);
  EXPECT_TRUE(t.is_down(3));
  EXPECT_EQ(t.suspected(), std::vector<NodeId>{3});
  for (std::uint64_t e = 5; e <= 20; ++e) {
    t.on_delivery({1, 0}, e);
    t.on_delivery({2, 0}, e);
    t.sync(smaller, e);
    EXPECT_TRUE(t.end_epoch(e).empty()) << "epoch " << e;
  }

  // Once re-parked into the topology and delivering again, it recovers.
  auto full = make_topology(3);
  t.sync(full, 21);
  t.on_delivery({3, 0}, 21);
  const auto events = t.end_epoch(21);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].node, 3u);
  EXPECT_FALSE(events[0].down);
  EXPECT_TRUE(t.suspected().empty());
}

TEST(Liveness, BrandNewNodeStartsClockAtSync) {
  LivenessTracker t(LivenessConfig{2});
  auto topo = make_topology(2);
  t.sync(topo, 100);
  // Never delivered, but the clock started at 100: deadline 100+1+2=103.
  EXPECT_TRUE(t.end_epoch(101).empty());
  EXPECT_TRUE(t.end_epoch(103).empty());
  const auto events = t.end_epoch(104);
  EXPECT_EQ(events.size(), 2u);
}

TEST(Liveness, RelayOnlyMembersAreNotTracked) {
  // Node 2 relays but observes nothing: the collector has no delivery
  // expectation for it, so it must not be tracked (nor ever suspected).
  MonitoringTree tree({{0, FunnelSpec{AggType::kHolistic}, 1.0}},
                      1e9, kCost);
  tree.attach(BuildItem{1, {1}, 1e9}, kCollectorId);
  tree.attach(BuildItem{2, {0}, 1e9}, 1);  // relay-only
  tree.attach(BuildItem{3, {1}, 1e9}, 2);
  Topology topo;
  topo.mutable_entries().push_back(TreeEntry{{0}, std::move(tree), 2, 2});
  topo.set_total_pairs(2);
  LivenessTracker t;
  t.sync(topo, 0);
  EXPECT_EQ(t.tracked(), 2u);
  EXPECT_FALSE(t.is_down(2));
}

}  // namespace
}  // namespace remo
