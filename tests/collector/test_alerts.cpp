#include "collector/alerts.h"

#include <gtest/gtest.h>

namespace remo {
namespace {

struct Recorder {
  std::vector<Alert> alerts;
  AlertEngine::Callback callback() {
    return [this](const Alert& a) { alerts.push_back(a); };
  }
};

TEST(Alerts, PerNodeThresholdFires) {
  AlertEngine engine;
  Recorder rec;
  engine.add_rule({.attr = 0, .op = AlertOp::kGreater, .threshold = 90.0},
                  rec.callback());
  engine.on_value({1, 0}, 5, 80.0);
  EXPECT_TRUE(rec.alerts.empty());
  engine.on_value({1, 0}, 6, 95.0);
  ASSERT_EQ(rec.alerts.size(), 1u);
  EXPECT_EQ(rec.alerts[0].node, 1u);
  EXPECT_EQ(rec.alerts[0].epoch, 6u);
  EXPECT_DOUBLE_EQ(rec.alerts[0].value, 95.0);
}

TEST(Alerts, AttributeFiltered) {
  AlertEngine engine;
  Recorder rec;
  engine.add_rule({.attr = 3, .op = AlertOp::kGreater, .threshold = 0.0},
                  rec.callback());
  engine.on_value({1, 0}, 1, 100.0);  // different attribute
  EXPECT_TRUE(rec.alerts.empty());
}

TEST(Alerts, OperatorsWork) {
  AlertEngine engine;
  Recorder rec;
  engine.add_rule({.attr = 0, .op = AlertOp::kLess, .threshold = 10.0},
                  rec.callback());
  engine.add_rule({.attr = 0, .op = AlertOp::kGreaterEq, .threshold = 50.0},
                  rec.callback());
  engine.add_rule({.attr = 0, .op = AlertOp::kLessEq, .threshold = 5.0},
                  rec.callback());
  engine.on_value({1, 0}, 1, 5.0);  // trips <10, <=5, not >=50
  EXPECT_EQ(rec.alerts.size(), 2u);
  engine.on_value({2, 0}, 1, 50.0);  // trips >=50
  EXPECT_EQ(rec.alerts.size(), 3u);
}

TEST(Alerts, DebounceRequiresConsecutiveBreaches) {
  AlertEngine engine;
  Recorder rec;
  engine.add_rule({.attr = 0,
                   .op = AlertOp::kGreater,
                   .threshold = 50.0,
                   .min_consecutive = 3},
                  rec.callback());
  engine.on_value({1, 0}, 1, 60.0);
  engine.on_value({1, 0}, 2, 60.0);
  engine.on_value({1, 0}, 3, 40.0);  // streak broken
  engine.on_value({1, 0}, 4, 60.0);
  engine.on_value({1, 0}, 5, 60.0);
  EXPECT_TRUE(rec.alerts.empty());
  engine.on_value({1, 0}, 6, 60.0);  // third consecutive
  ASSERT_EQ(rec.alerts.size(), 1u);
  EXPECT_EQ(rec.alerts[0].epoch, 6u);
}

TEST(Alerts, PersistentBreachFiresOnceUntilCleared) {
  AlertEngine engine;
  Recorder rec;
  engine.add_rule({.attr = 0, .op = AlertOp::kGreater, .threshold = 50.0},
                  rec.callback());
  for (std::uint64_t e = 1; e <= 10; ++e) engine.on_value({1, 0}, e, 99.0);
  EXPECT_EQ(rec.alerts.size(), 1u);
  engine.on_value({1, 0}, 11, 10.0);  // clears
  engine.on_value({1, 0}, 12, 99.0);  // re-arms and fires again
  EXPECT_EQ(rec.alerts.size(), 2u);
}

TEST(Alerts, NodesTrackedIndependently) {
  AlertEngine engine;
  Recorder rec;
  engine.add_rule({.attr = 0,
                   .op = AlertOp::kGreater,
                   .threshold = 50.0,
                   .min_consecutive = 2},
                  rec.callback());
  engine.on_value({1, 0}, 1, 60.0);
  engine.on_value({2, 0}, 1, 60.0);
  EXPECT_TRUE(rec.alerts.empty());  // each node has streak 1
  engine.on_value({2, 0}, 2, 60.0);
  ASSERT_EQ(rec.alerts.size(), 1u);
  EXPECT_EQ(rec.alerts[0].node, 2u);
}

TEST(Alerts, FleetScopesUseStoreSnapshots) {
  TimeSeriesStore store(8);
  AlertEngine engine(&store);
  Recorder avg_rec, max_rec, min_rec;
  engine.add_rule({.attr = 0,
                   .op = AlertOp::kGreater,
                   .threshold = 50.0,
                   .scope = AlertScope::kFleetAvg},
                  avg_rec.callback());
  engine.add_rule({.attr = 0,
                   .op = AlertOp::kGreater,
                   .threshold = 90.0,
                   .scope = AlertScope::kFleetMax},
                  max_rec.callback());
  engine.add_rule({.attr = 0,
                   .op = AlertOp::kLess,
                   .threshold = 5.0,
                   .scope = AlertScope::kFleetMin},
                  min_rec.callback());
  store.record({1, 0}, 10, 95.0);
  store.record({2, 0}, 10, 20.0);
  engine.end_epoch(10);
  EXPECT_EQ(avg_rec.alerts.size(), 1u);  // avg 57.5 > 50
  EXPECT_EQ(max_rec.alerts.size(), 1u);  // max 95 > 90
  EXPECT_TRUE(min_rec.alerts.empty());   // min 20 not < 5
  EXPECT_EQ(avg_rec.alerts[0].node, kNoNode);
  EXPECT_DOUBLE_EQ(avg_rec.alerts[0].value, 57.5);
}

TEST(Alerts, FleetStalenessExcludesDeadNodes) {
  TimeSeriesStore store(8);
  AlertEngine engine(&store);
  Recorder rec;
  engine.add_rule({.attr = 0,
                   .op = AlertOp::kLess,
                   .threshold = 10.0,
                   .scope = AlertScope::kFleetMin,
                   .max_staleness = 5},
                  rec.callback());
  store.record({1, 0}, 1, 2.0);    // will be stale at epoch 20
  store.record({2, 0}, 20, 50.0);  // fresh and healthy
  engine.end_epoch(20);
  EXPECT_TRUE(rec.alerts.empty());  // stale node 1 must not pin the min
}

TEST(Alerts, FleetWithoutStoreIsNoop) {
  AlertEngine engine(nullptr);
  Recorder rec;
  engine.add_rule({.attr = 0,
                   .op = AlertOp::kGreater,
                   .threshold = 0.0,
                   .scope = AlertScope::kFleetAvg},
                  rec.callback());
  engine.end_epoch(1);
  EXPECT_TRUE(rec.alerts.empty());
}

TEST(Alerts, RemoveRuleStopsFiring) {
  AlertEngine engine;
  Recorder rec;
  const RuleId id = engine.add_rule(
      {.attr = 0, .op = AlertOp::kGreater, .threshold = 0.0}, rec.callback());
  EXPECT_TRUE(engine.remove_rule(id));
  EXPECT_FALSE(engine.remove_rule(id));
  engine.on_value({1, 0}, 1, 100.0);
  EXPECT_TRUE(rec.alerts.empty());
  EXPECT_EQ(engine.alerts_fired(), 0u);
}

TEST(Alerts, EnumNames) {
  EXPECT_STREQ(to_string(AlertOp::kGreater), ">");
  EXPECT_STREQ(to_string(AlertOp::kLessEq), "<=");
  EXPECT_STREQ(to_string(AlertScope::kFleetAvg), "FLEET-AVG");
}

}  // namespace
}  // namespace remo
