// End-to-end: simulator deliveries feed the time-series store and alert
// engine through the SimConfig hooks — the full Fig. 1 pipeline.
#include <gtest/gtest.h>

#include "collector/alerts.h"
#include "collector/time_series.h"
#include "planner/planner.h"
#include "sim/simulator.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

TEST(CollectorIntegration, DeliveriesPopulateStoreAndTriggerAlerts) {
  SystemModel system(8, 1e6, kCost);
  system.set_collector_capacity(1e9);
  PairSet pairs(9);
  for (NodeId n = 1; n <= 8; ++n) {
    system.set_observable(n, {0});
    pairs.add(n, 0);
  }
  const Topology topo = Planner(system, PlannerOptions{}).plan(pairs);

  TimeSeriesStore store(64);
  AlertEngine alerts(&store);
  std::vector<Alert> fired;
  alerts.add_rule({.attr = 0,
                   .op = AlertOp::kGreater,
                   .threshold = 120.0,
                   .scope = AlertScope::kFleetMax,
                   .min_consecutive = 2},
                  [&fired](const Alert& a) { fired.push_back(a); });

  // A source that ramps one node's value over the threshold mid-run.
  class Ramp : public ValueSource {
   public:
    void advance(std::uint64_t epoch) override { epoch_ = epoch; }
    double value(NodeId node, AttrId) const override {
      if (node == 3 && epoch_ >= 40) return 200.0;  // the incident
      return 100.0;
    }

   private:
    std::uint64_t epoch_ = 0;
  } source;

  SimConfig cfg;
  cfg.epochs = 80;
  cfg.warmup = 10;
  cfg.on_delivery = [&](NodeAttrPair pair, std::uint64_t epoch, double value) {
    store.record(pair, epoch, value);
    alerts.on_value(pair, epoch, value);
  };
  cfg.on_epoch_end = [&](std::uint64_t epoch) { alerts.end_epoch(epoch); };

  const auto report = simulate(system, topo, pairs, source, cfg);
  EXPECT_GT(report.messages_sent, 0u);

  // The store holds every pair, fresh.
  EXPECT_EQ(store.num_pairs(), pairs.total_pairs());
  for (NodeId n = 1; n <= 8; ++n) {
    const auto head = store.latest({n, 0});
    ASSERT_TRUE(head.has_value()) << n;
    EXPECT_LE(store.staleness({n, 0}, 79).value(), 2u);
  }
  // The fleet snapshot reflects the incident and the alert fired once.
  EXPECT_DOUBLE_EQ(store.snapshot(0).max, 200.0);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].node, kNoNode);
  EXPECT_GE(fired[0].epoch, 40u);
  EXPECT_DOUBLE_EQ(fired[0].value, 200.0);
  // History survived: the pre-incident value is still queryable.
  const auto before = store.window({3, 0}, 20, 35);
  EXPECT_GT(before.count, 0u);
  EXPECT_DOUBLE_EQ(before.max, 100.0);
}

TEST(CollectorIntegration, StalenessReflectsTreeDepth) {
  // A chain topology delivers deep nodes' values late: the store's
  // staleness accounting shows the per-hop pipeline.
  SystemModel system(6, 1e6, kCost);
  system.set_collector_capacity(1e9);
  PairSet pairs(7);
  for (NodeId n = 1; n <= 6; ++n) {
    system.set_observable(n, {0});
    pairs.add(n, 0);
  }
  PlannerOptions o;
  o.partition_scheme = PartitionScheme::kOneSet;
  o.tree.scheme = TreeScheme::kChain;
  const Topology topo = Planner(system, o).plan(pairs);
  const auto& tree = topo.entries()[0].tree;

  TimeSeriesStore store(8);
  RandomWalkSource source(pairs, 3);
  SimConfig cfg;
  cfg.epochs = 30;
  cfg.on_delivery = [&](NodeAttrPair pair, std::uint64_t epoch, double value) {
    store.record(pair, epoch, value);
  };
  simulate(system, topo, pairs, source, cfg);

  // Deeper nodes' freshest arrival epoch lags by depth-1 hops... but the
  // *arrival* epochs all reach the final epochs; what differs is the age of
  // the payload, which the delivery epoch cannot show. Check instead that
  // every member delivered and the chain really was deep.
  EXPECT_GE(tree.height(), 6u);
  for (NodeId n = 1; n <= 6; ++n)
    EXPECT_TRUE(store.latest({n, 0}).has_value()) << n;
}

}  // namespace
}  // namespace remo
