// Conservation and consistency properties of the simulator across random
// regimes: accounting identities that must hold whatever the topology,
// capacities, or failures.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "planner/planner.h"
#include "sim/simulator.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

struct Regime {
  std::uint64_t seed;
  Capacity node_cap;
  Capacity coll_cap;
  bool enforce;
  bool with_failure;
};

class SimConservation : public ::testing::TestWithParam<Regime> {};

TEST_P(SimConservation, AccountingIdentitiesHold) {
  const Regime r = GetParam();
  SystemModel system(20, r.node_cap, kCost);
  system.set_collector_capacity(r.coll_cap);
  Rng rng{r.seed};
  system.assign_random_attributes(12, 5, rng);
  PairSet pairs(21);
  for (NodeId n = 1; n <= 20; ++n)
    for (AttrId a : system.observable(n)) pairs.add(n, a);

  const Topology topo = Planner(system, PlannerOptions{}).plan(pairs);

  std::size_t hook_deliveries = 0;
  RandomWalkSource src(pairs, r.seed + 1);
  SimConfig cfg;
  cfg.epochs = 60;
  cfg.warmup = 15;
  cfg.enforce_capacity = r.enforce;
  cfg.collect_pair_errors = true;
  if (r.with_failure)
    cfg.failures = {{3, 20, 40}, {7, 30, std::numeric_limits<std::uint64_t>::max()}};
  cfg.on_delivery = [&](NodeAttrPair, std::uint64_t, double) {
    ++hook_deliveries;
  };
  const auto report = simulate(system, topo, pairs, src, cfg);

  // Identities:
  EXPECT_EQ(report.total_pairs, pairs.total_pairs());
  EXPECT_EQ(report.planned_pairs, topo.collected_pairs());
  EXPECT_LE(report.delivered_ratio, 1.0 + 1e-9);
  EXPECT_GE(report.delivered_ratio, 0.0);
  // One message per member per epoch is the ceiling.
  std::size_t members = 0;
  for (const auto& e : topo.entries()) members += e.tree.size();
  EXPECT_LE(report.messages_sent, members * cfg.epochs);
  // Values can only travel inside messages.
  EXPECT_LE(report.messages_sent, report.values_sent + 1);
  // The delivery hook observed every collector arrival (over ALL epochs,
  // so at least the sampled deliveries).
  EXPECT_GE(hook_deliveries,
            static_cast<std::size_t>(report.delivered_ratio *
                                     static_cast<double>(report.planned_pairs) *
                                     static_cast<double>(cfg.epochs - cfg.warmup)) /
                2);
  // Per-pair errors present and finite.
  ASSERT_EQ(report.pair_mean_error.size(), pairs.total_pairs());
  for (double e : report.pair_mean_error) {
    EXPECT_GE(e, 0.0);
    EXPECT_TRUE(std::isfinite(e));
  }
  // Utilization bounded when enforced.
  if (r.enforce) {
    EXPECT_LE(report.max_node_utilization, 1.0 + 1e-6);
    EXPECT_LE(report.collector_utilization, 1.0 + 1e-6);
  }
  // p95 is at least the mean's order (it is a quantile of the same pool).
  EXPECT_GE(report.p95_percent_error + 1e-9, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, SimConservation,
    ::testing::Values(Regime{1, 1e6, 1e9, true, false},
                      Regime{2, 1e6, 1e9, false, false},
                      Regime{3, 60.0, 300.0, true, false},
                      Regime{4, 60.0, 300.0, true, true},
                      Regime{5, 40.0, 5000.0, true, true},
                      Regime{6, 200.0, 150.0, true, false}));

}  // namespace
}  // namespace remo
