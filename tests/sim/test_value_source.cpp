#include "sim/value_source.h"

#include <gtest/gtest.h>

namespace remo {
namespace {

PairSet three_pairs() {
  PairSet p(4);
  p.add(1, 0);
  p.add(2, 0);
  p.add(3, 1);
  return p;
}

TEST(RandomWalkSource, RegisteredPairsHaveValues) {
  auto pairs = three_pairs();
  RandomWalkSource src(pairs, 1);
  EXPECT_GT(src.value(1, 0), 0.0);
  EXPECT_GT(src.value(3, 1), 0.0);
  EXPECT_DOUBLE_EQ(src.value(3, 0), 0.0);  // unregistered pair
}

TEST(RandomWalkSource, AdvanceChangesValues) {
  auto pairs = three_pairs();
  RandomWalkSource src(pairs, 2);
  const double before = src.value(1, 0);
  src.advance(0);
  src.advance(1);
  EXPECT_NE(src.value(1, 0), before);
}

TEST(RandomWalkSource, RespectsFloor) {
  auto pairs = three_pairs();
  RandomWalkSource src(pairs, 3, /*start=*/2.0, /*sigma=*/50.0, /*floor=*/1.0);
  for (int e = 0; e < 200; ++e) {
    src.advance(e);
    EXPECT_GE(src.value(1, 0), 1.0);
  }
}

TEST(RandomWalkSource, DeterministicForSeed) {
  auto pairs = three_pairs();
  RandomWalkSource a(pairs, 7), b(pairs, 7);
  for (int e = 0; e < 10; ++e) {
    a.advance(e);
    b.advance(e);
  }
  EXPECT_DOUBLE_EQ(a.value(2, 0), b.value(2, 0));
}

TEST(RandomWalkSource, WalksDiffuse) {
  // After many steps, values should have moved materially (sanity check
  // that staleness will actually translate into error).
  auto pairs = three_pairs();
  RandomWalkSource src(pairs, 9, 100.0, 2.0);
  const double v0 = src.value(1, 0);
  double max_dev = 0.0;
  for (int e = 0; e < 500; ++e) {
    src.advance(e);
    max_dev = std::max(max_dev, std::abs(src.value(1, 0) - v0));
  }
  EXPECT_GT(max_dev, 5.0);
}

TEST(BurstySource, BurstsRaiseValuesAboveBaseline) {
  auto pairs = three_pairs();
  BurstySource src(pairs, 4, 100.0, 1.0, /*burst_probability=*/0.2, 3.0);
  double peak = 0.0;
  for (int e = 0; e < 300; ++e) {
    src.advance(e);
    peak = std::max(peak, src.value(1, 0));
  }
  EXPECT_GT(peak, 150.0);  // bursts of ~2-3x baseline must appear
}

TEST(BurstySource, StaysPositive) {
  auto pairs = three_pairs();
  BurstySource src(pairs, 5);
  for (int e = 0; e < 300; ++e) {
    src.advance(e);
    EXPECT_GT(src.value(2, 0), 0.0);
  }
}

TEST(BurstySource, BurstsDecay) {
  // With bursts disabled after warm-up (probability 0), the burst
  // component must decay towards the mean-reverting baseline band.
  auto pairs = three_pairs();
  BurstySource src(pairs, 6, 100.0, 0.5, 0.0, 3.0, 0.8);
  for (int e = 0; e < 400; ++e) src.advance(e);
  EXPECT_NEAR(src.value(1, 0), 100.0, 40.0);
}

}  // namespace
}  // namespace remo
