#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "planner/planner.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

struct Fixture {
  SystemModel system;
  PairSet pairs;

  Fixture(std::size_t n, std::size_t attrs, Capacity node_cap, Capacity coll_cap)
      : system(n, node_cap, kCost), pairs(n + 1) {
    system.set_collector_capacity(coll_cap);
    for (NodeId id = 1; id <= n; ++id) {
      std::vector<AttrId> a;
      for (AttrId x = 0; x < attrs; ++x) {
        a.push_back(x);
        pairs.add(id, x);
      }
      system.set_observable(id, a);
    }
  }

  Topology plan(PartitionScheme scheme = PartitionScheme::kRemo) {
    PlannerOptions o;
    o.partition_scheme = scheme;
    return Planner(system, o).plan(pairs);
  }
};

TEST(Simulator, FullDeliveryUnderAmpleCapacity) {
  Fixture f(10, 2, 1e6, 1e6);
  auto topo = f.plan();
  RandomWalkSource src(f.pairs, 1);
  SimConfig cfg;
  cfg.epochs = 60;
  cfg.warmup = 10;
  const auto report = simulate(f.system, topo, f.pairs, src, cfg);
  EXPECT_EQ(report.planned_pairs, f.pairs.total_pairs());
  EXPECT_NEAR(report.delivered_ratio, 1.0, 1e-9);
  EXPECT_EQ(report.values_dropped, 0u);
  EXPECT_GT(report.messages_sent, 0u);
}

TEST(Simulator, ErrorSmallWhenEverythingDelivered) {
  Fixture f(10, 2, 1e6, 1e6);
  auto topo = f.plan();
  // Slow walk: one-epoch staleness error stays tiny relative to values.
  RandomWalkSource src(f.pairs, 2, 100.0, 0.5);
  SimConfig cfg;
  cfg.epochs = 80;
  const auto report = simulate(f.system, topo, f.pairs, src, cfg);
  EXPECT_LT(report.avg_percent_error, 5.0);
}

TEST(Simulator, StaticValuesGiveZeroError) {
  Fixture f(8, 1, 1e6, 1e6);
  auto topo = f.plan();
  RandomWalkSource src(f.pairs, 3, 100.0, /*sigma=*/0.0);
  SimConfig cfg;
  cfg.epochs = 40;
  const auto report = simulate(f.system, topo, f.pairs, src, cfg);
  EXPECT_DOUBLE_EQ(report.avg_percent_error, 0.0);
  EXPECT_DOUBLE_EQ(report.p95_percent_error, 0.0);
}

TEST(Simulator, DeeperTreesAreStaler) {
  // Same workload, CHAIN vs STAR trees: deeper delivery pipelines must
  // produce at least as much staleness error (the Fig. 8 mechanism).
  Fixture f(25, 1, 1e6, 1e6);
  PlannerOptions star_opts, chain_opts;
  star_opts.partition_scheme = PartitionScheme::kOneSet;
  star_opts.tree.scheme = TreeScheme::kStar;
  chain_opts.partition_scheme = PartitionScheme::kOneSet;
  chain_opts.tree.scheme = TreeScheme::kChain;
  auto star = Planner(f.system, star_opts).plan(f.pairs);
  auto chain = Planner(f.system, chain_opts).plan(f.pairs);
  ASSERT_GT(chain.entries()[0].tree.height(), star.entries()[0].tree.height());

  SimConfig cfg;
  cfg.epochs = 120;
  cfg.warmup = 40;
  RandomWalkSource s1(f.pairs, 5, 100.0, 3.0);
  RandomWalkSource s2(f.pairs, 5, 100.0, 3.0);
  const auto star_report = simulate(f.system, star, f.pairs, s1, cfg);
  const auto chain_report = simulate(f.system, chain, f.pairs, s2, cfg);
  EXPECT_GT(chain_report.avg_percent_error, star_report.avg_percent_error);
}

TEST(Simulator, UncoveredPairsRaiseError) {
  // Starve the system so planning covers only part of the pairs: the
  // uncovered remainder contributes growing error.
  Fixture tight(30, 3, 40.0, 80.0);
  Fixture ample(30, 3, 1e6, 1e6);
  auto tight_topo = tight.plan();
  auto ample_topo = ample.plan();
  ASSERT_LT(tight_topo.coverage(), 1.0);
  ASSERT_DOUBLE_EQ(ample_topo.coverage(), 1.0);

  SimConfig cfg;
  cfg.epochs = 100;
  RandomWalkSource s1(tight.pairs, 6, 100.0, 3.0);
  RandomWalkSource s2(ample.pairs, 6, 100.0, 3.0);
  const auto tight_report = simulate(tight.system, tight_topo, tight.pairs, s1, cfg);
  const auto ample_report = simulate(ample.system, ample_topo, ample.pairs, s2, cfg);
  EXPECT_GT(tight_report.avg_percent_error, ample_report.avg_percent_error);
}

TEST(Simulator, CapacityEnforcementDropsWhenOverloaded) {
  // Deploy a deliberately infeasible topology (planned with fake huge
  // capacities, simulated with tiny ones): drops must appear.
  Fixture planner_view(12, 3, 1e6, 1e6);
  auto topo = planner_view.plan(PartitionScheme::kOneSet);
  SystemModel starved = planner_view.system;
  for (NodeId n = 0; n <= 12; ++n) starved.set_capacity(n, 30.0);
  RandomWalkSource src(planner_view.pairs, 7);
  SimConfig cfg;
  cfg.epochs = 60;
  const auto report = simulate(starved, topo, planner_view.pairs, src, cfg);
  EXPECT_GT(report.values_dropped, 0u);
  EXPECT_LT(report.delivered_ratio, 1.0);
}

TEST(Simulator, EnforcementOffDeliversEverything) {
  Fixture planner_view(12, 3, 1e6, 1e6);
  auto topo = planner_view.plan(PartitionScheme::kOneSet);
  SystemModel starved = planner_view.system;
  for (NodeId n = 0; n <= 12; ++n) starved.set_capacity(n, 30.0);
  RandomWalkSource src(planner_view.pairs, 7);
  SimConfig cfg;
  cfg.epochs = 60;
  cfg.enforce_capacity = false;
  const auto report = simulate(starved, topo, planner_view.pairs, src, cfg);
  EXPECT_EQ(report.values_dropped, 0u);
  EXPECT_NEAR(report.delivered_ratio, 1.0, 1e-9);
}

TEST(Simulator, UtilizationBoundedByCapacityWhenEnforced) {
  Fixture f(20, 2, 60.0, 200.0);
  auto topo = f.plan();
  RandomWalkSource src(f.pairs, 8);
  SimConfig cfg;
  cfg.epochs = 50;
  const auto report = simulate(f.system, topo, f.pairs, src, cfg);
  EXPECT_LE(report.max_node_utilization, 1.0 + 1e-6);
  EXPECT_LE(report.collector_utilization, 1.0 + 1e-6);
  EXPECT_GT(report.avg_node_utilization, 0.0);
}

TEST(Simulator, FrequencyWeightsReduceTraffic) {
  Fixture f(10, 2, 1e6, 1e6);
  // Plan with attr 1 at quarter rate.
  PlannerOptions o;
  o.attr_specs.set_weight(1, 0.25);
  auto slow_topo = Planner(f.system, o).plan(f.pairs);
  auto fast_topo = f.plan(PartitionScheme::kRemo);
  RandomWalkSource s1(f.pairs, 9);
  RandomWalkSource s2(f.pairs, 9);
  SimConfig cfg;
  cfg.epochs = 80;
  const auto slow = simulate(f.system, slow_topo, f.pairs, s1, cfg);
  const auto fast = simulate(f.system, fast_topo, f.pairs, s2, cfg);
  EXPECT_LT(slow.values_sent, fast.values_sent);
}

TEST(Simulator, PartialTrimRebuffersUnsentRelays) {
  // Regression: when capacity trims a payload to 0 < fit < size, the
  // unsent relayed values must be re-buffered for the next epoch (as the
  // fit == 0 path already does), not silently dropped.
  //
  // Chain collector <- A(1) <- B(2) <- C(3). A observes attr 0 at weight
  // 0.5 (sends on even epochs); C observes attr 1 at weight 1e-6 (sends
  // only at epoch 0). Collector capacity 11.5 lets A send exactly one
  // value per message. C's single value reaches A's buffer at epoch 1; at
  // epoch 2 A's payload is [A-local, C-relay], trims to 1, and the relay
  // must survive to be delivered at epoch 3.
  const std::size_t n = 3;
  SystemModel system(n, 100.0, kCost);
  system.set_collector_capacity(11.5);
  system.set_observable(1, {0});
  system.set_observable(3, {1});
  PairSet pairs(n + 1);
  pairs.add(1, 0);
  pairs.add(3, 1);

  MonitoringTree tree({{0, FunnelSpec{AggType::kHolistic}, 0.5},
                       {1, FunnelSpec{AggType::kHolistic}, 1e-6}},
                      /*collector_avail=*/1e9, kCost);
  tree.attach(BuildItem{1, {1, 0}, 1e9}, kCollectorId);
  tree.attach(BuildItem{2, {0, 0}, 1e9}, 1);
  tree.attach(BuildItem{3, {0, 1}, 1e9}, 2);
  Topology topo;
  topo.mutable_entries().push_back(
      TreeEntry{{0, 1}, std::move(tree), 2, 2});
  topo.set_total_pairs(2);

  RandomWalkSource src(pairs, 11, 100.0, /*sigma=*/0.0);
  SimConfig cfg;
  cfg.epochs = 10;
  cfg.warmup = 0;
  std::vector<std::uint64_t> c_arrivals;
  cfg.on_delivery = [&](NodeAttrPair p, std::uint64_t e, double) {
    if (p.node == 3) c_arrivals.push_back(e);
  };
  const auto report = simulate(system, topo, pairs, src, cfg);
  // C's one value is trimmed at epoch 2 but must arrive at epoch 3 when
  // A has no local value competing for the slot.
  ASSERT_EQ(c_arrivals.size(), 1u);
  EXPECT_EQ(c_arrivals[0], 3u);
  EXPECT_EQ(report.values_dropped, 0u);
}

TEST(Simulator, DeliveredRatioRespectsSendPeriods) {
  // Regression: the delivered_ratio denominator must scale expected
  // deliveries by each attribute's send period. A healthy period-4
  // deployment delivers every value it schedules — ratio 1.0, not 0.25.
  Fixture f(4, 1, 1e6, 1e6);
  PlannerOptions o;
  o.partition_scheme = PartitionScheme::kOneSet;
  o.tree.scheme = TreeScheme::kStar;
  o.attr_specs.set_weight(0, 0.25);  // period 4
  auto topo = Planner(f.system, o).plan(f.pairs);
  RandomWalkSource src(f.pairs, 12);
  SimConfig cfg;
  cfg.epochs = 84;
  cfg.warmup = 4;
  const auto report = simulate(f.system, topo, f.pairs, src, cfg);
  EXPECT_GT(report.values_sent, 0u);
  EXPECT_NEAR(report.delivered_ratio, 1.0, 0.05);
}

TEST(Simulator, EmptyTopologyReportsFullErrorNoTraffic) {
  Fixture f(5, 1, 1e6, 1e6);
  Topology empty;
  empty.set_total_pairs(f.pairs.total_pairs());
  RandomWalkSource src(f.pairs, 10);
  SimConfig cfg;
  cfg.epochs = 30;
  const auto report = simulate(f.system, empty, f.pairs, src, cfg);
  EXPECT_EQ(report.messages_sent, 0u);
  EXPECT_EQ(report.planned_pairs, 0u);
  EXPECT_GT(report.avg_percent_error, 0.0);
}

TEST(Simulator, BackpressureRebuffersRelaysAndMirrorsMetrics) {
  // Plan a deep chain under ample capacity, then simulate it on a
  // squeezed system: relays no longer fit each epoch, so they must be
  // deferred (store half of store-and-forward), not silently lost. The
  // run also publishes sim.* into an injected registry; the mirrors
  // must equal the SimReport exactly.
  Fixture ample(12, 1, 1e6, 1e6);
  PlannerOptions chain_opts;
  chain_opts.partition_scheme = PartitionScheme::kOneSet;
  chain_opts.tree.scheme = TreeScheme::kChain;
  auto topo = Planner(ample.system, chain_opts).plan(ample.pairs);
  ASSERT_GT(topo.entries()[0].tree.height(), 4u);

  // Room for a message of ~2 values per endpoint per epoch (C=10, a=1):
  // mid-chain nodes accumulate relays they can't flush.
  Fixture tight(12, 1, 26.0, 60.0);
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  obs::Registry registry;
  RandomWalkSource src(ample.pairs, 7);
  SimConfig cfg;
  cfg.epochs = 50;
  cfg.warmup = 10;
  cfg.metrics = &registry;
  const auto report = simulate(tight.system, topo, ample.pairs, src, cfg);
  obs::set_enabled(was_enabled);

  EXPECT_GT(report.values_rebuffered, 0u);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("sim.epochs"), cfg.epochs);
  EXPECT_EQ(snap.counters.at("sim.messages_sent"), report.messages_sent);
  EXPECT_EQ(snap.counters.at("sim.values_dropped"), report.values_dropped);
  EXPECT_EQ(snap.counters.at("sim.values_rebuffered"),
            report.values_rebuffered);
  EXPECT_EQ(snap.histograms.at("sim.deliveries_per_epoch").count, cfg.epochs);
}

}  // namespace
}  // namespace remo
