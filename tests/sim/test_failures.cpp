// Failure injection in the simulator, and the per-pair error output the
// reliability experiments consume.
#include <gtest/gtest.h>

#include "planner/planner.h"
#include "sim/simulator.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

struct Fixture {
  SystemModel system;
  PairSet pairs;

  explicit Fixture(std::size_t n = 12)
      : system(n, 1e6, kCost), pairs(n + 1) {
    system.set_collector_capacity(1e9);
    for (NodeId id = 1; id <= n; ++id) {
      system.set_observable(id, {0});
      pairs.add(id, 0);
    }
  }

  Topology chain_topology() {
    // One deep chain so a mid-chain failure partitions the tree.
    PlannerOptions o;
    o.partition_scheme = PartitionScheme::kOneSet;
    o.tree.scheme = TreeScheme::kChain;
    return Planner(system, o).plan(pairs);
  }

  Topology star_topology() {
    PlannerOptions o;
    o.partition_scheme = PartitionScheme::kOneSet;
    o.tree.scheme = TreeScheme::kStar;
    return Planner(system, o).plan(pairs);
  }
};

TEST(SimFailures, DownNodeStopsItsOwnPairs) {
  Fixture f;
  auto topo = f.star_topology();
  RandomWalkSource src(f.pairs, 1, 100.0, 3.0);
  SimConfig cfg;
  cfg.epochs = 100;
  cfg.warmup = 20;
  cfg.collect_pair_errors = true;
  cfg.failures = {{3, 40, std::numeric_limits<std::uint64_t>::max()}};
  const auto report = simulate(f.system, topo, f.pairs, src, cfg);
  ASSERT_EQ(report.pair_mean_error.size(), f.pairs.total_pairs());
  // Pair of node 3 (index 2 in all_pairs order) is stale from epoch 40 on
  // and must show clearly more error than a healthy pair.
  const auto all = f.pairs.all_pairs();
  double failed_err = 0.0, healthy_err = 0.0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i].node == 3)
      failed_err = report.pair_mean_error[i];
    else
      healthy_err = std::max(healthy_err, report.pair_mean_error[i]);
  }
  EXPECT_GT(failed_err, 2.0 * healthy_err + 1.0);
}

TEST(SimFailures, MidChainFailureStallsTheWholeSubtree) {
  Fixture f;
  auto chain = f.chain_topology();
  ASSERT_GE(chain.entries()[0].tree.height(), 12u);
  RandomWalkSource s1(f.pairs, 2, 100.0, 3.0);
  RandomWalkSource s2(f.pairs, 2, 100.0, 3.0);
  SimConfig healthy;
  healthy.epochs = 120;
  healthy.warmup = 30;
  SimConfig broken = healthy;
  // Fail the node at depth ~3 permanently: everything below is cut off.
  const auto& tree = chain.entries()[0].tree;
  NodeId victim = kNoNode;
  for (NodeId n : tree.members())
    if (tree.depth(n) == 3) victim = n;
  ASSERT_NE(victim, kNoNode);
  broken.failures = {{victim, 40, std::numeric_limits<std::uint64_t>::max()}};
  const auto ok = simulate(f.system, chain, f.pairs, s1, healthy);
  const auto bad = simulate(f.system, chain, f.pairs, s2, broken);
  EXPECT_GT(bad.avg_percent_error, 2.0 * ok.avg_percent_error);
  EXPECT_LT(bad.delivered_ratio, ok.delivered_ratio);
}

TEST(SimFailures, TwoDisjointWindowsForOneNodeBothApply) {
  // Regression: with several failure windows for one node, an entry whose
  // window is inactive must not flip the node back up while another
  // entry's window is still active (down-ness is the OR over windows).
  Fixture f;
  auto topo = f.star_topology();
  RandomWalkSource src(f.pairs, 7, 100.0, 3.0);
  SimConfig cfg;
  cfg.epochs = 60;
  cfg.warmup = 0;
  cfg.failures = {{3, 10, 20}, {3, 30, 40}};
  std::vector<std::uint64_t> deliveries;  // arrival epochs of node 3's pair
  cfg.on_delivery = [&](NodeAttrPair p, std::uint64_t e, double) {
    if (p.node == 3) deliveries.push_back(e);
  };
  simulate(f.system, topo, f.pairs, src, cfg);
  ASSERT_FALSE(deliveries.empty());
  std::size_t in_first = 0, in_second = 0, between = 0;
  for (std::uint64_t e : deliveries) {
    if (e >= 10 && e < 20) ++in_first;
    if (e >= 30 && e < 40) ++in_second;
    if (e >= 20 && e < 30) ++between;
  }
  // Depth-1 star: a value sent at epoch e arrives at epoch e, so no
  // arrivals may fall inside either window; the gap between windows and
  // the tail must deliver normally.
  EXPECT_EQ(in_first, 0u);
  EXPECT_EQ(in_second, 0u);
  EXPECT_GT(between, 0u);
}

TEST(SimFailures, RecoveryRestoresDelivery) {
  Fixture f;
  auto topo = f.star_topology();
  RandomWalkSource src(f.pairs, 3, 100.0, 2.0);
  SimConfig cfg;
  cfg.epochs = 200;
  cfg.warmup = 150;  // sample only well after recovery
  cfg.failures = {{3, 20, 60}};
  const auto report = simulate(f.system, topo, f.pairs, src, cfg);
  // After recovery the star delivers fresh values again: sampled error is
  // tiny (one-epoch staleness at most).
  EXPECT_LT(report.avg_percent_error, 5.0);
}

TEST(SimFailures, StarIsRobustToSingleLeafFailure) {
  // In a star, a leaf failure costs exactly that leaf's pair; in a chain,
  // an equally-placed failure can cost many — the structural reliability
  // argument for bushy trees.
  Fixture f;
  auto star = f.star_topology();
  auto chain = f.chain_topology();
  RandomWalkSource s1(f.pairs, 4, 100.0, 3.0);
  RandomWalkSource s2(f.pairs, 4, 100.0, 3.0);
  SimConfig cfg;
  cfg.epochs = 120;
  cfg.warmup = 30;
  // Fail the chain node at depth 2 / any star member: id choice below
  // works for both because the chain assigns low depths to low ids.
  const auto& ctree = chain.entries()[0].tree;
  NodeId victim = kNoNode;
  for (NodeId n : ctree.members())
    if (ctree.depth(n) == 2) victim = n;
  ASSERT_NE(victim, kNoNode);
  cfg.failures = {{victim, 30, std::numeric_limits<std::uint64_t>::max()}};
  const auto star_report = simulate(f.system, star, f.pairs, s1, cfg);
  const auto chain_report = simulate(f.system, chain, f.pairs, s2, cfg);
  EXPECT_LT(star_report.avg_percent_error, chain_report.avg_percent_error);
}

TEST(SimFailures, ReplicatedDeliveryMasksFailure) {
  // Two disjoint trees deliver the same values (SSDP-style): failing a
  // relay in one tree leaves the replica path fresh. Reconstruct the
  // "effective" error as min over the two paths per original pair.
  const std::size_t n = 10;
  SystemModel system(n, 1e6, kCost);
  system.set_collector_capacity(1e9);
  PairSet pairs(n + 1);
  for (NodeId id = 1; id <= n; ++id) {
    system.set_observable(id, {0, 1});  // attr 1 is the alias of attr 0
    pairs.add(id, 0);
    pairs.add(id, 1);
  }
  PlannerOptions o;
  o.conflicts.forbid(0, 1);
  o.tree.scheme = TreeScheme::kChain;  // deep: failures hurt
  const Topology topo = Planner(system, o).plan(pairs);
  const Partition p = topo.partition();
  ASSERT_NE(p.set_of(0), p.set_of(1));

  // MirroredSource: alias reads the same ground truth as the original.
  class MirroredSource : public ValueSource {
   public:
    explicit MirroredSource(const PairSet& pairs) : inner_(pairs, 5, 100.0, 3.0) {}
    void advance(std::uint64_t e) override { inner_.advance(e); }
    double value(NodeId node, AttrId attr) const override {
      return inner_.value(node, 0) * (attr == 1 ? 1.0 : 1.0);
    }

   private:
    RandomWalkSource inner_;
  } source(pairs);

  SimConfig cfg;
  cfg.epochs = 120;
  cfg.warmup = 30;
  cfg.collect_pair_errors = true;
  // Fail a deep relay of the attr-0 tree.
  const auto& t0 = topo.entries()[p.set_of(0) < topo.entries().size() &&
                                          topo.entries()[0].attrs ==
                                              std::vector<AttrId>{0}
                                      ? 0
                                      : 1]
                       .tree;
  NodeId victim = kNoNode;
  for (NodeId m : t0.members())
    if (t0.depth(m) == 2) victim = m;
  ASSERT_NE(victim, kNoNode);
  cfg.failures = {{victim, 40, std::numeric_limits<std::uint64_t>::max()}};
  const auto report = simulate(system, topo, pairs, source, cfg);
  ASSERT_EQ(report.pair_mean_error.size(), pairs.total_pairs());

  const auto all = pairs.all_pairs();
  double single_path_err = 0.0, replicated_err = 0.0;
  for (NodeId id = 1; id <= n; ++id) {
    if (id == victim) continue;  // the victim observes nothing while down
    double e0 = 0.0, e1 = 0.0;
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (all[i].node != id) continue;
      (all[i].attr == 0 ? e0 : e1) = report.pair_mean_error[i];
    }
    single_path_err += e0;
    replicated_err += std::min(e0, e1);  // a consumer reads the fresher copy
  }
  EXPECT_LT(replicated_err, single_path_err);
}

}  // namespace
}  // namespace remo
