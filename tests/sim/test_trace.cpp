#include "sim/trace.h"

#include <gtest/gtest.h>

#include "planner/planner.h"
#include "sim/simulator.h"

namespace remo {
namespace {

TEST(Trace, AddAndLookup) {
  Trace t;
  t.add({1, 0}, 5, 10.0);
  t.add({1, 0}, 8, 20.0);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.last_epoch(), 8u);
  EXPECT_FALSE(t.value_at({1, 0}, 4).has_value());  // before first sample
  EXPECT_DOUBLE_EQ(t.value_at({1, 0}, 5).value(), 10.0);
  EXPECT_DOUBLE_EQ(t.value_at({1, 0}, 7).value(), 10.0);  // holds
  EXPECT_DOUBLE_EQ(t.value_at({1, 0}, 8).value(), 20.0);
  EXPECT_DOUBLE_EQ(t.value_at({1, 0}, 100).value(), 20.0);
  EXPECT_FALSE(t.value_at({2, 0}, 8).has_value());  // unknown pair
}

TEST(Trace, SameEpochOverwrites) {
  Trace t;
  t.add({1, 0}, 5, 10.0);
  t.add({1, 0}, 5, 12.0);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_DOUBLE_EQ(t.value_at({1, 0}, 5).value(), 12.0);
}

TEST(Trace, SerializeParseRoundTrip) {
  Trace t;
  t.add({1, 0}, 0, 1.5);
  t.add({1, 0}, 3, 2.25);
  t.add({7, 4}, 1, -3.125);
  const auto parsed = Trace::parse(t.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, t);
}

TEST(Trace, ParseAcceptsCommentsAndBlanks) {
  const auto t = Trace::parse("# header\n\n1 2 3 4.5\n  # indented comment\n");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->size(), 1u);
  EXPECT_DOUBLE_EQ(t->value_at({2, 3}, 1).value(), 4.5);
}

TEST(Trace, ParseRejectsMalformedLines) {
  std::string error;
  EXPECT_FALSE(Trace::parse("1 2 3\n", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(Trace::parse("1 2 3 4.5 extra\n", &error).has_value());
  EXPECT_FALSE(Trace::parse("1 2 nonsense 4\n", &error).has_value());
}

TEST(Trace, RecordingSourceCapturesInnerStream) {
  PairSet pairs(3);
  pairs.add(1, 0);
  pairs.add(2, 0);
  RandomWalkSource inner(pairs, 7, 100.0, 2.0);
  RecordingSource rec(inner, pairs);
  for (std::uint64_t e = 0; e < 10; ++e) {
    rec.advance(e);
    EXPECT_DOUBLE_EQ(rec.value(1, 0), inner.value(1, 0));
  }
  EXPECT_EQ(rec.trace().size(), 20u);  // 2 pairs x 10 epochs
}

TEST(Trace, ReplayReproducesSimulationExactly) {
  // Record a run, replay the trace: the simulator must report identical
  // error statistics — the property that makes cross-scheme comparisons
  // on one captured workload sound.
  const CostModel cost{10.0, 1.0};
  SystemModel system(10, 200.0, cost);
  system.set_collector_capacity(800.0);
  PairSet pairs(11);
  for (NodeId n = 1; n <= 10; ++n) {
    system.set_observable(n, {0, 1});
    pairs.add(n, 0);
    pairs.add(n, 1);
  }
  const Topology topo = Planner(system, PlannerOptions{}).plan(pairs);

  RandomWalkSource live(pairs, 11, 100.0, 3.0);
  RecordingSource recorder(live, pairs);
  SimConfig cfg;
  cfg.epochs = 50;
  cfg.warmup = 10;
  const auto original = simulate(system, topo, pairs, recorder, cfg);

  // Round-trip the trace through text to cover serialization too.
  auto parsed = Trace::parse(recorder.trace().serialize());
  ASSERT_TRUE(parsed.has_value());
  TraceSource replay(std::move(*parsed));
  const auto replayed = simulate(system, topo, pairs, replay, cfg);

  EXPECT_DOUBLE_EQ(replayed.avg_percent_error, original.avg_percent_error);
  EXPECT_EQ(replayed.values_sent, original.values_sent);
  EXPECT_EQ(replayed.messages_sent, original.messages_sent);
}

}  // namespace
}  // namespace remo
