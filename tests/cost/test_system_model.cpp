#include "cost/system_model.h"

#include <gtest/gtest.h>

#include "common/sorted_vector.h"

namespace remo {
namespace {

TEST(SystemModel, ConstructionBasics) {
  SystemModel s(10, 50.0);
  EXPECT_EQ(s.num_nodes(), 10u);
  EXPECT_EQ(s.num_vertices(), 11u);
  for (NodeId n = 0; n <= 10; ++n) EXPECT_DOUBLE_EQ(s.capacity(n), 50.0);
}

TEST(SystemModel, ZeroNodesRejected) {
  EXPECT_THROW(SystemModel(0, 1.0), std::invalid_argument);
}

TEST(SystemModel, CapacitySetters) {
  SystemModel s(3, 10.0);
  s.set_capacity(2, 99.0);
  s.set_collector_capacity(500.0);
  EXPECT_DOUBLE_EQ(s.capacity(2), 99.0);
  EXPECT_DOUBLE_EQ(s.capacity(kCollectorId), 500.0);
  EXPECT_DOUBLE_EQ(s.capacity(1), 10.0);
}

TEST(SystemModel, ObservableSortedAndDeduped) {
  SystemModel s(2, 10.0);
  s.set_observable(1, {5, 1, 5, 3});
  EXPECT_EQ(s.observable(1), (std::vector<AttrId>{1, 3, 5}));
  EXPECT_TRUE(s.observes(1, 3));
  EXPECT_FALSE(s.observes(1, 2));
  EXPECT_FALSE(s.observes(2, 3));
}

TEST(SystemModel, MonitoringNodesExcludeCollector) {
  SystemModel s(4, 10.0);
  const auto nodes = s.monitoring_nodes();
  EXPECT_EQ(nodes, (std::vector<NodeId>{1, 2, 3, 4}));
}

TEST(SystemModel, RandomAttributeAssignment) {
  SystemModel s(50, 10.0);
  Rng rng{21};
  s.assign_random_attributes(30, 8, rng);
  for (NodeId n = 1; n <= 50; ++n) {
    const auto& attrs = s.observable(n);
    EXPECT_EQ(attrs.size(), 8u);
    EXPECT_TRUE(is_sorted_unique(attrs));
    for (AttrId a : attrs) EXPECT_LT(a, 30u);
  }
  EXPECT_TRUE(s.observable(kCollectorId).empty());
}

TEST(SystemModel, AttrsPerNodeClampedToUniverse) {
  SystemModel s(3, 10.0);
  Rng rng{21};
  s.assign_random_attributes(5, 50, rng);
  for (NodeId n = 1; n <= 3; ++n) EXPECT_EQ(s.observable(n).size(), 5u);
}

TEST(SystemModel, PerturbCapacitiesStaysInBand) {
  SystemModel s(20, 100.0);
  Rng rng{33};
  s.perturb_capacities(0.5, 1.5, rng);
  bool changed = false;
  for (NodeId n = 1; n <= 20; ++n) {
    EXPECT_GE(s.capacity(n), 50.0 - 1e-9);
    EXPECT_LE(s.capacity(n), 150.0 + 1e-9);
    changed |= s.capacity(n) != 100.0;
  }
  EXPECT_TRUE(changed);
  EXPECT_DOUBLE_EQ(s.capacity(kCollectorId), 100.0);  // collector untouched
}

}  // namespace
}  // namespace remo
