#include "cost/cost_model.h"

#include <gtest/gtest.h>

namespace remo {
namespace {

TEST(CostModel, MessageCostIsAffine) {
  CostModel m{10.0, 0.5};
  EXPECT_DOUBLE_EQ(m.message_cost(0), 10.0);
  EXPECT_DOUBLE_EQ(m.message_cost(1), 10.5);
  EXPECT_DOUBLE_EQ(m.message_cost(100), 60.0);
}

TEST(CostModel, EmptyMessageStillCostsOverhead) {
  // The core observation of Fig. 2: overhead is per message, not per value.
  CostModel m{78.0, 4.0};  // TCP/IP header vs integer payload (Sec. 2.3)
  EXPECT_DOUBLE_EQ(m.message_cost(0), 78.0);
  EXPECT_GT(m.message_cost(0), 0.0);
}

TEST(CostModel, OverheadRatio) {
  EXPECT_DOUBLE_EQ((CostModel{20.0, 1.0}.overhead_ratio()), 20.0);
  EXPECT_DOUBLE_EQ((CostModel{10.0, 4.0}.overhead_ratio()), 2.5);
  EXPECT_DOUBLE_EQ((CostModel{10.0, 0.0}.overhead_ratio()), 0.0);
}

TEST(CostModel, BatchingAmortizesOverhead) {
  // One message with 2x values is cheaper than two messages with x each —
  // the whole reason merging trees helps (Sec. 1).
  CostModel m{20.0, 1.0};
  for (std::size_t x : {1u, 10u, 100u})
    EXPECT_LT(m.message_cost(2 * x), 2 * m.message_cost(x));
}

TEST(CostModel, ValuesForOverheadFraction) {
  CostModel m{20.0, 1.0};
  // At x values, overhead fraction = C / (C + a·x); solve for 50%: x = 20.
  EXPECT_DOUBLE_EQ(m.values_for_overhead_fraction(0.5), 20.0);
  const double x10 = m.values_for_overhead_fraction(0.1);
  EXPECT_NEAR(m.per_message / m.message_cost(static_cast<std::size_t>(x10)), 0.1,
              1e-3);
}

TEST(CostModelDeathTest, NegativeParametersRejectedWithQuantities) {
  // The contract prints the violated quantity, not just the expression
  // (common/check.h; DESIGN.md §11).
  EXPECT_DEATH((CostModel{-1.0, 1.0}), "per-message overhead C=-1");
  EXPECT_DEATH((CostModel{20.0, -0.5}), "per-value cost a=-0.5");
}

TEST(CostModelDeathTest, OverheadFractionDomainChecked) {
  const CostModel m{20.0, 1.0};
  EXPECT_DEATH((void)m.values_for_overhead_fraction(0.0),
               "overhead fraction=0 outside \\(0, 1\\]");
  EXPECT_DEATH((void)m.values_for_overhead_fraction(1.5),
               "overhead fraction=1.5 outside \\(0, 1\\]");
  const CostModel free_values{20.0, 0.0};
  EXPECT_DEATH((void)free_values.values_for_overhead_fraction(0.5),
               "fraction undefined for a free value");
}

TEST(CostModel, PaperCalibration) {
  // Fig. 2 reports ~6% root CPU at 16 messages and ~68% at 256: linear in
  // message count. Calibrate C to the 16-node point and check the
  // 256-node prediction lands near the measurement.
  const double c = 6.0 / 16.0;  // % CPU per message
  CostModel m{c, (1.4 - 0.2) / 255.0};
  const double predicted_256 = 256 * m.per_message;
  EXPECT_NEAR(predicted_256, 68.0, 68.0 * 0.45);
}

}  // namespace
}  // namespace remo
