#include "streamapp/stream_app.h"

#include <gtest/gtest.h>

#include <cmath>

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

TEST(StreamApp, RegistersObservablesOnHostNodes) {
  SystemModel system(20, 100.0, kCost);
  StreamApplication app(system, StreamAppConfig{}, 1);
  std::size_t observers = 0;
  for (NodeId n = 1; n <= 20; ++n) observers += !system.observable(n).empty();
  EXPECT_EQ(observers, 20u);  // 200 operators over 20 nodes: all host some
  for (NodeId n = 1; n <= 20; ++n)
    for (AttrId a : system.observable(n)) EXPECT_LT(a, app.attr_universe());
}

TEST(StreamApp, AttrUniverseMatchesConfig) {
  SystemModel system(10, 100.0, kCost);
  StreamAppConfig cfg;
  cfg.num_classes = 4;
  StreamApplication app(system, cfg, 2);
  EXPECT_EQ(app.attr_universe(), 4u * StreamApplication::kMetricsPerOperator);
}

TEST(StreamApp, ObservedValuesAreFiniteAndNonNegative) {
  SystemModel system(15, 100.0, kCost);
  StreamApplication app(system, StreamAppConfig{}, 3);
  for (int e = 0; e < 50; ++e) {
    app.advance(e);
    for (NodeId n = 1; n <= 15; ++n)
      for (AttrId a : system.observable(n)) {
        const double v = app.value(n, a);
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_GE(v, 0.0);
      }
  }
}

TEST(StreamApp, UnobservedPairReadsZero) {
  SystemModel system(5, 100.0, kCost);
  StreamApplication app(system, StreamAppConfig{}, 4);
  EXPECT_DOUBLE_EQ(app.value(1, 9999), 0.0);
}

TEST(StreamApp, LoadPropagatesDownstream) {
  // Downstream (non-source) operators must see traffic: pick any node
  // exposing an in-rate attribute and require a positive reading after the
  // pipeline warms up.
  SystemModel system(20, 100.0, kCost);
  StreamApplication app(system, StreamAppConfig{}, 5);
  for (int e = 0; e < 20; ++e) app.advance(e);
  double total_in = 0.0;
  for (NodeId n = 1; n <= 20; ++n)
    for (AttrId a : system.observable(n))
      if (a % StreamApplication::kMetricsPerOperator == StreamApplication::kInRate)
        total_in += app.value(n, a);
  EXPECT_GT(total_in, 0.0);
}

TEST(StreamApp, BurstsMakeValuesVolatile) {
  SystemModel system(20, 100.0, kCost);
  StreamAppConfig cfg;
  cfg.burst_probability = 0.2;
  cfg.burst_magnitude = 4.0;
  StreamApplication app(system, cfg, 6);
  // Track one in-rate attribute over time; its range must be wide.
  NodeId node = 0;
  AttrId attr = 0;
  for (NodeId n = 1; n <= 20 && node == 0; ++n)
    for (AttrId a : system.observable(n))
      if (a % StreamApplication::kMetricsPerOperator ==
          StreamApplication::kInRate) {
        node = n;
        attr = a;
        break;
      }
  ASSERT_NE(node, 0u);
  double lo = 1e18, hi = -1e18;
  for (int e = 0; e < 300; ++e) {
    app.advance(e);
    const double v = app.value(node, attr);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi, lo * 1.3);
}

TEST(StreamApp, DeterministicForSeed) {
  SystemModel s1(10, 100.0, kCost), s2(10, 100.0, kCost);
  StreamApplication a(s1, StreamAppConfig{}, 7), b(s2, StreamAppConfig{}, 7);
  for (int e = 0; e < 10; ++e) {
    a.advance(e);
    b.advance(e);
  }
  for (NodeId n = 1; n <= 10; ++n) {
    ASSERT_EQ(s1.observable(n), s2.observable(n));
    for (AttrId attr : s1.observable(n))
      EXPECT_DOUBLE_EQ(a.value(n, attr), b.value(n, attr));
  }
}

TEST(StreamApp, UtilizationMetricBounded) {
  SystemModel system(10, 100.0, kCost);
  StreamApplication app(system, StreamAppConfig{}, 8);
  for (int e = 0; e < 30; ++e) app.advance(e);
  for (NodeId n = 1; n <= 10; ++n) {
    for (AttrId a : system.observable(n)) {
      if (a % StreamApplication::kMetricsPerOperator ==
          StreamApplication::kUtilization) {
        EXPECT_LE(app.value(n, a), 100.0 + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace remo
