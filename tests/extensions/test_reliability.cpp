#include "extensions/reliability.h"

#include <gtest/gtest.h>

#include "planner/planner.h"
#include "task/task_manager.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

MonitoringTask ssdp_task(std::vector<AttrId> attrs, std::vector<NodeId> nodes,
                         std::uint32_t replicas = 2) {
  MonitoringTask t;
  t.attrs = std::move(attrs);
  t.nodes = std::move(nodes);
  t.reliability = ReliabilityMode::kSSDP;
  t.replicas = replicas;
  return t;
}

TEST(Reliability, PassThroughForPlainTasks) {
  ReliabilityRewriter rw(1000);
  MonitoringTask t;
  t.attrs = {1};
  t.nodes = {1, 2};
  const auto r = rw.rewrite({t});
  ASSERT_EQ(r.tasks.size(), 1u);
  EXPECT_TRUE(r.conflicts.empty());
  EXPECT_TRUE(r.alias_of.empty());
}

TEST(Reliability, SsdpCreatesAliasReplicas) {
  ReliabilityRewriter rw(1000);
  const auto r = rw.rewrite({ssdp_task({1, 2}, {1, 2, 3}, 2)});
  ASSERT_EQ(r.tasks.size(), 2u);
  EXPECT_EQ(r.tasks[0].attrs, (std::vector<AttrId>{1, 2}));
  // Replica task collects aliases from the same nodes.
  EXPECT_EQ(r.tasks[1].nodes, r.tasks[0].nodes);
  EXPECT_EQ(r.tasks[1].attrs.size(), 2u);
  for (AttrId a : r.tasks[1].attrs) {
    EXPECT_GE(a, 1000u);
    EXPECT_TRUE(r.alias_of.count(a));
  }
}

TEST(Reliability, SsdpConflictsForbidSameTree) {
  ReliabilityRewriter rw(1000);
  const auto r = rw.rewrite({ssdp_task({1}, {1, 2}, 3)});
  ASSERT_EQ(r.tasks.size(), 3u);
  // Original + 2 aliases: all 3 pairwise conflicting -> 3 pairs.
  EXPECT_EQ(r.conflicts.size(), 3u);
  const AttrId a1 = r.tasks[1].attrs[0];
  const AttrId a2 = r.tasks[2].attrs[0];
  EXPECT_TRUE(r.conflicts.conflicts(1, a1));
  EXPECT_TRUE(r.conflicts.conflicts(1, a2));
  EXPECT_TRUE(r.conflicts.conflicts(a1, a2));
}

TEST(Reliability, DsdpDrawsDistinctSources) {
  ReliabilityRewriter rw(1000);
  MonitoringTask t;
  t.attrs = {7};
  t.reliability = ReliabilityMode::kDSDP;
  t.replicas = 2;
  t.identical_groups = {{1, 2}, {3, 4}, {5, 6}};
  const auto r = rw.rewrite({t});
  ASSERT_EQ(r.tasks.size(), 2u);
  EXPECT_EQ(r.tasks[0].nodes, (std::vector<NodeId>{1, 3, 5}));
  EXPECT_EQ(r.tasks[1].nodes, (std::vector<NodeId>{2, 4, 6}));
  EXPECT_EQ(r.tasks[0].attrs, (std::vector<AttrId>{7}));
  EXPECT_NE(r.tasks[1].attrs[0], 7u);  // alias
  EXPECT_TRUE(r.conflicts.conflicts(7, r.tasks[1].attrs[0]));
}

TEST(Reliability, DsdpReplicasBoundedByMinGroup) {
  ReliabilityRewriter rw(1000);
  MonitoringTask t;
  t.attrs = {7};
  t.reliability = ReliabilityMode::kDSDP;
  t.replicas = 5;
  t.identical_groups = {{1, 2, 3}, {4, 5}};  // k = 2
  EXPECT_EQ(rw.rewrite({t}).tasks.size(), 2u);
}

TEST(Reliability, DsdpWithoutGroupsDegradesGracefully) {
  ReliabilityRewriter rw(1000);
  MonitoringTask t;
  t.attrs = {7};
  t.nodes = {1};
  t.reliability = ReliabilityMode::kDSDP;
  const auto r = rw.rewrite({t});
  ASSERT_EQ(r.tasks.size(), 1u);
  EXPECT_EQ(r.tasks[0].reliability, ReliabilityMode::kNone);
}

TEST(Reliability, RegisterAliasesExtendsObservability) {
  SystemModel system(3, 100.0, kCost);
  system.set_observable(1, {1});
  system.set_observable(2, {2});
  std::unordered_map<AttrId, AttrId> aliases{{1000, 1}};
  ReliabilityRewriter::register_aliases(system, aliases);
  EXPECT_TRUE(system.observes(1, 1000));
  EXPECT_FALSE(system.observes(2, 1000));
}

TEST(Reliability, EndToEndSsdpPlanUsesDisjointPaths) {
  // Full pipeline: rewrite -> register aliases -> dedup -> plan. Every
  // attribute and its alias must land in different trees.
  SystemModel system(12, 300.0, kCost);
  system.set_collector_capacity(600.0);
  for (NodeId n = 1; n <= 12; ++n) system.set_observable(n, {1, 2});
  ReliabilityRewriter rw(1000);
  std::vector<NodeId> all_nodes;
  for (NodeId n = 1; n <= 12; ++n) all_nodes.push_back(n);
  const auto r = rw.rewrite({ssdp_task({1, 2}, all_nodes, 2)});
  ReliabilityRewriter::register_aliases(system, r.alias_of);

  TaskManager manager(&system);
  for (auto t : r.tasks) manager.add_task(std::move(t));
  const PairSet pairs = manager.dedup(system.num_vertices());
  EXPECT_EQ(pairs.total_pairs(), 12u * 4u);  // 2 attrs x 2 copies x 12 nodes

  PlannerOptions o;
  o.conflicts = r.conflicts;
  Planner planner(system, o);
  const auto topo = planner.plan(pairs);
  const Partition p = topo.partition();
  for (const auto& [alias, orig] : r.alias_of)
    EXPECT_NE(p.set_of(alias), p.set_of(orig));
  EXPECT_TRUE(topo.validate(system));
}

}  // namespace
}  // namespace remo
