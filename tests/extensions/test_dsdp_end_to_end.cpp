// DSDP (different sources, different paths) end-to-end: nodes sharing
// storage observe the same metric value; the rewriter draws disjoint
// source sets per replica, the planner keeps the replicas on disjoint
// trees, and under a source-node failure the replica path still delivers
// the (identical) value.
#include <gtest/gtest.h>

#include "extensions/reliability.h"
#include "planner/planner.h"
#include "sim/simulator.h"
#include "task/task_manager.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

TEST(DsdpEndToEnd, ReplicaPathSurvivesSourceFailure) {
  // 4 storage groups, 3 nodes each (nodes 1-12); every node in a group
  // observes the same shared-storage metric (attr 7).
  SystemModel system(12, 300.0, kCost);
  system.set_collector_capacity(600.0);
  for (NodeId n = 1; n <= 12; ++n) system.set_observable(n, {7});

  MonitoringTask t;
  t.attrs = {7};
  t.reliability = ReliabilityMode::kDSDP;
  t.replicas = 2;
  t.identical_groups = {{1, 2, 3}, {4, 5, 6}, {7, 8, 9}, {10, 11, 12}};

  ReliabilityRewriter rewriter(1000);
  auto rewritten = rewriter.rewrite({t});
  ReliabilityRewriter::register_aliases(system, rewritten.alias_of);
  ASSERT_EQ(rewritten.tasks.size(), 2u);
  // Replica source sets are disjoint (one member per group each).
  EXPECT_EQ(rewritten.tasks[0].nodes, (std::vector<NodeId>{1, 4, 7, 10}));
  EXPECT_EQ(rewritten.tasks[1].nodes, (std::vector<NodeId>{2, 5, 8, 11}));

  TaskManager manager(&system);
  for (auto task : rewritten.tasks) manager.add_task(std::move(task));
  const PairSet pairs = manager.dedup(system.num_vertices());
  ASSERT_EQ(pairs.total_pairs(), 8u);

  PlannerOptions o;
  o.conflicts = rewritten.conflicts;
  const Topology topo = Planner(system, o).plan(pairs);
  const Partition p = topo.partition();
  const AttrId alias = rewritten.tasks[1].attrs[0];
  ASSERT_NE(p.set_of(7), p.set_of(alias));
  EXPECT_DOUBLE_EQ(topo.coverage(), 1.0);

  // Shared-storage semantics: every node in a group reads the same value.
  class GroupSource : public ValueSource {
   public:
    void advance(std::uint64_t epoch) override { epoch_ = epoch; }
    double value(NodeId node, AttrId) const override {
      const double group = static_cast<double>((node - 1) / 3);
      return 100.0 + 10.0 * group + static_cast<double>(epoch_);
    }

   private:
    std::uint64_t epoch_ = 0;
  } source;

  // Fail the primary source of group 0 (node 1) mid-run.
  SimConfig cfg;
  cfg.epochs = 80;
  cfg.warmup = 20;
  cfg.collect_pair_errors = true;
  cfg.failures = {{1, 30, std::numeric_limits<std::uint64_t>::max()}};
  const auto report = simulate(system, topo, pairs, source, cfg);

  const auto all = pairs.all_pairs();
  double primary_err = -1.0, replica_err = -1.0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i].node == 1 && all[i].attr == 7) primary_err = report.pair_mean_error[i];
    if (all[i].node == 2 && all[i].attr == alias)
      replica_err = report.pair_mean_error[i];
  }
  ASSERT_GE(primary_err, 0.0);
  ASSERT_GE(replica_err, 0.0);
  // The failed primary's view drifts; the replica (same ground truth,
  // different source and path) stays fresh: a consumer reading the
  // group-0 value through the replica sees (near) zero error.
  EXPECT_GT(primary_err, 10.0);
  EXPECT_LT(replica_err, 3.0);
}

}  // namespace
}  // namespace remo
