#include "extensions/attr_spec_derivation.h"

#include <gtest/gtest.h>

#include "planner/planner.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

MonitoringTask task(std::vector<AttrId> attrs, std::vector<NodeId> nodes,
                    AggType agg = AggType::kHolistic, double freq = 1.0) {
  MonitoringTask t;
  t.attrs = std::move(attrs);
  t.nodes = std::move(nodes);
  t.aggregation = agg;
  t.frequency = freq;
  return t;
}

TEST(AttrSpecTable, DefaultsAreHolisticWeightOne) {
  AttrSpecTable s;
  EXPECT_EQ(s.funnel(42).type(), AggType::kHolistic);
  EXPECT_DOUBLE_EQ(s.weight(42), 1.0);
  EXPECT_TRUE(s.empty());
}

TEST(AttrSpecTable, TreeSpecCombinesBoth) {
  AttrSpecTable s;
  s.set_funnel(1, FunnelSpec{AggType::kMax});
  s.set_weight(1, 0.25);
  const auto spec = s.tree_spec(1);
  EXPECT_EQ(spec.attr, 1u);
  EXPECT_EQ(spec.funnel.type(), AggType::kMax);
  EXPECT_DOUBLE_EQ(spec.weight, 0.25);
}

TEST(DeriveAttrSpecs, AggregationAgreementProducesFunnel) {
  TaskManager m;
  m.add_task(task({1}, {1, 2}, AggType::kMax));
  m.add_task(task({1}, {3}, AggType::kMax));
  const auto specs = derive_attr_specs(m, true, false);
  EXPECT_EQ(specs.funnel(1).type(), AggType::kMax);
}

TEST(DeriveAttrSpecs, AggregationDisagreementFallsBackToHolistic) {
  TaskManager m;
  m.add_task(task({1}, {1}, AggType::kMax));
  m.add_task(task({1}, {2}, AggType::kSum));
  const auto specs = derive_attr_specs(m, true, false);
  EXPECT_EQ(specs.funnel(1).type(), AggType::kHolistic);
}

TEST(DeriveAttrSpecs, TopKWithDifferentKConflicts) {
  TaskManager m;
  MonitoringTask a = task({1}, {1}, AggType::kTopK);
  a.top_k = 5;
  MonitoringTask b = task({1}, {2}, AggType::kTopK);
  b.top_k = 10;
  m.add_task(a);
  m.add_task(b);
  EXPECT_EQ(derive_attr_specs(m, true, false).funnel(1).type(),
            AggType::kHolistic);
}

TEST(DeriveAttrSpecs, AggregationAwarenessOffIgnoresFunnels) {
  TaskManager m;
  m.add_task(task({1}, {1}, AggType::kMax));
  EXPECT_EQ(derive_attr_specs(m, false, false).funnel(1).type(),
            AggType::kHolistic);
}

TEST(DeriveAttrSpecs, FrequencyWeightsAreRelativeToFastest) {
  TaskManager m;
  m.add_task(task({1}, {1}, AggType::kHolistic, 1.0));
  m.add_task(task({2}, {1}, AggType::kHolistic, 0.25));
  const auto specs = derive_attr_specs(m, false, true);
  EXPECT_DOUBLE_EQ(specs.weight(1), 1.0);
  EXPECT_DOUBLE_EQ(specs.weight(2), 0.25);
}

TEST(DeriveAttrSpecs, SharedAttrTakesFastestFrequency) {
  TaskManager m;
  m.add_task(task({1}, {1}, AggType::kHolistic, 0.25));
  m.add_task(task({1}, {2}, AggType::kHolistic, 1.0));
  EXPECT_DOUBLE_EQ(derive_attr_specs(m, false, true).weight(1), 1.0);
}

TEST(DeriveAttrSpecs, AggregationAwarePlanningCollectsMore) {
  // MAX aggregation collapses relayed payload, so an aggregation-aware
  // plan fits more pairs under the same capacities (Fig. 12a's mechanism).
  SystemModel system(40, 40.0, kCost);
  system.set_collector_capacity(70.0);
  TaskManager manager(&system, /*filter_observable=*/false);
  std::vector<NodeId> nodes;
  for (NodeId n = 1; n <= 40; ++n) nodes.push_back(n);
  manager.add_task(task({1, 2}, nodes, AggType::kMax));
  const PairSet pairs = manager.dedup(system.num_vertices());

  PlannerOptions plain;
  PlannerOptions aware;
  aware.attr_specs = derive_attr_specs(manager, true, false);
  const auto plain_topo = Planner(system, plain).plan(pairs);
  const auto aware_topo = Planner(system, aware).plan(pairs);
  EXPECT_GT(aware_topo.collected_pairs(), plain_topo.collected_pairs());
  EXPECT_TRUE(aware_topo.validate(system));
}

TEST(DeriveAttrSpecs, FrequencyAwarePlanningCollectsMore) {
  // Half-rate attributes cost half the payload; the aware planner can pack
  // more of them per tree.
  SystemModel system(40, 36.0, kCost);
  system.set_collector_capacity(60.0);
  TaskManager manager(&system, /*filter_observable=*/false);
  std::vector<NodeId> nodes;
  for (NodeId n = 1; n <= 40; ++n) nodes.push_back(n);
  manager.add_task(task({1}, nodes, AggType::kHolistic, 1.0));
  manager.add_task(task({2, 3}, nodes, AggType::kHolistic, 0.25));
  const PairSet pairs = manager.dedup(system.num_vertices());

  PlannerOptions plain;
  PlannerOptions aware;
  aware.attr_specs = derive_attr_specs(manager, false, true);
  const auto plain_topo = Planner(system, plain).plan(pairs);
  const auto aware_topo = Planner(system, aware).plan(pairs);
  EXPECT_GE(aware_topo.collected_pairs(), plain_topo.collected_pairs());
  EXPECT_TRUE(aware_topo.validate(system));
}

}  // namespace
}  // namespace remo
