#!/usr/bin/env python3
"""Self-test fixtures for tools/remo_lint.py.

Each rule gets a known-bad snippet (must be flagged) and a known-good
twin (must pass), plus coverage of the suppression mechanics. Run by the
`lint.self_test` ctest entry and the CI lint job; a lint change that
silently stops catching a class of bug fails here first.
"""

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))
import remo_lint  # noqa: E402


def lint_snippet(code: str, relpath: str = "planner/snippet.cpp"):
    """Lint `code` as if it lived at src/<relpath>; returns rule names."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "src" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(code, encoding="utf-8")
        violations = remo_lint.lint_file(path, Path("src") / relpath)
    return [(v.rule, v.line) for v in violations]


def rules_of(code: str, relpath: str = "planner/snippet.cpp"):
    return [r for r, _ in lint_snippet(code, relpath)]


class UnorderedIterationTest(unittest.TestCase):
    BAD = """
        #include <unordered_set>
        void f() {
          std::unordered_set<int> suspects;
          for (int s : suspects) use(s);
        }
    """

    def test_flags_range_for_over_unordered(self):
        self.assertIn("unordered-iteration", rules_of(self.BAD))

    def test_lookup_only_is_fine(self):
        good = """
            #include <unordered_set>
            void f() {
              std::unordered_set<int> suspects;
              if (suspects.count(3) != 0) act();
            }
        """
        self.assertNotIn("unordered-iteration", rules_of(good))

    def test_sorted_vector_iteration_is_fine(self):
        good = """
            void f() {
              std::vector<int> suspects;
              for (int s : suspects) use(s);
            }
        """
        self.assertNotIn("unordered-iteration", rules_of(good))

    def test_nested_template_args_resolve_declared_name(self):
        bad = """
            void f() {
              std::unordered_map<int, std::vector<std::pair<int, int>>> adj;
              for (auto& kv : adj) use(kv);
            }
        """
        self.assertIn("unordered-iteration", rules_of(bad))

    def test_rule_scoped_to_order_sensitive_dirs(self):
        # Hash iteration outside the planning/tree/adapt/partition/
        # federation paths (e.g. the collector's liveness table) is allowed.
        self.assertNotIn("unordered-iteration",
                         rules_of(self.BAD, relpath="collector/snippet.cpp"))

    def test_service_daemon_paths_are_order_sensitive(self):
        # ISSUE 8 satellite: the daemon's wire stream, snapshot images, and
        # drain order underwrite the daemon-vs-batch bit-identity property;
        # hash iteration in src/service is flagged.
        self.assertIn("unordered-iteration",
                      rules_of(self.BAD, relpath="service/snippet.cpp"))
        good = """
            void emit() {
              std::map<int, double> latest;
              for (auto& kv : latest) use(kv);
            }
        """
        self.assertNotIn("unordered-iteration",
                         rules_of(good, relpath="service/snippet.cpp"))

    def test_federation_routing_paths_are_order_sensitive(self):
        # ISSUE 6 satellite: shard assignment and subtask ordering must be
        # bit-deterministic; hash iteration in src/federation is flagged.
        self.assertIn("unordered-iteration",
                      rules_of(self.BAD, relpath="federation/snippet.cpp"))
        good = """
            void route() {
              std::vector<int> shards;
              for (int s : shards) use(s);
            }
        """
        self.assertNotIn("unordered-iteration",
                         rules_of(good, relpath="federation/snippet.cpp"))


class RawRandomTest(unittest.TestCase):
    def test_flags_std_rand(self):
        self.assertIn("raw-random", rules_of("int x = std::rand();"))

    def test_flags_srand_time(self):
        self.assertIn("raw-random", rules_of("srand(time(nullptr));"))

    def test_rng_header_is_fine(self):
        good = """
            #include "common/rng.h"
            void f() { Rng rng(42); auto x = rng.next(); }
        """
        self.assertEqual(rules_of(good), [])

    def test_identifiers_containing_rand_are_fine(self):
        self.assertEqual(rules_of("int operand = opera.nd(); int x = grand(1);"), [])


class NakedAssertTest(unittest.TestCase):
    def test_flags_assert_call(self):
        self.assertIn("naked-assert", rules_of("void f(int n) { assert(n > 0); }"))

    def test_flags_cassert_include(self):
        self.assertIn("naked-assert", rules_of("#include <cassert>"))

    def test_static_assert_is_fine(self):
        self.assertEqual(rules_of("static_assert(sizeof(int) == 4);"), [])

    def test_remo_assert_is_fine(self):
        good = 'void f(int n) { REMO_ASSERT(n > 0, "n=", n); REMO_DCHECK(n < 9); }'
        self.assertEqual(rules_of(good), [])

    def test_comment_mentions_are_fine(self):
        self.assertEqual(rules_of("// callers assert(ownership) elsewhere"), [])


class SpanStoreTest(unittest.TestCase):
    def test_flags_auto_binding(self):
        bad = "void f() { const auto local = tree.local_counts(n); }"
        self.assertIn("span-store", rules_of(bad))

    def test_flags_span_typed_binding(self):
        bad = "std::span<const std::uint32_t> s = tree.in_counts(n);"
        self.assertIn("span-store", rules_of(bad))

    def test_same_statement_consumption_is_fine(self):
        good = "auto v = vec(tree.in_counts(n));"
        # `vec(...)` copies; the temporary view dies inside the statement.
        self.assertEqual(rules_of(good), [])

    def test_vector_copy_is_fine(self):
        good = "std::vector<std::uint32_t> v(tree.local_counts(n).begin(), tree.local_counts(n).end());"
        self.assertEqual(rules_of(good), [])


class HotAllocTest(unittest.TestCase):
    def test_flags_new_in_hot_function(self):
        bad = """
            // REMO_HOT: inner loop of the build.
            void walk() {
              auto* scratch = new int[64];
              use(scratch);
            }
        """
        self.assertIn("hot-alloc", rules_of(bad))

    def test_flags_malloc_in_hot_function(self):
        bad = """
            // REMO_HOT
            void walk() { void* p = malloc(64); }
        """
        self.assertIn("hot-alloc", rules_of(bad))

    def test_allocation_outside_hot_function_is_fine(self):
        good = """
            void setup() { auto p = std::make_unique<int>(1); }
            // REMO_HOT
            void walk() { use(); }
            void teardown() { auto* q = new int(2); delete q; }
        """
        self.assertEqual(rules_of(good), [])

    def test_word_new_in_comment_is_fine(self):
        good = """
            // REMO_HOT
            void walk() {
              // appends the new parent to the scratch ring
              use();
            }
        """
        self.assertEqual(rules_of(good), [])


class HotSlotLookupTest(unittest.TestCase):
    def test_flags_slot_of_in_hot_function(self):
        bad = """
            // REMO_HOT: per-hop feasibility on the ancestor chain.
            bool walk(NodeId id) {
              for (Slot q = slot_of(id); q != kNoSlot; q = parent_[q]) use(q);
              return true;
            }
        """
        self.assertIn("hot-slot-lookup", rules_of(bad))

    def test_slot_resolution_outside_hot_function_is_fine(self):
        good = """
            bool prepare(NodeId id) { return slot_of(id) != kNoSlot; }
            // REMO_HOT
            void walk(Slot q) {
              while (q != kNoSlot) q = parent_[q];
            }
        """
        self.assertEqual(rules_of(good), [])

    def test_comment_mention_is_fine(self):
        good = """
            // REMO_HOT
            void walk(Slot q) {
              // callers resolved slot_of(id) before entering the loop
              use(q);
            }
        """
        self.assertEqual(rules_of(good), [])

    def test_allow_with_reason_waives(self):
        code = """
            // REMO_HOT
            bool walk(NodeId id) {
              // remo-lint: allow(hot-slot-lookup) one lookup at entry, not per hop
              const Slot q = slot_of(id);
              return q != kNoSlot;
            }
        """
        self.assertEqual(rules_of(code), [])


class SuppressionTest(unittest.TestCase):
    def test_allow_with_reason_waives_line_below(self):
        code = """
            // remo-lint: allow(span-store) read-only, tree is const here
            const auto local = tree.local_counts(n);
        """
        self.assertEqual(rules_of(code), [])

    def test_allow_with_reason_waives_same_line(self):
        code = ("const auto local = tree.local_counts(n);"
                "  // remo-lint: allow(span-store) consumed this statement group")
        self.assertEqual(rules_of(code), [])

    def test_reasonless_allow_is_itself_flagged(self):
        code = """
            // remo-lint: allow(span-store)
            const auto local = tree.local_counts(n);
        """
        rules = rules_of(code)
        self.assertIn("suppression", rules)
        self.assertIn("span-store", rules)  # the waiver did not take effect

    def test_allow_is_per_rule(self):
        code = """
            // remo-lint: allow(naked-assert) migration staged in next PR
            const auto local = tree.local_counts(n);
        """
        self.assertIn("span-store", rules_of(code))


class CommentAndStringStrippingTest(unittest.TestCase):
    def test_block_comments_are_ignored(self):
        code = """
            /* for (int s : suspects) — historical note
               assert(false) std::rand() */
            void f() {}
        """
        self.assertEqual(rules_of(code), [])

    def test_string_literals_are_ignored(self):
        code = 'const char* msg = "assert(x) failed near std::rand()";'
        self.assertEqual(rules_of(code), [])

    def test_line_numbers_survive_stripping(self):
        code = "// line one\n\nint x = std::rand();\n"
        self.assertEqual(lint_snippet(code), [("raw-random", 3)])


class CliTest(unittest.TestCase):
    def test_exit_zero_on_clean_tree(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = Path(tmp) / "src"
            src.mkdir()
            (src / "ok.cpp").write_text("void f() {}\n", encoding="utf-8")
            self.assertEqual(remo_lint.run([str(src)]), 0)

    def test_exit_one_on_violation(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = Path(tmp) / "src"
            src.mkdir()
            (src / "bad.cpp").write_text("int x = std::rand();\n", encoding="utf-8")
            self.assertEqual(remo_lint.run([str(src)]), 1)

    def test_exit_two_on_missing_path(self):
        self.assertEqual(remo_lint.run(["/nonexistent/remo-lint-path"]), 2)


if __name__ == "__main__":
    unittest.main()
