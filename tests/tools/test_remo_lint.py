#!/usr/bin/env python3
"""Self-test fixtures for tools/remo_lint.py.

Each rule gets a known-bad snippet (must be flagged) and a known-good
twin (must pass), plus coverage of the suppression mechanics. Run by the
`lint.self_test` ctest entry and the CI lint job; a lint change that
silently stops catching a class of bug fails here first.
"""

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))
import remo_lint  # noqa: E402


def lint_snippet(code: str, relpath: str = "planner/snippet.cpp"):
    """Lint `code` as if it lived at src/<relpath>; returns rule names."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "src" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(code, encoding="utf-8")
        violations = remo_lint.lint_file(path, Path("src") / relpath)
    return [(v.rule, v.line) for v in violations]


def rules_of(code: str, relpath: str = "planner/snippet.cpp"):
    return [r for r, _ in lint_snippet(code, relpath)]


class UnorderedIterationTest(unittest.TestCase):
    BAD = """
        #include <unordered_set>
        void f() {
          std::unordered_set<int> suspects;
          for (int s : suspects) use(s);
        }
    """

    def test_flags_range_for_over_unordered(self):
        self.assertIn("unordered-iteration", rules_of(self.BAD))

    def test_lookup_only_is_fine(self):
        good = """
            #include <unordered_set>
            void f() {
              std::unordered_set<int> suspects;
              if (suspects.count(3) != 0) act();
            }
        """
        self.assertNotIn("unordered-iteration", rules_of(good))

    def test_sorted_vector_iteration_is_fine(self):
        good = """
            void f() {
              std::vector<int> suspects;
              for (int s : suspects) use(s);
            }
        """
        self.assertNotIn("unordered-iteration", rules_of(good))

    def test_nested_template_args_resolve_declared_name(self):
        bad = """
            void f() {
              std::unordered_map<int, std::vector<std::pair<int, int>>> adj;
              for (auto& kv : adj) use(kv);
            }
        """
        self.assertIn("unordered-iteration", rules_of(bad))

    def test_rule_scoped_to_order_sensitive_dirs(self):
        # Hash iteration outside the planning/tree/adapt/partition/
        # federation paths (e.g. the collector's liveness table) is allowed.
        self.assertNotIn("unordered-iteration",
                         rules_of(self.BAD, relpath="collector/snippet.cpp"))

    def test_service_daemon_paths_are_order_sensitive(self):
        # ISSUE 8 satellite: the daemon's wire stream, snapshot images, and
        # drain order underwrite the daemon-vs-batch bit-identity property;
        # hash iteration in src/service is flagged.
        self.assertIn("unordered-iteration",
                      rules_of(self.BAD, relpath="service/snippet.cpp"))
        good = """
            void emit() {
              std::map<int, double> latest;
              for (auto& kv : latest) use(kv);
            }
        """
        self.assertNotIn("unordered-iteration",
                         rules_of(good, relpath="service/snippet.cpp"))

    def test_federation_routing_paths_are_order_sensitive(self):
        # ISSUE 6 satellite: shard assignment and subtask ordering must be
        # bit-deterministic; hash iteration in src/federation is flagged.
        self.assertIn("unordered-iteration",
                      rules_of(self.BAD, relpath="federation/snippet.cpp"))
        good = """
            void route() {
              std::vector<int> shards;
              for (int s : shards) use(s);
            }
        """
        self.assertNotIn("unordered-iteration",
                         rules_of(good, relpath="federation/snippet.cpp"))


class RawRandomTest(unittest.TestCase):
    def test_flags_std_rand(self):
        self.assertIn("raw-random", rules_of("int x = std::rand();"))

    def test_flags_srand_time(self):
        self.assertIn("raw-random", rules_of("srand(time(nullptr));"))

    def test_rng_header_is_fine(self):
        good = """
            #include "common/rng.h"
            void f() { Rng rng(42); auto x = rng.next(); }
        """
        self.assertEqual(rules_of(good), [])

    def test_identifiers_containing_rand_are_fine(self):
        self.assertEqual(rules_of("int operand = opera.nd(); int x = grand(1);"), [])


class NakedAssertTest(unittest.TestCase):
    def test_flags_assert_call(self):
        self.assertIn("naked-assert", rules_of("void f(int n) { assert(n > 0); }"))

    def test_flags_cassert_include(self):
        self.assertIn("naked-assert", rules_of("#include <cassert>"))

    def test_static_assert_is_fine(self):
        self.assertEqual(rules_of("static_assert(sizeof(int) == 4);"), [])

    def test_remo_assert_is_fine(self):
        good = 'void f(int n) { REMO_ASSERT(n > 0, "n=", n); REMO_DCHECK(n < 9); }'
        self.assertEqual(rules_of(good), [])

    def test_comment_mentions_are_fine(self):
        self.assertEqual(rules_of("// callers assert(ownership) elsewhere"), [])


class SpanStoreTest(unittest.TestCase):
    def test_flags_auto_binding(self):
        bad = "void f() { const auto local = tree.local_counts(n); }"
        self.assertIn("span-store", rules_of(bad))

    def test_flags_span_typed_binding(self):
        bad = "std::span<const std::uint32_t> s = tree.in_counts(n);"
        self.assertIn("span-store", rules_of(bad))

    def test_same_statement_consumption_is_fine(self):
        good = "auto v = vec(tree.in_counts(n));"
        # `vec(...)` copies; the temporary view dies inside the statement.
        self.assertEqual(rules_of(good), [])

    def test_vector_copy_is_fine(self):
        good = "std::vector<std::uint32_t> v(tree.local_counts(n).begin(), tree.local_counts(n).end());"
        self.assertEqual(rules_of(good), [])


class HotAllocTest(unittest.TestCase):
    def test_flags_new_in_hot_function(self):
        bad = """
            // REMO_HOT: inner loop of the build.
            void walk() {
              auto* scratch = new int[64];
              use(scratch);
            }
        """
        self.assertIn("hot-alloc", rules_of(bad))

    def test_flags_malloc_in_hot_function(self):
        bad = """
            // REMO_HOT
            void walk() { void* p = malloc(64); }
        """
        self.assertIn("hot-alloc", rules_of(bad))

    def test_allocation_outside_hot_function_is_fine(self):
        good = """
            void setup() { auto p = std::make_unique<int>(1); }
            // REMO_HOT
            void walk() { use(); }
            void teardown() { auto* q = new int(2); delete q; }
        """
        self.assertEqual(rules_of(good), [])

    def test_word_new_in_comment_is_fine(self):
        good = """
            // REMO_HOT
            void walk() {
              // appends the new parent to the scratch ring
              use();
            }
        """
        self.assertEqual(rules_of(good), [])


class HotSlotLookupTest(unittest.TestCase):
    def test_flags_slot_of_in_hot_function(self):
        bad = """
            // REMO_HOT: per-hop feasibility on the ancestor chain.
            bool walk(NodeId id) {
              for (Slot q = slot_of(id); q != kNoSlot; q = parent_[q]) use(q);
              return true;
            }
        """
        self.assertIn("hot-slot-lookup", rules_of(bad))

    def test_slot_resolution_outside_hot_function_is_fine(self):
        good = """
            bool prepare(NodeId id) { return slot_of(id) != kNoSlot; }
            // REMO_HOT
            void walk(Slot q) {
              while (q != kNoSlot) q = parent_[q];
            }
        """
        self.assertEqual(rules_of(good), [])

    def test_comment_mention_is_fine(self):
        good = """
            // REMO_HOT
            void walk(Slot q) {
              // callers resolved slot_of(id) before entering the loop
              use(q);
            }
        """
        self.assertEqual(rules_of(good), [])

    def test_allow_with_reason_waives(self):
        code = """
            // REMO_HOT
            bool walk(NodeId id) {
              // remo-lint: allow(hot-slot-lookup) one lookup at entry, not per hop
              const Slot q = slot_of(id);
              return q != kNoSlot;
            }
        """
        self.assertEqual(rules_of(code), [])


class RawMutexTest(unittest.TestCase):
    def test_flags_std_mutex_member(self):
        bad = "class Q { mutable std::mutex mutex_; };"
        self.assertIn("raw-mutex", rules_of(bad))

    def test_flags_lock_guard_and_unique_lock(self):
        self.assertIn("raw-mutex",
                      rules_of("std::lock_guard<std::mutex> lock(mutex_);"))
        self.assertIn("raw-mutex",
                      rules_of("std::unique_lock<std::mutex> lock(mutex_);"))

    def test_flags_condition_variable(self):
        self.assertIn("raw-mutex", rules_of("std::condition_variable wake_;"))

    def test_applies_outside_order_sensitive_dirs_too(self):
        # The wrapper mandate covers all of src/ (any raw mutex is a hole
        # in the TSA proof), not just the plan-determinism dirs.
        self.assertIn("raw-mutex",
                      rules_of("std::mutex m;", relpath="collector/snippet.cpp"))

    def test_remo_wrappers_are_fine(self):
        good = """
            #include "common/mutex.h"
            class Q {
              void f() { MutexLock lock(mutex_); ++x_; }
              mutable Mutex mutex_;
              int x_ REMO_GUARDED_BY(mutex_) = 0;
            };
        """
        self.assertEqual(rules_of(good), [])

    def test_allow_with_reason_waives(self):
        code = """
            // remo-lint: allow(raw-mutex) interop with a C library callback
            std::mutex legacy_handle_lock;
        """
        self.assertEqual(rules_of(code), [])


class UnannotatedMutexTest(unittest.TestCase):
    def test_flags_mutex_with_no_guarded_field(self):
        bad = """
            class Q {
              mutable Mutex mutex_;
              int x_ = 0;
            };
        """
        self.assertIn("unannotated-mutex", rules_of(bad))

    def test_guarded_by_anywhere_in_file_satisfies(self):
        good = """
            class Q {
              mutable Mutex mutex_;
              int x_ REMO_GUARDED_BY(mutex_) = 0;
            };
        """
        self.assertEqual(rules_of(good), [])

    def test_pt_guarded_by_also_satisfies(self):
        good = """
            class Q {
              Mutex mu_;
              int* p_ REMO_PT_GUARDED_BY(mu_) = nullptr;
            };
        """
        self.assertEqual(rules_of(good), [])

    def test_reference_member_is_not_a_declaration(self):
        # MutexLock holds `Mutex& mu_;` — a borrowed capability, not a new
        # one; only owning declarations need a guarded field.
        self.assertEqual(rules_of("class L { Mutex& mu_; };"), [])

    def test_allow_with_reason_waives(self):
        code = """
            class Q {
              // remo-lint: allow(unannotated-mutex) pure signaling: pairs
              Mutex wake_mutex_;
            };
        """
        self.assertEqual(rules_of(code), [])


class NakedThreadTest(unittest.TestCase):
    def test_flags_std_thread_member(self):
        self.assertIn("naked-thread",
                      rules_of("std::vector<std::thread> workers_;"))

    def test_flags_detach(self):
        self.assertIn("naked-thread", rules_of("worker.detach();"))

    def test_hardware_concurrency_is_fine(self):
        good = "auto n = std::thread::hardware_concurrency();"
        self.assertEqual(rules_of(good), [])

    def test_this_thread_is_fine(self):
        good = "std::this_thread::sleep_for(std::chrono::seconds(1));"
        self.assertEqual(rules_of(good), [])

    def test_allow_with_reason_waives(self):
        code = """
            // remo-lint: allow(naked-thread) pool workers, joined in dtor
            threads_.emplace_back([this] { worker_loop(); });
            // remo-lint: allow(naked-thread) pool-owned storage
            std::vector<std::thread> threads_;
        """
        self.assertEqual(rules_of(code), [])


class NondetSourceTest(unittest.TestCase):
    def test_flags_system_clock_in_planner(self):
        bad = "auto now = std::chrono::system_clock::now();"
        self.assertIn("nondet-source", rules_of(bad))

    def test_flags_thread_local_in_planner(self):
        bad = "thread_local double best_score = 0.0;"
        self.assertIn("nondet-source", rules_of(bad))

    def test_flags_libc_clock_call(self):
        self.assertIn("nondet-source", rules_of("double t = clock();"))

    def test_steady_clock_duration_measurement_is_fine(self):
        good = "const auto start = std::chrono::steady_clock::now();"
        self.assertEqual(rules_of(good), [])

    def test_scoped_to_order_sensitive_dirs(self):
        # obs/ legitimately keeps a thread_local span stack; collectors may
        # read wall clocks — neither feeds plan scores.
        ok = "thread_local std::vector<LiveSpan> t_live_spans;"
        self.assertNotIn("nondet-source", rules_of(ok, relpath="obs/snippet.cpp"))
        self.assertNotIn("nondet-source",
                         rules_of("auto t = std::chrono::system_clock::now();",
                                  relpath="collector/snippet.cpp"))

    def test_allow_with_reason_waives(self):
        code = """
            // remo-lint: allow(nondet-source) log stamp only, not plan input
            auto wall = std::chrono::system_clock::now();
        """
        self.assertEqual(rules_of(code), [])


class SuppressionTest(unittest.TestCase):
    def test_allow_with_reason_waives_line_below(self):
        code = """
            // remo-lint: allow(span-store) read-only, tree is const here
            const auto local = tree.local_counts(n);
        """
        self.assertEqual(rules_of(code), [])

    def test_allow_with_reason_waives_same_line(self):
        code = ("const auto local = tree.local_counts(n);"
                "  // remo-lint: allow(span-store) consumed this statement group")
        self.assertEqual(rules_of(code), [])

    def test_reasonless_allow_is_itself_flagged(self):
        code = """
            // remo-lint: allow(span-store)
            const auto local = tree.local_counts(n);
        """
        rules = rules_of(code)
        self.assertIn("suppression", rules)
        self.assertIn("span-store", rules)  # the waiver did not take effect

    def test_allow_is_per_rule(self):
        code = """
            // remo-lint: allow(naked-assert) migration staged in next PR
            const auto local = tree.local_counts(n);
        """
        self.assertIn("span-store", rules_of(code))


class CommentAndStringStrippingTest(unittest.TestCase):
    def test_block_comments_are_ignored(self):
        code = """
            /* for (int s : suspects) — historical note
               assert(false) std::rand() */
            void f() {}
        """
        self.assertEqual(rules_of(code), [])

    def test_string_literals_are_ignored(self):
        code = 'const char* msg = "assert(x) failed near std::rand()";'
        self.assertEqual(rules_of(code), [])

    def test_line_numbers_survive_stripping(self):
        code = "// line one\n\nint x = std::rand();\n"
        self.assertEqual(lint_snippet(code), [("raw-random", 3)])


class CliTest(unittest.TestCase):
    def test_exit_zero_on_clean_tree(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = Path(tmp) / "src"
            src.mkdir()
            (src / "ok.cpp").write_text("void f() {}\n", encoding="utf-8")
            self.assertEqual(remo_lint.run([str(src)]), 0)

    def test_exit_one_on_violation(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = Path(tmp) / "src"
            src.mkdir()
            (src / "bad.cpp").write_text("int x = std::rand();\n", encoding="utf-8")
            self.assertEqual(remo_lint.run([str(src)]), 1)

    def test_exit_two_on_missing_path(self):
        self.assertEqual(remo_lint.run(["/nonexistent/remo-lint-path"]), 2)


if __name__ == "__main__":
    unittest.main()
