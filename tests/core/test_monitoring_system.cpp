#include "core/monitoring_system.h"

#include <gtest/gtest.h>

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

SystemModel make_system(std::size_t n = 12, Capacity cap = 150.0) {
  SystemModel s(n, cap, kCost);
  s.set_collector_capacity(600.0);
  for (NodeId id = 1; id <= n; ++id) s.set_observable(id, {0, 1, 2, 3});
  return s;
}

MonitoringTask task(std::vector<AttrId> attrs, std::vector<NodeId> nodes) {
  MonitoringTask t;
  t.attrs = std::move(attrs);
  t.nodes = std::move(nodes);
  return t;
}

TEST(MonitoringSystem, EmptySystemHasEmptyTopology) {
  MonitoringSystem ms(make_system());
  EXPECT_EQ(ms.topology().num_trees(), 0u);
  EXPECT_EQ(ms.status().tasks, 0u);
  EXPECT_DOUBLE_EQ(ms.status().coverage, 1.0);
}

TEST(MonitoringSystem, AddTaskPlansLazily) {
  MonitoringSystem ms(make_system());
  const TaskId id = ms.add_task(task({0, 1}, {1, 2, 3, 4}));
  EXPECT_GT(id, 0u);
  const auto status = ms.status();
  EXPECT_EQ(status.tasks, 1u);
  EXPECT_EQ(status.pairs, 8u);
  EXPECT_EQ(status.collected, 8u);
  EXPECT_TRUE(ms.topology().validate(ms.system()));
}

TEST(MonitoringSystem, RemoveTaskShrinksPairs) {
  MonitoringSystem ms(make_system());
  const TaskId a = ms.add_task(task({0}, {1, 2}));
  ms.add_task(task({1}, {3, 4}));
  EXPECT_EQ(ms.status().pairs, 4u);
  EXPECT_TRUE(ms.remove_task(a));
  EXPECT_FALSE(ms.remove_task(a));
  EXPECT_EQ(ms.status(1.0).pairs, 2u);
  EXPECT_EQ(ms.status().tasks, 1u);
}

TEST(MonitoringSystem, ModifyTaskReflected) {
  MonitoringSystem ms(make_system());
  const TaskId id = ms.add_task(task({0}, {1, 2}));
  (void)ms.topology();
  MonitoringTask t = task({0, 1, 2}, {1, 2});
  t.id = id;
  EXPECT_TRUE(ms.modify_task(t));
  EXPECT_EQ(ms.status(5.0).pairs, 6u);
  MonitoringTask unknown = task({0}, {1});
  unknown.id = 999;
  EXPECT_FALSE(ms.modify_task(unknown));
}

TEST(MonitoringSystem, TaskChurnGoesThroughAdaptation) {
  MonitoringSystem ms(make_system());
  ms.add_task(task({0, 1}, {1, 2, 3, 4, 5, 6}));
  (void)ms.topology(0.0);
  const auto before = ms.status(0.0);
  ms.add_task(task({2}, {7, 8, 9}));
  const auto after = ms.status(10.0);
  EXPECT_GT(after.pairs, before.pairs);
  EXPECT_GE(after.adaptations, 1u);
  EXPECT_GT(after.adaptation_messages, 0u);
  EXPECT_TRUE(ms.topology().validate(ms.system()));
}

TEST(MonitoringSystem, SsdpTasksRewrittenTransparently) {
  MonitoringSystem ms(make_system());
  MonitoringTask t = task({0}, {1, 2, 3, 4, 5, 6, 7, 8});
  t.reliability = ReliabilityMode::kSSDP;
  t.replicas = 2;
  ms.add_task(t);
  const auto status = ms.status();
  EXPECT_EQ(status.tasks, 1u);        // user-visible count unchanged
  EXPECT_EQ(status.pairs, 16u);       // but pairs doubled by replication
  // Replicas must ride different trees.
  const Partition p = ms.topology().partition();
  EXPECT_GE(p.num_sets(), 2u);
  EXPECT_TRUE(ms.topology().validate(ms.system()));
}

TEST(MonitoringSystem, AggregationAwareByDefault) {
  auto sys = make_system(12, 60.0);  // tight: awareness matters
  MonitoringSystemOptions aware;
  MonitoringSystemOptions oblivious;
  oblivious.aggregation_aware = false;
  MonitoringTask t = task({0, 1, 2, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});
  t.aggregation = AggType::kMax;

  MonitoringSystem a(sys, aware);
  a.add_task(t);
  MonitoringSystem b(sys, oblivious);
  b.add_task(t);
  EXPECT_GE(a.status().collected, b.status().collected);
}

TEST(MonitoringSystem, ExportsAreWellFormed) {
  MonitoringSystem ms(make_system());
  ms.add_task(task({0, 1}, {1, 2, 3}));
  const std::string dot = ms.export_dot();
  const std::string json = ms.export_json();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(json.find("\"forest\""), std::string::npos);
}

TEST(MonitoringSystem, ReplanForcesFreshPlan) {
  MonitoringSystem ms(make_system());
  ms.add_task(task({0, 1, 2}, {1, 2, 3, 4, 5, 6}));
  const auto before = ms.status();
  ms.replan(50.0);
  const auto after = ms.status(50.0);
  EXPECT_EQ(after.pairs, before.pairs);
  EXPECT_EQ(after.collected, before.collected);
  EXPECT_TRUE(ms.topology().validate(ms.system()));
}

TEST(MonitoringSystem, StatusIsStableWithoutChanges) {
  MonitoringSystem ms(make_system());
  ms.add_task(task({0}, {1, 2, 3}));
  const auto s1 = ms.status(1.0);
  const auto s2 = ms.status(2.0);
  EXPECT_EQ(s1.collected, s2.collected);
  EXPECT_EQ(s1.adaptations, s2.adaptations);  // no churn, no adaptation
}

}  // namespace
}  // namespace remo
