#include "core/scenario_parser.h"

#include <gtest/gtest.h>

#include "task/task_manager.h"

namespace remo {
namespace {

TEST(ScenarioRanges, NodeRangeForms) {
  EXPECT_EQ(detail::parse_node_range("5"), (std::vector<NodeId>{5}));
  EXPECT_EQ(detail::parse_node_range("1-4"), (std::vector<NodeId>{1, 2, 3, 4}));
  EXPECT_EQ(detail::parse_node_range("1-3,7,9-10"),
            (std::vector<NodeId>{1, 2, 3, 7, 9, 10}));
  EXPECT_EQ(detail::parse_node_range("3,1,3"), (std::vector<NodeId>{1, 3}));
}

TEST(ScenarioRanges, NodeRangeErrors) {
  EXPECT_FALSE(detail::parse_node_range("").has_value());
  EXPECT_FALSE(detail::parse_node_range("a").has_value());
  EXPECT_FALSE(detail::parse_node_range("5-2").has_value());
  EXPECT_FALSE(detail::parse_node_range("1,,3").has_value());
  EXPECT_FALSE(detail::parse_node_range("1-").has_value());
}

TEST(ScenarioRanges, AggNames) {
  EXPECT_EQ(detail::parse_agg("max"), AggType::kMax);
  EXPECT_EQ(detail::parse_agg("MAX"), AggType::kMax);
  EXPECT_EQ(detail::parse_agg("topk"), AggType::kTopK);
  EXPECT_EQ(detail::parse_agg("holistic"), AggType::kHolistic);
  EXPECT_FALSE(detail::parse_agg("median").has_value());
}

TEST(ScenarioParser, MinimalSystem) {
  const auto r = parse_scenario("system nodes=4 capacity=50\n");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.scenario->system.num_nodes(), 4u);
  EXPECT_DOUBLE_EQ(r.scenario->system.capacity(1), 50.0);
  EXPECT_DOUBLE_EQ(r.scenario->system.capacity(kCollectorId), 50.0);
  EXPECT_TRUE(r.scenario->tasks.empty());
}

TEST(ScenarioParser, FullScenario) {
  const std::string text = R"(
# A small deployment
system nodes=8 capacity=60 collector=240 C=12 a=0.5
observe 1-8 0,1,2
capacity 7-8 30
task attrs=0,1 nodes=1-8
task attrs=2 nodes=1-4 freq=0.25 agg=max
task attrs=0 nodes=5-8 reliability=ssdp replicas=3
)";
  const auto r = parse_scenario(text);
  ASSERT_TRUE(r.ok()) << r.error;
  const auto& s = *r.scenario;
  EXPECT_DOUBLE_EQ(s.system.capacity(kCollectorId), 240.0);
  EXPECT_DOUBLE_EQ(s.system.cost().per_message, 12.0);
  EXPECT_DOUBLE_EQ(s.system.cost().per_value, 0.5);
  EXPECT_DOUBLE_EQ(s.system.capacity(7), 30.0);
  EXPECT_DOUBLE_EQ(s.system.capacity(6), 60.0);
  EXPECT_TRUE(s.system.observes(3, 2));
  ASSERT_EQ(s.tasks.size(), 3u);
  EXPECT_DOUBLE_EQ(s.tasks[1].frequency, 0.25);
  EXPECT_EQ(s.tasks[1].aggregation, AggType::kMax);
  EXPECT_EQ(s.tasks[2].reliability, ReliabilityMode::kSSDP);
  EXPECT_EQ(s.tasks[2].replicas, 3u);
}

TEST(ScenarioParser, ObserveMergesAcrossDirectives) {
  const auto r = parse_scenario(
      "system nodes=2 capacity=10\nobserve 1 0\nobserve 1 1,2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.scenario->system.observable(1), (std::vector<AttrId>{0, 1, 2}));
}

TEST(ScenarioParser, ErrorsCarryLineNumbers) {
  const auto missing = parse_scenario("observe 1 0\n");
  EXPECT_FALSE(missing.ok());
  EXPECT_NE(missing.error.find("line 1"), std::string::npos);

  const auto dup = parse_scenario(
      "system nodes=2 capacity=10\nsystem nodes=3 capacity=10\n");
  EXPECT_FALSE(dup.ok());
  EXPECT_NE(dup.error.find("line 2"), std::string::npos);
  EXPECT_NE(dup.error.find("duplicate"), std::string::npos);
}

TEST(ScenarioParser, RejectsBadDirectivesAndValues) {
  const char* bad[] = {
      "system nodes=0 capacity=10\n",
      "system nodes=2\n",
      "system nodes=2 capacity=10\nfrobnicate 1 2\n",
      "system nodes=2 capacity=10\nobserve 0 1\n",       // collector id
      "system nodes=2 capacity=10\nobserve 9 1\n",       // out of range
      "system nodes=2 capacity=10\ntask attrs=0\n",      // missing nodes
      "system nodes=2 capacity=10\ntask attrs=0 nodes=1 freq=2\n",
      "system nodes=2 capacity=10\ntask attrs=0 nodes=1 agg=median\n",
      "system nodes=2 capacity=10\ntask attrs=0 nodes=1 replicas=1\n",
      "system nodes=2 capacity=10\ntask attrs=0 nodes=1 reliability=magic\n",
      "",
  };
  for (const char* text : bad) {
    const auto r = parse_scenario(text);
    EXPECT_FALSE(r.ok()) << "accepted: " << text;
    EXPECT_FALSE(r.error.empty());
  }
}

TEST(ScenarioParser, CommentsAndBlankLinesIgnored) {
  const auto r = parse_scenario(
      "\n# comment only\nsystem nodes=2 capacity=10  # trailing\n\n");
  ASSERT_TRUE(r.ok()) << r.error;
}

TEST(ScenarioParser, ParsedScenarioIsPlannable) {
  const auto r = parse_scenario(R"(
system nodes=6 capacity=80 collector=300
observe 1-6 0,1
task attrs=0,1 nodes=1-6
)");
  ASSERT_TRUE(r.ok()) << r.error;
  TaskManager manager(&r.scenario->system);
  for (auto t : r.scenario->tasks) manager.add_task(std::move(t));
  const PairSet pairs = manager.dedup(r.scenario->system.num_vertices());
  EXPECT_EQ(pairs.total_pairs(), 12u);
}

}  // namespace
}  // namespace remo
