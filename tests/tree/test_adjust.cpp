// The adjusting procedure (Sec. 3.2.1 / 5.1) exercised directly through
// adjust_tree_once.
#include <gtest/gtest.h>

#include "tree/builder.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

std::vector<TreeAttrSpec> one_attr() {
  return {TreeAttrSpec{0, FunnelSpec{}, 1.0}};
}

/// hub under the collector with `branches` single-node branches; the hub's
/// capacity is exactly exhausted, so it is congested.
MonitoringTree congested_hub(std::size_t branches, Capacity leaf_avail = 100.0) {
  const double hub_need = static_cast<double>(branches) * kCost.message_cost(1) +
                          kCost.message_cost(branches + 1);
  MonitoringTree t(one_attr(), 1e9, kCost);
  t.attach(BuildItem{1, {1}, hub_need}, kCollectorId);
  for (NodeId id = 2; id < 2 + branches; ++id)
    t.attach(BuildItem{id, {1}, leaf_avail}, 1);
  return t;
}

TreeBuildOptions opts(bool branch, bool subtree) {
  TreeBuildOptions o;
  o.scheme = TreeScheme::kAdaptive;
  o.branch_reattach = branch;
  o.subtree_only = subtree;
  return o;
}

TEST(AdjustOnce, FreesPerMessageOverheadAtCongestedNode) {
  for (bool branch : {false, true}) {
    for (bool subtree : {false, true}) {
      auto t = congested_hub(4);
      const Capacity before = t.usage(1);
      ASSERT_TRUE(adjust_tree_once(t, {1}, kCost.message_cost(1),
                                   opts(branch, subtree)))
          << branch << subtree;
      // One branch left the hub's direct children: the hub sheds at least
      // the per-message overhead C (exactly C for in-subtree moves; more
      // when the full-scope search re-roots the branch at the collector).
      EXPECT_LE(t.usage(1), before - kCost.per_message + 1e-9)
          << branch << subtree;
      EXPECT_TRUE(t.validate());
      EXPECT_EQ(t.size(), 5u);  // nobody evicted
    }
  }
}

TEST(AdjustOnce, LeafCongestedNodeIsSkipped) {
  auto t = congested_hub(1);  // hub has a single child: degree can't shrink
  EXPECT_FALSE(adjust_tree_once(t, {2}, kCost.message_cost(1), opts(true, true)));
}

TEST(AdjustOnce, FailsWhenNoTargetHasCapacity) {
  // Leaves can only afford their own message: nothing can absorb a branch.
  auto t = congested_hub(4, /*leaf_avail=*/kCost.message_cost(1));
  EXPECT_FALSE(adjust_tree_once(t, {1}, kCost.message_cost(1), opts(true, true)));
  EXPECT_TRUE(t.validate());
}

TEST(AdjustOnce, NodeBasedScattersWhenSingleTargetTooSmall) {
  // A two-node branch that no single target can swallow whole, but whose
  // nodes fit separately: node-based reattach can scatter them — the
  // flexibility the 5.1.1 optimization trades away (branch mode may still
  // succeed here by relocating the *other* branch; both must stay valid).
  MonitoringTree t(one_attr(), 1e9, kCost);
  const double hub_need =
      2.0 * kCost.message_cost(2) + kCost.message_cost(9);  // tight-ish hub
  t.attach(BuildItem{1, {1}, hub_need}, kCollectorId);
  // Branch A: node 2 with child 3 (subtree payload 2).
  t.attach(BuildItem{2, {1}, 40.0}, 1);
  t.attach(BuildItem{3, {1}, 40.0}, 2);
  // Branch B: node 4 with child 5; nodes 4,5 have just enough slack to
  // take ONE extra single node each, not a 2-node branch.
  const double tight = kCost.message_cost(2) /*own send w/ 1 extra*/ +
                       kCost.message_cost(1) /*receive one leaf*/ + 2.0;
  t.attach(BuildItem{4, {1}, tight}, 1);
  t.attach(BuildItem{5, {1}, tight}, 4);
  ASSERT_TRUE(t.validate());

  auto scattered = t;
  const bool node_based =
      adjust_tree_once(scattered, {1}, kCost.message_cost(1), opts(false, true));
  auto moved = t;
  const bool branch_based =
      adjust_tree_once(moved, {1}, kCost.message_cost(1), opts(true, true));
  EXPECT_TRUE(node_based);
  EXPECT_TRUE(scattered.validate());
  EXPECT_TRUE(moved.validate());
  EXPECT_EQ(scattered.size(), 5u);
  if (branch_based) {
    EXPECT_EQ(moved.size(), 5u);
  }
}

TEST(AdjustOnce, SubtreeScopeRespectedUnderTheoremGate) {
  // Two hubs; hub 1 congested. With min_demand <= branch cost, Theorem 1
  // restricts the search to hub 1's subtree: the move lands inside it.
  MonitoringTree t(one_attr(), 1e9, kCost);
  const double hub_need =
      3.0 * kCost.message_cost(1) + kCost.message_cost(4);
  t.attach(BuildItem{1, {1}, hub_need}, kCollectorId);
  for (NodeId id : {2u, 3u, 4u}) t.attach(BuildItem{id, {1}, 100.0}, 1);
  t.attach(BuildItem{10, {1}, 1000.0}, kCollectorId);  // roomy other hub
  ASSERT_TRUE(
      adjust_tree_once(t, {1}, kCost.message_cost(1), opts(true, true)));
  // Every original child of hub 1 must still sit inside hub 1's subtree.
  for (NodeId id : {2u, 3u, 4u}) EXPECT_TRUE(t.in_subtree(id, 1));
  EXPECT_TRUE(t.validate());
}

TEST(AdjustOnce, FullScopeMayMoveAcrossSubtrees) {
  // Same tree, but min_demand larger than the branch cost: the gate opens
  // the whole tree, and the roomy second hub is a legal target.
  MonitoringTree t(one_attr(), 1e9, kCost);
  const double hub_need =
      3.0 * kCost.message_cost(1) + kCost.message_cost(4);
  t.attach(BuildItem{1, {1}, hub_need}, kCollectorId);
  for (NodeId id : {2u, 3u, 4u}) t.attach(BuildItem{id, {1}, 20.0}, 1);
  t.attach(BuildItem{10, {1}, 1000.0}, kCollectorId);
  ASSERT_TRUE(adjust_tree_once(t, {1}, /*min_demand=*/1e6, opts(true, true)));
  bool left_congested_subtree = false;
  for (NodeId id : {2u, 3u, 4u}) left_congested_subtree |= !t.in_subtree(id, 1);
  EXPECT_TRUE(left_congested_subtree);
  EXPECT_TRUE(t.validate());
}

TEST(AdjustOnce, StatsAccumulateReattachTests) {
  auto t = congested_hub(4);
  TreeBuildResult stats{MonitoringTree({}, 0, kCost), {}, 0, 0, 0.0};
  ASSERT_TRUE(adjust_tree_once(t, {1}, kCost.message_cost(1), opts(true, true),
                               &stats));
  EXPECT_GT(stats.reattach_tests, 0u);
}

}  // namespace
}  // namespace remo
