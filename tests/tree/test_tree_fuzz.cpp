// Randomized operation-sequence fuzzing of MonitoringTree: arbitrary
// interleavings of attach / move_branch / detach_branch / update_local
// must keep the incremental bookkeeping exactly consistent with a full
// bottom-up recomputation (validate()), across funnel types and weights.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "tree/monitoring_tree.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

struct FuzzParams {
  std::uint64_t seed;
  AggType agg;
  double weight;
  Capacity avail;
};

class TreeFuzz : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(TreeFuzz, RandomOpSequenceKeepsInvariants) {
  const auto param = GetParam();
  Rng rng{param.seed};
  std::vector<TreeAttrSpec> attrs{
      {0, FunnelSpec{param.agg, 3}, param.weight},
      {1, FunnelSpec{AggType::kHolistic}, 1.0},
  };
  MonitoringTree tree(attrs, /*collector_avail=*/500.0, kCost);

  NodeId next_id = 1;
  std::vector<NodeId> members;  // mirror of tree membership
  std::size_t ops_applied = 0;

  for (int step = 0; step < 300; ++step) {
    const auto op = rng.below(10);
    if (op < 4 || members.empty()) {
      // Attach a new node under a random vertex.
      BuildItem item{next_id,
                     {static_cast<std::uint32_t>(rng.below(2)),
                      static_cast<std::uint32_t>(rng.below(2))},
                     param.avail * rng.uniform(0.5, 1.5)};
      if (item.local_total() == 0) item.local[0] = 1;
      const NodeId parent =
          members.empty() ? kCollectorId
                          : (rng.bernoulli(0.3)
                                 ? kCollectorId
                                 : members[rng.below(members.size())]);
      if (tree.can_attach(item, parent)) {
        tree.attach(item, parent);
        members.push_back(next_id);
        ++next_id;
        ++ops_applied;
      }
    } else if (op < 7) {
      // Move a random branch under a random target.
      const NodeId r = members[rng.below(members.size())];
      const NodeId target = rng.bernoulli(0.2)
                                ? kCollectorId
                                : members[rng.below(members.size())];
      if (target != r && tree.contains(r) && tree.contains(target) &&
          !tree.in_subtree(target, r) && tree.parent(r) != target) {
        if (tree.move_branch(r, target)) ++ops_applied;
      }
    } else if (op < 8) {
      // Update a random member's local counts (best effort).
      const NodeId n = members[rng.below(members.size())];
      std::vector<std::uint32_t> counts{
          static_cast<std::uint32_t>(rng.below(3)),
          static_cast<std::uint32_t>(rng.below(3))};
      if (tree.update_local(n, counts)) ++ops_applied;
    } else {
      // Detach a random branch entirely.
      const NodeId r = members[rng.below(members.size())];
      const auto removed = tree.detach_branch(r);
      for (const auto& item : removed)
        members.erase(std::find(members.begin(), members.end(), item.id));
      ++ops_applied;
    }
    ASSERT_TRUE(tree.validate()) << "step " << step << " seed " << param.seed;
    ASSERT_EQ(tree.size(), members.size()) << "step " << step;
  }
  // The sequence must have actually exercised the tree.
  EXPECT_GT(ops_applied, 50u);
}

INSTANTIATE_TEST_SUITE_P(
    Mix, TreeFuzz,
    ::testing::Values(FuzzParams{1, AggType::kHolistic, 1.0, 60.0},
                      FuzzParams{2, AggType::kHolistic, 1.0, 200.0},
                      FuzzParams{3, AggType::kSum, 1.0, 60.0},
                      FuzzParams{4, AggType::kMax, 0.5, 80.0},
                      FuzzParams{5, AggType::kTopK, 1.0, 100.0},
                      FuzzParams{6, AggType::kTopK, 0.25, 50.0},
                      FuzzParams{7, AggType::kDistinct, 1.0, 70.0},
                      FuzzParams{8, AggType::kHolistic, 0.1, 40.0}));

}  // namespace
}  // namespace remo
