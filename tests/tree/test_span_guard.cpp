// Stale-view detection for the CountSpan returned by in_counts() /
// local_counts(): the view borrows the tree's count arrays, so any tree
// mutation invalidates it. In DCHECK builds (debug or sanitizer) the tree
// stamps each view with a generation counter and dereferencing a stale view
// aborts; release builds compile the guard away (DESIGN.md §10).
#include <gtest/gtest.h>

#include "common/check.h"
#include "tree/monitoring_tree.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

std::vector<TreeAttrSpec> holistic_attrs(std::size_t n) {
  std::vector<TreeAttrSpec> out;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(TreeAttrSpec{static_cast<AttrId>(i), FunnelSpec{}, 1.0});
  return out;
}

MonitoringTree chain3() {
  MonitoringTree t(holistic_attrs(2), 1000.0, kCost);
  t.attach(BuildItem{1, {1, 0}, 100.0}, kCollectorId);
  t.attach(BuildItem{2, {1, 1}, 100.0}, 1);
  t.attach(BuildItem{3, {0, 1}, 100.0}, 2);
  return t;
}

TEST(SpanGuard, FreshViewReadsFine) {
  auto t = chain3();
  // remo-lint would flag these named bindings in src/; in tests, exercising
  // the view lifetime IS the point.
  const auto local = t.local_counts(2);
  EXPECT_EQ(local[0], 1u);
  const auto in = t.in_counts(kCollectorId);
  EXPECT_EQ(in.size(), 2u);
}

TEST(SpanGuard, CopyThenMutateIsTheSanctionedPattern) {
  auto t = chain3();
  const std::vector<std::uint32_t> before(t.local_counts(2).begin(),
                                          t.local_counts(2).end());
  ASSERT_TRUE(t.update_local(2, {0, 0}));
  EXPECT_EQ(before, (std::vector<std::uint32_t>{1, 1}));
}

TEST(SpanGuardDeathTest, StaleViewDereferenceTripsDcheck) {
#if !REMO_DCHECK_ENABLED
  GTEST_SKIP() << "CountSpan generation guard compiles away without "
                  "REMO_DCHECK (release build, no sanitizer)";
#else
  auto t = chain3();
  const auto local = t.local_counts(2);
  ASSERT_TRUE(t.update_local(2, {0, 0}));  // mutation invalidates the view
  EXPECT_DEATH((void)local[0], "stale CountSpan");
#endif
}

TEST(SpanGuardDeathTest, SetAvailAlsoInvalidates) {
#if !REMO_DCHECK_ENABLED
  GTEST_SKIP() << "guard disabled in this build";
#else
  auto t = chain3();
  const auto in = t.in_counts(kCollectorId);
  t.set_avail(1, 250.0);  // even a pure capacity change bumps the generation
  EXPECT_DEATH((void)in[0], "stale CountSpan");
#endif
}

}  // namespace
}  // namespace remo
