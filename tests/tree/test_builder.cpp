#include "tree/builder.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

std::vector<TreeAttrSpec> holistic_attrs(std::size_t n) {
  std::vector<TreeAttrSpec> out;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(TreeAttrSpec{static_cast<AttrId>(i), FunnelSpec{}, 1.0});
  return out;
}

std::vector<BuildItem> uniform_items(std::size_t n, std::uint32_t values,
                                     Capacity avail) {
  std::vector<BuildItem> out;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(BuildItem{static_cast<NodeId>(i + 1),
                            std::vector<std::uint32_t>(1, values), avail});
  return out;
}

TreeBuildOptions opts(TreeScheme s, bool branch = true, bool subtree = true) {
  TreeBuildOptions o;
  o.scheme = s;
  o.branch_reattach = branch;
  o.subtree_only = subtree;
  return o;
}

TEST(TreeBuilder, IncludesEveryNodeWhenCapacityIsAmple) {
  for (TreeScheme s : {TreeScheme::kStar, TreeScheme::kChain, TreeScheme::kMaxAvb,
                       TreeScheme::kAdaptive}) {
    auto r = build_tree(holistic_attrs(1), uniform_items(20, 1, 1e6), 1e6, kCost,
                        opts(s));
    EXPECT_EQ(r.tree.size(), 20u) << to_string(s);
    EXPECT_TRUE(r.rejected.empty()) << to_string(s);
    EXPECT_TRUE(r.tree.validate()) << to_string(s);
  }
}

TEST(TreeBuilder, StarBuildsShallowTrees) {
  auto r = build_tree(holistic_attrs(1), uniform_items(12, 1, 1e6), 1e6, kCost,
                      opts(TreeScheme::kStar));
  EXPECT_EQ(r.tree.height(), 1u);  // everyone directly under the collector
}

TEST(TreeBuilder, ChainBuildsDeepTrees) {
  auto r = build_tree(holistic_attrs(1), uniform_items(12, 1, 1e6), 1e6, kCost,
                      opts(TreeScheme::kChain));
  EXPECT_EQ(r.tree.height(), 12u);  // one long chain
}

TEST(TreeBuilder, ZeroValueNodesAreRejected) {
  auto items = uniform_items(3, 1, 1e6);
  items[1].local[0] = 0;
  auto r = build_tree(holistic_attrs(1), items, 1e6, kCost,
                      opts(TreeScheme::kAdaptive));
  EXPECT_EQ(r.tree.size(), 2u);
  ASSERT_EQ(r.rejected.size(), 1u);
  EXPECT_EQ(r.rejected[0].id, 2u);
}

TEST(TreeBuilder, CollectorBottleneckForcesStarDeeper) {
  // Collector absorbs two direct messages of u=11 but not three: the STAR
  // scheme attaches the third node at depth 2 (the "lowest height with
  // sufficient available capacity" rule falls back past the collector).
  const Capacity collector = 25.0;
  auto star = build_tree(holistic_attrs(1), uniform_items(3, 1, 100.0), collector,
                         kCost, opts(TreeScheme::kStar));
  EXPECT_EQ(star.tree.size(), 3u);
  EXPECT_EQ(star.tree.children(kCollectorId).size(), 2u);
  EXPECT_EQ(star.tree.height(), 2u);
  EXPECT_TRUE(star.tree.validate());
}

TEST(TreeBuilder, ChainDistributesOverheadStarConcentratesIt) {
  // Same workload, ample capacity: CHAIN's per-node usage is flat (each
  // member relays everything below it but receives exactly one message),
  // while STAR's collector-child fan-out concentrates per-message overhead
  // at the top. Structure: chain is maximally deep, star maximally flat.
  auto chain = build_tree(holistic_attrs(1), uniform_items(10, 1, 1e6), 1e6, kCost,
                          opts(TreeScheme::kChain));
  auto star = build_tree(holistic_attrs(1), uniform_items(10, 1, 1e6), 1e6, kCost,
                         opts(TreeScheme::kStar));
  EXPECT_EQ(chain.tree.height(), 10u);
  EXPECT_EQ(star.tree.height(), 1u);
  // Total relay cost: chain pays Σ y_i = 55 values, star pays 10.
  EXPECT_GT(chain.tree.total_cost(), star.tree.total_cost());
  // Per-message overhead at the collector: star pays 10 messages, chain 1.
  EXPECT_GT(star.tree.usage(kCollectorId), chain.tree.usage(kCollectorId));
}

TEST(TreeBuilder, ChainStopsWhenRelayCostExhaustsNodes) {
  // Tight per-node capacity (u + received <= 21): a chain deeper than a
  // couple of hops violates its upper members, so CHAIN re-roots branches
  // at the collector; with the collector also tight, nodes get rejected.
  auto r = build_tree(holistic_attrs(1), uniform_items(30, 1, 21.0), 45.0, kCost,
                      opts(TreeScheme::kChain));
  EXPECT_LT(r.tree.size(), 30u);
  EXPECT_FALSE(r.rejected.empty());
  EXPECT_TRUE(r.tree.validate());
}

TEST(TreeBuilder, AdaptiveBeatsStarAndChainUnderMixedPressure) {
  // Tight collector (per-message bottleneck at the root) AND tight node
  // capacity (relay bottleneck): the construct/adjust iteration should
  // dominate both pure schemes. Collector fits 4 direct children (u=11
  // each, 44 <= 50); nodes afford a couple of relayed values each.
  const Capacity collector = 50.0;
  const Capacity node_cap = 40.0;
  const std::size_t n = 30;
  auto star = build_tree(holistic_attrs(1), uniform_items(n, 1, node_cap),
                         collector, kCost, opts(TreeScheme::kStar));
  auto chain = build_tree(holistic_attrs(1), uniform_items(n, 1, node_cap),
                          collector, kCost, opts(TreeScheme::kChain));
  auto adaptive = build_tree(holistic_attrs(1), uniform_items(n, 1, node_cap),
                             collector, kCost, opts(TreeScheme::kAdaptive));
  EXPECT_GE(adaptive.tree.size(), star.tree.size());
  EXPECT_GE(adaptive.tree.size(), chain.tree.size());
  EXPECT_GT(adaptive.tree.size(),
            std::max(star.tree.size(), chain.tree.size()) - 1);
  EXPECT_TRUE(adaptive.tree.validate());
}

TEST(TreeBuilder, AdjustingProcedureActuallyRuns) {
  const Capacity collector = 50.0;
  auto r = build_tree(holistic_attrs(1), uniform_items(30, 1, 40.0), collector,
                      kCost, opts(TreeScheme::kAdaptive));
  EXPECT_GT(r.adjust_invocations, 0u);
}

TEST(TreeBuilder, NodeBasedReattachMatchesBranchBasedOnSmallCases) {
  // The 5.1.1 optimization trades a little completeness for speed; on
  // small instances both should include comparable node counts.
  const Capacity collector = 50.0;
  for (std::size_t n : {10u, 20u, 30u}) {
    auto fast = build_tree(holistic_attrs(1), uniform_items(n, 1, 40.0), collector,
                           kCost, opts(TreeScheme::kAdaptive, true, true));
    auto slow = build_tree(holistic_attrs(1), uniform_items(n, 1, 40.0), collector,
                           kCost, opts(TreeScheme::kAdaptive, false, false));
    EXPECT_TRUE(fast.tree.validate());
    EXPECT_TRUE(slow.tree.validate());
    const auto f = static_cast<double>(fast.tree.collected_pairs());
    const auto s = static_cast<double>(slow.tree.collected_pairs());
    EXPECT_GE(f, 0.9 * s) << "n=" << n;  // <2% penalty claimed; allow slack
  }
}

TEST(TreeBuilder, HeterogeneousCapacitiesSortedFirst) {
  // Highest-capacity nodes are added first (Sec. 3.2.1) => they end up
  // shallow under STAR.
  std::vector<BuildItem> items;
  for (NodeId id = 1; id <= 6; ++id)
    items.push_back(
        BuildItem{id, {1}, id <= 3 ? Capacity{200.0} : Capacity{20.0}});
  // Collector takes two direct children (u=11): those should be among the
  // high-capacity nodes.
  auto r = build_tree(holistic_attrs(1), items, 23.0, kCost,
                      opts(TreeScheme::kAdaptive));
  for (NodeId direct : r.tree.children(kCollectorId)) EXPECT_LE(direct, 3u);
}

TEST(TreeBuilder, RejectedNodesAreReportedExactly) {
  // Nothing fits: every node's own budget is below its message cost.
  auto r = build_tree(holistic_attrs(1), uniform_items(5, 1, 5.0), 1e6, kCost,
                      opts(TreeScheme::kAdaptive));
  EXPECT_EQ(r.tree.size(), 0u);
  EXPECT_EQ(r.rejected.size(), 5u);
}

TEST(TreeBuilder, MultiAttributeItemsCountPayloadCorrectly) {
  std::vector<BuildItem> items;
  for (NodeId id = 1; id <= 4; ++id) items.push_back(BuildItem{id, {1, 1, 1}, 1e6});
  auto r = build_tree(holistic_attrs(3), items, 1e6, kCost,
                      opts(TreeScheme::kStar));
  EXPECT_EQ(r.tree.collected_pairs(), 12u);
  EXPECT_TRUE(r.tree.validate());
}

TEST(TreeBuilder, DeterministicForFixedInput) {
  const Capacity collector = 60.0;
  auto a = build_tree(holistic_attrs(1), uniform_items(25, 1, 35.0), collector,
                      kCost, opts(TreeScheme::kAdaptive));
  auto b = build_tree(holistic_attrs(1), uniform_items(25, 1, 35.0), collector,
                      kCost, opts(TreeScheme::kAdaptive));
  EXPECT_EQ(a.tree.collected_pairs(), b.tree.collected_pairs());
  for (NodeId n : a.tree.members()) {
    ASSERT_TRUE(b.tree.contains(n));
    EXPECT_EQ(a.tree.parent(n), b.tree.parent(n));
  }
}

// Property-style sweep: every scheme, several capacity regimes — the
// built tree always validates and never includes a rejected node.
class BuilderSweep
    : public ::testing::TestWithParam<std::tuple<TreeScheme, double, double>> {};

TEST_P(BuilderSweep, InvariantsHold) {
  const auto [scheme, node_cap, collector_cap] = GetParam();
  Rng rng{42};
  std::vector<BuildItem> items;
  for (NodeId id = 1; id <= 40; ++id) {
    const auto values = static_cast<std::uint32_t>(rng.range(1, 3));
    items.push_back(BuildItem{id, std::vector<std::uint32_t>(3, values),
                              node_cap * rng.uniform(0.5, 1.5)});
  }
  auto r = build_tree(holistic_attrs(3), items, collector_cap, kCost, opts(scheme));
  EXPECT_TRUE(r.tree.validate());
  EXPECT_EQ(r.tree.size() + r.rejected.size(), 40u);
  for (const auto& rej : r.rejected) EXPECT_FALSE(r.tree.contains(rej.id));
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, BuilderSweep,
    ::testing::Combine(::testing::Values(TreeScheme::kStar, TreeScheme::kChain,
                                         TreeScheme::kMaxAvb,
                                         TreeScheme::kAdaptive),
                       ::testing::Values(25.0, 60.0, 400.0),
                       ::testing::Values(40.0, 150.0, 1e6)));

}  // namespace
}  // namespace remo
