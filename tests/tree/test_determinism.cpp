// Determinism regression tests (ISSUE 4, satellite 1): member iteration is
// guaranteed insertion order — never hash order — so two trees holding
// identical content iterate identically regardless of how they were grown,
// and equal-score parent ties in greedy scans resolve the same way on every
// platform and every run.
#include <gtest/gtest.h>

#include "tree/builder.h"
#include "tree/monitoring_tree.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

std::vector<TreeAttrSpec> holistic_attrs(std::size_t n) {
  std::vector<TreeAttrSpec> out;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(TreeAttrSpec{static_cast<AttrId>(i), FunnelSpec{}, 1.0});
  return out;
}

BuildItem item(NodeId id, std::vector<std::uint32_t> local, Capacity avail) {
  return BuildItem{id, std::move(local), avail};
}

/// The select_parent scan shape: first strict improvement wins, so on a
/// full tie the result is the earliest vertex in iteration order. With a
/// hash map this depended on bucket layout; with the arena it is the
/// attach order.
NodeId greedy_tie_parent(const MonitoringTree& t, const BuildItem& it) {
  NodeId best = kNoNode;
  double best_slack = -1e300;
  auto consider = [&](NodeId v) {
    if (!t.can_attach(it, v)) return;
    if (t.slack(v) > best_slack) {  // strict: ties keep the earlier vertex
      best_slack = t.slack(v);
      best = v;
    }
  };
  consider(kCollectorId);
  for (NodeId v : t.members()) consider(v);
  return best;
}

TEST(Determinism, DifferentGrowthHistoriesSameContentSameOrder) {
  // Tree A: members 1..5 attached directly.
  MonitoringTree a(holistic_attrs(1), 1000.0, kCost);
  for (NodeId n = 1; n <= 5; ++n) a.attach(item(n, {1}, 100.0), kCollectorId);

  // Tree B: same final content via a different history — extra members 6/7
  // attached in between and detached again, plus a move that is undone.
  MonitoringTree b(holistic_attrs(1), 1000.0, kCost);
  b.attach(item(1, {1}, 100.0), kCollectorId);
  b.attach(item(6, {1}, 100.0), kCollectorId);
  b.attach(item(2, {1}, 100.0), kCollectorId);
  b.attach(item(3, {1}, 100.0), kCollectorId);
  b.attach(item(7, {1}, 100.0), 6);
  b.attach(item(4, {1}, 100.0), kCollectorId);
  b.attach(item(5, {1}, 100.0), kCollectorId);
  ASSERT_TRUE(b.move_branch(4, 3));
  ASSERT_TRUE(b.move_branch(4, kCollectorId));
  (void)b.detach_branch(6);  // removes 6 and 7

  // Identical content...
  ASSERT_EQ(a.size(), b.size());
  for (NodeId n = 1; n <= 5; ++n) {
    EXPECT_EQ(a.parent(n), b.parent(n));
    EXPECT_EQ(a.avail(n), b.avail(n));
    EXPECT_EQ(a.usage(n), b.usage(n));
  }
  EXPECT_EQ(a.total_cost(), b.total_cost());
  // ...and identical iteration order: survivors keep their relative
  // insertion order, independent of the removed nodes and the moves.
  EXPECT_EQ(a.members(), b.members());
  EXPECT_EQ(a.members(), (std::vector<NodeId>{1, 2, 3, 4, 5}));
}

TEST(Determinism, EqualScoreTiesResolveByInsertionOrder) {
  // All five members have identical depth, slack, and loads: a full tie.
  // The greedy scan must deterministically keep the earliest-attached one.
  auto grow = [](std::initializer_list<NodeId> order) {
    MonitoringTree t(holistic_attrs(1), 1000.0, kCost);
    for (NodeId n : order) t.attach(item(n, {1}, 100.0), kCollectorId);
    return t;
  };
  MonitoringTree a = grow({3, 1, 4, 2, 5});
  const BuildItem it9 = item(9, {1}, 100.0);
  // Members only: the collector's slack differs, members are all tied.
  NodeId best = kNoNode;
  double best_slack = -1e300;
  for (NodeId v : a.members()) {
    if (!a.can_attach(it9, v)) continue;
    if (a.slack(v) > best_slack) {
      best_slack = a.slack(v);
      best = v;
    }
  }
  EXPECT_EQ(best, 3u);  // first attached, not smallest id, not hash order

  // The same content attached in a different order picks ITS first vertex:
  // the tie-break is a pure function of construction history.
  MonitoringTree b = grow({5, 1, 2, 4, 3});
  best = kNoNode;
  best_slack = -1e300;
  for (NodeId v : b.members()) {
    if (!b.can_attach(it9, v)) continue;
    if (b.slack(v) > best_slack) {
      best_slack = b.slack(v);
      best = v;
    }
  }
  EXPECT_EQ(best, 5u);
}

TEST(Determinism, IdenticallyGrownTreesPlanIdentically) {
  // Two trees grown through different histories but identical final content
  // must drive the greedy scan to the same plan, edge for edge.
  auto build_pair = [] {
    MonitoringTree a(holistic_attrs(2), 2000.0, kCost);
    for (NodeId n = 1; n <= 6; ++n)
      a.attach(item(n, {1, n % 2}, 80.0), kCollectorId);

    MonitoringTree b(holistic_attrs(2), 2000.0, kCost);
    b.attach(item(8, {1, 1}, 80.0), kCollectorId);
    for (NodeId n = 1; n <= 6; ++n)
      b.attach(item(n, {1, n % 2}, 80.0), kCollectorId);
    (void)b.detach_branch(8);
    return std::pair<MonitoringTree, MonitoringTree>{std::move(a), std::move(b)};
  };
  auto [a, b] = build_pair();
  ASSERT_EQ(a.members(), b.members());

  // Greedily attach the same batch to both; every choice must coincide.
  for (NodeId n = 10; n < 16; ++n) {
    const BuildItem it = item(n, {1, 0}, 60.0);
    const NodeId pa = greedy_tie_parent(a, it);
    const NodeId pb = greedy_tie_parent(b, it);
    ASSERT_EQ(pa, pb) << "diverged at item " << n;
    if (pa == kNoNode) break;
    a.attach(it, pa);
    b.attach(it, pb);
  }
  ASSERT_EQ(a.members(), b.members());
  for (NodeId n : a.members()) EXPECT_EQ(a.parent(n), b.parent(n));
  EXPECT_EQ(a.total_cost(), b.total_cost());  // bit-identical accumulation
}

TEST(Determinism, BuildTreeIsReproducibleRunToRun) {
  // Same inputs → byte-identical tree, including member order, across
  // repeated builds in one process (catches any residual address- or
  // hash-dependent iteration in the builder).
  std::vector<BuildItem> items;
  for (NodeId n = 1; n <= 24; ++n)
    items.push_back(item(n, {1, n % 3 == 0 ? 1u : 0u}, 35.0 + (n % 4)));
  TreeBuildOptions opts;
  opts.scheme = TreeScheme::kAdaptive;
  auto r1 = build_tree(holistic_attrs(2), items, 220.0, kCost, opts);
  auto r2 = build_tree(holistic_attrs(2), items, 220.0, kCost, opts);
  ASSERT_EQ(r1.tree.members(), r2.tree.members());
  for (NodeId n : r1.tree.members()) {
    EXPECT_EQ(r1.tree.parent(n), r2.tree.parent(n));
    EXPECT_EQ(r1.tree.usage(n), r2.tree.usage(n));
  }
  EXPECT_EQ(r1.tree.total_cost(), r2.tree.total_cost());
  EXPECT_EQ(r1.tree.collected_pairs(), r2.tree.collected_pairs());
}

}  // namespace
}  // namespace remo
