// Arena layout contract tests (DESIGN.md §15): count rows are padded to
// simd::kU32Lanes elements and allocated kAlign-aligned, and that contract
// survives growth reallocation, odd attribute counts (stride not a multiple
// of the vector width), slot recycling, and the DFS renumbering pass.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "common/simd.h"
#include "tree/builder.h"
#include "tree/monitoring_tree.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

std::vector<TreeAttrSpec> identity_specs(std::size_t n) {
  std::vector<TreeAttrSpec> specs;
  for (std::size_t m = 0; m < n; ++m)
    specs.push_back(TreeAttrSpec{static_cast<AttrId>(m), FunnelSpec{}, 1.0});
  return specs;
}

bool aligned(const std::uint32_t* p) {
  return reinterpret_cast<std::uintptr_t>(p) % simd::kAlign == 0;
}

TEST(ArenaAlignment, PaddedCountRoundsUpToLaneMultiples) {
  EXPECT_EQ(simd::padded_count(0), 0u);
  EXPECT_EQ(simd::padded_count(1), simd::kU32Lanes);
  EXPECT_EQ(simd::padded_count(simd::kU32Lanes - 1), simd::kU32Lanes);
  EXPECT_EQ(simd::padded_count(simd::kU32Lanes), simd::kU32Lanes);
  EXPECT_EQ(simd::padded_count(simd::kU32Lanes + 1), 2 * simd::kU32Lanes);
}

TEST(ArenaAlignment, RowStrideIsPaddedAndViewsKeepLogicalWidth) {
  for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{5},
                        std::size_t{17}, std::size_t{33}}) {
    MonitoringTree tree(identity_specs(n), 1e9, kCost);
    EXPECT_EQ(tree.row_stride(), simd::padded_count(n)) << "attrs=" << n;
    EXPECT_GE(tree.row_stride(), tree.num_attrs());
    // Public views stay num_attrs()-wide; padding is arena-internal.
    EXPECT_EQ(tree.in_counts(kCollectorId).size(), n);
    EXPECT_EQ(tree.local_counts(kCollectorId).size(), n);
    EXPECT_EQ(tree.out_counts(kCollectorId).size(), n);
  }
}

// Growth reallocates the aligned vectors repeatedly (no reserve): every
// row must stay on a kAlign boundary afterwards, per the REMO_DCHECK in
// alloc_slot.
TEST(ArenaAlignment, EveryRowStaysAlignedAcrossGrowth) {
  for (std::size_t n : {std::size_t{3}, std::size_t{17}}) {
    MonitoringTree tree(identity_specs(n), 1e9, kCost);
    std::vector<std::uint32_t> local(n, 1);
    for (NodeId v = 1; v <= 200; ++v) {
      const NodeId parent = v <= 3 ? kCollectorId : static_cast<NodeId>(v / 3);
      ASSERT_TRUE(tree.try_attach(BuildItem{v, local, 1e9}, parent));
    }
    EXPECT_TRUE(aligned(tree.in_counts(kCollectorId).data()));
    for (NodeId v : tree.members()) {
      EXPECT_TRUE(aligned(tree.in_counts(v).data())) << "attrs=" << n << " v=" << v;
      EXPECT_TRUE(aligned(tree.local_counts(v).data()));
    }
  }
}

// Odd widths (stride not a multiple of the vector width before padding):
// the roll-up math must be exactly the naive per-attribute accumulation.
TEST(ArenaAlignment, OddWidthCountsRollUpExactly) {
  const std::size_t n = 5;  // padded to 16: 11 padding lanes in play
  MonitoringTree tree(identity_specs(n), 1e9, kCost);
  std::vector<std::uint32_t> expected_root(n, 0);
  for (NodeId v = 1; v <= 40; ++v) {
    std::vector<std::uint32_t> local(n);
    for (std::size_t m = 0; m < n; ++m)
      local[m] = static_cast<std::uint32_t>((v + m) % 4);
    const NodeId parent = v <= 2 ? kCollectorId : static_cast<NodeId>(v / 2);
    ASSERT_TRUE(tree.try_attach(BuildItem{v, local, 1e9}, parent));
    for (std::size_t m = 0; m < n; ++m) expected_root[m] += local[m];
  }
  const CountSpan root_in = tree.in_counts(kCollectorId);
  double expected_payload_sum = 0.0;
  for (std::size_t m = 0; m < n; ++m) {
    EXPECT_EQ(root_in[m], expected_root[m]) << "m=" << m;
    expected_payload_sum += expected_root[m];
  }
  // Members' payloads are their subtree totals; spot-check the chain head.
  double direct = 0.0;
  for (std::size_t m = 0; m < n; ++m)
    direct += static_cast<double>(tree.in_counts(1)[m]);
  EXPECT_DOUBLE_EQ(tree.payload(1), direct);
  // detach_branch hands back logical-width locals, not padded rows.
  MonitoringTree scratch(identity_specs(n), 1e9, kCost);
  ASSERT_TRUE(scratch.try_attach(BuildItem{7, {1, 2, 3, 4, 5}, 1e9}, kCollectorId));
  const auto items = scratch.detach_branch(7);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].local, (std::vector<std::uint32_t>{1, 2, 3, 4, 5}));
}

TEST(ArenaAlignment, ReserveDoesNotChangeResults) {
  const std::size_t n = 7;
  MonitoringTree plain(identity_specs(n), 1e9, kCost);
  MonitoringTree reserved(identity_specs(n), 1e9, kCost);
  reserved.reserve(64);
  std::vector<std::uint32_t> local(n, 2);
  for (NodeId v = 1; v <= 64; ++v) {
    const NodeId parent = v <= 4 ? kCollectorId : static_cast<NodeId>(v / 4);
    ASSERT_TRUE(plain.try_attach(BuildItem{v, local, 1e9}, parent));
    ASSERT_TRUE(reserved.try_attach(BuildItem{v, local, 1e9}, parent));
  }
  EXPECT_EQ(plain.members(), reserved.members());
  EXPECT_EQ(plain.collected_pairs(), reserved.collected_pairs());
  EXPECT_EQ(plain.total_cost(), reserved.total_cost());
  for (NodeId v : plain.members()) {
    EXPECT_EQ(plain.parent(v), reserved.parent(v));
    EXPECT_EQ(std::vector<std::uint32_t>(plain.in_counts(v).begin(),
                                         plain.in_counts(v).end()),
              std::vector<std::uint32_t>(reserved.in_counts(v).begin(),
                                         reserved.in_counts(v).end()));
  }
}

TEST(ArenaAlignment, UniformIdentityFlagTracksSpecs) {
  EXPECT_TRUE(MonitoringTree(identity_specs(4), 1e9, kCost).uniform_identity());
  auto topk = identity_specs(4);
  topk[2].funnel = FunnelSpec{AggType::kTopK, 3};
  EXPECT_FALSE(MonitoringTree(topk, 1e9, kCost).uniform_identity());
  auto weighted = identity_specs(4);
  weighted[1].weight = 0.5;
  EXPECT_FALSE(MonitoringTree(weighted, 1e9, kCost).uniform_identity());
  // kDistinct uses the holistic (identity) bound — still the fast path.
  auto distinct = identity_specs(4);
  distinct[0].funnel = FunnelSpec{AggType::kDistinct};
  EXPECT_TRUE(MonitoringTree(distinct, 1e9, kCost).uniform_identity());
}

// Capture everything observable about a tree for exact comparison.
struct TreeImage {
  std::vector<NodeId> members;
  std::map<NodeId, NodeId> parent;
  std::map<NodeId, std::vector<NodeId>> children;
  std::map<NodeId, std::size_t> depth;
  std::map<NodeId, Capacity> usage;
  std::map<NodeId, std::vector<std::uint32_t>> in, local;
  std::size_t collected = 0;
  Capacity cost = 0;

  static TreeImage of(const MonitoringTree& t) {
    TreeImage img;
    img.members = t.members();
    img.children[kCollectorId] = t.children(kCollectorId);
    img.usage[kCollectorId] = t.usage(kCollectorId);
    for (NodeId v : t.members()) {
      img.parent[v] = t.parent(v);
      img.children[v] = t.children(v);
      img.depth[v] = t.depth(v);
      img.usage[v] = t.usage(v);
      img.in[v].assign(t.in_counts(v).begin(), t.in_counts(v).end());
      img.local[v].assign(t.local_counts(v).begin(), t.local_counts(v).end());
    }
    img.collected = t.collected_pairs();
    img.cost = t.total_cost();
    return img;
  }

  bool operator==(const TreeImage&) const = default;
};

// renumber_dfs is a pure relayout: every externally observable quantity is
// unchanged, including after slot recycling left holes in the arena.
TEST(ArenaAlignment, RenumberDfsPreservesObservableState) {
  const std::size_t n = 5;
  MonitoringTree tree(identity_specs(n), 1e9, kCost);
  std::vector<std::uint32_t> local(n, 1);
  for (NodeId v = 1; v <= 60; ++v) {
    const NodeId parent = v <= 5 ? kCollectorId : static_cast<NodeId>(v / 5);
    ASSERT_TRUE(tree.try_attach(BuildItem{v, local, 1e9}, parent));
  }
  // Punch holes: drop a mid-tree branch, then attach fresh nodes into the
  // recycled slots so live rows sit scattered across the arena.
  (void)tree.detach_branch(5);
  for (NodeId v = 100; v <= 104; ++v)
    ASSERT_TRUE(tree.try_attach(BuildItem{v, local, 1e9}, 3));

  const TreeImage before = TreeImage::of(tree);
  tree.renumber_dfs();
  EXPECT_EQ(TreeImage::of(tree), before);
  // Rows remain aligned after the compaction copy.
  for (NodeId v : tree.members())
    EXPECT_TRUE(aligned(tree.in_counts(v).data()));
  // The tree stays fully functional: more growth after renumbering.
  for (NodeId v = 200; v <= 240; ++v)
    ASSERT_TRUE(tree.try_attach(BuildItem{v, local, 1e9}, kCollectorId));
  tree.renumber_dfs();
  EXPECT_EQ(tree.size(), before.members.size() + 41);
}

// The builder's dfs_renumber option must not change the built tree's
// observable state or scores — only the internal slot order.
TEST(ArenaAlignment, BuilderDfsRenumberingIsPlanNeutral) {
  std::vector<BuildItem> items;
  for (NodeId v = 1; v <= 48; ++v)
    items.push_back(BuildItem{v, {1, 1, 1}, 35.0});
  TreeBuildOptions with, without;
  with.dfs_renumber = true;
  without.dfs_renumber = false;
  const auto specs = identity_specs(3);
  auto a = build_tree(specs, items, 500.0, kCost, with);
  auto b = build_tree(specs, items, 500.0, kCost, without);
  EXPECT_EQ(TreeImage::of(a.tree), TreeImage::of(b.tree));
  EXPECT_EQ(a.rejected.size(), b.rejected.size());
}

}  // namespace
}  // namespace remo
