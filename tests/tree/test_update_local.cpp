// update_local / can_update_local: the in-place minimal-change operation
// behind DIRECT-APPLY task updates.
#include <gtest/gtest.h>

#include "tree/monitoring_tree.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

std::vector<std::uint32_t> vec(std::span<const std::uint32_t> s) {
  return {s.begin(), s.end()};
}

std::vector<TreeAttrSpec> holistic_attrs(std::size_t n) {
  std::vector<TreeAttrSpec> out;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(TreeAttrSpec{static_cast<AttrId>(i), FunnelSpec{}, 1.0});
  return out;
}

MonitoringTree chain3(Capacity mid_avail = 100.0) {
  MonitoringTree t(holistic_attrs(2), 1000.0, kCost);
  t.attach(BuildItem{1, {1, 0}, 100.0}, kCollectorId);
  t.attach(BuildItem{2, {1, 1}, mid_avail}, 1);
  t.attach(BuildItem{3, {0, 1}, 100.0}, 2);
  return t;
}

TEST(UpdateLocal, DecreaseAlwaysFeasible) {
  auto t = chain3();
  ASSERT_TRUE(t.can_update_local(2, {0, 0}));
  ASSERT_TRUE(t.update_local(2, {0, 0}));
  EXPECT_EQ(vec(t.local_counts(2)), (std::vector<std::uint32_t>{0, 0}));
  // Node 2 still relays node 3's values.
  EXPECT_DOUBLE_EQ(t.payload(2), 1.0);
  EXPECT_TRUE(t.validate());
}

TEST(UpdateLocal, IncreasePropagatesUpward) {
  auto t = chain3();
  const double y1_before = t.payload(1);
  ASSERT_TRUE(t.update_local(3, {1, 1}));
  EXPECT_DOUBLE_EQ(t.payload(1), y1_before + 1.0);
  EXPECT_EQ(t.in_counts(kCollectorId)[0], 3u);
  EXPECT_TRUE(t.validate());
}

TEST(UpdateLocal, InfeasibleIncreaseRejectedAndUnchanged) {
  // Node 1 can barely afford its current load; growing node 3's payload
  // would overload it.
  MonitoringTree t(holistic_attrs(2), 1000.0, kCost);
  t.attach(BuildItem{1, {1, 0}, 38.0}, kCollectorId);  // needs headroom math
  t.attach(BuildItem{2, {1, 1}, 100.0}, 1);
  // usage(1) = u1 + u2 = (10+3) + (10+2) = 25; avail 38. Adding one more
  // value at node 2: u2 -> 13, u1 -> 14: usage(1) = 27 OK. Tighten first:
  ASSERT_TRUE(t.update_local(1, {1, 1}));  // u1 = 10+4, usage(1) = 26
  // Now push node 2 up to where node 1 would exceed 38:
  // each added value at 2 costs node 1 +2 (receive +1, send +1).
  ASSERT_TRUE(t.can_update_local(2, {1, 1}));
  const auto before_counts = vec(t.in_counts(1));
  EXPECT_FALSE(t.can_update_local(2, {8, 8}));  // way past the budget
  EXPECT_FALSE(t.update_local(2, {8, 8}));
  EXPECT_EQ(vec(t.in_counts(1)), before_counts);  // no partial mutation
  EXPECT_TRUE(t.validate());
}

TEST(UpdateLocal, CollectorAndNonMembersRejected) {
  auto t = chain3();
  EXPECT_FALSE(t.can_update_local(kCollectorId, {0, 0}));
  EXPECT_FALSE(t.can_update_local(99, {0, 0}));
  EXPECT_FALSE(t.update_local(99, {1, 1}));
}

TEST(UpdateLocal, SizeMismatchThrows) {
  auto t = chain3();
  EXPECT_THROW((void)t.can_update_local(2, {1}), std::invalid_argument);
}

TEST(UpdateLocal, NoopUpdateKeepsEverything) {
  auto t = chain3();
  const auto local = vec(t.local_counts(2));
  const double cost_before = t.total_cost();
  ASSERT_TRUE(t.update_local(2, local));
  EXPECT_DOUBLE_EQ(t.total_cost(), cost_before);
  EXPECT_TRUE(t.validate());
}

TEST(UpdateLocal, InteractsCorrectlyWithFunnels) {
  // Under SUM, adding local values beyond the first does not change the
  // outgoing payload of the updated node's ancestors.
  std::vector<TreeAttrSpec> attrs{{0, FunnelSpec{AggType::kSum}, 1.0}};
  MonitoringTree t(attrs, 1000.0, kCost);
  t.attach(BuildItem{1, {1}, 100.0}, kCollectorId);
  t.attach(BuildItem{2, {1}, 100.0}, 1);
  const double y1 = t.payload(1);
  ASSERT_TRUE(t.update_local(2, {5}));
  EXPECT_DOUBLE_EQ(t.payload(1), y1);  // funnel collapsed the increase
  EXPECT_EQ(t.in_counts(2)[0], 5u);
  EXPECT_TRUE(t.validate());
}

TEST(UpdateLocal, ZeroedMemberBecomesPureRelay) {
  auto t = chain3();
  ASSERT_TRUE(t.update_local(2, {0, 0}));
  // Node 2 sends only node 3's values but still pays per-message overhead.
  EXPECT_DOUBLE_EQ(t.send_cost(2), kCost.per_message + 1.0);
  EXPECT_EQ(t.collected_pairs(), 2u);  // was 4, minus node 2's two locals
}

}  // namespace
}  // namespace remo
