#include "tree/funnel.h"

#include <gtest/gtest.h>

namespace remo {
namespace {

TEST(Funnel, HolisticIsIdentity) {
  FunnelSpec f{AggType::kHolistic};
  for (std::uint32_t n : {0u, 1u, 5u, 1000u}) EXPECT_EQ(f(n), n);
}

TEST(Funnel, AlgebraicAggregatesCollapseToOne) {
  for (AggType t : {AggType::kSum, AggType::kMax, AggType::kMin, AggType::kCount,
                    AggType::kAvg}) {
    FunnelSpec f{t};
    EXPECT_EQ(f(0), 0u) << to_string(t);
    EXPECT_EQ(f(1), 1u) << to_string(t);
    EXPECT_EQ(f(100), 1u) << to_string(t);
  }
}

TEST(Funnel, TopKCapsAtK) {
  FunnelSpec f{AggType::kTopK, 10};
  EXPECT_EQ(f(3), 3u);
  EXPECT_EQ(f(10), 10u);
  EXPECT_EQ(f(250), 10u);
}

TEST(Funnel, TopKHonorsCustomK) {
  FunnelSpec f{AggType::kTopK, 3};
  EXPECT_EQ(f(2), 2u);
  EXPECT_EQ(f(4), 3u);
}

TEST(Funnel, DistinctUsesHolisticUpperBound) {
  FunnelSpec f{AggType::kDistinct};
  EXPECT_EQ(f(7), 7u);  // Sec. 6.1: data-dependent, upper bound used
}

TEST(Funnel, MonotoneNondecreasing) {
  for (AggType t : {AggType::kHolistic, AggType::kSum, AggType::kTopK,
                    AggType::kDistinct}) {
    FunnelSpec f{t, 5};
    for (std::uint32_t n = 0; n < 40; ++n) EXPECT_LE(f(n), f(n + 1)) << to_string(t);
  }
}

TEST(Funnel, NeverAmplifies) {
  for (AggType t : {AggType::kHolistic, AggType::kSum, AggType::kMax,
                    AggType::kMin, AggType::kCount, AggType::kAvg, AggType::kTopK,
                    AggType::kDistinct}) {
    FunnelSpec f{t, 7};
    for (std::uint32_t n = 0; n < 50; ++n) EXPECT_LE(f(n), n < 1 ? 0u : n);
  }
}

TEST(Funnel, DefaultIsHolistic) {
  FunnelSpec f;
  EXPECT_EQ(f.type(), AggType::kHolistic);
  EXPECT_EQ(f(42), 42u);
}

}  // namespace
}  // namespace remo
