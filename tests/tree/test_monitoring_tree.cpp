#include "tree/monitoring_tree.h"

#include <gtest/gtest.h>

namespace remo {
namespace {

std::vector<TreeAttrSpec> holistic_attrs(std::size_t n) {
  std::vector<TreeAttrSpec> out;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(TreeAttrSpec{static_cast<AttrId>(i), FunnelSpec{}, 1.0});
  return out;
}

BuildItem item(NodeId id, std::vector<std::uint32_t> local, Capacity avail) {
  return BuildItem{id, std::move(local), avail};
}

// Cost model: C = 10, a = 1 throughout.
const CostModel kCost{10.0, 1.0};

TEST(MonitoringTree, EmptyTreeHasOnlyCollector) {
  MonitoringTree t(holistic_attrs(2), 100.0, kCost);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.contains(kCollectorId));
  EXPECT_EQ(t.usage(kCollectorId), 0.0);
  EXPECT_EQ(t.height(), 0u);
  EXPECT_TRUE(t.validate());
}

TEST(MonitoringTree, AttachUnderCollector) {
  MonitoringTree t(holistic_attrs(2), 100.0, kCost);
  ASSERT_TRUE(t.can_attach(item(1, {1, 1}, 50.0), kCollectorId));
  t.attach(item(1, {1, 1}, 50.0), kCollectorId);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.parent(1), kCollectorId);
  EXPECT_EQ(t.depth(1), 1u);
  // u_1 = C + a*2 = 12; collector receives it.
  EXPECT_DOUBLE_EQ(t.send_cost(1), 12.0);
  EXPECT_DOUBLE_EQ(t.usage(1), 12.0);
  EXPECT_DOUBLE_EQ(t.usage(kCollectorId), 12.0);
  EXPECT_TRUE(t.validate());
}

TEST(MonitoringTree, RelayAccumulatesPayload) {
  MonitoringTree t(holistic_attrs(1), 1000.0, kCost);
  t.attach(item(1, {1}, 1000.0), kCollectorId);
  t.attach(item(2, {1}, 1000.0), 1);
  t.attach(item(3, {1}, 1000.0), 2);
  // y_3 = 1, y_2 = 2, y_1 = 3.
  EXPECT_DOUBLE_EQ(t.payload(3), 1.0);
  EXPECT_DOUBLE_EQ(t.payload(2), 2.0);
  EXPECT_DOUBLE_EQ(t.payload(1), 3.0);
  // usage_2 = u_2 + u_3 = (10+2) + (10+1) = 23.
  EXPECT_DOUBLE_EQ(t.usage(2), 23.0);
  EXPECT_EQ(t.height(), 3u);
  EXPECT_TRUE(t.validate());
}

TEST(MonitoringTree, CollectorCapacityBlocksAttach) {
  MonitoringTree t(holistic_attrs(1), 20.0, kCost);  // fits one msg of u<=20
  t.attach(item(1, {1}, 100.0), kCollectorId);       // u=11
  NodeId blocker = kNoNode;
  EXPECT_FALSE(t.can_attach(item(2, {1}, 100.0), kCollectorId, &blocker));
  EXPECT_EQ(blocker, kCollectorId);
  // But attaching under node 1 works (its capacity is plentiful) as long
  // as the collector can absorb the payload growth (11 -> 12 <= 20).
  EXPECT_TRUE(t.can_attach(item(2, {1}, 100.0), 1));
}

TEST(MonitoringTree, OwnBudgetBlocksAttach) {
  MonitoringTree t(holistic_attrs(1), 1000.0, kCost);
  NodeId blocker = kNoNode;
  // u = 11 > avail 10.5: the node cannot even afford its own message.
  EXPECT_FALSE(t.can_attach(item(1, {1}, 10.5), kCollectorId, &blocker));
  EXPECT_EQ(blocker, 1u);
}

TEST(MonitoringTree, AncestorOverloadBlocksDeepAttach) {
  MonitoringTree t(holistic_attrs(1), 1000.0, kCost);
  // Node 1 can afford u up to 13: local 1 value (u=11) + 2 more relayed.
  t.attach(item(1, {1}, 24.0), kCollectorId);  // u_1 = 11, usage(1) = 11
  t.attach(item(2, {1}, 100.0), 1);            // u_2 = 11; usage(1) = 12 + 11 = 23
  // Attaching under node 2 adds receive 11 at node 2 and +1 payload at
  // node 1 (u_1 13) plus +1 receive growth: usage(1) = 13 + 12 = 25 > 24.
  NodeId blocker = kNoNode;
  EXPECT_FALSE(t.can_attach(item(3, {1}, 100.0), 2, &blocker));
  EXPECT_EQ(blocker, 1u);
}

TEST(MonitoringTree, AttachRejectsDuplicateAndUnknownParent) {
  MonitoringTree t(holistic_attrs(1), 1000.0, kCost);
  t.attach(item(1, {1}, 100.0), kCollectorId);
  EXPECT_FALSE(t.can_attach(item(1, {1}, 100.0), kCollectorId));  // already in
  EXPECT_FALSE(t.can_attach(item(2, {1}, 100.0), 77));            // no such parent
}

TEST(MonitoringTree, CountVectorSizeMismatchThrows) {
  MonitoringTree t(holistic_attrs(2), 1000.0, kCost);
  EXPECT_THROW((void)t.can_attach(item(1, {1}, 100.0), kCollectorId),
               std::invalid_argument);
}

TEST(MonitoringTree, SumFunnelCollapsesPayload) {
  std::vector<TreeAttrSpec> attrs{{0, FunnelSpec{AggType::kSum}, 1.0}};
  MonitoringTree t(attrs, 1000.0, kCost);
  t.attach(item(1, {1}, 1000.0), kCollectorId);
  t.attach(item(2, {1}, 1000.0), 1);
  t.attach(item(3, {1}, 1000.0), 1);
  // in_1 = 1 + 1 + 1 = 3 but out_1 = 1 under SUM: y_1 = 1.
  EXPECT_EQ(t.in_counts(1)[0], 3u);
  EXPECT_DOUBLE_EQ(t.payload(1), 1.0);
  EXPECT_DOUBLE_EQ(t.send_cost(1), 11.0);
  EXPECT_TRUE(t.validate());
}

TEST(MonitoringTree, TopKFunnelCapsPayload) {
  std::vector<TreeAttrSpec> attrs{{0, FunnelSpec{AggType::kTopK, 2}, 1.0}};
  MonitoringTree t(attrs, 1000.0, kCost);
  t.attach(item(1, {1}, 1000.0), kCollectorId);
  for (NodeId n = 2; n <= 5; ++n) t.attach(item(n, {1}, 1000.0), 1);
  EXPECT_EQ(t.in_counts(1)[0], 5u);
  EXPECT_DOUBLE_EQ(t.payload(1), 2.0);  // capped at k=2
  EXPECT_TRUE(t.validate());
}

TEST(MonitoringTree, WeightScalesPayloadNotCounts) {
  std::vector<TreeAttrSpec> attrs{{0, FunnelSpec{}, 0.5}};
  MonitoringTree t(attrs, 1000.0, kCost);
  t.attach(item(1, {1}, 1000.0), kCollectorId);
  t.attach(item(2, {1}, 1000.0), 1);
  EXPECT_EQ(t.in_counts(1)[0], 2u);
  EXPECT_DOUBLE_EQ(t.payload(1), 1.0);  // 2 values at weight 0.5
  EXPECT_DOUBLE_EQ(t.send_cost(1), 11.0);
  EXPECT_TRUE(t.validate());
}

TEST(MonitoringTree, MoveBranchWithinSubtreeFreesPerMessageOverhead) {
  MonitoringTree t(holistic_attrs(1), 1000.0, kCost);
  t.attach(item(1, {1}, 100.0), kCollectorId);
  t.attach(item(2, {1}, 100.0), 1);
  t.attach(item(3, {1}, 100.0), 1);
  const Capacity before = t.usage(1);
  ASSERT_TRUE(t.move_branch(3, 2));
  // Node 1 sheds one child message (C + 1) but its child's message grows
  // by 1 value: net change -C = -10.
  EXPECT_DOUBLE_EQ(t.usage(1), before - kCost.per_message);
  EXPECT_EQ(t.parent(3), 2u);
  EXPECT_EQ(t.depth(3), 3u);
  EXPECT_TRUE(t.validate());
}

TEST(MonitoringTree, MoveBranchPreservesCollectorPayload) {
  MonitoringTree t(holistic_attrs(1), 1000.0, kCost);
  t.attach(item(1, {1}, 100.0), kCollectorId);
  t.attach(item(2, {1}, 100.0), 1);
  t.attach(item(3, {1}, 100.0), 2);
  const std::vector<std::uint32_t> before(t.in_counts(kCollectorId).begin(),
                                          t.in_counts(kCollectorId).end());
  ASSERT_TRUE(t.move_branch(3, 1));
  const std::vector<std::uint32_t> after(t.in_counts(kCollectorId).begin(),
                                         t.in_counts(kCollectorId).end());
  EXPECT_EQ(after, before);
  EXPECT_TRUE(t.validate());
}

TEST(MonitoringTree, MoveBranchRejectsCycle) {
  MonitoringTree t(holistic_attrs(1), 1000.0, kCost);
  t.attach(item(1, {1}, 100.0), kCollectorId);
  t.attach(item(2, {1}, 100.0), 1);
  t.attach(item(3, {1}, 100.0), 2);
  EXPECT_FALSE(t.move_branch(2, 3));  // 3 is inside 2's branch
  EXPECT_TRUE(t.validate());
}

TEST(MonitoringTree, MoveBranchInfeasibleLeavesTreeUnchanged) {
  MonitoringTree t(holistic_attrs(1), 1000.0, kCost);
  t.attach(item(1, {1}, 100.0), kCollectorId);
  t.attach(item(2, {1}, 11.0), 1);  // node 2 can only afford its own message
  t.attach(item(3, {1}, 100.0), 1);
  const Capacity u1 = t.usage(1);
  EXPECT_FALSE(t.move_branch(3, 2));  // node 2 cannot receive
  EXPECT_EQ(t.parent(3), 1u);
  EXPECT_DOUBLE_EQ(t.usage(1), u1);
  EXPECT_TRUE(t.validate());
}

TEST(MonitoringTree, CanMoveBranchIsNonDestructive) {
  MonitoringTree t(holistic_attrs(1), 1000.0, kCost);
  t.attach(item(1, {1}, 100.0), kCollectorId);
  t.attach(item(2, {1}, 100.0), 1);
  t.attach(item(3, {1}, 100.0), 1);
  const Capacity u1 = t.usage(1);
  EXPECT_TRUE(t.can_move_branch(3, 2));
  EXPECT_DOUBLE_EQ(t.usage(1), u1);  // probe left no trace
  EXPECT_EQ(t.parent(3), 1u);
  EXPECT_TRUE(t.validate());
}

TEST(MonitoringTree, DetachBranchRemovesSubtreeAndLoads) {
  MonitoringTree t(holistic_attrs(1), 1000.0, kCost);
  t.attach(item(1, {1}, 100.0), kCollectorId);
  t.attach(item(2, {1}, 64.0), 1);
  t.attach(item(3, {1}, 32.0), 2);
  auto items = t.detach_branch(2);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].id, 2u);  // BFS order: branch root first
  EXPECT_EQ(items[1].id, 3u);
  EXPECT_DOUBLE_EQ(items[0].avail, 64.0);
  EXPECT_FALSE(t.contains(2));
  EXPECT_FALSE(t.contains(3));
  EXPECT_DOUBLE_EQ(t.payload(1), 1.0);  // back to local only
  EXPECT_TRUE(t.validate());
}

TEST(MonitoringTree, CollectedPairsCountsLocalValues) {
  MonitoringTree t(holistic_attrs(3), 1000.0, kCost);
  t.attach(item(1, {1, 1, 0}, 100.0), kCollectorId);
  t.attach(item(2, {0, 1, 1}, 100.0), 1);
  EXPECT_EQ(t.collected_pairs(), 4u);
}

TEST(MonitoringTree, TotalCostSumsMemberSendCosts) {
  MonitoringTree t(holistic_attrs(1), 1000.0, kCost);
  t.attach(item(1, {1}, 100.0), kCollectorId);
  t.attach(item(2, {1}, 100.0), 1);
  // u_2 = 11, u_1 = 12.
  EXPECT_DOUBLE_EQ(t.total_cost(), 23.0);
  EXPECT_EQ(t.total_messages(), 2u);
}

TEST(MonitoringTree, BranchNodesBfsOrder) {
  MonitoringTree t(holistic_attrs(1), 1000.0, kCost);
  t.attach(item(1, {1}, 100.0), kCollectorId);
  t.attach(item(2, {1}, 100.0), 1);
  t.attach(item(3, {1}, 100.0), 1);
  t.attach(item(4, {1}, 100.0), 2);
  const auto nodes = t.branch_nodes(1);
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_EQ(nodes.front(), 1u);
  EXPECT_EQ(nodes.back(), 4u);  // depth-2 node last
}

TEST(MonitoringTree, InSubtreeSemantics) {
  MonitoringTree t(holistic_attrs(1), 1000.0, kCost);
  t.attach(item(1, {1}, 100.0), kCollectorId);
  t.attach(item(2, {1}, 100.0), 1);
  EXPECT_TRUE(t.in_subtree(2, 1));
  EXPECT_TRUE(t.in_subtree(1, 1));
  EXPECT_FALSE(t.in_subtree(1, 2));
  EXPECT_TRUE(t.in_subtree(2, kCollectorId));
}

TEST(MonitoringTree, MultiAttrFunnelMixInOneTree) {
  // One holistic and one MAX attribute in the same tree (Sec. 6.1 supports
  // mixed aggregation per tree).
  std::vector<TreeAttrSpec> attrs{{0, FunnelSpec{}, 1.0},
                                  {1, FunnelSpec{AggType::kMax}, 1.0}};
  MonitoringTree t(attrs, 1000.0, kCost);
  t.attach(item(1, {1, 1}, 1000.0), kCollectorId);
  t.attach(item(2, {1, 1}, 1000.0), 1);
  t.attach(item(3, {1, 1}, 1000.0), 1);
  // Holistic attr relays 3 values; MAX collapses to 1.
  EXPECT_DOUBLE_EQ(t.payload(1), 3.0 + 1.0);
  EXPECT_TRUE(t.validate());
}

}  // namespace
}  // namespace remo
