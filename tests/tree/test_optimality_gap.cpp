// Brute-force optimality reference: on tiny instances, enumerate every
// subset of nodes and every acyclic parent assignment, and compare the
// heuristic builders against the true optimum of the (NP-complete) tree
// construction problem. The builders must never beat the optimum (that
// would mean the reference or the feasibility model is wrong) and
// ADAPTIVE must stay within a modest gap of it.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "tree/builder.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

std::vector<TreeAttrSpec> one_attr() {
  return {TreeAttrSpec{0, FunnelSpec{}, 1.0}};
}

/// Tries to realize `parent[i]` (index into items, or -1 for collector)
/// over the chosen subset; returns collected pairs or nullopt if the
/// assignment is cyclic or violates a capacity.
std::optional<std::size_t> realize(const std::vector<BuildItem>& items,
                                   const std::vector<int>& parent,
                                   Capacity collector_avail) {
  const std::size_t n = items.size();
  // Depth-check for cycles + topological order (parents before children).
  std::vector<int> order;
  std::vector<int> state(n, 0);  // 0=unvisited 1=visiting 2=done
  std::vector<std::vector<int>> kids(n);
  std::vector<int> roots;
  for (std::size_t i = 0; i < n; ++i) {
    if (parent[i] == -1)
      roots.push_back(static_cast<int>(i));
    else
      kids[parent[i]].push_back(static_cast<int>(i));
  }
  // BFS from roots; if not all reached, there is a cycle.
  for (int r : roots) {
    std::vector<int> stack{r};
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      if (state[v]) return std::nullopt;
      state[v] = 2;
      order.push_back(v);
      for (int c : kids[v]) stack.push_back(c);
    }
  }
  if (order.size() != n) return std::nullopt;

  MonitoringTree tree(one_attr(), collector_avail, kCost);
  for (int idx : order) {
    const NodeId p =
        parent[idx] == -1 ? kCollectorId : items[parent[idx]].id;
    if (!tree.can_attach(items[idx], p)) return std::nullopt;
    tree.attach(items[idx], p);
  }
  return tree.collected_pairs();
}

/// Exhaustive optimum over subsets × parent assignments.
std::size_t brute_force_optimum(const std::vector<BuildItem>& all,
                                Capacity collector_avail) {
  const std::size_t n = all.size();
  std::size_t best = 0;
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<BuildItem> subset;
    for (std::size_t i = 0; i < n; ++i)
      if (mask & (1u << i)) subset.push_back(all[i]);
    const std::size_t k = subset.size();
    // Enumerate parent vectors in base (k): parent[i] in {-1, 0..k-1}\{i}.
    std::vector<int> parent(k, -1);
    std::function<void(std::size_t)> rec = [&](std::size_t i) {
      if (i == k) {
        if (const auto collected = realize(subset, parent, collector_avail))
          best = std::max(best, *collected);
        return;
      }
      for (int p = -1; p < static_cast<int>(k); ++p) {
        if (p == static_cast<int>(i)) continue;
        parent[i] = p;
        rec(i + 1);
      }
    };
    rec(0);
  }
  return best;
}

class OptimalityGap : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimalityGap, AdaptiveWithinGapOfBruteForce) {
  Rng rng{GetParam()};
  // 5 nodes, randomized payloads/capacities, tight-ish collector.
  std::vector<BuildItem> items;
  for (NodeId id = 1; id <= 5; ++id) {
    const auto values = static_cast<std::uint32_t>(rng.range(1, 3));
    items.push_back(BuildItem{id, {values},
                              kCost.message_cost(values) * rng.uniform(1.0, 2.5)});
  }
  const Capacity collector = kCost.message_cost(1) * rng.uniform(1.5, 4.0);

  const std::size_t optimum = brute_force_optimum(items, collector);

  TreeBuildOptions opts;
  opts.scheme = TreeScheme::kAdaptive;
  const auto built = build_tree(one_attr(), items, collector, kCost, opts);
  const std::size_t heuristic = built.tree.collected_pairs();

  EXPECT_LE(heuristic, optimum) << "heuristic beat brute force: model bug";
  // ADAPTIVE is a heuristic for an NP-complete problem; demand 2/3 of
  // optimum on these micro-instances (it usually achieves it exactly).
  EXPECT_GE(3 * heuristic, 2 * optimum)
      << "heuristic " << heuristic << " vs optimum " << optimum;
  EXPECT_TRUE(built.tree.validate());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalityGap,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(OptimalityGap, BruteForceAgreesOnAnalyticCase) {
  // 3 unit-value nodes, collector fits exactly two direct messages and one
  // relayed value: optimum is all 3 (chain of two under one root? no —
  // two roots, one of them relaying the third: collector cost
  // u={10+2}+{10+1}=23; per-node capacity permits it).
  std::vector<BuildItem> items{{1, {1}, 40.0}, {2, {1}, 40.0}, {3, {1}, 40.0}};
  EXPECT_EQ(brute_force_optimum(items, 23.0), 3u);
  // Collector fits only one 3-value chain message: still all 3 via chain.
  EXPECT_EQ(brute_force_optimum(items, 13.0), 3u);
  // Collector fits only a 2-value message: best is 2.
  EXPECT_EQ(brute_force_optimum(items, 12.0), 2u);
}

}  // namespace
}  // namespace remo
