// Property test for the flat-arena tree kernel (DESIGN.md §10): random
// op sequences (attach / detach_branch / move_branch / update_local /
// journaled-batch-then-rollback) over 20 seeded workloads, checked after
// every op against a deliberately naive map-based reference model that
// recomputes all loads from scratch. The arena's incremental caches
// (in/y/recv, depth, member list, collected-pairs counter) must agree with
// the reference's ground-truth recomputation, and a rolled-back journal
// must restore the tree bit-exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.h"
#include "tree/monitoring_tree.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

// ---- reference model ------------------------------------------------------

/// Map-based mirror of tree content. Carries only the primary state
/// (structure, local counts, capacities); every derived quantity is
/// recomputed from scratch on demand.
struct RefModel {
  std::vector<TreeAttrSpec> attrs;
  CostModel cost;
  std::map<NodeId, NodeId> parent;
  std::map<NodeId, std::vector<NodeId>> children;  // in arena child order
  std::map<NodeId, std::vector<std::uint32_t>> local;
  std::map<NodeId, Capacity> avail;
  std::vector<NodeId> member_order;  // expected insertion order

  RefModel(std::vector<TreeAttrSpec> a, Capacity collector_avail, CostModel c)
      : attrs(std::move(a)), cost(c) {
    parent[kCollectorId] = kNoNode;
    children[kCollectorId] = {};
    local[kCollectorId].assign(attrs.size(), 0);
    avail[kCollectorId] = collector_avail;
  }

  void add(const BuildItem& item, NodeId p) {
    parent[item.id] = p;
    children[item.id] = {};
    children[p].push_back(item.id);
    local[item.id] = item.local;
    avail[item.id] = item.avail;
    member_order.push_back(item.id);
  }

  void remove_branch(NodeId r) {
    auto& sibs = children[parent[r]];
    sibs.erase(std::find(sibs.begin(), sibs.end(), r));
    std::vector<NodeId> stack{r};
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      for (NodeId c : children[n]) stack.push_back(c);
      parent.erase(n);
      children.erase(n);
      local.erase(n);
      avail.erase(n);
      member_order.erase(
          std::find(member_order.begin(), member_order.end(), n));
    }
  }

  void move(NodeId r, NodeId np) {
    auto& sibs = children[parent[r]];
    sibs.erase(std::find(sibs.begin(), sibs.end(), r));
    parent[r] = np;
    children[np].push_back(r);
  }

  /// A move_branch that fails its feasibility walk unlinks and relinks the
  /// branch, leaving it at the BACK of its old parent's child list (same
  /// as the pre-arena kernel). Mirror that side effect.
  void failed_move(NodeId r) { move(r, parent[r]); }

  std::vector<std::uint32_t> in_of(NodeId n) const {
    std::vector<std::uint32_t> in = local.at(n);
    for (NodeId c : children.at(n)) {
      const auto child_in = in_of(c);
      for (std::size_t m = 0; m < attrs.size(); ++m)
        in[m] += attrs[m].funnel(child_in[m]);
    }
    return in;
  }

  double y_of(NodeId n) const {
    const auto in = in_of(n);
    double y = 0.0;
    for (std::size_t m = 0; m < attrs.size(); ++m)
      y += attrs[m].weight * static_cast<double>(attrs[m].funnel(in[m]));
    return y;
  }

  Capacity send_cost(NodeId n) const {
    if (n == kCollectorId) return 0.0;
    return cost.per_message + cost.per_value * y_of(n);
  }

  Capacity usage(NodeId n) const {
    Capacity u = send_cost(n);
    for (NodeId c : children.at(n)) u += send_cost(c);
    return u;
  }

  std::size_t collected_pairs() const {
    std::size_t total = 0;
    for (const auto& [n, l] : local) {
      if (n == kCollectorId) continue;
      for (auto v : l) total += v;
    }
    return total;
  }

  Capacity total_cost() const {
    Capacity total = 0;
    for (NodeId n : member_order) total += send_cost(n);
    return total;
  }
};

void expect_matches(const MonitoringTree& tree, const RefModel& ref,
                    int step) {
  ASSERT_EQ(tree.size(), ref.member_order.size()) << "step " << step;
  // Satellite guarantee: member iteration is insertion order, exactly.
  ASSERT_EQ(tree.members(), ref.member_order) << "step " << step;
  ASSERT_EQ(tree.collected_pairs(), ref.collected_pairs()) << "step " << step;
  ASSERT_NEAR(tree.total_cost(), ref.total_cost(), 1e-9) << "step " << step;
  for (NodeId n : ref.member_order) {
    ASSERT_EQ(tree.parent(n), ref.parent.at(n)) << "node " << n;
    ASSERT_EQ(tree.children(n), ref.children.at(n)) << "node " << n;
    ASSERT_NEAR(tree.usage(n), ref.usage(n), 1e-9) << "node " << n;
    ASSERT_NEAR(tree.payload(n), ref.y_of(n), 1e-9) << "node " << n;
    const auto in = tree.in_counts(n);
    const auto expect_in = ref.in_of(n);
    ASSERT_TRUE(std::equal(in.begin(), in.end(), expect_in.begin(),
                           expect_in.end()))
        << "node " << n;
  }
  ASSERT_NEAR(tree.usage(kCollectorId), ref.usage(kCollectorId), 1e-9);
  ASSERT_TRUE(tree.validate()) << "step " << step;
}

// ---- bit-exact state capture for rollback checks --------------------------

struct TreeImage {
  std::vector<NodeId> members;
  std::vector<NodeId> parents;
  std::vector<std::vector<NodeId>> kids;
  std::vector<std::vector<std::uint32_t>> in, local;
  std::vector<double> y, usage, avail;
  std::size_t pairs = 0;
  double cost = 0.0;

  bool operator==(const TreeImage&) const = default;
};

TreeImage capture(const MonitoringTree& t) {
  TreeImage img;
  img.members = t.members();
  auto grab = [&](NodeId n) {
    img.parents.push_back(t.parent(n));
    img.kids.push_back(t.children(n));
    const auto in = t.in_counts(n);
    img.in.emplace_back(in.begin(), in.end());
    const auto local = t.local_counts(n);
    img.local.emplace_back(local.begin(), local.end());
    img.y.push_back(t.payload(n));
    img.usage.push_back(t.usage(n));
    img.avail.push_back(t.avail(n));
  };
  grab(kCollectorId);
  for (NodeId n : img.members) grab(n);
  img.pairs = t.collected_pairs();
  img.cost = t.total_cost();
  return img;
}

// ---- the property test ----------------------------------------------------

class TreeReferenceModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeReferenceModel, ArenaMatchesMapModelAfterEveryOp) {
  const std::uint64_t seed = GetParam();
  Rng rng{seed};
  // Vary funnel/weight/capacity per seed so all aggregation paths and both
  // tight and slack capacity regimes are exercised.
  const AggType aggs[] = {AggType::kHolistic, AggType::kSum, AggType::kMax,
                          AggType::kTopK, AggType::kDistinct};
  std::vector<TreeAttrSpec> attrs{
      {0, FunnelSpec{aggs[seed % 5], 3}, seed % 4 == 0 ? 0.5 : 1.0},
      {1, FunnelSpec{AggType::kHolistic}, 1.0},
  };
  const Capacity base_avail = 40.0 + 20.0 * static_cast<double>(seed % 4);
  MonitoringTree tree(attrs, /*collector_avail=*/400.0, kCost);
  RefModel ref(attrs, 400.0, kCost);

  NodeId next_id = 1;
  auto random_item = [&] {
    BuildItem item{next_id,
                   {static_cast<std::uint32_t>(rng.below(2)),
                    static_cast<std::uint32_t>(rng.below(2))},
                   base_avail * rng.uniform(0.5, 1.5)};
    if (item.local_total() == 0) item.local[0] = 1;
    return item;
  };
  auto random_vertex = [&]() -> NodeId {
    if (ref.member_order.empty() || rng.bernoulli(0.2)) return kCollectorId;
    return ref.member_order[rng.below(ref.member_order.size())];
  };

  // Single mutation attempt applied to BOTH tree and ref; returns whether
  // the tree accepted it.
  auto mutate = [&](bool mirror) {
    const auto op = rng.below(10);
    if (op < 5 || ref.member_order.empty()) {
      const BuildItem item = random_item();
      const NodeId p = random_vertex();
      if (!tree.try_attach(item, p)) return false;
      if (mirror) ref.add(item, p);
      ++next_id;
      return true;
    }
    if (op < 7) {
      const NodeId r = ref.member_order[rng.below(ref.member_order.size())];
      const NodeId target = random_vertex();
      // During a journaled batch ref is intentionally stale: r/target may
      // already have been detached from the tree this batch.
      if (!tree.contains(r) || !tree.contains(target)) return false;
      if (target == r || tree.in_subtree(target, r) ||
          tree.parent(r) == target)
        return false;
      if (!tree.move_branch(r, target)) {
        if (mirror) ref.failed_move(r);
        return false;
      }
      if (mirror) ref.move(r, target);
      return true;
    }
    if (op < 8) {
      const NodeId n = ref.member_order[rng.below(ref.member_order.size())];
      std::vector<std::uint32_t> counts{
          static_cast<std::uint32_t>(rng.below(3)),
          static_cast<std::uint32_t>(rng.below(3))};
      if (!tree.update_local(n, counts)) return false;
      if (mirror) ref.local[n] = counts;
      return true;
    }
    const NodeId r = ref.member_order[rng.below(ref.member_order.size())];
    if (!tree.contains(r)) return false;  // stale pick inside a batch
    (void)tree.detach_branch(r);
    if (mirror) ref.remove_branch(r);
    return true;
  };

  std::size_t applied = 0, rollbacks = 0;
  for (int step = 0; step < 250; ++step) {
    if (!ref.member_order.empty() && rng.bernoulli(0.15)) {
      // Journaled batch, then rollback: the arena must restore bit-exactly
      // (same doubles, same member order, same child order) — the
      // snapshot-free path the adjuster relies on.
      const TreeImage before = capture(tree);
      tree.begin_journal();
      const auto batch = 1 + rng.below(4);
      for (std::uint32_t i = 0; i < batch; ++i) mutate(/*mirror=*/false);
      tree.rollback_journal();
      ASSERT_EQ(capture(tree), before) << "rollback at step " << step;
      ASSERT_TRUE(tree.validate()) << "rollback at step " << step;
      ++rollbacks;
    } else {
      if (mutate(/*mirror=*/true)) ++applied;
      expect_matches(tree, ref, step);
    }
  }
  EXPECT_GT(applied, 60u);
  EXPECT_GT(rollbacks, 5u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeReferenceModel,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace remo
