// Federation conservation properties (DESIGN.md §12), the contract the
// whole tier rests on:
//   1. Sharding never changes WHAT is monitored — for any workload, the
//      merged collected-pair stream under K shards equals the K=1 stream
//      pair-for-pair (given capacity headroom, so feasibility is not the
//      discriminator).
//   2. K=1 is bit-identical to the unsharded MonitoringSystem: the facade
//      can replace the singleton without any behavioral delta.
//   3. Shard assignment is a pure function of (node id, K): re-running a
//      federation reproduces identical routing and identical streams.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/monitoring_system.h"
#include "federation/federated_system.h"
#include "task/workload.h"

namespace remo::federation {
namespace {

constexpr std::size_t kNodes = 60;
constexpr std::size_t kAttrUniverse = 24;

// Generous capacities: every workload below is feasible at every K, so
// collected == requested everywhere and the property compares complete
// streams, not planner-specific drop decisions.
SystemModel make_system(std::uint64_t seed) {
  SystemModel s(kNodes, 500.0, CostModel{10.0, 1.0});
  s.set_collector_capacity(100000.0);
  Rng rng(seed);
  s.assign_random_attributes(kAttrUniverse, 6, rng);
  return s;
}

std::vector<MonitoringTask> make_workload(const SystemModel& system,
                                          std::uint64_t seed) {
  WorkloadConfig cfg;
  cfg.attr_universe = kAttrUniverse;
  cfg.small_nodes_max = 12;
  cfg.large_nodes_min = 20;
  cfg.large_nodes_max = 45;
  cfg.large_attrs_min = 4;
  cfg.large_attrs_max = 10;
  WorkloadGenerator gen(system, cfg, seed);
  std::vector<MonitoringTask> tasks = gen.small_tasks(4);
  const auto large = gen.large_tasks(2);
  tasks.insert(tasks.end(), large.begin(), large.end());
  return tasks;
}

std::vector<NodeAttrPair> federated_pairs(std::uint64_t seed, std::size_t k) {
  FederationOptions opts;
  opts.num_shards = k;
  FederatedMonitoringSystem fed(make_system(seed), std::move(opts));
  for (const auto& t : make_workload(fed.system(), seed + 1000))
    fed.add_task(t);
  return fed.collected_pairs();
}

TEST(FederationProperty, CollectedPairsInvariantUnderShardCount) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto baseline = federated_pairs(seed, 1);
    ASSERT_FALSE(baseline.empty()) << "seed " << seed << " yielded no pairs";
    for (std::size_t k : {2, 4, 8}) {
      const auto sharded = federated_pairs(seed, k);
      EXPECT_EQ(sharded, baseline)
          << "seed " << seed << ": K=" << k
          << " collected a different pair set than K=1";
    }
  }
}

TEST(FederationProperty, KOneIsBitIdenticalToUnshardedSystem) {
  // Fig. 10-style check: the facade at K=1 must be indistinguishable from
  // the MonitoringSystem it wraps — same pairs, same topology shape, same
  // status counters.
  for (std::uint64_t seed : {3u, 11u, 19u}) {
    MonitoringSystem solo(make_system(seed));
    FederationOptions opts;  // num_shards = 1
    FederatedMonitoringSystem fed(make_system(seed), std::move(opts));
    for (const auto& t : make_workload(solo.system(), seed + 1000)) {
      solo.add_task(t);
      fed.add_task(t);
    }
    EXPECT_EQ(fed.collected_pairs(), solo.collected_pairs()) << "seed " << seed;

    const auto fs = fed.status();
    const auto ss = solo.status();
    EXPECT_EQ(fs.tasks, ss.tasks);
    EXPECT_EQ(fs.pairs, ss.pairs);
    EXPECT_EQ(fs.collected, ss.collected);
    EXPECT_EQ(fs.trees, ss.trees);
    EXPECT_DOUBLE_EQ(fs.message_volume, ss.message_volume);
    EXPECT_EQ(edge_diff(fed.topology(), solo.topology(0.0)), 0u)
        << "seed " << seed << ": K=1 facade built a different forest";
  }
}

TEST(FederationProperty, ShardAssignmentBitDeterministicAcrossRuns) {
  for (std::uint64_t seed : {5u, 12u}) {
    for (std::size_t k : {2, 4, 8}) {
      const auto first = federated_pairs(seed, k);
      const auto second = federated_pairs(seed, k);
      EXPECT_EQ(first, second)
          << "seed " << seed << " K=" << k << ": two identical runs diverged";
    }
  }
}

TEST(FederationProperty, RoutingConservesPairAccounting) {
  // The facade-level view of property 1: requested pair counts survive
  // routing exactly (check_invariants re-proves this after every mutation
  // when validation is on; here it is pinned as a visible expectation).
  set_validation_enabled(true);
  std::size_t baseline = 0;
  for (std::size_t k : {1, 2, 4, 8}) {
    FederationOptions opts;
    opts.num_shards = k;
    FederatedMonitoringSystem fed(make_system(7), std::move(opts));
    const auto tasks = make_workload(fed.system(), 1007);
    for (const auto& t : tasks) fed.add_task(t);
    // Shards partition the node space, so per-shard deduped pair counts
    // sum to the global deduped count — requested work is invariant in K.
    const std::size_t pairs = fed.status().pairs;
    if (k == 1)
      baseline = pairs;
    else
      EXPECT_EQ(pairs, baseline) << "K=" << k << " changed the request size";
    EXPECT_EQ(fed.routing().tasks_submitted, tasks.size());
  }
  set_validation_enabled(false);
}

}  // namespace
}  // namespace remo::federation
