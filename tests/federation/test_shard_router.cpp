#include "federation/shard_router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace remo::federation {
namespace {

TEST(ShardRouter, IdMapsAreABijection) {
  const ShardRouter router(100, 7);
  std::set<std::pair<std::uint32_t, NodeId>> seen;
  for (NodeId g = 1; g <= 100; ++g) {
    const std::uint32_t s = router.shard_of(g);
    const NodeId l = router.to_local(g);
    EXPECT_LT(s, 7u);
    EXPECT_GE(l, 1u);
    EXPECT_EQ(router.to_global(s, l), g) << "round trip broke at n" << g;
    EXPECT_TRUE(seen.insert({s, l}).second)
        << "two globals mapped to shard " << s << " local " << l;
  }
  // The collector is shared: id 0 in every shard.
  for (std::uint32_t s = 0; s < 7; ++s) {
    EXPECT_EQ(router.to_global(s, kCollectorId), kCollectorId);
  }
  EXPECT_EQ(router.to_local(kCollectorId), kCollectorId);
}

TEST(ShardRouter, ShardSizesBalancedWithinOne) {
  const ShardRouter router(103, 8);
  std::size_t total = 0, lo = 103, hi = 0;
  for (std::uint32_t s = 0; s < 8; ++s) {
    const std::size_t size = router.shard_size(s);
    EXPECT_EQ(size, router.shard_nodes(s).size());
    total += size;
    lo = std::min(lo, size);
    hi = std::max(hi, size);
  }
  EXPECT_EQ(total, 103u);
  EXPECT_LE(hi - lo, 1u);
}

TEST(ShardRouter, ShardNodesAscendingAndOwned) {
  const ShardRouter router(50, 4);
  for (std::uint32_t s = 0; s < 4; ++s) {
    const auto nodes = router.shard_nodes(s);
    EXPECT_TRUE(std::is_sorted(nodes.begin(), nodes.end()));
    for (NodeId g : nodes) EXPECT_EQ(router.shard_of(g), s);
  }
}

TEST(ShardRouter, ZeroShardsClampedToOne) {
  const ShardRouter router(10, 0);
  EXPECT_EQ(router.num_shards(), 1u);
  EXPECT_EQ(router.to_local(7), 7u);  // K=1: identity
  EXPECT_EQ(router.to_global(0, 7), 7u);
}

TEST(ShardRouter, ShardSystemCopiesCapacitiesAndObservables) {
  SystemModel global(10, 0.0, CostModel{10.0, 1.0});
  global.set_collector_capacity(500.0);
  for (NodeId n = 1; n <= 10; ++n) {
    global.set_capacity(n, 10.0 * n);
    global.set_observable(n, {static_cast<AttrId>(n), static_cast<AttrId>(n + 1)});
  }
  const ShardRouter router(10, 3);
  for (std::uint32_t s = 0; s < 3; ++s) {
    const SystemModel local = router.shard_system(global, s);
    EXPECT_EQ(local.num_nodes(), router.shard_size(s));
    // Collector capacity inherited from the global root by default.
    EXPECT_DOUBLE_EQ(local.capacity(kCollectorId), 500.0);
    for (NodeId g : router.shard_nodes(s)) {
      const NodeId l = router.to_local(g);
      EXPECT_DOUBLE_EQ(local.capacity(l), global.capacity(g));
      EXPECT_EQ(local.observable(l), global.observable(g));
    }
  }
  // An explicit per-shard collector capacity overrides the inheritance.
  const SystemModel thin = router.shard_system(global, 0, 42.0);
  EXPECT_DOUBLE_EQ(thin.capacity(kCollectorId), 42.0);
}

MonitoringTask task(std::vector<AttrId> attrs, std::vector<NodeId> nodes) {
  MonitoringTask t;
  t.id = 17;
  t.attrs = std::move(attrs);
  t.nodes = std::move(nodes);
  t.frequency = 2.5;
  return t;
}

TEST(ShardRouter, SingleShardRoutePassesTaskVerbatim) {
  const ShardRouter router(10, 1);
  // Unsorted, duplicated, even out-of-range — K=1 must not normalize:
  // the singleton shard has to see the submission byte-for-byte.
  const MonitoringTask t = task({3, 1}, {5, 2, 2, 99});
  const auto subs = router.route(t);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0].shard, 0u);
  EXPECT_EQ(subs[0].task.nodes, t.nodes);
  EXPECT_EQ(subs[0].task.attrs, t.attrs);
  EXPECT_EQ(subs[0].task.origin_id, t.id);
  EXPECT_EQ(subs[0].task.home_shard, 0u);
}

TEST(ShardRouter, RouteConservesNodesAcrossShards) {
  const ShardRouter router(20, 4);
  const MonitoringTask t = task({0, 1}, {1, 2, 3, 4, 5, 9, 13, 17, 20});
  const auto subs = router.route(t);
  std::set<NodeId> recovered;
  std::uint32_t prev = 0;
  bool first = true;
  for (const auto& sub : subs) {
    EXPECT_TRUE(first || sub.shard > prev) << "subtasks not ascending";
    first = false;
    prev = sub.shard;
    EXPECT_EQ(sub.task.attrs, t.attrs);  // attrs replicated in full
    EXPECT_DOUBLE_EQ(sub.task.frequency, t.frequency);
    EXPECT_EQ(sub.task.origin_id, t.id);
    EXPECT_EQ(sub.task.home_shard, sub.shard);
    for (NodeId l : sub.task.nodes) {
      const NodeId g = router.to_global(sub.shard, l);
      EXPECT_EQ(router.shard_of(g), sub.shard);
      EXPECT_TRUE(recovered.insert(g).second) << "n" << g << " routed twice";
    }
  }
  EXPECT_EQ(recovered, std::set<NodeId>(t.nodes.begin(), t.nodes.end()));
}

TEST(ShardRouter, RouteDropsCollectorAndOutOfRangeNodes) {
  const ShardRouter router(8, 2);
  const auto subs = router.route(task({0}, {kCollectorId, 3, 99, 4}));
  std::size_t routed = 0;
  for (const auto& sub : subs) routed += sub.task.nodes.size();
  EXPECT_EQ(routed, 2u);  // only n3 and n4 have owning shards
}

TEST(ShardRouter, RouteSkipsEmptyShards) {
  const ShardRouter router(8, 4);
  // Nodes 1 and 5 both live on shard 0 ((g-1) mod 4 == 0).
  const auto subs = router.route(task({0}, {1, 5}));
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0].shard, 0u);
  EXPECT_EQ(subs[0].task.nodes, (std::vector<NodeId>{1, 2}));  // local ids
}

TEST(ShardRouter, RouteFiltersDsdpGroupsPerShard) {
  const ShardRouter router(8, 2);
  MonitoringTask t = task({0}, {1, 2, 3, 4});
  t.reliability = ReliabilityMode::kDSDP;
  t.identical_groups = {{1, 3}, {2, 4}, {6, 8}};
  const auto subs = router.route(t);
  ASSERT_EQ(subs.size(), 2u);
  // Shard 0 owns odd ids: group {1,3} -> local {1,2}; the other groups
  // have no shard-0 member and are dropped. Shard 1 owns even ids:
  // {2,4} -> local {1,2}, {6,8} -> local {3,4} (group filtering is by
  // ownership, independent of the task's node list).
  EXPECT_EQ(subs[0].task.identical_groups,
            (std::vector<std::vector<NodeId>>{{1, 2}}));
  EXPECT_EQ(subs[1].task.identical_groups,
            (std::vector<std::vector<NodeId>>{{1, 2}, {3, 4}}));
}

TEST(ShardRouter, RoutingIsDeterministicAcrossInstances) {
  const MonitoringTask t = task({4, 0, 2}, {11, 3, 7, 18, 2, 2, 14});
  const ShardRouter a(20, 3), b(20, 3);
  const auto sa = a.route(t), sb = b.route(t);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].shard, sb[i].shard);
    EXPECT_EQ(sa[i].task, sb[i].task);
  }
}

}  // namespace
}  // namespace remo::federation
