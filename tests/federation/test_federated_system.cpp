#include "federation/federated_system.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/check.h"
#include "federation/aggregator.h"
#include "obs/metrics.h"

namespace remo::federation {
namespace {

const CostModel kCost{10.0, 1.0};

SystemModel make_system(std::size_t n = 12, Capacity cap = 150.0) {
  SystemModel s(n, cap, kCost);
  s.set_collector_capacity(600.0);
  for (NodeId id = 1; id <= n; ++id) s.set_observable(id, {0, 1, 2, 3});
  return s;
}

MonitoringTask task(std::vector<AttrId> attrs, std::vector<NodeId> nodes) {
  MonitoringTask t;
  t.attrs = std::move(attrs);
  t.nodes = std::move(nodes);
  return t;
}

FederationOptions shards(std::size_t k) {
  FederationOptions o;
  o.num_shards = k;
  return o;
}

class FederatedSystemTest : public ::testing::Test {
 protected:
  void SetUp() override { set_validation_enabled(true); }
  void TearDown() override { set_validation_enabled(false); }
};

TEST_F(FederatedSystemTest, SpansKShardLocalCores) {
  FederatedMonitoringSystem fed(make_system(10), shards(4));
  EXPECT_EQ(fed.num_shards(), 4u);
  EXPECT_EQ(fed.router().num_nodes(), 10u);
  // Shards partition the universe: 10 nodes over 4 shards = 3,3,2,2.
  std::size_t total = 0;
  for (std::size_t s = 0; s < fed.num_shards(); ++s)
    total += fed.shard(s).system().num_nodes();
  EXPECT_EQ(total, 10u);
}

TEST_F(FederatedSystemTest, CrossShardTaskSplitsAndMerges) {
  FederatedMonitoringSystem fed(make_system(), shards(3));
  const TaskId id = fed.add_task(task({0, 1}, {1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(fed.num_tasks(), 1u);

  const auto& stats = fed.routing();
  EXPECT_EQ(stats.tasks_submitted, 1u);
  EXPECT_EQ(stats.cross_shard_tasks, 1u);
  EXPECT_EQ(stats.single_shard_tasks, 0u);
  EXPECT_EQ(stats.subtasks_active, 3u);  // nodes 1..6 hit all 3 shards
  EXPECT_EQ(stats.routed_node_refs, 6u);

  // The merged status counts the task once and the pairs in full.
  const auto status = fed.status();
  EXPECT_EQ(status.tasks, 1u);
  EXPECT_EQ(status.pairs, 12u);
  EXPECT_EQ(status.collected, 12u);
  EXPECT_DOUBLE_EQ(status.coverage, 1.0);

  EXPECT_TRUE(fed.remove_task(id));
  EXPECT_FALSE(fed.remove_task(id));
  EXPECT_EQ(fed.routing().subtasks_active, 0u);
  EXPECT_EQ(fed.status(1.0).pairs, 0u);
}

TEST_F(FederatedSystemTest, SingleShardTaskStaysLocal) {
  FederatedMonitoringSystem fed(make_system(), shards(3));
  // Nodes 1, 4, 7 all land on shard 0 under round-robin over K=3.
  fed.add_task(task({2}, {1, 4, 7}));
  EXPECT_EQ(fed.routing().single_shard_tasks, 1u);
  EXPECT_EQ(fed.routing().cross_shard_tasks, 0u);
  EXPECT_EQ(fed.shard(0).status().pairs, 3u);
  EXPECT_EQ(fed.shard(1).status().pairs, 0u);
  EXPECT_EQ(fed.shard(2).status().pairs, 0u);
}

TEST_F(FederatedSystemTest, CollectedPairsComeBackInGlobalIds) {
  FederatedMonitoringSystem fed(make_system(), shards(4));
  const std::vector<NodeId> nodes{1, 2, 5, 8, 11};
  fed.add_task(task({0, 3}, nodes));
  const auto pairs = fed.collected_pairs();
  EXPECT_EQ(pairs.size(), nodes.size() * 2);
  EXPECT_TRUE(std::is_sorted(pairs.begin(), pairs.end()));
  std::set<NodeId> seen;
  for (const auto& p : pairs) {
    EXPECT_TRUE(std::count(nodes.begin(), nodes.end(), p.node) > 0)
        << "pair reported for unrequested node n" << p.node;
    seen.insert(p.node);
  }
  EXPECT_EQ(seen.size(), nodes.size());
}

TEST_F(FederatedSystemTest, ModifyTaskReRoutesAcrossShards) {
  FederatedMonitoringSystem fed(make_system(), shards(2));
  // Shard 0 owns odd ids, shard 1 even ids.
  const TaskId id = fed.add_task(task({0}, {1, 3}));
  EXPECT_EQ(fed.routing().subtasks_active, 1u);

  MonitoringTask t = task({0, 1}, {2, 4});  // moves wholly to shard 1
  t.id = id;
  EXPECT_TRUE(fed.modify_task(t));
  EXPECT_EQ(fed.routing().subtasks_active, 1u);
  EXPECT_EQ(fed.shard(0).status(1.0).pairs, 0u);
  EXPECT_EQ(fed.shard(1).status(1.0).pairs, 4u);

  MonitoringTask wider = task({0}, {1, 2, 3, 4});  // now spans both
  wider.id = id;
  EXPECT_TRUE(fed.modify_task(wider));
  EXPECT_EQ(fed.routing().subtasks_active, 2u);
  EXPECT_EQ(fed.status(2.0).pairs, 4u);

  MonitoringTask unknown = task({0}, {1});
  unknown.id = 999;
  EXPECT_FALSE(fed.modify_task(unknown));
}

TEST_F(FederatedSystemTest, TopologyAccessorIsKOneOnly) {
  FederatedMonitoringSystem solo(make_system(), shards(1));
  solo.add_task(task({0}, {1, 2, 3}));
  EXPECT_GE(solo.topology().num_trees(), 1u);
  // K>1 has no single forest; the accessor aborts (not testable here),
  // but every shard's forest is reachable and valid.
  FederatedMonitoringSystem fed(make_system(), shards(2));
  fed.add_task(task({0}, {1, 2, 3, 4}));
  for (std::size_t s = 0; s < fed.num_shards(); ++s) {
    EXPECT_TRUE(
        fed.shard(s).topology().validate(fed.shard(s).system()));
  }
}

TEST_F(FederatedSystemTest, ReplanKeepsCoverage) {
  FederatedMonitoringSystem fed(make_system(), shards(3));
  fed.add_task(task({0, 1, 2}, {1, 2, 3, 4, 5, 6, 7, 8, 9}));
  const auto before = fed.status();
  fed.replan(1.0);
  const auto after = fed.status(1.0);
  EXPECT_EQ(after.pairs, before.pairs);
  EXPECT_EQ(after.collected, before.collected);
}

TEST_F(FederatedSystemTest, PublishMetricsLabelsPerShardSeries) {
  obs::Registry sink;
  FederationOptions opts = shards(2);
  opts.metrics = &sink;
  FederatedMonitoringSystem fed(make_system(), std::move(opts));
  fed.add_task(task({0, 1}, {1, 2, 3, 4}));
  (void)fed.status();  // force planning so shard planners publish
  fed.publish_metrics();

  const auto snap = sink.snapshot();
  EXPECT_EQ(snap.counters.at("federation.tasks_submitted"), 1u);
  EXPECT_EQ(snap.counters.at("federation.tasks_cross_shard"), 1u);
  EXPECT_EQ(snap.counters.at("federation.subtasks_active"), 2u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("federation.shards"), 2.0);
  // Per-shard planner series republished under shard labels.
  bool shard0 = false, shard1 = false;
  for (const auto& [name, value] : snap.counters) {
    if (name.find(".shard0.") != std::string::npos) shard0 = true;
    if (name.find(".shard1.") != std::string::npos) shard1 = true;
  }
  EXPECT_TRUE(shard0);
  EXPECT_TRUE(shard1);

  // Publishing is idempotent: a second publish must not double anything.
  fed.publish_metrics();
  EXPECT_EQ(sink.snapshot().counters.at("federation.tasks_submitted"), 1u);
}

TEST_F(FederatedSystemTest, ExportJsonWrapsShardsInEnvelope) {
  FederatedMonitoringSystem fed(make_system(), shards(2));
  fed.add_task(task({0}, {1, 2}));
  const std::string json = fed.export_json();
  EXPECT_NE(json.find("\"federation\""), std::string::npos);
  EXPECT_NE(json.find("\"shards\":2"), std::string::npos);
  EXPECT_NE(json.find("\"tasks_submitted\":1"), std::string::npos);
  const std::string dot = fed.export_dot();
  EXPECT_NE(dot.find("// shard 1"), std::string::npos);
}

TEST_F(FederatedSystemTest, RecoveryLoopRunsPerShard) {
  FederationOptions opts = shards(2);
  opts.shard.recovery.enabled = true;
  std::vector<NodeId> detected;  // global ids, via the facade's wrapper
  opts.shard.recovery.on_detect = [&detected](const LivenessEvent& ev) {
    if (ev.down) detected.push_back(ev.node);
  };
  FederatedMonitoringSystem fed(make_system(), std::move(opts));
  fed.add_task(task({0, 1}, {1, 2, 3, 4, 5, 6}));
  (void)fed.status();

  // Feed deliveries for every node except n3 and n6; after enough silent
  // epochs those two (one per shard) are suspected down.
  for (std::uint64_t epoch = 1; epoch <= 12; ++epoch) {
    for (NodeId g : {1, 2, 4, 5}) fed.on_delivery({g, 0}, epoch);
    fed.end_epoch(epoch);
  }
  const RepairReport report = fed.repair_report();
  EXPECT_GE(report.outages_detected, 2u);
  EXPECT_GE(report.repair_passes, 2u);  // one per affected shard
  // The wrapper reported global ids: n3 (shard 0) and n6 (shard 1).
  EXPECT_NE(std::find(detected.begin(), detected.end(), 3u), detected.end());
  EXPECT_NE(std::find(detected.begin(), detected.end(), 6u), detected.end());
  // Deliveries were routed to the owning shard's tracker: under K=2 the
  // silent globals n3/n6 are shard-locals n2 (shard 0) and n3 (shard 1),
  // and every node that kept delivering stayed up.
  EXPECT_TRUE(fed.shard(0).liveness().is_down(2));
  EXPECT_TRUE(fed.shard(1).liveness().is_down(3));
  EXPECT_FALSE(fed.shard(0).liveness().is_down(1));  // global n1
  EXPECT_FALSE(fed.shard(1).liveness().is_down(2));  // global n4
}

TEST_F(FederatedSystemTest, MergeStatusRecomputesCoverage) {
  MonitoringSystem::Status a, b;
  a.pairs = 10;
  a.collected = 5;
  b.pairs = 10;
  b.collected = 10;
  const auto merged = merge_status({a, b});
  EXPECT_EQ(merged.pairs, 20u);
  EXPECT_EQ(merged.collected, 15u);
  EXPECT_DOUBLE_EQ(merged.coverage, 0.75);
  EXPECT_DOUBLE_EQ(merge_status({}).coverage, 1.0);
}

TEST_F(FederatedSystemTest, MergePairStreamsSortsDisjointInputs) {
  const std::vector<NodeAttrPair> a{{1, 0}, {3, 1}};
  const std::vector<NodeAttrPair> b{{2, 0}, {4, 1}};
  const auto merged = merge_pair_streams({a, b});
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end()));
}

}  // namespace
}  // namespace remo::federation
