// Fig. 12 — "Performance of extension techniques".
//
//   (a) In-network-aggregation-aware and update-frequency-aware planning
//       (Sec. 6.1 / 6.3) vs the extension-oblivious basic REMO, as
//       normalized collected values. Workload follows the paper: MAX
//       aggregation on the tasks, and half the tasks at half frequency.
//       Expected: each extension alone helps; combined ~1.5x.
//
//   (b) Reliability (Sec. 6.2): REMO-2 (SSDP, replication factor 2) vs
//       SINGLETON-SET-2 and ONE-SET-2 (each baseline duplicated across two
//       disjoint deliveries), sweeping the task count. Expected: REMO-2
//       consistently collects the most replicated values.
#include "bench/bench_support.h"

#include "extensions/attr_spec_derivation.h"
#include "extensions/reliability.h"

namespace remo::bench {
namespace {

constexpr CostModel kCost{10.0, 1.0};

Scenario extension_scenario(std::uint64_t seed, std::size_t tasks) {
  // Relay/collector-bound regime: in-network aggregation pays off when
  // values are *relayed* (a leaf's own message cannot shrink), so the
  // collector must be tight enough to force deep trees.
  Scenario s(100, 60, 24, 90.0, 900.0, kCost, seed);
  WorkloadGenerator gen(s.system, WorkloadConfig{.attr_universe = 60}, seed + 1);
  auto generated = gen.small_tasks(tasks * 2 / 3);
  auto large = gen.large_tasks(tasks / 3);
  generated.insert(generated.end(), large.begin(), large.end());
  // The paper applies MAX aggregation to the tasks and halves the update
  // frequency of half of them. Frequency awareness only matters for
  // attributes *no* fast task requests, so the slow half of the workload
  // lives on the upper half of the attribute universe.
  std::vector<MonitoringTask> kept;
  for (std::size_t i = 0; i < generated.size(); ++i) {
    MonitoringTask t = std::move(generated[i]);
    t.aggregation = AggType::kMax;
    std::vector<AttrId> filtered;
    for (AttrId a : t.attrs) {
      const bool upper = a >= 30;
      if (upper == (i % 2 == 0)) filtered.push_back(a);
    }
    if (filtered.empty()) continue;
    t.attrs = std::move(filtered);
    t.frequency = (i % 2 == 0) ? 0.25 : 1.0;
    kept.push_back(std::move(t));
  }
  s.add_tasks(std::move(kept));
  return s;
}

void aggregation_frequency() {
  subbanner(
      "Fig. 12a: extension-aware planning, collected values normalized to "
      "basic REMO");
  Table t({"tasks", "basic", "+aggregation", "+frequency", "+both"});
  for (std::size_t tasks : {30u, 60u, 90u, 120u}) {
    Scenario s = extension_scenario(81, tasks);
    auto run = [&](bool agg, bool freq) {
      PlannerOptions o = planner_options(PartitionScheme::kRemo);
      o.attr_specs = derive_attr_specs(s.manager, agg, freq);
      return static_cast<double>(
          Planner(s.system, o).plan(s.pairs).collected_pairs());
    };
    const double base = run(false, false);
    t.row()
        .add(static_cast<long long>(tasks))
        .add(1.0, 2)
        .add(base > 0 ? run(true, false) / base : 0.0, 2)
        .add(base > 0 ? run(false, true) / base : 0.0, 2)
        .add(base > 0 ? run(true, true) / base : 0.0, 2);
  }
  emit(t);
}

void reliability() {
  subbanner(
      "Fig. 12b: SSDP replication (factor 2), % of replicated values "
      "collected");
  Table t({"tasks", "SINGLETON-SET-2 %", "ONE-SET-2 %", "REMO-2 %"});
  for (std::size_t tasks : {20u, 40u, 60u, 80u}) {
    // Build the replicated workload once (same aliases for all schemes).
    Scenario s(100, 40, 25, 70.0, 5000.0, kCost, 83);
    WorkloadGenerator gen(s.system, WorkloadConfig{.attr_universe = 40}, 89);
    auto generated = gen.small_tasks(tasks);
    for (auto& task : generated) {
      task.reliability = ReliabilityMode::kSSDP;
      task.replicas = 2;
    }
    ReliabilityRewriter rewriter(1000);
    auto rewritten = rewriter.rewrite(generated);
    ReliabilityRewriter::register_aliases(s.system, rewritten.alias_of);
    s.add_tasks(std::move(rewritten.tasks));

    auto run = [&](PartitionScheme scheme) {
      PlannerOptions o = planner_options(scheme);
      o.conflicts = rewritten.conflicts;  // enforced for every scheme
      return coverage(s, o);
    };
    // ONE-SET-2: one tree for all original attributes plus one tree for
    // all aliases ("two ONE-SET trees ... delivering values of all
    // attributes separately") — a plain one-set would co-locate replicas.
    auto one_set_2 = [&]() {
      std::vector<AttrId> originals, aliases;
      for (AttrId a : s.pairs.attribute_universe())
        (rewritten.alias_of.count(a) ? aliases : originals).push_back(a);
      Planner planner(s.system, planner_options(PartitionScheme::kOneSet));
      return planner
                 .build_for_partition(s.pairs, Partition({originals, aliases}))
                 .coverage() *
             100.0;
    };
    t.row()
        .add(static_cast<long long>(tasks))
        .add(run(PartitionScheme::kSingletonSet), 1)
        .add(one_set_2(), 1)
        .add(run(PartitionScheme::kRemo), 1);
  }
  emit(t);
  std::printf(
      "(ONE-SET-2 under SSDP conflicts degenerates to two disjoint "
      "deliveries of the full attribute set)\n");
}

}  // namespace
}  // namespace remo::bench

int main(int argc, char** argv) {
  remo::bench::init("fig12_extensions", argc, argv);
  remo::bench::banner("Fig. 12", "extension techniques");
  remo::bench::aggregation_frequency();
  remo::bench::reliability();
  return 0;
}
