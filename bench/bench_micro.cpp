// Micro-benchmarks (google-benchmark) for REMO's hot primitives: set
// algebra, tree attachment/feasibility, branch moves, whole-tree builds,
// partition operations, gain estimation, and simulator epochs. These are
// the building blocks whose costs the Sec. 5 optimizations target.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/sorted_vector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/augmentation.h"
#include "planner/planner.h"
#include "sim/simulator.h"
#include "task/workload.h"
#include "tree/builder.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

std::vector<AttrId> random_set(Rng& rng, std::size_t n, std::size_t universe) {
  auto idx = rng.sample(static_cast<std::uint32_t>(universe),
                        static_cast<std::uint32_t>(n));
  std::vector<AttrId> out(idx.begin(), idx.end());
  sort_unique(out);
  return out;
}

void BM_SetUnion(benchmark::State& state) {
  Rng rng{1};
  const auto a = random_set(rng, state.range(0), state.range(0) * 4);
  const auto b = random_set(rng, state.range(0), state.range(0) * 4);
  for (auto _ : state) benchmark::DoNotOptimize(set_union(a, b));
}
BENCHMARK(BM_SetUnion)->Arg(16)->Arg(256);

void BM_IntersectionSize(benchmark::State& state) {
  Rng rng{2};
  const auto a = random_set(rng, state.range(0), state.range(0) * 4);
  const auto b = random_set(rng, state.range(0), state.range(0) * 4);
  for (auto _ : state) benchmark::DoNotOptimize(intersection_size(a, b));
}
BENCHMARK(BM_IntersectionSize)->Arg(16)->Arg(256);

MonitoringTree chain_tree(std::size_t n, std::size_t attrs) {
  std::vector<TreeAttrSpec> specs;
  for (std::size_t m = 0; m < attrs; ++m)
    specs.push_back(TreeAttrSpec{static_cast<AttrId>(m), FunnelSpec{}, 1.0});
  MonitoringTree t(specs, 1e9, kCost);
  NodeId parent = kCollectorId;
  for (NodeId id = 1; id <= n; ++id) {
    t.attach(BuildItem{id, std::vector<std::uint32_t>(attrs, 1), 1e9}, parent);
    parent = id;
  }
  return t;
}

void BM_CanAttachDeep(benchmark::State& state) {
  auto tree = chain_tree(state.range(0), 4);
  const BuildItem item{9999, {1, 1, 1, 1}, 1e9};
  const NodeId deepest = static_cast<NodeId>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(tree.can_attach(item, deepest));
}
BENCHMARK(BM_CanAttachDeep)->Arg(16)->Arg(128);

// ---- tree-kernel probes (ISSUE 4): direct measurements of the arena's
// hot paths, so future kernel changes see regressions immediately. --------

/// Attach throughput: grow a 3-wide tree to `n` members, then tear it down
/// and grow it again every iteration. Dominated by try_attach (fused
/// feasibility walk + apply) and slot recycling.
void BM_AttachThroughput(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<TreeAttrSpec> specs{{0, FunnelSpec{}, 1.0}, {1, FunnelSpec{}, 1.0}};
  MonitoringTree t(specs, 1e9, kCost);
  std::vector<BuildItem> items;
  for (NodeId id = 1; id <= n; ++id)
    items.push_back(BuildItem{id, {1, 1}, 1e9});
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId parent = i < 3 ? kCollectorId : static_cast<NodeId>(i / 3);
      benchmark::DoNotOptimize(t.try_attach(items[i], parent));
    }
    state.PauseTiming();
    for (NodeId c : std::vector<NodeId>(t.children(kCollectorId)))
      (void)t.detach_branch(c);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AttachThroughput)->Arg(64)->Arg(512);

/// Feasibility-test throughput on a deep chain: the allocation-free upward
/// walk (scratch buffers, flat arrays) with no mutation.
void BM_FeasibilityWalk(benchmark::State& state) {
  auto tree = chain_tree(state.range(0), 4);
  const BuildItem item{9999, {1, 1, 1, 1}, 1e9};
  const NodeId deepest = static_cast<NodeId>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(tree.can_attach(item, deepest));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FeasibilityWalk)->Arg(16)->Arg(128)->Arg(1024);

/// Rollback cost, snapshot vs journal: undo a detach+reattach of a k-wide
/// branch either by copying the whole n-member tree up front (the pre-arena
/// strategy) or by journaling and replaying inverses (the arena strategy).
/// The journal's cost scales with the branch, not the tree.
void BM_RollbackSnapshot(benchmark::State& state) {
  auto tree = chain_tree(state.range(0), 2);
  const NodeId branch = static_cast<NodeId>(state.range(0) - 8);
  for (auto _ : state) {
    MonitoringTree snapshot = tree;
    auto items = tree.detach_branch(branch);
    benchmark::DoNotOptimize(items);
    tree = std::move(snapshot);
  }
}
BENCHMARK(BM_RollbackSnapshot)->Arg(64)->Arg(512);

void BM_RollbackJournal(benchmark::State& state) {
  auto tree = chain_tree(state.range(0), 2);
  const NodeId branch = static_cast<NodeId>(state.range(0) - 8);
  for (auto _ : state) {
    tree.begin_journal();
    auto items = tree.detach_branch(branch);
    benchmark::DoNotOptimize(items);
    tree.rollback_journal();
  }
}
BENCHMARK(BM_RollbackJournal)->Arg(64)->Arg(512);

void BM_MoveBranch(benchmark::State& state) {
  auto tree = chain_tree(64, 2);
  // Bounce the deepest node between two parents.
  NodeId a = 32, b = 33;
  for (auto _ : state) {
    tree.move_branch(64, a);
    tree.move_branch(64, b);
  }
}
BENCHMARK(BM_MoveBranch);

void BM_BuildTree(benchmark::State& state) {
  const auto scheme = static_cast<TreeScheme>(state.range(1));
  std::vector<TreeAttrSpec> attrs{{0, FunnelSpec{}, 1.0}};
  std::vector<BuildItem> items;
  Rng rng{3};
  for (NodeId id = 1; id <= static_cast<NodeId>(state.range(0)); ++id)
    items.push_back(BuildItem{id, {1}, 40.0 * rng.uniform(0.8, 1.5)});
  const Capacity collector = static_cast<double>(state.range(0)) * 4.0;
  TreeBuildOptions opts;
  opts.scheme = scheme;
  for (auto _ : state)
    benchmark::DoNotOptimize(build_tree(attrs, items, collector, kCost, opts));
}
BENCHMARK(BM_BuildTree)
    ->Args({100, static_cast<long>(TreeScheme::kStar)})
    ->Args({100, static_cast<long>(TreeScheme::kChain)})
    ->Args({100, static_cast<long>(TreeScheme::kAdaptive)});

void BM_MergeGain(benchmark::State& state) {
  Rng rng{4};
  PairSet pairs(201);
  for (NodeId n = 1; n <= 200; ++n)
    for (AttrId a : random_set(rng, 10, 40)) pairs.add(n, a);
  std::vector<AttrId> universe(40);
  for (AttrId a = 0; a < 40; ++a) universe[a] = a;
  const Partition p = Partition::singleton(universe);
  for (auto _ : state)
    benchmark::DoNotOptimize(estimate_merge_gain(p, 3, 17, pairs, kCost));
}
BENCHMARK(BM_MergeGain);

void BM_PlannerSmall(benchmark::State& state) {
  SystemModel system(40, 60.0, kCost);
  system.set_collector_capacity(2000.0);
  Rng rng{5};
  system.assign_random_attributes(16, 6, rng);
  PairSet pairs(41);
  for (NodeId n = 1; n <= 40; ++n)
    for (AttrId a : system.observable(n)) pairs.add(n, a);
  PlannerOptions o;
  o.max_candidates = 8;
  Planner planner(system, o);
  for (auto _ : state) benchmark::DoNotOptimize(planner.plan(pairs));
}
BENCHMARK(BM_PlannerSmall)->Unit(benchmark::kMillisecond);

// Observability overhead check (EXPERIMENTS.md "Bench telemetry"): the
// same planning run with instrumentation enabled vs disabled. The delta
// is the cost of trace spans + mirror metrics; the acceptance bar is ≤2%.
void BM_PlannerObs(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(state.range(0) != 0);
  SystemModel system(40, 60.0, kCost);
  system.set_collector_capacity(2000.0);
  Rng rng{5};
  system.assign_random_attributes(16, 6, rng);
  PairSet pairs(41);
  for (NodeId n = 1; n <= 40; ++n)
    for (AttrId a : system.observable(n)) pairs.add(n, a);
  PlannerOptions o;
  o.max_candidates = 8;
  Planner planner(system, o);
  for (auto _ : state) benchmark::DoNotOptimize(planner.plan(pairs));
  obs::set_enabled(was_enabled);
}
BENCHMARK(BM_PlannerObs)
    ->Arg(0)  // obs disabled (REMO_OBS_DISABLED=1 equivalent)
    ->Arg(1)  // obs enabled (spans + metrics recorded)
    ->Unit(benchmark::kMillisecond);

void BM_CounterAdd(benchmark::State& state) {
  obs::Registry registry;
  obs::Counter& c = registry.counter("bench.counter");
  for (auto _ : state) c.add(1);
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Registry registry;
  obs::Histogram& h =
      registry.histogram("bench.hist", obs::Histogram::time_bounds());
  double v = 1e-6;
  for (auto _ : state) {
    h.observe(v);
    v = v > 10.0 ? 1e-6 : v * 1.7;
  }
}
BENCHMARK(BM_HistogramObserve);

void BM_SpanRecord(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(state.range(0) != 0);
  obs::TraceRecorder recorder(1024);
  for (auto _ : state) {
    const obs::Span span("bench.span", &recorder);
    benchmark::DoNotOptimize(span.active());
  }
  obs::set_enabled(was_enabled);
}
BENCHMARK(BM_SpanRecord)->Arg(0)->Arg(1);

void BM_SimulatorEpoch(benchmark::State& state) {
  SystemModel system(100, 1e6, kCost);
  system.set_collector_capacity(1e9);
  PairSet pairs(101);
  for (NodeId n = 1; n <= 100; ++n) {
    system.set_observable(n, {0, 1, 2, 3});
    for (AttrId a = 0; a < 4; ++a) pairs.add(n, a);
  }
  PlannerOptions o;
  const auto topo = Planner(system, o).plan(pairs);
  RandomWalkSource src(pairs, 6);
  SimConfig cfg;
  cfg.warmup = 0;
  for (auto _ : state) {
    cfg.epochs = 10;
    benchmark::DoNotOptimize(simulate(system, topo, pairs, src, cfg));
  }
}
BENCHMARK(BM_SimulatorEpoch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace remo

BENCHMARK_MAIN();
