// Micro-benchmarks (google-benchmark) for REMO's hot primitives: set
// algebra, tree attachment/feasibility, branch moves, whole-tree builds,
// partition operations, gain estimation, and simulator epochs. These are
// the building blocks whose costs the Sec. 5 optimizations target.
//
// On top of the google-benchmark suite, the binary emits a deterministic
// "tree-kernel throughput" table (walk / propagate / attach ops per
// second) through the bench telemetry harness, so `--json` produces a
// BENCH_micro.json the CI perf-smoke gate can diff against
// bench/baselines/ like the figure benches. `--kernels-only` skips the
// google-benchmark suite (CI uses it: the kernel table is the gated part).
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_support.h"
#include "common/rng.h"
#include "common/sorted_vector.h"
#include "common/table.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/augmentation.h"
#include "planner/planner.h"
#include "sim/simulator.h"
#include "task/workload.h"
#include "tree/builder.h"

namespace remo {
namespace {

const CostModel kCost{10.0, 1.0};

std::vector<AttrId> random_set(Rng& rng, std::size_t n, std::size_t universe) {
  auto idx = rng.sample(static_cast<std::uint32_t>(universe),
                        static_cast<std::uint32_t>(n));
  std::vector<AttrId> out(idx.begin(), idx.end());
  sort_unique(out);
  return out;
}

void BM_SetUnion(benchmark::State& state) {
  Rng rng{1};
  const auto a = random_set(rng, state.range(0), state.range(0) * 4);
  const auto b = random_set(rng, state.range(0), state.range(0) * 4);
  for (auto _ : state) benchmark::DoNotOptimize(set_union(a, b));
}
BENCHMARK(BM_SetUnion)->Arg(16)->Arg(256);

void BM_IntersectionSize(benchmark::State& state) {
  Rng rng{2};
  const auto a = random_set(rng, state.range(0), state.range(0) * 4);
  const auto b = random_set(rng, state.range(0), state.range(0) * 4);
  for (auto _ : state) benchmark::DoNotOptimize(intersection_size(a, b));
}
BENCHMARK(BM_IntersectionSize)->Arg(16)->Arg(256);

MonitoringTree chain_tree(std::size_t n, std::size_t attrs) {
  std::vector<TreeAttrSpec> specs;
  for (std::size_t m = 0; m < attrs; ++m)
    specs.push_back(TreeAttrSpec{static_cast<AttrId>(m), FunnelSpec{}, 1.0});
  MonitoringTree t(specs, 1e9, kCost);
  NodeId parent = kCollectorId;
  for (NodeId id = 1; id <= n; ++id) {
    t.attach(BuildItem{id, std::vector<std::uint32_t>(attrs, 1), 1e9}, parent);
    parent = id;
  }
  return t;
}

void BM_CanAttachDeep(benchmark::State& state) {
  auto tree = chain_tree(state.range(0), 4);
  const BuildItem item{9999, {1, 1, 1, 1}, 1e9};
  const NodeId deepest = static_cast<NodeId>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(tree.can_attach(item, deepest));
}
BENCHMARK(BM_CanAttachDeep)->Arg(16)->Arg(128);

// ---- tree-kernel probes (ISSUE 4): direct measurements of the arena's
// hot paths, so future kernel changes see regressions immediately. --------

/// Attach throughput: grow a 3-wide tree to `n` members, then tear it down
/// and grow it again every iteration. Dominated by try_attach (fused
/// feasibility walk + apply) and slot recycling.
void BM_AttachThroughput(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<TreeAttrSpec> specs{{0, FunnelSpec{}, 1.0}, {1, FunnelSpec{}, 1.0}};
  MonitoringTree t(specs, 1e9, kCost);
  std::vector<BuildItem> items;
  for (NodeId id = 1; id <= n; ++id)
    items.push_back(BuildItem{id, {1, 1}, 1e9});
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId parent = i < 3 ? kCollectorId : static_cast<NodeId>(i / 3);
      benchmark::DoNotOptimize(t.try_attach(items[i], parent));
    }
    state.PauseTiming();
    for (NodeId c : std::vector<NodeId>(t.children(kCollectorId)))
      (void)t.detach_branch(c);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AttachThroughput)->Arg(64)->Arg(512);

/// Feasibility-test throughput on a deep chain: the allocation-free upward
/// walk (scratch buffers, flat arrays) with no mutation.
void BM_FeasibilityWalk(benchmark::State& state) {
  auto tree = chain_tree(state.range(0), 4);
  const BuildItem item{9999, {1, 1, 1, 1}, 1e9};
  const NodeId deepest = static_cast<NodeId>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(tree.can_attach(item, deepest));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FeasibilityWalk)->Arg(16)->Arg(128)->Arg(1024);

/// Rollback cost, snapshot vs journal: undo a detach+reattach of a k-wide
/// branch either by copying the whole n-member tree up front (the pre-arena
/// strategy) or by journaling and replaying inverses (the arena strategy).
/// The journal's cost scales with the branch, not the tree.
void BM_RollbackSnapshot(benchmark::State& state) {
  auto tree = chain_tree(state.range(0), 2);
  const NodeId branch = static_cast<NodeId>(state.range(0) - 8);
  for (auto _ : state) {
    MonitoringTree snapshot = tree;
    auto items = tree.detach_branch(branch);
    benchmark::DoNotOptimize(items);
    tree = std::move(snapshot);
  }
}
BENCHMARK(BM_RollbackSnapshot)->Arg(64)->Arg(512);

void BM_RollbackJournal(benchmark::State& state) {
  auto tree = chain_tree(state.range(0), 2);
  const NodeId branch = static_cast<NodeId>(state.range(0) - 8);
  for (auto _ : state) {
    tree.begin_journal();
    auto items = tree.detach_branch(branch);
    benchmark::DoNotOptimize(items);
    tree.rollback_journal();
  }
}
BENCHMARK(BM_RollbackJournal)->Arg(64)->Arg(512);

void BM_MoveBranch(benchmark::State& state) {
  auto tree = chain_tree(64, 2);
  // Bounce the deepest node between two parents.
  NodeId a = 32, b = 33;
  for (auto _ : state) {
    tree.move_branch(64, a);
    tree.move_branch(64, b);
  }
}
BENCHMARK(BM_MoveBranch);

void BM_BuildTree(benchmark::State& state) {
  const auto scheme = static_cast<TreeScheme>(state.range(1));
  std::vector<TreeAttrSpec> attrs{{0, FunnelSpec{}, 1.0}};
  std::vector<BuildItem> items;
  Rng rng{3};
  for (NodeId id = 1; id <= static_cast<NodeId>(state.range(0)); ++id)
    items.push_back(BuildItem{id, {1}, 40.0 * rng.uniform(0.8, 1.5)});
  const Capacity collector = static_cast<double>(state.range(0)) * 4.0;
  TreeBuildOptions opts;
  opts.scheme = scheme;
  for (auto _ : state)
    benchmark::DoNotOptimize(build_tree(attrs, items, collector, kCost, opts));
}
BENCHMARK(BM_BuildTree)
    ->Args({100, static_cast<long>(TreeScheme::kStar)})
    ->Args({100, static_cast<long>(TreeScheme::kChain)})
    ->Args({100, static_cast<long>(TreeScheme::kAdaptive)});

void BM_MergeGain(benchmark::State& state) {
  Rng rng{4};
  PairSet pairs(201);
  for (NodeId n = 1; n <= 200; ++n)
    for (AttrId a : random_set(rng, 10, 40)) pairs.add(n, a);
  std::vector<AttrId> universe(40);
  for (AttrId a = 0; a < 40; ++a) universe[a] = a;
  const Partition p = Partition::singleton(universe);
  for (auto _ : state)
    benchmark::DoNotOptimize(estimate_merge_gain(p, 3, 17, pairs, kCost));
}
BENCHMARK(BM_MergeGain);

void BM_PlannerSmall(benchmark::State& state) {
  SystemModel system(40, 60.0, kCost);
  system.set_collector_capacity(2000.0);
  Rng rng{5};
  system.assign_random_attributes(16, 6, rng);
  PairSet pairs(41);
  for (NodeId n = 1; n <= 40; ++n)
    for (AttrId a : system.observable(n)) pairs.add(n, a);
  PlannerOptions o;
  o.max_candidates = 8;
  Planner planner(system, o);
  for (auto _ : state) benchmark::DoNotOptimize(planner.plan(pairs));
}
BENCHMARK(BM_PlannerSmall)->Unit(benchmark::kMillisecond);

// Observability overhead check (EXPERIMENTS.md "Bench telemetry"): the
// same planning run with instrumentation enabled vs disabled. The delta
// is the cost of trace spans + mirror metrics; the acceptance bar is ≤2%.
void BM_PlannerObs(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(state.range(0) != 0);
  SystemModel system(40, 60.0, kCost);
  system.set_collector_capacity(2000.0);
  Rng rng{5};
  system.assign_random_attributes(16, 6, rng);
  PairSet pairs(41);
  for (NodeId n = 1; n <= 40; ++n)
    for (AttrId a : system.observable(n)) pairs.add(n, a);
  PlannerOptions o;
  o.max_candidates = 8;
  Planner planner(system, o);
  for (auto _ : state) benchmark::DoNotOptimize(planner.plan(pairs));
  obs::set_enabled(was_enabled);
}
BENCHMARK(BM_PlannerObs)
    ->Arg(0)  // obs disabled (REMO_OBS_DISABLED=1 equivalent)
    ->Arg(1)  // obs enabled (spans + metrics recorded)
    ->Unit(benchmark::kMillisecond);

void BM_CounterAdd(benchmark::State& state) {
  obs::Registry registry;
  obs::Counter& c = registry.counter("bench.counter");
  for (auto _ : state) c.add(1);
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Registry registry;
  obs::Histogram& h =
      registry.histogram("bench.hist", obs::Histogram::time_bounds());
  double v = 1e-6;
  for (auto _ : state) {
    h.observe(v);
    v = v > 10.0 ? 1e-6 : v * 1.7;
  }
}
BENCHMARK(BM_HistogramObserve);

void BM_SpanRecord(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(state.range(0) != 0);
  obs::TraceRecorder recorder(1024);
  for (auto _ : state) {
    const obs::Span span("bench.span", &recorder);
    benchmark::DoNotOptimize(span.active());
  }
  obs::set_enabled(was_enabled);
}
BENCHMARK(BM_SpanRecord)->Arg(0)->Arg(1);

void BM_SimulatorEpoch(benchmark::State& state) {
  SystemModel system(100, 1e6, kCost);
  system.set_collector_capacity(1e9);
  PairSet pairs(101);
  for (NodeId n = 1; n <= 100; ++n) {
    system.set_observable(n, {0, 1, 2, 3});
    for (AttrId a = 0; a < 4; ++a) pairs.add(n, a);
  }
  PlannerOptions o;
  const auto topo = Planner(system, o).plan(pairs);
  RandomWalkSource src(pairs, 6);
  SimConfig cfg;
  cfg.warmup = 0;
  for (auto _ : state) {
    cfg.epochs = 10;
    benchmark::DoNotOptimize(simulate(system, topo, pairs, src, cfg));
  }
}
BENCHMARK(BM_SimulatorEpoch)->Unit(benchmark::kMillisecond);

// ---- deterministic kernel-throughput telemetry (perf-smoke gated) --------
//
// Fixed workloads, fixed iteration counts: the `checksum` column is an
// integer invariant of the work done (success counts + the exact-integer
// total cost), so the perf-smoke gate can require it to match the baseline
// bit-for-bit while the us/op column rides the 2x time gate.

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

void run_kernel_table() {
  bench::subbanner("tree-kernel throughput");
  Table t({"id", "kernel", "n", "iters", "us/op", "ops/sec", "checksum"});
  int id = 0;
  auto report = [&](const std::string& kernel, std::size_t n, std::size_t iters,
                    double secs, std::size_t checksum) {
    t.row()
        .add(++id)
        .add(kernel)
        .add(n)
        .add(iters)
        .add(secs * 1e6 / static_cast<double>(iters), 4)
        .add(static_cast<double>(iters) / secs, 0)
        .add(checksum);
  };

  // walk: the allocation-free upward feasibility walk (can_attach) from the
  // deepest vertex of an n-chain — n hops per op, walks/sec in ops/sec.
  for (std::size_t n : {std::size_t{16}, std::size_t{128}, std::size_t{1024}}) {
    auto tree = chain_tree(n, 4);
    const BuildItem item{9999, {1, 1, 1, 1}, 1e9};
    const NodeId deepest = static_cast<NodeId>(n);
    const std::size_t iters = 2'000'000 / n;
    std::size_t ok = 0;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i)
      if (tree.can_attach(item, deepest)) ++ok;
    report("walk", n, iters, seconds_since(start),
           ok + static_cast<std::size_t>(tree.total_cost()));
  }

  // propagate: update_local at the deepest vertex of an n-chain, bouncing
  // the local counts so every op re-walks and re-propagates the full chain
  // (attrs/sec = ops/sec x 4). The tree ends back in its initial state.
  {
    const std::size_t n = 1024, iters = 8000;
    auto tree = chain_tree(n, 4);
    const NodeId deepest = static_cast<NodeId>(n);
    const std::vector<std::uint32_t> hi{2, 2, 2, 2}, lo{1, 1, 1, 1};
    std::size_t ok = 0;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i)
      if (tree.update_local(deepest, i % 2 == 0 ? hi : lo)) ++ok;
    report("propagate", n, iters, seconds_since(start),
           ok + static_cast<std::size_t>(tree.total_cost()));
  }

  // attach: grow a 3-wide tree to n members and tear it down, repeatedly —
  // the builder's fused try_attach path plus slot recycling.
  {
    const std::size_t n = 512, rounds = 100;
    std::vector<TreeAttrSpec> specs{{0, FunnelSpec{}, 1.0}, {1, FunnelSpec{}, 1.0}};
    MonitoringTree tree(specs, 1e9, kCost);
    std::vector<BuildItem> items;
    for (NodeId v = 1; v <= static_cast<NodeId>(n); ++v)
      items.push_back(BuildItem{v, {1, 1}, 1e9});
    std::size_t ok = 0, cost = 0;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < rounds; ++r) {
      for (std::size_t i = 0; i < n; ++i) {
        const NodeId parent = i < 3 ? kCollectorId : static_cast<NodeId>(i / 3);
        if (tree.try_attach(items[i], parent)) ++ok;
      }
      cost = static_cast<std::size_t>(tree.total_cost());
      for (NodeId c : std::vector<NodeId>(tree.children(kCollectorId)))
        (void)tree.detach_branch(c);
    }
    report("attach", n, rounds * n, seconds_since(start), ok + cost);
  }

  bench::emit(t);
}

}  // namespace
}  // namespace remo

int main(int argc, char** argv) {
  remo::bench::init("micro", argc, argv);
  bool kernels_only = false;
  // Strip the harness's own flags before handing argv to google-benchmark
  // (it rejects flags it does not recognize).
  std::vector<char*> gb_args;
  gb_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--kernels-only") {
      kernels_only = true;
      continue;
    }
    if (a == "--json") {
      if (i + 1 < argc && argv[i + 1][0] != '-') ++i;  // optional path operand
      continue;
    }
    gb_args.push_back(argv[i]);
  }
  remo::bench::banner("micro", "hot-primitive microbenchmarks");
  remo::run_kernel_table();
  if (kernels_only) return 0;
  int gb_argc = static_cast<int>(gb_args.size());
  benchmark::Initialize(&gb_argc, gb_args.data());
  if (benchmark::ReportUnrecognizedArguments(gb_argc, gb_args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
