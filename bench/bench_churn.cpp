// Churn bench (DESIGN.md §13): sustained task-update throughput through
// the delta replanning path — TaskManager mutations stream in as exact
// TaskDeltas, the DeltaTracker coalesces them, and AdaptivePlanner::flush
// replans over the burst. A non-incremental ADAPTIVE reference applies
// the full deduplicated pair set at the very same flush epochs, proving
// the delta path bit-identical (same collected pairs) while skipping the
// full-set diff per replan.
//
// Determinism contract (the perf_smoke gate matches `collected` exactly):
// the tracker runs with the amortized cost estimate disabled
// (staleness_cost_per_pair_second = 0) so the flush cadence depends only
// on the synthetic epoch clock — wall time is measured but never feeds a
// decision. Timing columns are machine-dependent and gated with slack;
// everything else is bit-reproducible.
#include "bench/bench_support.h"

#include <chrono>
#include <limits>

#include "adapt/adaptive_planner.h"
#include "planner/topology.h"

namespace remo::bench {
namespace {

constexpr CostModel kCost{10.0, 1.0};
constexpr std::size_t kUniverse = 24;
constexpr std::size_t kBatches = 96;
// Hard age bound in synthetic epochs (one epoch per batch): every flush
// coalesces this many churn batches. Sustained throughput is the whole
// point here, so bursts are large and the local search runs on the quick
// budget below — quality is pinned by the collected column and the
// bit-identity check, not by search depth.
constexpr double kFlushEveryEpochs = 32.0;
constexpr std::size_t kMaxCandidates = 8;
constexpr std::size_t kMaxIterations = 32;

struct ChurnResult {
  std::size_t updates = 0;        // task modifications processed
  std::size_t replans = 0;        // tracker flushes (incl. final drain)
  std::size_t pairs_changed = 0;  // Σ |coalesced delta| over replans
  double churn_seconds = 0.0;     // manager mutation (shared by both paths)
  double incr_seconds = 0.0;      // enqueue + flush decisions + delta replans
  double ref_seconds = 0.0;       // dedup + full-diff apply_update replans
  double naive_seconds = 0.0;     // per-batch full-diff replans (no coalescing)
  std::size_t naive_replans = 0;  // one per batch, by construction
  std::size_t collected = 0;      // collected pairs at end (delta path)
  bool identical = true;          // delta vs reference, at every flush
  obs::Histogram::Snapshot latency;  // planner.delta.replan_seconds
};

double since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Upper bound (ms) of the histogram bucket holding quantile `q` — the
/// resolution planner.delta.replan_seconds offers (decade buckets).
double quantile_upper_ms(const obs::Histogram::Snapshot& h, double q) {
  if (h.count == 0) return 0.0;
  const double target = q * static_cast<double>(h.count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    seen += h.counts[i];
    if (static_cast<double>(seen) >= target)
      return (i < h.bounds.size() ? h.bounds[i] : h.bounds.back() * 10.0) * 1e3;
  }
  return h.bounds.back() * 10.0 * 1e3;
}

ChurnResult run_churn(std::size_t nodes) {
  // Provisioned for sustained churn: enough per-node and collector slack
  // that replans stay in the cheap greedy-construction regime (the
  // saturation-driven adjusting procedure is Fig. 10's subject, not this
  // bench's — under starvation a single replan costs seconds and no
  // coalescing policy can reach the throughput floor).
  SystemModel system(nodes, 360.0, kCost);
  system.set_collector_capacity(16.0 * static_cast<double>(nodes));
  Rng attr_rng{3};
  system.assign_random_attributes(kUniverse, 8, attr_rng);

  TaskManager manager(&system);
  WorkloadGenerator gen(system, WorkloadConfig{.attr_universe = kUniverse}, 23);
  for (auto& t : gen.small_tasks(nodes)) manager.add_task(std::move(t));

  // Private registries: the latency histogram then holds exactly this
  // run's delta replans, and the reference planner's series stay apart.
  obs::Registry incr_registry;
  PlannerOptions incr_options = planner_options(PartitionScheme::kRemo);
  incr_options.max_candidates = kMaxCandidates;
  incr_options.max_iterations = kMaxIterations;
  incr_options.metrics = &incr_registry;
  DeltaTrackerOptions tracker;
  tracker.max_defer_seconds = kFlushEveryEpochs;
  tracker.max_pending_pairs = std::numeric_limits<std::size_t>::max();
  tracker.staleness_cost_per_pair_second = 0.0;  // deterministic cadence
  AdaptivePlanner incr(system, incr_options, AdaptScheme::kAdaptive, tracker);

  obs::Registry ref_registry;
  PlannerOptions ref_options = incr_options;
  ref_options.metrics = &ref_registry;
  AdaptivePlanner ref(system, ref_options, AdaptScheme::kAdaptive);

  // The no-coalescing strawman: a full dedup + diff + replan after every
  // batch, the cadence the core used before the delta path existed. Only
  // its cost is recorded — correctness is pinned by `ref` above, which
  // replans at the delta path's exact epochs so topologies are comparable.
  obs::Registry naive_registry;
  PlannerOptions naive_options = incr_options;
  naive_options.metrics = &naive_registry;
  AdaptivePlanner naive(system, naive_options, AdaptScheme::kAdaptive);

  const PairSet initial = manager.dedup(system.num_vertices());
  incr.initialize(initial, 0.0);
  ref.initialize(initial, 0.0);
  naive.initialize(initial, 0.0);

  ChurnResult out;
  Rng churn{17};
  const auto replan_both = [&](double now) {
    auto t0 = std::chrono::steady_clock::now();
    const AdaptReport report = incr.flush(now);
    out.incr_seconds += since(t0);
    ++out.replans;
    out.pairs_changed += report.pairs_changed;

    t0 = std::chrono::steady_clock::now();
    ref.apply_update(manager.dedup(system.num_vertices()), now);
    out.ref_seconds += since(t0);
    if (collected_pairs_of(incr.topology()) !=
        collected_pairs_of(ref.topology()))
      out.identical = false;
  };

  for (std::size_t b = 1; b <= kBatches; ++b) {
    const double now = static_cast<double>(b);
    auto t0 = std::chrono::steady_clock::now();
    const UpdateBatchStats stats =
        apply_update_batch(manager, system, kUniverse, churn);
    out.churn_seconds += since(t0);
    out.updates += stats.tasks_modified;

    t0 = std::chrono::steady_clock::now();
    incr.enqueue_delta(stats.delta, now);
    const bool flush = incr.should_flush(now);
    out.incr_seconds += since(t0);
    if (flush) replan_both(now);

    t0 = std::chrono::steady_clock::now();
    naive.apply_update(manager.dedup(system.num_vertices()), now);
    out.naive_seconds += since(t0);
    ++out.naive_replans;
  }
  // Drain the tail so both planners end on the full churn stream.
  if (incr.has_pending()) replan_both(static_cast<double>(kBatches + 1));

  out.collected = incr.topology().collected_pairs();
  out.latency = incr_registry
                    .histogram("planner.delta.replan_seconds",
                               obs::Histogram::time_bounds())
                    .snapshot();
  // Ride the per-size counters into the bench JSON telemetry.
  obs::publish_labeled(incr_registry.snapshot(), "n" + std::to_string(nodes),
                       obs::Registry::global());
  return out;
}

}  // namespace
}  // namespace remo::bench

int main(int argc, char** argv) {
  remo::bench::init("churn", argc, argv);
  using namespace remo::bench;
  banner("Churn", "delta replanning under continuous task churn");

  const std::vector<std::size_t> sizes{80, 160, 320};
  std::vector<ChurnResult> results;
  results.reserve(sizes.size());
  for (std::size_t n : sizes) results.push_back(run_churn(n));

  subbanner("incremental churn replanning (delta enqueue/flush path)");
  {
    remo::Table t({"nodes", "batches", "updates", "replans", "us/update",
                   "updates/sec", "collected", "identical"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto& r = results[i];
      const double seconds = r.churn_seconds + r.incr_seconds;
      t.row()
          .add(static_cast<long long>(sizes[i]))
          .add(static_cast<long long>(kBatches))
          .add(static_cast<long long>(r.updates))
          .add(static_cast<long long>(r.replans))
          .add(seconds / static_cast<double>(r.updates) * 1e6, 2)
          .add(static_cast<double>(r.updates) / seconds, 0)
          .add(static_cast<long long>(r.collected))
          .add(r.identical ? "yes" : "NO");
    }
    emit(t);
  }

  subbanner("replan latency (planner.delta.replan_seconds histogram)");
  {
    remo::Table t({"nodes", "replans", "pairs changed", "mean (ms)",
                   "p50 <= (ms)", "p99 <= (ms)"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto& r = results[i];
      t.row()
          .add(static_cast<long long>(sizes[i]))
          .add(static_cast<long long>(r.replans))
          .add(static_cast<long long>(r.pairs_changed))
          .add(r.latency.mean() * 1e3, 2)
          .add(quantile_upper_ms(r.latency, 0.50), 2)
          .add(quantile_upper_ms(r.latency, 0.99), 2);
    }
    emit(t);
  }

  subbanner("coalescing amortization (vs per-batch full-diff replanning)");
  {
    remo::Table t({"nodes", "replans", "naive replans", "incr us/update",
                   "naive us/update", "speedup"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto& r = results[i];
      const double incr = r.churn_seconds + r.incr_seconds;
      const double naive = r.churn_seconds + r.naive_seconds;
      t.row()
          .add(static_cast<long long>(sizes[i]))
          .add(static_cast<long long>(r.replans))
          .add(static_cast<long long>(r.naive_replans))
          .add(incr / static_cast<double>(r.updates) * 1e6, 2)
          .add(naive / static_cast<double>(r.updates) * 1e6, 2)
          .add(naive / incr, 2);
    }
    emit(t);
    std::printf(
        "(naive = dedup + full-set diff + replan after every batch, the\n"
        "pre-delta cadence; the delta path coalesces bursts per the Sec. 4.2\n"
        "bound and replans per burst. Bit-identity is checked against a\n"
        "same-epoch reference, so the speedup buys zero planning drift)\n");
  }
  return 0;
}
