// Fig. 7 — "Comparison of tree construction schemes under different
// workload and system characteristics".
//
// Schemes: STAR, CHAIN, MAX_AVB (the TMON heuristic), ADAPTIVE (REMO).
// To isolate tree construction, every run uses SINGLETON-SET partitioning
// (many trees per node: the regime where a scheme's relay/overhead
// trade-off shows up as coverage, not just cost). Sweeps:
//
//   (a) attributes monitored per node (workload weight)
//   (b) per-node capacity slack beyond the node's own sends
//   (c) number of nodes
//   (d) C/a ratio
//
// Expected shapes (Sec. 7.1): ADAPTIVE best everywhere; CHAIN good only
// under light load and worst under heavy load (relay cost); STAR strong
// under heavy load; MAX_AVB in between, degrading as workload grows.
#include "bench/bench_support.h"

namespace remo::bench {
namespace {

double tree_coverage(const Scenario& s, TreeScheme scheme) {
  return coverage(s, planner_options(PartitionScheme::kSingletonSet, scheme));
}

Scenario scheme_scenario(std::size_t nodes, std::size_t attrs_per_node,
                         double slack, CostModel cost, std::uint64_t seed) {
  const Capacity b =
      static_cast<double>(attrs_per_node) * cost.message_cost(1) + slack;
  return Scenario(nodes, 24, attrs_per_node, b, 4000.0, cost, seed);
}

void header_sweep(Table& t, const Scenario& s, const std::string& label) {
  t.row()
      .add(label)
      .add(tree_coverage(s, TreeScheme::kStar), 1)
      .add(tree_coverage(s, TreeScheme::kChain), 1)
      .add(tree_coverage(s, TreeScheme::kMaxAvb), 1)
      .add(tree_coverage(s, TreeScheme::kAdaptive), 1);
}

void sweep_attrs_per_node() {
  subbanner("Fig. 7a: increasing attributes per node (heavier workload ->)");
  Table t({"attrs/node", "STAR %", "CHAIN %", "MAX_AVB %", "ADAPTIVE %"});
  for (std::size_t x : {2u, 4u, 8u, 12u, 16u}) {
    Scenario s = scheme_scenario(60, x, 30.0, CostModel{10.0, 1.0}, 3);
    s.monitor_everything();
    header_sweep(t, s, std::to_string(x));
  }
  emit(t);
}

void sweep_slack() {
  subbanner("Fig. 7b: increasing per-node slack (lighter workload ->)");
  Table t({"slack", "STAR %", "CHAIN %", "MAX_AVB %", "ADAPTIVE %"});
  for (double slack : {5.0, 15.0, 30.0, 60.0, 120.0, 240.0}) {
    Scenario s = scheme_scenario(60, 8, slack, CostModel{10.0, 1.0}, 3);
    s.monitor_everything();
    header_sweep(t, s, std::to_string(static_cast<int>(slack)));
  }
  emit(t);
}

void sweep_nodes() {
  subbanner("Fig. 7c: increasing number of nodes");
  Table t({"nodes", "STAR %", "CHAIN %", "MAX_AVB %", "ADAPTIVE %"});
  for (std::size_t n : {30u, 60u, 120u, 200u}) {
    Scenario s = scheme_scenario(n, 8, 30.0, CostModel{10.0, 1.0}, 5);
    s.monitor_everything();
    header_sweep(t, s, std::to_string(n));
  }
  emit(t);
}

void sweep_overhead() {
  subbanner("Fig. 7d: increasing C/a ratio");
  Table t({"C/a", "STAR %", "CHAIN %", "MAX_AVB %", "ADAPTIVE %"});
  for (double c : {2.0, 5.0, 10.0, 20.0, 40.0}) {
    Scenario s = scheme_scenario(60, 8, 30.0, CostModel{c, 1.0}, 7);
    s.monitor_everything();
    header_sweep(t, s, std::to_string(static_cast<int>(c)));
  }
  emit(t);
}

}  // namespace
}  // namespace remo::bench

int main(int argc, char** argv) {
  remo::bench::init("fig7_tree_schemes", argc, argv);
  remo::bench::banner("Fig. 7",
                      "tree construction schemes (% collected, singleton "
                      "partitioning isolates the tree builder)");
  remo::bench::sweep_attrs_per_node();
  remo::bench::sweep_slack();
  remo::bench::sweep_nodes();
  remo::bench::sweep_overhead();
  return 0;
}
