// Shared scaffolding for the figure-reproduction benches. Each bench binary
// regenerates one figure of the paper's evaluation (Sec. 7) as an aligned
// text table; EXPERIMENTS.md records the series next to the paper's.
//
// Machine-readable telemetry (EXPERIMENTS.md, "Bench telemetry"): every
// bench main calls init(name, argc, argv); with `--json [path]` (or the
// REMO_BENCH_JSON env fallback) the process writes BENCH_<name>.json at
// exit, containing every emitted table section plus a snapshot of the
// global obs metrics registry — the engine/sim/recovery counters the run
// accumulated. This is what lets the perf trajectory build up across PRs
// without scraping text tables.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sorted_vector.h"
#include "common/table.h"
#include "cost/system_model.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "planner/planner.h"
#include "task/task_manager.h"
#include "task/workload.h"

namespace remo::bench {

/// One synthetic-dataset scenario (Sec. 7 setup): a system with random
/// per-node observable attributes plus a task-driven pair set.
struct Scenario {
  SystemModel system;
  TaskManager manager;
  PairSet pairs;

  Scenario(std::size_t nodes, std::size_t universe, std::size_t attrs_per_node,
           Capacity node_cap, Capacity collector_cap, CostModel cost,
           std::uint64_t seed)
      : system(nodes, node_cap, cost), manager(&system), pairs(nodes + 1) {
    system.set_collector_capacity(collector_cap);
    Rng rng{seed};
    system.assign_random_attributes(universe, attrs_per_node, rng);
  }

  /// Adds tasks and refreshes the deduplicated pair set.
  void add_tasks(std::vector<MonitoringTask> tasks) {
    for (auto& t : tasks) manager.add_task(std::move(t));
    refresh();
  }

  /// Monitors every observable attribute on every node (full coverage —
  /// the heaviest workload).
  void monitor_everything() {
    MonitoringTask t;
    t.nodes = system.monitoring_nodes();
    std::vector<AttrId> all;
    for (NodeId n : t.nodes)
      for (AttrId a : system.observable(n)) all.push_back(a);
    sort_unique(all);
    t.attrs = std::move(all);
    manager.add_task(std::move(t));
    refresh();
  }

  void refresh() { pairs = manager.dedup(system.num_vertices()); }
};

inline PlannerOptions planner_options(PartitionScheme scheme,
                                      TreeScheme tree = TreeScheme::kAdaptive,
                                      AllocationScheme alloc = AllocationScheme::kOrdered) {
  PlannerOptions o;
  o.partition_scheme = scheme;
  o.tree.scheme = tree;
  o.allocation = alloc;
  // Bench-sized search budget: plenty for convergence at these scales while
  // keeping the full sweep under a minute per figure.
  o.max_candidates = 16;
  o.max_iterations = 256;
  return o;
}

inline double coverage(const Scenario& s, const PlannerOptions& o) {
  return Planner(s.system, o).plan(s.pairs).coverage() * 100.0;  // percent
}

// ---- machine-readable run telemetry ---------------------------------------

/// Per-process telemetry state behind init()/emit(): the recorded table
/// sections plus where (if anywhere) to write them.
struct BenchRun {
  std::string name;             ///< e.g. "fig10_optimization"
  std::string json_path;        ///< empty = JSON output disabled
  std::string current_section;  ///< last subbanner, labels the next table
  struct Section {
    std::string title;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };
  std::vector<Section> sections;
};

inline BenchRun& bench_run() {
  static BenchRun run;
  return run;
}

namespace detail {

/// JSON string literal: quoted, with `"` and `\` escaped.
inline std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

/// Table cells are preformatted strings; re-emit the numeric ones as JSON
/// numbers so consumers get series, not strings.
inline std::string json_cell(const std::string& cell) {
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  (void)v;
  const bool numeric = !cell.empty() && end != nullptr && *end == '\0' &&
                       cell.find_first_of("nNiI") == std::string::npos;  // no nan/inf
  if (numeric) return cell;
  return json_quote(cell);
}

inline void write_bench_json() {
  const BenchRun& run = bench_run();
  if (run.json_path.empty()) return;
  std::string out = "{\n";
  out += "  \"bench\": " + json_quote(run.name) + ",\n";
  out += "  \"sections\": [\n";
  for (std::size_t s = 0; s < run.sections.size(); ++s) {
    const auto& sec = run.sections[s];
    out += "    {\n";
    out += "      \"title\": " + json_quote(sec.title) + ",\n";
    out += "      \"headers\": [";
    for (std::size_t i = 0; i < sec.headers.size(); ++i) {
      if (i) out += ", ";
      out += json_quote(sec.headers[i]);
    }
    out += "],\n";
    out += "      \"rows\": [\n";
    for (std::size_t r = 0; r < sec.rows.size(); ++r) {
      out += "        [";
      for (std::size_t i = 0; i < sec.rows[r].size(); ++i) {
        if (i) out += ", ";
        out += json_cell(sec.rows[r][i]);
      }
      out += r + 1 < sec.rows.size() ? "],\n" : "]\n";
    }
    out += "      ]\n";
    out += s + 1 < run.sections.size() ? "    },\n" : "    }\n";
  }
  out += "  ],\n";
  out += "  \"metrics\": ";
  std::string metrics = obs::to_json(obs::Registry::global().snapshot(), 2);
  // Drop the indent of the opening brace: it follows "\"metrics\": ".
  metrics.erase(0, metrics.find('{'));
  out += metrics;
  out += "\n}\n";
  std::ofstream file(run.json_path);
  if (!file) {
    std::fprintf(stderr, "bench: cannot write %s\n", run.json_path.c_str());
    return;
  }
  file << out;
  std::fprintf(stderr, "bench: wrote %s\n", run.json_path.c_str());
}

}  // namespace detail

/// Call first in every bench main. Parses `--json [path]` (default path
/// BENCH_<name>.json in the working directory); when absent, the
/// REMO_BENCH_JSON environment variable is the fallback — a value ending
/// in ".json" is used as the path, anything else as a directory to drop
/// BENCH_<name>.json into. The file is written at process exit.
inline void init(const std::string& name, int argc, char** argv) {
  BenchRun& run = bench_run();
  run.name = name;
  const std::string default_file = "BENCH_" + name + ".json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) != "--json") continue;
    if (i + 1 < argc && argv[i + 1][0] != '-')
      run.json_path = argv[i + 1];
    else
      run.json_path = default_file;
  }
  if (run.json_path.empty()) {
    if (const char* env = std::getenv("REMO_BENCH_JSON"); env && env[0]) {
      std::string value = env;
      if (value.size() >= 5 && value.compare(value.size() - 5, 5, ".json") == 0) {
        run.json_path = value;
      } else {
        if (value.back() == '/') value.pop_back();
        run.json_path = value + "/" + default_file;
      }
    }
  }
  if (!run.json_path.empty()) std::atexit(detail::write_bench_json);
}

/// Print a series table AND record it as a JSON section (under the last
/// subbanner's title). Benches route every table through this.
inline void emit(const Table& t, std::ostream& os = std::cout) {
  t.print(os);
  BenchRun& run = bench_run();
  if (run.json_path.empty()) return;
  run.sections.push_back(
      BenchRun::Section{run.current_section, t.headers(), t.rows()});
}

/// Header printed by every bench so bench_output.txt is self-describing.
inline void banner(const std::string& figure, const std::string& caption) {
  std::printf("\n=== %s — %s ===\n", figure.c_str(), caption.c_str());
}

inline void subbanner(const std::string& text) {
  std::printf("\n--- %s ---\n", text.c_str());
  bench_run().current_section = text;
}

}  // namespace remo::bench
