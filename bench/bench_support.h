// Shared scaffolding for the figure-reproduction benches. Each bench binary
// regenerates one figure of the paper's evaluation (Sec. 7) as an aligned
// text table; EXPERIMENTS.md records the series next to the paper's.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sorted_vector.h"
#include "common/table.h"
#include "cost/system_model.h"
#include "planner/planner.h"
#include "task/task_manager.h"
#include "task/workload.h"

namespace remo::bench {

/// One synthetic-dataset scenario (Sec. 7 setup): a system with random
/// per-node observable attributes plus a task-driven pair set.
struct Scenario {
  SystemModel system;
  TaskManager manager;
  PairSet pairs;

  Scenario(std::size_t nodes, std::size_t universe, std::size_t attrs_per_node,
           Capacity node_cap, Capacity collector_cap, CostModel cost,
           std::uint64_t seed)
      : system(nodes, node_cap, cost), manager(&system), pairs(nodes + 1) {
    system.set_collector_capacity(collector_cap);
    Rng rng{seed};
    system.assign_random_attributes(universe, attrs_per_node, rng);
  }

  /// Adds tasks and refreshes the deduplicated pair set.
  void add_tasks(std::vector<MonitoringTask> tasks) {
    for (auto& t : tasks) manager.add_task(std::move(t));
    refresh();
  }

  /// Monitors every observable attribute on every node (full coverage —
  /// the heaviest workload).
  void monitor_everything() {
    MonitoringTask t;
    t.nodes = system.monitoring_nodes();
    std::vector<AttrId> all;
    for (NodeId n : t.nodes)
      for (AttrId a : system.observable(n)) all.push_back(a);
    sort_unique(all);
    t.attrs = std::move(all);
    manager.add_task(std::move(t));
    refresh();
  }

  void refresh() { pairs = manager.dedup(system.num_vertices()); }
};

inline PlannerOptions planner_options(PartitionScheme scheme,
                                      TreeScheme tree = TreeScheme::kAdaptive,
                                      AllocationScheme alloc = AllocationScheme::kOrdered) {
  PlannerOptions o;
  o.partition_scheme = scheme;
  o.tree.scheme = tree;
  o.allocation = alloc;
  // Bench-sized search budget: plenty for convergence at these scales while
  // keeping the full sweep under a minute per figure.
  o.max_candidates = 16;
  o.max_iterations = 256;
  return o;
}

inline double coverage(const Scenario& s, const PlannerOptions& o) {
  return Planner(s.system, o).plan(s.pairs).coverage() * 100.0;  // percent
}

/// Header printed by every bench so bench_output.txt is self-describing.
inline void banner(const std::string& figure, const std::string& caption) {
  std::printf("\n=== %s — %s ===\n", figure.c_str(), caption.c_str());
}

inline void subbanner(const std::string& text) {
  std::printf("\n--- %s ---\n", text.c_str());
}

}  // namespace remo::bench
