// Service-mode replay bench (DESIGN.md §14): StreamApplication traffic
// replayed through the MonitoringDaemon's async ingest path — one value
// batch per node per epoch, exactly what a fleet of node agents would
// push — with a batch-mode FederatedMonitoringSystem mirror applying the
// same churn at the same virtual clock, proving the daemon's collected
// pairs bit-identical while the bench measures ingest throughput and the
// obs-backed ingest-to-collected latency histogram.
//
// Determinism contract (the perf_smoke gate matches `collected` exactly):
// the daemon runs on its virtual clock, so plans, flush cadences, and the
// latency histogram are pure functions of the command sequence — wall
// time is measured but never feeds a decision. Timing columns are
// machine-dependent and gated with slack; everything else is
// bit-reproducible.
//
// The second section deliberately overloads the daemon (per-epoch value
// budget at half the offered load, a low shed watermark) to show
// backpressure degrading gracefully: deferral debt and shed values are
// accounted, never silent, and the latency tail stretches into multiple
// epochs while the plan stays intact.
#include "bench/bench_support.h"

#include <chrono>
#include <string>
#include <vector>

#include "federation/federated_system.h"
#include "service/daemon.h"
#include "streamapp/stream_app.h"

namespace remo::bench {
namespace {

constexpr CostModel kCost{10.0, 1.0};
constexpr std::size_t kEpochs = 64;
constexpr std::size_t kChurnEvery = 8;  ///< one task modify per 8 epochs

double since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Upper bound (in epochs; epoch_duration = 1) of the histogram bucket
/// holding quantile `q` of service.ingest_to_collected_seconds.
double quantile_upper_epochs(const obs::Histogram::Snapshot& h, double q) {
  if (h.count == 0) return 0.0;
  const double target = q * static_cast<double>(h.count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    seen += h.counts[i];
    if (static_cast<double>(seen) >= target)
      return i < h.bounds.size() ? h.bounds[i] : h.bounds.back() * 2.0;
  }
  return h.bounds.back() * 2.0;
}

struct ReplayResult {
  std::size_t epochs = 0;
  std::size_t values_offered = 0;   // values pushed at the producers
  std::size_t values_applied = 0;   // values the run loop ingested
  std::size_t values_shed = 0;      // dropped at admission (overload run)
  std::size_t deferred = 0;         // Σ value·epochs of queued backlog
  std::size_t replans = 0;          // task modifies routed through the bus
  std::size_t collected = 0;        // collected pairs at the final epoch
  bool identical = true;            // daemon vs batch mirror, every epoch
  double ingest_seconds = 0.0;      // submit + run_epoch wall time
  obs::Histogram::Snapshot latency; // service.ingest_to_collected_seconds
};

/// Replays kEpochs of streamapp traffic. `value_budget` caps values
/// applied per epoch (0 = keep up with the offered load); `mirror` adds
/// the batch-mode bit-identity check (skipped in the overload run, where
/// shedding is the subject, not equivalence).
ReplayResult run_replay(std::size_t nodes, std::size_t value_budget,
                        bool mirror) {
  SystemModel model(nodes, 360.0, kCost);
  model.set_collector_capacity(16.0 * static_cast<double>(nodes));
  StreamAppConfig app_config;
  app_config.num_operators = nodes;
  StreamApplication app(model, app_config, /*seed=*/41);

  obs::Registry registry;
  service::DaemonOptions options;
  options.federation.shard.planner = planner_options(PartitionScheme::kRemo);
  options.federation.shard.planner.max_candidates = 8;
  options.federation.shard.planner.max_iterations = 32;
  options.max_values_per_epoch = value_budget;
  if (value_budget > 0)  // overload run: shed once the backlog is deep
    options.bus = service::BusOptions{.capacity = 2048, .shed_watermark = 1024};
  options.metrics = &registry;
  service::MonitoringDaemon daemon(model, options);

  obs::Registry mirror_registry;
  federation::FederationOptions mirror_options;
  mirror_options.shard = options.federation.shard;
  mirror_options.metrics = &mirror_registry;
  federation::FederatedMonitoringSystem batch(model, mirror_options);

  // Task set over the streamapp's attribute universe; churned below.
  WorkloadGenerator gen(
      model, WorkloadConfig{.attr_universe = app.attr_universe()}, 29);
  std::vector<MonitoringTask> tasks = gen.small_tasks(nodes / 4);
  std::vector<TaskId> ids;
  TaskId next_id = 1;
  for (const auto& t : tasks) {
    daemon.submit_add_task(t);
    MonitoringTask copy = t;
    copy.id = 0;
    batch.add_task(std::move(copy));
    ids.push_back(next_id++);
  }

  ReplayResult out;
  Rng churn{57};
  for (std::size_t e = 1; e <= kEpochs; ++e) {
    // Traffic generation is the application's cost, not the daemon's —
    // untimed.
    app.advance(e);
    const auto values = app.current_values();

    MonitoringTask modified;
    const bool do_churn = e % kChurnEvery == 0;
    if (do_churn) {
      const std::size_t i = churn.below(tasks.size());
      MonitoringTask next = tasks[i];
      next.attrs.clear();
      next.attrs.push_back(
          static_cast<AttrId>(churn.below(app.attr_universe())));
      next.attrs.push_back(
          static_cast<AttrId>(churn.below(app.attr_universe())));
      sort_unique(next.attrs);
      tasks[i] = next;
      next.id = ids[i];
      modified = next;
    }

    const auto t0 = std::chrono::steady_clock::now();
    // One batch per node — the shape a fleet of per-node agents produces.
    std::vector<service::ValueUpdate> node_batch;
    for (std::size_t i = 0; i < values.size();) {
      const NodeId node = values[i].first.node;
      node_batch.clear();
      for (; i < values.size() && values[i].first.node == node; ++i)
        node_batch.push_back(service::ValueUpdate{
            node, values[i].first.attr, values[i].second});
      out.values_offered += node_batch.size();
      daemon.submit_values(node, node_batch);
    }
    if (do_churn) {
      daemon.submit_modify_task(modified);
      ++out.replans;
    }
    daemon.run_epoch();
    out.ingest_seconds += since(t0);

    if (mirror) {
      if (do_churn) batch.modify_task(modified);
      batch.end_epoch(e);
      if (daemon.last_collected() !=
          batch.collected_pairs(static_cast<double>(e)))
        out.identical = false;
    }
  }

  out.epochs = kEpochs;
  out.values_applied = daemon.stats().values_applied;
  out.values_shed = daemon.bus().stats().values_shed;
  out.deferred = daemon.stats().value_epochs_deferred;
  out.collected = daemon.last_collected().size();
  const auto snap = registry.snapshot();
  if (auto it = snap.histograms.find("service.ingest_to_collected_seconds");
      it != snap.histograms.end())
    out.latency = it->second;
  // Ride the per-size service counters into the bench JSON telemetry.
  obs::publish_labeled(snap, "n" + std::to_string(nodes),
                       obs::Registry::global());
  return out;
}

}  // namespace
}  // namespace remo::bench

int main(int argc, char** argv) {
  remo::bench::init("service", argc, argv);
  using namespace remo::bench;
  banner("Service", "daemon ingest replay over streamapp traffic");

  const std::vector<std::size_t> sizes{80, 160, 320};

  subbanner("service ingest replay (keep-up: no budget, bit-identity on)");
  {
    std::vector<ReplayResult> results;
    results.reserve(sizes.size());
    for (std::size_t n : sizes) results.push_back(run_replay(n, 0, true));

    remo::Table t({"nodes", "epochs", "values", "replans", "us/value",
                   "values/sec", "p50 <= (epochs)", "p99 <= (epochs)",
                   "collected", "identical"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto& r = results[i];
      t.row()
          .add(static_cast<long long>(sizes[i]))
          .add(static_cast<long long>(r.epochs))
          .add(static_cast<long long>(r.values_applied))
          .add(static_cast<long long>(r.replans))
          .add(r.ingest_seconds / static_cast<double>(r.values_applied) * 1e6,
               3)
          .add(static_cast<double>(r.values_applied) / r.ingest_seconds, 0)
          .add(quantile_upper_epochs(r.latency, 0.50), 0)
          .add(quantile_upper_epochs(r.latency, 0.99), 0)
          .add(static_cast<long long>(r.collected))
          .add(r.identical ? "yes" : "NO");
    }
    emit(t);
    std::printf(
        "(one value batch per node per epoch through the bus; the mirror\n"
        "applies identical churn to a batch-mode federation at the same\n"
        "virtual clock — `identical` pins the daemon's collected pairs to\n"
        "it at every epoch. Latency is virtual: a value applied and\n"
        "collected in its submission epoch scores <= 1 epoch)\n");
  }

  subbanner("overload replay (value budget at ~half load, low watermark)");
  {
    remo::Table t({"nodes", "offered", "applied", "shed", "deferred v*e",
                   "p50 <= (epochs)", "p99 <= (epochs)"});
    for (std::size_t n : sizes) {
      // Offered load is ~8 values per operator-hosting node per epoch;
      // budget half of it so the backlog grows and the watermark engages.
      const std::size_t budget = n * 4;
      const ReplayResult r = run_replay(n, budget, false);
      t.row()
          .add(static_cast<long long>(n))
          .add(static_cast<long long>(r.values_offered))
          .add(static_cast<long long>(r.values_applied))
          .add(static_cast<long long>(r.values_shed))
          .add(static_cast<long long>(r.deferred))
          .add(quantile_upper_epochs(r.latency, 0.50), 0)
          .add(quantile_upper_epochs(r.latency, 0.99), 0);
    }
    emit(t);
    std::printf(
        "(admission keeps the loss observable: every value is applied,\n"
        "queued (deferred, stretching the latency tail), or shed at the\n"
        "watermark and counted — never silently dropped)\n");
  }
  return 0;
}
