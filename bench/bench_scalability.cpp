// Planning-time scalability (not a paper figure, but the property the
// guided search exists to protect — Sec. 3: "this guiding feature is
// essential for the scalability of large-scale application state
// monitoring systems"). Reports wall time and candidate evaluations of a
// full REMO plan as nodes and the attribute universe grow, next to the
// two baselines (which build once, no search) — and, since the federation
// tier (DESIGN.md §12), per-shard planning time as the same workload is
// split across K shard-local cores.
//
// `--full` additionally runs the 100k-node federated section (~3-4 min on
// one core); the default run keeps CI-sized sections only.
#include <chrono>
#include <cstring>

#include "bench/bench_support.h"
#include "federation/federated_system.h"

namespace remo::bench {
namespace {

constexpr CostModel kCost{10.0, 1.0};

struct Timing {
  double seconds = 0.0;
  std::size_t evaluations = 0;
  double coverage = 0.0;
};

Timing run(std::size_t nodes, std::size_t universe, PartitionScheme scheme) {
  Scenario s(nodes, universe, universe * 2 / 3, 60.0,
             15.0 * static_cast<double>(nodes), kCost, 7);
  WorkloadGenerator gen(s.system, WorkloadConfig{.attr_universe = universe}, 9);
  s.add_tasks(gen.small_tasks(nodes));
  Planner planner(s.system, planner_options(scheme));
  const auto start = std::chrono::steady_clock::now();
  const Topology topo = planner.plan(s.pairs);
  Timing t;
  t.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  t.evaluations = planner.last_evaluations();
  t.coverage = topo.coverage() * 100.0;
  return t;
}

void sweep_nodes() {
  subbanner("planning time vs nodes (universe 36)");
  Table t({"nodes", "REMO (s)", "evaluations", "REMO %", "SINGLETON (s)",
           "ONE-SET (s)"});
  for (std::size_t n : {50u, 100u, 200u, 400u}) {
    const auto remo = run(n, 36, PartitionScheme::kRemo);
    const auto single = run(n, 36, PartitionScheme::kSingletonSet);
    const auto one = run(n, 36, PartitionScheme::kOneSet);
    t.row()
        .add(static_cast<long long>(n))
        .add(remo.seconds, 2)
        .add(static_cast<long long>(remo.evaluations))
        .add(remo.coverage, 1)
        .add(single.seconds, 2)
        .add(one.seconds, 2);
  }
  emit(t);
}

void sweep_universe() {
  subbanner("planning time vs attribute universe (100 nodes)");
  Table t({"attrs", "REMO (s)", "evaluations", "REMO %"});
  for (std::size_t a : {12u, 24u, 48u, 96u}) {
    const auto remo = run(100, a, PartitionScheme::kRemo);
    t.row()
        .add(static_cast<long long>(a))
        .add(remo.seconds, 2)
        .add(static_cast<long long>(remo.evaluations))
        .add(remo.coverage, 1);
  }
  emit(t);
}

// ---- federation tier: planning time vs shard count ----------------------

struct FederatedRun {
  double plan_total = 0.0;  ///< summed per-shard plan seconds (1-core cost)
  double plan_max = 0.0;    ///< slowest shard = federated latency
  std::size_t pairs = 0;
  std::size_t collected = 0;
  std::size_t cross_tasks = 0;
  std::size_t subtasks = 0;
};

/// Plans one synthetic workload through a K-shard federation. The shard
/// cores are planned one by one and timed individually: on parallel
/// hardware the federated planning latency is the max, not the sum.
FederatedRun run_federated(std::size_t nodes, std::size_t num_shards,
                           std::size_t num_tasks, PlannerOptions planner) {
  SystemModel system(nodes, 200.0, kCost);
  system.set_collector_capacity(50.0 * static_cast<double>(nodes));
  Rng rng{7};
  system.assign_random_attributes(48, 8, rng);
  WorkloadGenerator gen(system, WorkloadConfig{.attr_universe = 48}, 9);
  const auto tasks = gen.small_tasks(num_tasks);

  federation::FederationOptions opts;
  opts.num_shards = num_shards;
  opts.shard.planner = planner;
  federation::FederatedMonitoringSystem fed(std::move(system), std::move(opts));
  for (const auto& t : tasks) fed.add_task(t);

  FederatedRun r;
  for (std::size_t s = 0; s < fed.num_shards(); ++s) {
    const auto start = std::chrono::steady_clock::now();
    (void)fed.shard(s).topology(0.0);  // plan this shard, nothing else
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    r.plan_total += sec;
    r.plan_max = std::max(r.plan_max, sec);
  }
  const auto status = fed.status(0.0);
  r.pairs = status.pairs;
  r.collected = status.collected;
  r.cross_tasks = fed.routing().cross_shard_tasks;
  r.subtasks = fed.routing().subtasks_routed;
  // Cross-shard traffic counters land in the --json metrics snapshot
  // (federation.* series in the global registry).
  fed.publish_metrics();
  return r;
}

void emit_federated_rows(Table& t, std::size_t nodes, std::size_t num_tasks,
                         const std::vector<std::size_t>& shard_counts,
                         const PlannerOptions& planner) {
  for (std::size_t k : shard_counts) {
    const auto r = run_federated(nodes, k, num_tasks, planner);
    t.row()
        .add(static_cast<long long>(k))
        .add(r.plan_total, 2)
        .add(r.plan_max, 2)
        .add(static_cast<long long>(r.collected))
        .add(static_cast<long long>(r.pairs))
        .add(static_cast<long long>(r.cross_tasks))
        .add(static_cast<long long>(r.subtasks));
  }
  emit(t);
}

void sweep_shards() {
  subbanner("federated planning vs shard count (2000 nodes)");
  // Budget-capped guided search: full REMO planning per shard core, with a
  // search budget that keeps the K=1 column CI-sized. Collected pairs must
  // not depend on K (the federation conservation property); the win is the
  // max-shard column — the federated planning latency — shrinking as the
  // node space is split.
  PlannerOptions o = planner_options(PartitionScheme::kRemo);
  o.max_candidates = 2;
  o.max_iterations = 8;
  Table t({"K", "plan sum (s)", "max shard (s)", "collected", "pairs",
           "cross tasks", "subtasks"});
  emit_federated_rows(t, 2000, 2000, {1, 2, 4, 8}, o);
}

void federated_100k() {
  subbanner("federated planning at 100k nodes");
  // Web-scale row (the ISSUE 6 acceptance bar): 100k nodes split across
  // K >= 8 shard cores. Guided search is infeasible at this scale on one
  // core — which is the point of the federation — so each shard plans
  // with the no-search one-set scheme; the per-shard latency (max shard)
  // is what a deployment would actually wait on.
  PlannerOptions o = planner_options(PartitionScheme::kOneSet);
  Table t({"K", "plan sum (s)", "max shard (s)", "collected", "pairs",
           "cross tasks", "subtasks"});
  emit_federated_rows(t, 100000, 20000, {8, 16}, o);
}

}  // namespace
}  // namespace remo::bench

int main(int argc, char** argv) {
  remo::bench::init("scalability", argc, argv);
  bool full = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  remo::bench::banner("Scalability", "planner cost vs problem size");
  remo::bench::sweep_nodes();
  remo::bench::sweep_universe();
  remo::bench::sweep_shards();
  if (full) remo::bench::federated_100k();
  return 0;
}
