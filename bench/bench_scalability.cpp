// Planning-time scalability (not a paper figure, but the property the
// guided search exists to protect — Sec. 3: "this guiding feature is
// essential for the scalability of large-scale application state
// monitoring systems"). Reports wall time and candidate evaluations of a
// full REMO plan as nodes and the attribute universe grow, next to the
// two baselines (which build once, no search).
#include <chrono>

#include "bench/bench_support.h"

namespace remo::bench {
namespace {

constexpr CostModel kCost{10.0, 1.0};

struct Timing {
  double seconds = 0.0;
  std::size_t evaluations = 0;
  double coverage = 0.0;
};

Timing run(std::size_t nodes, std::size_t universe, PartitionScheme scheme) {
  Scenario s(nodes, universe, universe * 2 / 3, 60.0,
             15.0 * static_cast<double>(nodes), kCost, 7);
  WorkloadGenerator gen(s.system, WorkloadConfig{.attr_universe = universe}, 9);
  s.add_tasks(gen.small_tasks(nodes));
  Planner planner(s.system, planner_options(scheme));
  const auto start = std::chrono::steady_clock::now();
  const Topology topo = planner.plan(s.pairs);
  Timing t;
  t.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  t.evaluations = planner.last_evaluations();
  t.coverage = topo.coverage() * 100.0;
  return t;
}

void sweep_nodes() {
  subbanner("planning time vs nodes (universe 36)");
  Table t({"nodes", "REMO (s)", "evaluations", "REMO %", "SINGLETON (s)",
           "ONE-SET (s)"});
  for (std::size_t n : {50u, 100u, 200u, 400u}) {
    const auto remo = run(n, 36, PartitionScheme::kRemo);
    const auto single = run(n, 36, PartitionScheme::kSingletonSet);
    const auto one = run(n, 36, PartitionScheme::kOneSet);
    t.row()
        .add(static_cast<long long>(n))
        .add(remo.seconds, 2)
        .add(static_cast<long long>(remo.evaluations))
        .add(remo.coverage, 1)
        .add(single.seconds, 2)
        .add(one.seconds, 2);
  }
  emit(t);
}

void sweep_universe() {
  subbanner("planning time vs attribute universe (100 nodes)");
  Table t({"attrs", "REMO (s)", "evaluations", "REMO %"});
  for (std::size_t a : {12u, 24u, 48u, 96u}) {
    const auto remo = run(100, a, PartitionScheme::kRemo);
    t.row()
        .add(static_cast<long long>(a))
        .add(remo.seconds, 2)
        .add(static_cast<long long>(remo.evaluations))
        .add(remo.coverage, 1);
  }
  emit(t);
}

}  // namespace
}  // namespace remo::bench

int main(int argc, char** argv) {
  remo::bench::init("scalability", argc, argv);
  remo::bench::banner("Scalability", "planner cost vs problem size");
  remo::bench::sweep_nodes();
  remo::bench::sweep_universe();
  return 0;
}
