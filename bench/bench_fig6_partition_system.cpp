// Fig. 6 — "Comparison of attribute set partition schemes under different
// system characteristics".
//
//   (a) % collected vs number of nodes, small-scale tasks
//   (b) % collected vs number of nodes, large-scale tasks
//   (c) % collected vs C/a ratio, small-scale tasks
//   (d) % collected vs C/a ratio, large-scale tasks
//
// Expected shapes (Sec. 7.1): REMO >= both baselines in every cell;
// growing per-message overhead (C/a) "hits the SINGLETON-SET scheme hard"
// while ONE-SET "degrades more gracefully"; REMO reduces its tree count as
// C/a rises.
#include "bench/bench_support.h"

namespace remo::bench {
namespace {

void sweep_nodes(bool large_tasks) {
  subbanner(large_tasks ? "Fig. 6b: increasing nodes, large-scale tasks"
                        : "Fig. 6a: increasing nodes, small-scale tasks");
  Table t({"nodes", "SINGLETON-SET %", "ONE-SET %", "REMO %"});
  for (std::size_t n : {50u, 100u, 200u, 300u}) {
    Scenario s(n, 60, 50, 50.0, 6000.0, CostModel{10.0, 1.0}, 31);
    WorkloadGenerator gen(s.system, WorkloadConfig{.attr_universe = 60}, 37);
    if (large_tasks)
      s.add_tasks(gen.large_tasks(16));
    else
      s.add_tasks(gen.small_tasks(100));
    t.row()
        .add(static_cast<long long>(n))
        .add(coverage(s, planner_options(PartitionScheme::kSingletonSet)), 1)
        .add(coverage(s, planner_options(PartitionScheme::kOneSet)), 1)
        .add(coverage(s, planner_options(PartitionScheme::kRemo)), 1);
  }
  emit(t);
}

void sweep_overhead(bool large_tasks) {
  subbanner(large_tasks ? "Fig. 6d: increasing C/a ratio, large-scale tasks"
                        : "Fig. 6c: increasing C/a ratio, small-scale tasks");
  Table t({"C/a", "SINGLETON-SET %", "ONE-SET %", "REMO %"});
  for (double c : {1.0, 2.0, 5.0, 10.0, 20.0, 40.0}) {
    Scenario s(100, 60, 50, 50.0, 6000.0, CostModel{c, 1.0}, 41);
    WorkloadGenerator gen(s.system, WorkloadConfig{.attr_universe = 60}, 43);
    if (large_tasks)
      s.add_tasks(gen.large_tasks(16));
    else
      s.add_tasks(gen.small_tasks(100));
    t.row()
        .add(c, 0)
        .add(coverage(s, planner_options(PartitionScheme::kSingletonSet)), 1)
        .add(coverage(s, planner_options(PartitionScheme::kOneSet)), 1)
        .add(coverage(s, planner_options(PartitionScheme::kRemo)), 1);
  }
  emit(t);
}

}  // namespace
}  // namespace remo::bench

int main(int argc, char** argv) {
  remo::bench::init("fig6_partition_system", argc, argv);
  remo::bench::banner("Fig. 6",
                      "partition schemes vs system characteristics "
                      "(% of node-attribute pairs collected)");
  remo::bench::sweep_nodes(false);
  remo::bench::sweep_nodes(true);
  remo::bench::sweep_overhead(false);
  remo::bench::sweep_overhead(true);
  return 0;
}
