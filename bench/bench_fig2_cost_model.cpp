// Fig. 2 — "CPU usage versus increasing message number/size".
//
// The paper measured, on a BlueGene/P node, (i) root CPU utilization of a
// star network growing from 16 to 256 senders (~6% -> ~68%, linear in the
// number of messages) and (ii) the cost of receiving one message as its
// value count grows from 1 to 256 (0.2% -> 1.4%). This bench reproduces
// both series from our cost model — calibrated to the paper's two anchor
// points — and then cross-checks the message-count series against the
// simulator's measured collector utilization on an actual star topology.
#include "bench/bench_support.h"
#include "planner/topology.h"
#include "sim/simulator.h"

namespace remo::bench {
namespace {

// Calibration: 16 messages ≈ 6% CPU -> C = 0.375%/msg; 1 -> 256 values
// raises a receive from 0.2% to 1.4% -> a ≈ 0.0047%/value.
constexpr double kCpuPerMessage = 6.0 / 16.0;
constexpr double kCpuPerValue = (1.4 - 0.2) / 255.0;

void message_count_series() {
  subbanner("Fig. 2 (left): root CPU% vs number of senders (star, 1 value/msg)");
  const CostModel cost{kCpuPerMessage, kCpuPerValue};
  Table t({"senders", "model CPU%", "simulated CPU%", "paper (approx)"});
  for (std::size_t n : {16u, 32u, 64u, 128u, 256u}) {
    // Star topology: every node sends one 1-value message per epoch.
    SystemModel system(n, 1e9, cost);
    system.set_collector_capacity(100.0);  // 100% CPU
    PairSet pairs(n + 1);
    for (NodeId id = 1; id <= n; ++id) {
      system.set_observable(id, {0});
      pairs.add(id, 0);
    }
    auto topo = build_topology(system, pairs, Partition::one_set({0}),
                               AttrSpecTable{}, AllocationScheme::kOrdered,
                               TreeBuildOptions{TreeScheme::kStar});
    RandomWalkSource src(pairs, 1);
    SimConfig cfg;
    cfg.epochs = 30;
    cfg.warmup = 5;
    cfg.enforce_capacity = false;  // measure demand, not clipped usage
    const auto report = simulate(system, topo, pairs, src, cfg);
    const double model = static_cast<double>(n) * cost.message_cost(1);
    // Paper anchors: linear from 6% @16 to 68% @256.
    const double paper = 6.0 + (68.0 - 6.0) * (static_cast<double>(n) - 16.0) / 240.0;
    t.row()
        .add(static_cast<long long>(n))
        .add(model, 1)
        .add(report.collector_utilization * 100.0, 1)
        .add(paper, 1);
  }
  emit(t);
}

void message_size_series() {
  subbanner("Fig. 2 (right): cost of receiving ONE message vs values in it");
  const CostModel cost{0.2, kCpuPerValue};  // 1-value receive ≈ 0.2%
  Table t({"values/msg", "model CPU%", "paper (approx)"});
  for (std::size_t v : {1u, 16u, 64u, 128u, 256u}) {
    const double paper = 0.2 + 1.2 * (static_cast<double>(v) - 1.0) / 255.0;
    t.row()
        .add(static_cast<long long>(v))
        .add(cost.message_cost(v), 2)
        .add(paper, 2);
  }
  emit(t);
  std::printf(
      "\nTakeaway: per-message overhead dominates (256 1-value messages cost "
      "%.0f%% CPU; one 256-value message costs %.1f%%), which is why the\n"
      "planner must model C explicitly (Sec. 2.3).\n",
      256 * cost.message_cost(1), cost.message_cost(256));
}

}  // namespace
}  // namespace remo::bench

int main(int argc, char** argv) {
  remo::bench::init("fig2_cost_model", argc, argv);
  remo::bench::banner("Fig. 2", "CPU usage vs message number / size");
  remo::bench::message_count_series();
  remo::bench::message_size_series();
  return 0;
}
