// Fig. 11 — "Comparison between resource allocation schemes".
//
// How a node's capacity is divided among the trees it participates in
// (Sec. 5.2): UNIFORM (equal split), PROPORTIONAL (by tree size),
// ON-DEMAND (all remaining capacity, build order as given), ORDERED
// (on-demand, smallest trees built first).
//
//   (a) % collected vs number of nodes
//   (b) % collected vs number of tasks
//
// Expected shapes (Sec. 7.1): ON-DEMAND and ORDERED consistently beat
// UNIFORM and PROPORTIONAL; ORDERED gains an increasing advantage over
// ON-DEMAND as nodes/tasks grow (trees of very different sizes appear and
// building small ones first avoids bad node placement).
#include "bench/bench_support.h"

namespace remo::bench {
namespace {

constexpr CostModel kCost{10.0, 1.0};

double alloc_coverage(const Scenario& s, AllocationScheme alloc) {
  return coverage(s, planner_options(PartitionScheme::kRemo,
                                     TreeScheme::kAdaptive, alloc));
}

void sweep_nodes() {
  subbanner("Fig. 11a: increasing number of nodes (90 mixed tasks)");
  Table t({"nodes", "UNIFORM %", "PROPORTIONAL %", "ON-DEMAND %", "ORDERED %"});
  for (std::size_t n : {50u, 100u, 200u, 300u}) {
    Scenario s(n, 60, 40, 40.0, 5000.0, kCost, 61);
    WorkloadGenerator gen(s.system, WorkloadConfig{.attr_universe = 60}, 67);
    auto tasks = gen.small_tasks(70);
    auto large = gen.large_tasks(20);
    tasks.insert(tasks.end(), large.begin(), large.end());
    s.add_tasks(std::move(tasks));
    t.row()
        .add(static_cast<long long>(n))
        .add(alloc_coverage(s, AllocationScheme::kUniform), 1)
        .add(alloc_coverage(s, AllocationScheme::kProportional), 1)
        .add(alloc_coverage(s, AllocationScheme::kOnDemand), 1)
        .add(alloc_coverage(s, AllocationScheme::kOrdered), 1);
  }
  emit(t);
}

void sweep_tasks() {
  subbanner("Fig. 11b: increasing number of tasks (150 nodes)");
  Table t({"tasks", "UNIFORM %", "PROPORTIONAL %", "ON-DEMAND %", "ORDERED %"});
  for (std::size_t count : {30u, 60u, 120u, 180u}) {
    Scenario s(150, 60, 40, 40.0, 5000.0, kCost, 71);
    WorkloadGenerator gen(s.system, WorkloadConfig{.attr_universe = 60}, 73);
    auto tasks = gen.small_tasks(count * 3 / 4);
    auto large = gen.large_tasks(count / 4);
    tasks.insert(tasks.end(), large.begin(), large.end());
    s.add_tasks(std::move(tasks));
    t.row()
        .add(static_cast<long long>(count))
        .add(alloc_coverage(s, AllocationScheme::kUniform), 1)
        .add(alloc_coverage(s, AllocationScheme::kProportional), 1)
        .add(alloc_coverage(s, AllocationScheme::kOnDemand), 1)
        .add(alloc_coverage(s, AllocationScheme::kOrdered), 1);
  }
  emit(t);
}

}  // namespace
}  // namespace remo::bench

int main(int argc, char** argv) {
  remo::bench::init("fig11_allocation", argc, argv);
  remo::bench::banner("Fig. 11", "tree-wise capacity allocation schemes");
  remo::bench::sweep_nodes();
  remo::bench::sweep_tasks();
  return 0;
}
