// Fig. 8 — "Comparison of average percentage error" (the real-system
// experiment, here on the System S substitute).
//
// The paper deployed YieldMonitor (200 processes over up to 200 BlueGene/P
// nodes, 30-50 attributes per node) and measured the average percentage
// error between the collector's view and the ground truth recorded in
// local logs. We run the synthetic stream application as the ground-truth
// source, plan with each partition scheme, simulate delivery under
// capacity enforcement, and report the same metric:
//
//   (a) average % error vs number of nodes
//   (b) average % error vs number of monitoring tasks
//
// Expected shapes (Sec. 7.1): REMO's error is 30-50% below both baselines;
// REMO's error *decreases* as nodes increase (sparser load => bushier
// trees => fresher values).
#include "bench/bench_support.h"
#include "sim/simulator.h"
#include "streamapp/stream_app.h"

namespace remo::bench {
namespace {

constexpr CostModel kCost{10.0, 1.0};

struct ErrorResult {
  double avg_error = 0.0;
  double coverage = 0.0;
};

ErrorResult run_single(std::size_t nodes, std::size_t num_tasks,
                       PartitionScheme scheme, std::uint64_t seed) {
  SystemModel system(nodes, 38.0, kCost);
  // Collector sized so that pure star collection cannot absorb the
  // deployment: trees must go deep, which is where staleness (and the
  // scheme differences) come from.
  system.set_collector_capacity(25.0 * static_cast<double>(nodes));
  StreamAppConfig app_cfg;
  // ~5 operators of distinct classes per node gives the paper's 30-50
  // observable attributes per node (200 processes / 200 nodes in the paper
  // were multi-threaded elements; our operators are finer-grained).
  app_cfg.num_operators = 5 * nodes;
  StreamApplication app(system, app_cfg, seed);

  WorkloadGenerator gen(system,
                        WorkloadConfig{.attr_universe = app.attr_universe()},
                        seed + 1);
  TaskManager manager(&system);
  for (auto& t : gen.small_tasks(num_tasks * 3 / 4)) manager.add_task(std::move(t));
  for (auto& t : gen.large_tasks(num_tasks / 4)) manager.add_task(std::move(t));
  const PairSet pairs = manager.dedup(system.num_vertices());

  const Topology topo = Planner(system, planner_options(scheme)).plan(pairs);
  // Fresh application instance so every scheme sees the same value stream.
  SystemModel sim_system = system;
  StreamApplication source(sim_system, app_cfg, seed);
  SimConfig cfg;
  cfg.epochs = 150;
  cfg.warmup = 30;
  const auto report = simulate(system, topo, pairs, source, cfg);
  return {report.avg_percent_error, topo.coverage() * 100.0};
}

/// Averages over several independent deployments (placements, workloads,
/// and value streams) — one seed per BlueGene "run".
ErrorResult run_one(std::size_t nodes, std::size_t num_tasks,
                    PartitionScheme scheme, std::uint64_t seed) {
  ErrorResult sum;
  constexpr int kRuns = 3;
  for (int r = 0; r < kRuns; ++r) {
    const auto one = run_single(nodes, num_tasks, scheme, seed + 1000u * r);
    sum.avg_error += one.avg_error;
    sum.coverage += one.coverage;
  }
  sum.avg_error /= kRuns;
  sum.coverage /= kRuns;
  return sum;
}

void sweep_nodes() {
  subbanner("Fig. 8a: average % error vs number of nodes (200 tasks)");
  Table t({"nodes", "SINGLETON-SET err%", "ONE-SET err%", "REMO err%",
           "REMO vs best baseline"});
  for (std::size_t n : {50u, 100u, 150u, 200u}) {
    const auto s = run_one(n, 200, PartitionScheme::kSingletonSet, 51);
    const auto o = run_one(n, 200, PartitionScheme::kOneSet, 51);
    const auto r = run_one(n, 200, PartitionScheme::kRemo, 51);
    const double best = std::min(s.avg_error, o.avg_error);
    t.row()
        .add(static_cast<long long>(n))
        .add(s.avg_error, 2)
        .add(o.avg_error, 2)
        .add(r.avg_error, 2)
        .add(best > 0 ? (1.0 - r.avg_error / best) * 100.0 : 0.0, 1);
  }
  emit(t);
  std::printf("(last column: %% error reduction vs the better baseline; the\n"
              "paper reports 30-50%% on the BlueGene deployment)\n");
}

void sweep_tasks() {
  subbanner("Fig. 8b: average % error vs number of tasks (200 nodes)");
  Table t({"tasks", "SINGLETON-SET err%", "ONE-SET err%", "REMO err%",
           "REMO vs best baseline"});
  for (std::size_t tasks : {50u, 100u, 200u, 300u}) {
    const auto s = run_one(200, tasks, PartitionScheme::kSingletonSet, 53);
    const auto o = run_one(200, tasks, PartitionScheme::kOneSet, 53);
    const auto r = run_one(200, tasks, PartitionScheme::kRemo, 53);
    const double best = std::min(s.avg_error, o.avg_error);
    t.row()
        .add(static_cast<long long>(tasks))
        .add(s.avg_error, 2)
        .add(o.avg_error, 2)
        .add(r.avg_error, 2)
        .add(best > 0 ? (1.0 - r.avg_error / best) * 100.0 : 0.0, 1);
  }
  emit(t);
}

}  // namespace
}  // namespace remo::bench

int main(int argc, char** argv) {
  remo::bench::init("fig8_percentage_error", argc, argv);
  remo::bench::banner(
      "Fig. 8", "average percentage error on the stream application");
  remo::bench::sweep_nodes();
  remo::bench::sweep_tasks();
  return 0;
}
