// Fig. 5 — "Comparison of attribute set partition schemes under different
// workload characteristics".
//
//   (a) % collected node-attribute pairs vs attributes per task |A_t|
//   (b) % collected vs nodes per task |N_t| under an extreme workload
//       (every task requests the full attribute universe)
//   (c) % collected vs number of small-scale tasks
//   (d) % collected vs number of large-scale tasks
//
// Expected shapes (Sec. 7.1): REMO >= both baselines everywhere; ONE-SET
// beats SINGLETON-SET while per-node payloads are small and collapses once
// a node's full payload exceeds its capacity; under extreme workloads REMO
// converges towards SINGLETON-SET-like fine partitions.
#include "bench/bench_support.h"

namespace remo::bench {
namespace {

constexpr CostModel kCost{10.0, 1.0};

Scenario base_scenario(std::uint64_t seed) {
  // 100 nodes observing 50 of 60 attribute types (the paper's app exposes
  // 30-50 per node); node capacity affords one ~40-value message per epoch.
  return Scenario(100, 60, 50, 50.0, 6000.0, kCost, seed);
}

void sweep_task_attrs() {
  subbanner("Fig. 5a: increasing attributes per task (12 tasks, |N_t| = 40)");
  Table t({"|A_t|", "SINGLETON-SET %", "ONE-SET %", "REMO %"});
  for (std::size_t at : {5u, 10u, 20u, 30u, 40u, 50u}) {
    Scenario s = base_scenario(11);
    WorkloadGenerator gen(s.system, WorkloadConfig{.attr_universe = 60}, 7);
    std::vector<MonitoringTask> tasks;
    for (int i = 0; i < 12; ++i) tasks.push_back(gen.make_task(at, 40));
    s.add_tasks(std::move(tasks));
    t.row()
        .add(static_cast<long long>(at))
        .add(coverage(s, planner_options(PartitionScheme::kSingletonSet)), 1)
        .add(coverage(s, planner_options(PartitionScheme::kOneSet)), 1)
        .add(coverage(s, planner_options(PartitionScheme::kRemo)), 1);
  }
  emit(t);
}

void sweep_task_nodes() {
  subbanner("Fig. 5b: increasing nodes per task, |A_t| = full universe (extreme)");
  Table t({"|N_t|", "SINGLETON-SET %", "ONE-SET %", "REMO %"});
  for (std::size_t nt : {20u, 40u, 60u, 80u, 100u}) {
    Scenario s = base_scenario(13);
    WorkloadGenerator gen(s.system, WorkloadConfig{.attr_universe = 60}, 9);
    std::vector<MonitoringTask> tasks;
    for (int i = 0; i < 8; ++i) tasks.push_back(gen.make_task(60, nt));
    s.add_tasks(std::move(tasks));
    t.row()
        .add(static_cast<long long>(nt))
        .add(coverage(s, planner_options(PartitionScheme::kSingletonSet)), 1)
        .add(coverage(s, planner_options(PartitionScheme::kOneSet)), 1)
        .add(coverage(s, planner_options(PartitionScheme::kRemo)), 1);
  }
  emit(t);
}

void sweep_small_tasks() {
  subbanner("Fig. 5c: increasing number of small-scale tasks");
  Table t({"tasks", "SINGLETON-SET %", "ONE-SET %", "REMO %"});
  for (std::size_t count : {20u, 50u, 100u, 150u, 200u}) {
    Scenario s = base_scenario(17);
    WorkloadGenerator gen(s.system, WorkloadConfig{.attr_universe = 60}, 19);
    s.add_tasks(gen.small_tasks(count));
    t.row()
        .add(static_cast<long long>(count))
        .add(coverage(s, planner_options(PartitionScheme::kSingletonSet)), 1)
        .add(coverage(s, planner_options(PartitionScheme::kOneSet)), 1)
        .add(coverage(s, planner_options(PartitionScheme::kRemo)), 1);
  }
  emit(t);
}

void sweep_large_tasks() {
  subbanner("Fig. 5d: increasing number of large-scale tasks");
  Table t({"tasks", "SINGLETON-SET %", "ONE-SET %", "REMO %"});
  for (std::size_t count : {4u, 8u, 16u, 24u, 32u}) {
    Scenario s = base_scenario(23);
    WorkloadGenerator gen(s.system, WorkloadConfig{.attr_universe = 60}, 29);
    s.add_tasks(gen.large_tasks(count));
    t.row()
        .add(static_cast<long long>(count))
        .add(coverage(s, planner_options(PartitionScheme::kSingletonSet)), 1)
        .add(coverage(s, planner_options(PartitionScheme::kOneSet)), 1)
        .add(coverage(s, planner_options(PartitionScheme::kRemo)), 1);
  }
  emit(t);
}

}  // namespace
}  // namespace remo::bench

int main(int argc, char** argv) {
  remo::bench::init("fig5_partition_workload", argc, argv);
  remo::bench::banner("Fig. 5",
                      "partition schemes vs workload characteristics "
                      "(% of node-attribute pairs collected)");
  remo::bench::sweep_task_attrs();
  remo::bench::sweep_task_nodes();
  remo::bench::sweep_small_tasks();
  remo::bench::sweep_large_tasks();
  return 0;
}
