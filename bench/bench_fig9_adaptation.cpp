// Fig. 9 — "Performance comparison of different adaptation schemes given
// increasing task updating frequencies".
//
// Emulates the paper's dynamic environment: each batch randomly selects 5%
// of monitoring nodes and replaces 50% of their monitored attributes; the
// x-axis is the number of such batches per window of 10 value updates.
// Four schemes: DIRECT-APPLY, REBUILD, NO-THROTTLE, ADAPTIVE.
//
//   (a) planning CPU time
//   (b) adaptation cost as % of total messages
//   (c) total cost (adaptation + monitoring messages) relative to D-A
//   (d) collected values relative to D-A
//
// Expected shapes (Sec. 7.1): CPU — D-A < ADAPTIVE < NO-THROTTLE <<
// REBUILD, with ADAPTIVE flat in update frequency; adaptation share —
// REBUILD highest, ADAPTIVE close to D-A; total cost — REBUILD wins at low
// frequency and inverts at high frequency, ADAPTIVE consistently below
// D-A; collected — ADAPTIVE/NO-THROTTLE above D-A, REBUILD's advantage
// eroding as frequency grows.
#include "bench/bench_support.h"

#include "adapt/adaptive_planner.h"

namespace remo::bench {
namespace {

constexpr CostModel kCost{10.0, 1.0};
constexpr double kWindowEpochs = 10.0;  // value updates per window
constexpr std::size_t kWindows = 12;

struct SchemeTotals {
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  double adaptation_messages = 0.0;
  double monitoring_messages = 0.0;  // messages × epochs they flowed
  double collected = 0.0;            // pair-values over all windows
  double candidates = 0.0;           // engine: topologies built & scored
  double cache_hits = 0.0;           // engine: memoized tree builds reused
};

SchemeTotals run_scheme(AdaptScheme scheme, std::size_t batches_per_window) {
  // Deliberately saturated (coverage < 100%): topology quality then shows
  // up as collected values, exactly as in the paper's setup.
  SystemModel system(60, 120.0, kCost);
  system.set_collector_capacity(480.0);
  Rng attr_rng{3};
  system.assign_random_attributes(24, 8, attr_rng);

  TaskManager manager(&system);
  WorkloadGenerator gen(system, WorkloadConfig{.attr_universe = 24}, 23);
  for (auto& t : gen.small_tasks(25)) manager.add_task(std::move(t));

  PlannerOptions options = planner_options(PartitionScheme::kRemo);
  AdaptivePlanner planner(system, options, scheme);
  planner.initialize(manager.dedup(system.num_vertices()), 0.0);

  Rng churn{17};
  SchemeTotals totals;
  double now = 0.0;
  const double step = kWindowEpochs / static_cast<double>(batches_per_window);
  for (std::size_t w = 0; w < kWindows; ++w) {
    for (std::size_t b = 0; b < batches_per_window; ++b) {
      now += step;
      apply_update_batch(manager, system, 24, churn);
      const auto report =
          planner.apply_update(manager.dedup(system.num_vertices()), now);
      totals.wall_seconds += report.planning_wall_seconds;
      totals.cpu_seconds += report.planning_cpu_seconds;
      totals.adaptation_messages +=
          static_cast<double>(report.adaptation_messages);
      totals.candidates += static_cast<double>(report.candidates_evaluated);
      totals.cache_hits += static_cast<double>(report.cache_hits);
      // Between this batch and the next, the current topology delivers
      // `step` epochs of monitoring traffic.
      totals.monitoring_messages +=
          static_cast<double>(planner.topology().total_messages()) * step;
      totals.collected +=
          static_cast<double>(planner.topology().collected_pairs()) * step;
    }
  }
  return totals;
}

}  // namespace
}  // namespace remo::bench

int main(int argc, char** argv) {
  remo::bench::init("fig9_adaptation", argc, argv);
  using namespace remo::bench;
  banner("Fig. 9", "adaptation schemes vs task-update frequency");

  const std::vector<std::size_t> frequencies{1, 2, 4, 8, 16};
  const std::vector<remo::AdaptScheme> schemes{
      remo::AdaptScheme::kDirectApply, remo::AdaptScheme::kRebuild,
      remo::AdaptScheme::kNoThrottle, remo::AdaptScheme::kAdaptive};

  // Run everything once, reuse across the four sub-figures.
  std::vector<std::vector<SchemeTotals>> results;  // [freq][scheme]
  for (std::size_t f : frequencies) {
    std::vector<SchemeTotals> row;
    for (auto s : schemes) row.push_back(run_scheme(s, f));
    results.push_back(std::move(row));
  }

  subbanner("Fig. 9a: planning time, wall / CPU (seconds, whole run)");
  {
    remo::Table t({"batches/window", "D-A", "REBUILD", "NO-THROTTLE", "ADAPTIVE"});
    for (std::size_t i = 0; i < frequencies.size(); ++i) {
      t.row().add(static_cast<long long>(frequencies[i]));
      for (std::size_t s = 0; s < schemes.size(); ++s) {
        const auto& r = results[i][s];
        char cell[48];
        std::snprintf(cell, sizeof cell, "%.3f / %.3f", r.wall_seconds,
                      r.cpu_seconds);
        t.add(std::string(cell));
      }
    }
    emit(t);
  }

  subbanner("Fig. 9b: adaptation messages as % of total messages");
  {
    remo::Table t({"batches/window", "D-A", "REBUILD", "NO-THROTTLE", "ADAPTIVE"});
    for (std::size_t i = 0; i < frequencies.size(); ++i) {
      t.row().add(static_cast<long long>(frequencies[i]));
      for (std::size_t s = 0; s < schemes.size(); ++s) {
        const auto& r = results[i][s];
        t.add(100.0 * r.adaptation_messages /
                  (r.adaptation_messages + r.monitoring_messages),
              2);
      }
    }
    emit(t);
  }

  subbanner("Fig. 9c: total cost (adaptation + monitoring messages) vs D-A, %");
  {
    remo::Table t({"batches/window", "D-A", "REBUILD", "NO-THROTTLE", "ADAPTIVE"});
    for (std::size_t i = 0; i < frequencies.size(); ++i) {
      const double base = results[i][0].adaptation_messages +
                          results[i][0].monitoring_messages;
      t.row().add(static_cast<long long>(frequencies[i]));
      for (std::size_t s = 0; s < schemes.size(); ++s) {
        const auto& r = results[i][s];
        t.add(100.0 * (r.adaptation_messages + r.monitoring_messages) / base, 1);
      }
    }
    emit(t);
  }

  subbanner("Fig. 9d: collected values vs D-A, %");
  {
    remo::Table t({"batches/window", "D-A", "REBUILD", "NO-THROTTLE", "ADAPTIVE"});
    for (std::size_t i = 0; i < frequencies.size(); ++i) {
      const double base = results[i][0].collected;
      t.row().add(static_cast<long long>(frequencies[i]));
      for (std::size_t s = 0; s < schemes.size(); ++s)
        t.add(100.0 * results[i][s].collected / base, 1);
    }
    emit(t);
  }

  subbanner("Fig. 9c': messages per collected value vs D-A, % (efficiency)");
  {
    remo::Table t({"batches/window", "D-A", "REBUILD", "NO-THROTTLE", "ADAPTIVE"});
    for (std::size_t i = 0; i < frequencies.size(); ++i) {
      const auto& d = results[i][0];
      const double base =
          (d.adaptation_messages + d.monitoring_messages) / d.collected;
      t.row().add(static_cast<long long>(frequencies[i]));
      for (std::size_t s = 0; s < schemes.size(); ++s) {
        const auto& r = results[i][s];
        t.add(100.0 * ((r.adaptation_messages + r.monitoring_messages) /
                       r.collected) /
                  base,
              1);
      }
    }
    emit(t);
    std::printf(
        "(ADAPTIVE collects more data per message than D-A at every update "
        "frequency)\n");
  }

  subbanner("evaluation engine: candidates scored / memoized build hits (whole run)");
  {
    remo::Table t({"batches/window", "D-A", "REBUILD", "NO-THROTTLE", "ADAPTIVE"});
    for (std::size_t i = 0; i < frequencies.size(); ++i) {
      t.row().add(static_cast<long long>(frequencies[i]));
      for (std::size_t s = 0; s < schemes.size(); ++s) {
        const auto& r = results[i][s];
        char cell[48];
        std::snprintf(cell, sizeof cell, "%.0f / %.0f", r.candidates, r.cache_hits);
        t.add(std::string(cell));
      }
    }
    emit(t);
  }
  return 0;
}
