// Ablation study of REMO's search-quality mechanisms (the design choices
// DESIGN.md calls out beyond the paper's letter):
//
//   FULL          production configuration
//   -starvation   plain Sec. 3.1.1 gain ranking (no recoverable-starvation
//                 term): merging two starved trees ranks as high as
//                 merging a loaded tree with a starved one
//   -best-of      first-improvement acceptance instead of best-of-evaluated
//   -relayout     no fair-share re-layout escape hatch
//   -endpoint     no coarsest-partition guard (pure hill climb from
//                 SINGLETON-SET)
//   paper-only    all four disabled: the journal text verbatim
//
// Three workload regimes where the mechanisms matter differently:
// payload-bound (one message per node cannot carry everything),
// collector-bound (central per-message overhead dominates), and light
// (everything fits; mechanisms should at least not hurt).
#include "bench/bench_support.h"

namespace remo::bench {
namespace {

constexpr CostModel kCost{10.0, 1.0};

struct Variant {
  const char* name;
  bool starvation;
  bool best_of;
  bool relayout;
  bool endpoint;
};

constexpr Variant kVariants[] = {
    {"FULL", true, true, true, true},
    {"-starvation", false, true, true, true},
    {"-best-of", true, false, true, true},
    {"-relayout", true, true, false, true},
    {"-endpoint", true, true, true, false},
    {"paper-only", false, false, false, false},
};

Scenario make_regime(const std::string& regime, std::uint64_t seed) {
  if (regime == "payload-bound") {
    // C + a*x > b for the typical node: partitions must split payloads,
    // and most intermediate partitions are infeasible — the regime where
    // the ranking/acceptance mechanisms decide whether the climb escapes
    // the singleton trap at all.
    Scenario s(60, 48, 30, 40.0, 3000.0, CostModel{20.0, 1.0}, seed);
    s.monitor_everything();
    return s;
  }
  if (regime == "collector-bound") {
    Scenario s(80, 24, 8, 120.0, 640.0, kCost, seed);
    s.monitor_everything();
    return s;
  }
  // light
  Scenario s(80, 24, 8, 200.0, 8000.0, kCost, seed);
  WorkloadGenerator gen(s.system, WorkloadConfig{.attr_universe = 24}, seed + 1);
  s.add_tasks(gen.small_tasks(40));
  return s;
}

void run_regime(const std::string& regime) {
  subbanner("regime: " + regime);
  Table t({"variant", "coverage %", "msg volume", "trees", "evaluations"});
  for (const auto& v : kVariants) {
    Scenario s = make_regime(regime, 17);
    PlannerOptions o = planner_options(PartitionScheme::kRemo);
    o.starvation_ranking = v.starvation;
    o.best_of_candidates = v.best_of;
    o.relayout_escape = v.relayout;
    o.endpoint_guard = v.endpoint;
    Planner planner(s.system, o);
    const Topology topo = planner.plan(s.pairs);
    t.row()
        .add(v.name)
        .add(topo.coverage() * 100.0, 1)
        .add(topo.total_cost(), 0)
        .add(static_cast<long long>(topo.num_trees()))
        .add(static_cast<long long>(planner.last_evaluations()));
  }
  emit(t);
}

}  // namespace
}  // namespace remo::bench

int main(int argc, char** argv) {
  remo::bench::init("ablation", argc, argv);
  remo::bench::banner("Ablation",
                      "REMO search mechanisms beyond the paper's letter "
                      "(see DESIGN.md, 'Algorithm notes')");
  remo::bench::run_regime("payload-bound");
  remo::bench::run_regime("collector-bound");
  remo::bench::run_regime("light");
  return 0;
}
