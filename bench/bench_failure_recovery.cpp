// Failure recovery under the closed detect → repair → replan loop
// (Fig. 9-style reliability sweep). A clustered 160-node workload takes a
// single outage hitting a slice of the forest's interior nodes; we compare
//   no-failure     — the staleness floor of the deployed forest,
//   loop closed    — MonitoringSystem detects the outage from delivery
//                    gaps, re-homes the orphans, replans once stable,
//   loop open      — the same outage with detection disabled,
// and sweep outage fraction × detection threshold into time-to-detect /
// repair-cost / staleness / recovery-latency curves.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <limits>
#include <vector>

#include "bench/bench_support.h"
#include "core/monitoring_system.h"
#include "sim/simulator.h"

namespace remo::bench {
namespace {

const CostModel kCost{10.0, 1.0};
constexpr std::size_t kNodes = 160;
constexpr std::size_t kClusters = 8;
constexpr std::size_t kAttrsPerCluster = 6;
constexpr std::uint64_t kOutageAt = 80;
constexpr std::uint64_t kEpochs = 360;
constexpr std::uint64_t kPostStart = 240;  // steady state after repair+replan
constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

SystemModel make_system() {
  // Collector capacity forces multi-level trees (a flat 160-spoke star
  // would need ~2560), so an interior failure genuinely orphans subtrees.
  SystemModel s(kNodes, 500.0, kCost);
  s.set_collector_capacity(1600.0);
  for (NodeId id = 1; id <= kNodes; ++id) {
    const std::size_t c = (id - 1) % kClusters;
    std::vector<AttrId> attrs;
    for (std::size_t k = 0; k < kAttrsPerCluster; ++k)
      attrs.push_back(static_cast<AttrId>(c * kAttrsPerCluster + k));
    s.set_observable(id, attrs);
  }
  return s;
}

MonitoringSystemOptions make_options(bool loop_on, std::uint64_t threshold) {
  MonitoringSystemOptions o;
  o.planner.max_candidates = 16;
  o.planner.max_iterations = 256;
  o.recovery.enabled = loop_on;
  o.recovery.liveness.missed_deadlines = threshold;
  o.recovery.stabilize_epochs = 8;
  return o;
}

void add_cluster_tasks(MonitoringSystem& service) {
  for (std::size_t c = 0; c < kClusters; ++c) {
    MonitoringTask t;
    for (NodeId id = 1; id <= kNodes; ++id)
      if ((id - 1) % kClusters == c) t.nodes.push_back(id);
    for (std::size_t k = 0; k < kAttrsPerCluster; ++k)
      t.attrs.push_back(static_cast<AttrId>(c * kAttrsPerCluster + k));
    service.add_task(std::move(t));
  }
}

/// Nodes to fail: forest-interior members first (they orphan subtrees),
/// padded with leaves when the interior is smaller than the slice.
std::vector<NodeId> pick_victims(const Topology& topo, std::size_t count) {
  std::vector<NodeId> interior, leaves;
  std::vector<bool> seen(kNodes + 1, false);
  for (const auto& entry : topo.entries()) {
    for (NodeId m : entry.tree.members()) {
      if (seen[m]) continue;
      seen[m] = true;
      (entry.tree.children(m).empty() ? leaves : interior).push_back(m);
    }
  }
  std::sort(interior.begin(), interior.end());
  std::sort(leaves.begin(), leaves.end());
  interior.insert(interior.end(), leaves.begin(), leaves.end());
  interior.resize(std::min(count, interior.size()));
  return interior;
}

struct RunResult {
  double post_err = 0.0;            // mean % error over alive pairs, post window
  std::uint64_t first_detect = 0;   // epoch of the first down event (0: none)
  std::uint64_t recovered_at = kNever;  // first epoch back under the ceiling
  RepairReport repair;
  std::vector<double> epoch_err;    // per-epoch alive-pair mean, percent
};

RunResult run_loop(const std::vector<NodeId>& failed, bool loop_on,
                   std::uint64_t threshold) {
  RunResult out;
  MonitoringSystemOptions opts = make_options(loop_on, threshold);
  opts.recovery.on_detect = [&out](const LivenessEvent& ev) {
    if (ev.down && out.first_detect == 0) out.first_detect = ev.epoch;
  };
  MonitoringSystem service(make_system(), std::move(opts));
  add_cluster_tasks(service);
  const Topology initial = service.topology(0.0);
  const PairSet pairs = service.tasks().dedup(service.system().num_vertices());
  const auto all = pairs.all_pairs();

  std::vector<bool> node_down(kNodes + 1, false);
  for (NodeId n : failed) node_down[n] = true;
  std::vector<bool> alive(all.size(), true);
  for (std::size_t i = 0; i < all.size(); ++i) alive[i] = !node_down[all[i].node];

  RandomWalkSource src(pairs, 1234, 100.0, 3.0);
  // Mirror of the simulator's collector view (same deployment-time seed).
  std::vector<double> view(all.size());
  for (std::size_t i = 0; i < all.size(); ++i)
    view[i] = src.value(all[i].node, all[i].attr);

  bool changed = false;
  std::size_t post_epochs = 0;
  double post_sum = 0.0;
  SimConfig cfg;
  cfg.epochs = kEpochs;
  cfg.warmup = 0;
  for (NodeId n : failed) cfg.failures.push_back({n, kOutageAt, kNever});
  cfg.on_delivery = [&](NodeAttrPair p, std::uint64_t e, double v) {
    auto it = std::lower_bound(all.begin(), all.end(), p);
    view[static_cast<std::size_t>(it - all.begin())] = v;
    if (loop_on) service.on_delivery(p, e);
  };
  cfg.on_epoch_end = [&](std::uint64_t e) {
    double sum = 0.0;
    std::size_t cnt = 0;
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (!alive[i]) continue;
      const double truth = src.value(all[i].node, all[i].attr);
      sum += std::abs(view[i] - truth) / std::max(std::abs(truth), 1.0);
      ++cnt;
    }
    out.epoch_err.push_back(100.0 * sum / static_cast<double>(cnt));
    if (e >= kPostStart) {
      post_sum += out.epoch_err.back();
      ++post_epochs;
    }
    if (loop_on) changed = service.end_epoch(e);
  };
  cfg.on_reconfigure = [&](std::uint64_t e) -> const Topology* {
    if (!changed) return nullptr;
    changed = false;
    return &service.topology(static_cast<double>(e));
  };
  simulate(service.system(), initial, pairs, src, cfg);
  out.post_err = post_sum / static_cast<double>(post_epochs);
  out.repair = service.repair_report();
  return out;
}

/// The epoch the alive-pair error came back under `ceiling` for good: one
/// past the LAST epoch above it (a slowly climbing open-loop curve wobbles
/// across the ceiling, so first-dip metrics misread it). kNever if the
/// error never cleared the ceiling, 0 if it is still above it at the end.
std::uint64_t recovery_epoch(const std::vector<double>& err, double ceiling) {
  std::uint64_t last_above = kNever;
  for (std::uint64_t e = kOutageAt; e < err.size(); ++e)
    if (err[e] > ceiling) last_above = e;
  if (last_above == kNever) return kNever;
  if (last_above + 1 >= err.size()) return 0;  // still degraded at the end
  return last_above + 1;
}

double post_mean(const std::vector<double>& err) {
  double s = 0.0;
  for (std::uint64_t e = kPostStart; e < err.size(); ++e) s += err[e];
  return s / static_cast<double>(err.size() - kPostStart);
}

void sweep() {
  banner("Failure recovery",
         "clustered 160-node workload, single outage at epoch 80; closed "
         "detect->repair->replan loop vs open loop vs no failure");

  // Reference plan: victims are picked from its interior so the outage
  // actually severs subtrees (every run replans identically).
  MonitoringSystem ref(make_system(), make_options(false, 3));
  add_cluster_tasks(ref);
  const Topology initial = ref.topology(0.0);
  std::size_t height = 0, interior = 0;
  for (const auto& entry : initial.entries()) {
    height = std::max(height, entry.tree.height());
    for (NodeId m : entry.tree.members())
      if (!entry.tree.children(m).empty()) ++interior;
  }
  std::printf("forest: %zu trees, max height %zu, %zu interior nodes, "
              "coverage %.1f%%\n",
              initial.num_trees(), height, interior,
              initial.coverage() * 100.0);

  subbanner("headline: 10% of nodes out (threshold 3 missed deadlines)");
  const auto victims = pick_victims(initial, kNodes / 10);
  const auto base = run_loop({}, false, 3);
  const auto healed = run_loop(victims, true, 3);
  const auto broken = run_loop(victims, false, 3);
  const double ceiling = std::max(2.0 * post_mean(base.epoch_err), 1.0);

  Table head({"run", "post err %", "detect ep", "ttd", "repair msgs",
              "reattached", "parked", "dropped", "recover ep"});
  auto head_row = [&](const char* name, const RunResult& r) {
    const std::uint64_t rec = recovery_epoch(r.epoch_err, ceiling);
    head.row()
        .add(name)
        .add(r.post_err)
        .add(static_cast<long long>(r.first_detect))
        .add(r.first_detect > 0
                 ? static_cast<long long>(r.first_detect - kOutageAt)
                 : 0ll)
        .add(r.repair.repair_messages)
        .add(r.repair.orphans_reattached)
        .add(r.repair.suspects_parked)
        .add(r.repair.pairs_dropped)
        .add(rec == kNever ? std::string("-")
                           : rec == 0 ? std::string("never")
                                      : std::to_string(rec));
  };
  head_row("no failure", base);
  head_row("loop closed", healed);
  head_row("loop open", broken);
  emit(head);
  std::printf("acceptance: closed-loop post error within 10%% of baseline: %s; "
              "open loop recovers: %s\n",
              healed.post_err <= base.post_err * 1.1 + 0.05 ? "yes" : "NO",
              recovery_epoch(broken.epoch_err, ceiling) == 0 ? "no (stays stale)"
                                                             : "yes");

  subbanner(
      "sweep: outage fraction x detection threshold (closed loop; ttd/ttr in "
      "epochs after the outage)");
  Table t({"failed", "threshold", "ttd", "ttr", "repair msgs", "post err %",
           "open-loop err %", "dropped"});
  for (const std::size_t pct : {5u, 10u, 20u}) {
    const auto slice = pick_victims(initial, kNodes * pct / 100);
    const auto open = run_loop(slice, false, 3);
    for (const std::uint64_t threshold : {2u, 3u, 6u}) {
      const auto r = run_loop(slice, true, threshold);
      const std::uint64_t rec = recovery_epoch(r.epoch_err, ceiling);
      t.row()
          .add(std::to_string(pct) + "%")
          .add(static_cast<long long>(threshold))
          .add(r.first_detect > 0
                   ? static_cast<long long>(r.first_detect - kOutageAt)
                   : 0ll)
          .add(rec == kNever ? std::string("-")
                             : rec == 0 ? std::string("never")
                                        : std::to_string(rec - kOutageAt))
          .add(r.repair.repair_messages)
          .add(r.post_err)
          .add(open.post_err)
          .add(r.repair.pairs_dropped);
    }
  }
  emit(t);
}

}  // namespace
}  // namespace remo::bench

int main(int argc, char** argv) {
  remo::bench::init("failure_recovery", argc, argv);
  remo::bench::sweep();
  return 0;
}
