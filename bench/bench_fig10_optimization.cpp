// Fig. 10 — "Speedup of optimization schemes".
//
// CPU-time speedup of the Sec. 5.1 tree-adjustment optimizations over the
// basic adjusting procedure (node-by-node reattaching searched over the
// whole tree):
//
//   BRANCH    branch-based reattaching only (5.1.1)
//   SUBTREE   subtree-only searching only (5.1.2)
//   BOTH      the production configuration
//
// Methodology follows the paper: the adjusting procedure itself is timed,
// on identical saturated trees (a congested hub holding several deep
// branches — exactly the state the construction procedure hands to the
// adjuster), so every variant performs the same logical operation:
//
//   (a) speedup vs tree size (number of member nodes)
//   (b) speedup vs branch count (branch size varies inversely)
//
// The value penalty of the optimized configuration (< 2% in the paper) is
// measured separately on full topology plans.
#include <chrono>

#include "bench/bench_support.h"
#include "tree/builder.h"

namespace remo::bench {
namespace {

constexpr CostModel kCost{10.0, 1.0};

/// A saturated tree: `branches` chains of `chain_len` nodes hang off one
/// congested hub node under the collector. Node capacities leave just
/// enough slack that relocating a branch is possible but takes search.
struct SaturatedFixture {
  MonitoringTree tree;
  std::vector<NodeId> congested;
  Capacity min_demand;
};

SaturatedFixture make_fixture(std::size_t hubs, std::size_t branches,
                              std::size_t chain_len) {
  std::vector<TreeAttrSpec> attrs{{0, FunnelSpec{}, 1.0}};
  // Each hub receives `branches` messages and relays everything; the first
  // hub is the congested node whose branch the adjuster must relocate. Its
  // subtree is only 1/hubs of the tree, which is what the subtree-only
  // search scope exploits.
  const double hub_need =
      static_cast<double>(branches) * kCost.message_cost(chain_len) +
      kCost.message_cost(branches * chain_len + 1);
  MonitoringTree tree(attrs, 1e9, kCost);
  NodeId next = 1;
  NodeId first_hub = kNoNode;
  for (std::size_t h = 0; h < hubs; ++h) {
    const NodeId hub = next++;
    if (h == 0) first_hub = hub;
    tree.attach(BuildItem{hub, {1}, hub_need}, kCollectorId);
    for (std::size_t b = 0; b < branches; ++b) {
      NodeId parent = hub;
      for (std::size_t i = 0; i < chain_len; ++i) {
        // Chain members can absorb one extra relocated chain below them.
        const double avail = kCost.message_cost(chain_len * 2) +
                             kCost.message_cost(chain_len) + 8.0;
        const NodeId id = next++;
        tree.attach(BuildItem{id, {1}, avail}, parent);
        parent = id;
      }
    }
  }
  return SaturatedFixture{std::move(tree), {first_hub}, kCost.message_cost(1)};
}

double time_adjust(const SaturatedFixture& fixture, bool branch, bool subtree) {
  TreeBuildOptions opts;
  opts.scheme = TreeScheme::kAdaptive;
  opts.branch_reattach = branch;
  opts.subtree_only = subtree;
  // Repeat on fresh copies so every iteration performs the same move.
  const int reps = 20;
  double total = 0.0;
  for (int r = 0; r < reps; ++r) {
    MonitoringTree tree = fixture.tree;
    const auto start = std::chrono::steady_clock::now();
    adjust_tree_once(tree, fixture.congested, fixture.min_demand, opts);
    total += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
  }
  return total / reps;
}

struct Shape {
  std::size_t hubs;
  std::size_t branches;
  std::size_t chain_len;
};

void speedup_sweep(const std::string& title, const std::vector<Shape>& shapes,
                   bool label_nodes) {
  subbanner(title);
  Table t({label_nodes ? "tree nodes" : "hubs", "basic (us)",
           "BRANCH speedup", "SUBTREE speedup", "BOTH speedup"});
  for (const auto& [hubs, branches, chain_len] : shapes) {
    const auto fixture = make_fixture(hubs, branches, chain_len);
    const double basic = time_adjust(fixture, false, false);
    const double branch_only = time_adjust(fixture, true, false);
    const double subtree_only = time_adjust(fixture, false, true);
    const double both = time_adjust(fixture, true, true);
    t.row()
        .add(static_cast<long long>(label_nodes
                                        ? hubs * (branches * chain_len + 1)
                                        : hubs))
        .add(basic * 1e6, 1)
        .add(basic / branch_only, 2)
        .add(basic / subtree_only, 2)
        .add(basic / both, 2);
  }
  t.print(std::cout);
}

void penalty_sweep() {
  subbanner("value penalty of the optimized adjuster on full plans (paper: <2%)");
  Table t({"nodes", "basic collected", "BOTH collected", "penalty %"});
  for (std::size_t n : {60u, 120u, 240u}) {
    Scenario s(n, 24, 8, 8.0 * kCost.message_cost(1) + 30.0, 4000.0, kCost, 3);
    s.monitor_everything();
    auto run = [&](bool branch, bool subtree) {
      PlannerOptions o = planner_options(PartitionScheme::kSingletonSet);
      o.tree.branch_reattach = branch;
      o.tree.subtree_only = subtree;
      return Planner(s.system, o).plan(s.pairs).collected_pairs();
    };
    const auto basic = run(false, false);
    const auto both = run(true, true);
    const double penalty =
        basic == 0 ? 0.0
                   : 100.0 *
                         (static_cast<double>(basic) - static_cast<double>(both)) /
                         static_cast<double>(basic);
    t.row()
        .add(static_cast<long long>(n))
        .add(static_cast<long long>(basic))
        .add(static_cast<long long>(both))
        .add(penalty, 2);
  }
  t.print(std::cout);
}

}  // namespace
}  // namespace remo::bench

int main() {
  remo::bench::banner("Fig. 10",
                      "speedup of the Sec. 5.1 tree-adjustment optimizations "
                      "(paper: up to ~11x)");
  remo::bench::speedup_sweep(
      "Fig. 10a: speedup vs tree size (8 hubs of 4 branches, growing chains)",
      {{8, 4, 2}, {8, 4, 4}, {8, 4, 8}, {8, 4, 16}, {8, 4, 32}}, true);
  remo::bench::speedup_sweep(
      "Fig. 10b: speedup vs hub count (~512 nodes total)",
      {{2, 4, 64}, {4, 4, 32}, {8, 4, 16}, {16, 4, 8}, {32, 4, 4}}, false);
  remo::bench::penalty_sweep();
  return 0;
}
