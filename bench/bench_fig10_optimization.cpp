// Fig. 10 — "Speedup of optimization schemes".
//
// CPU-time speedup of the Sec. 5.1 tree-adjustment optimizations over the
// basic adjusting procedure (node-by-node reattaching searched over the
// whole tree):
//
//   BRANCH    branch-based reattaching only (5.1.1)
//   SUBTREE   subtree-only searching only (5.1.2)
//   BOTH      the production configuration
//
// Methodology follows the paper: the adjusting procedure itself is timed,
// on identical saturated trees (a congested hub holding several deep
// branches — exactly the state the construction procedure hands to the
// adjuster), so every variant performs the same logical operation:
//
//   (a) speedup vs tree size (number of member nodes)
//   (b) speedup vs branch count (branch size varies inversely)
//
// The value penalty of the optimized configuration (< 2% in the paper) is
// measured separately on full topology plans.
#include <chrono>

#include "bench/bench_support.h"
#include "common/thread_pool.h"
#include "planner/evaluator.h"
#include "tree/builder.h"

namespace remo::bench {
namespace {

constexpr CostModel kCost{10.0, 1.0};

/// A saturated tree: `branches` chains of `chain_len` nodes hang off one
/// congested hub node under the collector. Node capacities leave just
/// enough slack that relocating a branch is possible but takes search.
struct SaturatedFixture {
  MonitoringTree tree;
  std::vector<NodeId> congested;
  Capacity min_demand;
};

SaturatedFixture make_fixture(std::size_t hubs, std::size_t branches,
                              std::size_t chain_len) {
  std::vector<TreeAttrSpec> attrs{{0, FunnelSpec{}, 1.0}};
  // Each hub receives `branches` messages and relays everything; the first
  // hub is the congested node whose branch the adjuster must relocate. Its
  // subtree is only 1/hubs of the tree, which is what the subtree-only
  // search scope exploits.
  const double hub_need =
      static_cast<double>(branches) * kCost.message_cost(chain_len) +
      kCost.message_cost(branches * chain_len + 1);
  MonitoringTree tree(attrs, 1e9, kCost);
  NodeId next = 1;
  NodeId first_hub = kNoNode;
  for (std::size_t h = 0; h < hubs; ++h) {
    const NodeId hub = next++;
    if (h == 0) first_hub = hub;
    tree.attach(BuildItem{hub, {1}, hub_need}, kCollectorId);
    for (std::size_t b = 0; b < branches; ++b) {
      NodeId parent = hub;
      for (std::size_t i = 0; i < chain_len; ++i) {
        // Chain members can absorb one extra relocated chain below them.
        const double avail = kCost.message_cost(chain_len * 2) +
                             kCost.message_cost(chain_len) + 8.0;
        const NodeId id = next++;
        tree.attach(BuildItem{id, {1}, avail}, parent);
        parent = id;
      }
    }
  }
  return SaturatedFixture{std::move(tree), {first_hub}, kCost.message_cost(1)};
}

double time_adjust(const SaturatedFixture& fixture, bool branch, bool subtree) {
  TreeBuildOptions opts;
  opts.scheme = TreeScheme::kAdaptive;
  opts.branch_reattach = branch;
  opts.subtree_only = subtree;
  // Repeat on fresh copies so every iteration performs the same move.
  const int reps = 20;
  double total = 0.0;
  for (int r = 0; r < reps; ++r) {
    MonitoringTree tree = fixture.tree;
    const auto start = std::chrono::steady_clock::now();
    adjust_tree_once(tree, fixture.congested, fixture.min_demand, opts);
    total += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
  }
  return total / reps;
}

struct Shape {
  std::size_t hubs;
  std::size_t branches;
  std::size_t chain_len;
};

void speedup_sweep(const std::string& title, const std::vector<Shape>& shapes,
                   bool label_nodes) {
  subbanner(title);
  Table t({label_nodes ? "tree nodes" : "hubs", "basic (us)",
           "BRANCH speedup", "SUBTREE speedup", "BOTH speedup"});
  for (const auto& [hubs, branches, chain_len] : shapes) {
    const auto fixture = make_fixture(hubs, branches, chain_len);
    const double basic = time_adjust(fixture, false, false);
    const double branch_only = time_adjust(fixture, true, false);
    const double subtree_only = time_adjust(fixture, false, true);
    const double both = time_adjust(fixture, true, true);
    t.row()
        .add(static_cast<long long>(label_nodes
                                        ? hubs * (branches * chain_len + 1)
                                        : hubs))
        .add(basic * 1e6, 1)
        .add(basic / branch_only, 2)
        .add(basic / subtree_only, 2)
        .add(basic / both, 2);
  }
  emit(t);
}

void penalty_sweep() {
  subbanner("value penalty of the optimized adjuster on full plans (paper: <2%)");
  Table t({"nodes", "basic collected", "BOTH collected", "penalty %"});
  for (std::size_t n : {60u, 120u, 240u}) {
    Scenario s(n, 24, 8, 8.0 * kCost.message_cost(1) + 30.0, 4000.0, kCost, 3);
    s.monitor_everything();
    auto run = [&](bool branch, bool subtree) {
      PlannerOptions o = planner_options(PartitionScheme::kSingletonSet);
      o.tree.branch_reattach = branch;
      o.tree.subtree_only = subtree;
      return Planner(s.system, o).plan(s.pairs).collected_pairs();
    };
    const auto basic = run(false, false);
    const auto both = run(true, true);
    const double penalty =
        basic == 0 ? 0.0
                   : 100.0 *
                         (static_cast<double>(basic) - static_cast<double>(both)) /
                         static_cast<double>(basic);
    t.row()
        .add(static_cast<long long>(n))
        .add(static_cast<long long>(basic))
        .add(static_cast<long long>(both))
        .add(penalty, 2);
  }
  emit(t);
}

/// One timed full planning run on a cold engine; reports the best of
/// `reps` runs (cold cache each rep — only within-plan memoization counts).
struct PlanTiming {
  double seconds = 0.0;
  std::size_t collected = 0;
  EvalStats stats;
};

template <class Workload>
PlanTiming time_plan(const Workload& s, std::size_t threads, bool memoize,
                     int reps) {
  PlannerOptions o = planner_options(PartitionScheme::kRemo);
  // Wide enough that the stable within-cluster candidates stay on the
  // evaluated list every iteration (they are what recurs in the cache).
  o.max_candidates = 32;
  o.num_threads = threads;
  o.memoize_builds = memoize;
  PlanTiming best;
  best.seconds = 1e100;
  for (int r = 0; r < reps; ++r) {
    Planner planner(s.system, o);
    const auto start = std::chrono::steady_clock::now();
    const auto topo = planner.plan(s.pairs);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (secs < best.seconds)
      best = PlanTiming{secs, topo.collected_pairs(), planner.last_stats()};
  }
  return best;
}

/// Clustered cost-sharing workload: `clusters` node groups, each observing
/// its own block of `attrs_per_cluster` attributes. Merges are profitable
/// only within a cluster, so the candidate list is stable across search
/// iterations — the recurring-build case the memo cache targets (a commit
/// in one cluster leaves every other cluster's candidates untouched).
struct ClusteredWorkload {
  SystemModel system;
  PairSet pairs;

  ClusteredWorkload(std::size_t n, std::size_t clusters,
                    std::size_t attrs_per_cluster, Capacity node_cap,
                    Capacity collector_cap)
      : system(n, node_cap, kCost), pairs(n + 1) {
    system.set_collector_capacity(collector_cap);
    for (NodeId id = 1; id <= n; ++id) {
      const std::size_t c = (id - 1) % clusters;
      std::vector<AttrId> attrs;
      for (std::size_t k = 0; k < attrs_per_cluster; ++k)
        attrs.push_back(static_cast<AttrId>(c * attrs_per_cluster + k));
      system.set_observable(id, attrs);
      for (AttrId a : attrs) pairs.add(id, a);
    }
  }
};

void planning_engine_sweep() {
  subbanner(
      "plan-evaluation engine: wall-clock planning time, serial vs parallel "
      "vs memoized (identical plans)");
  const std::size_t hw = ThreadPool::default_concurrency();
  std::printf("hardware threads: %zu\n", hw);
  Table t({"nodes", "serial (ms)", "parallel (ms)", "par+cache (ms)", "speedup",
           "hit %", "collected"});
  for (std::size_t n : {80u, 160u, 320u}) {
    // Ample capacity: planning is search-bound, and remaining-capacity
    // fingerprints stay in the effectively-unconstrained class, where the
    // memo cache reuses builds across search iterations.
    ClusteredWorkload s(n, 3, 8, 1e6, 1e7);
    const auto serial = time_plan(s, 1, false, 3);
    const auto parallel = time_plan(s, hw, false, 3);
    const auto cached = time_plan(s, hw, true, 3);
    const double hits = static_cast<double>(cached.stats.cache_hits);
    const double lookups =
        hits + static_cast<double>(cached.stats.cache_misses);
    t.row()
        .add(static_cast<long long>(n))
        .add(serial.seconds * 1e3, 1)
        .add(parallel.seconds * 1e3, 1)
        .add(cached.seconds * 1e3, 1)
        .add(serial.seconds / cached.seconds, 2)
        .add(lookups == 0.0 ? 0.0 : 100.0 * hits / lookups, 1)
        .add(static_cast<long long>(cached.collected));
    if (serial.collected != cached.collected ||
        serial.collected != parallel.collected)
      std::printf("!! collected pairs diverged at n=%zu — engine broke "
                  "determinism\n", n);
  }
  emit(t);
}

}  // namespace
}  // namespace remo::bench

int main(int argc, char** argv) {
  remo::bench::init("fig10_optimization", argc, argv);
  remo::bench::banner("Fig. 10",
                      "speedup of the Sec. 5.1 tree-adjustment optimizations "
                      "(paper: up to ~11x)");
  remo::bench::speedup_sweep(
      "Fig. 10a: speedup vs tree size (8 hubs of 4 branches, growing chains)",
      {{8, 4, 2}, {8, 4, 4}, {8, 4, 8}, {8, 4, 16}, {8, 4, 32}}, true);
  remo::bench::speedup_sweep(
      "Fig. 10b: speedup vs hub count (~512 nodes total)",
      {{2, 4, 64}, {4, 4, 32}, {8, 4, 16}, {16, 4, 8}, {32, 4, 4}}, false);
  remo::bench::penalty_sweep();
  remo::bench::planning_engine_sweep();
  return 0;
}
