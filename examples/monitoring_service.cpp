// The embeddable "monitoring service" view (paper Fig. 1): a single
// MonitoringSystem object owns the task manager, the adaptive planner and
// the topology; the host application just adds/removes tasks over time and
// reads status. Finishes by dumping the live topology as Graphviz DOT.
//
//   $ ./monitoring_service | dot -Tsvg > topology.svg   (if graphviz is around)
#include <cstdio>

#include "core/monitoring_system.h"

using namespace remo;

int main() {
  SystemModel system(16, 120.0, CostModel{10.0, 1.0});
  system.set_collector_capacity(500.0);
  for (NodeId n = 1; n <= 16; ++n) system.set_observable(n, {0, 1, 2, 3, 4});

  MonitoringSystem service(std::move(system));

  auto show = [&](const char* when, double now) {
    const auto s = service.status(now);
    std::fprintf(stderr,
                 "[%-22s] tasks=%zu pairs=%zu collected=%zu (%.0f%%) trees=%zu "
                 "volume=%.0f adaptations=%zu (%zu msgs)\n",
                 when, s.tasks, s.pairs, s.collected, s.coverage * 100.0,
                 s.trees, s.message_volume, s.adaptations,
                 s.adaptation_messages);
  };

  // t=0: the ops team starts with fleet-wide CPU monitoring.
  MonitoringTask cpu;
  cpu.attrs = {0};
  for (NodeId n = 1; n <= 16; ++n) cpu.nodes.push_back(n);
  const TaskId cpu_id = service.add_task(cpu);
  show("fleet cpu", 0.0);

  // t=10: a debugging session adds detailed metrics on a suspect subset.
  MonitoringTask debug;
  debug.attrs = {1, 2, 3};
  debug.nodes = {3, 4, 5, 6};
  const TaskId debug_id = service.add_task(debug);
  show("+debug subset", 10.0);

  // t=20: an alarm metric goes mission-critical: replicate its delivery.
  MonitoringTask alarms;
  alarms.attrs = {4};
  for (NodeId n = 1; n <= 16; ++n) alarms.nodes.push_back(n);
  alarms.reliability = ReliabilityMode::kSSDP;
  service.add_task(alarms);
  show("+replicated alarms", 20.0);

  // t=30: debugging ends; the session's task disappears.
  service.remove_task(debug_id);
  show("-debug subset", 30.0);

  // t=40: the CPU task is widened to include memory.
  MonitoringTask widened;
  widened.id = cpu_id;
  widened.attrs = {0, 1};
  for (NodeId n = 1; n <= 16; ++n) widened.nodes.push_back(n);
  service.modify_task(widened);
  show("cpu -> cpu+mem", 40.0);

  // The current overlay, ready for graphviz.
  std::printf("%s", service.export_dot(40.0).c_str());
  return 0;
}
