// The monitoring SERVICE view (DESIGN.md §14): a long-running
// MonitoringDaemon owns the planner stack behind an async ingest bus —
// the host application never touches the planner, it just submits task
// churn and attribute values and reads status between epochs. The same
// ops storyline as before the daemon existed (fleet CPU → a debugging
// subset → replicated alarms → teardown → widening), now phrased as
// submit + run_epoch instead of direct calls, plus the service-mode
// extras: per-node value ingest, the resource_monitor-style exporters,
// and the live topology as Graphviz DOT.
//
//   $ ./monitoring_service | dot -Tsvg > topology.svg   (if graphviz is around)
//
// Every submit is acknowledged with an Admission verdict, task ids are
// assigned FIFO at apply time (1, 2, 3, ... with a single producer), and
// the virtual clock makes the run reproducible: a deployed daemon pacing
// itself with run_wall_clock() plans exactly like this tight loop.
#include <cstdio>

#include "service/daemon.h"

using namespace remo;

int main() {
  SystemModel system(16, 120.0, CostModel{10.0, 1.0});
  system.set_collector_capacity(500.0);
  for (NodeId n = 1; n <= 16; ++n) system.set_observable(n, {0, 1, 2, 3, 4});

  service::DaemonOptions options;
  options.epoch_duration = 10.0;  // one scene of the storyline per epoch
  service::MonitoringDaemon daemon(std::move(system), options);

  auto show = [&](const char* when) {
    const auto& s = daemon.last_status();
    std::fprintf(stderr,
                 "[%-22s] epoch=%llu tasks=%zu pairs=%zu collected=%zu "
                 "(%.0f%%) trees=%zu volume=%.0f adaptations=%zu (%zu msgs)\n",
                 when, static_cast<unsigned long long>(daemon.epoch()),
                 s.tasks, s.pairs, s.collected, s.coverage * 100.0, s.trees,
                 s.message_volume, s.adaptations, s.adaptation_messages);
  };

  // Scene 1: the ops team starts with fleet-wide CPU monitoring. The id
  // is knowable before the epoch applies it: FIFO order assigns 1.
  MonitoringTask cpu;
  cpu.attrs = {0};
  for (NodeId n = 1; n <= 16; ++n) cpu.nodes.push_back(n);
  daemon.submit_add_task(cpu);
  const TaskId cpu_id = 1;
  daemon.run_epoch();
  show("fleet cpu");

  // Scene 2: a debugging session adds detailed metrics on a suspect
  // subset (task 2), and the suspect nodes start pushing values.
  MonitoringTask debug;
  debug.attrs = {1, 2, 3};
  debug.nodes = {3, 4, 5, 6};
  daemon.submit_add_task(debug);
  const TaskId debug_id = 2;
  for (NodeId n = 3; n <= 6; ++n)
    daemon.submit_values(n, {service::ValueUpdate{n, 1, 0.25 * n},
                             service::ValueUpdate{n, 2, 100.0 + n}});
  daemon.run_epoch();
  show("+debug subset");

  // Scene 3: an alarm metric goes mission-critical: replicate delivery.
  MonitoringTask alarms;
  alarms.attrs = {4};
  for (NodeId n = 1; n <= 16; ++n) alarms.nodes.push_back(n);
  alarms.reliability = ReliabilityMode::kSSDP;
  daemon.submit_add_task(alarms);
  daemon.run_epoch();
  show("+replicated alarms");

  // Scene 4: debugging ends; the session's task disappears.
  daemon.submit_remove_task(debug_id);
  daemon.run_epoch();
  show("-debug subset");

  // Scene 5: the CPU task is widened to include memory.
  MonitoringTask widened;
  widened.id = cpu_id;
  widened.attrs = {0, 1};
  for (NodeId n = 1; n <= 16; ++n) widened.nodes.push_back(n);
  daemon.submit_modify_task(widened);
  daemon.run_epoch();
  show("cpu -> cpu+mem");

  // What a deployment would scrape: the one-object JSON summary and the
  // per-epoch time series (both resource_monitor-style, wire.h).
  std::fprintf(stderr, "\nsummary: %s\n\ntime series:\n%s",
               daemon.summary_json().c_str(),
               daemon.time_series_text().c_str());
  std::fprintf(stderr,
               "\n(a real deployment would pace the same loop with "
               "daemon.run_wall_clock(period, epochs) — plans and series "
               "would be identical)\n");

  // The current overlay, ready for graphviz.
  std::printf("%s", daemon.system().export_dot(daemon.now()).c_str());
  return 0;
}
