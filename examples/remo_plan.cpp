// Config-driven planning: read a scenario description (see
// core/scenario_parser.h for the format), plan, and print the topology —
// optionally as Graphviz DOT or JSON.
//
//   $ ./remo_plan scenario.txt [--dot|--json]
//   $ ./remo_plan --demo             # runs a built-in scenario
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/monitoring_system.h"
#include "core/scenario_parser.h"

using namespace remo;

namespace {

const char* kDemoScenario = R"(# remo_plan --demo scenario
system nodes=12 capacity=70 collector=280 C=10 a=1
observe 1-12 0,1,2,3
capacity 11-12 30          # two undersized nodes
task attrs=0,1 nodes=1-12
task attrs=2 nodes=1-6 agg=max
task attrs=3 nodes=1-12 freq=0.25
)";

int usage() {
  std::fprintf(stderr, "usage: remo_plan <scenario-file>|--demo [--dot|--json]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string text;
  std::string mode = argc >= 3 ? argv[2] : "";
  if (std::string(argv[1]) == "--demo") {
    text = kDemoScenario;
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }

  auto parsed = parse_scenario(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
    return 1;
  }

  MonitoringSystem service(std::move(parsed.scenario->system));
  for (auto& t : parsed.scenario->tasks) service.add_task(std::move(t));

  if (mode == "--dot") {
    std::printf("%s", service.export_dot().c_str());
    return 0;
  }
  if (mode == "--json") {
    std::printf("%s", service.export_json().c_str());
    return 0;
  }

  const auto s = service.status();
  std::printf("tasks=%zu pairs=%zu collected=%zu (%.1f%%) trees=%zu "
              "volume=%.1f\n",
              s.tasks, s.pairs, s.collected, s.coverage * 100.0, s.trees,
              s.message_volume);
  for (const auto& entry : service.topology().entries()) {
    std::printf("tree {");
    for (std::size_t i = 0; i < entry.attrs.size(); ++i)
      std::printf("%s%u", i ? "," : "", entry.attrs[i]);
    std::printf("}: %zu/%zu pairs, %zu nodes, height %zu\n",
                entry.collected_pairs, entry.offered_pairs, entry.tree.size(),
                entry.tree.height());
  }
  return 0;
}
