// Advanced-features scenario (Sec. 6): one deployment combining
//   - in-network aggregation (a MAX over per-node queue lengths),
//   - heterogeneous update frequencies (slow capacity counters piggyback),
//   - SSDP reliability (critical alarms delivered over two disjoint trees).
//
//   $ ./reliable_aggregation
#include <cstdio>

#include "extensions/attr_spec_derivation.h"
#include "extensions/reliability.h"
#include "planner/planner.h"
#include "task/task_manager.h"

using namespace remo;

int main() {
  const CostModel cost{10.0, 1.0};
  SystemModel system(30, 90.0, cost);
  system.set_collector_capacity(400.0);
  // Attr 0: queue length; attr 1: disk capacity (slow); attr 2: alarm state.
  for (NodeId n = 1; n <= 30; ++n) system.set_observable(n, {0, 1, 2});
  std::vector<NodeId> all_nodes;
  for (NodeId n = 1; n <= 30; ++n) all_nodes.push_back(n);

  // --- task definitions --------------------------------------------------
  MonitoringTask max_queue;  // "alert me on the worst queue in the fleet"
  max_queue.attrs = {0};
  max_queue.nodes = all_nodes;
  max_queue.aggregation = AggType::kMax;

  MonitoringTask disk;  // slow-moving: a tenth of the base rate suffices
  disk.attrs = {1};
  disk.nodes = all_nodes;
  disk.frequency = 0.1;

  MonitoringTask alarms;  // mission-critical: two disjoint delivery paths
  alarms.attrs = {2};
  alarms.nodes = all_nodes;
  alarms.reliability = ReliabilityMode::kSSDP;
  alarms.replicas = 2;

  // --- reliability rewriting (Sec. 6.2) ----------------------------------
  ReliabilityRewriter rewriter(/*first_alias_id=*/1000);
  auto rewritten = rewriter.rewrite({max_queue, disk, alarms});
  ReliabilityRewriter::register_aliases(system, rewritten.alias_of);
  std::printf("rewriter: %zu tasks in -> %zu tasks out, %zu conflict pair(s)\n",
              std::size_t{3}, rewritten.tasks.size(), rewritten.conflicts.size());

  TaskManager manager(&system);
  for (auto& t : rewritten.tasks) manager.add_task(std::move(t));
  const PairSet pairs = manager.dedup(system.num_vertices());

  // --- extension-aware planning (Sec. 6.1 / 6.3) -------------------------
  PlannerOptions options;
  options.attr_specs = derive_attr_specs(manager, /*aggregation_aware=*/true,
                                         /*frequency_aware=*/true);
  options.conflicts = rewritten.conflicts;
  const Topology topology = Planner(system, options).plan(pairs);

  std::printf("planned %zu trees; %zu/%zu pairs collected; volume %.1f\n",
              topology.num_trees(), topology.collected_pairs(),
              topology.total_pairs(), topology.total_cost());
  const Partition partition = topology.partition();
  for (const auto& [alias, original] : rewritten.alias_of)
    std::printf("  alarm attr %u and its replica %u ride different trees: %s\n",
                original, alias,
                partition.set_of(original) != partition.set_of(alias) ? "yes"
                                                                      : "NO!");
  for (const auto& entry : topology.entries()) {
    std::printf("  tree {");
    for (std::size_t i = 0; i < entry.attrs.size(); ++i)
      std::printf("%s%u", i ? "," : "", entry.attrs[i]);
    std::printf("}: %zu nodes, height %zu, volume %.1f\n", entry.tree.size(),
                entry.tree.height(), entry.tree.total_cost());
  }
  std::printf(
      "\nNote how the MAX tree is deep and cheap (partial aggregates\n"
      "collapse while relaying) and the slow disk counter rides along at a\n"
      "tenth of the cost; the alarm replicas never share a tree.\n");
  return 0;
}
