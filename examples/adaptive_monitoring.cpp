// Runtime adaptation scenario: monitoring tasks keep changing (debugging
// sessions, ad-hoc queries, reconfigured dashboards) and the topology must
// follow. Compares DIRECT-APPLY (cheapest, decays), REBUILD (best quality,
// unsustainable planning cost) and REMO's throttled ADAPTIVE scheme over a
// stream of task-update batches.
//
//   $ ./adaptive_monitoring
#include <cstdio>
#include <iostream>

#include "adapt/adaptive_planner.h"
#include "common/table.h"
#include "task/workload.h"

using namespace remo;

namespace {

struct RunTotals {
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  std::size_t adaptation_messages = 0;
  std::size_t operations = 0;
  std::size_t throttled = 0;
  double avg_coverage = 0.0;
};

RunTotals run(AdaptScheme scheme) {
  const CostModel cost{10.0, 1.0};
  SystemModel system(60, 120.0, cost);
  system.set_collector_capacity(480.0);
  Rng rng{3};
  system.assign_random_attributes(24, 8, rng);

  TaskManager manager(&system);
  WorkloadGenerator gen(system, WorkloadConfig{.attr_universe = 24}, 23);
  for (auto& t : gen.small_tasks(25)) manager.add_task(std::move(t));

  PlannerOptions options;
  options.max_candidates = 16;
  AdaptivePlanner planner(system, options, scheme);
  planner.initialize(manager.dedup(system.num_vertices()), 0.0);

  RunTotals totals;
  Rng churn{17};
  const int batches = 10;
  for (int b = 1; b <= batches; ++b) {
    // Each batch: 5% of nodes get 50% of their monitored attributes
    // replaced (the paper's dynamic-task emulation).
    apply_update_batch(manager, system, 24, churn);
    const auto report =
        planner.apply_update(manager.dedup(system.num_vertices()), b * 10.0);
    totals.wall_seconds += report.planning_wall_seconds;
    totals.cpu_seconds += report.planning_cpu_seconds;
    totals.adaptation_messages += report.adaptation_messages;
    totals.operations += report.operations_applied;
    totals.throttled += report.operations_throttled;
    totals.avg_coverage += planner.topology().coverage() * 100.0;
  }
  totals.avg_coverage /= batches;
  return totals;
}

}  // namespace

int main() {
  Table t({"scheme", "plan wall (s)", "plan CPU (s)", "adapt msgs",
           "ops applied", "throttled", "avg coverage %"});
  for (auto scheme : {AdaptScheme::kDirectApply, AdaptScheme::kRebuild,
                      AdaptScheme::kNoThrottle, AdaptScheme::kAdaptive}) {
    const auto totals = run(scheme);
    t.row()
        .add(to_string(scheme))
        .add(totals.wall_seconds, 3)
        .add(totals.cpu_seconds, 3)
        .add(static_cast<long long>(totals.adaptation_messages))
        .add(static_cast<long long>(totals.operations))
        .add(static_cast<long long>(totals.throttled))
        .add(totals.avg_coverage, 1);
  }
  t.print(std::cout);
  std::printf(
      "\nADAPTIVE should sit between DIRECT-APPLY (cheap, decaying) and\n"
      "REBUILD (expensive, optimal): near-REBUILD coverage at a small\n"
      "fraction of its planning cost, with cost-benefit throttling\n"
      "suppressing adaptations that would not pay for themselves.\n");
  return 0;
}
