// Datacenter-scale scenario: monitor a distributed stream-processing
// application (the System S stand-in) running across 200 nodes with ~200
// monitoring tasks — the paper's headline deployment — then simulate
// delivery and compare what a user of each planning scheme would actually
// observe (average percentage error of the collected attributes).
//
//   $ ./datacenter_monitoring
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "planner/planner.h"
#include "sim/simulator.h"
#include "streamapp/stream_app.h"
#include "task/workload.h"

using namespace remo;

int main() {
  const CostModel cost{10.0, 1.0};
  const std::size_t nodes = 200;

  SystemModel system(nodes, 38.0, cost);
  system.set_collector_capacity(25.0 * static_cast<double>(nodes));

  // Deploy the stream application: operators placed across the nodes
  // expose per-node rate/queue/utilization attributes (30-50 per node).
  StreamAppConfig app_config;
  app_config.num_operators = 5 * nodes;
  StreamApplication app(system, app_config, /*seed=*/7);
  std::printf("deployed %zu operators over %zu nodes; attribute universe %zu\n",
              app.num_operators(), nodes, app.attr_universe());

  // ~200 monitoring tasks over the application's attributes.
  WorkloadGenerator gen(system, WorkloadConfig{.attr_universe = app.attr_universe()},
                        11);
  TaskManager manager(&system);
  for (auto& t : gen.small_tasks(150)) manager.add_task(std::move(t));
  for (auto& t : gen.large_tasks(50)) manager.add_task(std::move(t));
  const PairSet pairs = manager.dedup(system.num_vertices());
  std::printf("%zu tasks -> %zu deduplicated node-attribute pairs\n\n",
              manager.num_tasks(), pairs.total_pairs());

  Table table({"scheme", "trees", "coverage %", "msg volume", "avg err %",
               "p95 err %"});
  for (auto scheme : {PartitionScheme::kSingletonSet, PartitionScheme::kOneSet,
                      PartitionScheme::kRemo}) {
    PlannerOptions options;
    options.partition_scheme = scheme;
    options.max_candidates = 16;
    const Topology topology = Planner(system, options).plan(pairs);

    // Replay the same application stream against this topology.
    SystemModel fresh = system;
    StreamApplication source(fresh, app_config, /*seed=*/7);
    SimConfig sim;
    sim.epochs = 150;
    sim.warmup = 30;
    const SimReport report = simulate(system, topology, pairs, source, sim);

    table.row()
        .add(to_string(scheme))
        .add(static_cast<long long>(topology.num_trees()))
        .add(topology.coverage() * 100.0, 1)
        .add(topology.total_cost(), 0)
        .add(report.avg_percent_error, 2)
        .add(report.p95_percent_error, 2);
  }
  table.print(std::cout);
  std::printf("\nREMO should deliver the lowest observation error: it covers "
              "more pairs\nwithin the same per-node budgets and keeps trees "
              "shallow where it matters.\n");
  return 0;
}
