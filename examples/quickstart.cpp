// Quickstart: plan a monitoring topology for a handful of tasks and
// inspect the result.
//
//   $ ./quickstart
//
// Walks the full REMO pipeline: describe the system -> submit tasks ->
// deduplicate -> plan -> inspect the forest of monitoring trees.
#include <cstdio>

#include "planner/planner.h"
#include "task/task_manager.h"

using namespace remo;

int main() {
  // 1. The monitored system: 8 nodes (ids 1..8; id 0 is the central
  //    collector), each with a CPU budget for monitoring work, under the
  //    cost model "a message with x values costs C + a*x".
  const CostModel cost{/*per_message=*/10.0, /*per_value=*/1.0};
  SystemModel system(/*num_nodes=*/8, /*default_capacity=*/60.0, cost);
  system.set_collector_capacity(120.0);

  // Attributes each node can observe (0 = cpu, 1 = memory, 2 = rx_rate).
  for (NodeId n = 1; n <= 8; ++n) system.set_observable(n, {0, 1, 2});

  // 2. Monitoring tasks t = (A_t, N_t). Tasks may overlap; the task
  //    manager deduplicates node-attribute pairs.
  TaskManager manager(&system);
  MonitoringTask cpu_everywhere;
  cpu_everywhere.attrs = {0};
  cpu_everywhere.nodes = {1, 2, 3, 4, 5, 6, 7, 8};
  manager.add_task(cpu_everywhere);

  MonitoringTask frontend_health;
  frontend_health.attrs = {0, 1, 2};  // cpu overlaps with the first task
  frontend_health.nodes = {1, 2, 3, 4};
  manager.add_task(frontend_health);

  const PairSet pairs = manager.dedup(system.num_vertices());
  std::printf("requested %zu raw pairs, %zu after deduplication\n",
              manager.raw_pair_count(), pairs.total_pairs());

  // 3. Plan. PartitionScheme::kRemo runs the guided local search; the
  //    baselines kSingletonSet / kOneSet are also available.
  PlannerOptions options;
  options.partition_scheme = PartitionScheme::kRemo;
  Planner planner(system, options);
  const Topology topology = planner.plan(pairs);

  // 4. Inspect.
  std::printf("planned %zu monitoring tree(s), %zu/%zu pairs collected "
              "(%.0f%%), message volume %.1f cost units/epoch\n",
              topology.num_trees(), topology.collected_pairs(),
              topology.total_pairs(), topology.coverage() * 100.0,
              topology.total_cost());
  for (const auto& entry : topology.entries()) {
    std::printf("  tree over attrs {");
    for (std::size_t i = 0; i < entry.attrs.size(); ++i)
      std::printf("%s%u", i ? "," : "", entry.attrs[i]);
    std::printf("}: %zu nodes, height %zu\n", entry.tree.size(),
                entry.tree.height());
    for (NodeId n : entry.tree.members())
      std::printf("    node %u -> parent %u (payload %.0f values, usage "
                  "%.1f/%.1f)\n",
                  n, entry.tree.parent(n), entry.tree.payload(n),
                  entry.tree.usage(n), entry.tree.avail(n));
  }
  return 0;
}
