#!/usr/bin/env python3
"""CI perf-smoke gate for the tree/planner kernel (ISSUE 4, satellite 5).

Compares a fresh BENCH_fig10.json (bench_fig10_optimization --json) against
the committed baseline bench/baselines/BENCH_fig10.json:

  * planning time ("par+cache (ms)" in the plan-evaluation-engine section)
    must not regress by more than GATE (default 2.0x, generous on purpose:
    CI machines are noisy and slower than the box the baseline came from);
  * collected pairs must match the baseline exactly — the kernel may get
    faster, never worse.

Usage: perf_smoke.py BASELINE.json CURRENT.json [--gate 2.0]
Exits non-zero with a diagnostic on any violation. Stdlib only.
"""

import argparse
import json
import sys

ENGINE_SECTION = "plan-evaluation engine"
TIME_COLUMN = "par+cache (ms)"
COLLECTED_COLUMN = "collected"
NODES_COLUMN = "nodes"


def engine_rows(path):
    with open(path) as f:
        doc = json.load(f)
    for section in doc["sections"]:
        if section["title"].startswith(ENGINE_SECTION):
            headers = section["headers"]
            return {
                int(row[headers.index(NODES_COLUMN)]): {
                    "ms": float(row[headers.index(TIME_COLUMN)]),
                    "collected": int(row[headers.index(COLLECTED_COLUMN)]),
                }
                for row in section["rows"]
            }
    sys.exit(f"{path}: no '{ENGINE_SECTION}' section found")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--gate", type=float, default=2.0,
                    help="max allowed planning-time ratio current/baseline")
    args = ap.parse_args()

    base = engine_rows(args.baseline)
    cur = engine_rows(args.current)
    failures = []
    print(f"{'nodes':>6} {'base ms':>9} {'cur ms':>9} {'ratio':>6}  collected")
    for nodes, b in sorted(base.items()):
        if nodes not in cur:
            failures.append(f"n={nodes}: missing from current run")
            continue
        c = cur[nodes]
        ratio = c["ms"] / b["ms"] if b["ms"] > 0 else float("inf")
        match = "==" if c["collected"] == b["collected"] else "!="
        print(f"{nodes:>6} {b['ms']:>9.1f} {c['ms']:>9.1f} {ratio:>6.2f}  "
              f"{b['collected']} {match} {c['collected']}")
        if ratio > args.gate:
            failures.append(
                f"n={nodes}: planning time {c['ms']:.1f} ms is "
                f"{ratio:.2f}x baseline {b['ms']:.1f} ms (gate {args.gate}x)")
        if c["collected"] != b["collected"]:
            failures.append(
                f"n={nodes}: collected pairs {c['collected']} != "
                f"baseline {b['collected']}")
    if failures:
        print("\nPERF SMOKE FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
