#!/usr/bin/env python3
"""CI perf-smoke gate over bench --json telemetry (ISSUE 4 satellite 5;
federation sweep added in ISSUE 6).

Compares a freshly generated BENCH_<name>.json against its committed
baseline under bench/baselines/:

  * the time column must not regress by more than GATE (default 2.0x,
    generous on purpose: CI machines are noisy and slower than the box the
    baseline came from);
  * the collected column must match the baseline exactly — a change may
    make the planner faster, never let it collect less.

The defaults gate the fig10 plan-evaluation-engine table; --section /
--key-column / --time-column / --collected-column retarget the same gate
at any other bench section, e.g. the federated shard sweep:

  perf_smoke.py base.json cur.json \
      --section "federated planning vs shard count" \
      --key-column K --time-column "max shard (s)"

Usage: perf_smoke.py BASELINE.json CURRENT.json [--gate 2.0] [--section S]
Exits non-zero with a diagnostic on any violation. Stdlib only.
"""

import argparse
import json
import sys


def section_rows(path, section_title, key_column, time_column, collected_column):
    with open(path) as f:
        doc = json.load(f)
    for section in doc["sections"]:
        if section["title"].startswith(section_title):
            headers = section["headers"]
            return {
                int(row[headers.index(key_column)]): {
                    "time": float(row[headers.index(time_column)]),
                    "collected": int(row[headers.index(collected_column)]),
                }
                for row in section["rows"]
            }
    sys.exit(f"{path}: no '{section_title}' section found")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--gate", type=float, default=2.0,
                    help="max allowed time ratio current/baseline")
    ap.add_argument("--section", default="plan-evaluation engine",
                    help="section title prefix to gate on")
    ap.add_argument("--key-column", default="nodes",
                    help="integer column identifying each row across runs")
    ap.add_argument("--time-column", default="par+cache (ms)",
                    help="column holding the gated wall time")
    ap.add_argument("--collected-column", default="collected",
                    help="column that must match the baseline exactly")
    args = ap.parse_args()

    def rows(path):
        return section_rows(path, args.section, args.key_column,
                            args.time_column, args.collected_column)

    base = rows(args.baseline)
    cur = rows(args.current)
    failures = []
    key = args.key_column
    print(f"{key:>6} {'base t':>9} {'cur t':>9} {'ratio':>6}  collected")
    for k, b in sorted(base.items()):
        if k not in cur:
            failures.append(f"{key}={k}: missing from current run")
            continue
        c = cur[k]
        # A zero baseline cell (sub-resolution timing) cannot gate a ratio.
        ratio = c["time"] / b["time"] if b["time"] > 0 else 1.0
        match = "==" if c["collected"] == b["collected"] else "!="
        print(f"{k:>6} {b['time']:>9.2f} {c['time']:>9.2f} {ratio:>6.2f}  "
              f"{b['collected']} {match} {c['collected']}")
        if ratio > args.gate:
            failures.append(
                f"{key}={k}: time {c['time']:.2f} is "
                f"{ratio:.2f}x baseline {b['time']:.2f} (gate {args.gate}x)")
        if c["collected"] != b["collected"]:
            failures.append(
                f"{key}={k}: collected pairs {c['collected']} != "
                f"baseline {b['collected']}")
    if failures:
        print("\nPERF SMOKE FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
