#!/usr/bin/env python3
"""remo_lint: REMO-specific correctness lint for the C++ sources.

An AST-lite, regex-plus-brace-tracking pass over `src/` that enforces the
project's determinism and performance contracts (DESIGN.md §11). The rules
are deliberately narrow: each encodes an invariant the generic toolchain
(-Wall, clang-tidy, sanitizers) cannot see because it is a *project*
convention, not a language rule.

Rules
-----
  unordered-iteration  Range-for over a std::unordered_{map,set} in the
                       planning/tree/adaptation paths. Hash iteration order
                       is libstdc++-version- and seed-dependent; any plan
                       derived from it breaks the bit-identical-plan
                       guarantee (DESIGN.md §10). Lookups are fine;
                       iteration must go through a sorted container.
  raw-random           std::rand / srand / time(nullptr) seeding. All
                       randomness must flow through common/rng.h (SplitMix
                       seeded explicitly) so runs are reproducible.
  naked-assert         assert() or <cassert> in src/. Release builds define
                       NDEBUG, silently compiling the check away; use
                       REMO_ASSERT (always on) or REMO_DCHECK (debug +
                       sanitizer builds) from common/check.h instead.
  span-store           Storing the CountSpan returned by in_counts() /
                       local_counts() in a named variable. The view borrows
                       the tree's count arrays and is invalidated by any
                       mutation; named bindings are how stale views survive
                       to a use site. Consume it in the same statement or
                       copy to a std::vector.
  hot-alloc            new / malloc / make_unique / make_shared inside a
                       function whose definition is marked `// REMO_HOT`.
                       Hot-path functions run per candidate per iteration;
                       allocation there is a measured regression (PR 4).
  hot-slot-lookup      slot_of() inside a `// REMO_HOT` function body. The
                       id->slot hash/array lookup costs more than the work
                       of a vectorized loop iteration; hot loops must
                       resolve slots once outside the loop (or walk
                       parent_[] slots directly) and index the flat arrays.
  raw-mutex            std::mutex / lock_guard / unique_lock / scoped_lock
                       / condition_variable used directly in src/. All
                       locking goes through the annotated remo::Mutex /
                       MutexLock / CondVar wrappers (common/mutex.h) so
                       Clang Thread Safety Analysis (-DREMO_TSA=ON,
                       DESIGN.md §16) sees every capability; a raw mutex
                       is a hole in the compile-time lock-discipline proof.
  unannotated-mutex    A remo::Mutex member declared in a file that never
                       says REMO_GUARDED_BY(that mutex). A mutex that
                       guards nothing is either dead weight or — worse —
                       guarding fields the annotation layer can't see;
                       name at least one guarded field, or waive with the
                       reason the mutex exists (e.g. pure signaling).
  naked-thread         std::thread construction or .detach() outside the
                       common/thread_pool owner. Detached threads outlive
                       scope unjoined (UB at exit, invisible to TSan
                       teardown) and ad-hoc threads bypass the pool's
                       deterministic parallel_for indexing; spawn through
                       ThreadPool, or waive with the ownership story.
  nondet-source        Nondeterminism sources in plan-affecting code (the
                       order-sensitive dirs): wall-clock reads
                       (system_clock, gettimeofday, clock()) and
                       thread_local state. Plans must be pure functions of
                       (inputs, seed); steady_clock *duration* measurement
                       for reported timings is fine and not flagged.
                       (Float accumulation over unordered containers — the
                       third §16 source — is already caught by
                       unordered-iteration: any hash-order walk is banned.)

Suppressions
------------
A violation may be waived on its own line or the line directly above:

    // remo-lint: allow(span-store) read-only snapshot, tree not mutated

The rule name must match and the reason must be non-empty; a reasonless
allow() is itself reported. Suppressions are per-line, per-rule.

Exit codes: 0 clean, 1 violations found, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}

# Directories (relative to the scanned root) where hash-iteration order can
# leak into plans: the planner search, the tree kernel, the adaptation /
# repair loop, partition manipulation, the federation routing paths
# (shard assignment and subtask ordering must be bit-deterministic, see
# DESIGN.md §12), and the service daemon (its wire stream, snapshots, and
# drain order underwrite the daemon-vs-batch bit-identity of DESIGN.md §14).
ORDER_SENSITIVE_DIRS = ("planner", "tree", "adapt", "partition", "federation",
                        "service")

SUPPRESS_RE = re.compile(r"//\s*remo-lint:\s*allow\(([a-z-]+)\)\s*(.*)$")
HOT_MARKER_RE = re.compile(r"//\s*REMO_HOT\b")

UNORDERED_DECL_RE = re.compile(r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*?:\s*(?:\*?\s*)?([A-Za-z_]\w*)\s*\)")

RAW_RANDOM_RE = re.compile(
    r"\bstd\s*::\s*rand\b|(?<![\w.])s?rand\s*\(|(?<![\w.:])time\s*\(\s*(?:nullptr|NULL|0)\s*\)"
)
NAKED_ASSERT_RE = re.compile(r"(?<![\w:])assert\s*\(")
CASSERT_INCLUDE_RE = re.compile(r'#\s*include\s*[<"](?:cassert|assert\.h)[>"]')
# Flags only *direct* bindings (`auto s = tree.in_counts(n)`), not
# same-statement consumption (`vec(tree.in_counts(n))`): the RHS must be the
# call itself, reached through member/scope access with no wrapping call.
SPAN_STORE_RE = re.compile(
    r"(?:\bauto\b[\s&*const]*|\bCountSpan\b[\s&]*|\bstd\s*::\s*span\s*<[^;=]*>[\s&]*)"
    r"[A-Za-z_]\w*\s*=\s*[\w\s.>:-]*\b(?:in_counts|local_counts)\s*\("
)
HOT_ALLOC_RE = re.compile(
    r"(?<![\w:])new\b|(?<![\w.:])(?:malloc|calloc|realloc)\s*\(|"
    r"\bmake_unique\s*<|\bmake_shared\s*<"
)
HOT_SLOT_LOOKUP_RE = re.compile(r"\bslot_of\s*\(")

# v2 concurrency/determinism rules (DESIGN.md §16) ---------------------------

RAW_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|lock_guard|unique_lock|scoped_lock|shared_lock|"
    r"condition_variable(?:_any)?)\b"
)
# A remo::Mutex member/global declaration: `Mutex name_;`, possibly
# `mutable`. std::mutex is lowercase, so the capitalized match is exact;
# `Mutex& ref;` (the MutexLock member) deliberately does not match.
MUTEX_DECL_RE = re.compile(r"\b(?:mutable\s+)?Mutex\s+([A-Za-z_]\w*)\s*;")
# `std::thread t(...)` / `std::jthread` / vector<std::thread>, but not
# `std::thread::hardware_concurrency` (scope access) and not
# `std::this_thread::*`.
NAKED_THREAD_RE = re.compile(r"\bstd\s*::\s*j?thread\b(?!\s*::)")
DETACH_RE = re.compile(r"\.\s*detach\s*\(")
# Wall-clock and per-thread state in plan-affecting code. steady_clock is
# allowed (duration measurement); `clock(` does not match `steady_clock::`
# (no '(' after the name) nor `hardware_clock`-style identifiers (no word
# boundary after '_').
NONDET_SOURCE_RE = re.compile(
    r"\bsystem_clock\b|\bgettimeofday\s*\(|(?<![\w:])clock\s*\(\s*\)|"
    r"\bthread_local\b"
)


class Violation:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Blank out comments and string/char literal contents, preserving the
    line structure so reported line numbers stay exact."""
    out: list[str] = []
    in_block = False
    for raw in lines:
        buf: list[str] = []
        i, n = 0, len(raw)
        while i < n:
            c = raw[i]
            if in_block:
                if raw.startswith("*/", i):
                    in_block = False
                    buf.append("  ")
                    i += 2
                else:
                    buf.append(" ")
                    i += 1
            elif raw.startswith("//", i):
                buf.append(" " * (n - i))
                break
            elif raw.startswith("/*", i):
                in_block = True
                buf.append("  ")
                i += 2
            elif c in "\"'":
                quote = c
                buf.append(quote)
                i += 1
                while i < n:
                    if raw[i] == "\\" and i + 1 < n:
                        buf.append("  ")
                        i += 2
                    elif raw[i] == quote:
                        buf.append(quote)
                        i += 1
                        break
                    else:
                        buf.append(" ")
                        i += 1
            else:
                buf.append(c)
                i += 1
        out.append("".join(buf))
    return out


def collect_suppressions(raw_lines: list[str], violations: list[Violation],
                         path: Path) -> dict[int, set[str]]:
    """Map line number -> rules waived there. An allow() on line L waives
    line L and line L+1 (annotation-above style). Reasonless allows are
    reported as violations of rule `suppression`."""
    allowed: dict[int, set[str]] = {}
    for idx, raw in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(raw)
        if not m:
            continue
        rule, reason = m.group(1), m.group(2).strip()
        if not reason:
            violations.append(Violation(
                path, idx, "suppression",
                f"allow({rule}) without a reason — say why the waiver is safe"))
            continue
        for line in (idx, idx + 1):
            allowed.setdefault(line, set()).add(rule)
    return allowed


def unordered_var_names(code_lines: list[str]) -> set[str]:
    """Names declared with an unordered container type. Template argument
    lists are skipped by angle-bracket matching, so `unordered_map<K,
    vector<V>> name` resolves to `name`."""
    names: set[str] = set()
    code = "\n".join(code_lines)
    for m in UNORDERED_DECL_RE.finditer(code):
        i, depth = m.end(), 1
        while i < len(code) and depth > 0:
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
            i += 1
        tail = code[i:i + 160]
        dm = re.match(r"\s*[&*]*\s*(?:const\s+)?([A-Za-z_]\w*)", tail)
        if dm:
            names.add(dm.group(1))
    return names


def hot_function_lines(raw_lines: list[str], code_lines: list[str]) -> set[int]:
    """Line numbers inside function bodies marked `// REMO_HOT` (marker on
    its own line or trailing the signature; body = next balanced {...})."""
    hot: set[int] = set()
    n = len(raw_lines)
    for idx in range(n):
        if not HOT_MARKER_RE.search(raw_lines[idx]):
            continue
        # Find the opening brace at or after the marker line.
        depth = 0
        opened = False
        j = idx
        while j < n:
            for ch in code_lines[j]:
                if ch == "{":
                    depth += 1
                    opened = True
                elif ch == "}":
                    depth -= 1
            if opened:
                hot.add(j + 1)
                if depth <= 0:
                    break
            j += 1
            if not opened and j > idx + 8:
                break  # marker not followed by a function body
    return hot


def lint_file(path: Path, rel: Path) -> list[Violation]:
    try:
        raw_lines = path.read_text(encoding="utf-8").splitlines()
    except (OSError, UnicodeDecodeError) as e:
        raise RuntimeError(f"cannot read {path}: {e}") from e
    code_lines = strip_comments_and_strings(raw_lines)

    violations: list[Violation] = []
    allowed = collect_suppressions(raw_lines, violations, rel)

    def report(line: int, rule: str, message: str) -> None:
        if rule in allowed.get(line, ()):  # waived with a written reason
            return
        violations.append(Violation(rel, line, rule, message))

    order_sensitive = any(part in ORDER_SENSITIVE_DIRS for part in rel.parts)
    unordered_names = unordered_var_names(code_lines) if order_sensitive else set()
    hot_lines = hot_function_lines(raw_lines, code_lines)
    # Mutexes named as guards anywhere in this file (REMO_GUARDED_BY /
    # REMO_PT_GUARDED_BY); a Mutex member missing from this set guards
    # nothing the analysis can see.
    guarded_mutexes = {
        m.group(1)
        for code in code_lines
        for m in re.finditer(
            r"REMO_(?:PT_)?GUARDED_BY\(\s*([A-Za-z_]\w*)\s*\)", code)
    }

    for idx, code in enumerate(code_lines, start=1):
        if order_sensitive and unordered_names:
            m = RANGE_FOR_RE.search(code)
            if m and m.group(1) in unordered_names:
                report(idx, "unordered-iteration",
                       f"range-for over unordered container '{m.group(1)}': hash "
                       "order is nondeterministic; iterate a sorted vector "
                       "(common/sorted_vector.h) instead")
        if RAW_RANDOM_RE.search(code):
            report(idx, "raw-random",
                   "raw libc randomness; use common/rng.h so runs are "
                   "reproducible from an explicit seed")
        if CASSERT_INCLUDE_RE.search(code):
            report(idx, "naked-assert",
                   "<cassert> include; use common/check.h (REMO_ASSERT / "
                   "REMO_DCHECK) so checks survive NDEBUG builds")
        if NAKED_ASSERT_RE.search(code):
            report(idx, "naked-assert",
                   "assert() compiles away under NDEBUG; use REMO_ASSERT "
                   "(always on) or REMO_DCHECK (debug/sanitizer builds)")
        if SPAN_STORE_RE.search(code):
            report(idx, "span-store",
                   "storing the borrowed view returned by in_counts()/"
                   "local_counts(); it is invalidated by any tree mutation — "
                   "consume it in the same statement or copy to a vector")
        if idx in hot_lines and HOT_ALLOC_RE.search(code):
            report(idx, "hot-alloc",
                   "allocation inside a // REMO_HOT function; hot paths must "
                   "reuse preallocated scratch (DESIGN.md §8)")
        if idx in hot_lines and HOT_SLOT_LOOKUP_RE.search(code):
            report(idx, "hot-slot-lookup",
                   "slot_of() inside a // REMO_HOT function; resolve the slot "
                   "once before the loop and index the flat arrays directly "
                   "(DESIGN.md §15)")
        if RAW_MUTEX_RE.search(code):
            report(idx, "raw-mutex",
                   "raw std:: locking primitive; use remo::Mutex / MutexLock "
                   "/ CondVar (common/mutex.h) so the thread-safety analysis "
                   "sees the capability (DESIGN.md §16)")
        m = MUTEX_DECL_RE.search(code)
        if m and m.group(1) not in guarded_mutexes:
            report(idx, "unannotated-mutex",
                   f"Mutex '{m.group(1)}' has no REMO_GUARDED_BY field in "
                   "this file; annotate what it guards, or waive with the "
                   "reason it exists (DESIGN.md §16)")
        if NAKED_THREAD_RE.search(code) or DETACH_RE.search(code):
            report(idx, "naked-thread",
                   "ad-hoc std::thread / detach(); spawn through "
                   "common/thread_pool (joined, deterministic indexing) or "
                   "waive with the ownership story (DESIGN.md §16)")
        if order_sensitive and NONDET_SOURCE_RE.search(code):
            report(idx, "nondet-source",
                   "wall-clock read or thread_local state in plan-affecting "
                   "code; plans must be pure functions of (inputs, seed) — "
                   "use the virtual clock / common/rng.h, or measure "
                   "durations with steady_clock (DESIGN.md §16)")
    return violations


def iter_sources(roots: list[Path]) -> list[Path]:
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            if root.suffix in CXX_SUFFIXES:
                files.append(root)
        elif root.is_dir():
            files.extend(p for p in sorted(root.rglob("*"))
                         if p.suffix in CXX_SUFFIXES and p.is_file())
        else:
            raise RuntimeError(f"no such file or directory: {root}")
    return files


def run(paths: list[str]) -> int:
    roots = [Path(p) for p in paths]
    try:
        files = iter_sources(roots)
    except RuntimeError as e:
        print(f"remo_lint: {e}", file=sys.stderr)
        return 2
    if not files:
        print("remo_lint: no C++ sources found", file=sys.stderr)
        return 2

    all_violations: list[Violation] = []
    for f in files:
        try:
            rel = f.relative_to(Path.cwd())
        except ValueError:
            rel = f
        try:
            all_violations.extend(lint_file(f, rel))
        except RuntimeError as e:
            print(f"remo_lint: {e}", file=sys.stderr)
            return 2

    for v in all_violations:
        print(v)
    if all_violations:
        print(f"remo_lint: {len(all_violations)} violation(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(
        description="REMO-specific correctness lint (see DESIGN.md §11)")
    ap.add_argument("paths", nargs="+", help="files or directories to lint")
    args = ap.parse_args()
    return run(args.paths)


if __name__ == "__main__":
    sys.exit(main())
