#include "sim/trace.h"

#include <cstdio>
#include <sstream>

namespace remo {

void Trace::add(NodeAttrPair pair, std::uint64_t epoch, double value) {
  auto [it, inserted] = series_[pair].insert_or_assign(epoch, value);
  (void)it;
  if (inserted) ++samples_;
  last_epoch_ = std::max(last_epoch_, epoch);
}

std::optional<double> Trace::value_at(NodeAttrPair pair,
                                      std::uint64_t epoch) const {
  auto sit = series_.find(pair);
  if (sit == series_.end()) return std::nullopt;
  const auto& points = sit->second;
  auto it = points.upper_bound(epoch);
  if (it == points.begin()) return std::nullopt;  // nothing at/before epoch
  --it;
  return it->second;
}

std::string Trace::serialize() const {
  std::string out = "# remo trace: epoch node attr value\n";
  char line[96];
  for (const auto& [pair, points] : series_) {
    for (const auto& [epoch, value] : points) {
      std::snprintf(line, sizeof line, "%llu %u %u %.17g\n",
                    static_cast<unsigned long long>(epoch), pair.node, pair.attr,
                    value);
      out += line;
    }
  }
  return out;
}

std::optional<Trace> Trace::parse(const std::string& text, std::string* error) {
  Trace trace;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::istringstream line(raw);
    unsigned long long epoch = 0;
    unsigned node = 0, attr = 0;
    double value = 0.0;
    if (!(line >> epoch)) continue;  // blank line
    if (!(line >> node >> attr >> value)) {
      if (error) *error = "line " + std::to_string(line_no) + ": malformed sample";
      return std::nullopt;
    }
    std::string extra;
    if (line >> extra) {
      if (error)
        *error = "line " + std::to_string(line_no) + ": trailing tokens";
      return std::nullopt;
    }
    trace.add({static_cast<NodeId>(node), static_cast<AttrId>(attr)},
              static_cast<std::uint64_t>(epoch), value);
  }
  return trace;
}

RecordingSource::RecordingSource(ValueSource& inner, const PairSet& pairs)
    : inner_(inner), pairs_(pairs.all_pairs()) {}

void RecordingSource::advance(std::uint64_t epoch) {
  inner_.advance(epoch);
  for (const auto& pair : pairs_)
    trace_.add(pair, epoch, inner_.value(pair.node, pair.attr));
}

double RecordingSource::value(NodeId node, AttrId attr) const {
  return inner_.value(node, attr);
}

}  // namespace remo
