#include "sim/value_source.h"

#include <algorithm>

namespace remo {

RandomWalkSource::RandomWalkSource(const PairSet& pairs, std::uint64_t seed,
                                   double start, double sigma, double floor)
    : rng_(seed), sigma_(sigma), floor_(floor) {
  for (const auto& p : pairs.all_pairs())
    values_.emplace(p, std::max(floor_, start + 10.0 * rng_.normal()));
}

void RandomWalkSource::advance(std::uint64_t /*epoch*/) {
  for (auto& [pair, v] : values_)
    v = std::max(floor_, v + sigma_ * rng_.normal());
}

double RandomWalkSource::value(NodeId node, AttrId attr) const {
  auto it = values_.find(NodeAttrPair{node, attr});
  return it == values_.end() ? 0.0 : it->second;
}

BurstySource::BurstySource(const PairSet& pairs, std::uint64_t seed, double baseline,
                           double sigma, double burst_probability,
                           double burst_factor, double decay)
    : rng_(seed),
      baseline_(baseline),
      sigma_(sigma),
      burst_probability_(burst_probability),
      burst_factor_(burst_factor),
      decay_(decay) {
  for (const auto& p : pairs.all_pairs()) {
    State s;
    s.value = std::max(1.0, baseline_ + 10.0 * rng_.normal());
    states_.emplace(p, s);
  }
}

void BurstySource::advance(std::uint64_t /*epoch*/) {
  for (auto& [pair, s] : states_) {
    // Mean-reverting base walk plus a decaying burst component.
    s.value += sigma_ * rng_.normal() + 0.05 * (baseline_ - s.value);
    s.burst *= decay_;
    if (rng_.bernoulli(burst_probability_))
      s.burst += baseline_ * (burst_factor_ - 1.0) * rng_.uniform(0.5, 1.0);
    s.value = std::max(1.0, s.value);
  }
}

double BurstySource::value(NodeId node, AttrId attr) const {
  auto it = states_.find(NodeAttrPair{node, attr});
  if (it == states_.end()) return 0.0;
  return it->second.value + it->second.burst;
}

}  // namespace remo
