#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace remo {

namespace {

struct Relayed {
  std::uint32_t pair = 0;   // global pair index
  double value = 0.0;
  std::uint64_t origin = 0; // epoch the value was observed
};

struct SimNode {
  NodeId id = kNoNode;
  NodeId parent = kNoNode;
  std::size_t depth = 0;
  /// (global pair index, attr position in tree) for locally observed pairs.
  std::vector<std::pair<std::uint32_t, std::size_t>> locals;
  /// Relay buffer keyed by pair index: newest value wins.
  std::unordered_map<std::uint32_t, Relayed> buffer;
};

struct SimTree {
  /// Members ordered by increasing depth: parents emit before children, so
  /// a value advances one hop per epoch (store-and-forward).
  std::vector<SimNode> nodes;
  /// Send period per tree-attribute position (from frequency weights).
  std::vector<std::uint64_t> period;
  /// node id -> index into `nodes`.
  std::unordered_map<NodeId, std::size_t> index;
};

/// The per-deployment structures: rebuilt from scratch whenever the
/// topology is (re)deployed mid-run via SimConfig::on_reconfigure.
struct Deployment {
  std::vector<SimTree> trees;
  std::size_t planned_pairs = 0;
  /// Expected collector arrivals per epoch: Σ local[m] / period[m] — the
  /// per-attribute send periods discount slow-updating attributes so
  /// delivered_ratio can reach 1.0 for any frequency-weight mix.
  double expected_per_epoch = 0.0;
};

/// `sim.*` metrics mirrored from the run (resolved once; the obs switch is
/// sampled at simulate() entry). Null pointers = publishing off.
struct SimMetrics {
  obs::Counter* epochs = nullptr;
  obs::Counter* messages_sent = nullptr;
  obs::Counter* values_delivered = nullptr;
  obs::Counter* values_dropped = nullptr;
  obs::Counter* values_rebuffered = nullptr;
  obs::Histogram* deliveries_per_epoch = nullptr;

  explicit SimMetrics(obs::Registry* registry) {
    if (!obs::enabled()) return;
    obs::Registry& reg = obs::registry_or_global(registry);
    epochs = &reg.counter("sim.epochs");
    messages_sent = &reg.counter("sim.messages_sent");
    values_delivered = &reg.counter("sim.values_delivered");
    values_dropped = &reg.counter("sim.values_dropped");
    values_rebuffered = &reg.counter("sim.values_rebuffered");
    deliveries_per_epoch = &reg.histogram(
        "sim.deliveries_per_epoch", {0.0, 1.0, 10.0, 100.0, 1000.0, 10000.0});
  }
};

Deployment deploy(const Topology& topology,
                  const std::unordered_map<NodeAttrPair, std::uint32_t>& pair_index) {
  Deployment d;
  d.trees.reserve(topology.entries().size());
  for (const auto& entry : topology.entries()) {
    SimTree st;
    const auto& specs = entry.tree.attr_specs();
    st.period.resize(specs.size());
    for (std::size_t m = 0; m < specs.size(); ++m)
      st.period[m] = send_period(specs[m].weight);
    for (NodeId n : entry.tree.members()) {
      SimNode sn;
      sn.id = n;
      sn.parent = entry.tree.parent(n);
      sn.depth = entry.tree.depth(n);
      // remo-lint: allow(span-store) deployment snapshot of a const topology; consumed in this loop before any mutation
      const auto local = entry.tree.local_counts(n);
      for (std::size_t m = 0; m < specs.size(); ++m) {
        if (local[m] == 0) continue;
        auto it = pair_index.find(NodeAttrPair{n, specs[m].attr});
        if (it != pair_index.end()) sn.locals.emplace_back(it->second, m);
        d.planned_pairs += local[m];
        d.expected_per_epoch += static_cast<double>(local[m]) /
                                static_cast<double>(st.period[m]);
      }
      st.nodes.push_back(std::move(sn));
    }
    std::stable_sort(st.nodes.begin(), st.nodes.end(),
                     [](const SimNode& a, const SimNode& b) {
                       if (a.depth != b.depth) return a.depth < b.depth;
                       return a.id < b.id;
                     });
    for (std::size_t i = 0; i < st.nodes.size(); ++i) st.index[st.nodes[i].id] = i;
    d.trees.push_back(std::move(st));
  }
  return d;
}

}  // namespace

SimReport simulate(const SystemModel& system, const Topology& topology,
                   const PairSet& pairs, ValueSource& source,
                   const SimConfig& config) {
  SimReport report;
  report.epochs = config.epochs;
  report.total_pairs = pairs.total_pairs();

  // ---- global pair indexing -------------------------------------------
  const auto all_pairs = pairs.all_pairs();
  std::unordered_map<NodeAttrPair, std::uint32_t> pair_index;
  pair_index.reserve(all_pairs.size());
  for (std::uint32_t i = 0; i < all_pairs.size(); ++i)
    pair_index.emplace(all_pairs[i], i);

  // Collector view: last delivered value per pair, seeded with the
  // deployment-time snapshot (truth before the first epoch).
  std::vector<double> view(all_pairs.size());
  for (std::uint32_t i = 0; i < all_pairs.size(); ++i)
    view[i] = source.value(all_pairs[i].node, all_pairs[i].attr);

  // ---- per-deployment structures ---------------------------------------
  Deployment dep = deploy(topology, pair_index);
  report.planned_pairs = dep.planned_pairs;

  // Distinct nodes with an outage schedule (a node may have several
  // disjoint failure windows; down-ness is the OR over all of them).
  std::vector<NodeId> failure_nodes;
  for (const auto& f : config.failures)
    if (f.node < system.num_vertices()) failure_nodes.push_back(f.node);
  std::sort(failure_nodes.begin(), failure_nodes.end());
  failure_nodes.erase(std::unique(failure_nodes.begin(), failure_nodes.end()),
                      failure_nodes.end());

  // ---- run ---------------------------------------------------------------
  std::vector<double> used(system.num_vertices(), 0.0);
  RunningStats node_util, collector_util;
  double max_util = 0.0;
  std::vector<double> errors;  // pooled over sampled epochs (for p95)
  RunningStats err_stats;
  std::vector<double> pair_err_sum(
      config.collect_pair_errors ? all_pairs.size() : 0, 0.0);
  std::size_t deliveries = 0;
  double expected_deliveries = 0.0;
  std::uint64_t sampled_epochs = 0;
  std::vector<bool> down(system.num_vertices(), false);
  const CostModel& cost = system.cost();
  SimMetrics metrics(config.metrics);
  std::size_t delivered_total = 0;  // collector arrivals, all epochs

  for (std::uint64_t epoch = 0; epoch < config.epochs; ++epoch) {
    const obs::Span epoch_span("sim.epoch");
    const std::size_t messages_before = report.messages_sent;
    const std::size_t dropped_before = report.values_dropped;
    const std::size_t rebuffered_before = report.values_rebuffered;
    const std::size_t delivered_before = delivered_total;
    source.advance(epoch);
    std::fill(used.begin(), used.end(), 0.0);
    const bool sampling = epoch >= config.warmup;

    // Apply the outage schedule; a node going down loses its relay buffers.
    // A node is down iff ANY of its failure windows covers the epoch.
    for (NodeId n : failure_nodes) {
      bool is_down = false;
      for (const auto& f : config.failures)
        if (f.node == n && epoch >= f.at_epoch && epoch < f.recover_epoch) {
          is_down = true;
          break;
        }
      if (is_down && !down[n]) {
        down[n] = true;
        for (auto& st : dep.trees) {
          auto it = st.index.find(n);
          if (it != st.index.end()) st.nodes[it->second].buffer.clear();
        }
      } else if (!is_down && down[n]) {
        down[n] = false;
      }
    }

    // Rotate tree processing order so contended capacity is shared fairly.
    const std::size_t nt = dep.trees.size();
    for (std::size_t k = 0; k < nt; ++k) {
      SimTree& st = dep.trees[(k + epoch) % nt];
      for (SimNode& sn : st.nodes) {
        if (down[sn.id]) continue;  // a down node sends nothing
        // Assemble the outgoing payload: fresh locals first, then relayed
        // child values (oldest first) — locals have priority under trim.
        std::vector<Relayed> payload;
        payload.reserve(sn.locals.size() + sn.buffer.size());
        for (const auto& [pidx, m] : sn.locals) {
          if (epoch % st.period[m] != 0) continue;
          const auto& p = all_pairs[pidx];
          payload.push_back({pidx, source.value(p.node, p.attr), epoch});
        }
        const std::size_t num_locals = payload.size();
        std::vector<Relayed> relays;
        relays.reserve(sn.buffer.size());
        for (const auto& [pidx, r] : sn.buffer) relays.push_back(r);
        std::sort(relays.begin(), relays.end(), [](const Relayed& a, const Relayed& b) {
          if (a.origin != b.origin) return a.origin < b.origin;
          return a.pair < b.pair;
        });
        payload.insert(payload.end(), relays.begin(), relays.end());
        sn.buffer.clear();
        if (payload.empty()) continue;
        if (down[sn.parent]) {
          // The parent is unreachable: the whole message is lost (the
          // sender still pays for the attempt).
          const double lost_cost =
              cost.per_message + cost.per_value * static_cast<double>(payload.size());
          used[sn.id] += lost_cost;
          report.values_dropped += payload.size();
          continue;
        }

        std::size_t fit = payload.size();
        if (config.enforce_capacity) {
          const double remaining =
              std::min(system.capacity(sn.id) - used[sn.id],
                       system.capacity(sn.parent) - used[sn.parent]);
          const double x = (remaining - cost.per_message) / cost.per_value;
          fit = x <= 0 ? 0
                       : std::min<std::size_t>(payload.size(),
                                               static_cast<std::size_t>(x));
        }
        if (fit == 0) {
          // Whole message deferred: re-buffer the relayed values; local
          // values are regenerated next epoch anyway.
          for (std::size_t i = num_locals; i < payload.size(); ++i)
            sn.buffer.emplace(payload[i].pair, payload[i]);
          report.values_rebuffered += payload.size() - num_locals;
          report.values_dropped += num_locals;
          continue;
        }
        // Partial trim: unsent locals are dropped (regenerated next epoch),
        // unsent relays are re-buffered for the next message — same
        // deferral semantics as the fit == 0 path.
        report.values_dropped += fit < num_locals ? num_locals - fit : 0;
        report.values_rebuffered += payload.size() - std::max(fit, num_locals);
        for (std::size_t i = std::max(fit, num_locals); i < payload.size(); ++i)
          sn.buffer.emplace(payload[i].pair, payload[i]);

        const double msg_cost =
            cost.per_message + cost.per_value * static_cast<double>(fit);
        used[sn.id] += msg_cost;
        used[sn.parent] += msg_cost;
        ++report.messages_sent;
        report.values_sent += fit;

        for (std::size_t i = 0; i < fit; ++i) {
          const Relayed& r = payload[i];
          if (sn.parent == kCollectorId) {
            view[r.pair] = r.value;
            ++delivered_total;
            if (sampling) ++deliveries;
            if (config.on_delivery)
              config.on_delivery(all_pairs[r.pair], epoch, r.value);
          } else {
            // Parent buffers for next epoch; a newer value for the same
            // pair supersedes (the older one is effectively dropped).
            auto pit = st.index.find(sn.parent);
            if (pit != st.index.end()) {
              auto& pbuf = st.nodes[pit->second].buffer;
              auto [it, inserted] = pbuf.emplace(r.pair, r);
              if (!inserted) {
                if (it->second.origin < r.origin) it->second = r;
                ++report.values_dropped;
              }
            }
          }
        }
      }
    }

    if (metrics.epochs != nullptr) {
      metrics.epochs->add(1);
      metrics.messages_sent->add(report.messages_sent - messages_before);
      metrics.values_delivered->add(delivered_total - delivered_before);
      metrics.values_dropped->add(report.values_dropped - dropped_before);
      metrics.values_rebuffered->add(report.values_rebuffered -
                                     rebuffered_before);
      metrics.deliveries_per_epoch->observe(
          static_cast<double>(delivered_total - delivered_before));
    }

    if (config.on_epoch_end) config.on_epoch_end(epoch);
    if (sampling) {
      ++sampled_epochs;
      expected_deliveries += dep.expected_per_epoch;
      for (std::uint32_t i = 0; i < all_pairs.size(); ++i) {
        const double truth = source.value(all_pairs[i].node, all_pairs[i].attr);
        const double err = std::abs(view[i] - truth) /
                           std::max(std::abs(truth), config.error_floor);
        err_stats.add(err);
        errors.push_back(err);
        if (config.collect_pair_errors) pair_err_sum[i] += err;
      }
      double epoch_util_sum = 0.0;
      for (NodeId n = 1; n < system.num_vertices(); ++n) {
        const double u = used[n] / std::max(system.capacity(n), 1e-9);
        epoch_util_sum += u;
        max_util = std::max(max_util, u);
      }
      node_util.add(epoch_util_sum / static_cast<double>(system.num_nodes()));
      collector_util.add(used[kCollectorId] /
                         std::max(system.capacity(kCollectorId), 1e-9));
    }

    // A redeployed topology takes effect from the next epoch: links are
    // torn down (in-flight relay buffers are lost with them) and the
    // delivery expectations switch to the new forest.
    if (config.on_reconfigure) {
      if (const Topology* next = config.on_reconfigure(epoch)) {
        dep = deploy(*next, pair_index);
        report.planned_pairs = dep.planned_pairs;
      }
    }
  }

  report.avg_percent_error = err_stats.mean() * 100.0;
  report.p95_percent_error = percentile(std::move(errors), 95.0) * 100.0;
  report.delivered_ratio = expected_deliveries <= 0.0
                               ? 0.0
                               : static_cast<double>(deliveries) /
                                     expected_deliveries;
  report.avg_node_utilization = node_util.mean();
  report.max_node_utilization = max_util;
  report.collector_utilization = collector_util.mean();
  if (config.collect_pair_errors && sampled_epochs > 0) {
    report.pair_mean_error.resize(all_pairs.size());
    for (std::uint32_t i = 0; i < all_pairs.size(); ++i)
      report.pair_mean_error[i] =
          100.0 * pair_err_sum[i] / static_cast<double>(sampled_epochs);
  }
  return report;
}

}  // namespace remo
