// Value traces: record the ground-truth stream of any ValueSource and
// replay it later — byte-identical inputs across schemes, machines, and
// runs, and a path to feeding *real* captured monitoring data through the
// simulator. Text format, one sample per line:
//
//     <epoch> <node> <attr> <value>
//
// with '#' comments. Samples may arrive in any order; replay returns, for
// each pair, the latest sample at or before the current epoch (values hold
// between updates).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/value_source.h"

namespace remo {

class Trace {
 public:
  void add(NodeAttrPair pair, std::uint64_t epoch, double value);
  std::size_t size() const noexcept { return samples_; }
  bool empty() const noexcept { return samples_ == 0; }
  /// Largest epoch recorded (0 if empty).
  std::uint64_t last_epoch() const noexcept { return last_epoch_; }

  /// Latest value at or before `epoch`; nullopt before the first sample.
  std::optional<double> value_at(NodeAttrPair pair, std::uint64_t epoch) const;

  std::string serialize() const;
  /// Parses the text format; returns nullopt (with `error` set, if given)
  /// on malformed input.
  static std::optional<Trace> parse(const std::string& text,
                                    std::string* error = nullptr);

  bool operator==(const Trace&) const = default;

 private:
  // Per pair: epoch -> value (ordered for value_at lookups).
  std::map<NodeAttrPair, std::map<std::uint64_t, double>> series_;
  std::size_t samples_ = 0;
  std::uint64_t last_epoch_ = 0;
};

/// Wraps a live source, recording every registered pair's value each
/// epoch. Use as the simulation's source; harvest trace() afterwards.
class RecordingSource : public ValueSource {
 public:
  RecordingSource(ValueSource& inner, const PairSet& pairs);

  void advance(std::uint64_t epoch) override;
  double value(NodeId node, AttrId attr) const override;

  const Trace& trace() const noexcept { return trace_; }

 private:
  ValueSource& inner_;
  std::vector<NodeAttrPair> pairs_;
  Trace trace_;
};

/// Replays a trace as a ValueSource. Pairs absent from the trace read 0.
class TraceSource : public ValueSource {
 public:
  explicit TraceSource(Trace trace) : trace_(std::move(trace)) {}

  void advance(std::uint64_t epoch) override { epoch_ = epoch; }
  double value(NodeId node, AttrId attr) const override {
    return trace_.value_at({node, attr}, epoch_).value_or(0.0);
  }

  const Trace& trace() const noexcept { return trace_; }

 private:
  Trace trace_;
  std::uint64_t epoch_ = 0;
};

}  // namespace remo
