// Epoch-driven store-and-forward simulator of a deployed monitoring
// topology — the BlueGene/P-deployment substitute (see DESIGN.md).
//
// Per epoch, every tree member emits one update message to its parent
// carrying its fresh local values plus the child values buffered in the
// previous epoch, so a value observed at depth d reaches the collector
// after d-1 epochs. Sending and receiving each charge C + a·x against the
// endpoint's per-epoch capacity; when capacity runs out, relayed values
// are trimmed (local values first priority, then oldest child values),
// which surfaces as staleness — and therefore percentage error — at the
// collector.
//
// Holistic collection only: aggregation-aware experiments (Fig. 12a) are
// evaluated on planner metrics, not on the simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "cost/system_model.h"
#include "planner/topology.h"
#include "sim/value_source.h"
#include "task/pair_set.h"

namespace remo {

namespace obs {
class Registry;
}

/// A node outage: `node` is down in epochs [at_epoch, recover_epoch). A
/// down node neither sends nor relays (its relay buffer is lost), and
/// messages sent to it are lost — the failure model behind the Sec. 6.2
/// reliability evaluation.
struct NodeFailure {
  NodeId node = kNoNode;
  std::uint64_t at_epoch = 0;
  std::uint64_t recover_epoch = std::numeric_limits<std::uint64_t>::max();
};

struct SimConfig {
  std::uint64_t epochs = 200;
  /// Error sampling starts after warmup (lets the pipeline fill).
  std::uint64_t warmup = 20;
  /// If false, capacities are ignored (ideal network; useful in tests).
  bool enforce_capacity = true;
  /// Relative-error denominators are clamped to at least this.
  double error_floor = 1.0;
  /// Injected node outages.
  std::vector<NodeFailure> failures;
  /// Also fill SimReport::pair_mean_error (one entry per pair, in
  /// PairSet::all_pairs() order) — used to score replicated deliveries.
  bool collect_pair_errors = false;
  /// Invoked for every value arriving at the collector — the hook feeding
  /// the data collector / result processor (collector/time_series.h,
  /// collector/alerts.h). `epoch` is the arrival epoch.
  std::function<void(NodeAttrPair, std::uint64_t epoch, double value)>
      on_delivery;
  /// Invoked once per epoch after all deliveries (fleet-scope alerting).
  std::function<void(std::uint64_t epoch)> on_epoch_end;
  /// Invoked after on_epoch_end; returning a topology redeploys it starting
  /// with the next epoch — the hook that closes the detect → repair →
  /// replan loop (core/monitoring_system.h) against a live simulation.
  /// The collector view and error accounting persist across the swap;
  /// in-flight relay buffers are dropped (links are torn down), and
  /// planned-pair / expected-delivery accounting switches to the new
  /// topology. Return nullptr to keep the current deployment.
  std::function<const Topology*(std::uint64_t epoch)> on_reconfigure;
  /// Registry the run publishes `sim.*` metrics to (messages sent, values
  /// delivered/dropped/re-buffered, per-epoch delivery histogram). Null =
  /// the process-global registry. Publishing happens only while
  /// obs::enabled() — the SimReport fields are the always-on source.
  obs::Registry* metrics = nullptr;
};

struct SimReport {
  std::uint64_t epochs = 0;
  std::size_t total_pairs = 0;
  /// Pairs covered by the topology (the planner's "collected" pairs).
  /// Under on_reconfigure this reflects the last deployed topology.
  std::size_t planned_pairs = 0;

  /// Mean over sampled epochs and all requested pairs of
  /// |collector_view - truth| / max(|truth|, floor) — the Fig. 8 metric.
  double avg_percent_error = 0.0;
  double p95_percent_error = 0.0;

  /// Delivered value-updates / (planned pairs × sampled epochs).
  double delivered_ratio = 0.0;

  std::size_t messages_sent = 0;
  std::size_t values_sent = 0;
  std::size_t values_dropped = 0;
  /// Relayed values deferred to a later message because the link's
  /// capacity ran out this epoch (the store half of store-and-forward
  /// backpressure; each deferral counts once per epoch it waits).
  std::size_t values_rebuffered = 0;

  /// Per-epoch capacity utilization (used / b_i), averaged over epochs.
  double avg_node_utilization = 0.0;
  double max_node_utilization = 0.0;
  double collector_utilization = 0.0;

  /// Mean per-pair error over sampled epochs, aligned with
  /// PairSet::all_pairs(); empty unless SimConfig::collect_pair_errors.
  std::vector<double> pair_mean_error;
};

SimReport simulate(const SystemModel& system, const Topology& topology,
                   const PairSet& pairs, ValueSource& source, const SimConfig& config);

}  // namespace remo
