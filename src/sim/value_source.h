// Ground-truth attribute value generation for the simulator. Every
// node-attribute pair is a continuously changing variable that outputs a
// new value each unit of time (Sec. 2.3); the collector's view lags by
// delivery latency and loses updates to drops, which is what the Fig. 8
// percentage-error experiments measure.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "task/pair_set.h"

namespace remo {

class ValueSource {
 public:
  virtual ~ValueSource() = default;
  /// Advances all pairs to `epoch` (called once per epoch, increasing).
  virtual void advance(std::uint64_t epoch) = 0;
  /// Current ground-truth value of (node, attr).
  virtual double value(NodeId node, AttrId attr) const = 0;
};

/// Geometric-ish random walk, clamped positive: v += sigma * N(0,1),
/// clamped to [floor, +inf). Smooth drift — the "performance counter"
/// regime.
class RandomWalkSource : public ValueSource {
 public:
  RandomWalkSource(const PairSet& pairs, std::uint64_t seed, double start = 100.0,
                   double sigma = 2.0, double floor = 1.0);

  void advance(std::uint64_t epoch) override;
  double value(NodeId node, AttrId attr) const override;

 private:
  std::unordered_map<NodeAttrPair, double> values_;
  Rng rng_;
  double sigma_;
  double floor_;
};

/// Random walk plus occasional multiplicative bursts and decay back toward
/// a baseline — the "highly bursty workloads" of stream processing systems
/// (Sec. 1). Burstiness makes staleness expensive, which is exactly what
/// separates topologies in the percentage-error metric.
class BurstySource : public ValueSource {
 public:
  BurstySource(const PairSet& pairs, std::uint64_t seed, double baseline = 100.0,
               double sigma = 1.0, double burst_probability = 0.02,
               double burst_factor = 3.0, double decay = 0.9);

  void advance(std::uint64_t epoch) override;
  double value(NodeId node, AttrId attr) const override;

 private:
  struct State {
    double value = 0.0;
    double burst = 0.0;  // additive burst component, decays geometrically
  };
  std::unordered_map<NodeAttrPair, State> states_;
  Rng rng_;
  double baseline_;
  double sigma_;
  double burst_probability_;
  double burst_factor_;
  double decay_;
};

}  // namespace remo
