// Exporters for the observability subsystem (DESIGN.md §9): one registry
// snapshot or span list rendered three ways — JSON (machine-readable, the
// BENCH_*.json payload), CSV (spreadsheet-friendly), and the repo's
// aligned-text Table (human eyes, same look as the figure benches).
//
// All output is deterministic: snapshots are name-sorted and numbers are
// formatted with a fixed shortest-round-trip style, so the JSON form is
// golden-testable and diffs across runs are meaningful.
#pragma once

#include <string>
#include <vector>

#include "common/table.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace remo::obs {

/// JSON object with "counters" / "gauges" / "histograms" members. `indent`
/// is the number of spaces prefixed to every line — lets the bench writer
/// embed the object inside a larger document without re-parsing.
std::string to_json(const RegistrySnapshot& snapshot, int indent = 0);

/// `kind,name,field,value` rows: one line per counter/gauge value, one per
/// histogram count/sum/bucket.
std::string to_csv(const RegistrySnapshot& snapshot);

/// Human view reusing common/table: metric | kind | value.
Table to_table(const RegistrySnapshot& snapshot);

/// JSON array of span objects in completion order.
std::string to_json(const std::vector<SpanRecord>& spans, int indent = 0);

}  // namespace remo::obs
