// Trace-span recorder — the temporal half of the observability subsystem
// (DESIGN.md §9). Scoped RAII spans capture what the printf tables can't:
// *when* each plan iteration, full-forest build, repair round, or sim
// epoch ran, how long it took, and inside which enclosing operation.
//
// Completed spans land in a bounded ring buffer (oldest overwritten, drops
// counted), so a long-running deployment can keep the recorder on forever
// and snapshot the recent past on demand. Parent links are derived from a
// thread-local span stack: a span opened while another is live on the same
// thread (and the same recorder) records it as its parent, which is enough
// to reconstruct plan → build → commit nesting without any global clock
// coordination. Cross-thread work (the evaluation engine's pool) starts a
// fresh root on its own thread by design.
//
// When obs::enabled() is off, constructing a Span is two relaxed loads and
// no clock read — the hot paths stay un-instrumented for free.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace remo::obs {

/// One completed span. `start_s` is seconds since the recorder's epoch
/// (its construction or last clear()); records() returns completion order,
/// so children always precede their parent.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root (no enclosing span)
  std::string name;
  double start_s = 0.0;
  double duration_s = 0.0;
};

class Span;

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 4096);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Completed spans, oldest first (completion order).
  std::vector<SpanRecord> records() const REMO_EXCLUDES(mutex_);
  /// Spans overwritten because the ring was full.
  std::size_t dropped() const REMO_EXCLUDES(mutex_);
  std::size_t capacity() const noexcept { return capacity_; }
  /// Drops all records and restarts the time epoch; live spans still end
  /// into the cleared ring (their start_s is taken against the *new*
  /// epoch, under the same lock that moved it — see commit()).
  void clear() REMO_EXCLUDES(mutex_);

  /// Mirror every completed span onto the log stream (REMO_DEBUG), so
  /// trace events and log lines interleave on whatever sink
  /// common/logging routes to.
  void set_log_spans(bool on) noexcept {
    log_spans_.store(on, std::memory_order_relaxed);
  }

  /// The process-global default instance.
  static TraceRecorder& global();

 private:
  friend class Span;
  std::uint64_t next_id() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  double since_epoch(std::chrono::steady_clock::time_point t) const
      REMO_REQUIRES(mutex_);
  /// Stamps record.start_s from `start` and the current epoch — both read
  /// under mutex_, so a concurrent clear() (which moves the epoch) cannot
  /// race the conversion. A span ending during clear() lands consistently
  /// on one side of the new epoch (possibly with a negative start_s).
  void commit(SpanRecord record, std::chrono::steady_clock::time_point start)
      REMO_EXCLUDES(mutex_);

  const std::size_t capacity_;
  mutable Mutex mutex_;
  std::vector<SpanRecord> ring_ REMO_GUARDED_BY(mutex_);
  /// Insertion point once the ring wrapped.
  std::size_t next_slot_ REMO_GUARDED_BY(mutex_) = 0;
  bool wrapped_ REMO_GUARDED_BY(mutex_) = false;
  std::size_t dropped_ REMO_GUARDED_BY(mutex_) = 0;
  std::chrono::steady_clock::time_point epoch_ REMO_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<bool> log_spans_{false};
};

/// RAII scope: records one span from construction to destruction. Inert
/// (no clock read, nothing recorded) when obs::enabled() is off at
/// construction or `recorder` is null.
class Span {
 public:
  explicit Span(const char* name,
                TraceRecorder* recorder = &TraceRecorder::global());
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const noexcept { return recorder_ != nullptr; }
  std::uint64_t id() const noexcept { return id_; }

 private:
  TraceRecorder* recorder_ = nullptr;  ///< null = inert
  const char* name_ = "";
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace remo::obs
