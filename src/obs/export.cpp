#include "obs/export.h"

#include <cstdio>

namespace remo::obs {

namespace {

/// Shortest form that round-trips our values: %.10g trims trailing zeros
/// ("0.1", "5.05", "1e-05") and is stable across platforms for the
/// magnitudes we emit.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string pad(int indent) { return std::string(static_cast<std::size_t>(indent), ' '); }

void append_histogram_json(std::string& out, const Histogram::Snapshot& h,
                           const std::string& p) {
  out += "{\n";
  out += p + "  \"count\": " + std::to_string(h.count) + ",\n";
  out += p + "  \"sum\": " + fmt(h.sum) + ",\n";
  out += p + "  \"buckets\": [\n";
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    const std::string le =
        i < h.bounds.size() ? fmt(h.bounds[i]) : std::string("\"inf\"");
    out += p + "    {\"le\": " + le +
           ", \"count\": " + std::to_string(h.counts[i]) + "}";
    out += i + 1 < h.counts.size() ? ",\n" : "\n";
  }
  out += p + "  ]\n";
  out += p + "}";
}

}  // namespace

std::string to_json(const RegistrySnapshot& snapshot, int indent) {
  const std::string p = pad(indent);
  std::string out;
  out += p + "{\n";

  out += p + "  \"counters\": {";
  std::size_t i = 0;
  for (const auto& [name, value] : snapshot.counters) {
    out += i++ == 0 ? "\n" : ",\n";
    out += p + "    \"" + name + "\": " + std::to_string(value);
  }
  out += snapshot.counters.empty() ? "},\n" : "\n" + p + "  },\n";

  out += p + "  \"gauges\": {";
  i = 0;
  for (const auto& [name, value] : snapshot.gauges) {
    out += i++ == 0 ? "\n" : ",\n";
    out += p + "    \"" + name + "\": " + fmt(value);
  }
  out += snapshot.gauges.empty() ? "},\n" : "\n" + p + "  },\n";

  out += p + "  \"histograms\": {";
  i = 0;
  for (const auto& [name, h] : snapshot.histograms) {
    out += i++ == 0 ? "\n" : ",\n";
    out += p + "    \"" + name + "\": ";
    append_histogram_json(out, h, p + "    ");
  }
  out += snapshot.histograms.empty() ? "}\n" : "\n" + p + "  }\n";

  out += p + "}";
  return out;
}

std::string to_csv(const RegistrySnapshot& snapshot) {
  std::string out = "kind,name,field,value\n";
  for (const auto& [name, value] : snapshot.counters)
    out += "counter," + name + ",value," + std::to_string(value) + "\n";
  for (const auto& [name, value] : snapshot.gauges)
    out += "gauge," + name + ",value," + fmt(value) + "\n";
  for (const auto& [name, h] : snapshot.histograms) {
    out += "histogram," + name + ",count," + std::to_string(h.count) + "\n";
    out += "histogram," + name + ",sum," + fmt(h.sum) + "\n";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      const std::string le = i < h.bounds.size() ? fmt(h.bounds[i]) : "inf";
      out += "histogram," + name + ",le_" + le + "," +
             std::to_string(h.counts[i]) + "\n";
    }
  }
  return out;
}

Table to_table(const RegistrySnapshot& snapshot) {
  Table t({"metric", "kind", "value"});
  for (const auto& [name, value] : snapshot.counters)
    t.row().add(name).add("counter").add(static_cast<long long>(value));
  for (const auto& [name, value] : snapshot.gauges)
    t.row().add(name).add("gauge").add(value, 6);
  for (const auto& [name, h] : snapshot.histograms)
    t.row().add(name).add("histogram").add(
        "count=" + std::to_string(h.count) + " sum=" + fmt(h.sum) +
        " mean=" + fmt(h.mean()));
  return t;
}

std::string to_json(const std::vector<SpanRecord>& spans, int indent) {
  const std::string p = pad(indent);
  if (spans.empty()) return p + "[]";
  std::string out = p + "[\n";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    out += p + "  {\"id\": " + std::to_string(s.id) +
           ", \"parent\": " + std::to_string(s.parent) + ", \"name\": \"" +
           s.name + "\", \"start_s\": " + fmt(s.start_s) +
           ", \"duration_s\": " + fmt(s.duration_s) + "}";
    out += i + 1 < spans.size() ? ",\n" : "\n";
  }
  out += p + "]";
  return out;
}

}  // namespace remo::obs
