// Lock-cheap metrics registry — the numeric half of the observability
// subsystem (DESIGN.md §9). A monitoring system must be able to monitor
// itself: the planner's evaluation engine, the delivery simulator, and the
// detect → repair → replan loop all publish their counters here so that
// one snapshot (obs/export.h) captures a whole run machine-readably.
//
// Design constraints, in order:
//   - increments must be safe from the evaluation engine's pool threads
//     and cost one relaxed atomic op (no registry lock on the hot path:
//     handles returned by the registry have stable addresses for its
//     lifetime, so callers resolve a metric once and increment forever);
//   - snapshots are deterministic (name-sorted) so exporters can be
//     golden-tested and bench series diffed across runs;
//   - a process-global default Registry serves the common case, while
//     every instrumented component accepts an injected Registry so tests
//     stay hermetic.
//
// The global enabled() switch (env REMO_OBS_DISABLED) gates *auxiliary*
// instrumentation: trace spans and mirror metrics that merely duplicate a
// functional report (SimReport, RepairReport). Metrics that back a
// functional API (the engine counters behind Planner::last_stats) stay on
// regardless — they replaced equivalent bespoke atomics one-for-one, so
// disabling them would change behavior without saving anything.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace remo::obs {

/// Process-wide switch for auxiliary instrumentation (spans, mirror
/// metrics). Defaults to on; the REMO_OBS_DISABLED environment variable
/// (set to anything but "0" or empty) starts the process with it off.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Monotonic event count. add() is one relaxed fetch_add — safe from any
/// thread, never a lock.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar; add() accumulates via CAS (used for summed
/// wall-clock seconds).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds,
/// with an implicit +inf overflow bucket appended. Bucket layout is fixed
/// at registration so observe() is one relaxed add into a preallocated
/// slot — no allocation, no lock, thread-safe.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  struct Snapshot {
    std::vector<double> bounds;        ///< upper bounds, ascending (no +inf)
    std::vector<std::uint64_t> counts; ///< bounds.size() + 1 (last = overflow)
    std::uint64_t count = 0;
    double sum = 0.0;
    double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };
  Snapshot snapshot() const;
  void reset() noexcept;

  /// Default bounds for wall-clock seconds: decades from 10 µs to 100 s.
  static std::vector<double> time_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One deterministic (name-sorted) view of a whole registry.
struct RegistrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Named metric store. Registration (counter()/gauge()/histogram()) takes
/// a mutex and is idempotent — the same name always returns the same
/// object, whose address is stable for the registry's lifetime. Keep the
/// returned reference and increment lock-free from there.
///
/// Lock discipline (DESIGN.md §16): `mutex_` guards the three name→metric
/// maps — registration, snapshot, reset, size. The metric objects
/// themselves are lock-free (atomics) and are incremented *outside* the
/// lock by design; only the map structure is a capability-protected
/// region, which is what keeps the hot path one relaxed atomic op.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name) REMO_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name) REMO_EXCLUDES(mutex_);
  /// `bounds` are used only on first registration of `name`; a later call
  /// with different bounds returns the existing histogram unchanged.
  Histogram& histogram(const std::string& name, std::vector<double> bounds)
      REMO_EXCLUDES(mutex_);

  RegistrySnapshot snapshot() const REMO_EXCLUDES(mutex_);
  /// Zeroes every metric; registrations (and handed-out addresses) survive.
  void reset() REMO_EXCLUDES(mutex_);
  std::size_t size() const REMO_EXCLUDES(mutex_);

  /// The process-global default instance.
  static Registry& global();

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      REMO_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      REMO_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      REMO_GUARDED_BY(mutex_);
};

/// Injectable-registry convention used across the codebase: components
/// take a `Registry*` option, null meaning the process-global default.
inline Registry& registry_or_global(Registry* r) {
  return r != nullptr ? *r : Registry::global();
}

/// Inserts `label` after a metric name's first dotted component:
/// ("planner.cache_hits", "shard0") -> "planner.shard0.cache_hits".
/// Unqualified names gain the label as a prefix ("foo" -> "shard0.foo").
std::string labeled_name(const std::string& name, const std::string& label);

/// Re-publishes a registry snapshot into `out` under labeled names — the
/// federation tier's per-shard metric labels (DESIGN.md §12): each shard
/// core publishes `planner.*` / `recovery.*` into a private registry, and
/// the root republishes them as `planner.shard<k>.*` so one snapshot
/// carries every shard side by side. Counters and gauges are copied with
/// set semantics (idempotent per publish); histograms are skipped —
/// bucket counts are not settable through the hot-path-safe API.
void publish_labeled(const RegistrySnapshot& snap, const std::string& label,
                     Registry& out);

}  // namespace remo::obs
