#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>

namespace remo::obs {

namespace {

bool initial_enabled() {
  const char* env = std::getenv("REMO_OBS_DISABLED");
  if (env == nullptr || env[0] == '\0') return true;
  return env[0] == '0' && env[1] == '\0';  // "0" keeps obs on
}

std::atomic<bool> g_enabled{initial_enabled()};

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

// ---- Histogram ------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(double v) noexcept {
  // First bucket whose upper bound contains v; past-the-end = overflow.
  const std::size_t i =
      static_cast<std::size_t>(std::lower_bound(bounds_.begin(), bounds_.end(), v) -
                               bounds_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    counts_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::time_bounds() {
  return {1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0};
}

// ---- Registry -------------------------------------------------------------

Counter& Registry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

RegistrySnapshot Registry::snapshot() const {
  MutexLock lock(mutex_);
  RegistrySnapshot s;
  for (const auto& [name, c] : counters_) s.counters.emplace(name, c->value());
  for (const auto& [name, g] : gauges_) s.gauges.emplace(name, g->value());
  for (const auto& [name, h] : histograms_)
    s.histograms.emplace(name, h->snapshot());
  return s;
}

void Registry::reset() {
  MutexLock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::size_t Registry::size() const {
  MutexLock lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked: outlives all users
  return *instance;
}

std::string labeled_name(const std::string& name, const std::string& label) {
  const std::size_t dot = name.find('.');
  if (dot == std::string::npos) return label + "." + name;
  return name.substr(0, dot + 1) + label + name.substr(dot);
}

void publish_labeled(const RegistrySnapshot& snap, const std::string& label,
                     Registry& out) {
  for (const auto& [name, value] : snap.counters) {
    Counter& c = out.counter(labeled_name(name, label));
    c.reset();
    c.add(value);
  }
  for (const auto& [name, value] : snap.gauges)
    out.gauge(labeled_name(name, label)).set(value);
}

}  // namespace remo::obs
