#include "obs/trace.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"

namespace remo::obs {

namespace {

/// Per-thread stack of live spans. Entries carry their recorder so a
/// hermetic test recorder nested inside globally-recorded code (or vice
/// versa) links parents only within its own recorder.
struct LiveSpan {
  TraceRecorder* recorder;
  std::uint64_t id;
};

thread_local std::vector<LiveSpan> t_live_spans;

std::uint64_t current_parent(TraceRecorder* recorder) {
  for (auto it = t_live_spans.rbegin(); it != t_live_spans.rend(); ++it)
    if (it->recorder == recorder) return it->id;
  return 0;
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      epoch_(std::chrono::steady_clock::now()) {
  ring_.reserve(capacity_);
}

double TraceRecorder::since_epoch(std::chrono::steady_clock::time_point t) const {
  return std::chrono::duration<double>(t - epoch_).count();
}

void TraceRecorder::commit(SpanRecord record,
                           std::chrono::steady_clock::time_point start) {
  {
    MutexLock lock(mutex_);
    // start_s must be derived under the lock: clear() moves the epoch, and
    // an unguarded read here raced it (caught by annotation, PR 10).
    record.start_s = since_epoch(start);
    if (log_spans_.load(std::memory_order_relaxed)) {
      lock.unlock();
      REMO_DEBUG() << "span " << record.name << " id=" << record.id
                   << " parent=" << record.parent << " start=" << record.start_s
                   << "s dur=" << record.duration_s << "s";
      lock.lock();
    }
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(record));
      return;
    }
    ring_[next_slot_] = std::move(record);
    next_slot_ = (next_slot_ + 1) % capacity_;
    wrapped_ = true;
    ++dropped_;
  }
}

std::vector<SpanRecord> TraceRecorder::records() const {
  MutexLock lock(mutex_);
  if (!wrapped_) return ring_;
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(next_slot_ + i) % ring_.size()]);
  return out;
}

std::size_t TraceRecorder::dropped() const {
  MutexLock lock(mutex_);
  return dropped_;
}

void TraceRecorder::clear() {
  MutexLock lock(mutex_);
  ring_.clear();
  next_slot_ = 0;
  wrapped_ = false;
  dropped_ = 0;
  epoch_ = std::chrono::steady_clock::now();
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* instance = new TraceRecorder();  // leaked: outlives all
  return *instance;
}

Span::Span(const char* name, TraceRecorder* recorder) {
  if (recorder == nullptr || !enabled()) return;
  recorder_ = recorder;
  name_ = name;
  id_ = recorder->next_id();
  parent_ = current_parent(recorder);
  t_live_spans.push_back({recorder, id_});
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (recorder_ == nullptr) return;
  const auto end = std::chrono::steady_clock::now();
  // Pop our own entry; lexical nesting makes it the matching top in
  // practice, but search defensively so an out-of-order destruction can't
  // corrupt a sibling's parent link.
  for (auto it = t_live_spans.rbegin(); it != t_live_spans.rend(); ++it) {
    if (it->recorder == recorder_ && it->id == id_) {
      t_live_spans.erase(std::next(it).base());
      break;
    }
  }
  SpanRecord record;
  record.id = id_;
  record.parent = parent_;
  record.name = name_;
  record.duration_s = std::chrono::duration<double>(end - start_).count();
  // start_s is stamped by commit() under the recorder lock (epoch read).
  recorder_->commit(std::move(record), start_);
}

}  // namespace remo::obs
