#include "core/scenario_parser.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <map>
#include <sstream>

#include "common/sorted_vector.h"

namespace remo {
namespace {

std::optional<double> to_double(const std::string& s) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) return std::nullopt;
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<std::uint64_t> to_uint(const std::string& s) {
  std::uint64_t v = 0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return v;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

/// "key=value" tokens after the directive word.
std::optional<std::map<std::string, std::string>> parse_kv(
    const std::vector<std::string>& tokens, std::size_t first) {
  std::map<std::string, std::string> kv;
  for (std::size_t i = first; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos || eq == 0) return std::nullopt;
    kv[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
  }
  return kv;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

}  // namespace

namespace detail {

std::optional<std::vector<NodeId>> parse_node_range(const std::string& spec) {
  std::vector<NodeId> out;
  if (spec.empty()) return std::nullopt;
  for (const auto& part : split(spec, ',')) {
    const auto dash = part.find('-');
    if (dash == std::string::npos) {
      const auto v = to_uint(part);
      if (!v) return std::nullopt;
      out.push_back(static_cast<NodeId>(*v));
    } else {
      const auto lo = to_uint(part.substr(0, dash));
      const auto hi = to_uint(part.substr(dash + 1));
      if (!lo || !hi || *lo > *hi) return std::nullopt;
      for (std::uint64_t v = *lo; v <= *hi; ++v)
        out.push_back(static_cast<NodeId>(v));
    }
  }
  sort_unique(out);
  return out;
}

std::optional<std::vector<AttrId>> parse_attr_list(const std::string& spec) {
  std::vector<AttrId> out;
  if (spec.empty()) return std::nullopt;
  for (const auto& part : split(spec, ',')) {
    const auto dash = part.find('-');
    if (dash == std::string::npos) {
      const auto v = to_uint(part);
      if (!v) return std::nullopt;
      out.push_back(static_cast<AttrId>(*v));
    } else {
      const auto lo = to_uint(part.substr(0, dash));
      const auto hi = to_uint(part.substr(dash + 1));
      if (!lo || !hi || *lo > *hi) return std::nullopt;
      for (std::uint64_t v = *lo; v <= *hi; ++v)
        out.push_back(static_cast<AttrId>(v));
    }
  }
  sort_unique(out);
  return out;
}

std::optional<AggType> parse_agg(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "holistic" || lower == "none") return AggType::kHolistic;
  if (lower == "sum") return AggType::kSum;
  if (lower == "max") return AggType::kMax;
  if (lower == "min") return AggType::kMin;
  if (lower == "count") return AggType::kCount;
  if (lower == "avg") return AggType::kAvg;
  if (lower == "topk") return AggType::kTopK;
  if (lower == "distinct") return AggType::kDistinct;
  return std::nullopt;
}

}  // namespace detail

ParseResult parse_scenario(const std::string& text) {
  ParseResult result;
  auto fail = [&result](int line, const std::string& message) {
    result.scenario.reset();
    result.error = "line " + std::to_string(line) + ": " + message;
    return result;
  };

  std::optional<Scenario> scenario;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const auto tokens = tokenize(raw);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];

    if (directive == "system") {
      if (scenario) return fail(line_no, "duplicate system directive");
      const auto kv = parse_kv(tokens, 1);
      if (!kv) return fail(line_no, "malformed key=value token");
      std::optional<std::uint64_t> nodes;
      if (kv->count("nodes")) nodes = to_uint(kv->at("nodes"));
      std::optional<double> cap;
      if (kv->count("capacity")) cap = to_double(kv->at("capacity"));
      if (!nodes || *nodes == 0 || !cap)
        return fail(line_no, "system needs nodes=<n> capacity=<b>");
      CostModel cost;
      if (kv->count("C")) {
        const auto c = to_double(kv->at("C"));
        if (!c) return fail(line_no, "bad C");
        cost.per_message = *c;
      }
      if (kv->count("a")) {
        const auto a = to_double(kv->at("a"));
        if (!a) return fail(line_no, "bad a");
        cost.per_value = *a;
      }
      scenario.emplace(Scenario{SystemModel(*nodes, *cap, cost), {}});
      if (kv->count("collector")) {
        const auto b0 = to_double(kv->at("collector"));
        if (!b0) return fail(line_no, "bad collector capacity");
        scenario->system.set_collector_capacity(*b0);
      }
      continue;
    }

    if (!scenario) return fail(line_no, "system directive must come first");

    if (directive == "observe") {
      if (tokens.size() != 3) return fail(line_no, "observe <nodes> <attrs>");
      const auto nodes = detail::parse_node_range(tokens[1]);
      const auto attrs = detail::parse_attr_list(tokens[2]);
      if (!nodes || !attrs) return fail(line_no, "malformed observe ranges");
      for (NodeId n : *nodes) {
        if (n == kCollectorId || n > scenario->system.num_nodes())
          return fail(line_no, "observe node out of range");
        auto merged = set_union(scenario->system.observable(n), *attrs);
        scenario->system.set_observable(n, std::move(merged));
      }
      continue;
    }

    if (directive == "capacity") {
      if (tokens.size() != 3) return fail(line_no, "capacity <nodes> <value>");
      const auto nodes = detail::parse_node_range(tokens[1]);
      const auto value = to_double(tokens[2]);
      if (!nodes || !value) return fail(line_no, "malformed capacity directive");
      for (NodeId n : *nodes) {
        if (n > scenario->system.num_nodes())
          return fail(line_no, "capacity node out of range");
        scenario->system.set_capacity(n, *value);
      }
      continue;
    }

    if (directive == "task") {
      const auto kv = parse_kv(tokens, 1);
      if (!kv) return fail(line_no, "malformed key=value token");
      if (!kv->count("attrs") || !kv->count("nodes"))
        return fail(line_no, "task needs attrs=<list> nodes=<range>");
      const auto attrs = detail::parse_attr_list(kv->at("attrs"));
      const auto nodes = detail::parse_node_range(kv->at("nodes"));
      if (!attrs || !nodes) return fail(line_no, "malformed task ranges");
      MonitoringTask t;
      t.attrs = *attrs;
      t.nodes = *nodes;
      if (kv->count("freq")) {
        const auto f = to_double(kv->at("freq"));
        if (!f || *f <= 0.0 || *f > 1.0)
          return fail(line_no, "freq must be in (0, 1]");
        t.frequency = *f;
      }
      if (kv->count("agg")) {
        const auto agg = detail::parse_agg(kv->at("agg"));
        if (!agg) return fail(line_no, "unknown aggregation type");
        t.aggregation = *agg;
      }
      if (kv->count("topk")) {
        const auto k = to_uint(kv->at("topk"));
        if (!k || *k == 0) return fail(line_no, "bad topk");
        t.top_k = static_cast<std::uint32_t>(*k);
      }
      if (kv->count("reliability")) {
        const std::string& mode = kv->at("reliability");
        if (mode == "ssdp")
          t.reliability = ReliabilityMode::kSSDP;
        else if (mode == "dsdp")
          t.reliability = ReliabilityMode::kDSDP;
        else
          return fail(line_no, "reliability must be ssdp or dsdp");
      }
      if (kv->count("replicas")) {
        const auto r = to_uint(kv->at("replicas"));
        if (!r || *r < 2) return fail(line_no, "replicas must be >= 2");
        t.replicas = static_cast<std::uint32_t>(*r);
      }
      scenario->tasks.push_back(std::move(t));
      continue;
    }

    return fail(line_no, "unknown directive '" + directive + "'");
  }

  if (!scenario) return fail(0, "missing system directive");
  result.scenario = std::move(scenario);
  return result;
}

}  // namespace remo
