// The top-level facade matching the paper's system model (Fig. 1): the
// task manager ingests monitoring tasks, the management core (monitoring
// planner) maintains the overlay, and users read the resulting topology
// and status. This is the one-stop API a downstream application embeds;
// the lower layers (Planner, AdaptivePlanner, TaskManager, simulate())
// remain available for fine-grained control.
//
// Task mutations are buffered; the topology is (re)planned lazily on the
// next read, through the adaptive planner, so a burst of task changes
// costs one adaptation. Time is whatever unit the caller advances
// (epochs); it feeds the cost-benefit throttle.
#pragma once

#include <optional>
#include <string>

#include "adapt/adaptive_planner.h"
#include "extensions/attr_spec_derivation.h"
#include "extensions/reliability.h"
#include "task/task_manager.h"

namespace remo {

struct MonitoringSystemOptions {
  PlannerOptions planner;
  /// Adaptation scheme used when tasks change after the initial plan.
  AdaptScheme adaptation = AdaptScheme::kAdaptive;
  /// Derive funnels / frequency weights from the task set automatically
  /// (Sec. 6.1 / 6.3). Disable to plan extension-oblivious.
  bool aggregation_aware = true;
  bool frequency_aware = true;
  /// Rewrite SSDP/DSDP tasks into replicas with conflict constraints
  /// (Sec. 6.2). Alias attribute ids are allocated from this value up;
  /// it must sit above every real attribute id.
  AttrId first_alias_id = 1u << 20;
};

class MonitoringSystem {
 public:
  MonitoringSystem(SystemModel system, MonitoringSystemOptions options = {});

  // The internal planner holds pointers into the owned SystemModel;
  // moving/copying the facade would dangle them.
  MonitoringSystem(const MonitoringSystem&) = delete;
  MonitoringSystem& operator=(const MonitoringSystem&) = delete;

  // ---- task management (Fig. 1: Task manager) -------------------------
  /// Adds a task; returns its id. SSDP/DSDP tasks are rewritten into
  /// replica tasks transparently (their ids map to the original id).
  TaskId add_task(MonitoringTask task);
  bool remove_task(TaskId id);
  bool modify_task(MonitoringTask task);
  std::size_t num_tasks() const noexcept { return public_tasks_; }

  // ---- overlay (Fig. 1: Management core / Monitoring planner) ---------
  /// The current monitoring topology; replans if tasks changed. `now` is
  /// the caller's clock (same unit across calls), driving the throttle.
  const Topology& topology(double now = 0.0);
  /// Force a full from-scratch replan regardless of the adaptation scheme.
  void replan(double now = 0.0);

  struct Status {
    std::size_t tasks = 0;
    std::size_t pairs = 0;
    std::size_t collected = 0;
    double coverage = 0.0;
    std::size_t trees = 0;
    Capacity message_volume = 0.0;
    std::size_t adaptations = 0;  // apply_update calls that changed links
    std::size_t adaptation_messages = 0;
  };
  Status status(double now = 0.0);

  // ---- introspection ----------------------------------------------------
  std::string export_dot(double now = 0.0);
  std::string export_json(double now = 0.0);
  const SystemModel& system() const noexcept { return system_; }
  SystemModel& mutable_system() noexcept { return system_; }
  const TaskManager& tasks() const noexcept { return manager_; }

 private:
  struct RewriteState {
    PlannerOptions planner_options;
    std::string signature;
  };

  void ensure_planned(double now);
  RewriteState rebuild_internal_tasks();

  SystemModel system_;
  MonitoringSystemOptions options_;
  /// User-visible tasks (pre-rewriting).
  std::map<TaskId, MonitoringTask> user_tasks_;
  std::size_t public_tasks_ = 0;
  TaskId next_id_ = 1;
  /// Internal manager holding the rewritten tasks.
  TaskManager manager_;
  std::optional<AdaptivePlanner> planner_;
  std::string constraint_signature_;
  bool dirty_ = true;
  std::size_t adaptations_ = 0;
  std::size_t adaptation_messages_ = 0;
};

}  // namespace remo
