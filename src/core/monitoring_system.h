// The top-level facade matching the paper's system model (Fig. 1): the
// task manager ingests monitoring tasks, the management core (monitoring
// planner) maintains the overlay, and users read the resulting topology
// and status. This is the one-stop API a downstream application embeds;
// the lower layers (Planner, AdaptivePlanner, TaskManager, simulate())
// remain available for fine-grained control.
//
// Task mutations are buffered; the topology is (re)planned lazily on the
// next read, through the adaptive planner, so a burst of task changes
// costs one adaptation. Time is whatever unit the caller advances
// (epochs); it feeds the cost-benefit throttle.
//
// Churn fast path (DESIGN.md §13): mutations that cannot change the
// rewritten task shape (reliability = kNone) are applied to the live
// internal manager immediately and accumulated as an exact TaskDelta; the
// next read re-derives only the constraint signature and, when it is
// unchanged, replans through AdaptivePlanner::apply_delta — O(|delta|)
// bookkeeping instead of rebuilding the manager and diffing full pair
// sets, bit-identical to the historic path by construction. A signature
// change (or any SSDP/DSDP mutation) falls back to the full rebuild.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "adapt/adaptive_planner.h"
#include "adapt/repair.h"
#include "collector/liveness.h"
#include "extensions/attr_spec_derivation.h"
#include "extensions/reliability.h"
#include "task/task_manager.h"

namespace remo {

/// The closed robustness loop (detect → repair → replan, see DESIGN.md):
/// the facade infers node outages from collector delivery gaps, patches
/// the overlay around suspected nodes immediately, and hands the degraded
/// topology back to the adaptive planner once the outage stabilizes.
struct FailureRecoveryOptions {
  bool enabled = false;
  LivenessConfig liveness;
  /// Quiet epochs (no detect/recover events) before the degraded topology
  /// is re-optimized by a full replan.
  std::uint64_t stabilize_epochs = 8;
  /// Fraction of the collector's capacity withheld from the planner and
  /// reserved for repair: parked probe links and re-homed orphans attach
  /// into this slack. Without the reserve the optimizer packs the
  /// collector tight and a post-outage replan cannot re-park the
  /// suspects — their pairs would be dropped until the outage ends.
  double repair_headroom = 0.1;
  /// Observability hooks (drive bench_failure_recovery): every liveness
  /// edge, and every repair pass with the epoch it ran in.
  std::function<void(const LivenessEvent&)> on_detect;
  std::function<void(const RepairOutcome&, std::uint64_t epoch)> on_repair;
};

/// Lifetime counters of the failure-recovery loop, surfaced next to the
/// adaptation counters in MonitoringSystem::Status.
struct RepairReport {
  std::size_t outages_detected = 0;
  std::size_t recoveries_detected = 0;
  std::size_t repair_passes = 0;
  /// Links rewired by repair passes and post-outage replans combined —
  /// the control-message cost of self-healing.
  std::size_t repair_messages = 0;
  std::size_t orphans_reattached = 0;
  std::size_t suspects_parked = 0;
  std::size_t members_dropped = 0;
  /// Pairs lost during outages (no feasible re-attach point).
  std::size_t pairs_dropped = 0;
  std::size_t replans_after_outage = 0;
  /// Epoch sums behind the means below (one addend per down event).
  std::uint64_t detect_lag_sum = 0;
  std::uint64_t repair_lag_sum = 0;

  /// Mean epochs from a node's first missed delivery deadline to its
  /// detection, and to the repair pass that re-homed its orphans (repair
  /// runs in the detection epoch, so the two coincide today).
  double mean_detect_epochs() const {
    return outages_detected == 0 ? 0.0
                                 : static_cast<double>(detect_lag_sum) /
                                       static_cast<double>(outages_detected);
  }
  double mean_repair_epochs() const {
    return outages_detected == 0 ? 0.0
                                 : static_cast<double>(repair_lag_sum) /
                                       static_cast<double>(outages_detected);
  }
};

/// This core's identity within a sharded federation (src/federation,
/// DESIGN.md §12). The defaults describe the historic standalone system:
/// one shard owning the whole universe. A federated core (count > 1)
/// scopes its task-manager invariants to its own node subset and labels
/// its metrics per shard.
struct ShardIdentity {
  std::uint32_t index = 0;  ///< which shard, in [0, count)
  std::uint32_t count = 1;  ///< total shards in the federation
  bool scoped() const noexcept { return count > 1; }
  std::string label() const { return "shard" + std::to_string(index); }
};

struct MonitoringSystemOptions {
  PlannerOptions planner;
  /// Adaptation scheme used when tasks change after the initial plan.
  AdaptScheme adaptation = AdaptScheme::kAdaptive;
  /// Derive funnels / frequency weights from the task set automatically
  /// (Sec. 6.1 / 6.3). Disable to plan extension-oblivious.
  bool aggregation_aware = true;
  bool frequency_aware = true;
  /// Rewrite SSDP/DSDP tasks into replicas with conflict constraints
  /// (Sec. 6.2). Alias attribute ids are allocated from this value up;
  /// it must sit above every real attribute id.
  AttrId first_alias_id = 1u << 20;
  /// Failure detection + self-healing repair (off by default: the loop
  /// needs the caller to feed deliveries and epoch boundaries).
  FailureRecoveryOptions recovery;
  /// Registry the facade publishes `recovery.*` metrics to (suspicion /
  /// recovery events, repair rounds, replan latency) while obs::enabled().
  /// Null = the process-global registry; RepairReport stays the always-on
  /// functional source. (`planner.metrics` injects the engine's registry
  /// independently.)
  obs::Registry* metrics = nullptr;
  /// Which shard of a federation this core is (defaults: the standalone
  /// singleton). Set by FederatedMonitoringSystem; a scoped core validates
  /// that every task node lies inside its own subset (REMO_VALIDATE).
  ShardIdentity shard;
};

class MonitoringSystem {
 public:
  MonitoringSystem(SystemModel system, MonitoringSystemOptions options = {});

  // The internal planner holds pointers into the owned SystemModel;
  // moving/copying the facade would dangle them.
  MonitoringSystem(const MonitoringSystem&) = delete;
  MonitoringSystem& operator=(const MonitoringSystem&) = delete;

  // ---- task management (Fig. 1: Task manager) -------------------------
  /// Adds a task; returns its id. SSDP/DSDP tasks are rewritten into
  /// replica tasks transparently (their ids map to the original id).
  TaskId add_task(MonitoringTask task);
  bool remove_task(TaskId id);
  bool modify_task(MonitoringTask task);
  std::size_t num_tasks() const noexcept { return public_tasks_; }

  // ---- overlay (Fig. 1: Management core / Monitoring planner) ---------
  /// The current monitoring topology; replans if tasks changed. `now` is
  /// the caller's clock (same unit across calls), driving the throttle.
  const Topology& topology(double now = 0.0);
  /// Force a full from-scratch replan regardless of the adaptation scheme.
  void replan(double now = 0.0);

  /// The identities of the pairs the current topology collects, sorted by
  /// (node, attr) — see collected_pairs_of() in planner/topology.h. This
  /// is the per-shard stream the federation root merges; attribute ids
  /// are raw (SSDP/DSDP replicas keep their alias ids).
  std::vector<NodeAttrPair> collected_pairs(double now = 0.0);

  struct Status {
    std::size_t tasks = 0;
    std::size_t pairs = 0;
    std::size_t collected = 0;
    double coverage = 0.0;
    std::size_t trees = 0;
    Capacity message_volume = 0.0;
    std::size_t adaptations = 0;  // apply_update calls that changed links
    std::size_t adaptation_messages = 0;
    /// Replans served by the incremental delta path (subset of the lazy
    /// replans; the full-rebuild fallback does not count here).
    std::size_t delta_applies = 0;
    /// Failure-recovery loop counters (all zero unless recovery.enabled).
    RepairReport repair;
  };
  Status status(double now = 0.0);

  // ---- failure recovery (detect → repair → replan) ---------------------
  /// Feed one collector arrival into the liveness tracker (call from the
  /// delivery path, e.g. SimConfig::on_delivery). `epoch` is the arrival
  /// epoch on the same clock end_epoch() is driven with.
  void on_delivery(NodeAttrPair pair, std::uint64_t epoch);
  /// Run one detect → repair → replan step at an epoch boundary. Returns
  /// true when the topology changed (redeploy it, e.g. via
  /// SimConfig::on_reconfigure). The epoch doubles as the planner clock.
  bool end_epoch(std::uint64_t epoch);
  const RepairReport& repair_report() const noexcept { return repair_report_; }
  const LivenessTracker& liveness() const noexcept { return liveness_; }

  // ---- snapshot/restore + memoization (service/snapshot.h, DESIGN.md §14)
  /// Monotone state-change counter: bumped whenever observable plan state
  /// may have changed (lazy replans, recovery actions, restores). Readers
  /// memoize on it — status() below, and the service daemon's
  /// collected-pairs cache.
  std::uint64_t generation() const noexcept { return generation_; }

  /// The user-visible task set (pre-rewriting) and the id add_task would
  /// hand out next — the task state a snapshot serializes. Everything
  /// downstream (rewritten manager, dedup pair set) re-derives from these.
  const std::map<TaskId, MonitoringTask>& user_tasks() const noexcept {
    return user_tasks_;
  }
  TaskId next_task_id() const noexcept { return next_id_; }

  struct AdaptationCounters {
    std::size_t adaptations = 0;
    std::size_t adaptation_messages = 0;
    std::size_t delta_applies = 0;
  };
  AdaptationCounters adaptation_counters() const noexcept {
    return {adaptations_, adaptation_messages_, delta_applies_};
  }

  /// Plan-affecting state a snapshot must carry beyond the task set: the
  /// deployed forest plus the adaptive planner's throttle bookkeeping. The
  /// pair set is deliberately NOT part of it — restore re-derives it from
  /// the restored tasks (rebuild + dedup), which REMO_VALIDATE pins equal
  /// to the planner's view.
  struct PlannerState {
    Topology topology;
    std::map<std::vector<AttrId>, double> adjustment_stamps;
    double init_time = 0.0;
    double replan_cost_estimate = 0.0;
    std::string constraint_signature;
  };
  /// Captures the current plan state (replanning first if dirty, so the
  /// capture never races a pending lazy replan).
  PlannerState planner_state(double now);
  /// Rebuilds the facade from snapshot parts, in order: the task set,
  /// then the captured plan state (which re-derives pairs from those
  /// tasks), then the lifetime counters. After restore_planner the next
  /// mutation + read continues bit-identically to the captured system.
  void restore_tasks(std::map<TaskId, MonitoringTask> tasks, TaskId next_id);
  void restore_planner(PlannerState state);
  void restore_counters(const AdaptationCounters& counters, RepairReport repair);

  // ---- introspection ----------------------------------------------------
  std::string export_dot(double now = 0.0);
  std::string export_json(double now = 0.0);
  const SystemModel& system() const noexcept { return system_; }
  SystemModel& mutable_system() noexcept { return system_; }
  const TaskManager& tasks() const noexcept { return manager_; }

 private:
  struct RewriteState {
    PlannerOptions planner_options;
    std::string signature;
  };

  void ensure_planned(double now);
  RewriteState rebuild_internal_tasks();
  /// "conflicts:funnels:weights" over the current manager + spec table —
  /// when it changes the adaptive planner must be rebuilt (see
  /// rebuild_internal_tasks); shared by the full and delta plan paths.
  std::string constraint_signature_of(const AttrSpecTable& specs,
                                      std::size_t num_conflicts) const;
  /// True when a mutation may ride the incremental delta path: the
  /// planner is live, no full rebuild is already pending, and the task
  /// passes through the reliability rewriter as an identity.
  bool delta_eligible(const MonitoringTask& task) const {
    return planner_.has_value() && !dirty_ &&
           task.reliability == ReliabilityMode::kNone;
  }
  /// The system model the planner optimizes against: identical to the
  /// real one, except the collector keeps `repair_headroom` in reserve
  /// when the recovery loop is on (repair itself uses the real model).
  SystemModel& refresh_planning_system();
  /// Post-outage re-optimization: full replan, then re-park any nodes
  /// still suspected. Returns true if links changed.
  bool reoptimize_after_outage(std::uint64_t epoch);

  SystemModel system_;
  MonitoringSystemOptions options_;
  /// Planner's view of the system (stable address: the adaptive planner
  /// keeps a reference to it across replans).
  SystemModel planning_system_;
  /// User-visible tasks (pre-rewriting).
  std::map<TaskId, MonitoringTask> user_tasks_;
  std::size_t public_tasks_ = 0;
  TaskId next_id_ = 1;
  /// Internal manager holding the rewritten tasks.
  TaskManager manager_;
  /// user task id -> internal manager id, for tasks the rewriter passes
  /// through unchanged (reliability = kNone) — the ids the delta fast
  /// path mutates in place. Rebuilt by rebuild_internal_tasks.
  std::map<TaskId, TaskId> internal_id_of_;
  std::optional<AdaptivePlanner> planner_;
  std::string constraint_signature_;
  /// Conflict-constraint count behind constraint_signature_ (conflicts
  /// only come from SSDP/DSDP rewriting, which the delta path never
  /// touches, so the count is stable between full rebuilds).
  std::size_t constraint_conflicts_ = 0;
  bool dirty_ = true;
  /// Exact pending churn accumulated by the fast path since the last
  /// plan; meaningful only while delta_dirty_ (discarded on full rebuild,
  /// whose fresh manager supersedes it).
  TaskDelta pending_delta_;
  bool delta_dirty_ = false;
  std::size_t adaptations_ = 0;
  std::size_t adaptation_messages_ = 0;
  std::size_t delta_applies_ = 0;
  /// See generation(). Every mutation funnels through ensure_planned (or a
  /// recovery action / restore) before any reader observes it, so bumping
  /// at those choke points keeps the counter honest without instrumenting
  /// each mutator.
  std::uint64_t generation_ = 0;
  /// status() memo: valid while status_generation_ == generation_.
  std::optional<Status> status_cache_;
  std::uint64_t status_generation_ = 0;
  /// Failure-recovery loop state.
  LivenessTracker liveness_;
  RepairReport repair_report_;
  std::uint64_t last_event_epoch_ = 0;
  bool reoptimize_pending_ = false;
};

}  // namespace remo
