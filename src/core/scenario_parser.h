// Text-format scenario descriptions: lets operators describe a monitored
// system and its tasks in a small config file and drive the planner
// without writing C++ (see examples/remo_plan.cpp).
//
// Format (one directive per line; '#' starts a comment):
//
//   system nodes=<n> capacity=<b> collector=<b0> C=<c> a=<a>
//   capacity <node-range> <value>
//   observe <node-range> <attr-list>
//   task attrs=<attr-list> nodes=<node-range> [freq=<f>] [agg=<type>]
//        [topk=<k>] [reliability=<ssdp|dsdp>] [replicas=<r>]
//
// where <node-range> is a comma list of ids and inclusive ranges
// ("1-8,10,12-14") and <attr-list> a comma list of attribute ids
// ("0,1,5"). The `system` directive must come first; `observe` and
// `capacity` ranges must stay within the declared node count.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cost/system_model.h"
#include "task/task.h"

namespace remo {

struct Scenario {
  SystemModel system;
  std::vector<MonitoringTask> tasks;
};

struct ParseResult {
  std::optional<Scenario> scenario;
  /// Empty on success; otherwise "line N: message".
  std::string error;

  bool ok() const noexcept { return scenario.has_value(); }
};

/// Parses a scenario description. Never throws; malformed input is
/// reported through ParseResult::error.
ParseResult parse_scenario(const std::string& text);

// Exposed for unit tests.
namespace detail {
/// "1-3,7" -> {1,2,3,7}; empty optional on malformed input.
std::optional<std::vector<NodeId>> parse_node_range(const std::string& spec);
std::optional<std::vector<AttrId>> parse_attr_list(const std::string& spec);
std::optional<AggType> parse_agg(const std::string& name);
}  // namespace detail

}  // namespace remo
