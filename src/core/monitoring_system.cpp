#include "core/monitoring_system.h"

#include "planner/export.h"

namespace remo {

MonitoringSystem::MonitoringSystem(SystemModel system,
                                   MonitoringSystemOptions options)
    : system_(std::move(system)),
      options_(std::move(options)),
      manager_(&system_) {}

TaskId MonitoringSystem::add_task(MonitoringTask task) {
  task.id = next_id_++;
  user_tasks_.emplace(task.id, std::move(task));
  ++public_tasks_;
  dirty_ = true;
  return next_id_ - 1;
}

bool MonitoringSystem::remove_task(TaskId id) {
  if (user_tasks_.erase(id) == 0) return false;
  --public_tasks_;
  dirty_ = true;
  return true;
}

bool MonitoringSystem::modify_task(MonitoringTask task) {
  auto it = user_tasks_.find(task.id);
  if (it == user_tasks_.end()) return false;
  it->second = std::move(task);
  dirty_ = true;
  return true;
}

MonitoringSystem::RewriteState MonitoringSystem::rebuild_internal_tasks() {
  // Rewrite the user tasks (reliability expansion) into the internal
  // manager and derive the planner's per-attribute specs.
  std::vector<MonitoringTask> raw;
  raw.reserve(user_tasks_.size());
  for (const auto& [id, t] : user_tasks_) raw.push_back(t);

  ReliabilityRewriter rewriter(options_.first_alias_id);
  auto rewritten = rewriter.rewrite(raw);
  ReliabilityRewriter::register_aliases(system_, rewritten.alias_of);

  manager_ = TaskManager(&system_);
  for (auto& t : rewritten.tasks) manager_.add_task(std::move(t));

  RewriteState state;
  state.planner_options = options_.planner;
  state.planner_options.conflicts = rewritten.conflicts;
  state.planner_options.attr_specs = derive_attr_specs(
      manager_, options_.aggregation_aware, options_.frequency_aware);

  // Constraint signature: when it changes the adaptive planner must be
  // rebuilt (it has no API for evolving conflicts/specs); otherwise task
  // churn flows through the cheap apply_update path.
  std::size_t funnels = 0, weights = 0;
  for (AttrId a : manager_.dedup(system_.num_vertices()).attribute_universe()) {
    if (state.planner_options.attr_specs.funnel(a).type() != AggType::kHolistic)
      ++funnels;
    if (state.planner_options.attr_specs.weight(a) < 1.0) ++weights;
  }
  state.signature = std::to_string(rewritten.conflicts.size()) + ":" +
                    std::to_string(funnels) + ":" + std::to_string(weights);
  return state;
}

void MonitoringSystem::ensure_planned(double now) {
  if (!dirty_ && planner_.has_value()) return;
  RewriteState state = rebuild_internal_tasks();
  const PairSet pairs = manager_.dedup(system_.num_vertices());

  if (!planner_.has_value() || state.signature != constraint_signature_) {
    // First plan, or the constraint set changed shape: full (re)build.
    const Topology previous =
        planner_.has_value() ? planner_->topology() : Topology{};
    planner_.emplace(system_, state.planner_options, options_.adaptation);
    planner_->initialize(pairs, now);
    if (!previous.entries().empty()) {
      const std::size_t moved = edge_diff(previous, planner_->topology());
      if (moved > 0) {
        ++adaptations_;
        adaptation_messages_ += moved;
      }
    }
    constraint_signature_ = state.signature;
  } else {
    const auto report = planner_->apply_update(pairs, now);
    if (report.adaptation_messages > 0) {
      ++adaptations_;
      adaptation_messages_ += report.adaptation_messages;
    }
  }
  dirty_ = false;
}

const Topology& MonitoringSystem::topology(double now) {
  ensure_planned(now);
  return planner_->topology();
}

void MonitoringSystem::replan(double now) {
  dirty_ = true;
  planner_.reset();
  constraint_signature_.clear();
  ensure_planned(now);
}

MonitoringSystem::Status MonitoringSystem::status(double now) {
  ensure_planned(now);
  const Topology& topo = planner_->topology();
  Status s;
  s.tasks = public_tasks_;
  s.pairs = topo.total_pairs();
  s.collected = topo.collected_pairs();
  s.coverage = topo.coverage();
  s.trees = topo.num_trees();
  s.message_volume = topo.total_cost();
  s.adaptations = adaptations_;
  s.adaptation_messages = adaptation_messages_;
  return s;
}

std::string MonitoringSystem::export_dot(double now) {
  ensure_planned(now);
  return to_dot(planner_->topology());
}

std::string MonitoringSystem::export_json(double now) {
  ensure_planned(now);
  return to_json(planner_->topology());
}

}  // namespace remo
