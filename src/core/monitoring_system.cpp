#include "core/monitoring_system.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "planner/export.h"

namespace remo {

namespace {

/// `recovery.*` metrics for the detect → repair → replan loop. Constructed
/// only on the (rare) epochs where the loop acts, so quiet epochs pay
/// nothing; null members = publishing off (obs disabled).
struct RecoveryMetrics {
  obs::Counter* outages_detected = nullptr;
  obs::Counter* recoveries_detected = nullptr;
  obs::Counter* repair_passes = nullptr;
  obs::Counter* repair_messages = nullptr;
  obs::Counter* replans_after_outage = nullptr;
  obs::Histogram* repair_seconds = nullptr;
  obs::Histogram* replan_seconds = nullptr;

  explicit RecoveryMetrics(obs::Registry* registry) {
    if (!obs::enabled()) return;
    obs::Registry& reg = obs::registry_or_global(registry);
    outages_detected = &reg.counter("recovery.outages_detected");
    recoveries_detected = &reg.counter("recovery.recoveries_detected");
    repair_passes = &reg.counter("recovery.repair_passes");
    repair_messages = &reg.counter("recovery.repair_messages");
    replans_after_outage = &reg.counter("recovery.replans_after_outage");
    repair_seconds =
        &reg.histogram("recovery.repair_seconds", obs::Histogram::time_bounds());
    replan_seconds =
        &reg.histogram("recovery.replan_seconds", obs::Histogram::time_bounds());
  }
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

MonitoringSystem::MonitoringSystem(SystemModel system,
                                   MonitoringSystemOptions options)
    : system_(std::move(system)),
      options_(std::move(options)),
      planning_system_(system_),
      manager_(&system_),
      liveness_(options_.recovery.liveness) {}

SystemModel& MonitoringSystem::refresh_planning_system() {
  planning_system_ = system_;
  if (options_.recovery.enabled) {
    const Capacity cap = system_.capacity(kCollectorId);
    const double keep =
        std::clamp(1.0 - options_.recovery.repair_headroom, 0.0, 1.0);
    planning_system_.set_collector_capacity(cap * keep);
  }
  return planning_system_;
}

TaskId MonitoringSystem::add_task(MonitoringTask task) {
  task.id = next_id_++;
  const TaskId id = task.id;
  if (delta_eligible(task)) {
    // Fast path: the rewriter would pass this task through unchanged, so
    // feed it straight to the live manager and remember the exact pair
    // delta. ensure_planned re-checks the constraint signature before
    // trusting it.
    internal_id_of_[id] = manager_.add_task(task, &pending_delta_);
    delta_dirty_ = true;
  } else {
    dirty_ = true;
  }
  user_tasks_.emplace(id, std::move(task));
  ++public_tasks_;
  return id;
}

bool MonitoringSystem::remove_task(TaskId id) {
  auto it = user_tasks_.find(id);
  if (it == user_tasks_.end()) return false;
  auto internal = internal_id_of_.find(id);
  if (planner_.has_value() && !dirty_ && internal != internal_id_of_.end()) {
    const bool removed = manager_.remove_task(internal->second, &pending_delta_);
    REMO_ASSERT(removed, "internal manager lost task ", internal->second,
                " mapped from user task ", id);
    delta_dirty_ = true;
  } else {
    dirty_ = true;
  }
  internal_id_of_.erase(id);
  user_tasks_.erase(it);
  --public_tasks_;
  return true;
}

bool MonitoringSystem::modify_task(MonitoringTask task) {
  auto it = user_tasks_.find(task.id);
  if (it == user_tasks_.end()) return false;
  auto internal = internal_id_of_.find(task.id);
  // Both the old and the new definition must be rewrite identities: the
  // mapping only exists for pass-through tasks, and the replacement must
  // stay one.
  if (delta_eligible(task) && internal != internal_id_of_.end()) {
    MonitoringTask local = task;
    local.id = internal->second;
    const bool modified = manager_.modify_task(std::move(local), &pending_delta_);
    REMO_ASSERT(modified, "internal manager lost task ", internal->second,
                " mapped from user task ", task.id);
    delta_dirty_ = true;
  } else {
    dirty_ = true;
  }
  it->second = std::move(task);
  return true;
}

MonitoringSystem::RewriteState MonitoringSystem::rebuild_internal_tasks() {
  // Rewrite the user tasks (reliability expansion) into the internal
  // manager and derive the planner's per-attribute specs.
  std::vector<MonitoringTask> raw;
  raw.reserve(user_tasks_.size());
  for (const auto& [id, t] : user_tasks_) raw.push_back(t);

  ReliabilityRewriter rewriter(options_.first_alias_id);
  auto rewritten = rewriter.rewrite(raw);
  ReliabilityRewriter::register_aliases(system_, rewritten.alias_of);

  manager_ = TaskManager(&system_);
  // A federated core owns only its shard's node subset: arm the task
  // manager's scope check so a misrouted subtask aborts under
  // REMO_VALIDATE instead of silently dropping pairs. The standalone
  // system keeps the historic universe-wide tolerance.
  if (options_.shard.scoped()) manager_.set_owned_vertices(system_.num_vertices());
  internal_id_of_.clear();
  for (auto& t : rewritten.tasks) {
    const TaskId user_id = t.id;
    const TaskId internal_id = manager_.add_task(std::move(t));
    // Map pass-through tasks for the delta fast path. A replica subtask
    // can carry its original's id, but that original is SSDP/DSDP and the
    // reliability check excludes it.
    auto user = user_tasks_.find(user_id);
    if (user != user_tasks_.end() &&
        user->second.reliability == ReliabilityMode::kNone)
      internal_id_of_[user_id] = internal_id;
  }

  RewriteState state;
  state.planner_options = options_.planner;
  state.planner_options.conflicts = rewritten.conflicts;
  state.planner_options.attr_specs = derive_attr_specs(
      manager_, options_.aggregation_aware, options_.frequency_aware);
  constraint_conflicts_ = rewritten.conflicts.size();
  state.signature = constraint_signature_of(state.planner_options.attr_specs,
                                            constraint_conflicts_);
  return state;
}

// Constraint signature: when it changes the adaptive planner must be
// rebuilt (it has no API for evolving conflicts/specs); otherwise task
// churn flows through the cheap apply_update / apply_delta paths.
std::string MonitoringSystem::constraint_signature_of(
    const AttrSpecTable& specs, std::size_t num_conflicts) const {
  std::size_t funnels = 0, weights = 0;
  for (AttrId a : manager_.dedup(system_.num_vertices()).attribute_universe()) {
    if (specs.funnel(a).type() != AggType::kHolistic) ++funnels;
    if (specs.weight(a) < 1.0) ++weights;
  }
  return std::to_string(num_conflicts) + ":" + std::to_string(funnels) + ":" +
         std::to_string(weights);
}

void MonitoringSystem::ensure_planned(double now) {
  if (!dirty_ && !delta_dirty_ && planner_.has_value()) return;
  ++generation_;

  if (!dirty_ && planner_.has_value()) {
    // Delta fast path: the manager already holds the mutated tasks and
    // pending_delta_ is their exact dedup-pair delta. Re-derive the
    // constraint signature from the live manager (conflicts are stable —
    // only SSDP/DSDP rewriting creates them, and those tasks force the
    // slow path); when unchanged, the planner's options are still valid
    // and the delta replan is bit-identical to the full-diff apply_update.
    const AttrSpecTable specs = derive_attr_specs(
        manager_, options_.aggregation_aware, options_.frequency_aware);
    if (constraint_signature_of(specs, constraint_conflicts_) ==
        constraint_signature_) {
      TaskDelta pending = std::move(pending_delta_);
      pending_delta_ = TaskDelta{};
      delta_dirty_ = false;
      const auto report = planner_->apply_delta(pending, now);
      ++delta_applies_;
      if (report.adaptation_messages > 0) {
        ++adaptations_;
        adaptation_messages_ += report.adaptation_messages;
      }
      REMO_VALIDATE(planner_->pairs() == manager_.dedup(system_.num_vertices()),
                    "delta fast path drifted from the manager's dedup set (",
                    planner_->pairs().total_pairs(), " vs ",
                    manager_.live_pair_count(), " live pairs)");
      return;
    }
    // Signature changed (e.g. churn created/destroyed a funnel or weight
    // class): fall through to the full rebuild, exactly like the historic
    // path would have.
    dirty_ = true;
  }

  pending_delta_ = TaskDelta{};
  delta_dirty_ = false;
  RewriteState state = rebuild_internal_tasks();
  const PairSet pairs = manager_.dedup(system_.num_vertices());

  if (!planner_.has_value() || state.signature != constraint_signature_) {
    // First plan, or the constraint set changed shape: full (re)build.
    const Topology previous =
        planner_.has_value() ? planner_->topology() : Topology{};
    planner_.emplace(refresh_planning_system(), state.planner_options,
                     options_.adaptation);
    planner_->initialize(pairs, now);
    if (!previous.entries().empty()) {
      const std::size_t moved = edge_diff(previous, planner_->topology());
      if (moved > 0) {
        ++adaptations_;
        adaptation_messages_ += moved;
      }
    }
    constraint_signature_ = state.signature;
  } else {
    const auto report = planner_->apply_update(pairs, now);
    if (report.adaptation_messages > 0) {
      ++adaptations_;
      adaptation_messages_ += report.adaptation_messages;
    }
  }
  dirty_ = false;
}

const Topology& MonitoringSystem::topology(double now) {
  ensure_planned(now);
  return planner_->topology();
}

void MonitoringSystem::replan(double now) {
  dirty_ = true;
  planner_.reset();
  constraint_signature_.clear();
  ensure_planned(now);
}

std::vector<NodeAttrPair> MonitoringSystem::collected_pairs(double now) {
  ensure_planned(now);
  return collected_pairs_of(planner_->topology());
}

MonitoringSystem::Status MonitoringSystem::status(double now) {
  ensure_planned(now);
  // Coverage/cost roll-ups walk every tree entry; memoize them on the
  // generation counter so the per-epoch status poll a long-running daemon
  // issues costs O(1) while the plan is unchanged.
  if (status_cache_.has_value() && status_generation_ == generation_)
    return *status_cache_;
  const Topology& topo = planner_->topology();
  Status s;
  s.tasks = public_tasks_;
  s.pairs = topo.total_pairs();
  s.collected = topo.collected_pairs();
  s.coverage = topo.coverage();
  s.trees = topo.num_trees();
  s.message_volume = topo.total_cost();
  s.adaptations = adaptations_;
  s.adaptation_messages = adaptation_messages_;
  s.delta_applies = delta_applies_;
  s.repair = repair_report_;
  status_cache_ = s;
  status_generation_ = generation_;
  return s;
}

void MonitoringSystem::on_delivery(NodeAttrPair pair, std::uint64_t epoch) {
  if (!options_.recovery.enabled) return;
  liveness_.on_delivery(pair, epoch);
}

bool MonitoringSystem::end_epoch(std::uint64_t epoch) {
  if (!options_.recovery.enabled) return false;
  const double now = static_cast<double>(epoch);
  ensure_planned(now);
  // Re-sync expectations every boundary: task churn or adaptation may have
  // changed membership, depths, or frequency weights since the last epoch.
  liveness_.sync(planner_->topology(), epoch);
  const auto events = liveness_.end_epoch(epoch);

  bool acted = !events.empty();
  bool any_down = false;
  std::size_t downs = 0, ups = 0;
  for (const auto& ev : events) {
    if (ev.down) {
      any_down = true;
      ++downs;
      ++repair_report_.outages_detected;
      repair_report_.detect_lag_sum += ev.lag;
    } else {
      ++ups;
      ++repair_report_.recoveries_detected;
    }
    last_event_epoch_ = epoch;
    reoptimize_pending_ = true;
    if (options_.recovery.on_detect) options_.recovery.on_detect(ev);
  }
  if (!events.empty()) {
    const RecoveryMetrics metrics(options_.metrics);
    if (metrics.outages_detected != nullptr) {
      metrics.outages_detected->add(downs);
      metrics.recoveries_detected->add(ups);
    }
  }

  bool changed = false;
  if (any_down) {
    const obs::Span repair_span("recovery.repair");
    const auto repair_start = std::chrono::steady_clock::now();
    auto res =
        repair_topology(planner_->topology(), system_, liveness_.suspected());
    ++repair_report_.repair_passes;
    repair_report_.repair_messages += res.outcome.repair_messages;
    repair_report_.orphans_reattached += res.outcome.orphans_reattached;
    repair_report_.suspects_parked += res.outcome.suspects_parked;
    repair_report_.members_dropped += res.outcome.members_dropped;
    repair_report_.pairs_dropped += res.outcome.pairs_dropped;
    for (const auto& ev : events)
      if (ev.down) repair_report_.repair_lag_sum += ev.lag;
    if (options_.recovery.on_repair)
      options_.recovery.on_repair(res.outcome, epoch);
    if (res.outcome.repair_messages > 0) {
      planner_->adopt(std::move(res.topo), now);
      REMO_VALIDATE(planner_->topology().validate(system_),
                    "adopted repair topology violates capacity at epoch ", epoch);
      liveness_.sync(planner_->topology(), epoch);
      // The redeploy drops in-flight relays: grant every up node a fresh
      // deadline window so deep members aren't falsely suspected.
      liveness_.restart_deadlines(epoch);
      changed = true;
    }
    const RecoveryMetrics metrics(options_.metrics);
    if (metrics.repair_passes != nullptr) {
      metrics.repair_passes->add(1);
      metrics.repair_messages->add(res.outcome.repair_messages);
      metrics.repair_seconds->observe(seconds_since(repair_start));
    }
  } else if (reoptimize_pending_ &&
             epoch >= last_event_epoch_ + options_.recovery.stabilize_epochs) {
    reoptimize_pending_ = false;
    changed = reoptimize_after_outage(epoch);
    acted = true;  // the replan mutates repair_report_ even when no link moved
  }
  if (acted || changed) ++generation_;
  return changed;
}

bool MonitoringSystem::reoptimize_after_outage(std::uint64_t epoch) {
  const obs::Span span("recovery.replan");
  const auto start = std::chrono::steady_clock::now();
  const double now = static_cast<double>(epoch);
  const Topology before = planner_->topology();
  const PairSet pairs = manager_.dedup(system_.num_vertices());
  // Plan *around* the outage: suspects are removed from the planned pair
  // set so the optimizer cannot draft a dead node as a relay (planning it
  // in and then surgically breaking the plan would re-orphan whole
  // subtrees and drop their pairs all over again). Their pairs are parked
  // back afterwards as probe leaves against the full system model — the
  // headroom the planner left behind is exactly that budget.
  const auto still_down = liveness_.suspected();
  PairSet alive = pairs;
  for (NodeId s : still_down) {
    if (s >= alive.num_vertices()) continue;
    const std::vector<AttrId> attrs = alive.attrs_of(s);
    for (AttrId a : attrs) alive.remove(s, a);
  }
  refresh_planning_system();
  planner_->initialize(alive, now);
  if (!still_down.empty()) {
    Topology patched = planner_->topology();
    const RepairOutcome parked =
        park_members(patched, system_, still_down, pairs);
    patched.set_total_pairs(pairs.total_pairs());
    repair_report_.suspects_parked += parked.suspects_parked;
    repair_report_.members_dropped += parked.members_dropped;
    repair_report_.pairs_dropped += parked.pairs_dropped;
    planner_->adopt(std::move(patched), now);
  }
  ++repair_report_.replans_after_outage;
  REMO_VALIDATE(planner_->topology().validate(system_),
                "post-outage replan topology violates capacity at epoch ", epoch,
                " (", still_down.size(), " suspects planned around)");
  const std::size_t moved = edge_diff(before, planner_->topology());
  repair_report_.repair_messages += moved;
  liveness_.sync(planner_->topology(), epoch);
  if (moved > 0) liveness_.restart_deadlines(epoch);
  const RecoveryMetrics metrics(options_.metrics);
  if (metrics.replans_after_outage != nullptr) {
    metrics.replans_after_outage->add(1);
    metrics.repair_messages->add(moved);
    metrics.replan_seconds->observe(seconds_since(start));
  }
  return moved > 0;
}

MonitoringSystem::PlannerState MonitoringSystem::planner_state(double now) {
  ensure_planned(now);
  PlannerState state;
  state.topology = planner_->topology();
  state.adjustment_stamps = planner_->adjustment_stamps();
  state.init_time = planner_->init_time();
  state.replan_cost_estimate = planner_->tracker().replan_cost_estimate();
  state.constraint_signature = constraint_signature_;
  return state;
}

void MonitoringSystem::restore_tasks(std::map<TaskId, MonitoringTask> tasks,
                                     TaskId next_id) {
  user_tasks_ = std::move(tasks);
  public_tasks_ = user_tasks_.size();
  if (!user_tasks_.empty()) {
    REMO_ASSERT(next_id > user_tasks_.rbegin()->first,
                "restored next task id ", next_id, " collides with live task ",
                user_tasks_.rbegin()->first);
  }
  next_id_ = next_id;
  internal_id_of_.clear();
  planner_.reset();
  constraint_signature_.clear();
  pending_delta_ = TaskDelta{};
  delta_dirty_ = false;
  dirty_ = true;
  ++generation_;
}

void MonitoringSystem::restore_planner(PlannerState state) {
  RewriteState rebuilt = rebuild_internal_tasks();
  REMO_ASSERT(rebuilt.signature == state.constraint_signature,
              "restored constraint signature drifted: rebuilt '",
              rebuilt.signature, "' vs captured '", state.constraint_signature,
              "' — the snapshot's task set does not produce its plan");
  PairSet pairs = manager_.dedup(system_.num_vertices());
  planner_.emplace(refresh_planning_system(), rebuilt.planner_options,
                   options_.adaptation);
  planner_->restore(std::move(pairs), std::move(state.topology),
                    std::move(state.adjustment_stamps), state.init_time,
                    state.replan_cost_estimate);
  constraint_signature_ = rebuilt.signature;
  pending_delta_ = TaskDelta{};
  delta_dirty_ = false;
  dirty_ = false;
  ++generation_;
}

void MonitoringSystem::restore_counters(const AdaptationCounters& counters,
                                        RepairReport repair) {
  adaptations_ = counters.adaptations;
  adaptation_messages_ = counters.adaptation_messages;
  delta_applies_ = counters.delta_applies;
  repair_report_ = repair;
  ++generation_;
}

std::string MonitoringSystem::export_dot(double now) {
  ensure_planned(now);
  return to_dot(planner_->topology());
}

std::string MonitoringSystem::export_json(double now) {
  ensure_planned(now);
  return to_json(planner_->topology());
}

}  // namespace remo
