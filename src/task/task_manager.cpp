#include "task/task_manager.h"

#include <algorithm>

#include "common/check.h"
#include "common/sorted_vector.h"

namespace remo {

const char* to_string(AggType t) noexcept {
  switch (t) {
    case AggType::kHolistic:
      return "HOLISTIC";
    case AggType::kSum:
      return "SUM";
    case AggType::kMax:
      return "MAX";
    case AggType::kMin:
      return "MIN";
    case AggType::kCount:
      return "COUNT";
    case AggType::kAvg:
      return "AVG";
    case AggType::kTopK:
      return "TOPK";
    case AggType::kDistinct:
      return "DISTINCT";
  }
  return "?";
}

const char* to_string(ReliabilityMode m) noexcept {
  switch (m) {
    case ReliabilityMode::kNone:
      return "NONE";
    case ReliabilityMode::kSSDP:
      return "SSDP";
    case ReliabilityMode::kDSDP:
      return "DSDP";
  }
  return "?";
}

void TaskManager::bump_index(const MonitoringTask& t, int dir,
                             std::vector<NodeAttrPair>& added,
                             std::vector<NodeAttrPair>& removed) {
  // t.nodes and t.attrs are sorted-unique, so each pair is visited exactly
  // once and crossing events append in (node, attr) order.
  for (NodeId n : t.nodes) {
    if (n == kCollectorId) continue;
    for (AttrId a : t.attrs) {
      if (filter_observable_ && !system_->observes(n, a)) continue;
      const NodeAttrPair p{n, a};
      if (dir > 0) {
        auto [it, inserted] = live_pairs_.emplace(p, 1);
        if (inserted) {
          added.push_back(p);
        } else {
          ++it->second;
        }
      } else {
        auto it = live_pairs_.find(p);
        REMO_ASSERT(it != live_pairs_.end() && it->second > 0,
                    "live-pair index missing refcount for (n", n, ",a", a,
                    ") while removing task ", t.id);
        if (--it->second == 0) {
          live_pairs_.erase(it);
          removed.push_back(p);
        }
      }
    }
  }
}

TaskId TaskManager::add_task(MonitoringTask t, TaskDelta* delta) {
  t.id = next_id_++;
  sort_unique(t.attrs);
  sort_unique(t.nodes);
  const TaskId id = t.id;
  TaskDelta local;
  bump_index(t, +1, local.pairs.added, local.pairs.removed);
  tasks_.emplace(id, std::move(t));
  if (delta != nullptr) {
    local.tasks_touched.push_back(id);
    delta->merge(local);
  }
  check_invariants();
  return id;
}

bool TaskManager::remove_task(TaskId id, TaskDelta* delta) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return false;
  TaskDelta local;
  bump_index(it->second, -1, local.pairs.added, local.pairs.removed);
  tasks_.erase(it);
  if (delta != nullptr) {
    local.tasks_touched.push_back(id);
    delta->merge(local);
  }
  check_invariants();
  return true;
}

bool TaskManager::modify_task(MonitoringTask t, TaskDelta* delta) {
  auto it = tasks_.find(t.id);
  if (it == tasks_.end()) return false;
  sort_unique(t.attrs);
  sort_unique(t.nodes);
  // Decrement the old expansion, then increment the new one: a pair that
  // dips to refcount 0 and comes straight back (requested by both versions
  // as the sole owner) shows up in both crossing lists and cancels below.
  std::vector<NodeAttrPair> raw_added;
  std::vector<NodeAttrPair> raw_removed;
  bump_index(it->second, -1, raw_added, raw_removed);
  bump_index(t, +1, raw_added, raw_removed);
  it->second = std::move(t);
  if (delta != nullptr) {
    TaskDelta local;
    local.pairs.added = set_difference(raw_added, raw_removed);
    local.pairs.removed = set_difference(raw_removed, raw_added);
    local.tasks_touched.push_back(it->first);
    delta->merge(local);
  }
  check_invariants();
  return true;
}

void TaskManager::check_invariants() const {
  if (!validation_enabled()) return;
  for (const auto& [id, t] : tasks_) {
    REMO_VALIDATE(t.id == id, "task keyed by id=", id, " carries id=", t.id);
    REMO_VALIDATE(is_sorted_unique(t.attrs),
                  "task ", id, ": attribute list not sorted-unique (",
                  t.attrs.size(), " entries)");
    REMO_VALIDATE(is_sorted_unique(t.nodes), "task ", id,
                  ": node list not sorted-unique (", t.nodes.size(), " entries)");
    REMO_VALIDATE(id < next_id_, "task id=", id,
                  " not below next_id_=", next_id_);
    if (owned_vertices_ > 0) {
      for (NodeId n : t.nodes)
        REMO_VALIDATE(n != kCollectorId && n < owned_vertices_, "task ", id,
                      " references node n", n, " outside the owned shard scope [1, ",
                      owned_vertices_, ") — misrouted subtask?");
    }
  }
  // Cross-check the refcounted live-pair index against a from-scratch
  // expansion: any drift here would silently corrupt every delta the
  // manager emits and every dedup() the planner consumes.
  std::map<NodeAttrPair, std::uint32_t> expected;
  for (const auto& [id, t] : tasks_) {
    for (NodeId n : t.nodes) {
      if (n == kCollectorId) continue;
      for (AttrId a : t.attrs) {
        if (filter_observable_ && !system_->observes(n, a)) continue;
        ++expected[NodeAttrPair{n, a}];
      }
    }
  }
  REMO_VALIDATE(expected == live_pairs_, "live-pair index out of sync: ",
                live_pairs_.size(), " indexed pairs vs ", expected.size(),
                " expanded from ", tasks_.size(), " tasks");
}

const MonitoringTask* TaskManager::find(TaskId id) const {
  auto it = tasks_.find(id);
  return it == tasks_.end() ? nullptr : &it->second;
}

PairSet TaskManager::dedup(std::size_t num_vertices) const {
  PairSet out(num_vertices);
  for (const auto& [pair, refs] : live_pairs_) {
    if (pair.node >= num_vertices) continue;
    out.add(pair.node, pair.attr);
  }
  return out;
}

std::map<NodeAttrPair, double> TaskManager::pair_frequencies(const PairSet& pairs) const {
  std::map<NodeAttrPair, double> freq;
  for (const auto& [id, t] : tasks_) {
    for (NodeId n : t.nodes) {
      if (n >= pairs.num_vertices()) continue;
      for (AttrId a : t.attrs) {
        if (!pairs.contains(n, a)) continue;
        auto [it, inserted] = freq.emplace(NodeAttrPair{n, a}, t.frequency);
        if (!inserted) it->second = std::max(it->second, t.frequency);
      }
    }
  }
  return freq;
}

std::size_t TaskManager::raw_pair_count() const {
  std::size_t n = 0;
  for (const auto& [id, t] : tasks_) n += t.attrs.size() * t.nodes.size();
  return n;
}

}  // namespace remo
