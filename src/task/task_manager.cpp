#include "task/task_manager.h"

#include <algorithm>

#include "common/check.h"
#include "common/sorted_vector.h"

namespace remo {

const char* to_string(AggType t) noexcept {
  switch (t) {
    case AggType::kHolistic:
      return "HOLISTIC";
    case AggType::kSum:
      return "SUM";
    case AggType::kMax:
      return "MAX";
    case AggType::kMin:
      return "MIN";
    case AggType::kCount:
      return "COUNT";
    case AggType::kAvg:
      return "AVG";
    case AggType::kTopK:
      return "TOPK";
    case AggType::kDistinct:
      return "DISTINCT";
  }
  return "?";
}

const char* to_string(ReliabilityMode m) noexcept {
  switch (m) {
    case ReliabilityMode::kNone:
      return "NONE";
    case ReliabilityMode::kSSDP:
      return "SSDP";
    case ReliabilityMode::kDSDP:
      return "DSDP";
  }
  return "?";
}

TaskId TaskManager::add_task(MonitoringTask t) {
  t.id = next_id_++;
  sort_unique(t.attrs);
  sort_unique(t.nodes);
  const TaskId id = t.id;
  tasks_.emplace(id, std::move(t));
  check_invariants();
  return id;
}

bool TaskManager::remove_task(TaskId id) {
  const bool erased = tasks_.erase(id) > 0;
  check_invariants();
  return erased;
}

bool TaskManager::modify_task(MonitoringTask t) {
  auto it = tasks_.find(t.id);
  if (it == tasks_.end()) return false;
  sort_unique(t.attrs);
  sort_unique(t.nodes);
  it->second = std::move(t);
  check_invariants();
  return true;
}

void TaskManager::check_invariants() const {
  if (!validation_enabled()) return;
  for (const auto& [id, t] : tasks_) {
    REMO_VALIDATE(t.id == id, "task keyed by id=", id, " carries id=", t.id);
    REMO_VALIDATE(is_sorted_unique(t.attrs),
                  "task ", id, ": attribute list not sorted-unique (",
                  t.attrs.size(), " entries)");
    REMO_VALIDATE(is_sorted_unique(t.nodes), "task ", id,
                  ": node list not sorted-unique (", t.nodes.size(), " entries)");
    REMO_VALIDATE(id < next_id_, "task id=", id,
                  " not below next_id_=", next_id_);
    if (owned_vertices_ > 0) {
      for (NodeId n : t.nodes)
        REMO_VALIDATE(n != kCollectorId && n < owned_vertices_, "task ", id,
                      " references node n", n, " outside the owned shard scope [1, ",
                      owned_vertices_, ") — misrouted subtask?");
    }
  }
}

const MonitoringTask* TaskManager::find(TaskId id) const {
  auto it = tasks_.find(id);
  return it == tasks_.end() ? nullptr : &it->second;
}

void TaskManager::expand_into(const MonitoringTask& t, PairSet& out) const {
  for (NodeId n : t.nodes) {
    if (n >= out.num_vertices() || n == kCollectorId) continue;
    for (AttrId a : t.attrs) {
      if (filter_observable_ && !system_->observes(n, a)) continue;
      out.add(n, a);
    }
  }
}

PairSet TaskManager::dedup(std::size_t num_vertices) const {
  PairSet out(num_vertices);
  for (const auto& [id, t] : tasks_) expand_into(t, out);
  return out;
}

std::map<NodeAttrPair, double> TaskManager::pair_frequencies(const PairSet& pairs) const {
  std::map<NodeAttrPair, double> freq;
  for (const auto& [id, t] : tasks_) {
    for (NodeId n : t.nodes) {
      if (n >= pairs.num_vertices()) continue;
      for (AttrId a : t.attrs) {
        if (!pairs.contains(n, a)) continue;
        auto [it, inserted] = freq.emplace(NodeAttrPair{n, a}, t.frequency);
        if (!inserted) it->second = std::max(it->second, t.frequency);
      }
    }
  }
  return freq;
}

std::size_t TaskManager::raw_pair_count() const {
  std::size_t n = 0;
  for (const auto& [id, t] : tasks_) n += t.attrs.size() * t.nodes.size();
  return n;
}

}  // namespace remo
