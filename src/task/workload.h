// Synthetic workload generation reproducing the Sec. 7 setup: "we assign a
// random subset of attributes to each node ... we generate [tasks] by
// randomly selecting |A_t| attributes and |N_t| nodes with uniform
// distribution", split into small-scale and large-scale task classes, plus
// the Fig. 9 task-update stream ("randomly select 5 percent of monitoring
// nodes and replace 50 percent of their monitoring attributes").
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "cost/system_model.h"
#include "task/task.h"
#include "task/task_delta.h"
#include "task/task_manager.h"

namespace remo {

struct WorkloadConfig {
  /// Size of the attribute-type universe A.
  std::size_t attr_universe = 200;

  /// Small-scale tasks: "a small set of attributes from a small set of
  /// nodes" (Sec. 7).
  std::size_t small_attrs_min = 2, small_attrs_max = 6;
  std::size_t small_nodes_min = 5, small_nodes_max = 20;

  /// Large-scale tasks: "either involves many nodes or many attributes".
  std::size_t large_attrs_min = 20, large_attrs_max = 60;
  std::size_t large_nodes_min = 40, large_nodes_max = 160;

  /// If true (default), task attributes are drawn from the union of the
  /// selected nodes' observable sets so every task yields concrete pairs.
  bool draw_from_observable = true;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(const SystemModel& system, WorkloadConfig config,
                    std::uint64_t seed);

  /// One task with exactly `num_attrs` attributes over `num_nodes` nodes
  /// (both clamped to what the system makes available).
  MonitoringTask make_task(std::size_t num_attrs, std::size_t num_nodes);

  std::vector<MonitoringTask> small_tasks(std::size_t count);
  std::vector<MonitoringTask> large_tasks(std::size_t count);

  const WorkloadConfig& config() const noexcept { return config_; }
  Rng& rng() noexcept { return rng_; }

 private:
  const SystemModel& system_;
  WorkloadConfig config_;
  Rng rng_;
};

/// Statistics about one applied update batch (for adaptation-cost plots).
/// Counts are accurate: a task whose redrawn attribute set lands back on
/// the original is a genuine no-op and counts toward neither field.
struct UpdateBatchStats {
  /// Tasks whose attribute set actually changed (modify_task was invoked).
  std::size_t tasks_modified = 0;
  /// Old attributes genuinely gone after the update (re-drawing an attr the
  /// batch just removed does not count as a replacement).
  std::size_t attrs_replaced = 0;
  /// Structured churn delta of the whole batch: exact dedup-pair changes
  /// plus touched task ids, ready for the delta replanning path.
  TaskDelta delta;
};

/// The Fig. 9 dynamic-task emulation: picks `node_fraction` of monitoring
/// nodes (always at least one, so small systems still churn), then for
/// every task touching a picked node replaces `attr_fraction` of its
/// attributes with fresh ones drawn from the universe. Mutates `manager`
/// in place.
UpdateBatchStats apply_update_batch(TaskManager& manager, const SystemModel& system,
                                    std::size_t attr_universe, Rng& rng,
                                    double node_fraction = 0.05,
                                    double attr_fraction = 0.5);

}  // namespace remo
