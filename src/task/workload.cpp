#include "task/workload.h"

#include <algorithm>

#include "common/sorted_vector.h"

namespace remo {

WorkloadGenerator::WorkloadGenerator(const SystemModel& system, WorkloadConfig config,
                                     std::uint64_t seed)
    : system_(system), config_(config), rng_(seed) {}

MonitoringTask WorkloadGenerator::make_task(std::size_t num_attrs,
                                            std::size_t num_nodes) {
  MonitoringTask t;
  num_nodes = std::min(num_nodes, system_.num_nodes());
  auto picks = rng_.sample(static_cast<std::uint32_t>(system_.num_nodes()),
                           static_cast<std::uint32_t>(num_nodes));
  t.nodes.reserve(picks.size());
  for (auto p : picks) t.nodes.push_back(static_cast<NodeId>(p + 1));  // skip collector
  sort_unique(t.nodes);

  if (config_.draw_from_observable) {
    std::vector<AttrId> pool;
    for (NodeId n : t.nodes) {
      const auto& obs = system_.observable(n);
      pool.insert(pool.end(), obs.begin(), obs.end());
    }
    sort_unique(pool);
    if (!pool.empty()) {
      num_attrs = std::min(num_attrs, pool.size());
      auto idx = rng_.sample(static_cast<std::uint32_t>(pool.size()),
                             static_cast<std::uint32_t>(num_attrs));
      t.attrs.reserve(idx.size());
      for (auto i : idx) t.attrs.push_back(pool[i]);
    }
  } else {
    num_attrs = std::min(num_attrs, config_.attr_universe);
    auto idx = rng_.sample(static_cast<std::uint32_t>(config_.attr_universe),
                           static_cast<std::uint32_t>(num_attrs));
    t.attrs.assign(idx.begin(), idx.end());
  }
  sort_unique(t.attrs);
  return t;
}

std::vector<MonitoringTask> WorkloadGenerator::small_tasks(std::size_t count) {
  std::vector<MonitoringTask> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto na = static_cast<std::size_t>(rng_.range(
        static_cast<std::int64_t>(config_.small_attrs_min),
        static_cast<std::int64_t>(config_.small_attrs_max)));
    const auto nn = static_cast<std::size_t>(rng_.range(
        static_cast<std::int64_t>(config_.small_nodes_min),
        static_cast<std::int64_t>(config_.small_nodes_max)));
    out.push_back(make_task(na, nn));
  }
  return out;
}

std::vector<MonitoringTask> WorkloadGenerator::large_tasks(std::size_t count) {
  std::vector<MonitoringTask> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // "either involves many nodes or many attributes": alternate the
    // stressed dimension so a batch exercises both.
    const bool many_nodes = rng_.bernoulli(0.5);
    const auto na = many_nodes
                        ? static_cast<std::size_t>(rng_.range(
                              static_cast<std::int64_t>(config_.small_attrs_min),
                              static_cast<std::int64_t>(config_.small_attrs_max)))
                        : static_cast<std::size_t>(rng_.range(
                              static_cast<std::int64_t>(config_.large_attrs_min),
                              static_cast<std::int64_t>(config_.large_attrs_max)));
    const auto nn = many_nodes
                        ? static_cast<std::size_t>(rng_.range(
                              static_cast<std::int64_t>(config_.large_nodes_min),
                              static_cast<std::int64_t>(config_.large_nodes_max)))
                        : static_cast<std::size_t>(rng_.range(
                              static_cast<std::int64_t>(config_.small_nodes_min),
                              static_cast<std::int64_t>(config_.small_nodes_max)));
    out.push_back(make_task(na, nn));
  }
  return out;
}

UpdateBatchStats apply_update_batch(TaskManager& manager, const SystemModel& system,
                                    std::size_t attr_universe, Rng& rng,
                                    double node_fraction, double attr_fraction) {
  UpdateBatchStats stats;
  const auto num_nodes = system.num_nodes();
  const auto picked_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(num_nodes) * node_fraction));
  auto raw = rng.sample(static_cast<std::uint32_t>(num_nodes),
                        static_cast<std::uint32_t>(picked_count));
  std::vector<NodeId> picked;
  picked.reserve(raw.size());
  for (auto p : raw) picked.push_back(static_cast<NodeId>(p + 1));
  sort_unique(picked);

  // Collect the modifications first: mutating while iterating the task map
  // would invalidate the iteration order guarantees we rely on.
  std::vector<MonitoringTask> modified;
  for (const auto& [id, t] : manager.tasks()) {
    if (!sets_intersect(t.nodes, picked) || t.attrs.empty()) continue;
    MonitoringTask nt = t;
    const auto replace_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(nt.attrs.size()) * attr_fraction));
    auto victim_idx = rng.sample(static_cast<std::uint32_t>(nt.attrs.size()),
                                 static_cast<std::uint32_t>(replace_count));
    std::sort(victim_idx.begin(), victim_idx.end(), std::greater<>());
    for (auto vi : victim_idx) nt.attrs.erase(nt.attrs.begin() + vi);
    std::size_t replaced = 0;
    std::size_t attempts = 0;
    while (replaced < replace_count && attempts < replace_count * 8) {
      ++attempts;
      const auto a = static_cast<AttrId>(rng.below(attr_universe));
      if (set_insert(nt.attrs, a)) ++replaced;
    }
    // The fresh draws may re-insert exactly the attrs just removed; only a
    // genuinely changed task is a modification, and only attrs absent from
    // the new set were really replaced.
    if (nt.attrs == t.attrs) continue;
    stats.attrs_replaced += set_difference(t.attrs, nt.attrs).size();
    ++stats.tasks_modified;
    modified.push_back(std::move(nt));
  }
  for (auto& nt : modified) manager.modify_task(std::move(nt), &stats.delta);
  return stats;
}

}  // namespace remo
