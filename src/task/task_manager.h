// The task manager (Sec. 2.2): accepts monitoring tasks, removes
// duplicated node-attribute pairs across tasks, and exposes the deduped
// pair set to the planner. Also tracks per-pair update frequencies (the
// maximum across tasks requesting the pair) for the Sec. 6.3 extension.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "cost/system_model.h"
#include "task/pair_set.h"
#include "task/task.h"
#include "task/task_delta.h"

namespace remo {

class TaskManager {
 public:
  /// `filter_observable`: drop (i, j) pairs where node i cannot observe
  /// attribute j in `system` (Definition 1 requires A_t ⊆ ∪ A_i; concrete
  /// pairs only make sense where the attribute is observable).
  explicit TaskManager(const SystemModel* system = nullptr,
                       bool filter_observable = true)
      : system_(system), filter_observable_(filter_observable && system != nullptr) {}

  /// Adds a task; assigns and returns its id (overwriting t.id).
  /// When `delta` is non-null, the mutation's exact dedup-pair delta and
  /// touched task id are merged into it (callers accumulate a batch).
  TaskId add_task(MonitoringTask t, TaskDelta* delta = nullptr);
  /// Removes a task; returns false if the id is unknown.
  bool remove_task(TaskId id, TaskDelta* delta = nullptr);
  /// Replaces the task with `t.id`; returns false if the id is unknown.
  bool modify_task(MonitoringTask t, TaskDelta* delta = nullptr);

  const MonitoringTask* find(TaskId id) const;
  const std::map<TaskId, MonitoringTask>& tasks() const noexcept { return tasks_; }
  std::size_t num_tasks() const noexcept { return tasks_.size(); }

  /// The deduplicated pair set over all current tasks — the planner input.
  /// `num_vertices` sizes the node-id space (monitoring nodes + collector).
  /// Served from the refcounted live-pair index: O(pairs), not
  /// O(tasks × pairs); pairs on nodes ≥ `num_vertices` are skipped.
  PairSet dedup(std::size_t num_vertices) const;

  /// Number of distinct live (node, attr) pairs across all tasks.
  std::size_t live_pair_count() const noexcept { return live_pairs_.size(); }

  /// Update frequency per pair: the maximum frequency over all tasks that
  /// request the pair (a faster task subsumes slower ones for delivery).
  /// Keyed like the pair set; pairs absent from `pairs` are skipped.
  std::map<NodeAttrPair, double> pair_frequencies(const PairSet& pairs) const;

  /// How many raw (taskwise) pairs the current tasks request, before
  /// deduplication — used to report dedup savings.
  std::size_t raw_pair_count() const;

  /// Restrict this manager's ownership to node ids below `num_vertices` —
  /// the shard's node subset under federation (src/federation, DESIGN.md
  /// §12). Once scoped, check_invariants() flags any task node outside
  /// [1, num_vertices): a routed subtask referencing a foreign node means
  /// the shard router misassigned it. 0 (the default) keeps the historic
  /// universe-wide tolerance, where out-of-range nodes are silently
  /// skipped by dedup().
  void set_owned_vertices(std::size_t num_vertices) noexcept {
    owned_vertices_ = num_vertices;
  }
  std::size_t owned_vertices() const noexcept { return owned_vertices_; }

  /// Deep invariant hook (REMO_VALIDATE, DESIGN.md §11): every stored task
  /// carries the id it is keyed by, its attribute/node lists are
  /// sorted-unique (dedup and frequency lookups binary-search them),
  /// next_id_ is past every issued id, the refcounted live-pair index
  /// matches a from-scratch expansion of all tasks, and — when scoped via
  /// set_owned_vertices() — every task node lies in the owned shard
  /// subset. Invoked after every mutating call when validation is
  /// enabled; no-op otherwise.
  void check_invariants() const;

 private:
  /// Adjusts the live-pair refcounts for `t`'s expansion by ±1. Pairs whose
  /// refcount crosses 0↔1 (i.e. that enter or leave the dedup set) are
  /// appended to `added` / `removed` in (node, attr) order.
  void bump_index(const MonitoringTask& t, int dir, std::vector<NodeAttrPair>& added,
                  std::vector<NodeAttrPair>& removed);

  const SystemModel* system_;
  bool filter_observable_;
  std::map<TaskId, MonitoringTask> tasks_;
  /// Refcounted dedup index: how many tasks request each live pair.
  /// Collector and unobservable pairs are excluded exactly like dedup();
  /// node-id range clamping happens at dedup(num_vertices) read time.
  std::map<NodeAttrPair, std::uint32_t> live_pairs_;
  TaskId next_id_ = 1;
  std::size_t owned_vertices_ = 0;  ///< 0 = unscoped (universe-wide)
};

}  // namespace remo
