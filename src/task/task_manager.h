// The task manager (Sec. 2.2): accepts monitoring tasks, removes
// duplicated node-attribute pairs across tasks, and exposes the deduped
// pair set to the planner. Also tracks per-pair update frequencies (the
// maximum across tasks requesting the pair) for the Sec. 6.3 extension.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "cost/system_model.h"
#include "task/pair_set.h"
#include "task/task.h"

namespace remo {

class TaskManager {
 public:
  /// `filter_observable`: drop (i, j) pairs where node i cannot observe
  /// attribute j in `system` (Definition 1 requires A_t ⊆ ∪ A_i; concrete
  /// pairs only make sense where the attribute is observable).
  explicit TaskManager(const SystemModel* system = nullptr,
                       bool filter_observable = true)
      : system_(system), filter_observable_(filter_observable && system != nullptr) {}

  /// Adds a task; assigns and returns its id (overwriting t.id).
  TaskId add_task(MonitoringTask t);
  /// Removes a task; returns false if the id is unknown.
  bool remove_task(TaskId id);
  /// Replaces the task with `t.id`; returns false if the id is unknown.
  bool modify_task(MonitoringTask t);

  const MonitoringTask* find(TaskId id) const;
  const std::map<TaskId, MonitoringTask>& tasks() const noexcept { return tasks_; }
  std::size_t num_tasks() const noexcept { return tasks_.size(); }

  /// The deduplicated pair set over all current tasks — the planner input.
  /// `num_vertices` sizes the node-id space (monitoring nodes + collector).
  PairSet dedup(std::size_t num_vertices) const;

  /// Update frequency per pair: the maximum frequency over all tasks that
  /// request the pair (a faster task subsumes slower ones for delivery).
  /// Keyed like the pair set; pairs absent from `pairs` are skipped.
  std::map<NodeAttrPair, double> pair_frequencies(const PairSet& pairs) const;

  /// How many raw (taskwise) pairs the current tasks request, before
  /// deduplication — used to report dedup savings.
  std::size_t raw_pair_count() const;

  /// Restrict this manager's ownership to node ids below `num_vertices` —
  /// the shard's node subset under federation (src/federation, DESIGN.md
  /// §12). Once scoped, check_invariants() flags any task node outside
  /// [1, num_vertices): a routed subtask referencing a foreign node means
  /// the shard router misassigned it. 0 (the default) keeps the historic
  /// universe-wide tolerance, where out-of-range nodes are silently
  /// skipped by dedup().
  void set_owned_vertices(std::size_t num_vertices) noexcept {
    owned_vertices_ = num_vertices;
  }
  std::size_t owned_vertices() const noexcept { return owned_vertices_; }

  /// Deep invariant hook (REMO_VALIDATE, DESIGN.md §11): every stored task
  /// carries the id it is keyed by, its attribute/node lists are
  /// sorted-unique (dedup and frequency lookups binary-search them),
  /// next_id_ is past every issued id, and — when scoped via
  /// set_owned_vertices() — every task node lies in the owned shard
  /// subset. Invoked after every mutating call when validation is
  /// enabled; no-op otherwise.
  void check_invariants() const;

 private:
  void expand_into(const MonitoringTask& t, PairSet& out) const;

  const SystemModel* system_;
  bool filter_observable_;
  std::map<TaskId, MonitoringTask> tasks_;
  TaskId next_id_ = 1;
  std::size_t owned_vertices_ = 0;  ///< 0 = unscoped (universe-wide)
};

}  // namespace remo
