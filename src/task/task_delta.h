// Structured churn unit: what one task-manager mutation (or a coalesced
// burst of them) changed, expressed directly as a pair-set delta plus the
// touched task ids. Emitted by TaskManager's delta-returning mutators and
// apply_update_batch so delta consumers (the adaptive planner's dirty-set
// tracker, DESIGN.md §13) never have to re-diff full PairSets.
#pragma once

#include "common/sorted_vector.h"
#include "common/types.h"
#include "task/pair_set.h"

namespace remo {

struct TaskDelta {
  /// Exact deduplicated-pair delta: `added` are pairs that entered the
  /// dedup set (refcount 0 → 1), `removed` are pairs that left it
  /// (refcount 1 → 0). Pairs still requested by another task after a
  /// removal do not appear.
  PairSetDelta pairs;

  /// Ids of the tasks the mutation touched (sorted, unique).
  std::vector<TaskId> tasks_touched;

  bool empty() const noexcept { return pairs.empty() && tasks_touched.empty(); }

  /// Composes `more` on top of this delta (see PairSetDelta::merge for the
  /// cancellation semantics). Task ids accumulate.
  void merge(const TaskDelta& more) {
    pairs.merge(more.pairs);
    tasks_touched = set_union(tasks_touched, more.tasks_touched);
  }
};

}  // namespace remo
