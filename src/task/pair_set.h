// The deduplicated set of node-attribute pairs produced by the task
// manager (Sec. 2.2): the input to the monitoring planner.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/types.h"

namespace remo {

class PairSet {
 public:
  PairSet() = default;
  /// `num_vertices` = monitoring nodes + collector (node ids < num_vertices).
  explicit PairSet(std::size_t num_vertices) : by_node_(num_vertices) {}

  std::size_t num_vertices() const noexcept { return by_node_.size(); }

  /// Adds pair (node, attr); duplicate adds are ignored (deduplication).
  /// Returns true if the pair was new.
  bool add(NodeId node, AttrId attr);
  /// Removes pair (node, attr); returns true if it was present.
  bool remove(NodeId node, AttrId attr);
  bool contains(NodeId node, AttrId attr) const;

  /// Attributes monitored at `node` (sorted, unique).
  const std::vector<AttrId>& attrs_of(NodeId node) const { return by_node_.at(node); }

  /// Union of all monitored attributes (sorted, unique). Served from the
  /// per-attribute count index: O(|universe|), not O(total pairs).
  std::vector<AttrId> attribute_universe() const;

  /// Number of nodes monitoring `attr` (0 if the attribute is absent).
  std::size_t attr_count(AttrId attr) const;
  bool has_attr(AttrId attr) const { return attr_count(attr) > 0; }

  /// Nodes that monitor `attr` (sorted).
  std::vector<NodeId> nodes_with(AttrId attr) const;

  /// Nodes that monitor at least one attribute in `attrs` (sorted).
  /// `attrs` must be sorted-unique.
  std::vector<NodeId> nodes_with_any(const std::vector<AttrId>& attrs) const;

  /// Number of attributes of `attrs` monitored at `node` — the message
  /// payload x_i the node contributes to a tree covering `attrs`.
  std::size_t count_at(NodeId node, const std::vector<AttrId>& attrs) const;

  std::size_t total_pairs() const noexcept { return total_; }
  bool empty() const noexcept { return total_ == 0; }

  /// Flattened list of all pairs, ordered by (node, attr).
  std::vector<NodeAttrPair> all_pairs() const;

  bool operator==(const PairSet&) const = default;

 private:
  std::vector<std::vector<AttrId>> by_node_;
  /// Per-attribute pair counts, sorted by attr. Derived from by_node_;
  /// lets delta consumers detect universe entry/exit in O(log U) instead of
  /// re-scanning every node's attribute list.
  std::vector<std::pair<AttrId, std::size_t>> attr_counts_;
  std::size_t total_ = 0;
};

/// Difference between two pair sets: what an update to the task set adds
/// and removes. Drives the runtime-adaptation planner (Sec. 4).
struct PairSetDelta {
  std::vector<NodeAttrPair> added;    ///< sorted-unique, disjoint from removed
  std::vector<NodeAttrPair> removed;  ///< sorted-unique, disjoint from added

  bool empty() const noexcept { return added.empty() && removed.empty(); }
  std::size_t size() const noexcept { return added.size() + removed.size(); }
  /// Attributes touched by the delta (sorted, unique) — the trees covering
  /// these are the reconstructed set T of Sec. 4.1.
  std::vector<AttrId> affected_attrs() const;

  /// Composes `more` on top of this delta with cancellation: a pair this
  /// delta added that `more` removes (or vice versa) drops out entirely, so
  /// bursts of churn that undo themselves coalesce to an empty delta.
  /// Requires both deltas to be exact (added = pairs newly present,
  /// removed = pairs newly absent) for the composition to stay exact.
  void merge(const PairSetDelta& more);
};

PairSetDelta diff(const PairSet& before, const PairSet& after);

/// Applies `delta` to `pairs` in place. Pairs referencing nodes outside
/// the set's vertex range are skipped (mirrors TaskManager::dedup's
/// clamping). Returns the number of pairs actually changed.
std::size_t apply_delta(PairSet& pairs, const PairSetDelta& delta);

/// Drops pairs on nodes ≥ `num_vertices` — the same clamping dedup()
/// applies, for delta consumers that never materialize the full set.
PairSetDelta clamp_to_vertices(PairSetDelta delta, std::size_t num_vertices);

}  // namespace remo
