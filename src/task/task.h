// Monitoring tasks (Definition 1): t = (A_t, N_t) collects the values of
// every attribute in A_t from every node in N_t, at a given frequency,
// optionally under in-network aggregation and/or reliability replication.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace remo {

/// In-network aggregation type for a task (Sec. 6.1). kHolistic means no
/// aggregation: every individual value travels to the collector.
enum class AggType : std::uint8_t {
  kHolistic,
  kSum,
  kMax,
  kMin,
  kCount,
  kAvg,
  kTopK,
  kDistinct,
};

const char* to_string(AggType t) noexcept;

/// Reliability mode requested for a task (Sec. 6.2).
enum class ReliabilityMode : std::uint8_t {
  kNone,
  /// Same source, different paths: duplicate delivery of each value
  /// through `replicas` disjoint trees.
  kSSDP,
  /// Different sources, different paths: the value is observable at
  /// several nodes; collect it from `replicas` distinct ones.
  kDSDP,
};

const char* to_string(ReliabilityMode m) noexcept;

struct MonitoringTask {
  TaskId id = 0;
  /// Attributes to collect (sorted, unique — enforced by TaskManager).
  std::vector<AttrId> attrs;
  /// Nodes to collect from (sorted, unique — enforced by TaskManager).
  std::vector<NodeId> nodes;
  /// Collection frequency in updates per unit time; 1.0 = every epoch.
  /// Heterogeneous frequencies are handled per Sec. 6.3 (piggybacking).
  double frequency = 1.0;
  AggType aggregation = AggType::kHolistic;
  /// k parameter for kTopK aggregation.
  std::uint32_t top_k = 10;
  ReliabilityMode reliability = ReliabilityMode::kNone;
  /// Number of disjoint delivery paths for SSDP/DSDP (>= 2 to be useful).
  std::uint32_t replicas = 2;
  /// DSDP only (Sec. 6.2): N_identical — groups of nodes observing the
  /// same value; the rewriter draws one source per group per replica.
  std::vector<std::vector<NodeId>> identical_groups;

  // ---- federation routing metadata (src/federation, DESIGN.md §12) ------
  /// When a task is split into per-shard subtasks, each subtask records
  /// the user-facing task id it was carved from (0 = not a routed
  /// subtask) and the shard that owns it. Outside a federation both stay
  /// at their defaults and nothing reads them.
  TaskId origin_id = 0;
  std::uint32_t home_shard = 0;

  bool operator==(const MonitoringTask&) const = default;
};

}  // namespace remo
