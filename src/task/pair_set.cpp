#include "task/pair_set.h"

#include "common/sorted_vector.h"

namespace remo {

bool PairSet::add(NodeId node, AttrId attr) {
  if (set_insert(by_node_.at(node), attr)) {
    ++total_;
    return true;
  }
  return false;
}

bool PairSet::remove(NodeId node, AttrId attr) {
  if (set_erase(by_node_.at(node), attr)) {
    --total_;
    return true;
  }
  return false;
}

bool PairSet::contains(NodeId node, AttrId attr) const {
  return set_contains(by_node_.at(node), attr);
}

std::vector<AttrId> PairSet::attribute_universe() const {
  std::vector<AttrId> all;
  for (const auto& attrs : by_node_) all.insert(all.end(), attrs.begin(), attrs.end());
  sort_unique(all);
  return all;
}

std::vector<NodeId> PairSet::nodes_with(AttrId attr) const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < by_node_.size(); ++n)
    if (set_contains(by_node_[n], attr)) out.push_back(n);
  return out;
}

std::vector<NodeId> PairSet::nodes_with_any(const std::vector<AttrId>& attrs) const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < by_node_.size(); ++n)
    if (sets_intersect(by_node_[n], attrs)) out.push_back(n);
  return out;
}

std::size_t PairSet::count_at(NodeId node, const std::vector<AttrId>& attrs) const {
  return intersection_size(by_node_.at(node), attrs);
}

std::vector<NodeAttrPair> PairSet::all_pairs() const {
  std::vector<NodeAttrPair> out;
  out.reserve(total_);
  for (NodeId n = 0; n < by_node_.size(); ++n)
    for (AttrId a : by_node_[n]) out.push_back({n, a});
  return out;
}

std::vector<AttrId> PairSetDelta::affected_attrs() const {
  std::vector<AttrId> out;
  out.reserve(added.size() + removed.size());
  for (const auto& p : added) out.push_back(p.attr);
  for (const auto& p : removed) out.push_back(p.attr);
  sort_unique(out);
  return out;
}

PairSetDelta diff(const PairSet& before, const PairSet& after) {
  PairSetDelta d;
  const std::size_t n = std::max(before.num_vertices(), after.num_vertices());
  static const std::vector<AttrId> kEmpty;
  for (NodeId node = 0; node < n; ++node) {
    const auto& b = node < before.num_vertices() ? before.attrs_of(node) : kEmpty;
    const auto& a = node < after.num_vertices() ? after.attrs_of(node) : kEmpty;
    for (AttrId attr : set_difference(a, b)) d.added.push_back({node, attr});
    for (AttrId attr : set_difference(b, a)) d.removed.push_back({node, attr});
  }
  return d;
}

}  // namespace remo
