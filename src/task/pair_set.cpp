#include "task/pair_set.h"

#include "common/sorted_vector.h"

namespace remo {

namespace {

// attr_counts_ entries sorted by attribute id; values are always > 0.
auto count_pos(std::vector<std::pair<AttrId, std::size_t>>& counts, AttrId attr) {
  return std::lower_bound(
      counts.begin(), counts.end(), attr,
      [](const std::pair<AttrId, std::size_t>& e, AttrId a) { return e.first < a; });
}

}  // namespace

bool PairSet::add(NodeId node, AttrId attr) {
  if (set_insert(by_node_.at(node), attr)) {
    ++total_;
    auto it = count_pos(attr_counts_, attr);
    if (it != attr_counts_.end() && it->first == attr) {
      ++it->second;
    } else {
      attr_counts_.insert(it, {attr, 1});
    }
    return true;
  }
  return false;
}

bool PairSet::remove(NodeId node, AttrId attr) {
  if (set_erase(by_node_.at(node), attr)) {
    --total_;
    auto it = count_pos(attr_counts_, attr);
    if (--it->second == 0) attr_counts_.erase(it);
    return true;
  }
  return false;
}

bool PairSet::contains(NodeId node, AttrId attr) const {
  return set_contains(by_node_.at(node), attr);
}

std::vector<AttrId> PairSet::attribute_universe() const {
  std::vector<AttrId> all;
  all.reserve(attr_counts_.size());
  for (const auto& [attr, count] : attr_counts_) all.push_back(attr);
  return all;
}

std::size_t PairSet::attr_count(AttrId attr) const {
  auto it = std::lower_bound(
      attr_counts_.begin(), attr_counts_.end(), attr,
      [](const std::pair<AttrId, std::size_t>& e, AttrId a) { return e.first < a; });
  return it != attr_counts_.end() && it->first == attr ? it->second : 0;
}

std::vector<NodeId> PairSet::nodes_with(AttrId attr) const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < by_node_.size(); ++n)
    if (set_contains(by_node_[n], attr)) out.push_back(n);
  return out;
}

std::vector<NodeId> PairSet::nodes_with_any(const std::vector<AttrId>& attrs) const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < by_node_.size(); ++n)
    if (sets_intersect(by_node_[n], attrs)) out.push_back(n);
  return out;
}

std::size_t PairSet::count_at(NodeId node, const std::vector<AttrId>& attrs) const {
  return intersection_size(by_node_.at(node), attrs);
}

std::vector<NodeAttrPair> PairSet::all_pairs() const {
  std::vector<NodeAttrPair> out;
  out.reserve(total_);
  for (NodeId n = 0; n < by_node_.size(); ++n)
    for (AttrId a : by_node_[n]) out.push_back({n, a});
  return out;
}

std::vector<AttrId> PairSetDelta::affected_attrs() const {
  std::vector<AttrId> out;
  out.reserve(added.size() + removed.size());
  for (const auto& p : added) out.push_back(p.attr);
  for (const auto& p : removed) out.push_back(p.attr);
  sort_unique(out);
  return out;
}

void PairSetDelta::merge(const PairSetDelta& more) {
  // Exact-delta composition: applying `this` then `more` to a base set B
  // nets out to
  //   added   = (added \ more.removed) ∪ (more.added \ removed)
  //   removed = (removed \ more.added) ∪ (more.removed \ added)
  // — a pair added here and removed by `more` (or vice versa) cancels.
  std::vector<NodeAttrPair> net_added =
      set_union(set_difference(added, more.removed), set_difference(more.added, removed));
  std::vector<NodeAttrPair> net_removed = set_union(set_difference(removed, more.added),
                                                    set_difference(more.removed, added));
  added = std::move(net_added);
  removed = std::move(net_removed);
}

PairSetDelta diff(const PairSet& before, const PairSet& after) {
  PairSetDelta d;
  const std::size_t n = std::max(before.num_vertices(), after.num_vertices());
  static const std::vector<AttrId> kEmpty;
  for (NodeId node = 0; node < n; ++node) {
    const auto& b = node < before.num_vertices() ? before.attrs_of(node) : kEmpty;
    const auto& a = node < after.num_vertices() ? after.attrs_of(node) : kEmpty;
    for (AttrId attr : set_difference(a, b)) d.added.push_back({node, attr});
    for (AttrId attr : set_difference(b, a)) d.removed.push_back({node, attr});
  }
  return d;
}

PairSetDelta clamp_to_vertices(PairSetDelta delta, std::size_t num_vertices) {
  auto out_of_range = [num_vertices](const NodeAttrPair& p) {
    return p.node >= num_vertices;
  };
  std::erase_if(delta.added, out_of_range);
  std::erase_if(delta.removed, out_of_range);
  return delta;
}

std::size_t apply_delta(PairSet& pairs, const PairSetDelta& delta) {
  std::size_t changed = 0;
  for (const auto& p : delta.removed) {
    if (p.node >= pairs.num_vertices()) continue;
    if (pairs.remove(p.node, p.attr)) ++changed;
  }
  for (const auto& p : delta.added) {
    if (p.node >= pairs.num_vertices()) continue;
    if (pairs.add(p.node, p.attr)) ++changed;
  }
  return changed;
}

}  // namespace remo
