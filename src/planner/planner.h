// The REMO monitoring planner (Sec. 3): guided local search over attribute
// partitions (partition augmentation) interleaved with resource-aware
// evaluation (constrained tree construction), producing the forest of
// monitoring trees the collector uses. The two state-of-the-art baselines
// — SINGLETON-SET (one tree per attribute, as PIER) and ONE-SET (one tree
// for everything) — are the search's degenerate endpoints and are exposed
// as schemes for the Fig. 5/6/8 comparisons.
#pragma once

#include <cstddef>
#include <memory>

#include "cost/system_model.h"
#include "partition/augmentation.h"
#include "partition/partition.h"
#include "planner/topology.h"
#include "task/pair_set.h"

namespace remo {

namespace obs {
class Registry;
}

enum class PartitionScheme : std::uint8_t { kSingletonSet, kOneSet, kRemo };

const char* to_string(PartitionScheme s) noexcept;

struct PlannerOptions {
  PartitionScheme partition_scheme = PartitionScheme::kRemo;
  TreeBuildOptions tree;
  AllocationScheme allocation = AllocationScheme::kOrdered;
  /// Guided augmentation: evaluate at most this many top-ranked candidates
  /// per iteration (the search-space trimming of Sec. 3.1.1).
  std::size_t max_candidates = 32;
  /// Local-search iteration cap (each accepted augmentation is one
  /// iteration); the search also stops at the first iteration where no
  /// evaluated candidate improves the objective.
  std::size_t max_iterations = 512;
  /// Funnels and frequency weights (Sec. 6); defaults are holistic / 1.0.
  AttrSpecTable attr_specs;
  /// Attribute pairs that must ride different trees (SSDP/DSDP, Sec. 6.2).
  ConflictConstraints conflicts;

  // --- search-quality switches (ablation knobs; see bench_ablation) ------
  /// Accept the best improving candidate of the evaluated list instead of
  /// the first one found (first-improvement is the paper's letter; best-of
  /// evaluated is measurably more robust under tight capacities).
  bool best_of_candidates = true;
  /// Evaluate a full fair-share re-layout of the current partition each
  /// iteration (escape hatch from demand-allocation hogging states).
  bool relayout_escape = true;
  /// Evaluate the coarsest legal partition (ONE-SET, or the greedy
  /// conflict coloring) and restart the climb from it when it wins.
  bool endpoint_guard = true;
  /// Add the recoverable-starvation term to the candidate ranking (plain
  /// ranking = the Sec. 3.1.1 capacity-saving estimate only).
  bool starvation_ranking = true;

  // --- evaluation-engine knobs (see planner/evaluator.h) -----------------
  /// Candidate evaluations per search iteration run concurrently on a
  /// fixed pool of this many threads (0 = hardware_concurrency). The
  /// committed plan is bit-identical for every value: score ties are
  /// broken by candidate rank, never by completion order.
  std::size_t num_threads = 0;
  /// Memoize tree builds across search iterations, keyed by (canonical
  /// attribute set, remaining-capacity fingerprint). A hit is bit-identical
  /// to a fresh build; switching this off only trades speed.
  bool memoize_builds = true;
  /// Candidates per pool task: each task scores one contiguous rank-block
  /// with thread-local scratch reused across the block, amortizing dispatch
  /// and allocation overhead. Like num_threads, this is dispatch shape
  /// only — the committed plan is bit-identical for every value (scores
  /// are committed in rank order regardless of which block produced them).
  /// 0 is treated as 1.
  std::size_t candidate_block_size = 4;

  // --- observability (src/obs, DESIGN.md §9) -----------------------------
  /// Metrics registry the evaluation engine publishes to (the counters
  /// behind Planner::last_stats / AdaptReport, and the `planner.*` series
  /// in BENCH_*.json). Null = the process-global registry; inject a
  /// private instance to keep a test or side-by-side run hermetic.
  obs::Registry* metrics = nullptr;
};

/// Lexicographic objective: more collected pairs first; then lower message
/// volume. Used both by the one-shot planner and the adaptive planner.
struct PlanScore {
  std::size_t collected = 0;
  Capacity cost = 0;
};

PlanScore score_of(const Topology& topo);
/// True iff `a` strictly improves on `b`.
bool improves(const PlanScore& a, const PlanScore& b);

/// Topology-aware candidate ranking used by the guided search. On top of
/// the plain partition-level gain estimates (partition/augmentation.h) it
/// scores *recoverable starvation*: an operation that rebuilds one tree
/// with committed capacity next to another with uncollected pairs can
/// re-spend the released capacity on those pairs, so candidates are
/// boosted by C · min(starved, collected) over the involved trees.
/// Merging two fully-starved trees releases nothing and ranks low — the
/// failure mode of the naive additive bonus.
///
/// `must_involve` (optional, one flag per topology entry) restricts
/// candidates to operations touching at least one flagged tree — the
/// reconstructed-tree restriction T of the adaptive planner (Sec. 4.1).
std::vector<Augmentation> rank_topology_augmentations(
    const Topology& topo, const PairSet& pairs, const CostModel& cost,
    const ConflictConstraints& conflicts, std::size_t max_candidates,
    const std::vector<bool>* must_involve = nullptr,
    bool starvation_bonus = true);

class PlanEvaluator;
struct EvalStats;

class Planner {
 public:
  Planner(const SystemModel& system, PlannerOptions options);

  const PlannerOptions& options() const noexcept { return options_; }
  const SystemModel& system() const noexcept { return *system_; }

  /// Full planning run for a (deduplicated) pair set.
  Topology plan(const PairSet& pairs) const;

  /// Builds the forest for an explicit partition (no search). Goes through
  /// the evaluation engine, so it benefits from (and warms) the memo cache.
  Topology build_for_partition(const PairSet& pairs, const Partition& p) const;

  /// One guided local-search step: evaluates top-ranked neighboring
  /// partitions and commits the first strict improvement. Returns false if
  /// no evaluated candidate improves (search converged).
  bool improve_once(Topology& topo, const PairSet& pairs) const;

  /// Deep invariant hook (REMO_VALIDATE, DESIGN.md §11): the topology
  /// satisfies every capacity constraint, its implied partition is a valid
  /// partition of the pair set's attribute universe, and no conflict
  /// constraint is violated. Invoked after every committed planner result
  /// when validation is enabled; no-op (one relaxed atomic load) otherwise.
  void check_invariants(const Topology& topo, const PairSet& pairs) const;

  /// Diagnostics: candidate topologies evaluated by the last plan() call
  /// (accumulated since then across improve_once/build_for_partition).
  std::size_t last_evaluations() const noexcept;
  /// Full engine counters/timings over the same window.
  EvalStats last_stats() const;

  /// The shared evaluation engine (the adaptive planner's restricted
  /// search runs through the same instance). Copies of a Planner share it.
  PlanEvaluator& evaluator() const noexcept { return *evaluator_; }

 private:
  const SystemModel* system_;
  PlannerOptions options_;
  std::shared_ptr<PlanEvaluator> evaluator_;
};

}  // namespace remo
