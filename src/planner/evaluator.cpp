#include "planner/evaluator.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace remo {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

/// Engine metrics live in an obs::Registry (options.metrics, defaulting to
/// the global one) under the `planner.*` names, so a registry snapshot —
/// e.g. the one every bench writes into BENCH_*.json — carries the engine
/// counters with no extra plumbing. EvalStats is a *windowed* view of the
/// same metrics: reset_stats() captures baselines and stats() subtracts
/// them, which keeps per-plan() windows exact for the serial use the API
/// had before (registry counters themselves are cumulative).
struct PlanEvaluator::Counters {
  obs::Counter* evaluations = nullptr;
  obs::Counter* cache_hits = nullptr;    ///< registry mirror of cache_.hits()
  obs::Counter* cache_misses = nullptr;  ///< registry mirror of cache_.misses()
  obs::Counter* cache_invalidated = nullptr;  ///< memo entries evicted by churn
  obs::Gauge* evaluate_seconds = nullptr;
  obs::Gauge* build_seconds = nullptr;

  // EvalStats window baselines, captured by reset_stats(). Cache hit/miss
  // windows subtract TreeBuildCache's own lifetime counts — exact even
  // when several evaluators share one registry.
  std::uint64_t evals_base = 0;
  double evaluate_seconds_base = 0.0;
  double build_seconds_base = 0.0;
  std::size_t hits_base = 0;
  std::size_t misses_base = 0;

  /// Scope guard mirroring the cache counter deltas of one engine call
  /// into the registry (the cache increments from pool threads; the delta
  /// is taken on the calling thread around the whole parallel section).
  struct CacheWindow {
    Counters& c;
    const TreeBuildCache& cache;
    std::size_t h0, m0;
    CacheWindow(Counters& counters, const TreeBuildCache& build_cache)
        : c(counters), cache(build_cache), h0(cache.hits()), m0(cache.misses()) {}
    ~CacheWindow() {
      c.cache_hits->add(cache.hits() - h0);
      c.cache_misses->add(cache.misses() - m0);
    }
  };
};

PlanEvaluator::PlanEvaluator(const SystemModel& system, PlannerOptions options)
    : system_(&system),
      options_(std::move(options)),
      counters_(std::make_unique<Counters>()) {
  cache_.set_enabled(options_.memoize_builds);
  obs::Registry& reg = obs::registry_or_global(options_.metrics);
  counters_->evaluations = &reg.counter("planner.candidates_evaluated");
  counters_->cache_hits = &reg.counter("planner.cache_hits");
  counters_->cache_misses = &reg.counter("planner.cache_misses");
  counters_->cache_invalidated = &reg.counter("planner.cache_invalidated");
  counters_->evaluate_seconds = &reg.gauge("planner.evaluate_seconds");
  counters_->build_seconds = &reg.gauge("planner.build_seconds");
}

PlanEvaluator::~PlanEvaluator() = default;

std::size_t PlanEvaluator::num_threads() const {
  return options_.num_threads == 0 ? ThreadPool::default_concurrency()
                                   : options_.num_threads;
}

ThreadPool& PlanEvaluator::pool() {
  if (!pool_) pool_ = std::make_unique<ThreadPool>(num_threads() - 1);
  return *pool_;
}

void PlanEvaluator::sync_pairs(const PairSet& pairs) {
  if (last_pairs_.has_value() && *last_pairs_ == pairs) return;
  if (last_pairs_.has_value() && last_pairs_->num_vertices() == pairs.num_vertices()) {
    // Scoped invalidation: evict only entries whose attribute sets the
    // change intersects; everything else is still bit-exact (PR 1 cleared
    // the whole cache here, discarding builds the change never touched).
    const PairSetDelta delta = diff(*last_pairs_, pairs);
    counters_->cache_invalidated->add(cache_.invalidate_attrs(delta.affected_attrs()));
  } else {
    cache_.clear();
  }
  last_pairs_ = pairs;
  cache_.set_reference_pairs(&*last_pairs_);
}

void PlanEvaluator::apply_pairs_delta(const PairSetDelta& delta) {
  if (delta.empty()) return;
  REMO_ASSERT(last_pairs_.has_value(),
              "apply_pairs_delta before the first sync_pairs — the engine has "
              "no pair set to advance");
  apply_delta(*last_pairs_, delta);
  counters_->cache_invalidated->add(cache_.invalidate_attrs(delta.affected_attrs()));
  cache_.set_reference_pairs(&*last_pairs_);
}

Topology PlanEvaluator::build_full(const PairSet& pairs, const Partition& partition) {
  const obs::Span span("planner.build_full");
  const Counters::CacheWindow cache_window(*counters_, cache_);
  const auto start = std::chrono::steady_clock::now();
  Topology topo = build_topology(*system_, pairs, partition, options_.attr_specs,
                                 options_.allocation, options_.tree,
                                 cache_.enabled() ? &cache_ : nullptr);
  counters_->evaluations->add(1);
  counters_->build_seconds->add(seconds_since(start));
  return topo;
}

Topology PlanEvaluator::rebuild_candidate(const Topology& base, const Partition& p,
                                          const PairSet& pairs,
                                          const Augmentation& aug) {
  const AugmentationFootprint fp = footprint(p, aug);
  return rebuild_trees(base, *system_, pairs, fp.victims, fp.new_sets,
                       options_.attr_specs, options_.allocation, options_.tree,
                       cache_.enabled() ? &cache_ : nullptr);
}

PlanScore PlanEvaluator::score_candidate(const Topology& base, const Partition& p,
                                         const PairSet& pairs,
                                         const Augmentation& aug,
                                         RebuildScratch* scratch) {
  const AugmentationFootprint fp = footprint(p, aug);
  const RebuildScore s = rebuild_score(base, *system_, pairs, fp.victims,
                                       fp.new_sets, options_.attr_specs,
                                       options_.allocation, options_.tree,
                                       cache_.enabled() ? &cache_ : nullptr, scratch);
  return PlanScore{s.collected, s.cost};
}

void PlanEvaluator::for_each_blocked(
    std::size_t n, const std::function<void(std::size_t, RebuildScratch&)>& fn) {
  const std::size_t block = std::max<std::size_t>(options_.candidate_block_size, 1);
  const std::size_t num_blocks = (n + block - 1) / block;
  if (num_threads() <= 1 || num_blocks <= 1) {
    RebuildScratch scratch;
    for (std::size_t i = 0; i < n; ++i) fn(i, scratch);
    return;
  }
  pool().parallel_for(num_blocks, [&](std::size_t b) {
    RebuildScratch scratch;
    const std::size_t begin = b * block;
    const std::size_t end = std::min(begin + block, n);
    for (std::size_t i = begin; i < end; ++i) fn(i, scratch);
  });
}

PlanEvaluator::Result PlanEvaluator::materialize(
    const Topology& base, const Partition& p, const PairSet& pairs,
    const std::vector<Augmentation>& candidates, std::size_t index,
    const PlanScore& score) {
  // With the cache on this re-serves the builds the scoring pass just did;
  // with it off, one extra build per committed operation.
  return Result{rebuild_candidate(base, p, pairs, candidates[index]), score, index};
}

std::vector<PlanEvaluator::Result> PlanEvaluator::evaluate_all(
    const Topology& base, const PairSet& pairs,
    const std::vector<Augmentation>& candidates) {
  const obs::Span span("planner.evaluate");
  const Counters::CacheWindow cache_window(*counters_, cache_);
  const auto start = std::chrono::steady_clock::now();
  const Partition p = base.partition();  // sets in entry order
  std::vector<Result> results(candidates.size());
  for_each_blocked(candidates.size(), [&](std::size_t i, RebuildScratch&) {
    Topology topo = rebuild_candidate(base, p, pairs, candidates[i]);
    results[i] = Result{std::move(topo), PlanScore{}, i};
    results[i].score = score_of(results[i].topo);
  });
  counters_->evaluations->add(candidates.size());
  counters_->evaluate_seconds->add(seconds_since(start));
  return results;
}

std::optional<PlanEvaluator::Result> PlanEvaluator::best_improving(
    const Topology& base, const PairSet& pairs,
    const std::vector<Augmentation>& candidates, const PlanScore& current) {
  const obs::Span span("planner.evaluate");
  const Counters::CacheWindow cache_window(*counters_, cache_);
  const auto start = std::chrono::steady_clock::now();
  const Partition p = base.partition();
  std::vector<PlanScore> scores(candidates.size());
  for_each_blocked(candidates.size(), [&](std::size_t i, RebuildScratch& scratch) {
    scores[i] = score_candidate(base, p, pairs, candidates[i], &scratch);
  });
  counters_->evaluations->add(candidates.size());

  // Serial rank-order scan: strict improvement over the running best, so
  // ties go to the lowest-ranked candidate — identical to serial search.
  std::optional<std::size_t> best;
  PlanScore best_score = current;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (improves(scores[i], best_score)) {
      best_score = scores[i];
      best = i;
    }
  }
  std::optional<Result> out;
  if (best) out = materialize(base, p, pairs, candidates, *best, best_score);
  counters_->evaluate_seconds->add(seconds_since(start));
  return out;
}

std::optional<PlanEvaluator::Result> PlanEvaluator::first_improving(
    const Topology& base, const PairSet& pairs,
    const std::vector<Augmentation>& candidates, const PlanScore& current,
    std::size_t max_evaluations) {
  const obs::Span span("planner.evaluate");
  const Counters::CacheWindow cache_window(*counters_, cache_);
  const auto start = std::chrono::steady_clock::now();
  const Partition p = base.partition();
  const std::size_t budget = std::min(candidates.size(), max_evaluations);
  // One rank-block per thread and per chunk. The winner is invariant to
  // the chunk size: chunks are scanned in rank order and the scan stops at
  // the first improvement, so the committed candidate is the lowest-ranked
  // improving one no matter how the chunks were cut.
  const std::size_t block = std::max<std::size_t>(options_.candidate_block_size, 1);
  const std::size_t chunk = block * std::max<std::size_t>(num_threads(), 1);
  std::optional<Result> found;
  std::size_t evaluated = 0;
  for (std::size_t begin = 0; begin < budget && !found; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, budget);
    std::vector<PlanScore> scores(end - begin);
    for_each_blocked(scores.size(), [&](std::size_t i, RebuildScratch& scratch) {
      scores[i] = score_candidate(base, p, pairs, candidates[begin + i], &scratch);
    });
    evaluated += scores.size();
    for (std::size_t i = 0; i < scores.size(); ++i) {
      if (improves(scores[i], current)) {
        found = materialize(base, p, pairs, candidates, begin + i, scores[i]);
        break;
      }
    }
  }
  counters_->evaluations->add(evaluated);
  counters_->evaluate_seconds->add(seconds_since(start));
  return found;
}

EvalStats PlanEvaluator::stats() const {
  EvalStats s;
  s.evaluations = counters_->evaluations->value() - counters_->evals_base;
  s.cache_hits = cache_.hits() - counters_->hits_base;
  s.cache_misses = cache_.misses() - counters_->misses_base;
  s.evaluate_seconds =
      counters_->evaluate_seconds->value() - counters_->evaluate_seconds_base;
  s.build_seconds =
      counters_->build_seconds->value() - counters_->build_seconds_base;
  return s;
}

void PlanEvaluator::reset_stats() {
  counters_->evals_base = counters_->evaluations->value();
  counters_->evaluate_seconds_base = counters_->evaluate_seconds->value();
  counters_->build_seconds_base = counters_->build_seconds->value();
  counters_->hits_base = cache_.hits();
  counters_->misses_base = cache_.misses();
}

}  // namespace remo
