// Human-readable exports of a planned topology: Graphviz DOT for
// visualizing the forest, and a compact JSON summary for dashboards and
// external tooling. Pure functions of the topology — no I/O here.
#pragma once

#include <string>

#include "planner/topology.h"

namespace remo {

/// Graphviz DOT: one cluster per monitoring tree, the collector shared.
/// Edge labels carry the message payload (weighted values per epoch);
/// node labels carry usage/capacity.
std::string to_dot(const Topology& topology);

/// Compact JSON: per-tree attribute sets, member/parent arrays, loads, and
/// the topology-level totals. Stable field order, no external dependency.
std::string to_json(const Topology& topology);

}  // namespace remo
