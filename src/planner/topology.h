// A monitoring topology: the forest of monitoring trees the planner
// produces for one attribute partition, with global per-node capacity
// accounting across trees (a node may appear in several trees, Sec. 2.3).
#pragma once

#include <cstddef>
#include <vector>

#include "cost/system_model.h"
#include "partition/partition.h"
#include "planner/attr_specs.h"
#include "task/pair_set.h"
#include "tree/builder.h"
#include "tree/monitoring_tree.h"

namespace remo {

class TreeBuildCache;

/// How a node's capacity is divided among the trees it participates in
/// (Sec. 5.2). All schemes are additionally hard-capped by the node's
/// remaining capacity so the global constraint Σ_k usage_k(i) ≤ b_i holds
/// no matter what the advisory share says.
enum class AllocationScheme : std::uint8_t {
  kUniform,       ///< equal share per candidate tree
  kProportional,  ///< share proportional to the tree's candidate-set size
  kOnDemand,      ///< all remaining capacity, trees built in given order
  kOrdered,       ///< on-demand, trees built smallest candidate set first
};

const char* to_string(AllocationScheme s) noexcept;

struct TreeEntry {
  std::vector<AttrId> attrs;  // sorted; the partition set this tree delivers
  MonitoringTree tree;
  std::size_t offered_pairs = 0;    // pairs candidates could contribute
  std::size_t collected_pairs = 0;  // pairs actually included
};

/// A (child -> parent) monitoring link; the same link may exist in several
/// trees, hence the multiset semantics in edge-diff accounting.
struct TopologyEdge {
  NodeId child = kNoNode;
  NodeId parent = kNoNode;
  friend constexpr bool operator==(const TopologyEdge&, const TopologyEdge&) = default;
  friend constexpr auto operator<=>(const TopologyEdge&, const TopologyEdge&) = default;
};

class Topology {
 public:
  Topology() = default;

  const std::vector<TreeEntry>& entries() const noexcept { return entries_; }
  std::vector<TreeEntry>& mutable_entries() noexcept { return entries_; }
  std::size_t num_trees() const noexcept { return entries_.size(); }

  std::size_t total_pairs() const noexcept { return total_pairs_; }
  void set_total_pairs(std::size_t n) noexcept { total_pairs_ = n; }

  std::size_t collected_pairs() const;
  /// Fraction of requested node-attribute pairs delivered to the collector
  /// — the evaluation metric of Sec. 7 ("percentage of collected values").
  double coverage() const;
  /// Σ over trees of Σ member send costs: monitoring message volume per
  /// unit time (C_cur / C_adj in the Sec. 4.2 throttle).
  Capacity total_cost() const;
  std::size_t total_messages() const;

  /// Node's combined usage across all trees (including the collector's).
  Capacity node_usage(NodeId id) const;
  /// b_i minus combined usage — the on-demand budget for a (re)build.
  Capacity remaining(NodeId id, const SystemModel& system) const;

  /// The attribute partition implied by the entries.
  Partition partition() const;

  /// All (child -> parent) links over all trees, sorted (multiset).
  std::vector<TopologyEdge> edges() const;

  /// Every tree satisfies its capacity constraints and global per-node
  /// usage never exceeds system capacity.
  bool validate(const SystemModel& system) const;

 private:
  std::vector<TreeEntry> entries_;
  std::size_t total_pairs_ = 0;
};

/// Number of links that must be torn down or established to turn `before`
/// into `after` (multiset symmetric difference of edges) — the adaptation
/// message volume M_adapt of Sec. 4.2.
std::size_t edge_diff(const Topology& before, const Topology& after);

/// The identities of the pairs a topology collects: every (member node,
/// attribute) with a nonzero local count, over all trees, sorted by
/// (node, attr). Because the trees' attribute sets partition the universe
/// the list is duplicate-free; its size equals collected_pairs(). This is
/// the per-shard stream the federation root merges (src/federation), and
/// the byte-comparable ground truth behind the K=1 equivalence tests.
/// Attribute ids are raw (reliability replicas keep their alias ids).
std::vector<NodeAttrPair> collected_pairs_of(const Topology& topo);

/// Build the complete forest for `partition`. Tree build order follows the
/// allocation scheme (kOrdered sorts by ascending candidate-set size).
/// `cache` (optional) memoizes the per-set tree builds; a hit returns a
/// result bit-identical to the fresh build (see tree_build_cache.h).
Topology build_topology(const SystemModel& system, const PairSet& pairs,
                        const Partition& partition, const AttrSpecTable& specs,
                        AllocationScheme allocation, const TreeBuildOptions& tree_opts,
                        TreeBuildCache* cache = nullptr);

/// Rebuild only the trees at `victim_indices`, replacing them with trees
/// for `new_sets` (the resource-aware evaluation step of Sec. 3.2: "builds
/// trees for nodes affected by m"). Budgets are the nodes' remaining
/// capacity with the victims removed, advisory-capped per `allocation`.
/// Returns the modified topology; `topo` itself is untouched.
Topology rebuild_trees(const Topology& topo, const SystemModel& system,
                       const PairSet& pairs, const std::vector<std::size_t>& victim_indices,
                       const std::vector<std::vector<AttrId>>& new_sets,
                       const AttrSpecTable& specs, AllocationScheme allocation,
                       const TreeBuildOptions& tree_opts, TreeBuildCache* cache = nullptr);

/// The (collected pairs, cost) outcome of a rebuild_trees call without
/// materializing it: untouched entries contribute their aggregates, only
/// the replacement trees are built (memoized via `cache`). Bit-identical
/// to scoring the materialized topology — the cost sum runs in the same
/// entry order — at a fraction of the cost, which is what lets the search
/// score whole candidate lists and materialize only the committed winner.
struct RebuildScore {
  std::size_t collected = 0;
  Capacity cost = 0;
};

/// Reusable buffers for rebuild_score. The evaluator keeps one per scoring
/// thread and reuses it across every candidate of a dispatch block, so the
/// hot scoring path stops re-allocating its per-call vectors. Passing the
/// same scratch, a different scratch, or none at all never changes the
/// returned score — the buffers are fully overwritten on every call.
struct RebuildScratch {
  std::vector<std::size_t> victims;
  std::vector<std::vector<AttrId>> all_sets;
  std::vector<Capacity> usage;
  std::vector<Capacity> remaining;
  std::vector<std::size_t> new_sizes;
  std::vector<TreeAttrSpec> tree_attrs;
  std::vector<BuildItem> items;
};

RebuildScore rebuild_score(const Topology& topo, const SystemModel& system,
                           const PairSet& pairs,
                           const std::vector<std::size_t>& victim_indices,
                           const std::vector<std::vector<AttrId>>& new_sets,
                           const AttrSpecTable& specs, AllocationScheme allocation,
                           const TreeBuildOptions& tree_opts,
                           TreeBuildCache* cache = nullptr,
                           RebuildScratch* scratch = nullptr);

}  // namespace remo
