// Per-attribute planning properties: the funnel (in-network aggregation
// type, Sec. 6.1) and the update-frequency weight (Sec. 6.3). The basic
// REMO planner treats everything as holistic at weight 1.0; the extended
// planner consults this table so that per-node resource consumption is
// estimated correctly for aggregating / slow-updating attributes.
#pragma once

#include <unordered_map>

#include "common/types.h"
#include "tree/funnel.h"
#include "tree/monitoring_tree.h"

namespace remo {

class AttrSpecTable {
 public:
  /// Default for attributes not explicitly set: holistic, weight 1.0.
  void set_funnel(AttrId attr, FunnelSpec funnel) { funnels_[attr] = funnel; }
  /// `weight` = freq_attr / freq_max, in (0, 1].
  void set_weight(AttrId attr, double weight) { weights_[attr] = weight; }

  FunnelSpec funnel(AttrId attr) const {
    auto it = funnels_.find(attr);
    return it == funnels_.end() ? FunnelSpec{AggType::kHolistic} : it->second;
  }
  double weight(AttrId attr) const {
    auto it = weights_.find(attr);
    return it == weights_.end() ? 1.0 : it->second;
  }

  TreeAttrSpec tree_spec(AttrId attr) const {
    return TreeAttrSpec{attr, funnel(attr), weight(attr)};
  }

  bool empty() const noexcept { return funnels_.empty() && weights_.empty(); }

  /// A copy with every funnel forced holistic and every weight forced to
  /// 1.0 — what the *basic* (extension-oblivious) planner sees (Fig. 12a's
  /// baseline).
  static AttrSpecTable plain() { return AttrSpecTable{}; }

 private:
  std::unordered_map<AttrId, FunnelSpec> funnels_;
  std::unordered_map<AttrId, double> weights_;
};

}  // namespace remo
