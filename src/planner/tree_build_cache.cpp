#include "planner/tree_build_cache.h"

#include <bit>
#include <cstdint>

#include "common/check.h"
#include "common/sorted_vector.h"

namespace remo {

namespace {

inline void mix(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a style combine over 64-bit lanes.
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

// Hashes the exact pair-set slice a build with this key consumes: which of
// the key's attributes each candidate member monitors. Any pair-set change
// that could alter the built tree changes this value.
std::uint64_t pair_fingerprint(const TreeBuildKey& key, const PairSet& pairs) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (NodeId n : key.nodes) {
    mix(h, n);
    if (n >= pairs.num_vertices()) continue;
    for (AttrId a : set_intersection(pairs.attrs_of(n), key.attrs)) mix(h, a);
  }
  return h;
}

}  // namespace

std::size_t TreeBuildCache::KeyHash::operator()(
    const TreeBuildKey& k) const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  mix(h, k.attrs.size());
  for (AttrId a : k.attrs) mix(h, a);
  for (NodeId n : k.nodes) mix(h, n);
  for (Capacity c : k.avails) mix(h, std::bit_cast<std::uint64_t>(c));
  mix(h, std::bit_cast<std::uint64_t>(k.collector_avail));
  return static_cast<std::size_t>(h);
}

std::size_t TreeBuildCache::AttrsHash::operator()(
    const std::vector<AttrId>& attrs) const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  mix(h, attrs.size());
  for (AttrId a : attrs) mix(h, a);
  return static_cast<std::size_t>(h);
}

const TreeBuildCache::ItemsTemplate* TreeBuildCache::items_template(
    const std::vector<AttrId>& attrs, const PairSet& pairs) {
  MutexLock lock(mutex_);
  auto it = templates_.find(attrs);
  if (it != templates_.end()) return &it->second;
  ItemsTemplate t;
  t.nodes = pairs.nodes_with_any(attrs);
  t.local.resize(t.nodes.size() * attrs.size());
  std::size_t row = 0;
  for (NodeId n : t.nodes) {
    for (std::size_t m = 0; m < attrs.size(); ++m) {
      const std::uint32_t v = pairs.contains(n, attrs[m]) ? 1u : 0u;
      t.local[row + m] = v;
      t.offered += v;
    }
    row += attrs.size();
  }
  return &templates_.emplace(attrs, std::move(t)).first->second;
}

std::optional<TreeEntry> TreeBuildCache::find(const TreeBuildKey& key) {
  {
    MutexLock lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (validation_enabled() && reference_pairs_ != nullptr) {
        REMO_VALIDATE(
            it->second.pair_fingerprint == pair_fingerprint(key, *reference_pairs_),
            "tree-build cache served a stale entry: ", key.attrs.size(),
            " attrs / ", key.nodes.size(),
            " members no longer match the reference pair set — "
            "a pair-set change was not invalidated");
      }
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.entry;  // copy under the lock; caller owns it
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

const TreeEntry* TreeBuildCache::peek(const TreeBuildKey& key) {
  {
    MutexLock lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (validation_enabled() && reference_pairs_ != nullptr) {
        REMO_VALIDATE(
            it->second.pair_fingerprint == pair_fingerprint(key, *reference_pairs_),
            "tree-build cache served a stale entry: ", key.attrs.size(),
            " attrs / ", key.nodes.size(),
            " members no longer match the reference pair set — "
            "a pair-set change was not invalidated");
      }
      hits_.fetch_add(1, std::memory_order_relaxed);
      return &it->second.entry;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void TreeBuildCache::insert(const TreeBuildKey& key, const TreeEntry& entry) {
  MutexLock lock(mutex_);
  CachedEntry cached{entry, 0};
  if (validation_enabled() && reference_pairs_ != nullptr) {
    cached.pair_fingerprint = pair_fingerprint(key, *reference_pairs_);
  }
  entries_.emplace(key, std::move(cached));
}

std::size_t TreeBuildCache::invalidate_attrs(const std::vector<AttrId>& attrs) {
  if (attrs.empty()) return 0;
  MutexLock lock(mutex_);
  // Which entries survive is order-independent (each key is tested in
  // isolation), so hash-order traversal cannot leak into plans.
  std::erase_if(templates_, [&](const auto& kv) {
    return sets_intersect(kv.first, attrs);
  });
  return std::erase_if(entries_, [&](const auto& kv) {
    return sets_intersect(kv.first.attrs, attrs);
  });
}

void TreeBuildCache::set_reference_pairs(const PairSet* pairs) {
  MutexLock lock(mutex_);
  reference_pairs_ = pairs;
}

void TreeBuildCache::clear() {
  MutexLock lock(mutex_);
  entries_.clear();
  templates_.clear();
}

std::size_t TreeBuildCache::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

}  // namespace remo
