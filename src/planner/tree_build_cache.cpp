#include "planner/tree_build_cache.h"

#include <bit>
#include <cstdint>

namespace remo {

namespace {

inline void mix(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a style combine over 64-bit lanes.
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

}  // namespace

std::size_t TreeBuildCache::KeyHash::operator()(
    const TreeBuildKey& k) const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  mix(h, k.attrs.size());
  for (AttrId a : k.attrs) mix(h, a);
  for (NodeId n : k.nodes) mix(h, n);
  for (Capacity c : k.avails) mix(h, std::bit_cast<std::uint64_t>(c));
  mix(h, std::bit_cast<std::uint64_t>(k.collector_avail));
  return static_cast<std::size_t>(h);
}

std::optional<TreeEntry> TreeBuildCache::find(const TreeBuildKey& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;  // copy under the lock; caller owns it
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void TreeBuildCache::insert(const TreeBuildKey& key, const TreeEntry& entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.emplace(key, entry);
}

void TreeBuildCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

std::size_t TreeBuildCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace remo
