#include "planner/topology.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/sorted_vector.h"
#include "planner/tree_build_cache.h"

namespace remo {

namespace {
constexpr double kEps = 1e-9;

/// Advisory-share bookkeeping for UNIFORM / PROPORTIONAL allocation
/// (Sec. 5.2), computed over the full target partition.
struct ShareInfo {
  std::vector<std::uint32_t> tree_count;  // per node: #trees it belongs to
  std::vector<double> size_sum;           // per node: Σ |D_k| over its trees
  std::vector<std::size_t> tree_size;     // per tree (in `sets` order): |D_k|
  std::size_t total_trees = 0;
  double total_size = 0.0;
  double min_message_cost = 0.0;  // C + a: the smallest useful message
};

ShareInfo compute_shares(const SystemModel& system, const PairSet& pairs,
                         const std::vector<std::vector<AttrId>>& sets) {
  ShareInfo info;
  const std::size_t nv = system.num_vertices();
  info.tree_count.assign(nv, 0);
  info.size_sum.assign(nv, 0.0);
  info.tree_size.resize(sets.size());
  info.total_trees = sets.size();
  info.min_message_cost = system.cost().message_cost(1);
  for (std::size_t k = 0; k < sets.size(); ++k) {
    const auto nodes = pairs.nodes_with_any(sets[k]);
    info.tree_size[k] = nodes.size();
    info.total_size += static_cast<double>(nodes.size());
    for (NodeId n : nodes) {
      ++info.tree_count[n];
      info.size_sum[n] += static_cast<double>(nodes.size());
    }
  }
  return info;
}

/// Whether the forest is being laid out from scratch or locally rebuilt
/// around a partition-augmentation / task-update operation.
enum class BuildPass : std::uint8_t { kInitial, kRebuild };

Capacity advisory_share(AllocationScheme scheme, NodeId node, Capacity budget,
                        const ShareInfo& info, std::size_t tree_idx,
                        BuildPass pass) {
  // The collector belongs to *every* tree. Under demand-driven allocation
  // its budget is asymmetric by design:
  //   - initial build: an even advisory split (floored at one minimal
  //     message) — otherwise the first-built tree attaches every node
  //     directly under the collector (the Fig. 4a star-collection
  //     pathology) and starves the rest of the forest;
  //   - rebuild: the remaining capacity — the victims of the operation
  //     released their usage, and the rebuilt tree must be able to inherit
  //     it, or merges could never consolidate collector capacity.
  // Monitoring nodes follow the Sec. 5.2 scheme in both passes.
  const bool demand_driven = scheme == AllocationScheme::kOnDemand ||
                             scheme == AllocationScheme::kOrdered;
  if (node == kCollectorId) {
    if (demand_driven && pass == BuildPass::kRebuild)
      return std::numeric_limits<Capacity>::infinity();
    const double t = static_cast<double>(info.total_trees);
    if (t <= 0) return budget;
    return std::max(budget / t, info.min_message_cost);
  }
  switch (scheme) {
    case AllocationScheme::kUniform: {
      const double t = static_cast<double>(info.tree_count[node]);
      return t > 0 ? std::max(budget / t, info.min_message_cost) : budget;
    }
    case AllocationScheme::kProportional: {
      const double sum = info.size_sum[node];
      if (sum <= 0) return budget;
      return std::max(budget * static_cast<double>(info.tree_size[tree_idx]) / sum,
                      info.min_message_cost);
    }
    case AllocationScheme::kOnDemand:
    case AllocationScheme::kOrdered:
      return std::numeric_limits<Capacity>::infinity();
  }
  return budget;
}

/// A budget at or above this bound can never constrain the build: a vertex's
/// usage is its own message (C + a·y, y ≤ wmax·X where X is the set's total
/// local values) plus its children's messages (≤ n of them, payloads from
/// disjoint subtrees summing to ≤ wmax·X). Clamping budgets here lets the
/// memo cache treat every "effectively unconstrained" budget as one class.
Capacity unconstrained_bound(const CostModel& cost,
                             const std::vector<TreeAttrSpec>& tree_attrs,
                             const std::vector<BuildItem>& items) {
  double wmax = 1.0;
  for (const auto& s : tree_attrs) wmax = std::max(wmax, s.weight);
  double total_local = 0.0;
  for (const auto& it : items) total_local += static_cast<double>(it.local_total());
  const double n = static_cast<double>(items.size());
  // +C+1 margin: strict-vs-non-strict feasibility comparisons at exactly
  // the bound must not matter.
  return cost.per_message * (n + 2.0) + 2.0 * cost.per_value * wmax * total_local +
         1.0;
}

/// Shared prologue of build_entry / score_entry: the tree's attribute
/// specs and the offered items with their effective budgets. Fills
/// caller-owned vectors (the scoring path reuses per-thread scratch).
/// With a cache, the pair-set part (member list + local counts) comes from
/// the cache's items template — same values, computed once per attribute
/// set instead of once per candidate.
void fill_entry_inputs(const SystemModel& system, const PairSet& pairs,
                       const std::vector<AttrId>& attrs, const AttrSpecTable& specs,
                       const std::vector<Capacity>& remaining,
                       AllocationScheme scheme, const ShareInfo& shares,
                       std::size_t tree_idx, BuildPass pass, TreeBuildCache* cache,
                       std::vector<TreeAttrSpec>& tree_attrs,
                       std::vector<BuildItem>& items, std::size_t& offered,
                       Capacity& collector_avail) {
  tree_attrs.clear();
  tree_attrs.reserve(attrs.size());
  for (AttrId a : attrs) tree_attrs.push_back(specs.tree_spec(a));

  items.clear();
  offered = 0;
  if (cache != nullptr && cache->enabled()) {
    const auto* t = cache->items_template(attrs, pairs);
    offered = t->offered;
    items.resize(t->nodes.size());
    for (std::size_t i = 0; i < t->nodes.size(); ++i) {
      const NodeId n = t->nodes[i];
      BuildItem& item = items[i];
      item.id = n;
      const auto row = t->local.begin() + static_cast<std::ptrdiff_t>(i * attrs.size());
      item.local.assign(row, row + static_cast<std::ptrdiff_t>(attrs.size()));
      item.avail =
          std::min(remaining[n], advisory_share(scheme, n, system.capacity(n),
                                                shares, tree_idx, pass));
    }
  } else {
    for (NodeId n : pairs.nodes_with_any(attrs)) {
      BuildItem item;
      item.id = n;
      item.local.resize(attrs.size());
      for (std::size_t m = 0; m < attrs.size(); ++m)
        item.local[m] = pairs.contains(n, attrs[m]) ? 1u : 0u;
      offered += item.local_total();
      item.avail =
          std::min(remaining[n], advisory_share(scheme, n, system.capacity(n),
                                                shares, tree_idx, pass));
      items.push_back(std::move(item));
    }
  }
  collector_avail =
      std::min(remaining[kCollectorId],
               advisory_share(scheme, kCollectorId, system.capacity(kCollectorId),
                              shares, tree_idx, pass));
}

TreeBuildKey make_cache_key(const CostModel& cost, const std::vector<AttrId>& attrs,
                            const std::vector<TreeAttrSpec>& tree_attrs,
                            const std::vector<BuildItem>& items,
                            Capacity collector_avail) {
  const Capacity bound = unconstrained_bound(cost, tree_attrs, items);
  TreeBuildKey key;
  key.attrs = attrs;
  key.nodes.reserve(items.size());
  key.avails.reserve(items.size());
  for (const auto& it : items) {
    key.nodes.push_back(it.id);
    key.avails.push_back(std::min(it.avail, bound));
  }
  key.collector_avail = std::min(collector_avail, bound);
  return key;
}

/// Builds the tree for `attrs` given per-node remaining budgets.
TreeEntry build_entry(const SystemModel& system, const PairSet& pairs,
                      const std::vector<AttrId>& attrs, const AttrSpecTable& specs,
                      const TreeBuildOptions& tree_opts,
                      const std::vector<Capacity>& remaining,
                      AllocationScheme scheme, const ShareInfo& shares,
                      std::size_t tree_idx, BuildPass pass,
                      TreeBuildCache* cache) {
  std::vector<TreeAttrSpec> tree_attrs;
  std::vector<BuildItem> items;
  std::size_t offered = 0;
  Capacity collector_avail = 0;
  fill_entry_inputs(system, pairs, attrs, specs, remaining, scheme, shares,
                    tree_idx, pass, cache, tree_attrs, items, offered,
                    collector_avail);

  if (cache != nullptr && cache->enabled()) {
    TreeBuildKey key =
        make_cache_key(system.cost(), attrs, tree_attrs, items, collector_avail);
    if (auto hit = cache->find(key)) {
      // The cached tree's structure and loads are exactly what a fresh
      // build would produce (the key captures every input the builder
      // sees), but its stored budgets are the *creator's*. Rewrite them to
      // this request's, so a hit is indistinguishable from a build.
      TreeEntry entry = std::move(*hit);
      entry.tree.set_avail(kCollectorId, collector_avail);
      for (const auto& it : items)
        if (entry.tree.contains(it.id)) entry.tree.set_avail(it.id, it.avail);
      return entry;
    }
    auto built = build_tree(std::move(tree_attrs), std::move(items),
                            collector_avail, system.cost(), tree_opts);
    TreeEntry entry{attrs, std::move(built.tree), offered, 0};
    entry.collected_pairs = entry.tree.collected_pairs();
    cache->insert(key, entry);
    return entry;
  }

  auto built = build_tree(std::move(tree_attrs), std::move(items), collector_avail,
                          system.cost(), tree_opts);
  TreeEntry entry{attrs, std::move(built.tree), offered, 0};
  entry.collected_pairs = entry.tree.collected_pairs();
  return entry;
}

// REMO_HOT: runs once per built/cached tree on every candidate scored.
// for_each_usage streams the slot arrays directly instead of paying a
// lookup per member; the per-node arithmetic is the usage() expression
// verbatim, so the subtraction sequence is unchanged.
void charge_usage(std::vector<Capacity>& remaining, const MonitoringTree& tree) {
  tree.for_each_usage([&](NodeId n, Capacity u) { remaining[n] -= u; });
}

/// Score contribution of one (re)built tree.
struct EntryScore {
  std::size_t collected = 0;
  Capacity cost = 0;
};

// REMO_HOT: once per rebuilt tree per candidate scored — the inner loop of
// the guided search. Scoring twin of build_entry: identical inputs, build
// decisions, and cache interaction, but a cache hit is consumed *in place*
// (no TreeEntry copy, no budget rewrite — budgets enter neither usage nor
// cost nor collected counts, so the score is bit-identical to the
// materialized form), and a miss builds and inserts exactly as build_entry
// would. Charges the tree's usage into `remaining` and returns its score.
EntryScore score_entry(const SystemModel& system, const PairSet& pairs,
                       const std::vector<AttrId>& attrs, const AttrSpecTable& specs,
                       const TreeBuildOptions& tree_opts,
                       std::vector<Capacity>& remaining, AllocationScheme scheme,
                       const ShareInfo& shares, std::size_t tree_idx,
                       TreeBuildCache* cache, std::vector<TreeAttrSpec>& tree_attrs,
                       std::vector<BuildItem>& items) {
  std::size_t offered = 0;
  Capacity collector_avail = 0;
  fill_entry_inputs(system, pairs, attrs, specs, remaining, scheme, shares,
                    tree_idx, BuildPass::kRebuild, cache, tree_attrs, items,
                    offered, collector_avail);

  if (cache != nullptr && cache->enabled()) {
    const TreeBuildKey key =
        make_cache_key(system.cost(), attrs, tree_attrs, items, collector_avail);
    if (const TreeEntry* hit = cache->peek(key)) {
      charge_usage(remaining, hit->tree);
      return {hit->collected_pairs, hit->tree.total_cost()};
    }
    auto built = build_tree(std::move(tree_attrs), std::move(items),
                            collector_avail, system.cost(), tree_opts);
    TreeEntry entry{attrs, std::move(built.tree), offered, 0};
    entry.collected_pairs = entry.tree.collected_pairs();
    cache->insert(key, entry);
    charge_usage(remaining, entry.tree);
    return {entry.collected_pairs, entry.tree.total_cost()};
  }

  auto built = build_tree(std::move(tree_attrs), std::move(items), collector_avail,
                          system.cost(), tree_opts);
  charge_usage(remaining, built.tree);
  return {built.tree.collected_pairs(), built.tree.total_cost()};
}

/// Build order for the given allocation scheme over set indices.
///
/// Deviation from Sec. 5.2: the paper orders trees by *increasing* size
/// ("small trees are more cost efficient ... less likely to consume much
/// resource for relaying"), which presumes relay cost is the dominant
/// waste. Under the measured cost model the dominant waste is per-message
/// overhead: a node that commits its capacity to several small trees first
/// pays C per tree and can no longer join the large tree where one message
/// would deliver many pairs. Building the *largest* candidate sets first
/// is the deterministic size-ordering that realizes the scheme's intent
/// here (it consistently beats arbitrary-order ON-DEMAND; ascending order
/// consistently loses to it). See EXPERIMENTS.md, Fig. 11.
std::vector<std::size_t> build_order(AllocationScheme scheme,
                                     const std::vector<std::size_t>& sizes) {
  std::vector<std::size_t> order(sizes.size());
  std::iota(order.begin(), order.end(), 0);
  if (scheme == AllocationScheme::kOrdered) {
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return sizes[a] > sizes[b];
    });
  }
  return order;
}

}  // namespace

const char* to_string(AllocationScheme s) noexcept {
  switch (s) {
    case AllocationScheme::kUniform:
      return "UNIFORM";
    case AllocationScheme::kProportional:
      return "PROPORTIONAL";
    case AllocationScheme::kOnDemand:
      return "ON-DEMAND";
    case AllocationScheme::kOrdered:
      return "ORDERED";
  }
  return "?";
}

std::size_t Topology::collected_pairs() const {
  std::size_t total = 0;
  for (const auto& e : entries_) total += e.collected_pairs;
  return total;
}

double Topology::coverage() const {
  return total_pairs_ == 0
             ? 1.0
             : static_cast<double>(collected_pairs()) / static_cast<double>(total_pairs_);
}

Capacity Topology::total_cost() const {
  Capacity total = 0;
  for (const auto& e : entries_) total += e.tree.total_cost();
  return total;
}

std::size_t Topology::total_messages() const {
  std::size_t total = 0;
  for (const auto& e : entries_) total += e.tree.total_messages();
  return total;
}

Capacity Topology::node_usage(NodeId id) const {
  Capacity total = 0;
  for (const auto& e : entries_)
    if (id == kCollectorId || e.tree.contains(id)) total += e.tree.usage(id);
  return total;
}

Capacity Topology::remaining(NodeId id, const SystemModel& system) const {
  return system.capacity(id) - node_usage(id);
}

Partition Topology::partition() const {
  std::vector<std::vector<AttrId>> sets;
  sets.reserve(entries_.size());
  for (const auto& e : entries_) sets.push_back(e.attrs);
  return Partition(std::move(sets));
}

std::vector<TopologyEdge> Topology::edges() const {
  std::vector<TopologyEdge> out;
  for (const auto& e : entries_)
    for (NodeId n : e.tree.members()) out.push_back({n, e.tree.parent(n)});
  std::sort(out.begin(), out.end());
  return out;
}

bool Topology::validate(const SystemModel& system) const {
  for (const auto& e : entries_) {
    if (!e.tree.validate()) return false;
    if (e.collected_pairs != e.tree.collected_pairs()) return false;
  }
  for (NodeId n = 0; n < system.num_vertices(); ++n)
    if (node_usage(n) > system.capacity(n) + 1e-6) return false;
  return true;
}

std::size_t edge_diff(const Topology& before, const Topology& after) {
  const auto a = before.edges();
  const auto b = after.edges();
  std::size_t diff = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++diff;
      ++i;
    } else if (b[j] < a[i]) {
      ++diff;
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  diff += (a.size() - i) + (b.size() - j);
  return diff;
}

std::vector<NodeAttrPair> collected_pairs_of(const Topology& topo) {
  std::vector<NodeAttrPair> out;
  out.reserve(topo.collected_pairs());
  for (const auto& entry : topo.entries()) {
    const std::vector<AttrId> attrs = entry.tree.attr_ids();
    for (NodeId member : entry.tree.members())
      for (std::size_t m = 0; m < attrs.size(); ++m)
        if (entry.tree.local_counts(member)[m] > 0)
          out.push_back(NodeAttrPair{member, attrs[m]});
  }
  std::sort(out.begin(), out.end());
  return out;
}

Topology build_topology(const SystemModel& system, const PairSet& pairs,
                        const Partition& partition, const AttrSpecTable& specs,
                        AllocationScheme allocation, const TreeBuildOptions& tree_opts,
                        TreeBuildCache* cache) {
  Topology topo;
  topo.set_total_pairs(pairs.total_pairs());
  const auto& sets = partition.sets();
  const ShareInfo shares = compute_shares(system, pairs, sets);

  std::vector<Capacity> remaining(system.num_vertices());
  for (NodeId n = 0; n < system.num_vertices(); ++n) remaining[n] = system.capacity(n);

  for (std::size_t k : build_order(allocation, shares.tree_size)) {
    auto entry = build_entry(system, pairs, sets[k], specs, tree_opts, remaining,
                             allocation, shares, k, BuildPass::kInitial, cache);
    charge_usage(remaining, entry.tree);
    topo.mutable_entries().push_back(std::move(entry));
  }
  return topo;
}

Topology rebuild_trees(const Topology& topo, const SystemModel& system,
                       const PairSet& pairs,
                       const std::vector<std::size_t>& victim_indices,
                       const std::vector<std::vector<AttrId>>& new_sets,
                       const AttrSpecTable& specs, AllocationScheme allocation,
                       const TreeBuildOptions& tree_opts, TreeBuildCache* cache) {
  std::vector<std::size_t> victims = victim_indices;
  sort_unique(victims);

  Topology out;
  out.set_total_pairs(pairs.total_pairs());
  for (std::size_t i = 0; i < topo.entries().size(); ++i)
    if (!set_contains(victims, i)) out.mutable_entries().push_back(topo.entries()[i]);

  // Shares are computed over the partition *after* the operation: kept sets
  // followed by the new sets (new trees occupy the tail indices).
  std::vector<std::vector<AttrId>> all_sets;
  all_sets.reserve(out.entries().size() + new_sets.size());
  for (const auto& e : out.entries()) all_sets.push_back(e.attrs);
  const std::size_t first_new = all_sets.size();
  for (const auto& s : new_sets) all_sets.push_back(s);
  const ShareInfo shares = compute_shares(system, pairs, all_sets);

  // One pass over the kept trees instead of num_vertices × entries calls
  // to node_usage(): each node's usage still accumulates in entry order
  // from zero, so `remaining` is bit-identical to the per-node form.
  std::vector<Capacity> usage(system.num_vertices(), 0);
  for (const auto& e : out.entries())
    e.tree.for_each_usage([&](NodeId n, Capacity u) { usage[n] += u; });
  std::vector<Capacity> remaining(system.num_vertices());
  for (NodeId n = 0; n < system.num_vertices(); ++n)
    remaining[n] = system.capacity(n) - usage[n];

  std::vector<std::size_t> new_sizes(new_sets.size());
  for (std::size_t k = 0; k < new_sets.size(); ++k)
    new_sizes[k] = shares.tree_size[first_new + k];
  for (std::size_t k : build_order(allocation, new_sizes)) {
    auto entry = build_entry(system, pairs, new_sets[k], specs, tree_opts,
                             remaining, allocation, shares, first_new + k,
                             BuildPass::kRebuild, cache);
    charge_usage(remaining, entry.tree);
    out.mutable_entries().push_back(std::move(entry));
  }
  (void)kEps;
  return out;
}

RebuildScore rebuild_score(const Topology& topo, const SystemModel& system,
                           const PairSet& pairs,
                           const std::vector<std::size_t>& victim_indices,
                           const std::vector<std::vector<AttrId>>& new_sets,
                           const AttrSpecTable& specs, AllocationScheme allocation,
                           const TreeBuildOptions& tree_opts, TreeBuildCache* cache,
                           RebuildScratch* scratch) {
  RebuildScratch local;
  RebuildScratch& sc = scratch != nullptr ? *scratch : local;

  sc.victims.assign(victim_indices.begin(), victim_indices.end());
  sort_unique(sc.victims);

  // Every accumulation below runs in the exact order the materialized
  // rebuild would use (kept entries in original order, then new trees in
  // build order), so the result is bit-identical to
  // score_of(rebuild_trees(...)) — ties in the search must not depend on
  // which path scored a candidate.
  RebuildScore score;
  sc.all_sets.clear();
  sc.all_sets.reserve(topo.entries().size() - sc.victims.size() + new_sets.size());
  sc.usage.assign(system.num_vertices(), 0);
  for (std::size_t i = 0; i < topo.entries().size(); ++i) {
    if (set_contains(sc.victims, i)) continue;
    const auto& e = topo.entries()[i];
    score.collected += e.collected_pairs;
    score.cost += e.tree.total_cost();
    sc.all_sets.push_back(e.attrs);
    e.tree.for_each_usage([&](NodeId n, Capacity u) { sc.usage[n] += u; });
  }
  const std::size_t first_new = sc.all_sets.size();
  for (const auto& s : new_sets) sc.all_sets.push_back(s);

  // Demand-driven rebuilds never read the advisory shares —
  // advisory_share() answers "unconstrained" for every vertex in the
  // kRebuild pass — so scoring skips the per-node share indexes over the
  // kept sets (one nodes_with_any sweep per set per candidate otherwise)
  // and computes only the new sets' sizes, the build-order key.
  const bool demand_driven = allocation == AllocationScheme::kOnDemand ||
                             allocation == AllocationScheme::kOrdered;
  ShareInfo shares;
  if (demand_driven) {
    shares.tree_size.resize(sc.all_sets.size());
    for (std::size_t k = first_new; k < sc.all_sets.size(); ++k)
      shares.tree_size[k] =
          cache != nullptr && cache->enabled()
              ? cache->items_template(sc.all_sets[k], pairs)->nodes.size()
              : pairs.nodes_with_any(sc.all_sets[k]).size();
  } else {
    shares = compute_shares(system, pairs, sc.all_sets);
  }

  sc.remaining.resize(system.num_vertices());
  for (NodeId n = 0; n < system.num_vertices(); ++n)
    sc.remaining[n] = system.capacity(n) - sc.usage[n];

  sc.new_sizes.resize(new_sets.size());
  for (std::size_t k = 0; k < new_sets.size(); ++k)
    sc.new_sizes[k] = shares.tree_size[first_new + k];
  for (std::size_t k : build_order(allocation, sc.new_sizes)) {
    const EntryScore es =
        score_entry(system, pairs, new_sets[k], specs, tree_opts, sc.remaining,
                    allocation, shares, first_new + k, cache, sc.tree_attrs,
                    sc.items);
    score.collected += es.collected;
    score.cost += es.cost;
  }
  return score;
}

}  // namespace remo
