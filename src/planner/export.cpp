#include "planner/export.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <string>

namespace remo {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

std::string attr_list(const std::vector<AttrId>& attrs) {
  std::string s;
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    if (i) s += ',';
    s += std::to_string(attrs[i]);
  }
  return s;
}

std::vector<NodeId> sorted_members(const MonitoringTree& tree) {
  auto members = tree.members();
  std::sort(members.begin(), members.end());
  return members;
}

}  // namespace

std::string to_dot(const Topology& topology) {
  std::string out;
  out += "digraph remo_topology {\n";
  out += "  rankdir=BT;\n";
  out += "  collector [label=\"collector\", shape=doublecircle];\n";
  for (std::size_t k = 0; k < topology.entries().size(); ++k) {
    const auto& entry = topology.entries()[k];
    appendf(out, "  subgraph cluster_%zu {\n", k);
    appendf(out, "    label=\"tree %zu: {%s}\";\n", k,
            attr_list(entry.attrs).c_str());
    for (NodeId n : sorted_members(entry.tree)) {
      appendf(out, "    t%zu_n%u [label=\"n%u\\n%.1f/%.1f\"];\n", k, n, n,
              entry.tree.usage(n), entry.tree.avail(n));
    }
    out += "  }\n";
    for (NodeId n : sorted_members(entry.tree)) {
      const NodeId parent = entry.tree.parent(n);
      if (parent == kCollectorId)
        appendf(out, "  t%zu_n%u -> collector [label=\"%.0f\"];\n", k, n,
                entry.tree.payload(n));
      else
        appendf(out, "  t%zu_n%u -> t%zu_n%u [label=\"%.0f\"];\n", k, n, k,
                parent, entry.tree.payload(n));
    }
  }
  out += "}\n";
  return out;
}

std::string to_json(const Topology& topology) {
  std::string out;
  out += "{\n";
  appendf(out, "  \"trees\": %zu,\n", topology.num_trees());
  appendf(out, "  \"total_pairs\": %zu,\n", topology.total_pairs());
  appendf(out, "  \"collected_pairs\": %zu,\n", topology.collected_pairs());
  appendf(out, "  \"coverage\": %.4f,\n", topology.coverage());
  appendf(out, "  \"message_volume\": %.2f,\n", topology.total_cost());
  out += "  \"forest\": [\n";
  for (std::size_t k = 0; k < topology.entries().size(); ++k) {
    const auto& entry = topology.entries()[k];
    out += "    {\n";
    out += "      \"attrs\": [" + attr_list(entry.attrs) + "],\n";
    appendf(out, "      \"offered_pairs\": %zu,\n", entry.offered_pairs);
    appendf(out, "      \"collected_pairs\": %zu,\n", entry.collected_pairs);
    appendf(out, "      \"height\": %zu,\n", entry.tree.height());
    out += "      \"members\": [";
    const auto members = sorted_members(entry.tree);
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i) out += ", ";
      appendf(out, "{\"node\": %u, \"parent\": %u, \"payload\": %.2f}",
              members[i], entry.tree.parent(members[i]),
              entry.tree.payload(members[i]));
    }
    out += "]\n";
    out += k + 1 < topology.entries().size() ? "    },\n" : "    }\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

}  // namespace remo
