// Memoization of resource-aware tree builds (the hot inner operation of
// the planner's guided local search). A candidate augmentation is scored
// by rebuilding one or two trees; across search iterations the same
// (attribute set, remaining-capacity) build recurs whenever the committed
// operation did not touch the involved nodes — the cache returns the
// previously built entry instead of re-running the construct/adjust loop.
//
// The key is exact, so a hit is bit-identical to a fresh build:
//   - the canonical (sorted) attribute set, which — for a fixed pair set —
//     determines the candidate members and their local value counts;
//   - a remaining-capacity fingerprint: the effective per-member budget
//     (global remaining capacity min the allocation scheme's advisory
//     share) plus the collector's, with every budget clamped at a sound
//     upper bound on any vertex usage the build could ever reach, so that
//     two "effectively unconstrained" budgets memoize to the same entry.
//
// A cache instance is only valid for a fixed (system, pair set, attribute
// specs, allocation scheme, tree-build options); the owner (the plan
// evaluator) clears it whenever the pair set changes and owns one cache
// per option set. Thread-safe: lookups and inserts may race freely during
// parallel candidate evaluation.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "planner/topology.h"

namespace remo {

struct TreeBuildKey {
  std::vector<AttrId> attrs;   // canonical (sorted) set the tree delivers
  std::vector<NodeId> nodes;   // candidate members, in build order
  std::vector<Capacity> avails;  // clamped effective budget per member
  Capacity collector_avail = 0;  // clamped collector budget

  bool operator==(const TreeBuildKey&) const = default;
};

class TreeBuildCache {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }

  /// Returns a copy of the cached entry, or nullopt. Counts a hit/miss.
  std::optional<TreeEntry> find(const TreeBuildKey& key);
  /// Inserts (no-op if the key is already present — concurrent builders of
  /// the same key produce identical entries, so first-writer-wins is fine).
  void insert(const TreeBuildKey& key, const TreeEntry& entry);

  void clear();
  std::size_t size() const;
  std::size_t hits() const noexcept { return hits_.load(std::memory_order_relaxed); }
  std::size_t misses() const noexcept { return misses_.load(std::memory_order_relaxed); }

 private:
  struct KeyHash {
    std::size_t operator()(const TreeBuildKey& k) const noexcept;
  };

  bool enabled_ = true;
  mutable std::mutex mutex_;
  std::unordered_map<TreeBuildKey, TreeEntry, KeyHash> entries_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
};

}  // namespace remo
