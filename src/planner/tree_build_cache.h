// Memoization of resource-aware tree builds (the hot inner operation of
// the planner's guided local search). A candidate augmentation is scored
// by rebuilding one or two trees; across search iterations the same
// (attribute set, remaining-capacity) build recurs whenever the committed
// operation did not touch the involved nodes — the cache returns the
// previously built entry instead of re-running the construct/adjust loop.
//
// The key is exact, so a hit is bit-identical to a fresh build:
//   - the canonical (sorted) attribute set, which — for a fixed pair set —
//     determines the candidate members and their local value counts;
//   - a remaining-capacity fingerprint: the effective per-member budget
//     (global remaining capacity min the allocation scheme's advisory
//     share) plus the collector's, with every budget clamped at a sound
//     upper bound on any vertex usage the build could ever reach, so that
//     two "effectively unconstrained" budgets memoize to the same entry.
//
// A cache instance is only valid for a fixed (system, attribute specs,
// allocation scheme, tree-build options); the owner (the plan evaluator)
// owns one cache per option set. Pair-set changes invalidate *scoped*:
// an entry reads the pair set only through its own attribute set (the
// candidate list is nodes_with_any(key.attrs) and every local count is
// taken over key.attrs), so a change to pairs over disjoint attributes
// cannot alter the entry — only entries whose attrs intersect the delta
// are evicted (invalidate_attrs), the rest stay bit-exact across churn.
// Under REMO_VALIDATE every hit recomputes its input fingerprint against
// the reference pair set and aborts on mismatch: a stale entry can never
// be served. Thread-safe: lookups and inserts may race freely during
// parallel candidate evaluation.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/types.h"
#include "planner/topology.h"
#include "task/pair_set.h"

namespace remo {

struct TreeBuildKey {
  std::vector<AttrId> attrs;   // canonical (sorted) set the tree delivers
  std::vector<NodeId> nodes;   // candidate members, in build order
  std::vector<Capacity> avails;  // clamped effective budget per member
  Capacity collector_avail = 0;  // clamped collector budget

  bool operator==(const TreeBuildKey&) const = default;
};

class TreeBuildCache {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }

  /// Returns a copy of the cached entry, or nullopt. Counts a hit/miss.
  /// Under REMO_VALIDATE (with a reference pair set installed) a hit's
  /// stored input fingerprint is recomputed and must match — serving a
  /// stale entry aborts.
  std::optional<TreeEntry> find(const TreeBuildKey& key) REMO_EXCLUDES(mutex_);
  /// Scoring peek (REMO_HOT: once per cached tree per candidate scored):
  /// returns a pointer to the cached entry, or nullptr, counting a
  /// hit/miss like find() — without copying the tree. The pointee is
  /// immutable and the pointer is stable across concurrent peek()/insert()
  /// calls (entries are never updated in place), but invalidate_attrs()
  /// and clear() destroy it — callers must not hold the pointer across
  /// either. Performs the same REMO_VALIDATE staleness check as find().
  const TreeEntry* peek(const TreeBuildKey& key) REMO_EXCLUDES(mutex_);

  /// Everything item construction reads from the pair set for a tree over
  /// `attrs`: the candidate members (nodes_with_any order), their local
  /// count rows, and the offered-pair total. Budgets are deliberately
  /// absent — they vary per candidate; this part is a pure function of
  /// (pairs, attrs) and recurs identically for every candidate scored
  /// over the same attribute set.
  struct ItemsTemplate {
    std::vector<NodeId> nodes;
    std::vector<std::uint32_t> local;  // nodes.size() × attrs.size(), row-major
    std::size_t offered = 0;
  };
  /// Returns the template for `attrs` (sorted), computing and caching it on
  /// first use (REMO_HOT: one lookup per rebuilt tree per candidate
  /// scored). Invalidated by the same attrs-intersection rule as build
  /// entries — a template reads exactly the pair-set slice over `attrs`.
  /// Pointer stability contract as peek().
  const ItemsTemplate* items_template(const std::vector<AttrId>& attrs,
                                      const PairSet& pairs)
      REMO_EXCLUDES(mutex_);

  /// Inserts (no-op if the key is already present — concurrent builders of
  /// the same key produce identical entries, so first-writer-wins is fine).
  void insert(const TreeBuildKey& key, const TreeEntry& entry)
      REMO_EXCLUDES(mutex_);

  /// Evicts every entry whose attribute set intersects `attrs` (sorted,
  /// unique) — the scoped alternative to clear() when the pair set changed
  /// only over `attrs`. Entries over disjoint attribute sets read nothing
  /// the delta touched and remain exactly reusable. Returns the number of
  /// entries evicted.
  std::size_t invalidate_attrs(const std::vector<AttrId>& attrs)
      REMO_EXCLUDES(mutex_);

  /// Installs the pair set that entries are built against (validation
  /// only; pass nullptr to detach). The pointee must outlive the cache or
  /// the next set_reference_pairs call and is read during find()/insert()
  /// — safe while builds run, since builders never mutate the pair set.
  void set_reference_pairs(const PairSet* pairs) REMO_EXCLUDES(mutex_);

  void clear() REMO_EXCLUDES(mutex_);
  std::size_t size() const REMO_EXCLUDES(mutex_);
  std::size_t hits() const noexcept { return hits_.load(std::memory_order_relaxed); }
  std::size_t misses() const noexcept { return misses_.load(std::memory_order_relaxed); }

 private:
  struct KeyHash {
    std::size_t operator()(const TreeBuildKey& k) const noexcept;
  };
  struct AttrsHash {
    std::size_t operator()(const std::vector<AttrId>& attrs) const noexcept;
  };
  /// The entry plus a hash of the exact pair-set slice the build consumed:
  /// each candidate's membership in the key's attribute set. Recomputed on
  /// validated hits to prove the entry is not stale.
  struct CachedEntry {
    TreeEntry entry;
    std::uint64_t pair_fingerprint = 0;
  };

  /// Written once by the owning evaluator before any concurrent use.
  bool enabled_ = true;
  mutable Mutex mutex_;
  std::unordered_map<TreeBuildKey, CachedEntry, KeyHash> entries_
      REMO_GUARDED_BY(mutex_);
  std::unordered_map<std::vector<AttrId>, ItemsTemplate, AttrsHash> templates_
      REMO_GUARDED_BY(mutex_);
  const PairSet* reference_pairs_ REMO_GUARDED_BY(mutex_) = nullptr;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
};

}  // namespace remo
