#include "planner/planner.h"

#include <algorithm>

#include "common/check.h"
#include "common/sorted_vector.h"
#include "obs/trace.h"
#include "planner/evaluator.h"

namespace remo {

namespace {
constexpr double kCostEps = 1e-9;
}

const char* to_string(PartitionScheme s) noexcept {
  switch (s) {
    case PartitionScheme::kSingletonSet:
      return "SINGLETON-SET";
    case PartitionScheme::kOneSet:
      return "ONE-SET";
    case PartitionScheme::kRemo:
      return "REMO";
  }
  return "?";
}

PlanScore score_of(const Topology& topo) {
  return PlanScore{topo.collected_pairs(), topo.total_cost()};
}

bool improves(const PlanScore& a, const PlanScore& b) {
  if (a.collected != b.collected) return a.collected > b.collected;
  return a.cost + kCostEps < b.cost;
}

std::vector<Augmentation> rank_topology_augmentations(
    const Topology& topo, const PairSet& pairs, const CostModel& cost,
    const ConflictConstraints& conflicts, std::size_t max_candidates,
    const std::vector<bool>* must_involve, bool starvation_bonus) {
  const auto& entries = topo.entries();
  const std::size_t k = entries.size();
  auto involved = [&](std::size_t i) {
    return must_involve == nullptr || (i < must_involve->size() && (*must_involve)[i]);
  };
  std::vector<double> starved(k), collected(k);
  for (std::size_t i = 0; i < k; ++i) {
    starved[i] = static_cast<double>(entries[i].offered_pairs -
                                     entries[i].collected_pairs);
    collected[i] = static_cast<double>(entries[i].collected_pairs);
  }

  const Partition p = topo.partition();  // sets in entry order
  std::vector<Augmentation> out;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      if (!involved(i) && !involved(j)) continue;
      if (conflicts.blocks_merge(p.set(i), p.set(j))) continue;
      Augmentation a;
      a.kind = AugmentKind::kMerge;
      a.set_a = i;
      a.set_b = j;
      const double recoverable =
          starvation_bonus
              ? std::min(starved[i] + starved[j], collected[i] + collected[j])
              : 0.0;
      a.estimated_gain = estimate_merge_gain(p, i, j, pairs, cost) +
                         cost.per_message * recoverable;
      out.push_back(a);
    }
    if (involved(i) && p.set(i).size() >= 2) {
      for (AttrId attr : p.set(i)) {
        Augmentation a;
        a.kind = AugmentKind::kSplit;
        a.set_a = i;
        a.attr = attr;
        // A split's upside is letting starved members deliver a subset of
        // their attributes; it needs starvation, not released capacity.
        a.estimated_gain =
            estimate_split_gain(p, i, attr, pairs, cost) +
            (starvation_bonus ? cost.per_message * starved[i] : 0.0);
        out.push_back(a);
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Augmentation& a, const Augmentation& b) {
                     return a.estimated_gain > b.estimated_gain;
                   });
  if (max_candidates > 0 && out.size() > max_candidates) out.resize(max_candidates);
  return out;
}

Planner::Planner(const SystemModel& system, PlannerOptions options)
    : system_(&system),
      options_(std::move(options)),
      evaluator_(std::make_shared<PlanEvaluator>(system, options_)) {}

std::size_t Planner::last_evaluations() const noexcept {
  return evaluator_->stats().evaluations;
}

EvalStats Planner::last_stats() const { return evaluator_->stats(); }

void Planner::check_invariants(const Topology& topo, const PairSet& pairs) const {
  if (!validation_enabled()) return;  // skip the partition materialization
  // Scope: the planner owns exactly its SystemModel's node subset. Under
  // federation that is one shard's nodes in local ids, not the global
  // universe — a member outside [0, num_vertices) means the shard router
  // leaked a foreign node into this core (and would otherwise surface as
  // an opaque out_of_range throw inside validate()).
  for (const auto& entry : topo.entries())
    for (NodeId m : entry.tree.members())
      REMO_VALIDATE(m < system_->num_vertices(), "topology member n", m,
                    " outside this planner's node scope (", system_->num_vertices(),
                    " vertices; shard-local planners own only their subset)");
  REMO_VALIDATE(topo.validate(*system_),
                "planner topology violates capacity constraints (", topo.num_trees(),
                " trees, ", topo.collected_pairs(), " collected pairs)");
  const Partition p = topo.partition();
  REMO_VALIDATE(p.valid_over(pairs.attribute_universe()),
                "planner partition is not a partition of the attribute universe: ",
                p.to_string());
  REMO_VALIDATE(options_.conflicts.satisfied_by(p),
                "planner partition co-locates conflicting attributes: ",
                p.to_string());
}

Topology Planner::build_for_partition(const PairSet& pairs, const Partition& p) const {
  evaluator_->sync_pairs(pairs);
  Topology topo = evaluator_->build_full(pairs, p);
  check_invariants(topo, pairs);
  return topo;
}

bool Planner::improve_once(Topology& topo, const PairSet& pairs) const {
  const obs::Span span("planner.iteration");
  const auto candidates = rank_topology_augmentations(
      topo, pairs, system_->cost(), options_.conflicts, options_.max_candidates,
      nullptr, options_.starvation_ranking);
  const PlanScore current = score_of(topo);
  evaluator_->sync_pairs(pairs);
  // Evaluate the whole (truncated) candidate list and keep the best
  // improvement: under tight capacities the estimates are noisy enough
  // that first-improvement can latch onto a marginal merge and converge
  // prematurely. Both commit rules are deterministic regardless of the
  // engine's concurrency — ties break by candidate rank.
  std::optional<PlanEvaluator::Result> best =
      options_.best_of_candidates
          ? evaluator_->best_improving(topo, pairs, candidates, current)
          : evaluator_->first_improving(topo, pairs, candidates, current,
                                        candidates.size());

  // Escape hatch from capacity-hogging layouts: when no augmentation
  // improves, try a full fair-share re-layout of the unchanged partition
  // before declaring convergence. This frees shared capacity that an
  // early-built tree hoarded (demand-driven allocation is
  // first-come-first-served) without changing the partition. Evaluated
  // only as a fallback — a full forest build per iteration would dominate
  // planning time.
  if (!best && options_.relayout_escape) {
    Topology relayout = evaluator_->build_full(pairs, topo.partition());
    const PlanScore s = score_of(relayout);
    if (improves(s, current))
      best = PlanEvaluator::Result{std::move(relayout), s, 0};
  }

  if (!best) return false;
  topo = std::move(best->topo);
  check_invariants(topo, pairs);
  return true;
}

Topology Planner::plan(const PairSet& pairs) const {
  const obs::Span span("planner.plan");
  evaluator_->reset_stats();
  evaluator_->sync_pairs(pairs);
  const auto universe = pairs.attribute_universe();
  Partition initial = options_.partition_scheme == PartitionScheme::kOneSet
                          ? Partition::one_set(universe)
                          : Partition::singleton(universe);
  Topology topo = evaluator_->build_full(pairs, initial);
  check_invariants(topo, pairs);
  if (options_.partition_scheme != PartitionScheme::kRemo) return topo;

  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter)
    if (!improve_once(topo, pairs)) break;

  // The search hill-climbs from SINGLETON-SET; the opposite endpoint of
  // the partition lattice is cheap to evaluate directly and guards against
  // the climb stalling in a local optimum below ONE-SET (both endpoints
  // are members of the search space, so REMO dominates both baselines by
  // construction). With conflict constraints the coarsest legal partition
  // is the greedy coloring instead (one group per "path" for SSDP/DSDP).
  if (options_.endpoint_guard && !universe.empty()) {
    Partition coarse = options_.conflicts.empty()
                           ? Partition::one_set(universe)
                           : [&] {
                               std::vector<std::vector<AttrId>> groups;
                               for (AttrId a : universe) {
                                 bool placed = false;
                                 for (auto& g : groups) {
                                   bool ok = true;
                                   for (AttrId b : g)
                                     if (options_.conflicts.conflicts(a, b)) ok = false;
                                   if (ok) {
                                     g.push_back(a);
                                     placed = true;
                                     break;
                                   }
                                 }
                                 if (!placed) groups.push_back({a});
                               }
                               return Partition(std::move(groups));
                             }();
    Topology coarse_topo = evaluator_->build_full(pairs, coarse);
    if (improves(score_of(coarse_topo), score_of(topo))) {
      topo = std::move(coarse_topo);
      for (std::size_t iter = 0; iter < options_.max_iterations; ++iter)
        if (!improve_once(topo, pairs)) break;
    }
  }
  check_invariants(topo, pairs);
  return topo;
}

}  // namespace remo
