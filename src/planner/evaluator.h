// The plan-evaluation engine: resource-aware scoring of candidate
// partition augmentations, extracted from the planner's guided local
// search (Sec. 3) and the adaptive planner's restricted search (Sec. 4.1)
// so that both share one hot path with two accelerations:
//
//   - candidates of one search iteration are evaluated concurrently on a
//     fixed thread pool (PlannerOptions::num_threads), with deterministic
//     commit: results land in candidate-rank slots and winners are chosen
//     by (score, rank), never by completion order, so the chosen topology
//     is bit-identical to serial evaluation;
//   - tree builds are memoized across iterations (tree_build_cache.h):
//     re-evaluating an augmentation whose involved nodes the previously
//     committed operation did not touch reuses the built trees.
//
// Thread model (DESIGN.md §16): the evaluator itself owns no lock — its
// cross-thread state is exactly the annotated TreeBuildCache (capability
// `cache_.mutex_`), the ThreadPool's job hand-off, and the registry's
// lock-free metric objects. Pool tasks touch only their own rank slot,
// their task-local RebuildScratch, and those three annotated structures,
// which is why the engine needs no capability of its own and the TSA
// build proves the whole parallel section lock-correct.
//
// The engine also keeps the evaluation counters/timings (EvalStats) that
// plan(), the adaptive planner, and the Fig. 9/10 benches report. The live
// counters are `planner.*` metrics in an obs::Registry
// (PlannerOptions::metrics, defaulting to the global registry), so every
// registry snapshot — including the BENCH_*.json telemetry — carries them;
// EvalStats is the windowed view between reset_stats() and stats().
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "planner/planner.h"
#include "planner/tree_build_cache.h"

namespace remo {

class ThreadPool;

/// Counters/timings of the engine since the last reset_stats(). Snapshot
/// type — the live counters are registry metrics (see above).
struct EvalStats {
  /// Topologies built and scored: one per evaluated candidate, plus one
  /// per full-forest build (initial layout, re-layout escape, endpoint
  /// guard).
  std::size_t evaluations = 0;
  /// Memoized tree builds reused / built fresh inside those evaluations.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  /// Wall-clock seconds spent evaluating candidates (parallel section).
  double evaluate_seconds = 0.0;
  /// Wall-clock seconds spent on full-forest builds.
  double build_seconds = 0.0;
};

class PlanEvaluator {
 public:
  PlanEvaluator(const SystemModel& system, PlannerOptions options);
  ~PlanEvaluator();

  PlanEvaluator(const PlanEvaluator&) = delete;
  PlanEvaluator& operator=(const PlanEvaluator&) = delete;

  /// One evaluated candidate: the rebuilt topology, its score, and the
  /// candidate's rank in the list it came from.
  struct Result {
    Topology topo;
    PlanScore score;
    std::size_t index = 0;
  };

  /// Must be called (by the owning search) whenever the pair set under
  /// evaluation may have changed. Invalidation is *scoped*: only memo
  /// entries whose attribute sets intersect the change are evicted (the
  /// rest cannot read anything the change touched — see
  /// tree_build_cache.h), so memoized builds survive churn that never
  /// touches their partitions.
  void sync_pairs(const PairSet& pairs);

  /// O(|delta|) variant of sync_pairs for callers that already know the
  /// exact change (the delta replanning path): advances the synced pair
  /// set by `delta` and evicts only the intersecting memo entries, without
  /// copying or re-diffing the full pair set. Requires sync_pairs to have
  /// run at least once.
  void apply_pairs_delta(const PairSetDelta& delta);

  /// The pair set the engine is currently synced to (nullptr before the
  /// first sync_pairs) — lets owners cross-check the incremental path
  /// under REMO_VALIDATE.
  const PairSet* synced_pairs() const noexcept {
    return last_pairs_.has_value() ? &*last_pairs_ : nullptr;
  }

  /// Memoized full-forest build (initial layout / re-layout escape /
  /// endpoint guard). Counts one evaluation.
  Topology build_full(const PairSet& pairs, const Partition& partition);

  /// Evaluates every candidate against `base` concurrently, materializing
  /// each resulting topology; results are in candidate order. The search
  /// paths below avoid this: they score candidates without materializing
  /// (topology.h rebuild_score) and materialize only the winner.
  std::vector<Result> evaluate_all(const Topology& base, const PairSet& pairs,
                                   const std::vector<Augmentation>& candidates);

  /// Best-of-candidates commit rule: the lowest-ranked candidate achieving
  /// the best strictly-improving score over `current` (identical to the
  /// serial scan that keeps the first strict improvement of the running
  /// best). Candidates are scored concurrently without materialization;
  /// only the winner's topology is built. nullopt when nothing improves.
  std::optional<Result> best_improving(const Topology& base, const PairSet& pairs,
                                       const std::vector<Augmentation>& candidates,
                                       const PlanScore& current);

  /// First-improvement commit rule: the lowest-ranked candidate whose
  /// score strictly improves `current`, scoring at most `max_evaluations`
  /// candidates (the adaptive planner's per-list budget). Candidates are
  /// scored in parallel chunks but the winner is the one a serial
  /// rank-order scan would pick; only its topology is materialized.
  std::optional<Result> first_improving(const Topology& base, const PairSet& pairs,
                                        const std::vector<Augmentation>& candidates,
                                        const PlanScore& current,
                                        std::size_t max_evaluations);

  /// Effective evaluation concurrency (PlannerOptions::num_threads, or
  /// hardware_concurrency when 0).
  std::size_t num_threads() const;

  EvalStats stats() const;
  void reset_stats();

  TreeBuildCache& cache() noexcept { return cache_; }

 private:
  struct Counters;
  Topology rebuild_candidate(const Topology& base, const Partition& p,
                             const PairSet& pairs, const Augmentation& aug);
  PlanScore score_candidate(const Topology& base, const Partition& p,
                            const PairSet& pairs, const Augmentation& aug,
                            RebuildScratch* scratch);
  /// Block dispatcher for the scoring loops: runs fn(i, scratch) for every
  /// i in [0, n), one pool task per contiguous rank-block of
  /// PlannerOptions::candidate_block_size candidates. The scratch is
  /// task-local and reused across the block's candidates, so per-candidate
  /// allocation and pool dispatch amortize over the block. Pure dispatch
  /// shape: every i runs exactly once into its own output slot, so callers
  /// see results identical to the serial loop for any block size.
  void for_each_blocked(std::size_t n,
                        const std::function<void(std::size_t, RebuildScratch&)>& fn);
  /// Materializes the scored winner; exact by construction (the score path
  /// runs the identical builds, memoized when the cache is on).
  Result materialize(const Topology& base, const Partition& p, const PairSet& pairs,
                     const std::vector<Augmentation>& candidates, std::size_t index,
                     const PlanScore& score);
  ThreadPool& pool();

  const SystemModel* system_;
  PlannerOptions options_;
  TreeBuildCache cache_;
  std::unique_ptr<ThreadPool> pool_;  // lazily created, num_threads()-1 workers
  std::unique_ptr<Counters> counters_;
  std::optional<PairSet> last_pairs_;
};

}  // namespace remo
