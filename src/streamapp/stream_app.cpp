#include "streamapp/stream_app.h"

#include <algorithm>
#include <cmath>

#include "common/sorted_vector.h"

namespace remo {

StreamApplication::StreamApplication(SystemModel& system, StreamAppConfig config,
                                     std::uint64_t seed)
    : config_(config), rng_(seed) {
  const std::size_t layers = std::max<std::size_t>(config_.num_layers, 2);
  ops_.resize(config_.num_operators);

  // Shuffled round-robin placement over the monitoring nodes.
  std::vector<NodeId> placement = system.monitoring_nodes();
  rng_.shuffle(placement);

  // Layer sizes: a wider ingest layer, then roughly even.
  std::vector<std::size_t> layer_of(ops_.size());
  for (std::size_t i = 0; i < ops_.size(); ++i)
    layer_of[i] = i * layers / ops_.size();

  std::vector<std::vector<std::size_t>> by_layer(layers);
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    Operator& op = ops_[i];
    op.node = placement[i % placement.size()];
    op.layer = layer_of[i];
    op.op_class = rng_.below(config_.num_classes);
    op.capacity = config_.base_rate * rng_.uniform(1.2, 3.0);
    op.selectivity = rng_.uniform(0.5, 1.2);
    by_layer[op.layer].push_back(i);
  }
  // Wire each non-source operator to 1-3 upstream operators in the
  // previous non-empty layer.
  for (std::size_t l = 1; l < layers; ++l) {
    std::size_t prev = l;
    while (prev > 0 && by_layer[--prev].empty()) {
    }
    if (by_layer[prev].empty()) continue;
    for (std::size_t idx : by_layer[l]) {
      const auto fan_in = static_cast<std::size_t>(rng_.range(1, 3));
      for (std::size_t f = 0; f < fan_in; ++f)
        ops_[idx].upstream.push_back(
            by_layer[prev][rng_.below(by_layer[prev].size())]);
      sort_unique(ops_[idx].upstream);
    }
  }

  // Register exposure: node observes attribute (class, metric) iff it
  // hosts an operator of that class.
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const Operator& op = ops_[i];
    for (std::uint32_t m = 0; m < kMetricsPerOperator; ++m) {
      const AttrId attr =
          static_cast<AttrId>(op.op_class) * kMetricsPerOperator + m;
      exposure_[NodeAttrPair{op.node, attr}].push_back(i);
    }
  }
  std::unordered_map<NodeId, std::vector<AttrId>> observable;
  for (const auto& [pair, idxs] : exposure_) observable[pair.node].push_back(pair.attr);
  for (auto& [node, attrs] : observable) system.set_observable(node, std::move(attrs));

  advance(0);  // establish an initial steady-ish state
}

void StreamApplication::advance(std::uint64_t /*epoch*/) {
  // Process layer by layer so tuples flow one full pass per epoch.
  for (auto& op : ops_) {
    if (op.layer == 0) {
      // Bursty external ingest.
      op.burst *= config_.burst_decay;
      if (rng_.bernoulli(config_.burst_probability))
        op.burst += config_.base_rate * (config_.burst_magnitude - 1.0) *
                    rng_.uniform(0.5, 1.0);
      op.in_rate = std::max(
          0.0, config_.base_rate * rng_.uniform(0.8, 1.2) + op.burst);
    } else {
      double in = 0.0;
      for (std::size_t u : op.upstream) in += ops_[u].out_rate;
      op.in_rate = in / std::max<std::size_t>(op.upstream.size(), 1);
    }
    const double offered = op.queue + op.in_rate;
    op.processed = std::min(offered, op.capacity);
    op.queue = offered - op.processed;
    // Bounded queue: beyond 10x capacity, tuples drop (load shedding).
    const double limit = 10.0 * op.capacity;
    op.dropped = std::max(0.0, op.queue - limit);
    op.queue = std::min(op.queue, limit);
    op.out_rate = op.processed * op.selectivity;
  }
}

double StreamApplication::metric_of(const Operator& op, Metric m) const {
  switch (m) {
    case kInRate:
      return op.in_rate;
    case kOutRate:
      return op.out_rate;
    case kQueueLen:
      return op.queue;
    case kUtilization:
      return 100.0 * op.processed / std::max(op.capacity, 1e-9);
    case kDropRate:
      return op.dropped;
    case kSelectivity:
      return 100.0 * op.selectivity;
    case kMemory:
      // Memory tracks queue occupancy plus a per-operator constant.
      return 64.0 + 0.5 * op.queue;
    case kCpu:
      return 5.0 + 90.0 * op.processed / std::max(op.capacity, 1e-9);
    case kMetricsPerOperator:
      break;
  }
  return 0.0;
}

double StreamApplication::value(NodeId node, AttrId attr) const {
  auto it = exposure_.find(NodeAttrPair{node, attr});
  if (it == exposure_.end()) return 0.0;
  const auto metric = static_cast<Metric>(attr % kMetricsPerOperator);
  double sum = 0.0;
  for (std::size_t idx : it->second) sum += metric_of(ops_[idx], metric);
  return sum / static_cast<double>(it->second.size());
}

std::vector<std::pair<NodeAttrPair, double>> StreamApplication::current_values()
    const {
  std::vector<std::pair<NodeAttrPair, double>> out;
  out.reserve(exposure_.size());
  for (const auto& [pair, ops] : exposure_) out.emplace_back(pair, 0.0);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [pair, v] : out) v = value(pair.node, pair.attr);
  return out;
}

}  // namespace remo
