// A synthetic distributed stream-processing application — the stand-in for
// IBM System S / YieldMonitor in the paper's real-system experiments (see
// DESIGN.md, substitutions table).
//
// The application is a layered operator dataflow graph deployed across the
// monitoring nodes: source operators ingest a bursty external workload;
// downstream operators process, queue, and forward tuples. Every operator
// exposes per-epoch metrics (input/output rate, queue occupancy,
// utilization, drops, ...) exactly like the per-element "data rate and
// buffer occupancy" diagnostics the paper motivates (Sec. 1). Node-level
// attributes aggregate the metrics of the operators placed on the node, so
// each node observes the 30-50 attributes of the paper's deployment and
// their values are bursty and cross-correlated through the dataflow —
// which is what makes collector-side staleness measurable as percentage
// error (Fig. 8).
//
// The application implements ValueSource, so it plugs straight into the
// simulator.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "cost/system_model.h"
#include "sim/value_source.h"

namespace remo {

struct StreamAppConfig {
  /// Operators (application processes); ~1 per node in the paper's app.
  std::size_t num_operators = 200;
  /// Dataflow layers (sources are layer 0, sinks the last).
  std::size_t num_layers = 5;
  /// Operator classes; attribute ids are class * kMetricsPerOperator + m,
  /// so the attribute universe has num_classes * kMetricsPerOperator types.
  std::size_t num_classes = 6;
  /// External ingest rate at the sources (tuples/epoch).
  double base_rate = 100.0;
  /// Probability that a source bursts in a given epoch.
  double burst_probability = 0.05;
  /// Burst multiplier on the ingest rate.
  double burst_magnitude = 3.0;
  /// Geometric decay of an active burst.
  double burst_decay = 0.85;
};

class StreamApplication : public ValueSource {
 public:
  /// Per-operator metrics exposed as attributes.
  enum Metric : std::uint32_t {
    kInRate = 0,
    kOutRate,
    kQueueLen,
    kUtilization,
    kDropRate,
    kSelectivity,
    kMemory,
    kCpu,
    kMetricsPerOperator,  // count marker
  };

  /// Places operators on `system`'s nodes (round-robin over a shuffled
  /// node order) and registers the induced observable attributes.
  StreamApplication(SystemModel& system, StreamAppConfig config, std::uint64_t seed);

  void advance(std::uint64_t epoch) override;
  double value(NodeId node, AttrId attr) const override;

  /// Attribute universe size: num_classes * kMetricsPerOperator.
  std::size_t attr_universe() const noexcept {
    return config_.num_classes * kMetricsPerOperator;
  }
  std::size_t num_operators() const noexcept { return ops_.size(); }

  /// Every exposed (node, attr) with its current value, sorted by
  /// (node, attr) — the per-epoch batch a service-mode producer submits
  /// to the daemon's ingest bus (bench_service's replay traffic). The
  /// sort makes the batch order deterministic despite exposure_ being
  /// hash-ordered internally.
  std::vector<std::pair<NodeAttrPair, double>> current_values() const;

 private:
  struct Operator {
    NodeId node = kNoNode;
    std::size_t layer = 0;
    std::size_t op_class = 0;
    double capacity = 0.0;     // tuples/epoch it can process
    double selectivity = 1.0;  // output tuples per input tuple
    std::vector<std::size_t> upstream;
    // Live state:
    double queue = 0.0;
    double in_rate = 0.0;
    double out_rate = 0.0;
    double processed = 0.0;
    double dropped = 0.0;
    double burst = 0.0;  // sources only
  };

  double metric_of(const Operator& op, Metric m) const;

  StreamAppConfig config_;
  Rng rng_;
  std::vector<Operator> ops_;
  /// (node, attr) -> operator indices contributing to that attribute.
  std::unordered_map<NodeAttrPair, std::vector<std::size_t>> exposure_;
};

}  // namespace remo
