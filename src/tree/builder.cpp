#include "tree/builder.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <unordered_set>

#include "common/sorted_vector.h"

namespace remo {

namespace {

/// Parent-selection criterion per scheme. Returns kNoNode if no vertex can
/// feasibly accept `item`; otherwise the chosen parent. Blocking vertices
/// encountered during the scan are appended to `congested`.
// REMO_HOT: called once per pending item per construction pass.
NodeId select_parent(const MonitoringTree& tree, const BuildItem& item,
                     TreeScheme scheme, std::vector<NodeId>* congested) {
  NodeId best = kNoNode;
  // (primary, secondary) score; lower is better.
  double best_primary = std::numeric_limits<double>::infinity();
  double best_secondary = std::numeric_limits<double>::infinity();

  // Item invariants and per-slot feasibility masks computed once: the scan
  // below answers can_attach in O(1) per candidate instead of one ancestor
  // walk each (bit-identical booleans and blockers).
  const auto scan = tree.attach_scan(item);
  auto consider = [&](NodeId v) {
    NodeId blocker = kNoNode;
    if (!scan.can_attach(v, &blocker)) {
      if (congested && blocker != kNoNode && blocker != item.id)
        congested->push_back(blocker);
      return;
    }
    double primary = 0.0;
    switch (scheme) {
      case TreeScheme::kStar:
      case TreeScheme::kAdaptive:
        primary = static_cast<double>(tree.depth(v));  // shallowest
        break;
      case TreeScheme::kChain:
        primary = -static_cast<double>(tree.depth(v));  // deepest
        break;
      case TreeScheme::kMaxAvb:
        primary = -tree.slack(v);  // most available capacity
        break;
    }
    const double secondary = -tree.slack(v);
    if (primary < best_primary ||
        (primary == best_primary && secondary < best_secondary)) {
      best = v;
      best_primary = primary;
      best_secondary = secondary;
    }
  };

  consider(kCollectorId);
  for (NodeId v : tree.members()) consider(v);
  return best;
}

/// A pending node plus its send-cost demand u = C + a·y. The demand depends
/// only on the item's local counts and the tree's attribute specs — both
/// fixed for the whole build — so it is computed once per item instead of
/// once per adjust round.
struct PendingItem {
  BuildItem item;
  Capacity demand = 0;
};

Capacity item_demand(const MonitoringTree& tree, const BuildItem& item) {
  double y = 0.0;
  const auto& specs = tree.attr_specs();
  for (std::size_t m = 0; m < specs.size(); ++m)
    y += specs[m].weight * static_cast<double>(specs[m].funnel(item.local[m]));
  return tree.cost().per_message + tree.cost().per_value * y;
}

/// One construction pass (the STAR-like construction procedure): tries to
/// attach every pending item, removing the ones that succeed. Returns the
/// number of attachments made.
std::size_t construction_pass(MonitoringTree& tree,
                              std::vector<PendingItem>& pending,
                              TreeScheme scheme, std::vector<NodeId>* congested) {
  std::size_t attached = 0;
  std::vector<PendingItem> still_pending;
  still_pending.reserve(pending.size());
  for (auto& p : pending) {
    const NodeId parent = select_parent(tree, p.item, scheme, congested);
    if (parent != kNoNode) {
      tree.attach(p.item, parent);
      ++attached;
    } else {
      still_pending.push_back(std::move(p));
    }
  }
  pending = std::move(still_pending);
  if (congested) sort_unique(*congested);
  return attached;
}

/// Minimum send-cost demand over pending items (the u of the cheapest node
/// that failed to attach) — the d_f demand used by the Theorem 1 gate.
Capacity min_pending_demand(const std::vector<PendingItem>& pending) {
  Capacity best = std::numeric_limits<Capacity>::infinity();
  for (const auto& p : pending) best = std::min(best, p.demand);
  return best;
}

/// Reattachment candidates for branch `b` pruned from congested node `dc`.
/// `subtree_scope`: restrict to dc's subtree (minus the branch and dc
/// itself); otherwise every vertex except dc and the branch.
std::vector<NodeId> reattach_candidates(const MonitoringTree& tree, NodeId dc,
                                        NodeId b, bool subtree_scope) {
  std::vector<NodeId> out;
  std::unordered_set<NodeId> excluded;
  for (NodeId n : tree.branch_nodes(b)) excluded.insert(n);
  excluded.insert(dc);
  if (subtree_scope) {
    for (NodeId n : tree.branch_nodes(dc))
      if (!excluded.count(n)) out.push_back(n);
  } else {
    if (!excluded.count(kCollectorId)) out.push_back(kCollectorId);
    for (NodeId n : tree.members())
      if (!excluded.count(n)) out.push_back(n);
  }
  // Prefer targets with the most slack: they are the likeliest to absorb
  // the branch, keeping the scan short.
  std::sort(out.begin(), out.end(), [&](NodeId x, NodeId y) {
    const double sx = tree.slack(x), sy = tree.slack(y);
    if (sx != sy) return sx > sy;
    return x < y;
  });
  return out;
}

/// The adjusting procedure: pick a congested node (shallowest first — "low
/// level" nodes are the bottleneck under STAR construction), prune its
/// cheapest branch, and reattach it deeper to convert per-message overhead
/// into relay cost. Returns true if the tree changed.
bool adjust(MonitoringTree& tree, std::vector<NodeId> congested,
            Capacity min_demand, const TreeBuildOptions& opts,
            TreeBuildResult& stats) {
  ++stats.adjust_invocations;
  std::sort(congested.begin(), congested.end(), [&](NodeId a, NodeId b) {
    const auto da = tree.depth(a), db = tree.depth(b);
    if (da != db) return da < db;
    return a < b;
  });

  for (NodeId dc : congested) {
    if (!tree.contains(dc)) continue;
    const auto& kids = tree.children(dc);
    if (kids.size() < 2) continue;  // degree cannot usefully shrink
    // Branches of dc in ascending message cost: the cheapest branch is the
    // most movable, but when it cannot be rehomed the next ones are tried
    // (any relocated branch frees C at dc).
    std::vector<NodeId> branches(kids.begin(), kids.end());
    std::sort(branches.begin(), branches.end(), [&](NodeId x, NodeId y) {
      const Capacity ux = tree.send_cost(x), uy = tree.send_cost(y);
      if (ux != uy) return ux < uy;
      return x < y;
    });

    for (NodeId b : branches) {
      const Capacity b_cost = tree.send_cost(b);
      // Theorem 1: if u_df <= u_b the subtree of dc is a complete search
      // scope; otherwise fall back to the full tree.
      const bool scope_subtree = opts.subtree_only && min_demand <= b_cost + 1e-9;

      if (opts.branch_reattach) {
        for (NodeId target : reattach_candidates(tree, dc, b, scope_subtree)) {
          ++stats.reattach_tests;
          if (tree.move_branch(b, target)) return true;
        }
      } else {
        // Node-by-node reattach (the basic scheme): detach the branch, then
        // greedily re-insert each node anywhere except dc. All-or-nothing:
        // journal the mutations and roll back if any node fails.
        tree.begin_journal();
        auto items = tree.detach_branch(b);
        bool ok = true;
        for (const auto& item : items) {
          NodeId best = kNoNode;
          double best_slack = -std::numeric_limits<double>::infinity();
          const auto scan = tree.attach_scan(item);
          auto try_target = [&](NodeId v) {
            if (v == dc || v == item.id) return;
            if (scope_subtree && !tree.in_subtree(v, dc)) return;
            ++stats.reattach_tests;
            if (!scan.can_attach(v)) return;
            const double s = tree.slack(v);
            if (s > best_slack) {
              best_slack = s;
              best = v;
            }
          };
          try_target(kCollectorId);
          for (NodeId v : tree.members()) try_target(v);
          if (best == kNoNode) {
            ok = false;
            break;
          }
          tree.attach(item, best);
        }
        if (ok) {
          tree.commit_journal();
          return true;
        }
        tree.rollback_journal();
      }
    }
  }
  return false;
}

}  // namespace

bool adjust_tree_once(MonitoringTree& tree, std::vector<NodeId> congested,
                      Capacity min_demand, const TreeBuildOptions& options,
                      TreeBuildResult* stats) {
  TreeBuildResult scratch{MonitoringTree({}, 0, tree.cost()), {}, 0, 0, 0.0};
  TreeBuildResult& sink = stats != nullptr ? *stats : scratch;
  return adjust(tree, std::move(congested), min_demand, options, sink);
}

const char* to_string(TreeScheme s) noexcept {
  switch (s) {
    case TreeScheme::kStar:
      return "STAR";
    case TreeScheme::kChain:
      return "CHAIN";
    case TreeScheme::kMaxAvb:
      return "MAX_AVB";
    case TreeScheme::kAdaptive:
      return "ADAPTIVE";
  }
  return "?";
}

TreeBuildResult build_tree(std::vector<TreeAttrSpec> attrs,
                           std::vector<BuildItem> items, Capacity collector_avail,
                           CostModel cost, const TreeBuildOptions& options) {
  TreeBuildResult result{MonitoringTree(std::move(attrs), collector_avail, cost),
                         {},
                         0,
                         0,
                         0.0};
  result.tree.reserve(items.size());

  // Nodes with nothing to report never join; surface them as rejected so
  // accounting stays exact.
  std::vector<PendingItem> pending;
  pending.reserve(items.size());
  for (auto& item : items) {
    if (item.local_total() == 0) {
      result.rejected.push_back(std::move(item));
    } else {
      PendingItem p{std::move(item), 0};
      p.demand = item_demand(result.tree, p.item);
      pending.push_back(std::move(p));
    }
  }

  // "adds nodes into the constructed tree in the order of decreased
  // available capacity" (Sec. 3.2.1).
  std::sort(pending.begin(), pending.end(),
            [](const PendingItem& a, const PendingItem& b) {
              if (a.item.avail != b.item.avail) return a.item.avail > b.item.avail;
              return a.item.id < b.item.id;
            });

  std::size_t fruitless = 0;
  while (!pending.empty()) {
    std::vector<NodeId> congested;
    const std::size_t attached =
        construction_pass(result.tree, pending, options.scheme, &congested);
    if (pending.empty()) break;
    if (attached > 0)
      fruitless = 0;
    else if (result.adjust_invocations > 0 &&
             ++fruitless > options.max_fruitless_adjusts)
      break;
    if (options.scheme != TreeScheme::kAdaptive) {
      if (attached == 0) break;
      continue;
    }
    const Capacity min_demand = min_pending_demand(pending);
    const auto adjust_start = std::chrono::steady_clock::now();
    const bool adjusted =
        adjust(result.tree, std::move(congested), min_demand, options, result);
    result.adjust_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      adjust_start)
            .count();
    if (!adjusted) break;
  }

  for (auto& p : pending) result.rejected.push_back(std::move(p.item));
  if (options.dfs_renumber) result.tree.renumber_dfs();
  return result;
}

}  // namespace remo
