// Resource-constrained monitoring-tree construction (Sec. 3.2.1, Sec. 5.1).
//
// Given the attribute set of one tree and the set of candidate member
// nodes (each with local value counts and an allocated capacity), build a
// tree that includes as many nodes as possible without violating any
// member's capacity — the (NP-complete) tree construction problem of
// Problem Statement 2. Four heuristics:
//
//   STAR      attach to the shallowest feasible vertex: bushy trees, low
//             relay cost, but the root pays heavy per-message overhead;
//   CHAIN     attach to the deepest feasible vertex: balanced load, high
//             relay cost;
//   MAX_AVB   attach to the feasible vertex with most slack (the TMON
//             heuristic of Kashyap et al., used as a baseline in Fig. 7);
//   ADAPTIVE  REMO's scheme: STAR-like construction until the tree
//             saturates, then an adjusting procedure that prunes the
//             cheapest branch of a congested node and reattaches it deeper,
//             trading relay cost for per-message overhead; iterate.
//
// The two Sec. 5.1 optimizations are independent flags:
//   branch_reattach  move the pruned branch as a whole instead of
//                    re-inserting node by node (5.1.1);
//   subtree_only     search reattachment targets only inside the congested
//                    node's subtree when Theorem 1 applies (5.1.2).
#pragma once

#include <cstddef>
#include <vector>

#include "cost/cost_model.h"
#include "tree/monitoring_tree.h"

namespace remo {

enum class TreeScheme : std::uint8_t { kStar, kChain, kMaxAvb, kAdaptive };

const char* to_string(TreeScheme s) noexcept;

struct TreeBuildOptions {
  TreeScheme scheme = TreeScheme::kAdaptive;
  /// Sec. 5.1.1: reattach pruned branches wholesale (vs node-by-node).
  bool branch_reattach = true;
  /// Sec. 5.1.2: restrict the reattach search to the congested node's
  /// subtree whenever Theorem 1 guarantees completeness.
  bool subtree_only = true;
  /// Stop after this many consecutive adjustments that enable no new
  /// attachment (guards termination of the construct/adjust iteration).
  std::size_t max_fruitless_adjusts = 4;
  /// Renumber arena slots into DFS preorder after the build so ancestor
  /// walks (can_attach / attach feasibility checks against the finished
  /// tree) touch monotonically nearby rows. Pure relayout: node ids, edges
  /// and costs are unchanged.
  bool dfs_renumber = true;
};

struct TreeBuildResult {
  MonitoringTree tree;
  /// Items that could not be included; their node-attribute pairs are not
  /// collected by this tree.
  std::vector<BuildItem> rejected;
  /// Diagnostics.
  std::size_t adjust_invocations = 0;
  std::size_t reattach_tests = 0;
  /// CPU seconds spent inside the adjusting procedure (the quantity the
  /// Sec. 5.1 optimizations speed up; Fig. 10 reports its ratio).
  double adjust_seconds = 0.0;
};

/// Builds one monitoring tree. `items` need not be sorted; nodes with zero
/// local values are rejected outright (they have nothing to contribute).
TreeBuildResult build_tree(std::vector<TreeAttrSpec> attrs,
                           std::vector<BuildItem> items, Capacity collector_avail,
                           CostModel cost, const TreeBuildOptions& options);

/// One invocation of the adjusting procedure on an existing tree: prune a
/// branch of a congested node and reattach it per `options`. Exposed for
/// tests and the Fig. 10 speedup measurements; the builder calls the same
/// code internally. `min_demand` is the u_df of the cheapest pending node
/// (the Theorem 1 gate). Returns true if the tree changed; `stats`, when
/// given, accumulates reattach-test counts.
bool adjust_tree_once(MonitoringTree& tree, std::vector<NodeId> congested,
                      Capacity min_demand, const TreeBuildOptions& options,
                      TreeBuildResult* stats = nullptr);

}  // namespace remo
