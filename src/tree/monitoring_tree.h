// A single monitoring tree (Sec. 2.3 / 3.2): the central collector (node 0)
// is the root; every member node periodically sends one update message to
// its parent carrying its locally observed values plus everything its
// children sent, for the attributes this tree delivers.
//
// Load model (Problem Statement 2, extended with funnels from Sec. 6.1):
//   in_i[m]  = local_i[m] + Σ_{p(j)=i} out_j[m]      per-metric value counts
//   out_i[m] = fnl^m(in_i[m])                        funnel-adjusted output
//   y_i      = Σ_m w_m · out_i[m]                    weighted payload
//   u_i      = C + a · y_i                           message (send) cost
//   usage_i  = u_i + Σ_{p(j)=i} u_j  ≤  avail_i      (collector: receive only)
// where w_m = freq_m / freq_max is the heterogeneous-update-frequency
// weight of Sec. 6.3 (1.0 for uniform frequencies).
//
// All mutating operations maintain these quantities incrementally and never
// leave the tree in a capacity-violating state: feasibility is checked
// before any change is applied.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "cost/cost_model.h"
#include "tree/funnel.h"

namespace remo {

/// One attribute delivered by a tree, with its funnel and frequency weight.
struct TreeAttrSpec {
  AttrId attr = 0;
  FunnelSpec funnel{AggType::kHolistic};
  double weight = 1.0;

  bool operator==(const TreeAttrSpec&) const = default;
};

/// Send period in epochs implied by a frequency weight w_m = freq_m/freq_max
/// (Sec. 6.3): round(1/w), at least 1. Shared by the simulator and the
/// collector-side liveness tracker so delivery deadlines agree on both ends.
std::uint64_t send_period(double weight) noexcept;

/// A node offered to a tree builder: its per-attribute local value counts
/// (aligned with the tree's attribute order) and the capacity allocated to
/// this tree.
struct BuildItem {
  NodeId id = kNoNode;
  std::vector<std::uint32_t> local;
  Capacity avail = 0;

  /// Total local values (unweighted).
  std::uint32_t local_total() const noexcept {
    std::uint32_t s = 0;
    for (auto v : local) s += v;
    return s;
  }
};

class MonitoringTree {
 public:
  MonitoringTree(std::vector<TreeAttrSpec> attrs, Capacity collector_avail,
                 CostModel cost);

  // ---- structure ----------------------------------------------------
  const std::vector<TreeAttrSpec>& attr_specs() const noexcept { return attrs_; }
  /// Attribute ids in tree order.
  std::vector<AttrId> attr_ids() const;
  std::size_t num_attrs() const noexcept { return attrs_.size(); }
  const CostModel& cost() const noexcept { return cost_; }

  bool contains(NodeId id) const { return vertices_.count(id) != 0; }
  /// Member monitoring nodes (excludes the collector), unsorted.
  std::vector<NodeId> members() const;
  /// Number of member monitoring nodes (excludes the collector).
  std::size_t size() const noexcept { return vertices_.size() - 1; }
  bool empty() const noexcept { return size() == 0; }

  NodeId parent(NodeId id) const;
  const std::vector<NodeId>& children(NodeId id) const;
  /// Depth of `id`; the collector has depth 0.
  std::size_t depth(NodeId id) const;
  /// Max depth over members (0 for an empty tree).
  std::size_t height() const;
  /// `r` plus all its descendants, in BFS order.
  std::vector<NodeId> branch_nodes(NodeId r) const;
  /// True iff `id` is in the subtree rooted at `r` (inclusive).
  bool in_subtree(NodeId id, NodeId r) const;

  // ---- loads ---------------------------------------------------------
  /// Weighted payload y_i of the message `id` sends (0 for the collector).
  double payload(NodeId id) const;
  /// Send cost u_i = C + a·y_i (0 for the collector, which sends nothing).
  Capacity send_cost(NodeId id) const;
  /// usage_i = u_i + Σ_{children j} u_j; collector: Σ u_j only.
  Capacity usage(NodeId id) const;
  Capacity avail(NodeId id) const;
  Capacity slack(NodeId id) const { return avail(id) - usage(id); }
  /// Re-caps a vertex's capacity allocation (used by the adaptive planner
  /// to bind in-place patches to the node's *global* remaining budget).
  /// Must not go below current usage — that would invalidate the tree.
  void set_avail(NodeId id, Capacity avail);
  /// Per-metric incoming counts (aligned with attr_specs()).
  const std::vector<std::uint32_t>& in_counts(NodeId id) const;
  /// Per-metric outgoing counts out_i[m] = fnl^m(in_i[m]).
  std::vector<std::uint32_t> out_counts(NodeId id) const;
  /// Local (x_i) per-metric counts.
  const std::vector<std::uint32_t>& local_counts(NodeId id) const;
  /// Total local values over members: the node-attribute pairs this tree
  /// collects (the planner's objective contribution).
  std::size_t collected_pairs() const;
  /// Σ_i u_i over members: total message volume per unit time (C_cur /
  /// C_adj in the Sec. 4.2 throttle formula).
  Capacity total_cost() const;
  /// One message per member per unit time.
  std::size_t total_messages() const noexcept { return size(); }

  // ---- mutation --------------------------------------------------------
  /// Can `item` be attached under `parent` without violating any capacity?
  /// On failure and if `blocker` is non-null, stores the first node whose
  /// constraint would be violated (a "congested node", Definition 4).
  bool can_attach(const BuildItem& item, NodeId parent,
                  NodeId* blocker = nullptr) const;
  /// Attach; aborts the process if infeasible (callers check first).
  void attach(const BuildItem& item, NodeId parent);

  /// Can the branch rooted at `r` be re-parented under `new_parent`?
  /// `new_parent` must not be inside the branch.
  bool can_move_branch(NodeId r, NodeId new_parent, NodeId* blocker = nullptr);
  /// Re-parent branch `r` under `new_parent`; returns false (tree
  /// unchanged) if infeasible.
  bool move_branch(NodeId r, NodeId new_parent);

  /// Remove the branch rooted at `r`; returns the removed nodes as build
  /// items (BFS order: parents before children).
  std::vector<BuildItem> detach_branch(NodeId r);

  /// Can member `id`'s local counts be replaced by `new_local` without
  /// violating any capacity (decreases are always feasible)?
  bool can_update_local(NodeId id, const std::vector<std::uint32_t>& new_local) const;
  /// Replace member `id`'s local counts in place, keeping its position and
  /// children (the minimal-change operation behind DIRECT-APPLY task
  /// updates). Returns false — tree unchanged — if infeasible.
  bool update_local(NodeId id, const std::vector<std::uint32_t>& new_local);

  /// Exhaustive invariant re-check (for tests): recomputes counts bottom-up
  /// and verifies cached values, parent/child symmetry, acyclicity, and
  /// capacity constraints. Returns false on any violation.
  bool validate() const;

 private:
  struct Vertex {
    NodeId parent = kNoNode;
    std::vector<NodeId> children;
    std::vector<std::uint32_t> local;  // x_i per metric
    std::vector<std::uint32_t> in;     // in_i per metric
    double y = 0.0;                    // cached weighted payload
    double recv = 0.0;                 // cached Σ_{children c} u_c
    Capacity avail = 0;
  };

  const Vertex& vat(NodeId id) const;
  Vertex& vat(NodeId id);
  double weighted_out(const std::vector<std::uint32_t>& in) const;
  std::vector<std::uint32_t> out_of(const std::vector<std::uint32_t>& in) const;

  /// Feasibility walk for adding count-delta `delta_out` as a *new* child
  /// message of cost `child_u` under `parent`. Simulates the upward
  /// propagation without mutating. `extra_at_parent`: cost already freed or
  /// spent at the parent in the same composite operation (used by move).
  bool feasible_add(NodeId parent, const std::vector<std::uint32_t>& child_out,
                    double child_u, NodeId* blocker) const;

  /// Generalized upward feasibility walk: would adding `delta` to
  /// `parent`'s in-counts plus `recv_delta` to its receive cost overload
  /// any ancestor?
  bool feasible_walk(NodeId parent, std::vector<std::int64_t> delta,
                     Capacity recv_delta, NodeId* blocker) const;

  /// Apply (sign=+1) or undo (sign=-1) the upward propagation of a child
  /// message with out-vector `child_out` joining/leaving `parent`.
  void propagate(NodeId parent, const std::vector<std::uint32_t>& child_out,
                 int sign);
  /// Signed-delta variant of propagate().
  void propagate_delta(NodeId parent, std::vector<std::int64_t> delta);

  std::vector<TreeAttrSpec> attrs_;
  CostModel cost_;
  std::unordered_map<NodeId, Vertex> vertices_;
};

}  // namespace remo
