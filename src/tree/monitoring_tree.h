// A single monitoring tree (Sec. 2.3 / 3.2): the central collector (node 0)
// is the root; every member node periodically sends one update message to
// its parent carrying its locally observed values plus everything its
// children sent, for the attributes this tree delivers.
//
// Load model (Problem Statement 2, extended with funnels from Sec. 6.1):
//   in_i[m]  = local_i[m] + Σ_{p(j)=i} out_j[m]      per-metric value counts
//   out_i[m] = fnl^m(in_i[m])                        funnel-adjusted output
//   y_i      = Σ_m w_m · out_i[m]                    weighted payload
//   u_i      = C + a · y_i                           message (send) cost
//   usage_i  = u_i + Σ_{p(j)=i} u_j  ≤  avail_i      (collector: receive only)
// where w_m = freq_m / freq_max is the heterogeneous-update-frequency
// weight of Sec. 6.3 (1.0 for uniform frequencies).
//
// All mutating operations maintain these quantities incrementally and never
// leave the tree in a capacity-violating state: feasibility is checked
// before any change is applied.
//
// Storage is a flat slot arena in structure-of-arrays layout (DESIGN.md
// §10): per-vertex fields live in dense vectors indexed by slot, with a
// direct-indexed NodeId→slot table at the API edge, so the builder's hot
// queries (depth, slack, membership, feasibility walks) are pointer-free
// array reads. Consequences callers rely on:
//   - members() is a cached list in *insertion order* — iteration order is
//     a deterministic function of the operation sequence, never of hashing
//     (this is what makes equal-score parent ties in the builder
//     reproducible across platforms);
//   - feasibility walks and load propagation reuse per-tree scratch
//     buffers: const queries allocate nothing, but a single tree instance
//     must not be queried from two threads at once;
//   - an optional undo journal records reversible mutations between
//     begin_journal() and rollback_journal()/commit_journal(), so
//     composite operations (the adjuster's node-by-node reattach) roll
//     back by replaying inverses instead of deep-copying the tree.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/simd.h"
#include "common/types.h"
#include "cost/cost_model.h"
#include "tree/funnel.h"

namespace remo {

class MonitoringTree;

/// A borrowed per-metric count row (`in_counts` / `local_counts`): a view
/// into the owning tree's arena, invalidated by ANY subsequent mutation of
/// that tree (the arena reallocates and slots are recycled). Do not store
/// one across a mutating call — copy the values instead. In debug and
/// sanitizer builds (REMO_DCHECK_ENABLED) the view captures the tree's
/// mutation generation and every element access re-checks freshness, so a
/// stale dereference aborts with context instead of reading recycled
/// memory; release builds compile it down to a bare (pointer, size) pair.
class CountSpan {
 public:
  CountSpan() = default;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  const std::uint32_t* data() const {
    check_fresh();
    return data_;
  }
  const std::uint32_t* begin() const {
    check_fresh();
    return data_;
  }
  const std::uint32_t* end() const {
    check_fresh();
    return data_ + size_;
  }
  std::uint32_t operator[](std::size_t i) const {
    check_fresh();
    REMO_DCHECK(i < size_, "index ", i, " >= size ", size_);
    return data_[i];
  }
  operator std::span<const std::uint32_t>() const {  // NOLINT(google-explicit-constructor)
    check_fresh();
    return {data_, size_};
  }

 private:
  friend class MonitoringTree;

  const std::uint32_t* data_ = nullptr;
  std::size_t size_ = 0;
#if REMO_DCHECK_ENABLED
  CountSpan(const std::uint32_t* data, std::size_t size,
            const MonitoringTree* owner, std::uint64_t generation) noexcept
      : data_(data), size_(size), owner_(owner), generation_(generation) {}
  void check_fresh() const;  // aborts via REMO_DCHECK when stale
  const MonitoringTree* owner_ = nullptr;
  std::uint64_t generation_ = 0;
#else
  CountSpan(const std::uint32_t* data, std::size_t size) noexcept
      : data_(data), size_(size) {}
  void check_fresh() const noexcept {}
#endif
};

/// One attribute delivered by a tree, with its funnel and frequency weight.
struct TreeAttrSpec {
  AttrId attr = 0;
  FunnelSpec funnel{AggType::kHolistic};
  double weight = 1.0;

  bool operator==(const TreeAttrSpec&) const = default;
};

/// Send period in epochs implied by a frequency weight w_m = freq_m/freq_max
/// (Sec. 6.3): round(1/w), at least 1. Shared by the simulator and the
/// collector-side liveness tracker so delivery deadlines agree on both ends.
std::uint64_t send_period(double weight) noexcept;

/// A node offered to a tree builder: its per-attribute local value counts
/// (aligned with the tree's attribute order) and the capacity allocated to
/// this tree.
struct BuildItem {
  NodeId id = kNoNode;
  std::vector<std::uint32_t> local;
  Capacity avail = 0;

  /// Total local values (unweighted).
  std::uint32_t local_total() const noexcept {
    std::uint32_t s = 0;
    for (auto v : local) s += v;
    return s;
  }
};

class MonitoringTree {
 public:
  MonitoringTree(std::vector<TreeAttrSpec> attrs, Capacity collector_avail,
                 CostModel cost);

  // ---- structure ----------------------------------------------------
  const std::vector<TreeAttrSpec>& attr_specs() const noexcept { return attrs_; }
  /// Attribute ids in tree order.
  std::vector<AttrId> attr_ids() const;
  std::size_t num_attrs() const noexcept { return attrs_.size(); }
  const CostModel& cost() const noexcept { return cost_; }
  /// Arena row width: num_attrs() padded up to simd::kU32Lanes so every
  /// count row is simd::kAlign-byte aligned (the DESIGN.md §15 layout
  /// contract). Padding elements are always zero.
  std::size_t row_stride() const noexcept { return stride_; }
  /// True iff every attribute has an identity funnel (holistic/distinct)
  /// and unit frequency weight — the dominant workload shape. Such trees
  /// take the O(1)-per-hop integer fast path in the feasibility and
  /// propagation walks (payload sums are exact integers in double, so the
  /// fast path is bit-identical to the general scalar one).
  bool uniform_identity() const noexcept { return uniform_identity_; }

  /// Pre-sizes the arena for `members` member nodes (one build's item
  /// count), avoiding incremental reallocation during construction. The
  /// count rows keep their alignment across growth either way — reserve
  /// only batches the copies.
  void reserve(std::size_t members);

  /// Renumbers the arena slots into DFS preorder (children in child-list
  /// order) and drops free slots. Ancestor walks then touch monotonically
  /// decreasing nearby slots — prefetch-friendly after a build. Purely an
  /// internal relayout: NodeIds, iteration orders (members()/children())
  /// and all load state are unchanged, so plans are unaffected. Must not
  /// be called while journaling (the undo log records slot numbers).
  void renumber_dfs();

  bool contains(NodeId id) const noexcept {
    return id < lookup_.size() && lookup_[id] != kNoSlot;
  }
  /// Member monitoring nodes (excludes the collector), in insertion order.
  /// The list is stable: attach appends, detach erases in place, moves keep
  /// positions — iteration order never depends on node-id hashing.
  const std::vector<NodeId>& members() const noexcept { return members_; }
  /// Number of member monitoring nodes (excludes the collector).
  std::size_t size() const noexcept { return members_.size(); }
  bool empty() const noexcept { return members_.empty(); }

  NodeId parent(NodeId id) const;
  const std::vector<NodeId>& children(NodeId id) const;
  /// Depth of `id`; the collector has depth 0. Cached, O(1).
  std::size_t depth(NodeId id) const;
  /// Max depth over members (0 for an empty tree).
  std::size_t height() const;
  /// `r` plus all its descendants, in BFS order.
  std::vector<NodeId> branch_nodes(NodeId r) const;
  /// True iff `id` is in the subtree rooted at `r` (inclusive).
  bool in_subtree(NodeId id, NodeId r) const;

  // ---- loads ---------------------------------------------------------
  /// Weighted payload y_i of the message `id` sends (0 for the collector).
  double payload(NodeId id) const;
  /// Send cost u_i = C + a·y_i (0 for the collector, which sends nothing).
  Capacity send_cost(NodeId id) const;
  /// usage_i = u_i + Σ_{children j} u_j; collector: Σ u_j only.
  Capacity usage(NodeId id) const;
  Capacity avail(NodeId id) const;
  Capacity slack(NodeId id) const { return avail(id) - usage(id); }
  /// Re-caps a vertex's capacity allocation (used by the adaptive planner
  /// to bind in-place patches to the node's *global* remaining budget).
  /// Must not go below current usage — that would invalidate the tree.
  void set_avail(NodeId id, Capacity avail);
  /// Per-metric incoming counts (aligned with attr_specs()). The returned
  /// view is invalidated by any mutation; see CountSpan.
  CountSpan in_counts(NodeId id) const;
  /// Per-metric outgoing counts out_i[m] = fnl^m(in_i[m]).
  std::vector<std::uint32_t> out_counts(NodeId id) const;
  /// Local (x_i) per-metric counts. View semantics as in_counts().
  CountSpan local_counts(NodeId id) const;
  /// Total local values over members: the node-attribute pairs this tree
  /// collects (the planner's objective contribution). Cached, O(1).
  std::size_t collected_pairs() const noexcept { return collected_pairs_; }
  /// Σ_i u_i over members: total message volume per unit time (C_cur /
  /// C_adj in the Sec. 4.2 throttle formula). Summed in member insertion
  /// order (deterministic). Memoized on a dirty flag — the planner's
  /// scoring loop re-reads it for every kept entry of every candidate —
  /// and safe to call concurrently on a shared const tree (the cache is a
  /// pair of relaxed/acq-rel atomics; racing recomputations store the same
  /// bits).
  Capacity total_cost() const;
  /// One message per member per unit time.
  std::size_t total_messages() const noexcept { return size(); }

  /// Calls `f(NodeId, Capacity usage)` for the collector and then every
  /// member in insertion order — equivalent to calling usage(id) for each,
  /// with the NodeId→slot lookups hoisted out of the caller's loop. This
  /// is the accumulation kernel behind the planner's per-candidate usage
  /// charging (planner/topology.cpp); the per-node values and visit order
  /// are exactly those of the naive loop, so accumulations over it are
  /// bit-identical.
  template <class F>
  void for_each_usage(F&& f) const {
    f(kCollectorId, recv_[kRootSlot]);
    for (NodeId n : members_) {
      const Slot s = lookup_[n];
      f(n, cost_.per_message + cost_.per_value * y_[s] + recv_[s]);
    }
  }

  // ---- mutation --------------------------------------------------------
  /// Can `item` be attached under `parent` without violating any capacity?
  /// On failure and if `blocker` is non-null, stores the first node whose
  /// constraint would be violated (a "congested node", Definition 4).
  bool can_attach(const BuildItem& item, NodeId parent,
                  NodeId* blocker = nullptr) const;

  /// Batched attach feasibility for one fixed item (REMO_HOT: the builder's
  /// parent scan asks can_attach(item, v) for *every* vertex of the tree).
  /// On uniform-identity trees the walk's per-hop predicates depend on the
  /// item only through two constants (its message cost and its out total),
  /// so constructing the scan evaluates them for every slot in one O(slots)
  /// pass — the per-slot checks use the exact expressions of
  /// feasible_walk_identity, so each query returns the same boolean and the
  /// same blocker, bit for bit — and each can_attach() query is then O(1).
  /// Non-identity trees fall back to the per-candidate walk transparently.
  /// The scan borrows tree scratch: it is invalidated by any mutation of
  /// the tree and at most one scan per tree may be live at a time.
  class AttachScan {
   public:
    bool can_attach(NodeId parent, NodeId* blocker = nullptr) const;

   private:
    friend class MonitoringTree;
    AttachScan(const MonitoringTree& tree, const BuildItem& item);
    const MonitoringTree* tree_;
    const BuildItem* item_;
    bool fast_ = false;         // identity masks valid; else walk fallback
    bool item_member_ = false;  // item.id already in the tree: always false
    bool self_fail_ = false;    // item cannot afford its own message
#if REMO_DCHECK_ENABLED
    std::uint64_t generation_ = 0;
#endif
  };
  AttachScan attach_scan(const BuildItem& item) const {
    return AttachScan(*this, item);
  }
  /// Attach; aborts the process if infeasible (callers check first).
  void attach(const BuildItem& item, NodeId parent);
  /// Fused feasibility-test + attach: performs the upward feasibility walk
  /// once and applies the attachment on success (false, tree unchanged, on
  /// failure). Equivalent to `can_attach(...) && (attach(...), true)` at
  /// half the walking cost — the builder's commit path.
  bool try_attach(const BuildItem& item, NodeId parent,
                  NodeId* blocker = nullptr);

  /// Can the branch rooted at `r` be re-parented under `new_parent`?
  /// `new_parent` must not be inside the branch.
  bool can_move_branch(NodeId r, NodeId new_parent, NodeId* blocker = nullptr);
  /// Re-parent branch `r` under `new_parent`; returns false (tree
  /// unchanged) if infeasible.
  bool move_branch(NodeId r, NodeId new_parent);

  /// Remove the branch rooted at `r`; returns the removed nodes as build
  /// items (BFS order: parents before children).
  std::vector<BuildItem> detach_branch(NodeId r);

  /// Can member `id`'s local counts be replaced by `new_local` without
  /// violating any capacity (decreases are always feasible)?
  bool can_update_local(NodeId id, const std::vector<std::uint32_t>& new_local) const;
  /// Replace member `id`'s local counts in place, keeping its position and
  /// children (the minimal-change operation behind DIRECT-APPLY task
  /// updates). Returns false — tree unchanged — if infeasible.
  bool update_local(NodeId id, const std::vector<std::uint32_t>& new_local);

  // ---- snapshot/restore (service/snapshot.h, DESIGN.md §14) ------------
  /// Permutes the member list and the given vertices' child lists into the
  /// supplied orders (each must be a permutation of the current one).
  /// Iteration order is plan-affecting state — members() drives the
  /// builder's deterministic tie-breaks and children() drives BFS walks —
  /// so a tree rebuilt from a snapshot must reproduce the captured order
  /// bit-exactly, not merely the same structure. Vertices without an entry
  /// in `children` keep their current child order.
  void restore_iteration_order(
      const std::vector<NodeId>& members,
      const std::vector<std::pair<NodeId, std::vector<NodeId>>>& children);

  // ---- undo journal ----------------------------------------------------
  /// Start recording reversible mutations. While journaling, every mutating
  /// operation appends inverse records; rollback_journal() replays them in
  /// reverse, restoring the tree bit-exactly — including member-list and
  /// child-list ordering — as if the operations never ran. Not re-entrant.
  void begin_journal();
  /// Accept the journaled mutations and drop the records.
  void commit_journal();
  /// Revert every mutation since begin_journal().
  void rollback_journal();
  bool journaling() const noexcept { return journal_on_; }

  /// Exhaustive invariant re-check (for tests and the REMO_VALIDATE deep
  /// hooks): recomputes counts bottom-up and verifies cached values,
  /// parent/child symmetry, acyclicity, arena bookkeeping (lookup table,
  /// member list, free list), and capacity constraints. Returns false on
  /// any violation.
  bool validate() const;

#if REMO_DCHECK_ENABLED
  /// Mutation counter backing CountSpan's staleness check (debug/sanitizer
  /// builds only): bumped by every operation that changes tree state.
  std::uint64_t debug_generation() const noexcept { return generation_; }
#endif

 private:
  using Slot = std::uint32_t;
  static constexpr Slot kNoSlot = 0xffffffffu;
  static constexpr Slot kRootSlot = 0;

  /// Padded row width (see row_stride()). Cached at construction — never
  /// recompute per hop inside a walk.
  std::size_t stride() const noexcept { return stride_; }
  std::uint32_t* in_row(Slot s) noexcept { return in_.data() + s * stride_; }
  const std::uint32_t* in_row(Slot s) const noexcept {
    return in_.data() + s * stride_;
  }
  std::uint32_t* local_row(Slot s) noexcept { return local_.data() + s * stride_; }
  const std::uint32_t* local_row(Slot s) const noexcept {
    return local_.data() + s * stride_;
  }

  Slot slot_of(NodeId id) const;           // throws std::out_of_range if absent
  Slot alloc_slot();                       // from the free list, or grows arena
  double weighted_out(const std::uint32_t* in) const;

  /// Invalidate outstanding CountSpans (debug builds) and the memoized
  /// total_cost(). Every mutating operation calls this before returning.
  void bump_generation() noexcept {
    cost_cache_.valid.store(false, std::memory_order_relaxed);
#if REMO_DCHECK_ENABLED
    ++generation_;
#endif
  }
  /// Deep-validation hook: every mutating operation funnels through this
  /// before returning, so under REMO_VALIDATE=1 an invariant break aborts
  /// at the operation that introduced it, not at some later read.
  void deep_validate(const char* op) const {
    REMO_VALIDATE(validate(), "MonitoringTree invariants broken after ", op);
  }

  /// Feasibility walk for adding count-delta `delta` (pre-loaded into
  /// `walk_delta_`) as recv_delta of new receive cost under `parent`.
  /// Simulates the upward propagation without mutating.
  bool feasible_walk_scratch(Slot parent, Capacity recv_delta,
                             NodeId* blocker) const;
  /// Uniform-identity fast path of the walk above: out deltas equal in
  /// deltas at every hop, so the payload change is the constant `dsum`
  /// (= Σ walk_delta_, an exact integer) and each hop is O(1). `changed`
  /// is whether any per-attribute delta is nonzero (dsum can be zero with
  /// cancelling deltas — the walk must still continue then).
  bool feasible_walk_identity(Slot parent, Capacity recv_delta, double dsum,
                              bool changed, NodeId* blocker) const;
  /// Feasibility walk for a new child message with out-vector `child_out`
  /// and cost `child_u` joining `parent`.
  bool feasible_add(Slot parent, const std::uint32_t* child_out, double child_u,
                    NodeId* blocker) const;

  /// Fills the attach-scan masks for `item` (uniform-identity trees only):
  /// per-slot parent-hop and ancestor-hop predicate results plus each
  /// slot's nearest failing ancestor, using the identity walk's verbatim
  /// expressions so AttachScan queries reproduce the walk bit for bit.
  void build_attach_masks(const BuildItem& item, Capacity child_u) const;

  /// Apply the upward propagation of delta (pre-loaded into `walk_delta_`)
  /// to `parent`'s in-counts plus follow-on payload changes.
  void propagate_scratch(Slot parent);
  /// Signed upward propagation of a child message joining (+1) or leaving
  /// (-1) `parent`.
  void propagate(Slot parent, const std::uint32_t* child_out, int sign);

  /// Unlink branch root `r` from its parent and subtract its message from
  /// the ancestor loads (shared by move/detach). `out` is r's out-vector.
  void unlink(Slot r, const std::uint32_t* out, Capacity u);
  /// Inverse of unlink (move-infeasible restore path).
  void relink(Slot r, Slot parent, const std::uint32_t* out, Capacity u);

  // -- journal helpers (no-ops unless journal_on_) --
  void jloads(Slot s);                      // snapshot (in row, y, recv)
  void jlocal(Slot s);                      // snapshot local row
  void javail(Slot s);
  void jdepth(Slot s);
  void jparent(Slot s);                     // snapshot (parent, depth)
  void jchild_insert(Slot p);               // child was appended to p
  void jchild_erase(Slot p, std::uint32_t pos, NodeId child);
  void jcreate(Slot s, std::uint32_t member_pos);
  void jdestroy(Slot s, std::uint32_t member_pos);

  std::vector<TreeAttrSpec> attrs_;
  CostModel cost_;
  std::size_t stride_ = 0;          // num_attrs padded to simd::kU32Lanes
  bool uniform_identity_ = false;   // see uniform_identity()

  // Arena (structure of arrays, indexed by slot; slot 0 = collector).
  // Count rows live in kAlign-aligned storage with padded strides so every
  // row starts on a cache-line boundary and vector loops need no tail.
  std::vector<NodeId> id_;          // kNoNode marks a free slot
  std::vector<Slot> parent_;        // kNoSlot for the root and free slots
  std::vector<std::uint32_t> depth_;
  std::vector<Capacity> avail_;
  std::vector<double> y_;           // cached weighted payload
  std::vector<double> recv_;        // cached Σ_{children c} u_c
  simd::AlignedVector<std::uint32_t> in_;  // stride_-flattened per-metric counts
  simd::AlignedVector<std::uint32_t> local_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<Slot> free_;          // LIFO recycled slots
  std::vector<Slot> lookup_;        // NodeId -> slot, direct-indexed
  std::vector<NodeId> members_;     // insertion-ordered live members
  std::size_t collected_pairs_ = 0;

  // Reusable walk scratch: const queries allocate nothing per ancestor hop.
  // Sized stride_ with always-zero padding, like the arena rows.
  mutable simd::AlignedVector<std::int64_t> walk_delta_, walk_next_;
  mutable simd::AlignedVector<std::uint32_t> out_scratch_;

  // Attach-scan masks (AttachScan): per-slot predicate results for one
  // fixed item. pfail = the parent-hop check fails at this slot; afail =
  // the ancestor-hop check fails; anc_blocker = nearest vertex on the
  // slot's root path (inclusive) whose ancestor-hop check fails, kNoNode
  // if the whole chain passes.
  mutable std::vector<std::uint8_t> scan_pfail_, scan_afail_, scan_done_;
  mutable std::vector<NodeId> scan_anc_blocker_;
  mutable std::vector<Slot> scan_stack_;
  mutable bool scan_skip_anc_ = false;

  /// Memoized total_cost(). Copyable atomic pair: trees are copied freely
  /// (topology entries, build-cache hits) but may also be *read* from
  /// several scoring threads at once — racing recomputations of an
  /// unchanged tree store identical bits, the acq-rel flag orders them.
  struct CostCache {
    std::atomic<double> value{0.0};
    std::atomic<bool> valid{false};
    CostCache() = default;
    CostCache(const CostCache& o) noexcept
        : value(o.value.load(std::memory_order_relaxed)),
          valid(o.valid.load(std::memory_order_acquire)) {}
    CostCache& operator=(const CostCache& o) noexcept {
      value.store(o.value.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      valid.store(o.valid.load(std::memory_order_acquire),
                  std::memory_order_release);
      return *this;
    }
  };
  mutable CostCache cost_cache_;

  // Undo journal.
  struct JournalEntry {
    enum class Kind : std::uint8_t {
      kLoads, kLocal, kAvail, kDepth, kParent, kChildInsert, kChildErase,
      kCreate, kDestroy,
    };
    Kind kind;
    Slot slot = kNoSlot;
    Slot parent = kNoSlot;
    NodeId id = kNoNode;
    std::uint32_t pos = 0;
    std::uint32_t depth = 0;
    double y = 0.0, recv = 0.0, avail = 0.0;
    std::size_t counts = 0;  // offset into jcounts_
    std::size_t kids = 0;    // offset into jnodes_
    std::uint32_t nkids = 0;
  };
  bool journal_on_ = false;
  std::vector<JournalEntry> journal_;
  std::vector<std::uint32_t> jcounts_;  // pooled count-row snapshots
  std::vector<NodeId> jnodes_;          // pooled children-list snapshots

#if REMO_DCHECK_ENABLED
  std::uint64_t generation_ = 0;  // see debug_generation()
#endif
};

}  // namespace remo
