#include "tree/monitoring_tree.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <stdexcept>

namespace remo {

namespace {
constexpr double kEps = 1e-9;

std::size_t row_sum(const std::uint32_t* row, std::size_t n) noexcept {
  return static_cast<std::size_t>(simd::sum_u32(row, n));
}
}  // namespace

#if REMO_DCHECK_ENABLED
void CountSpan::check_fresh() const {
  REMO_DCHECK(owner_ == nullptr || generation_ == owner_->debug_generation(),
              "stale CountSpan: tree mutated since the view was taken "
              "(view generation=", generation_,
              " tree generation=", owner_ ? owner_->debug_generation() : 0,
              ") — copy in_counts()/local_counts() before mutating");
}
#endif

std::uint64_t send_period(double weight) noexcept {
  const double w = std::clamp(weight, 1e-6, 1.0);
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(1.0 / w)));
}

MonitoringTree::MonitoringTree(std::vector<TreeAttrSpec> attrs,
                               Capacity collector_avail, CostModel cost)
    : attrs_(std::move(attrs)),
      cost_(cost),
      stride_(simd::padded_count(attrs_.size())) {
  // Identity funnels with unit weights (the dominant workload: holistic
  // collection, uniform frequencies) make every payload an exact integer
  // sum — the O(1)-per-hop walk fast paths apply (DESIGN.md §15).
  uniform_identity_ = true;
  for (const auto& a : attrs_) {
    const bool identity = a.funnel.type() == AggType::kHolistic ||
                          a.funnel.type() == AggType::kDistinct;
    if (!identity || a.weight != 1.0) {
      uniform_identity_ = false;
      break;
    }
  }
  // Slot 0 is the collector, forever.
  id_.push_back(kCollectorId);
  parent_.push_back(kNoSlot);
  depth_.push_back(0);
  avail_.push_back(collector_avail);
  y_.push_back(0.0);
  recv_.push_back(0.0);
  in_.assign(stride_, 0);
  local_.assign(stride_, 0);
  children_.emplace_back();
  lookup_.assign(1, kRootSlot);
  // Scratch rows share the arena's padded layout; padding beyond
  // num_attrs() is zero here and is never written afterwards.
  walk_delta_.resize(stride_);
  walk_next_.resize(stride_);
  out_scratch_.resize(stride_);
}

void MonitoringTree::reserve(std::size_t members) {
  const std::size_t slots = members + 1;
  id_.reserve(slots);
  parent_.reserve(slots);
  depth_.reserve(slots);
  avail_.reserve(slots);
  y_.reserve(slots);
  recv_.reserve(slots);
  children_.reserve(slots);
  in_.reserve(slots * stride_);
  local_.reserve(slots * stride_);
}

std::vector<AttrId> MonitoringTree::attr_ids() const {
  std::vector<AttrId> ids;
  ids.reserve(attrs_.size());
  for (const auto& s : attrs_) ids.push_back(s.attr);
  return ids;
}

MonitoringTree::Slot MonitoringTree::slot_of(NodeId id) const {
  if (!contains(id)) throw std::out_of_range("node not in tree");
  return lookup_[id];
}

MonitoringTree::Slot MonitoringTree::alloc_slot() {
  if (!free_.empty()) {
    const Slot s = free_.back();
    free_.pop_back();
    return s;
  }
  const Slot s = static_cast<Slot>(id_.size());
  id_.push_back(kNoNode);
  parent_.push_back(kNoSlot);
  depth_.push_back(0);
  avail_.push_back(0.0);
  y_.push_back(0.0);
  recv_.push_back(0.0);
  in_.resize(in_.size() + stride_, 0);
  local_.resize(local_.size() + stride_, 0);
  children_.emplace_back();
  // Growth may reallocate the row storage; the aligned allocator plus the
  // padded stride must keep every row on a kAlign boundary.
  REMO_DCHECK(reinterpret_cast<std::uintptr_t>(in_row(s)) % simd::kAlign == 0 &&
                  reinterpret_cast<std::uintptr_t>(local_row(s)) % simd::kAlign == 0,
              "arena reallocation broke the row alignment contract at slot ", s);
  return s;
}

double MonitoringTree::weighted_out(const std::uint32_t* in) const {
  const std::size_t n = attrs_.size();
  if (uniform_identity_) {
    // Σ 1.0·in[m] over exact integers: identical bits to the scalar
    // sequential sum below (values stay far under 2^53).
    return static_cast<double>(simd::sum_u32(in, n));
  }
  double y = 0.0;
  for (std::size_t m = 0; m < n; ++m)
    y += attrs_[m].weight * static_cast<double>(attrs_[m].funnel(in[m]));
  return y;
}

NodeId MonitoringTree::parent(NodeId id) const {
  const Slot p = parent_[slot_of(id)];
  return p == kNoSlot ? kNoNode : id_[p];
}

const std::vector<NodeId>& MonitoringTree::children(NodeId id) const {
  return children_[slot_of(id)];
}

std::size_t MonitoringTree::depth(NodeId id) const { return depth_[slot_of(id)]; }

std::size_t MonitoringTree::height() const {
  std::size_t h = 0;
  for (NodeId n : members_) h = std::max<std::size_t>(h, depth_[lookup_[n]]);
  return h;
}

std::vector<NodeId> MonitoringTree::branch_nodes(NodeId r) const {
  std::vector<NodeId> out;
  std::deque<NodeId> q{r};
  while (!q.empty()) {
    NodeId id = q.front();
    q.pop_front();
    out.push_back(id);
    for (NodeId c : children_[slot_of(id)]) q.push_back(c);
  }
  return out;
}

bool MonitoringTree::in_subtree(NodeId id, NodeId r) const {
  Slot cur = slot_of(id);
  const Slot target = slot_of(r);
  while (true) {
    if (cur == target) return true;
    if (cur == kRootSlot) return false;
    cur = parent_[cur];
  }
}

double MonitoringTree::payload(NodeId id) const {
  const Slot s = slot_of(id);
  return s == kRootSlot ? 0.0 : y_[s];
}

Capacity MonitoringTree::send_cost(NodeId id) const {
  const Slot s = slot_of(id);
  if (s == kRootSlot) return 0.0;
  return cost_.per_message + cost_.per_value * y_[s];
}

Capacity MonitoringTree::usage(NodeId id) const {
  const Slot s = slot_of(id);
  return (s == kRootSlot ? 0.0 : cost_.per_message + cost_.per_value * y_[s]) +
         recv_[s];
}

Capacity MonitoringTree::avail(NodeId id) const { return avail_[slot_of(id)]; }

void MonitoringTree::set_avail(NodeId id, Capacity avail) {
  if (avail + 1e-9 < usage(id))
    throw std::invalid_argument("set_avail below current usage");
  const Slot s = slot_of(id);
  javail(s);
  avail_[s] = avail;
  bump_generation();
  deep_validate("set_avail");
}

CountSpan MonitoringTree::in_counts(NodeId id) const {
#if REMO_DCHECK_ENABLED
  return CountSpan{in_row(slot_of(id)), attrs_.size(), this, generation_};
#else
  return CountSpan{in_row(slot_of(id)), attrs_.size()};
#endif
}

std::vector<std::uint32_t> MonitoringTree::out_counts(NodeId id) const {
  const std::uint32_t* in = in_row(slot_of(id));
  std::vector<std::uint32_t> out(attrs_.size());
  for (std::size_t m = 0; m < attrs_.size(); ++m) out[m] = attrs_[m].funnel(in[m]);
  return out;
}

CountSpan MonitoringTree::local_counts(NodeId id) const {
#if REMO_DCHECK_ENABLED
  return CountSpan{local_row(slot_of(id)), attrs_.size(), this, generation_};
#else
  return CountSpan{local_row(slot_of(id)), attrs_.size()};
#endif
}

Capacity MonitoringTree::total_cost() const {
  if (cost_cache_.valid.load(std::memory_order_acquire))
    return cost_cache_.value.load(std::memory_order_relaxed);
  Capacity total = 0;
  for (NodeId n : members_) {
    const Slot s = lookup_[n];
    total += cost_.per_message + cost_.per_value * y_[s];
  }
  cost_cache_.value.store(total, std::memory_order_relaxed);
  cost_cache_.valid.store(true, std::memory_order_release);
  return total;
}

// REMO_HOT: one call per candidate parent per construction pass.
bool MonitoringTree::feasible_add(Slot parent, const std::uint32_t* child_out,
                                  double child_u, NodeId* blocker) const {
  const std::size_t n = attrs_.size();
  if (uniform_identity_) {
    // Identity trees never materialize the delta row: the payload delta at
    // every ancestor hop is the child's (unsigned, exact) out total.
    const std::uint64_t total = simd::sum_u32(child_out, n);
    return feasible_walk_identity(parent, child_u, static_cast<double>(total),
                                  total != 0, blocker);
  }
  simd::load_i64_from_u32(walk_delta_.data(), child_out, n, +1);
  return feasible_walk_scratch(parent, child_u, blocker);
}

// REMO_HOT: the innermost loop of every build — zero allocations per
// ancestor hop (walk buffers are preallocated per tree).
bool MonitoringTree::feasible_walk_scratch(Slot parent, Capacity recv_delta,
                                           NodeId* blocker) const {
  const std::size_t n = attrs_.size();
  if (uniform_identity_) {
    // Scratch padding is zero, so the vector sums may run the full padded
    // stride with no tail.
    const double dsum =
        static_cast<double>(simd::sum_i64(walk_delta_.data(), stride_));
    const bool changed = simd::any_nonzero_i64(walk_delta_.data(), stride_);
    return feasible_walk_identity(parent, recv_delta, dsum, changed, blocker);
  }
  const TreeAttrSpec* specs = attrs_.data();
  Slot q = parent;
  while (true) {
    if (q == kRootSlot) {
      if (recv_[q] + recv_delta > avail_[q] + kEps) {
        if (blocker) *blocker = kCollectorId;
        return false;
      }
      return true;
    }
    // New in-counts and the resulting payload change at q. The payload sum
    // stays scalar-sequential on this general path: funnel weights make it
    // a float reduction whose rounding order is part of the bit-identical
    // plan contract.
    const std::uint32_t* in = in_row(q);
    double new_y = 0.0;
    for (std::size_t m = 0; m < n; ++m) {
      const auto old_in = in[m];
      const auto new_in = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(old_in) + walk_delta_[m]);
      const auto old_out = specs[m].funnel(old_in);
      const auto new_out = specs[m].funnel(new_in);
      walk_next_[m] =
          static_cast<std::int64_t>(new_out) - static_cast<std::int64_t>(old_out);
      new_y += specs[m].weight * static_cast<double>(new_out);
    }
    const double dy = new_y - y_[q];
    const Capacity use = cost_.per_message + cost_.per_value * y_[q] + recv_[q];
    if (use + recv_delta + cost_.per_value * dy > avail_[q] + kEps) {
      if (blocker) *blocker = id_[q];
      return false;
    }
    const bool changed = simd::any_nonzero_i64(walk_next_.data(), stride_);
    if (!changed && dy == 0.0) return true;  // ancestors unaffected
    recv_delta = cost_.per_value * dy;
    walk_delta_.swap(walk_next_);
    q = parent_[q];
  }
}

// REMO_HOT: O(1) per ancestor hop — no per-attribute loop at all. With
// identity funnels the out delta of every hop equals the in delta, so `dy`
// is the constant `dsum` and only the capacity predicate remains per hop.
// `dsum` and every cached y are exact integers held in doubles, so each
// comparison evaluates the same bits the general path would produce.
bool MonitoringTree::feasible_walk_identity(Slot parent, Capacity recv_delta,
                                            double dsum, bool changed,
                                            NodeId* blocker) const {
  Slot q = parent;
  while (true) {
    if (q == kRootSlot) {
      if (recv_[q] + recv_delta > avail_[q] + kEps) {
        if (blocker) *blocker = kCollectorId;
        return false;
      }
      return true;
    }
    const Capacity use = cost_.per_message + cost_.per_value * y_[q] + recv_[q];
    if (use + recv_delta + cost_.per_value * dsum > avail_[q] + kEps) {
      if (blocker) *blocker = id_[q];
      return false;
    }
    // dsum can be zero with cancelling nonzero deltas — ancestors' in-rows
    // still change then, and the walk must keep checking (their payloads
    // do not move, but the general path walks on; match it).
    if (!changed && dsum == 0.0) return true;  // ancestors unaffected
    recv_delta = cost_.per_value * dsum;
    q = parent_[q];
  }
}

void MonitoringTree::propagate(Slot parent, const std::uint32_t* child_out,
                               int sign) {
  simd::load_i64_from_u32(walk_delta_.data(), child_out, attrs_.size(), sign);
  propagate_scratch(parent);
}

// REMO_HOT: runs once per committed mutation, walking the ancestor chain.
void MonitoringTree::propagate_scratch(Slot parent) {
  const std::size_t n = attrs_.size();
  if (uniform_identity_) {
    // Identity fast path: every hop takes the same in-row delta (a vector
    // integer add over the padded stride — delta padding is zero) and the
    // payload moves by the exact integer dsum.
    const double dsum =
        static_cast<double>(simd::sum_i64(walk_delta_.data(), stride_));
    const bool changed = simd::any_nonzero_i64(walk_delta_.data(), stride_);
    Slot q = parent;
    while (true) {
      jloads(q);
      simd::add_i64_to_u32(in_row(q), walk_delta_.data(), stride_);
      const double old_y = y_[q];
      y_[q] = old_y + dsum;  // == weighted_out(new row): exact integers
      if (q != kRootSlot) {
        jloads(parent_[q]);
        recv_[parent_[q]] += cost_.per_value * (y_[q] - old_y);
      }
      if (q == kRootSlot || !changed) return;
      q = parent_[q];
    }
  }
  const TreeAttrSpec* specs = attrs_.data();
  Slot q = parent;
  while (true) {
    jloads(q);
    std::uint32_t* in = in_row(q);
    for (std::size_t m = 0; m < n; ++m) {
      const auto old_out = specs[m].funnel(in[m]);
      const auto new_in = static_cast<std::int64_t>(in[m]) + walk_delta_[m];
      in[m] = static_cast<std::uint32_t>(new_in);
      const auto new_out = specs[m].funnel(in[m]);
      walk_next_[m] =
          static_cast<std::int64_t>(new_out) - static_cast<std::int64_t>(old_out);
    }
    const bool changed = simd::any_nonzero_i64(walk_next_.data(), stride_);
    const double old_y = y_[q];
    y_[q] = weighted_out(in);
    // q's message grew/shrank: its parent's cached receive load follows.
    if (q != kRootSlot) {
      jloads(parent_[q]);
      recv_[parent_[q]] += cost_.per_value * (y_[q] - old_y);
    }
    if (q == kRootSlot || !changed) return;
    walk_delta_.swap(walk_next_);
    q = parent_[q];
  }
}

bool MonitoringTree::can_attach(const BuildItem& item, NodeId parent,
                                NodeId* blocker) const {
  const std::size_t n = attrs_.size();
  if (item.local.size() != n)
    throw std::invalid_argument("BuildItem count vector size mismatch");
  if (contains(item.id) || !contains(parent)) return false;
  if (uniform_identity_) {
    std::copy(item.local.begin(), item.local.end(), out_scratch_.begin());
  } else {
    for (std::size_t m = 0; m < n; ++m)
      out_scratch_[m] = attrs_[m].funnel(item.local[m]);
  }
  const double y = weighted_out(item.local.data());
  const Capacity u = cost_.per_message + cost_.per_value * y;
  if (u > item.avail + kEps) {
    if (blocker) *blocker = item.id;
    return false;
  }
  return feasible_add(lookup_[parent], out_scratch_.data(), u, blocker);
}

MonitoringTree::AttachScan::AttachScan(const MonitoringTree& tree,
                                       const BuildItem& item)
    : tree_(&tree), item_(&item) {
#if REMO_DCHECK_ENABLED
  generation_ = tree.generation_;
#endif
  if (item.local.size() != tree.attrs_.size())
    throw std::invalid_argument("BuildItem count vector size mismatch");
  if (tree.contains(item.id)) {
    item_member_ = true;
    return;
  }
  const double y = tree.weighted_out(item.local.data());
  const Capacity u = tree.cost_.per_message + tree.cost_.per_value * y;
  if (u > item.avail + kEps) {
    self_fail_ = true;
    return;
  }
  if (!tree.uniform_identity_) return;  // queries fall back to the walk
  fast_ = true;
  tree.build_attach_masks(item, u);
}

void MonitoringTree::build_attach_masks(const BuildItem& item,
                                        Capacity child_u) const {
  const std::uint64_t total = simd::sum_u32(item.local.data(), attrs_.size());
  const double dsum = static_cast<double>(total);
  const bool changed = total != 0;
  const Capacity pvd = cost_.per_value * dsum;
  scan_skip_anc_ = !changed && dsum == 0.0;

  const std::size_t slots = id_.size();
  scan_pfail_.resize(slots);
  scan_afail_.resize(slots);
  scan_done_.resize(slots);
  scan_anc_blocker_.resize(slots);

  scan_pfail_[kRootSlot] = recv_[kRootSlot] + child_u > avail_[kRootSlot] + kEps;
  const bool root_afail = recv_[kRootSlot] + pvd > avail_[kRootSlot] + kEps;
  scan_anc_blocker_[kRootSlot] = root_afail ? kCollectorId : kNoNode;
  scan_done_[kRootSlot] = 1;

  // One linear pass over the arena: both hop predicates of
  // feasible_walk_identity, evaluated with its verbatim expressions (this
  // is what makes every query agree with the walk bit for bit). Free slots
  // get garbage values from stale loads; they are never queried.
  for (Slot q = 1; q < slots; ++q) {
    const Capacity use = cost_.per_message + cost_.per_value * y_[q] + recv_[q];
    scan_pfail_[q] = (use + child_u) + pvd > avail_[q] + kEps;
    scan_afail_[q] = (use + pvd) + pvd > avail_[q] + kEps;
    scan_done_[q] = 0;
  }

  // Nearest failing ancestor, memoized up the parent chains (slot order is
  // not topological after branch moves, so chase and unwind instead of a
  // single ordered sweep; each slot is resolved exactly once).
  for (Slot q = 1; q < slots; ++q) {
    if (id_[q] == kNoNode || scan_done_[q]) continue;
    Slot w = q;
    scan_stack_.clear();
    while (!scan_done_[w]) {
      scan_stack_.push_back(w);
      w = parent_[w];
    }
    NodeId b = scan_anc_blocker_[w];
    for (auto it = scan_stack_.rbegin(); it != scan_stack_.rend(); ++it) {
      if (scan_afail_[*it]) b = id_[*it];
      scan_anc_blocker_[*it] = b;
      scan_done_[*it] = 1;
    }
  }
}

bool MonitoringTree::AttachScan::can_attach(NodeId parent,
                                            NodeId* blocker) const {
  const MonitoringTree& t = *tree_;
#if REMO_DCHECK_ENABLED
  REMO_DCHECK(generation_ == t.generation_,
              "stale AttachScan: tree mutated since attach_scan()");
#endif
  if (item_member_ || !t.contains(parent)) return false;
  if (self_fail_) {
    if (blocker) *blocker = item_->id;
    return false;
  }
  if (!fast_) return t.can_attach(*item_, parent, blocker);
  const Slot v = t.lookup_[parent];
  if (t.scan_pfail_[v]) {
    if (blocker) *blocker = v == kRootSlot ? kCollectorId : t.id_[v];
    return false;
  }
  if (v == kRootSlot || t.scan_skip_anc_) return true;
  const NodeId anc = t.scan_anc_blocker_[t.parent_[v]];
  if (anc != kNoNode) {
    if (blocker) *blocker = anc;
    return false;
  }
  return true;
}

void MonitoringTree::attach(const BuildItem& item, NodeId parent) {
  NodeId blocker = kNoNode;
  const bool ok = try_attach(item, parent, &blocker);
  REMO_ASSERT(ok, "infeasible attach (callers must check first): node=",
              item.id, " under parent=", parent, " blocked at node=", blocker,
              " item avail=", item.avail);
}

bool MonitoringTree::try_attach(const BuildItem& item, NodeId parent,
                                NodeId* blocker) {
  const std::size_t n = attrs_.size();
  if (item.local.size() != n)
    throw std::invalid_argument("BuildItem count vector size mismatch");
  if (contains(item.id) || !contains(parent)) return false;
  if (uniform_identity_) {
    std::copy(item.local.begin(), item.local.end(), out_scratch_.begin());
  } else {
    for (std::size_t m = 0; m < n; ++m)
      out_scratch_[m] = attrs_[m].funnel(item.local[m]);
  }
  const double y = weighted_out(item.local.data());
  const Capacity u = cost_.per_message + cost_.per_value * y;
  if (u > item.avail + kEps) {
    if (blocker) *blocker = item.id;
    return false;
  }
  const Slot p = lookup_[parent];
  if (!feasible_add(p, out_scratch_.data(), u, blocker)) return false;

  // Feasible: apply. out_scratch_ survives alloc_slot (separate storage).
  const Slot s = alloc_slot();
  id_[s] = item.id;
  parent_[s] = p;
  depth_[s] = depth_[p] + 1;
  avail_[s] = item.avail;
  y_[s] = y;
  recv_[s] = 0.0;
  std::copy(item.local.begin(), item.local.end(), local_row(s));
  std::copy(item.local.begin(), item.local.end(), in_row(s));
  if (item.id >= lookup_.size()) lookup_.resize(item.id + 1, kNoSlot);
  lookup_[item.id] = s;
  members_.push_back(item.id);
  collected_pairs_ += row_sum(local_row(s), stride());
  jcreate(s, static_cast<std::uint32_t>(members_.size() - 1));
  jloads(p);
  children_[p].push_back(item.id);
  jchild_insert(p);
  recv_[p] += u;
  propagate(p, out_scratch_.data(), +1);
  bump_generation();
  deep_validate("try_attach");
  return true;
}

void MonitoringTree::unlink(Slot r, const std::uint32_t* out, Capacity u) {
  const Slot op = parent_[r];
  auto& kids = children_[op];
  const auto it = std::find(kids.begin(), kids.end(), id_[r]);
  jchild_erase(op, static_cast<std::uint32_t>(it - kids.begin()), id_[r]);
  kids.erase(it);
  jloads(op);
  recv_[op] -= u;
  propagate(op, out, -1);
}

void MonitoringTree::relink(Slot r, Slot parent, const std::uint32_t* out,
                            Capacity u) {
  propagate(parent, out, +1);
  jloads(parent);
  children_[parent].push_back(id_[r]);
  jchild_insert(parent);
  recv_[parent] += u;
}

bool MonitoringTree::can_move_branch(NodeId r, NodeId new_parent,
                                     NodeId* blocker) {
  if (!contains(r) || !contains(new_parent)) return false;
  if (in_subtree(new_parent, r)) return false;  // would create a cycle
  const Slot rs = lookup_[r];
  const Slot nps = lookup_[new_parent];
  const Slot ops = parent_[rs];
  if (ops == nps) return false;
  // Temporarily unlink, test, relink. Restoring is exact because the
  // branch's internal state never changes.
  const auto out = out_counts(r);
  const Capacity u = send_cost(r);
  unlink(rs, out.data(), u);
  const bool ok = feasible_add(nps, out.data(), u, blocker);
  relink(rs, ops, out.data(), u);
  // State is restored exactly, but the arena was touched in between:
  // invalidate outstanding views taken before the probe.
  bump_generation();
  return ok;
}

bool MonitoringTree::move_branch(NodeId r, NodeId new_parent) {
  if (!contains(r) || !contains(new_parent)) return false;
  if (in_subtree(new_parent, r)) return false;
  const Slot rs = lookup_[r];
  const Slot nps = lookup_[new_parent];
  const Slot ops = parent_[rs];
  if (ops == nps) return false;
  const auto out = out_counts(r);
  const Capacity u = send_cost(r);
  unlink(rs, out.data(), u);
  if (!feasible_add(nps, out.data(), u, nullptr)) {
    relink(rs, ops, out.data(), u);
    return false;
  }
  relink(rs, nps, out.data(), u);
  jparent(rs);
  parent_[rs] = nps;
  // Re-base the cached depth of the whole branch.
  const std::int64_t shift = static_cast<std::int64_t>(depth_[nps]) + 1 -
                             static_cast<std::int64_t>(depth_[rs]);
  if (shift != 0) {
    std::deque<Slot> q{rs};
    while (!q.empty()) {
      const Slot s = q.front();
      q.pop_front();
      jdepth(s);
      depth_[s] = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(depth_[s]) + shift);
      for (NodeId c : children_[s]) q.push_back(lookup_[c]);
    }
  }
  bump_generation();
  deep_validate("move_branch");
  return true;
}

std::vector<BuildItem> MonitoringTree::detach_branch(NodeId r) {
  const Slot rs = slot_of(r);
  if (rs == kRootSlot) throw std::out_of_range("cannot detach the collector");
  const auto nodes = branch_nodes(r);
  const auto out = out_counts(r);
  unlink(rs, out.data(), send_cost(r));
  std::vector<BuildItem> items;
  items.reserve(nodes.size());
  for (NodeId id : nodes) {
    const Slot s = lookup_[id];
    // BuildItem locals are num_attrs()-wide (the public layout); the padded
    // stride is an arena-internal detail.
    items.push_back(BuildItem{
        id,
        std::vector<std::uint32_t>(local_row(s), local_row(s) + attrs_.size()),
        avail_[s]});
  }
  for (NodeId id : nodes) {
    const Slot s = lookup_[id];
    const auto mit = std::find(members_.begin(), members_.end(), id);
    jdestroy(s, static_cast<std::uint32_t>(mit - members_.begin()));
    collected_pairs_ -= row_sum(local_row(s), stride());
    members_.erase(mit);
    lookup_[id] = kNoSlot;
    id_[s] = kNoNode;
    parent_[s] = kNoSlot;
    children_[s].clear();
    free_.push_back(s);
  }
  bump_generation();
  deep_validate("detach_branch");
  return items;
}

bool MonitoringTree::can_update_local(
    NodeId id, const std::vector<std::uint32_t>& new_local) const {
  const std::size_t n = attrs_.size();
  if (new_local.size() != n)
    throw std::invalid_argument("local count vector size mismatch");
  if (!contains(id) || id == kCollectorId) return false;
  const Slot s = lookup_[id];
  const std::uint32_t* in = in_row(s);
  const std::uint32_t* local = local_row(s);
  // out_scratch_ holds the would-be in-counts; walk_delta_ the out deltas.
  for (std::size_t m = 0; m < n; ++m) {
    out_scratch_[m] = in[m] - local[m] + new_local[m];
    walk_delta_[m] = static_cast<std::int64_t>(attrs_[m].funnel(out_scratch_[m])) -
                     static_cast<std::int64_t>(attrs_[m].funnel(in[m]));
  }
  const double dy = weighted_out(out_scratch_.data()) - y_[s];
  // Only the node's own send cost changes locally; receives are untouched.
  const Capacity use = cost_.per_message + cost_.per_value * y_[s] + recv_[s];
  if (use + cost_.per_value * dy > avail_[s] + kEps) return false;
  return feasible_walk_scratch(parent_[s], cost_.per_value * dy, nullptr);
}

bool MonitoringTree::update_local(NodeId id,
                                  const std::vector<std::uint32_t>& new_local) {
  if (!can_update_local(id, new_local)) return false;
  const Slot s = lookup_[id];
  jlocal(s);
  jloads(s);
  std::uint32_t* in = in_row(s);
  std::uint32_t* local = local_row(s);
  const double old_y = y_[s];
  const std::size_t n = attrs_.size();
  for (std::size_t m = 0; m < n; ++m) {
    const auto old_out = attrs_[m].funnel(in[m]);
    in[m] = in[m] - local[m] + new_local[m];
    walk_delta_[m] = static_cast<std::int64_t>(attrs_[m].funnel(in[m])) -
                     static_cast<std::int64_t>(old_out);
  }
  collected_pairs_ -= row_sum(local, stride());
  std::copy(new_local.begin(), new_local.end(), local);
  collected_pairs_ += row_sum(local, stride());
  y_[s] = weighted_out(in);
  jloads(parent_[s]);
  recv_[parent_[s]] += cost_.per_value * (y_[s] - old_y);
  propagate_scratch(parent_[s]);
  bump_generation();
  deep_validate("update_local");
  return true;
}

void MonitoringTree::restore_iteration_order(
    const std::vector<NodeId>& members,
    const std::vector<std::pair<NodeId, std::vector<NodeId>>>& children) {
  const auto permutation_of = [](std::vector<NodeId> a, std::vector<NodeId> b) {
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    return a == b;
  };
  REMO_ASSERT(permutation_of(members, members_),
              "restore_iteration_order: member list is not a permutation of "
              "the live one (", members.size(), " given, ", members_.size(),
              " live)");
  members_ = members;
  for (const auto& [vertex, order] : children) {
    const Slot s = slot_of(vertex);
    REMO_ASSERT(permutation_of(order, children_[s]),
                "restore_iteration_order: child list of node ", vertex,
                " is not a permutation of the live one (", order.size(),
                " given, ", children_[s].size(), " live)");
    children_[s] = order;
  }
  bump_generation();
  deep_validate("restore_iteration_order");
}

void MonitoringTree::renumber_dfs() {
  REMO_ASSERT(!journal_on_,
              "renumber_dfs while journaling: the undo log records slot "
              "numbers and would replay into the wrong rows");
  const std::size_t live = members_.size() + 1;
  // Preorder over live slots, visiting children in child-list order (the
  // deterministic order everything else already iterates).
  std::vector<Slot> order;
  order.reserve(live);
  std::vector<Slot> stack{kRootSlot};
  while (!stack.empty()) {
    const Slot s = stack.back();
    stack.pop_back();
    order.push_back(s);
    const auto& kids = children_[s];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it)
      stack.push_back(lookup_[*it]);
  }
  REMO_ASSERT(order.size() == live, "renumber_dfs: preorder visited ",
              order.size(), " slots, expected ", live);

  std::vector<Slot> to_new(id_.size(), kNoSlot);
  for (Slot ns = 0; ns < order.size(); ++ns) to_new[order[ns]] = ns;

  // Gather every per-slot array into preorder; free slots are dropped (the
  // arena is compact afterwards and the free list starts empty).
  std::vector<NodeId> nid(live);
  std::vector<Slot> nparent(live);
  std::vector<std::uint32_t> ndepth(live);
  std::vector<Capacity> navail(live);
  std::vector<double> ny(live), nrecv(live);
  simd::AlignedVector<std::uint32_t> nin(live * stride_, 0);
  simd::AlignedVector<std::uint32_t> nlocal(live * stride_, 0);
  std::vector<std::vector<NodeId>> nchildren(live);
  for (Slot ns = 0; ns < order.size(); ++ns) {
    const Slot os = order[ns];
    nid[ns] = id_[os];
    nparent[ns] = parent_[os] == kNoSlot ? kNoSlot : to_new[parent_[os]];
    ndepth[ns] = depth_[os];
    navail[ns] = avail_[os];
    ny[ns] = y_[os];
    nrecv[ns] = recv_[os];
    std::copy_n(in_row(os), stride_, nin.data() + ns * stride_);
    std::copy_n(local_row(os), stride_, nlocal.data() + ns * stride_);
    nchildren[ns] = std::move(children_[os]);
    lookup_[nid[ns]] = ns;
  }
  id_ = std::move(nid);
  parent_ = std::move(nparent);
  depth_ = std::move(ndepth);
  avail_ = std::move(navail);
  y_ = std::move(ny);
  recv_ = std::move(nrecv);
  in_ = std::move(nin);
  local_ = std::move(nlocal);
  children_ = std::move(nchildren);
  free_.clear();
  bump_generation();
  deep_validate("renumber_dfs");
}

// ---- undo journal ---------------------------------------------------------

void MonitoringTree::begin_journal() {
  REMO_ASSERT(!journal_on_, "begin_journal is not re-entrant: ",
              journal_.size(), " record(s) already pending");
  journal_on_ = true;
}

void MonitoringTree::commit_journal() {
  journal_on_ = false;
  journal_.clear();
  jcounts_.clear();
  jnodes_.clear();
}

void MonitoringTree::rollback_journal() {
  journal_on_ = false;  // replay below mutates raw state, no re-recording
  for (auto it = journal_.rbegin(); it != journal_.rend(); ++it) {
    const JournalEntry& e = *it;
    using K = JournalEntry::Kind;
    switch (e.kind) {
      case K::kLoads:
        std::copy_n(jcounts_.data() + e.counts, stride(), in_row(e.slot));
        y_[e.slot] = e.y;
        recv_[e.slot] = e.recv;
        break;
      case K::kLocal: {
        std::uint32_t* local = local_row(e.slot);
        collected_pairs_ -= row_sum(local, stride());
        std::copy_n(jcounts_.data() + e.counts, stride(), local);
        collected_pairs_ += row_sum(local, stride());
        break;
      }
      case K::kAvail:
        avail_[e.slot] = e.avail;
        break;
      case K::kDepth:
        depth_[e.slot] = e.depth;
        break;
      case K::kParent:
        parent_[e.slot] = e.parent;
        depth_[e.slot] = e.depth;
        break;
      case K::kChildInsert:
        children_[e.slot].erase(children_[e.slot].begin() + e.pos);
        break;
      case K::kChildErase:
        children_[e.slot].insert(children_[e.slot].begin() + e.pos, e.id);
        break;
      case K::kCreate:
        collected_pairs_ -= row_sum(local_row(e.slot), stride());
        lookup_[id_[e.slot]] = kNoSlot;
        id_[e.slot] = kNoNode;
        parent_[e.slot] = kNoSlot;
        children_[e.slot].clear();
        members_.erase(members_.begin() + e.pos);
        free_.push_back(e.slot);
        break;
      case K::kDestroy: {
        // LIFO discipline: the most recently freed slot is this one.
        REMO_ASSERT(!free_.empty() && free_.back() == e.slot,
                    "journal rollback out of order: expected slot ", e.slot,
                    " on top of the free list, found ",
                    free_.empty() ? -1 : static_cast<std::int64_t>(free_.back()));
        free_.pop_back();
        id_[e.slot] = e.id;
        parent_[e.slot] = e.parent;
        depth_[e.slot] = e.depth;
        avail_[e.slot] = e.avail;
        y_[e.slot] = e.y;
        recv_[e.slot] = e.recv;
        std::copy_n(jcounts_.data() + e.counts, stride(), in_row(e.slot));
        std::copy_n(jcounts_.data() + e.counts + stride(), stride(),
                    local_row(e.slot));
        children_[e.slot].assign(jnodes_.begin() + e.kids,
                                 jnodes_.begin() + e.kids + e.nkids);
        if (e.id >= lookup_.size()) lookup_.resize(e.id + 1, kNoSlot);
        lookup_[e.id] = e.slot;
        members_.insert(members_.begin() + e.pos, e.id);
        collected_pairs_ += row_sum(local_row(e.slot), stride());
        break;
      }
    }
  }
  journal_.clear();
  jcounts_.clear();
  jnodes_.clear();
  bump_generation();
  deep_validate("rollback_journal");
}

void MonitoringTree::jloads(Slot s) {
  if (!journal_on_) return;
  JournalEntry e;
  e.kind = JournalEntry::Kind::kLoads;
  e.slot = s;
  e.y = y_[s];
  e.recv = recv_[s];
  e.counts = jcounts_.size();
  jcounts_.insert(jcounts_.end(), in_row(s), in_row(s) + stride());
  journal_.push_back(e);
}

void MonitoringTree::jlocal(Slot s) {
  if (!journal_on_) return;
  JournalEntry e;
  e.kind = JournalEntry::Kind::kLocal;
  e.slot = s;
  e.counts = jcounts_.size();
  jcounts_.insert(jcounts_.end(), local_row(s), local_row(s) + stride());
  journal_.push_back(e);
}

void MonitoringTree::javail(Slot s) {
  if (!journal_on_) return;
  JournalEntry e;
  e.kind = JournalEntry::Kind::kAvail;
  e.slot = s;
  e.avail = avail_[s];
  journal_.push_back(e);
}

void MonitoringTree::jdepth(Slot s) {
  if (!journal_on_) return;
  JournalEntry e;
  e.kind = JournalEntry::Kind::kDepth;
  e.slot = s;
  e.depth = depth_[s];
  journal_.push_back(e);
}

void MonitoringTree::jparent(Slot s) {
  if (!journal_on_) return;
  JournalEntry e;
  e.kind = JournalEntry::Kind::kParent;
  e.slot = s;
  e.parent = parent_[s];
  e.depth = depth_[s];
  journal_.push_back(e);
}

void MonitoringTree::jchild_insert(Slot p) {
  if (!journal_on_) return;
  JournalEntry e;
  e.kind = JournalEntry::Kind::kChildInsert;
  e.slot = p;
  e.pos = static_cast<std::uint32_t>(children_[p].size() - 1);
  journal_.push_back(e);
}

void MonitoringTree::jchild_erase(Slot p, std::uint32_t pos, NodeId child) {
  if (!journal_on_) return;
  JournalEntry e;
  e.kind = JournalEntry::Kind::kChildErase;
  e.slot = p;
  e.pos = pos;
  e.id = child;
  journal_.push_back(e);
}

void MonitoringTree::jcreate(Slot s, std::uint32_t member_pos) {
  if (!journal_on_) return;
  JournalEntry e;
  e.kind = JournalEntry::Kind::kCreate;
  e.slot = s;
  e.pos = member_pos;
  journal_.push_back(e);
}

void MonitoringTree::jdestroy(Slot s, std::uint32_t member_pos) {
  if (!journal_on_) return;
  JournalEntry e;
  e.kind = JournalEntry::Kind::kDestroy;
  e.slot = s;
  e.parent = parent_[s];
  e.id = id_[s];
  e.pos = member_pos;
  e.depth = depth_[s];
  e.avail = avail_[s];
  e.y = y_[s];
  e.recv = recv_[s];
  e.counts = jcounts_.size();
  jcounts_.insert(jcounts_.end(), in_row(s), in_row(s) + stride());
  jcounts_.insert(jcounts_.end(), local_row(s), local_row(s) + stride());
  e.kids = jnodes_.size();
  e.nkids = static_cast<std::uint32_t>(children_[s].size());
  jnodes_.insert(jnodes_.end(), children_[s].begin(), children_[s].end());
  journal_.push_back(e);
}

// ---- validation -----------------------------------------------------------

bool MonitoringTree::validate() const {
  // Parent/child symmetry and acyclicity via BFS from the collector.
  std::size_t seen = 0;
  std::deque<NodeId> q{kCollectorId};
  std::vector<bool> visited(id_.size(), false);
  while (!q.empty()) {
    NodeId id = q.front();
    q.pop_front();
    if (!contains(id)) return false;
    const Slot s = lookup_[id];
    if (visited[s]) return false;  // cycle or duplicate child link
    visited[s] = true;
    ++seen;
    for (NodeId c : children_[s]) {
      if (!contains(c) || parent_[lookup_[c]] != s) return false;
      if (depth_[lookup_[c]] != depth_[s] + 1) return false;  // stale cache
      q.push_back(c);
    }
  }
  if (seen != members_.size() + 1) return false;  // unreachable vertices

  // Arena bookkeeping: members list matches live slots exactly, in some
  // order, without duplicates; free slots are dead; lookup is consistent.
  std::size_t live = 0, pairs = 0;
  for (Slot s = 0; s < id_.size(); ++s) {
    if (id_[s] == kNoNode) continue;
    ++live;
    if (id_[s] >= lookup_.size() || lookup_[id_[s]] != s) return false;
    if (s != kRootSlot) pairs += row_sum(local_row(s), stride());
  }
  if (live != members_.size() + 1) return false;
  for (NodeId n : members_)
    if (n == kCollectorId || !contains(n)) return false;
  for (Slot s : free_)
    if (s >= id_.size() || id_[s] != kNoNode) return false;
  if (pairs != collected_pairs_) return false;

  // Recompute in-counts bottom-up and check caches + capacity.
  for (Slot s = 0; s < id_.size(); ++s) {
    if (id_[s] == kNoNode) continue;
    std::vector<std::uint32_t> expect(local_row(s), local_row(s) + stride());
    double expect_recv = 0.0;
    for (NodeId c : children_[s]) {
      const Slot cs = lookup_[c];
      for (std::size_t m = 0; m < attrs_.size(); ++m)
        expect[m] += attrs_[m].funnel(in_row(cs)[m]);
      expect_recv += cost_.per_message + cost_.per_value * y_[cs];
    }
    if (!std::equal(expect.begin(), expect.end(), in_row(s))) return false;
    if (std::abs(weighted_out(in_row(s)) - y_[s]) > 1e-6) return false;
    if (std::abs(expect_recv - recv_[s]) > 1e-6) return false;
    if (usage(id_[s]) > avail_[s] + 1e-6) return false;
  }
  return true;
}

}  // namespace remo
