#include "tree/monitoring_tree.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <stdexcept>

namespace remo {

namespace {
constexpr double kEps = 1e-9;

std::uint32_t row_sum(const std::uint32_t* row, std::size_t n) noexcept {
  std::uint32_t s = 0;
  for (std::size_t m = 0; m < n; ++m) s += row[m];
  return s;
}
}  // namespace

#if REMO_DCHECK_ENABLED
void CountSpan::check_fresh() const {
  REMO_DCHECK(owner_ == nullptr || generation_ == owner_->debug_generation(),
              "stale CountSpan: tree mutated since the view was taken "
              "(view generation=", generation_,
              " tree generation=", owner_ ? owner_->debug_generation() : 0,
              ") — copy in_counts()/local_counts() before mutating");
}
#endif

std::uint64_t send_period(double weight) noexcept {
  const double w = std::clamp(weight, 1e-6, 1.0);
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(1.0 / w)));
}

MonitoringTree::MonitoringTree(std::vector<TreeAttrSpec> attrs,
                               Capacity collector_avail, CostModel cost)
    : attrs_(std::move(attrs)), cost_(cost) {
  // Slot 0 is the collector, forever.
  id_.push_back(kCollectorId);
  parent_.push_back(kNoSlot);
  depth_.push_back(0);
  avail_.push_back(collector_avail);
  y_.push_back(0.0);
  recv_.push_back(0.0);
  in_.assign(stride(), 0);
  local_.assign(stride(), 0);
  children_.emplace_back();
  lookup_.assign(1, kRootSlot);
  walk_delta_.resize(stride());
  walk_next_.resize(stride());
  out_scratch_.resize(stride());
}

std::vector<AttrId> MonitoringTree::attr_ids() const {
  std::vector<AttrId> ids;
  ids.reserve(attrs_.size());
  for (const auto& s : attrs_) ids.push_back(s.attr);
  return ids;
}

MonitoringTree::Slot MonitoringTree::slot_of(NodeId id) const {
  if (!contains(id)) throw std::out_of_range("node not in tree");
  return lookup_[id];
}

MonitoringTree::Slot MonitoringTree::alloc_slot() {
  if (!free_.empty()) {
    const Slot s = free_.back();
    free_.pop_back();
    return s;
  }
  const Slot s = static_cast<Slot>(id_.size());
  id_.push_back(kNoNode);
  parent_.push_back(kNoSlot);
  depth_.push_back(0);
  avail_.push_back(0.0);
  y_.push_back(0.0);
  recv_.push_back(0.0);
  in_.resize(in_.size() + stride(), 0);
  local_.resize(local_.size() + stride(), 0);
  children_.emplace_back();
  return s;
}

double MonitoringTree::weighted_out(const std::uint32_t* in) const {
  double y = 0.0;
  for (std::size_t m = 0; m < attrs_.size(); ++m)
    y += attrs_[m].weight * static_cast<double>(attrs_[m].funnel(in[m]));
  return y;
}

NodeId MonitoringTree::parent(NodeId id) const {
  const Slot p = parent_[slot_of(id)];
  return p == kNoSlot ? kNoNode : id_[p];
}

const std::vector<NodeId>& MonitoringTree::children(NodeId id) const {
  return children_[slot_of(id)];
}

std::size_t MonitoringTree::depth(NodeId id) const { return depth_[slot_of(id)]; }

std::size_t MonitoringTree::height() const {
  std::size_t h = 0;
  for (NodeId n : members_) h = std::max<std::size_t>(h, depth_[lookup_[n]]);
  return h;
}

std::vector<NodeId> MonitoringTree::branch_nodes(NodeId r) const {
  std::vector<NodeId> out;
  std::deque<NodeId> q{r};
  while (!q.empty()) {
    NodeId id = q.front();
    q.pop_front();
    out.push_back(id);
    for (NodeId c : children_[slot_of(id)]) q.push_back(c);
  }
  return out;
}

bool MonitoringTree::in_subtree(NodeId id, NodeId r) const {
  Slot cur = slot_of(id);
  const Slot target = slot_of(r);
  while (true) {
    if (cur == target) return true;
    if (cur == kRootSlot) return false;
    cur = parent_[cur];
  }
}

double MonitoringTree::payload(NodeId id) const {
  const Slot s = slot_of(id);
  return s == kRootSlot ? 0.0 : y_[s];
}

Capacity MonitoringTree::send_cost(NodeId id) const {
  const Slot s = slot_of(id);
  if (s == kRootSlot) return 0.0;
  return cost_.per_message + cost_.per_value * y_[s];
}

Capacity MonitoringTree::usage(NodeId id) const {
  const Slot s = slot_of(id);
  return (s == kRootSlot ? 0.0 : cost_.per_message + cost_.per_value * y_[s]) +
         recv_[s];
}

Capacity MonitoringTree::avail(NodeId id) const { return avail_[slot_of(id)]; }

void MonitoringTree::set_avail(NodeId id, Capacity avail) {
  if (avail + 1e-9 < usage(id))
    throw std::invalid_argument("set_avail below current usage");
  const Slot s = slot_of(id);
  javail(s);
  avail_[s] = avail;
  bump_generation();
  deep_validate("set_avail");
}

CountSpan MonitoringTree::in_counts(NodeId id) const {
#if REMO_DCHECK_ENABLED
  return CountSpan{in_row(slot_of(id)), stride(), this, generation_};
#else
  return CountSpan{in_row(slot_of(id)), stride()};
#endif
}

std::vector<std::uint32_t> MonitoringTree::out_counts(NodeId id) const {
  const std::uint32_t* in = in_row(slot_of(id));
  std::vector<std::uint32_t> out(stride());
  for (std::size_t m = 0; m < attrs_.size(); ++m) out[m] = attrs_[m].funnel(in[m]);
  return out;
}

CountSpan MonitoringTree::local_counts(NodeId id) const {
#if REMO_DCHECK_ENABLED
  return CountSpan{local_row(slot_of(id)), stride(), this, generation_};
#else
  return CountSpan{local_row(slot_of(id)), stride()};
#endif
}

Capacity MonitoringTree::total_cost() const {
  Capacity total = 0;
  for (NodeId n : members_) {
    const Slot s = lookup_[n];
    total += cost_.per_message + cost_.per_value * y_[s];
  }
  return total;
}

// REMO_HOT: one call per candidate parent per construction pass.
bool MonitoringTree::feasible_add(Slot parent, const std::uint32_t* child_out,
                                  double child_u, NodeId* blocker) const {
  for (std::size_t m = 0; m < attrs_.size(); ++m)
    walk_delta_[m] = static_cast<std::int64_t>(child_out[m]);
  return feasible_walk_scratch(parent, child_u, blocker);
}

// REMO_HOT: the innermost loop of every build — zero allocations per
// ancestor hop (walk buffers are preallocated per tree).
bool MonitoringTree::feasible_walk_scratch(Slot parent, Capacity recv_delta,
                                           NodeId* blocker) const {
  Slot q = parent;
  while (true) {
    if (q == kRootSlot) {
      if (recv_[q] + recv_delta > avail_[q] + kEps) {
        if (blocker) *blocker = kCollectorId;
        return false;
      }
      return true;
    }
    // New in-counts and the resulting payload change at q.
    const std::uint32_t* in = in_row(q);
    double new_y = 0.0;
    for (std::size_t m = 0; m < attrs_.size(); ++m) {
      const auto old_in = in[m];
      const auto new_in = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(old_in) + walk_delta_[m]);
      const auto old_out = attrs_[m].funnel(old_in);
      const auto new_out = attrs_[m].funnel(new_in);
      walk_next_[m] =
          static_cast<std::int64_t>(new_out) - static_cast<std::int64_t>(old_out);
      new_y += attrs_[m].weight * static_cast<double>(new_out);
    }
    const double dy = new_y - y_[q];
    const Capacity use = cost_.per_message + cost_.per_value * y_[q] + recv_[q];
    if (use + recv_delta + cost_.per_value * dy > avail_[q] + kEps) {
      if (blocker) *blocker = id_[q];
      return false;
    }
    bool changed = false;
    for (std::size_t m = 0; m < attrs_.size(); ++m)
      if (walk_next_[m] != 0) changed = true;
    if (!changed && dy == 0.0) return true;  // ancestors unaffected
    recv_delta = cost_.per_value * dy;
    walk_delta_.swap(walk_next_);
    q = parent_[q];
  }
}

void MonitoringTree::propagate(Slot parent, const std::uint32_t* child_out,
                               int sign) {
  for (std::size_t m = 0; m < attrs_.size(); ++m)
    walk_delta_[m] = sign * static_cast<std::int64_t>(child_out[m]);
  propagate_scratch(parent);
}

// REMO_HOT: runs once per committed mutation, walking the ancestor chain.
void MonitoringTree::propagate_scratch(Slot parent) {
  Slot q = parent;
  while (true) {
    jloads(q);
    std::uint32_t* in = in_row(q);
    bool changed = false;
    for (std::size_t m = 0; m < attrs_.size(); ++m) {
      const auto old_out = attrs_[m].funnel(in[m]);
      const auto new_in = static_cast<std::int64_t>(in[m]) + walk_delta_[m];
      in[m] = static_cast<std::uint32_t>(new_in);
      const auto new_out = attrs_[m].funnel(in[m]);
      walk_next_[m] =
          static_cast<std::int64_t>(new_out) - static_cast<std::int64_t>(old_out);
      if (walk_next_[m] != 0) changed = true;
    }
    const double old_y = y_[q];
    y_[q] = weighted_out(in);
    // q's message grew/shrank: its parent's cached receive load follows.
    if (q != kRootSlot) {
      jloads(parent_[q]);
      recv_[parent_[q]] += cost_.per_value * (y_[q] - old_y);
    }
    if (q == kRootSlot || !changed) return;
    walk_delta_.swap(walk_next_);
    q = parent_[q];
  }
}

bool MonitoringTree::can_attach(const BuildItem& item, NodeId parent,
                                NodeId* blocker) const {
  if (item.local.size() != attrs_.size())
    throw std::invalid_argument("BuildItem count vector size mismatch");
  if (contains(item.id) || !contains(parent)) return false;
  for (std::size_t m = 0; m < attrs_.size(); ++m)
    out_scratch_[m] = attrs_[m].funnel(item.local[m]);
  const double y = weighted_out(item.local.data());
  const Capacity u = cost_.per_message + cost_.per_value * y;
  if (u > item.avail + kEps) {
    if (blocker) *blocker = item.id;
    return false;
  }
  return feasible_add(lookup_[parent], out_scratch_.data(), u, blocker);
}

void MonitoringTree::attach(const BuildItem& item, NodeId parent) {
  NodeId blocker = kNoNode;
  const bool ok = try_attach(item, parent, &blocker);
  REMO_ASSERT(ok, "infeasible attach (callers must check first): node=",
              item.id, " under parent=", parent, " blocked at node=", blocker,
              " item avail=", item.avail);
}

bool MonitoringTree::try_attach(const BuildItem& item, NodeId parent,
                                NodeId* blocker) {
  if (item.local.size() != attrs_.size())
    throw std::invalid_argument("BuildItem count vector size mismatch");
  if (contains(item.id) || !contains(parent)) return false;
  for (std::size_t m = 0; m < attrs_.size(); ++m)
    out_scratch_[m] = attrs_[m].funnel(item.local[m]);
  const double y = weighted_out(item.local.data());
  const Capacity u = cost_.per_message + cost_.per_value * y;
  if (u > item.avail + kEps) {
    if (blocker) *blocker = item.id;
    return false;
  }
  const Slot p = lookup_[parent];
  if (!feasible_add(p, out_scratch_.data(), u, blocker)) return false;

  // Feasible: apply. out_scratch_ survives alloc_slot (separate storage).
  const Slot s = alloc_slot();
  id_[s] = item.id;
  parent_[s] = p;
  depth_[s] = depth_[p] + 1;
  avail_[s] = item.avail;
  y_[s] = y;
  recv_[s] = 0.0;
  std::copy(item.local.begin(), item.local.end(), local_row(s));
  std::copy(item.local.begin(), item.local.end(), in_row(s));
  if (item.id >= lookup_.size()) lookup_.resize(item.id + 1, kNoSlot);
  lookup_[item.id] = s;
  members_.push_back(item.id);
  collected_pairs_ += row_sum(local_row(s), stride());
  jcreate(s, static_cast<std::uint32_t>(members_.size() - 1));
  jloads(p);
  children_[p].push_back(item.id);
  jchild_insert(p);
  recv_[p] += u;
  propagate(p, out_scratch_.data(), +1);
  bump_generation();
  deep_validate("try_attach");
  return true;
}

void MonitoringTree::unlink(Slot r, const std::uint32_t* out, Capacity u) {
  const Slot op = parent_[r];
  auto& kids = children_[op];
  const auto it = std::find(kids.begin(), kids.end(), id_[r]);
  jchild_erase(op, static_cast<std::uint32_t>(it - kids.begin()), id_[r]);
  kids.erase(it);
  jloads(op);
  recv_[op] -= u;
  propagate(op, out, -1);
}

void MonitoringTree::relink(Slot r, Slot parent, const std::uint32_t* out,
                            Capacity u) {
  propagate(parent, out, +1);
  jloads(parent);
  children_[parent].push_back(id_[r]);
  jchild_insert(parent);
  recv_[parent] += u;
}

bool MonitoringTree::can_move_branch(NodeId r, NodeId new_parent,
                                     NodeId* blocker) {
  if (!contains(r) || !contains(new_parent)) return false;
  if (in_subtree(new_parent, r)) return false;  // would create a cycle
  const Slot rs = lookup_[r];
  const Slot nps = lookup_[new_parent];
  const Slot ops = parent_[rs];
  if (ops == nps) return false;
  // Temporarily unlink, test, relink. Restoring is exact because the
  // branch's internal state never changes.
  const auto out = out_counts(r);
  const Capacity u = send_cost(r);
  unlink(rs, out.data(), u);
  const bool ok = feasible_add(nps, out.data(), u, blocker);
  relink(rs, ops, out.data(), u);
  // State is restored exactly, but the arena was touched in between:
  // invalidate outstanding views taken before the probe.
  bump_generation();
  return ok;
}

bool MonitoringTree::move_branch(NodeId r, NodeId new_parent) {
  if (!contains(r) || !contains(new_parent)) return false;
  if (in_subtree(new_parent, r)) return false;
  const Slot rs = lookup_[r];
  const Slot nps = lookup_[new_parent];
  const Slot ops = parent_[rs];
  if (ops == nps) return false;
  const auto out = out_counts(r);
  const Capacity u = send_cost(r);
  unlink(rs, out.data(), u);
  if (!feasible_add(nps, out.data(), u, nullptr)) {
    relink(rs, ops, out.data(), u);
    return false;
  }
  relink(rs, nps, out.data(), u);
  jparent(rs);
  parent_[rs] = nps;
  // Re-base the cached depth of the whole branch.
  const std::int64_t shift = static_cast<std::int64_t>(depth_[nps]) + 1 -
                             static_cast<std::int64_t>(depth_[rs]);
  if (shift != 0) {
    std::deque<Slot> q{rs};
    while (!q.empty()) {
      const Slot s = q.front();
      q.pop_front();
      jdepth(s);
      depth_[s] = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(depth_[s]) + shift);
      for (NodeId c : children_[s]) q.push_back(lookup_[c]);
    }
  }
  bump_generation();
  deep_validate("move_branch");
  return true;
}

std::vector<BuildItem> MonitoringTree::detach_branch(NodeId r) {
  const Slot rs = slot_of(r);
  if (rs == kRootSlot) throw std::out_of_range("cannot detach the collector");
  const auto nodes = branch_nodes(r);
  const auto out = out_counts(r);
  unlink(rs, out.data(), send_cost(r));
  std::vector<BuildItem> items;
  items.reserve(nodes.size());
  for (NodeId id : nodes) {
    const Slot s = lookup_[id];
    items.push_back(BuildItem{
        id, std::vector<std::uint32_t>(local_row(s), local_row(s) + stride()),
        avail_[s]});
  }
  for (NodeId id : nodes) {
    const Slot s = lookup_[id];
    const auto mit = std::find(members_.begin(), members_.end(), id);
    jdestroy(s, static_cast<std::uint32_t>(mit - members_.begin()));
    collected_pairs_ -= row_sum(local_row(s), stride());
    members_.erase(mit);
    lookup_[id] = kNoSlot;
    id_[s] = kNoNode;
    parent_[s] = kNoSlot;
    children_[s].clear();
    free_.push_back(s);
  }
  bump_generation();
  deep_validate("detach_branch");
  return items;
}

bool MonitoringTree::can_update_local(
    NodeId id, const std::vector<std::uint32_t>& new_local) const {
  if (new_local.size() != attrs_.size())
    throw std::invalid_argument("local count vector size mismatch");
  if (!contains(id) || id == kCollectorId) return false;
  const Slot s = lookup_[id];
  const std::uint32_t* in = in_row(s);
  const std::uint32_t* local = local_row(s);
  // out_scratch_ holds the would-be in-counts; walk_delta_ the out deltas.
  for (std::size_t m = 0; m < attrs_.size(); ++m) {
    out_scratch_[m] = in[m] - local[m] + new_local[m];
    walk_delta_[m] = static_cast<std::int64_t>(attrs_[m].funnel(out_scratch_[m])) -
                     static_cast<std::int64_t>(attrs_[m].funnel(in[m]));
  }
  const double dy = weighted_out(out_scratch_.data()) - y_[s];
  // Only the node's own send cost changes locally; receives are untouched.
  const Capacity use = cost_.per_message + cost_.per_value * y_[s] + recv_[s];
  if (use + cost_.per_value * dy > avail_[s] + kEps) return false;
  return feasible_walk_scratch(parent_[s], cost_.per_value * dy, nullptr);
}

bool MonitoringTree::update_local(NodeId id,
                                  const std::vector<std::uint32_t>& new_local) {
  if (!can_update_local(id, new_local)) return false;
  const Slot s = lookup_[id];
  jlocal(s);
  jloads(s);
  std::uint32_t* in = in_row(s);
  std::uint32_t* local = local_row(s);
  const double old_y = y_[s];
  for (std::size_t m = 0; m < attrs_.size(); ++m) {
    const auto old_out = attrs_[m].funnel(in[m]);
    in[m] = in[m] - local[m] + new_local[m];
    walk_delta_[m] = static_cast<std::int64_t>(attrs_[m].funnel(in[m])) -
                     static_cast<std::int64_t>(old_out);
  }
  collected_pairs_ -= row_sum(local, stride());
  std::copy(new_local.begin(), new_local.end(), local);
  collected_pairs_ += row_sum(local, stride());
  y_[s] = weighted_out(in);
  jloads(parent_[s]);
  recv_[parent_[s]] += cost_.per_value * (y_[s] - old_y);
  propagate_scratch(parent_[s]);
  bump_generation();
  deep_validate("update_local");
  return true;
}

void MonitoringTree::restore_iteration_order(
    const std::vector<NodeId>& members,
    const std::vector<std::pair<NodeId, std::vector<NodeId>>>& children) {
  const auto permutation_of = [](std::vector<NodeId> a, std::vector<NodeId> b) {
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    return a == b;
  };
  REMO_ASSERT(permutation_of(members, members_),
              "restore_iteration_order: member list is not a permutation of "
              "the live one (", members.size(), " given, ", members_.size(),
              " live)");
  members_ = members;
  for (const auto& [vertex, order] : children) {
    const Slot s = slot_of(vertex);
    REMO_ASSERT(permutation_of(order, children_[s]),
                "restore_iteration_order: child list of node ", vertex,
                " is not a permutation of the live one (", order.size(),
                " given, ", children_[s].size(), " live)");
    children_[s] = order;
  }
  bump_generation();
  deep_validate("restore_iteration_order");
}

// ---- undo journal ---------------------------------------------------------

void MonitoringTree::begin_journal() {
  REMO_ASSERT(!journal_on_, "begin_journal is not re-entrant: ",
              journal_.size(), " record(s) already pending");
  journal_on_ = true;
}

void MonitoringTree::commit_journal() {
  journal_on_ = false;
  journal_.clear();
  jcounts_.clear();
  jnodes_.clear();
}

void MonitoringTree::rollback_journal() {
  journal_on_ = false;  // replay below mutates raw state, no re-recording
  for (auto it = journal_.rbegin(); it != journal_.rend(); ++it) {
    const JournalEntry& e = *it;
    using K = JournalEntry::Kind;
    switch (e.kind) {
      case K::kLoads:
        std::copy_n(jcounts_.data() + e.counts, stride(), in_row(e.slot));
        y_[e.slot] = e.y;
        recv_[e.slot] = e.recv;
        break;
      case K::kLocal: {
        std::uint32_t* local = local_row(e.slot);
        collected_pairs_ -= row_sum(local, stride());
        std::copy_n(jcounts_.data() + e.counts, stride(), local);
        collected_pairs_ += row_sum(local, stride());
        break;
      }
      case K::kAvail:
        avail_[e.slot] = e.avail;
        break;
      case K::kDepth:
        depth_[e.slot] = e.depth;
        break;
      case K::kParent:
        parent_[e.slot] = e.parent;
        depth_[e.slot] = e.depth;
        break;
      case K::kChildInsert:
        children_[e.slot].erase(children_[e.slot].begin() + e.pos);
        break;
      case K::kChildErase:
        children_[e.slot].insert(children_[e.slot].begin() + e.pos, e.id);
        break;
      case K::kCreate:
        collected_pairs_ -= row_sum(local_row(e.slot), stride());
        lookup_[id_[e.slot]] = kNoSlot;
        id_[e.slot] = kNoNode;
        parent_[e.slot] = kNoSlot;
        children_[e.slot].clear();
        members_.erase(members_.begin() + e.pos);
        free_.push_back(e.slot);
        break;
      case K::kDestroy: {
        // LIFO discipline: the most recently freed slot is this one.
        REMO_ASSERT(!free_.empty() && free_.back() == e.slot,
                    "journal rollback out of order: expected slot ", e.slot,
                    " on top of the free list, found ",
                    free_.empty() ? -1 : static_cast<std::int64_t>(free_.back()));
        free_.pop_back();
        id_[e.slot] = e.id;
        parent_[e.slot] = e.parent;
        depth_[e.slot] = e.depth;
        avail_[e.slot] = e.avail;
        y_[e.slot] = e.y;
        recv_[e.slot] = e.recv;
        std::copy_n(jcounts_.data() + e.counts, stride(), in_row(e.slot));
        std::copy_n(jcounts_.data() + e.counts + stride(), stride(),
                    local_row(e.slot));
        children_[e.slot].assign(jnodes_.begin() + e.kids,
                                 jnodes_.begin() + e.kids + e.nkids);
        if (e.id >= lookup_.size()) lookup_.resize(e.id + 1, kNoSlot);
        lookup_[e.id] = e.slot;
        members_.insert(members_.begin() + e.pos, e.id);
        collected_pairs_ += row_sum(local_row(e.slot), stride());
        break;
      }
    }
  }
  journal_.clear();
  jcounts_.clear();
  jnodes_.clear();
  bump_generation();
  deep_validate("rollback_journal");
}

void MonitoringTree::jloads(Slot s) {
  if (!journal_on_) return;
  JournalEntry e;
  e.kind = JournalEntry::Kind::kLoads;
  e.slot = s;
  e.y = y_[s];
  e.recv = recv_[s];
  e.counts = jcounts_.size();
  jcounts_.insert(jcounts_.end(), in_row(s), in_row(s) + stride());
  journal_.push_back(e);
}

void MonitoringTree::jlocal(Slot s) {
  if (!journal_on_) return;
  JournalEntry e;
  e.kind = JournalEntry::Kind::kLocal;
  e.slot = s;
  e.counts = jcounts_.size();
  jcounts_.insert(jcounts_.end(), local_row(s), local_row(s) + stride());
  journal_.push_back(e);
}

void MonitoringTree::javail(Slot s) {
  if (!journal_on_) return;
  JournalEntry e;
  e.kind = JournalEntry::Kind::kAvail;
  e.slot = s;
  e.avail = avail_[s];
  journal_.push_back(e);
}

void MonitoringTree::jdepth(Slot s) {
  if (!journal_on_) return;
  JournalEntry e;
  e.kind = JournalEntry::Kind::kDepth;
  e.slot = s;
  e.depth = depth_[s];
  journal_.push_back(e);
}

void MonitoringTree::jparent(Slot s) {
  if (!journal_on_) return;
  JournalEntry e;
  e.kind = JournalEntry::Kind::kParent;
  e.slot = s;
  e.parent = parent_[s];
  e.depth = depth_[s];
  journal_.push_back(e);
}

void MonitoringTree::jchild_insert(Slot p) {
  if (!journal_on_) return;
  JournalEntry e;
  e.kind = JournalEntry::Kind::kChildInsert;
  e.slot = p;
  e.pos = static_cast<std::uint32_t>(children_[p].size() - 1);
  journal_.push_back(e);
}

void MonitoringTree::jchild_erase(Slot p, std::uint32_t pos, NodeId child) {
  if (!journal_on_) return;
  JournalEntry e;
  e.kind = JournalEntry::Kind::kChildErase;
  e.slot = p;
  e.pos = pos;
  e.id = child;
  journal_.push_back(e);
}

void MonitoringTree::jcreate(Slot s, std::uint32_t member_pos) {
  if (!journal_on_) return;
  JournalEntry e;
  e.kind = JournalEntry::Kind::kCreate;
  e.slot = s;
  e.pos = member_pos;
  journal_.push_back(e);
}

void MonitoringTree::jdestroy(Slot s, std::uint32_t member_pos) {
  if (!journal_on_) return;
  JournalEntry e;
  e.kind = JournalEntry::Kind::kDestroy;
  e.slot = s;
  e.parent = parent_[s];
  e.id = id_[s];
  e.pos = member_pos;
  e.depth = depth_[s];
  e.avail = avail_[s];
  e.y = y_[s];
  e.recv = recv_[s];
  e.counts = jcounts_.size();
  jcounts_.insert(jcounts_.end(), in_row(s), in_row(s) + stride());
  jcounts_.insert(jcounts_.end(), local_row(s), local_row(s) + stride());
  e.kids = jnodes_.size();
  e.nkids = static_cast<std::uint32_t>(children_[s].size());
  jnodes_.insert(jnodes_.end(), children_[s].begin(), children_[s].end());
  journal_.push_back(e);
}

// ---- validation -----------------------------------------------------------

bool MonitoringTree::validate() const {
  // Parent/child symmetry and acyclicity via BFS from the collector.
  std::size_t seen = 0;
  std::deque<NodeId> q{kCollectorId};
  std::vector<bool> visited(id_.size(), false);
  while (!q.empty()) {
    NodeId id = q.front();
    q.pop_front();
    if (!contains(id)) return false;
    const Slot s = lookup_[id];
    if (visited[s]) return false;  // cycle or duplicate child link
    visited[s] = true;
    ++seen;
    for (NodeId c : children_[s]) {
      if (!contains(c) || parent_[lookup_[c]] != s) return false;
      if (depth_[lookup_[c]] != depth_[s] + 1) return false;  // stale cache
      q.push_back(c);
    }
  }
  if (seen != members_.size() + 1) return false;  // unreachable vertices

  // Arena bookkeeping: members list matches live slots exactly, in some
  // order, without duplicates; free slots are dead; lookup is consistent.
  std::size_t live = 0, pairs = 0;
  for (Slot s = 0; s < id_.size(); ++s) {
    if (id_[s] == kNoNode) continue;
    ++live;
    if (id_[s] >= lookup_.size() || lookup_[id_[s]] != s) return false;
    if (s != kRootSlot) pairs += row_sum(local_row(s), stride());
  }
  if (live != members_.size() + 1) return false;
  for (NodeId n : members_)
    if (n == kCollectorId || !contains(n)) return false;
  for (Slot s : free_)
    if (s >= id_.size() || id_[s] != kNoNode) return false;
  if (pairs != collected_pairs_) return false;

  // Recompute in-counts bottom-up and check caches + capacity.
  for (Slot s = 0; s < id_.size(); ++s) {
    if (id_[s] == kNoNode) continue;
    std::vector<std::uint32_t> expect(local_row(s), local_row(s) + stride());
    double expect_recv = 0.0;
    for (NodeId c : children_[s]) {
      const Slot cs = lookup_[c];
      for (std::size_t m = 0; m < attrs_.size(); ++m)
        expect[m] += attrs_[m].funnel(in_row(cs)[m]);
      expect_recv += cost_.per_message + cost_.per_value * y_[cs];
    }
    if (!std::equal(expect.begin(), expect.end(), in_row(s))) return false;
    if (std::abs(weighted_out(in_row(s)) - y_[s]) > 1e-6) return false;
    if (std::abs(expect_recv - recv_[s]) > 1e-6) return false;
    if (usage(id_[s]) > avail_[s] + 1e-6) return false;
  }
  return true;
}

}  // namespace remo
